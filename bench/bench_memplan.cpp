// bench_memplan: memory-plan ablation — peak RSS and throughput with the
// execution plan on vs off, over a batch sweep of the ResNet-style proxy.
//
// Peak RSS (getrusage ru_maxrss) is monotonic per process, so every
// configuration runs in a fork()ed child — forked BEFORE any thread pool
// exists in this process — and reports its measurements back over a pipe.
// The parent never runs the model, so its own RSS stays out of the numbers.
//
// Outputs: bench_results/memplan.csv (full sweep) and
// bench_results/memplan.json (headline: peak-RSS reduction at the largest
// batch, throughput both ways, arena vs raw bytes).
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/csv.hpp"
#include "nn/models.hpp"
#include "nn/network.hpp"
#include "nn/plan.hpp"
#include "tensor/context.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace minsgd::bench {
namespace {

constexpr std::int64_t kResolution = 32;
constexpr std::int64_t kClasses = 10;
constexpr std::int64_t kBlocksPerStage = 2;  // 6n+2 = 14-layer trunk
constexpr int kWarmupIters = 2;
constexpr int kTimedIters = 8;
constexpr std::size_t kThreads = 4;

/// What one forked child measures and writes back over its pipe.
struct ChildReport {
  double imgs_per_sec = 0.0;
  std::int64_t peak_rss_kb = 0;
  std::int64_t arena_bytes = 0;  // plan-on only; 0 in legacy mode
  std::int64_t raw_bytes = 0;    // plan-on only; 0 in legacy mode
};

/// Child body: train-step loop (forward + backward, fixed synthetic data),
/// then report throughput and this process's peak RSS.
ChildReport measure_in_child(bool plan_on, bool recompute,
                             std::int64_t batch) {
  nn::ExecutionPlan::set_enabled(plan_on);
  const ComputeContext ctx(kThreads);
  auto net = nn::tiny_resnet(kBlocksPerStage, kClasses, kResolution);
  Rng rng(7);
  net->init(rng);

  Tensor x(Shape({batch, 3, kResolution, kResolution}));
  Rng data_rng(11);
  for (auto& v : x.span()) v = static_cast<float>(data_rng.normal());

  nn::ExecutionPlan plan;
  nn::PlanOptions opts;
  opts.recompute_cheap = recompute;
  Tensor y, dy, dx;
  const auto step = [&] {
    net->zero_grad();
    if (plan_on) {
      auto pc = plan.context(*net, x.shape(), opts);
      net->forward(x, y, /*training=*/true, ctx, &pc);
      dy.resize(y.shape());
      dy.fill(1.0f / static_cast<float>(y.numel()));
      net->backward(x, y, dy, dx, ctx, &pc);
    } else {
      net->forward(x, y, /*training=*/true, ctx);
      dy.resize(y.shape());
      dy.fill(1.0f / static_cast<float>(y.numel()));
      net->backward(x, y, dy, dx, ctx);
    }
  };

  for (int i = 0; i < kWarmupIters; ++i) step();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kTimedIters; ++i) step();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ChildReport rep;
  rep.imgs_per_sec =
      static_cast<double>(batch * kTimedIters) / (secs > 0 ? secs : 1e-9);
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  rep.peak_rss_kb = static_cast<std::int64_t>(ru.ru_maxrss);
  if (plan_on) {
    rep.arena_bytes = static_cast<std::int64_t>(plan.arena_bytes());
    rep.raw_bytes = static_cast<std::int64_t>(plan.raw_bytes());
  }
  return rep;
}

/// Forks, measures in the child, and reads the report back. Returns false
/// if the child failed.
bool run_config(bool plan_on, bool recompute, std::int64_t batch,
                ChildReport& out) {
  int fds[2];
  if (pipe(fds) != 0) return false;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return false;
  }
  if (pid == 0) {
    close(fds[0]);
    const ChildReport rep = measure_in_child(plan_on, recompute, batch);
    ssize_t n = write(fds[1], &rep, sizeof(rep));
    close(fds[1]);
    _exit(n == static_cast<ssize_t>(sizeof(rep)) ? 0 : 1);
  }
  close(fds[1]);
  ssize_t got = 0;
  char* dst = reinterpret_cast<char*>(&out);
  // minsgd-lint: allow(cast): reading the trivially-copyable ChildReport
  // struct byte-wise from the child's pipe.
  while (got < static_cast<ssize_t>(sizeof(out))) {
    const ssize_t n = read(fds[0], dst + got, sizeof(out) - got);
    if (n <= 0) break;
    got += n;
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  return got == static_cast<ssize_t>(sizeof(out)) && WIFEXITED(status) &&
         WEXITSTATUS(status) == 0;
}

int run() {
  banner("bench_memplan",
         "graph-compiled execution: liveness-aliased arena cuts activation "
         "memory, holding throughput");

  const std::string cpath = csv_path("memplan");
  core::CsvWriter csv(cpath, {"batch", "mode", "peak_rss_kb", "imgs_per_sec",
                              "arena_bytes", "raw_bytes"});

  struct Mode {
    const char* name;
    bool plan_on;
    bool recompute;
  };
  const Mode modes[] = {{"plan-off", false, false},
                        {"plan-on", true, false},
                        {"plan-on-recompute", true, true}};
  const std::int64_t batches[] = {8, 16, 32};

  section("batch sweep (peak RSS is per forked child)");
  std::printf("%6s  %18s  %12s  %10s  %12s  %12s\n", "batch", "mode",
              "peak_rss_kb", "imgs/s", "arena_bytes", "raw_bytes");

  double off_rss_largest = 0.0, on_rss_largest = 0.0;
  double off_ips_largest = 0.0, on_ips_largest = 0.0;
  std::int64_t arena_largest = 0, raw_largest = 0;
  bool all_ok = true;
  for (const std::int64_t batch : batches) {
    for (const Mode& m : modes) {
      ChildReport rep;
      if (!run_config(m.plan_on, m.recompute, batch, rep)) {
        std::printf("%6lld  %18s  child failed\n",
                    static_cast<long long>(batch), m.name);
        all_ok = false;
        continue;
      }
      std::printf("%6lld  %18s  %12lld  %10.1f  %12lld  %12lld\n",
                  static_cast<long long>(batch), m.name,
                  static_cast<long long>(rep.peak_rss_kb), rep.imgs_per_sec,
                  static_cast<long long>(rep.arena_bytes),
                  static_cast<long long>(rep.raw_bytes));
      csv.row(batch, m.name, rep.peak_rss_kb, rep.imgs_per_sec,
              rep.arena_bytes, rep.raw_bytes);
      if (batch == batches[2]) {
        if (!m.plan_on) {
          off_rss_largest = static_cast<double>(rep.peak_rss_kb);
          off_ips_largest = rep.imgs_per_sec;
        } else if (!m.recompute) {
          on_rss_largest = static_cast<double>(rep.peak_rss_kb);
          on_ips_largest = rep.imgs_per_sec;
          arena_largest = rep.arena_bytes;
          raw_largest = rep.raw_bytes;
        }
      }
    }
  }

  const double rss_reduction_pct =
      off_rss_largest > 0
          ? 100.0 * (off_rss_largest - on_rss_largest) / off_rss_largest
          : 0.0;
  const double arena_saving_pct =
      raw_largest > 0
          ? 100.0 * (1.0 - static_cast<double>(arena_largest) /
                               static_cast<double>(raw_largest))
          : 0.0;

  section("headline (largest batch)");
  std::printf("peak RSS: %.0f KB (off) -> %.0f KB (on), %.1f%% lower\n",
              off_rss_largest, on_rss_largest, rss_reduction_pct);
  std::printf("arena vs raw tensor bytes: %lld vs %lld (%.1f%% aliased away)\n",
              static_cast<long long>(arena_largest),
              static_cast<long long>(raw_largest), arena_saving_pct);
  std::printf("imgs/s: %.1f (off) vs %.1f (on)\n", off_ips_largest,
              on_ips_largest);

  JsonSummary json("memplan");
  json.add("batch_largest", batches[2])
      .add("peak_rss_off_kb", off_rss_largest)
      .add("peak_rss_on_kb", on_rss_largest)
      .add("peak_rss_reduction_pct", rss_reduction_pct)
      .add("imgs_per_sec_off", off_ips_largest)
      .add("imgs_per_sec_on", on_ips_largest)
      .add("arena_bytes", arena_largest)
      .add("raw_bytes", raw_largest)
      .add("arena_saving_pct", arena_saving_pct);
  const std::string jpath = json.write();
  std::printf("\nwrote %s and %s\n", cpath.c_str(), jpath.c_str());
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace minsgd::bench

int main() { return minsgd::bench::run(); }
