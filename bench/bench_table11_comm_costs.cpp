// Table 11: network alpha/beta constants, and what they imply for the
// gradient allreduce of each model — plus *measured* message/byte counts
// from the simulated cluster's real collective implementations.
#include <cstdio>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "nn/analysis.hpp"
#include "nn/models.hpp"
#include "perf/cost_model.hpp"
#include "perf/specs.hpp"

using namespace minsgd;

int main() {
  bench::banner("Table 11 — communication is much slower than computation",
                "gamma (time/flop) << 1/bandwidth (beta) << latency (alpha)");

  const perf::NetworkSpec nets[] = {perf::mellanox_fdr_ib(),
                                    perf::intel_qdr_ib(), perf::intel_10gbe()};

  std::printf("%-32s %12s %14s\n", "network", "alpha (s)", "beta (s/byte)");
  core::CsvWriter csv(bench::csv_path("table11_comm_costs"),
                      {"network", "alpha", "beta", "alexnet_allreduce_s",
                       "resnet_allreduce_s"});
  auto alex = nn::alexnet();
  auto res50 = nn::resnet(50);
  const auto pa = nn::profile_model(*alex, nn::alexnet_input());
  const auto pr = nn::profile_model(*res50, nn::resnet_input());
  for (const auto& n : nets) {
    std::printf("%-32s %12.1e %14.1e\n", n.name.c_str(), n.alpha, n.beta);
  }

  bench::section("implied gradient allreduce time (ring, 512 nodes)");
  std::printf("%-32s %14s %14s\n", "network", "AlexNet 61M", "ResNet-50 25M");
  for (const auto& n : nets) {
    const double ta = perf::allreduce_time_ring(n, 512, pa.grad_bytes());
    const double tr = perf::allreduce_time_ring(n, 512, pr.grad_bytes());
    std::printf("%-32s %13.3fs %13.3fs\n", n.name.c_str(), ta, tr);
    csv.row(n.name, n.alpha, n.beta, ta, tr);
  }

  bench::section("gamma vs beta vs alpha (paper's ordering)");
  const double gamma = 0.9e-13;  // s/flop for a P100, as the paper quotes
  std::printf("gamma (P100 time per flop)      = %.1e s\n", gamma);
  std::printf("beta  (FDR IB time per byte)    = %.1e s  (%.0fx gamma)\n",
              nets[0].beta, nets[0].beta / gamma);
  std::printf("alpha (FDR IB per-message)      = %.1e s  (%.0fx beta)\n",
              nets[0].alpha, nets[0].alpha / nets[0].beta);

  bench::section("measured collective traffic (simulated cluster, 8 ranks)");
  const std::int64_t words = 100'000;
  std::printf("%-24s %10s %14s\n", "algorithm", "messages", "bytes");
  for (const auto algo :
       {comm::AllreduceAlgo::kStar, comm::AllreduceAlgo::kTree,
        comm::AllreduceAlgo::kRing, comm::AllreduceAlgo::kRecursiveHalving}) {
    comm::SimCluster cluster(8);
    cluster.run([&](comm::Communicator& c) {
      std::vector<float> grad(static_cast<std::size_t>(words), 1.0f);
      c.allreduce_sum(grad, algo);
    });
    const auto t = cluster.total_traffic();
    std::printf("%-24s %10lld %14lld\n", comm::to_string(algo),
                static_cast<long long>(t.messages),
                static_cast<long long>(t.bytes));
  }
  return 0;
}
