// Table 10 + Figure 1: ResNet accuracy across batch sizes, our recipe
// (LARS) vs the Facebook recipe (linear scaling + warmup).
//
// The paper's numbers: Facebook holds 76% to 8K then falls off a cliff
// (72.4% at 32K, 66% at 64K); the LARS rows stay at baseline through 32K
// and degrade gracefully at 64K (73.2% vs baseline 75.3%). The proxy sweep
// runs the residual proxy at 1x..32x the base batch under both recipes.
#include <cstdio>

#include "bench_common.hpp"

using namespace minsgd;

int main() {
  bench::banner("Table 10 / Figure 1 — accuracy vs batch, LARS vs linear",
                "LARS keeps baseline accuracy to 32K and degrades gently at "
                "64K; the linear-scaling recipe collapses past 8K");

  std::printf("paper (ResNet-50 top-1): batch    256    8K     16K    32K    64K\n");
  std::printf("  Facebook (heavy aug):        76.3%%  76.2%%  75.2%%  72.4%%  66.0%%\n");
  std::printf("  ours w/ LARS (weak aug):     75.3%%  75.3%%  75.3%%  75.4%%  73.2%%\n\n");

  auto proxy = core::bench_proxy();
  data::SyntheticImageNet ds(proxy.dataset);

  core::CsvWriter csv(bench::csv_path("table10_fig1_batch_sweep"),
                      {"batch", "rule", "best_acc", "final_acc", "diverged"});

  std::printf("%8s %-22s %10s %10s\n", "batch", "rule", "best acc",
              "final acc");
  double lars_at_16x = 0.0, linear_at_16x = 0.0, baseline = 0.0;
  for (std::int64_t batch :
       {proxy.base_batch, proxy.base_batch * 4, proxy.base_batch * 8,
        proxy.base_batch * 16, proxy.base_batch * 32}) {
    for (const auto rule : {core::LrRule::kLinearWarmup, core::LrRule::kLars}) {
      if (batch == proxy.base_batch && rule == core::LrRule::kLars) {
        continue;  // baseline row uses the plain recipe, like the paper
      }
      const auto rc = proxy.resnet_recipe(batch, rule);
      const auto out = bench::run_proxy(proxy.resnet_factory(), rc, ds);
      std::printf("%8lld %-22s %9.1f%% %9.1f%%%s   (%.0fs)\n",
                  static_cast<long long>(batch), core::to_string(rule),
                  100 * out.best_acc, 100 * out.final_acc,
                  out.diverged ? " DIVERGED" : "", out.wall_seconds);
      std::fflush(stdout);
      csv.row(batch, core::to_string(rule), out.best_acc, out.final_acc,
              out.diverged);
      if (batch == proxy.base_batch) baseline = out.best_acc;
      if (batch == proxy.base_batch * 16) {
        if (rule == core::LrRule::kLars) lars_at_16x = out.best_acc;
        else linear_at_16x = out.best_acc;
      }
    }
  }

  std::printf("\nShape under test (Figure 1): at >= 16x the base batch the "
              "LARS curve sits above\nthe linear-scaling curve and near the "
              "baseline.\n");
  std::printf("baseline %.3f | 16x linear %.3f | 16x LARS %.3f\n", baseline,
              linear_at_16x, lars_at_16x);
  return 0;
}
