// Table 2: fixed-epoch ImageNet training — iterations, per-iteration time
// and total time as the batch size (and node count) grows.
//
// The paper's table assumes batch 512 per machine, t_comp constant under
// weak scaling, and a log(P) communication term. We evaluate exactly that
// model (perf::project_training with CommModel::kLogTree) on the paper's
// own constants and print the resulting rows.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "perf/cost_model.hpp"
#include "perf/specs.hpp"

using namespace minsgd;

int main() {
  bench::banner("Table 2 — iterations & total time vs batch (fixed epochs)",
                "larger batches need linearly fewer iterations; per-iteration "
                "time is near constant, so total time drops almost linearly");

  const perf::WorkloadSpec work{/*flops_per_image=*/7'700'000'000,
                                /*params=*/25'000'000,
                                /*dataset_size=*/1'280'000,
                                /*epochs=*/100,
                                /*fwd_bwd_factor=*/3.0};
  const auto device = perf::nvidia_p100();
  const auto net = perf::mellanox_fdr_ib();

  core::CsvWriter csv(bench::csv_path("table2_iterations"),
                      {"batch", "nodes", "iterations", "t_comp_s", "t_comm_s",
                       "iter_time_s", "total_time_s"});

  std::printf("%10s %6s %12s %10s %10s %12s %12s\n", "batch", "nodes",
              "iterations", "t_comp", "t_comm", "iter_time", "total");
  std::vector<std::pair<std::int64_t, int>> rows = {
      {512, 1},     {1024, 2},   {2048, 4},    {4096, 8},
      {8192, 16},   {16384, 32}, {32768, 64},  {65536, 128},
      {131072, 256}, {1'280'000, 2500}};
  for (const auto& [batch, nodes] : rows) {
    const auto p = perf::project_training(
        work, {batch, nodes, perf::CommModel::kLogTree}, device, net);
    std::printf("%10lld %6d %12lld %9.3fs %9.5fs %11.3fs %12s\n",
                static_cast<long long>(batch), nodes,
                static_cast<long long>(p.iterations), p.t_comp, p.t_comm,
                p.iteration_time(),
                bench::human_time(p.total_seconds()).c_str());
    csv.row(batch, nodes, p.iterations, p.t_comp, p.t_comm,
            p.iteration_time(), p.total_seconds());
  }

  bench::section("check against the paper's closed forms");
  std::printf("batch 512  -> 250,000 iterations (paper row 1)\n");
  std::printf("batch 8192 -> 15,625 iterations (paper row 5)\n");
  std::printf("batch 1.28M-> 100 iterations (paper last row)\n");
  return 0;
}
