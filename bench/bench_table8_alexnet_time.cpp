// Table 8: 100-epoch ImageNet/AlexNet time-to-58% across hardware.
//
// Paper rows: 144h on CPU+K20, 6h10m on one DGX-1 (B=512), 2h19m on DGX-1
// (B=4096), 24m on 512 KNLs (B=32K), 11m on 1024 Skylake CPUs (B=32K).
// We project every row with the alpha-beta-gamma model using the paper's
// own device peaks and Table 11 networks, and report paper vs model.
#include <cstdio>

#include "bench_common.hpp"
#include "nn/analysis.hpp"
#include "nn/models.hpp"
#include "perf/cost_model.hpp"
#include "perf/specs.hpp"

using namespace minsgd;

int main() {
  bench::banner("Table 8 — AlexNet 100-epoch time across systems",
                "batch 32K + LARS turns a 6-hour DGX-1 job into 11 minutes "
                "on 1024 CPUs");

  // Profile the actual AlexNet definition rather than quoting constants.
  auto alex = nn::alexnet();
  const auto prof = nn::profile_model(*alex, nn::alexnet_input());
  perf::WorkloadSpec work{prof.flops_per_image, prof.params, 1'280'000, 100,
                          3.0};

  struct Row {
    const char* hardware;
    std::int64_t batch;
    perf::DeviceSpec device;
    int devices;                   // devices contributing flops
    int nodes;                     // network endpoints for the allreduce
    perf::NetworkSpec net;
    const char* paper_time;
  };
  // Projections use the bandwidth-optimal ring allreduce (what MLSL/NCCL
  // deploy); DGX-1 rows use the NVLink fabric spec.
  const Row rows[] = {
      {"8-core CPU + K20 GPU", 256, perf::nvidia_m40(), 1, 1,
       perf::mellanox_fdr_ib(), "144h"},
      {"DGX-1 (8xP100), B=512", 512, perf::nvidia_p100(), 8, 8,
       perf::nvlink(), "6h 10m"},
      {"DGX-1 (8xP100), B=4096", 4096, perf::nvidia_p100(), 8, 8,
       perf::nvlink(), "2h 19m"},
      {"512 KNLs, B=32K", 32768, perf::intel_knl7250(), 512, 512,
       perf::intel_qdr_ib(), "24m"},
      {"1024 Skylake CPUs, B=32K", 32768, perf::intel_skylake8160(), 1024,
       1024, perf::intel_qdr_ib(), "11m"},
  };

  core::CsvWriter csv(bench::csv_path("table8_alexnet_time"),
                      {"hardware", "batch", "paper_time", "model_seconds"});

  std::printf("%-28s %8s %12s %12s\n", "hardware", "batch", "paper",
              "model");
  for (const auto& r : rows) {
    const auto p = perf::project_training(
        work, {r.batch, r.nodes, perf::CommModel::kRing}, r.device, r.net);
    std::printf("%-28s %8lld %12s %12s\n", r.hardware,
                static_cast<long long>(r.batch), r.paper_time,
                bench::human_time(p.total_seconds()).c_str());
    csv.row(r.hardware, r.batch, r.paper_time, p.total_seconds());
  }

  bench::section("reading");
  std::printf(
      "The K20-era row is a batch-256 single-device run; every later row\n"
      "cuts time by adding devices and growing the batch so each device\n"
      "keeps a constant local batch. LARS is what keeps the 32K rows at\n"
      "the 58%% accuracy target (see bench_table7_alexnet_lars).\n");
  return 0;
}
