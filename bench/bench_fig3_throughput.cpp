// Figure 3: per-device throughput (images/second) rises with the local
// batch size over a range, then saturates — the reason scaling out requires
// scaling the global batch.
//
// Measured on this machine with the proxy model: one forward+backward pass
// per batch size, repeated for stable timing.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/proxy.hpp"
#include "nn/loss.hpp"

using namespace minsgd;

int main() {
  bench::banner("Figure 3 — device throughput vs per-device batch size",
                "within a range, larger batches make a single device faster "
                "(better kernel efficiency); memory bounds the range");

  auto proxy = core::bench_proxy();
  data::SyntheticImageNet ds(proxy.dataset);
  auto net = proxy.alexnet_factory()();
  Rng rng(1);
  net->init(rng);
  nn::SoftmaxCrossEntropy loss;
  data::ShardedLoader loader(ds, 512);

  core::CsvWriter csv(bench::csv_path("fig3_throughput"),
                      {"local_batch", "images_per_second"});
  std::printf("%12s %18s\n", "local batch", "images/second");

  double best = 0.0;
  std::int64_t best_batch = 0;
  for (std::int64_t batch : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    // Build a batch of the requested size from the loader's 512-image batch.
    const auto full = loader.load_train(0, 0);
    const std::int64_t img = ds.image_numel();
    data::Batch b;
    b.x = Tensor({batch, 3, ds.resolution(), ds.resolution()});
    b.labels.assign(full.labels.begin(), full.labels.begin() + batch);
    std::copy(full.x.data(), full.x.data() + batch * img, b.x.data());

    Tensor logits, dlogits, dx;
    // Warm-up pass, then timed passes covering >= 512 images.
    net->zero_grad();
    net->forward(b.x, logits, true);
    auto lres = loss.forward_backward(logits, b.labels, &dlogits);
    (void)lres;
    net->backward(b.x, logits, dlogits, dx);

    const std::int64_t reps = std::max<std::int64_t>(1, 512 / batch);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t r = 0; r < reps; ++r) {
      net->zero_grad();
      net->forward(b.x, logits, true);
      loss.forward_backward(logits, b.labels, &dlogits);
      net->backward(b.x, logits, dlogits, dx);
    }
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double ips = static_cast<double>(reps * batch) / dt;
    std::printf("%12lld %18.1f\n", static_cast<long long>(batch), ips);
    csv.row(batch, ips);
    if (ips > best) {
      best = ips;
      best_batch = batch;
    }
  }
  std::printf("\npeak throughput at local batch %lld — the paper's M40 curve "
              "peaks at 512 per GPU;\nthe shape (rise then plateau) is the "
              "claim under test.\n",
              static_cast<long long>(best_batch));
  return 0;
}
