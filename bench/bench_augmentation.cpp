// Data augmentation (the YES/NO rows of Tables 9 and 10).
//
// The paper's baseline gains 2.3 points from weak augmentation (73.0% ->
// 75.3%). Whether augmentation helps depends on the data distribution
// being closed under the augmentations — true for natural images, not for
// the default synthetic task (whose patterns are shift- but not
// flip-invariant). This bench shows both regimes:
//   1. the default task: hflip augmentation produces out-of-distribution
//      training samples and *costs* accuracy (a substitution limit,
//      recorded as such in EXPERIMENTS.md);
//   2. the mirror-invariant task variant with a small training set: the
//      distribution is flip-closed and augmentation recovers accuracy,
//      reproducing the paper's direction.
#include <cstdio>

#include "bench_common.hpp"

using namespace minsgd;

namespace {

void sweep(const char* label, const data::SynthConfig& cfg,
           const core::ProxyScale& proxy, std::int64_t epochs,
           std::optional<data::AugmentConfig> transform,
           core::CsvWriter& csv) {
  data::SyntheticImageNet ds(cfg);
  std::printf("%s\n", label);
  for (bool aug : {false, true}) {
    auto rc = proxy.recipe(proxy.base_batch, core::LrRule::kLinearWarmup);
    rc.augment = aug;
    rc.augment_config = transform;
    rc.epochs = epochs;
    const auto out = bench::run_proxy(proxy.alexnet_factory(), rc, ds);
    std::printf("  augmentation %-3s best acc %5.1f%%\n", aug ? "ON" : "OFF",
                100 * out.best_acc);
    csv.row(label, aug, out.best_acc);
  }
}

}  // namespace

int main() {
  bench::banner("Tables 9/10 augmentation rows — weak augmentation",
                "the paper's baseline gains 2.3 points from weak "
                "augmentation (73.0% -> 75.3% on ResNet-50)");

  auto proxy = core::bench_proxy();
  core::CsvWriter csv(bench::csv_path("augmentation"),
                      {"task", "augment", "best_acc"});

  // 1. Default task: not flip-closed; augmentation is a distribution
  //    mismatch and hurts (see file comment).
  sweep("default task (not flip-invariant), pad-crop+flip:", proxy.dataset,
        proxy, proxy.epochs, std::nullopt, csv);

  // 2. Mirror-invariant variant, data-starved so regularization matters;
  //    flip-only augmentation (pad-crop's zero borders are themselves
  //    out-of-distribution for the toroidal generator).
  auto cfg = proxy.dataset;
  cfg.mirror_invariant = true;
  cfg.train_size = 256;
  std::printf("\n");
  sweep("mirror-invariant task, 256 train samples, flip-only:", cfg, proxy,
        24, data::AugmentConfig{.pad = 0, .hflip = true}, csv);

  std::printf(
      "\nReading: augmentation helps exactly when the task is closed under\n"
      "the transform — the natural-image property the paper relies on. The\n"
      "flip-closed variant reproduces the paper's direction; the default\n"
      "task documents the substitution's limit.\n");
  return 0;
}
