// Table 4: the prior state of the art — moderate batch growth (4-32x) with
// linear scaling + warmup preserves accuracy. The proxy sweep covers the
// same regime: up to ~8x the base batch the plain recipe holds, which is
// exactly why the papers in the table stopped where they did.
#include <cstdio>

#include "bench_common.hpp"

using namespace minsgd;

int main() {
  bench::banner("Table 4 — prior art: linear scaling works up to ~8K",
                "Google 128->1K, Amazon 256->5K, Facebook 256->8K all kept "
                "accuracy with linear scaling + warmup");

  std::printf("%-10s %-12s %-12s %-12s %-12s %-10s\n", "team", "model",
              "base batch", "large batch", "base acc", "large acc");
  std::printf("%-10s %-12s %-12s %-12s %-12s %-10s\n", "Google", "AlexNet",
              "128", "1024", "57.7%", "56.7%");
  std::printf("%-10s %-12s %-12s %-12s %-12s %-10s\n", "Amazon", "ResNet-152",
              "256", "5120", "77.8%", "77.8%");
  std::printf("%-10s %-12s %-12s %-12s %-12s %-10s\n", "Facebook", "ResNet-50",
              "256", "8192", "76.40%", "76.26%");

  bench::section("proxy reproduction: linear scaling in the moderate regime");
  auto proxy = core::bench_proxy();
  data::SyntheticImageNet ds(proxy.dataset);

  core::CsvWriter csv(bench::csv_path("table4_priorart"),
                      {"batch", "scale_factor", "best_acc", "diverged"});

  const auto base = bench::run_proxy(
      proxy.alexnet_factory(),
      proxy.recipe(proxy.base_batch, core::LrRule::kLinearWarmup), ds);
  std::printf("%10s batch=%4lld acc=%5.1f%%  (baseline)\n", "proxy",
              static_cast<long long>(proxy.base_batch), 100 * base.best_acc);
  csv.row(proxy.base_batch, 1, base.best_acc, base.diverged);

  for (std::int64_t factor : {2, 4, 8}) {
    const auto batch = proxy.base_batch * factor;
    const auto out = bench::run_proxy(
        proxy.alexnet_factory(),
        proxy.recipe(batch, core::LrRule::kLinearWarmup), ds);
    std::printf("%10s batch=%4lld acc=%5.1f%%  (%lldx, linear scaling%s)\n",
                "proxy", static_cast<long long>(batch), 100 * out.best_acc,
                static_cast<long long>(factor),
                out.diverged ? ", DIVERGED" : "");
    csv.row(batch, factor, out.best_acc, out.diverged);
  }
  std::printf(
      "\nUp to ~8x the recipe holds within a few points of baseline — the\n"
      "regime Table 4's systems operated in. Past that, see Table 5.\n");
  return 0;
}
