// Figure 7: with enough hardware, the large-batch run reaches the target
// accuracy in a fraction of the wall-clock time (2h vs 6h in the paper).
//
// Two ingredients: the measured per-epoch accuracy curves (proxy runs, same
// epochs either way) and the perf model's time-per-epoch for each
// configuration on DGX-1-like hardware (8 P100s; the large batch keeps all
// 8 busy, the small batch leaves them starved — the paper ran B=512 and
// B=4096 on the same DGX-1).
#include <cstdio>

#include "bench_common.hpp"
#include "nn/analysis.hpp"
#include "nn/models.hpp"
#include "perf/cost_model.hpp"
#include "perf/specs.hpp"

using namespace minsgd;

int main() {
  bench::banner("Figure 7 — accuracy vs wall-clock time",
                "same FLOPs, but the large batch finishes in ~1/3 the time "
                "(2h 19m vs 6h 10m on one DGX-1)");

  // Measured curves from the proxy.
  auto proxy = core::bench_proxy();
  data::SyntheticImageNet ds(proxy.dataset);
  const std::int64_t large = proxy.base_batch * 16;
  const auto small_run = bench::run_proxy(
      proxy.alexnet_factory(),
      proxy.recipe(proxy.base_batch, core::LrRule::kLinearWarmup), ds);
  const auto large_run = bench::run_proxy(
      proxy.alexnet_factory(), proxy.recipe(large, core::LrRule::kLars), ds);

  // Modeled time per epoch for the paper's AlexNet on one DGX-1.
  auto alex = nn::alexnet();
  const auto prof = nn::profile_model(*alex, nn::alexnet_input());
  // AlexNet is dominated by dense FC GEMMs, which sustain a much larger
  // fraction of P100 peak than conv nets; 0.8 reproduces the paper's
  // measured 2h19m for the B=4096 DGX-1 run.
  auto device = perf::nvidia_p100();
  device.dnn_efficiency = 0.8;
  const auto net = perf::nvlink();
  auto epoch_seconds = [&](std::int64_t batch, int gpus) {
    perf::WorkloadSpec w{prof.flops_per_image, prof.params, 1'280'000, 1, 3.0};
    // Small batches cannot feed all 8 GPUs efficiently: the paper's B=512
    // DGX-1 run is the 8-GPU config at local batch 64, below the
    // throughput knee (Figure 3); the 2.1x starvation factor is the ratio
    // of the paper's measured 6h10m to the fed-GPU projection.
    const auto p = perf::project_training(
        w, {batch, gpus, perf::CommModel::kRing}, device, net);
    const double starvation = (batch / gpus < 256) ? 2.1 : 1.0;
    return p.total_seconds() * starvation;
  };
  const double small_epoch_s = epoch_seconds(512, 8);
  const double large_epoch_s = epoch_seconds(4096, 8);

  core::CsvWriter csv(bench::csv_path("fig7_time_to_accuracy"),
                      {"epoch", "small_hours", "small_acc", "large_hours",
                       "large_acc"});
  std::printf("%6s %14s %10s %14s %10s\n", "epoch", "B=512 time", "acc",
              "B=4096 time", "acc");
  const std::size_t epochs = small_run.full.epochs.size();
  for (std::size_t e = 0; e < epochs; ++e) {
    const double t_small = small_epoch_s * static_cast<double>(e + 1) * 100 /
                           static_cast<double>(epochs);
    const double t_large = large_epoch_s * static_cast<double>(e + 1) * 100 /
                           static_cast<double>(epochs);
    const double acc_small = small_run.full.epochs[e].test_acc;
    const double acc_large = e < large_run.full.epochs.size()
                                 ? large_run.full.epochs[e].test_acc
                                 : 0.0;
    std::printf("%6zu %14s %9.1f%% %14s %9.1f%%\n", e,
                bench::human_time(t_small).c_str(), 100 * acc_small,
                bench::human_time(t_large).c_str(), 100 * acc_large);
    csv.row(e, t_small / 3600, acc_small, t_large / 3600, acc_large);
  }
  std::printf(
      "\nShape under test: both columns end at the same accuracy, but the\n"
      "large-batch time axis is ~%.1fx shorter (paper: 6h10m -> 2h19m).\n",
      small_epoch_s / large_epoch_s);
  return 0;
}
