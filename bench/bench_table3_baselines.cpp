// Table 3: the standard accuracy benchmarks — AlexNet 58% in 100 epochs,
// ResNet-50 75.3% in 90 epochs — reproduced as proxy baselines.
//
// The proxies train at the calibrated base batch; their absolute accuracy
// differs from ImageNet's (different task), so the recorded baseline is the
// anchor every other accuracy bench compares against.
#include <cstdio>

#include "bench_common.hpp"

using namespace minsgd;

int main() {
  bench::banner("Table 3 — baseline accuracy targets",
                "AlexNet reaches 58% top-1 in 100 epochs, ResNet-50 75.3% in "
                "90 epochs; large-batch runs must match these in the same "
                "epoch budget");

  auto proxy = core::bench_proxy();
  data::SyntheticImageNet ds(proxy.dataset);

  core::CsvWriter csv(bench::csv_path("table3_baselines"),
                      {"model", "paper_target", "proxy_acc", "epochs"});

  std::printf("%-20s %14s %12s %8s\n", "model", "paper target", "proxy acc",
              "epochs");
  {
    const auto rc = proxy.recipe(proxy.base_batch, core::LrRule::kLinearWarmup);
    const auto out = bench::run_proxy(proxy.alexnet_factory(), rc, ds);
    std::printf("%-20s %14s %11.1f%% %8lld   (%.0fs)\n", "AlexNet proxy",
                "58.0%", 100 * out.best_acc,
                static_cast<long long>(rc.epochs), out.wall_seconds);
    csv.row("alexnet_proxy", 0.58, out.best_acc, rc.epochs);
  }
  {
    const auto rc =
        proxy.resnet_recipe(proxy.base_batch, core::LrRule::kLinearWarmup);
    const auto out = bench::run_proxy(proxy.resnet_factory(), rc, ds);
    std::printf("%-20s %14s %11.1f%% %8lld   (%.0fs)\n", "ResNet proxy",
                "75.3%", 100 * out.best_acc,
                static_cast<long long>(rc.epochs), out.wall_seconds);
    csv.row("resnet_proxy", 0.753, out.best_acc, rc.epochs);
  }
  std::printf(
      "\nAbsolute values differ by design (synthetic task); what transfers\n"
      "is the role: these are the accuracies the large-batch recipes must\n"
      "match within the same number of epochs.\n");
  return 0;
}
