// Table 12: the 45nm energy table, and the paper's implication — large
// batches save energy because they move fewer gradient words per epoch.
#include <cstdio>

#include "bench_common.hpp"
#include "nn/analysis.hpp"
#include "nn/models.hpp"
#include "perf/energy.hpp"

using namespace minsgd;

int main() {
  bench::banner("Table 12 — energy per operation (Horowitz, 45nm CMOS)",
                "communication costs orders of magnitude more energy than "
                "computation (DRAM access 640 pJ vs float add 0.9 pJ)");

  std::printf("%-26s %-14s %10s\n", "operation", "type", "energy (pJ)");
  core::CsvWriter csv(bench::csv_path("table12_energy"),
                      {"operation", "type", "picojoules"});
  for (const auto& e : perf::energy_table_45nm()) {
    const char* kind =
        e.kind == perf::OpKind::kComputation ? "Computation" : "Communication";
    std::printf("%-26s %-14s %10.1f\n", e.operation.c_str(), kind,
                e.picojoules);
    csv.row(e.operation, kind, e.picojoules);
  }

  bench::section("per-epoch training energy vs batch size (ResNet-50 model)");
  auto res50 = nn::resnet(50);
  const auto prof = nn::profile_model(*res50, nn::resnet_input());
  const std::int64_t n = 1'280'000;
  std::printf("%10s %16s %16s %12s\n", "batch", "compute J/epoch",
              "comm J/epoch", "comm share");
  core::CsvWriter csv2(bench::csv_path("table12_epoch_energy"),
                       {"batch", "compute_j", "comm_j"});
  for (std::int64_t batch : {256, 1024, 8192, 32768}) {
    const std::int64_t iters = n / batch;
    // Compute work per epoch is batch-invariant; comm scales with iters.
    const auto per_iter = perf::estimate_iteration_energy(
        3 * prof.flops_per_image * batch, prof.params, /*hops=*/2);
    const double comp = per_iter.compute_j * static_cast<double>(iters);
    const double comm = per_iter.comm_j * static_cast<double>(iters);
    std::printf("%10lld %15.1fJ %15.1fJ %11.4f%%\n",
                static_cast<long long>(batch), comp, comm,
                100.0 * comm / (comp + comm));
    csv2.row(batch, comp, comm);
  }
  std::printf(
      "\nFixed epochs fix the compute energy; growing the batch divides the\n"
      "communication energy by the same factor it divides the iteration\n"
      "count (the paper's bandwidth/latency argument, in joules).\n");
  return 0;
}
