// Figures 8, 9, 10: iterations, messages, and communication volume as
// functions of the batch size at a fixed epoch budget.
//
// Analytic series use the paper's identities (iterations = E*n/B, messages
// ~ iterations, volume = |W|*E*n/B). The measured series runs a real
// data-parallel proxy training on the simulated cluster at several batch
// sizes and reads the traffic meter, confirming the identities hold for the
// actual ring-allreduce implementation.
#include <cstdio>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "nn/analysis.hpp"
#include "nn/models.hpp"
#include "optim/schedule.hpp"
#include "train/trainer.hpp"

using namespace minsgd;

int main() {
  bench::banner("Figures 8/9/10 — iterations, messages, volume vs batch",
                "fixing epochs, batch B gives E*n/B iterations; messages are "
                "linear in iterations and bytes moved are |W|*E*n/B");

  bench::section("analytic (ImageNet, ResNet-50, 90 epochs)");
  auto res50 = nn::resnet(50);
  const auto prof = nn::profile_model(*res50, nn::resnet_input());
  const std::int64_t n = 1'280'000, epochs = 90;
  core::CsvWriter csv(bench::csv_path("fig8_9_10_analytic"),
                      {"batch", "iterations", "messages", "gbytes"});
  std::printf("%10s %12s %12s %14s\n", "batch", "iterations", "messages",
              "volume (GB)");
  for (std::int64_t batch = 256; batch <= 65536; batch *= 2) {
    const std::int64_t iters = optim::iterations_for_epochs(epochs, n, batch);
    const double gb = static_cast<double>(prof.grad_bytes()) * iters / 1e9;
    std::printf("%10lld %12lld %12lld %13.1f\n",
                static_cast<long long>(batch), static_cast<long long>(iters),
                static_cast<long long>(iters), gb);
    csv.row(batch, iters, iters, gb);
  }

  bench::section("measured (proxy model, 4-rank simulated cluster, 1 epoch)");
  auto proxy = core::bench_proxy();
  data::SyntheticImageNet ds(proxy.dataset);
  core::CsvWriter csv2(bench::csv_path("fig8_9_10_measured"),
                       {"batch", "iterations", "messages", "bytes"});
  std::printf("%10s %12s %12s %14s\n", "batch", "iterations", "messages",
              "bytes");
  for (std::int64_t batch : {64, 128, 256, 512}) {
    train::TrainOptions options;
    options.global_batch = batch;
    options.epochs = 1;
    options.eval_every = 100;  // skip eval; we only need the traffic
    optim::ConstantLr lr(0.01);
    const auto dist = train::train_sync_data_parallel(
        proxy.alexnet_factory(),
        [] { return std::make_unique<optim::Sgd>(); }, lr, ds, options, 4,
        comm::AllreduceAlgo::kRing);
    std::printf("%10lld %12lld %12lld %14lld\n",
                static_cast<long long>(batch),
                static_cast<long long>(dist.iterations),
                static_cast<long long>(dist.traffic.messages),
                static_cast<long long>(dist.traffic.bytes));
    csv2.row(batch, dist.iterations, dist.traffic.messages,
             dist.traffic.bytes);
  }
  std::printf(
      "\nDoubling the batch halves iterations, messages and bytes alike —\n"
      "the measured columns track the analytic identities exactly.\n");
  return 0;
}
