// Elastic membership: reconfiguration pause vs steady-state throughput.
//
// The checkpoint/restart driver (train/fault_tolerant.hpp) pays a full
// teardown + reload to change the world; the elastic trainer
// (train/elastic.hpp) instead pauses at an iteration boundary, re-forms the
// communicator over the survivors, rescales LR/global batch, and keeps
// going. This bench quantifies that trade on the simulated cluster:
//
//   * steady-state img/s at fixed worlds 2..4 (the envelope an elastic run
//     moves within), and
//   * a shrink+grow elastic run, reporting each reconfiguration's pause and
//     the throughput actually delivered (examples are counted per
//     membership segment, since the global batch tracks the live world).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "comm/membership.hpp"
#include "core/proxy.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "train/elastic.hpp"

using namespace minsgd;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Examples processed by an elastic run: the global batch is
/// local_batch x live world, so integrate world over the membership
/// segments the reconfiguration records delimit.
double elastic_examples(const train::ElasticResult& res, int initial_world,
                        std::int64_t local_batch) {
  double examples = 0.0;
  std::int64_t prev_iter = 0;
  int world = initial_world;
  for (const auto& rec : res.reconfigs) {
    examples += static_cast<double>(world) *
                static_cast<double>(local_batch) *
                static_cast<double>(rec.at_iter - prev_iter);
    prev_iter = rec.at_iter;
    world = rec.world;
  }
  examples += static_cast<double>(world) * static_cast<double>(local_batch) *
              static_cast<double>(res.iterations - prev_iter);
  return examples;
}

}  // namespace

int main() {
  bench::banner("Elastic membership — resize pause vs throughput",
                "resizing a live run costs a bounded pause at an iteration "
                "boundary, not a full-cluster restart");

  auto proxy = core::micro_proxy();
  data::SyntheticImageNet ds(proxy.dataset);

  const std::int64_t local_batch = 16;
  const std::int64_t total_iters = 48;
  optim::ConstantLr lr(proxy.base_lr);
  auto opt_factory = [] {
    return std::make_unique<optim::Sgd>(
        optim::SgdConfig{.momentum = 0.9, .weight_decay = 0.0005});
  };

  auto base_options = [&] {
    train::ElasticOptions eo;
    eo.train.overlap_comm = true;
    eo.train.bucket_bytes = 256 * 1024;
    eo.train.eval_every = 1 << 20;  // throughput bench: skip eval passes
    eo.train.detect_divergence = false;
    eo.local_batch = local_batch;
    eo.max_world = 4;
    eo.total_iterations = total_iters;
    eo.base_global_batch = local_batch * 4;
    return eo;
  };

  core::CsvWriter csv(bench::csv_path("elastic"),
                      {"mode", "world", "iterations", "reconfigs", "img_per_s",
                       "total_pause_ms", "max_pause_ms"});

  bench::section("steady state: fixed worlds (the elastic envelope)");
  std::printf("%-12s %6s %8s %10s\n", "mode", "world", "iters", "img/s");
  double fixed4_img_s = 0.0;
  for (int world = 2; world <= 4; ++world) {
    auto eo = base_options();
    eo.initial_world = world;
    const auto t0 = Clock::now();
    const auto res =
        train::train_sync_elastic(proxy.alexnet_factory(), opt_factory, lr,
                                  ds, eo);
    const double secs = seconds_since(t0);
    const double img_s = static_cast<double>(world * local_batch) *
                         static_cast<double>(res.iterations) / secs;
    if (world == 4) fixed4_img_s = img_s;
    std::printf("%-12s %6d %8lld %10.0f\n", "fixed", world,
                static_cast<long long>(res.iterations), img_s);
    csv.row("fixed", world, res.iterations, res.reconfigurations, img_s, 0.0,
            0.0);
  }

  bench::section("elastic: start 4-wide, shrink to 3, grow back to 4");
  auto eo = base_options();
  eo.initial_world = 4;
  eo.events = {
      {total_iters / 3, comm::ElasticEventKind::kLeave, 3},
      {2 * total_iters / 3, comm::ElasticEventKind::kJoin, 3},
  };
  const auto t0 = Clock::now();
  const auto res = train::train_sync_elastic(proxy.alexnet_factory(),
                                             opt_factory, lr, ds, eo);
  const double secs = seconds_since(t0);
  const double img_s = elastic_examples(res, eo.initial_world, local_batch) /
                       secs;

  double total_pause_ms = 0.0, max_pause_ms = 0.0;
  std::printf("%-4s %6s %6s %10s %9s %6s\n", "gen", "iter", "world",
              "pause_ms", "attempts", "fault");
  for (const auto& rec : res.reconfigs) {
    const double pause_ms = static_cast<double>(rec.pause_ns) / 1e6;
    total_pause_ms += pause_ms;
    if (pause_ms > max_pause_ms) max_pause_ms = pause_ms;
    std::printf("%-4lld %6lld %6d %10.2f %9d %6s\n",
                static_cast<long long>(rec.generation),
                static_cast<long long>(rec.at_iter), rec.world, pause_ms,
                rec.attempts, rec.fault_triggered ? "yes" : "no");
  }
  std::printf("\nelastic: %lld iters, %d reconfigs, %.0f img/s "
              "(%.0f%% of the fixed 4-wide rate), pauses total %.2f ms "
              "(max %.2f ms)\n",
              static_cast<long long>(res.iterations), res.reconfigurations,
              img_s, fixed4_img_s > 0 ? 100.0 * img_s / fixed4_img_s : 0.0,
              total_pause_ms, max_pause_ms);
  csv.row("elastic", eo.initial_world, res.iterations, res.reconfigurations,
          img_s, total_pause_ms, max_pause_ms);

  std::printf("\nEach resize costs one rendezvous + communicator re-form at\n"
              "an iteration boundary; between resizes the run moves at the\n"
              "fixed-world rate of its current size. A checkpoint/restart\n"
              "driver would instead pay teardown + reload + warm re-entry\n"
              "for every size change (see bench_table8/9 for restart cost).\n");
  return 0;
}
