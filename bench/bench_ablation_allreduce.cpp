// Ablation: allreduce algorithm choice.
//
// The same data-parallel training step with each collective, measuring
// (a) correctness-invariant accuracy, (b) messages and bytes on the wire,
// and (c) the alpha-beta model's predicted cost of each algorithm on the
// paper's networks at scale — why production systems pick ring for large
// gradients and trees for small ones.
#include <cstdio>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "perf/cost_model.hpp"
#include "perf/specs.hpp"

using namespace minsgd;

int main() {
  bench::banner("Ablation — allreduce algorithm",
                "semantics identical, wire traffic very different");

  auto proxy = core::bench_proxy();
  data::SyntheticImageNet ds(proxy.dataset);

  core::CsvWriter csv(bench::csv_path("ablation_allreduce"),
                      {"algo", "acc", "messages", "bytes"});

  bench::section("one epoch of 8-way data-parallel training per algorithm");
  std::printf("%-24s %10s %10s %14s\n", "algorithm", "acc", "messages",
              "bytes");
  for (const auto algo :
       {comm::AllreduceAlgo::kStar, comm::AllreduceAlgo::kTree,
        comm::AllreduceAlgo::kRing, comm::AllreduceAlgo::kRecursiveHalving}) {
    auto rc = proxy.recipe(proxy.base_batch * 8, core::LrRule::kLars);
    rc.epochs = 2;
    rc.warmup_epochs = 0.5;
    const auto res =
        core::run_recipe_distributed(proxy.alexnet_factory(), rc, ds, 8, algo);
    std::printf("%-24s %9.1f%% %10lld %14lld\n", comm::to_string(algo),
                100 * res.result.best_test_acc,
                static_cast<long long>(res.traffic.messages),
                static_cast<long long>(res.traffic.bytes));
    csv.row(comm::to_string(algo), res.result.best_test_acc,
            res.traffic.messages, res.traffic.bytes);
  }
  std::printf("(accuracy identical across algorithms: the collective changes\n"
              " the wire pattern, not the mathematics)\n");

  bench::section("modeled time for a 25M-param gradient, QDR IB");
  const auto net = perf::intel_qdr_ib();
  const std::int64_t bytes = 25'000'000 * 4;
  std::printf("%8s %14s %14s\n", "nodes", "log-tree", "ring");
  for (int nodes : {8, 64, 512, 2048}) {
    std::printf("%8d %13.4fs %13.4fs\n", nodes,
                perf::allreduce_time_logtree(net, nodes, bytes),
                perf::allreduce_time_ring(net, nodes, bytes));
  }
  std::printf("\nRing's per-node traffic is batch-size- and node-count-\n"
              "independent (2|W| bytes), which is what lets the 2048-node\n"
              "runs keep t_comm under t_comp (Table 9).\n");
  return 0;
}
