// Table 5: without LARS, no learning rate works at 16x batch.
//
// The paper sweeps AlexNet B=4096 base LRs from 0.01 to 0.16 (the linear-
// scaling prescription): low LRs underfit (53%), high LRs diverge (0.001).
// The proxy sweep does the same at 16x the base batch: a grid of base LRs
// under linear scaling + warmup, bracketing the prescription, with the
// LARS row attached for contrast.
#include <cstdio>

#include "bench_common.hpp"

using namespace minsgd;

int main() {
  bench::banner("Table 5 — LR sweep at large batch (no LARS) fails",
                "AlexNet B=4096: best LR gives 53.1% vs 58.3% baseline; "
                "aggressive LRs give 0.001 (divergence)");

  auto proxy = core::bench_proxy();
  data::SyntheticImageNet ds(proxy.dataset);
  const std::int64_t large = proxy.base_batch * 16;

  core::CsvWriter csv(bench::csv_path("table5_lr_sweep"),
                      {"batch", "base_lr", "rule", "best_acc", "diverged"});

  std::printf("%8s %10s %-24s %10s\n", "batch", "base LR", "rule", "acc");

  // Baseline row (paper: B=512, LR 0.02, 58.3%).
  {
    const auto rc = proxy.recipe(proxy.base_batch, core::LrRule::kLinearWarmup);
    const auto out = bench::run_proxy(proxy.alexnet_factory(), rc, ds);
    std::printf("%8lld %10.4f %-24s %9.1f%%  (baseline)\n",
                static_cast<long long>(proxy.base_batch), rc.base_lr,
                "regular", 100 * out.best_acc);
    csv.row(proxy.base_batch, rc.base_lr, "regular", out.best_acc,
            out.diverged);
  }

  // The sweep: linear scaling multiplies each base LR by 16.
  for (double blr : {0.0125, 0.025, 0.05, 0.1, 0.2, 0.4}) {
    auto rc = proxy.recipe(large, core::LrRule::kLinearWarmup);
    rc.base_lr = blr;
    const auto out = bench::run_proxy(proxy.alexnet_factory(), rc, ds);
    // The paper reports diverged runs as accuracy 0.001.
    const double reported = out.diverged ? 0.001 : out.best_acc;
    std::printf("%8lld %10.4f %-24s %9.1f%%%s\n",
                static_cast<long long>(large), blr, "linear+warmup",
                100 * reported, out.diverged ? "  (DIVERGED)" : "");
    csv.row(large, blr, "linear+warmup", reported, out.diverged);
  }

  // LARS row for contrast (Table 7's fix).
  {
    const auto rc = proxy.recipe(large, core::LrRule::kLars);
    const auto out = bench::run_proxy(proxy.alexnet_factory(), rc, ds);
    std::printf("%8lld %10.4f %-24s %9.1f%%  (the fix)\n",
                static_cast<long long>(large), rc.base_lr, "LARS+warmup",
                100 * out.best_acc);
    csv.row(large, rc.base_lr, "LARS+warmup", out.best_acc, out.diverged);
  }

  std::printf(
      "\nShape under test: no point of the no-LARS sweep reaches baseline;\n"
      "small LRs plateau low, large LRs blow up. LARS closes the gap at the\n"
      "same batch size and epoch budget.\n");
  return 0;
}
