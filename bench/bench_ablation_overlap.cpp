// Ablation: overlapping gradient allreduce with backward compute.
//
// The same 8-way data-parallel AlexNet-proxy run with overlap_comm off and
// on, at several bucket sizes. Overlap launches each gradient bucket's
// allreduce on the comm worker the moment backward finalizes it, so most of
// the collective runs while backward is still producing earlier layers'
// gradients. The table reports total collective time vs *exposed* time (what
// the iteration actually stalled on) — hiding is total minus exposed. Both
// paths use identical bucket boundaries and reduction order, so accuracy and
// final weights are bit-identical; only wall-clock accounting moves.
#include <cstdio>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "core/proxy.hpp"
#include "core/recipe.hpp"
#include "train/trainer.hpp"

using namespace minsgd;

int main() {
  bench::banner("Ablation — comm/compute overlap",
                "overlap hides allreduce under backward; exposed comm drops, "
                "bits do not change");

  auto proxy = core::bench_proxy();
  data::SyntheticImageNet ds(proxy.dataset);
  const int world = 8;
  const auto algo = comm::AllreduceAlgo::kRing;

  core::CsvWriter csv(bench::csv_path("ablation_overlap"),
                      {"overlap", "bucket_kib", "acc", "total_comm_ms_per_it",
                       "exposed_comm_ms_per_it", "exposed_frac"});

  auto run = [&](bool overlap, std::int64_t bucket_bytes) {
    auto rc = proxy.recipe(proxy.base_batch * world, core::LrRule::kLars);
    rc.epochs = 2;
    rc.warmup_epochs = 0.5;
    auto recipe = core::make_recipe(rc, ds);
    recipe.options.bucket_bytes = bucket_bytes;
    recipe.options.overlap_comm = overlap;
    return train::train_sync_data_parallel(proxy.alexnet_factory(),
                                           recipe.optimizer_factory,
                                           *recipe.schedule, ds,
                                           recipe.options, world, algo);
  };

  bench::section("8-way AlexNet proxy, ring allreduce, 2 epochs");
  std::printf("%-10s %10s %8s %14s %16s %10s\n", "overlap", "bucket", "acc",
              "total ms/it", "exposed ms/it", "exposed%");

  double off_exposed_ms = -1.0, on_best_exposed_ms = -1.0;
  const std::int64_t buckets[] = {64 * 1024, 256 * 1024, 0};
  for (const bool overlap : {false, true}) {
    for (const std::int64_t bucket : buckets) {
      // Without overlap the bucket size only changes message count; run the
      // serial baseline once, at the bucket the overlap runs also use.
      if (!overlap && bucket != buckets[0]) continue;
      const auto res = run(overlap, bucket);
      const double iters = static_cast<double>(res.iterations);
      const double total_ms =
          static_cast<double>(res.total_comm_ns) / 1e6 / iters;
      const double exposed_ms =
          static_cast<double>(res.exposed_comm_ns) / 1e6 / iters;
      const double frac =
          res.total_comm_ns > 0
              ? static_cast<double>(res.exposed_comm_ns) /
                    static_cast<double>(res.total_comm_ns)
              : 0.0;
      char bucket_str[32];
      if (bucket == 0) {
        std::snprintf(bucket_str, sizeof(bucket_str), "whole");
      } else {
        std::snprintf(bucket_str, sizeof(bucket_str), "%lld KiB",
                      static_cast<long long>(bucket / 1024));
      }
      std::printf("%-10s %10s %7.1f%% %14.3f %16.3f %9.1f%%\n",
                  overlap ? "on" : "off", bucket_str,
                  100 * res.result.best_test_acc, total_ms, exposed_ms,
                  100 * frac);
      csv.row(overlap ? 1 : 0, bucket / 1024, res.result.best_test_acc,
              total_ms, exposed_ms, frac);
      if (!overlap) off_exposed_ms = exposed_ms;
      if (overlap && (on_best_exposed_ms < 0 || exposed_ms < on_best_exposed_ms)) {
        on_best_exposed_ms = exposed_ms;
      }
    }
  }

  std::printf("\nExposed communication per iteration: %.3f ms off -> %.3f ms "
              "best overlap (%.1fx reduction).\n",
              off_exposed_ms, on_best_exposed_ms,
              on_best_exposed_ms > 0 ? off_exposed_ms / on_best_exposed_ms
                                     : 0.0);
  std::printf("Accuracy columns match because overlap preserves bucket\n"
              "boundaries and reduction order: the determinism suite checks\n"
              "the weights are bit-identical, this bench shows the latency\n"
              "side — the collective still runs, the iteration just stops\n"
              "waiting for most of it.\n");
  return 0;
}
