// Table 9: 90-epoch ImageNet/ResNet-50 time across systems, plus the
// Table 1 comparison against Akiba et al.'s 15-minute record.
//
// Paper rows include: 21h on a DGX-1 (B=256), 1h on 256 P100s (B=8K,
// Facebook), 60m/32m/20m on 512/1600-equivalent/2048 KNL-class systems at
// B=16-32K, and 14m for the 64-epoch 74.9%-accuracy run.
#include <cstdio>

#include "bench_common.hpp"
#include "nn/analysis.hpp"
#include "nn/models.hpp"
#include "perf/cost_model.hpp"
#include "perf/specs.hpp"

using namespace minsgd;

int main() {
  bench::banner("Table 9 (and Table 1) — ResNet-50 90-epoch time",
                "batch 32K + LARS finishes 90-epoch training in 20 minutes "
                "on 2048 KNLs; 64 epochs (74.9%) takes 14 minutes");

  auto res50 = nn::resnet(50);
  const auto prof = nn::profile_model(*res50, nn::resnet_input());

  struct Row {
    const char* hardware;
    std::int64_t batch;
    std::int64_t epochs;
    perf::DeviceSpec device;
    int nodes;
    perf::NetworkSpec net;
    const char* paper_time;
  };
  const Row rows[] = {
      {"DGX-1 (8xP100), B=256", 256, 90, perf::nvidia_p100(), 8,
       perf::nvlink(), "21h"},
      {"16 KNLs, B=256 (aug)", 256, 90, perf::intel_knl7250(), 16,
       perf::intel_qdr_ib(), "45h"},
      {"256 P100s, B=8K (Facebook)", 8192, 90, perf::nvidia_p100(), 256,
       perf::mellanox_fdr_ib(), "1h"},
      {"512 KNLs, B=32K", 32768, 90, perf::intel_knl7250(), 512,
       perf::intel_qdr_ib(), "1h"},
      {"1024 CPUs, B=32K", 32768, 90, perf::intel_skylake8160(), 1024,
       perf::intel_qdr_ib(), "48m"},
      {"1600 CPUs, B=16K", 16000, 90, perf::intel_skylake8160(), 1600,
       perf::intel_qdr_ib(), "31m"},
      {"2048 KNLs, B=32K", 32768, 90, perf::intel_knl7250(), 2048,
       perf::intel_qdr_ib(), "20m"},
      {"2048 KNLs, B=32K, 64 epochs", 32768, 64, perf::intel_knl7250(), 2048,
       perf::intel_qdr_ib(), "14m"},
  };

  core::CsvWriter csv(bench::csv_path("table9_resnet_time"),
                      {"hardware", "batch", "epochs", "paper_time",
                       "model_seconds"});

  std::printf("%-30s %8s %7s %10s %10s\n", "hardware", "batch", "epochs",
              "paper", "model");
  for (const auto& r : rows) {
    perf::WorkloadSpec work{prof.flops_per_image, prof.params, 1'280'000,
                            r.epochs, 3.0};
    // Batch must divide by nodes; 16000 on 1600 nodes -> local batch 10.
    const auto p = perf::project_training(
        work, {r.batch, r.nodes, perf::CommModel::kRing}, r.device, r.net);
    std::printf("%-30s %8lld %7lld %10s %10s\n", r.hardware,
                static_cast<long long>(r.batch),
                static_cast<long long>(r.epochs), r.paper_time,
                bench::human_time(p.total_seconds()).c_str());
    csv.row(r.hardware, r.batch, r.epochs, r.paper_time, p.total_seconds());
  }

  bench::section("Table 1 headline");
  {
    perf::WorkloadSpec w64{prof.flops_per_image, prof.params, 1'280'000, 64,
                           3.0};
    perf::WorkloadSpec w90{prof.flops_per_image, prof.params, 1'280'000, 90,
                           3.0};
    const auto akiba = perf::project_training(
        w90, {32768, 1024, perf::CommModel::kRing}, perf::nvidia_p100(),
        perf::mellanox_fdr_ib());
    const auto ours = perf::project_training(
        w64, {32768, 2048, perf::CommModel::kRing}, perf::intel_knl7250(),
        perf::intel_qdr_ib());
    std::printf("Akiba et al. (1024 P100s, 90 ep): paper 15m, model %s\n",
                bench::human_time(akiba.total_seconds()).c_str());
    std::printf("Ours (2048 KNLs, 64 ep):          paper 14m, model %s\n",
                bench::human_time(ours.total_seconds()).c_str());
  }
  return 0;
}
