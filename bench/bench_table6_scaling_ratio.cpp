// Table 6: the computation/communication "scaling ratio" of AlexNet vs
// ResNet-50, computed from this repository's own model definitions.
//
// Paper: AlexNet 61M params / 1.5 GFLOP -> ratio 24.6; ResNet-50 25M params
// / 7.7 GFLOP -> ratio 308; the 12.5x gap is why ResNet-50 weak-scales so
// much better.
#include <cstdio>

#include "bench_common.hpp"
#include "nn/analysis.hpp"
#include "nn/models.hpp"

using namespace minsgd;

namespace {

void report(const char* label, nn::Network& net, const Shape& input,
            double paper_params, double paper_flops, double paper_ratio,
            core::CsvWriter& csv) {
  const auto p = nn::profile_model(net, input);
  std::printf("%-14s params %8.2fM (paper %5.0fM)   flops/img %6.2fG "
              "(paper %4.1fG)   ratio %6.1f (paper %5.1f)\n",
              label, p.params / 1e6, paper_params / 1e6,
              p.flops_per_image / 1e9, paper_flops / 1e9, p.scaling_ratio(),
              paper_ratio);
  csv.row(label, p.params, p.flops_per_image, p.scaling_ratio(),
          paper_params, paper_flops, paper_ratio);
}

}  // namespace

int main() {
  bench::banner("Table 6 — scaling ratio (flops per image / parameters)",
                "ResNet-50's ratio is ~12.5x AlexNet's, so it weak-scales "
                "far better under synchronous SGD");

  core::CsvWriter csv(bench::csv_path("table6_scaling_ratio"),
                      {"model", "params", "flops_per_image", "ratio",
                       "paper_params", "paper_flops", "paper_ratio"});

  auto alex = nn::alexnet();
  auto res50 = nn::resnet(50);
  report("AlexNet", *alex, nn::alexnet_input(), 61e6, 1.5e9, 24.6, csv);
  report("ResNet-50", *res50, nn::resnet_input(), 25e6, 7.7e9, 308.0, csv);

  bench::section("additional models (not in the paper's table)");
  auto r18 = nn::resnet(18);
  auto r34 = nn::resnet(34);
  report("ResNet-18", *r18, nn::resnet_input(), 11.7e6, 3.6e9, 310.0, csv);
  report("ResNet-34", *r34, nn::resnet_input(), 21.8e6, 7.3e9, 336.0, csv);

  const auto pa = nn::profile_model(*alex, nn::alexnet_input());
  const auto pr = nn::profile_model(*res50, nn::resnet_input());
  std::printf("\nratio(ResNet-50)/ratio(AlexNet) = %.1f (paper: 12.5x)\n",
              pr.scaling_ratio() / pa.scaling_ratio());
  return 0;
}
