// Figures 4, 5, 6: training curves.
//
//   Fig 4: at a very large batch, the no-LARS curve stalls low while the
//          LARS curve tracks the baseline, epoch for epoch.
//   Fig 5: accuracy vs epoch — the large-batch LARS run reaches the target
//          in the same number of epochs as the baseline.
//   Fig 6: the same curves plotted against cumulative FLOPs — batch size
//          does not change the FLOPs per epoch, so the curves overlap.
#include <cstdio>

#include "bench_common.hpp"
#include "nn/analysis.hpp"

using namespace minsgd;

int main() {
  bench::banner("Figures 4/5/6 — accuracy curves vs epoch and vs FLOPs",
                "LARS makes the large-batch curve track the baseline curve "
                "in epochs (and hence in FLOPs)");

  auto proxy = core::bench_proxy();
  data::SyntheticImageNet ds(proxy.dataset);
  const std::int64_t large = proxy.base_batch * 16;

  const auto baseline = bench::run_proxy(
      proxy.alexnet_factory(),
      proxy.recipe(proxy.base_batch, core::LrRule::kLinearWarmup), ds);
  const auto linear = bench::run_proxy(
      proxy.alexnet_factory(), proxy.recipe(large, core::LrRule::kLinearWarmup),
      ds);
  const auto lars = bench::run_proxy(
      proxy.alexnet_factory(), proxy.recipe(large, core::LrRule::kLars), ds);

  // FLOPs per epoch: 3x forward per image, whole training set, any batch.
  auto net = proxy.alexnet_factory()();
  const auto prof = nn::profile_model(
      *net, {1, 3, proxy.dataset.resolution, proxy.dataset.resolution});
  const double flops_per_epoch =
      3.0 * static_cast<double>(prof.flops_per_image) *
      static_cast<double>(proxy.dataset.train_size);

  core::CsvWriter csv(bench::csv_path("fig4_5_6_curves"),
                      {"epoch", "gflops", "baseline_acc", "linear16x_acc",
                       "lars16x_acc"});
  std::printf("%6s %10s %10s %12s %10s\n", "epoch", "GFLOPs", "baseline",
              "16x linear", "16x LARS");
  const std::size_t epochs = baseline.full.epochs.size();
  for (std::size_t e = 0; e < epochs; ++e) {
    const double base_acc = baseline.full.epochs[e].test_acc;
    const double lin_acc = e < linear.full.epochs.size()
                               ? linear.full.epochs[e].test_acc
                               : 0.0;
    const double lars_acc =
        e < lars.full.epochs.size() ? lars.full.epochs[e].test_acc : 0.0;
    const double gflops = flops_per_epoch * static_cast<double>(e + 1) / 1e9;
    std::printf("%6zu %10.1f %9.1f%% %11.1f%% %9.1f%%\n", e, gflops,
                100 * base_acc, 100 * lin_acc, 100 * lars_acc);
    csv.row(e, gflops, base_acc, lin_acc, lars_acc);
  }

  std::printf(
      "\nFig 4 shape: the 16x-linear column stalls below the others.\n"
      "Fig 5 shape: the 16x-LARS column reaches the baseline's final\n"
      "accuracy within the same epoch budget (final: base %.3f vs LARS "
      "%.3f).\n"
      "Fig 6 shape: the GFLOPs column is identical for every run — fixed\n"
      "epochs fix the computation regardless of batch size.\n",
      baseline.final_acc, lars.final_acc);
  return 0;
}
