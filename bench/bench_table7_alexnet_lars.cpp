// Table 7: with LARS + warmup, AlexNet(-BN) holds baseline accuracy from
// batch 512 up to 32K in the same 100 epochs.
//
// Proxy reproduction: the AlexNet-flavored proxy at 1x/4x/8x/16x the base
// batch with LARS, against the baseline. The paper's warmup lengths (13/8/5
// epochs) shrink as the batch grows; ours scale the same way.
#include <cstdio>

#include "bench_common.hpp"

using namespace minsgd;

int main() {
  bench::banner("Table 7 — AlexNet + LARS matches baseline at every batch",
                "0.583 at B=512 (baseline); 0.584/0.583/0.585 at 4K/8K/32K "
                "with LARS");

  auto proxy = core::bench_proxy();
  data::SyntheticImageNet ds(proxy.dataset);

  core::CsvWriter csv(bench::csv_path("table7_alexnet_lars"),
                      {"batch", "rule", "warmup_epochs", "best_acc",
                       "diverged"});

  std::printf("%8s %-16s %8s %10s\n", "batch", "LR rule", "warmup", "acc");

  const auto base = bench::run_proxy(
      proxy.alexnet_factory(),
      proxy.recipe(proxy.base_batch, core::LrRule::kLinearWarmup), ds);
  std::printf("%8lld %-16s %8s %9.1f%%  (baseline)\n",
              static_cast<long long>(proxy.base_batch), "regular", "N/A",
              100 * base.best_acc);
  csv.row(proxy.base_batch, "regular", 0.0, base.best_acc, base.diverged);

  for (std::int64_t factor : {4, 8, 16}) {
    const auto batch = proxy.base_batch * factor;
    // Paper: longer warmup at smaller large-batches (13 ep at 4K, 5 at 32K).
    auto rc = proxy.recipe(batch, core::LrRule::kLars);
    rc.warmup_epochs = (factor <= 4) ? 3.0 : 2.0;
    const auto out = bench::run_proxy(proxy.alexnet_factory(), rc, ds);
    std::printf("%8lld %-16s %7.0fep %9.1f%%%s\n",
                static_cast<long long>(batch), "LARS", rc.warmup_epochs,
                100 * out.best_acc, out.diverged ? "  (DIVERGED)" : "");
    csv.row(batch, "LARS", rc.warmup_epochs, out.best_acc, out.diverged);
  }

  std::printf(
      "\nShape under test: every LARS row lands within a few points of the\n"
      "baseline in the same epoch budget — batch size no longer costs\n"
      "accuracy, so it can be spent on parallelism (Tables 8/9).\n");
  return 0;
}
