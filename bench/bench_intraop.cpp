// bench_intraop: intra-op scaling of the ComputeContext batch-parallel
// kernels — the measured counterpart of the paper's Figure 3 single-node
// throughput argument ("use large batch to keep each node busy").
//
// Sweeps thread budget x local batch over a ResNet-style residual block
// (conv3x3 -> BN -> ReLU -> conv3x3 -> BN, identity shortcut) and reports
// forward+backward throughput in images/s plus the speedup over the
// 1-thread baseline at the same batch. Because chunking is deterministic,
// the logits checksum must be identical across the whole sweep — printed so
// a regression is visible right in the bench output.
//
// Results land in bench_results/intraop.csv. Note: on a machine with fewer
// physical cores than the thread budget, extra threads time-share one core
// and the speedup column measures oversubscription overhead instead of
// scaling; the CSV records hardware_concurrency so readers can tell.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/network.hpp"
#include "nn/norm.hpp"
#include "nn/residual.hpp"
#include "obs/flight.hpp"
#include "tensor/context.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "tensor/rng.hpp"

namespace minsgd {
namespace {

std::unique_ptr<nn::Network> resnet_block() {
  auto net = std::make_unique<nn::Network>("resnet_block");
  auto branch = std::make_unique<nn::Network>("branch");
  branch->emplace<nn::Conv2d>(16, 16, 3, 1, 1);
  branch->emplace<nn::BatchNorm2d>(16);
  branch->emplace<nn::ReLU>();
  branch->emplace<nn::Conv2d>(16, 16, 3, 1, 1);
  branch->emplace<nn::BatchNorm2d>(16);
  net->emplace<nn::ResidualBlock>(std::move(branch));
  return net;
}

Tensor random_input(std::int64_t batch, std::uint64_t seed) {
  Tensor x({batch, 16, 16, 16});
  Rng rng(seed);
  rng.fill_normal(x.span(), 0.0f, 0.5f);
  return x;
}

double checksum(std::span<const float> v) {
  double s = 0.0;
  for (float f : v) s += static_cast<double>(f);
  return s;
}

struct Cell {
  std::int64_t batch = 0;
  std::size_t threads = 0;
  double images_per_sec = 0.0;
  double speedup = 1.0;
  double check = 0.0;
};

Cell measure(std::int64_t batch, std::size_t threads) {
  const ComputeContext ctx(threads);
  auto net = resnet_block();
  Rng init_rng(42);
  net->init(init_rng);
  const Tensor x = random_input(batch, 7);
  Tensor y, dx;
  net->forward(x, y, /*training=*/true, ctx);
  Tensor dy(y.shape());
  Rng dy_rng(11);
  dy_rng.fill_normal(dy.span(), 0.0f, 0.1f);

  // Warm-up, then time enough iterations for a stable per-image figure.
  for (int i = 0; i < 2; ++i) {
    net->zero_grad();
    net->forward(x, y, /*training=*/true, ctx);
    net->backward(x, y, dy, dx, ctx);
  }
  const int iters = 10;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    net->zero_grad();
    net->forward(x, y, /*training=*/true, ctx);
    net->backward(x, y, dy, dx, ctx);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  Cell c;
  c.batch = batch;
  c.threads = threads;
  c.images_per_sec = static_cast<double>(batch) * iters / secs;
  c.check = checksum(y.span());
  return c;
}

/// One timed arm of the flight-recorder overhead measurement: the same
/// forward+backward workload as the sweep, but each iteration also emits the
/// event pattern a distributed training step records (step marker + four
/// collective begin/end pairs, ~8 events/iter — what the sync trainer's
/// allreduce + barrier path produces). Returns images/s.
double flight_arm(bool recorder_on, std::int64_t batch, std::size_t threads,
                  int iters) {
  const ComputeContext ctx(threads);
  auto net = resnet_block();
  Rng init_rng(42);
  net->init(init_rng);
  const Tensor x = random_input(batch, 7);
  Tensor y, dx;
  net->forward(x, y, /*training=*/true, ctx);
  Tensor dy(y.shape());
  Rng dy_rng(11);
  dy_rng.fill_normal(dy.span(), 0.0f, 0.1f);

  obs::flight().set_enabled(recorder_on);
  for (int i = 0; i < 2; ++i) {
    net->zero_grad();
    net->forward(x, y, /*training=*/true, ctx);
    net->backward(x, y, dy, dx, ctx);
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    net->zero_grad();
    net->forward(x, y, /*training=*/true, ctx);
    net->backward(x, y, dy, dx, ctx);
    for (int c = 0; c < 4; ++c) {
      MINSGD_FLIGHT(obs::FlightKind::kCollBegin, obs::FlightOp::kAllreduceRing,
                    0, 1000 + c, 0, batch * 64, 0);
      MINSGD_FLIGHT(obs::FlightKind::kCollEnd, obs::FlightOp::kAllreduceRing,
                    0, 1000 + c, 0, batch * 64, 0);
    }
    MINSGD_FLIGHT(obs::FlightKind::kStep, obs::FlightOp::kNone, 0, 0, 0, 0, i);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  obs::flight().set_enabled(true);
  return static_cast<double>(batch) * iters / secs;
}

}  // namespace
}  // namespace minsgd

int main() {
  using namespace minsgd;
  const unsigned hw = std::thread::hardware_concurrency();
  bench::banner("bench_intraop: intra-op thread scaling (Figure 3 counterpart)",
                "per-node throughput must scale with intra-node parallelism "
                "for large-batch training to pay off");
  std::printf("hardware_concurrency: %u\n", hw);
  // The conv/BN kernels under this sweep dispatch by ISA; a throughput
  // number is only comparable to another run on the same path.
  std::printf("kernel isa: %s\n", kernels::to_string(kernels::active()));

  const std::vector<std::int64_t> batches = {8, 32, 64};
  const std::vector<std::size_t> threads = {1, 2, 4, 8};

  core::CsvWriter csv(bench::csv_path("intraop"),
                      {"batch", "threads", "hw_threads", "images_per_sec",
                       "speedup_vs_1t", "logits_checksum"});

  Cell peak;
  for (const auto batch : batches) {
    bench::section("local batch " + std::to_string(batch));
    std::printf("%8s %14s %12s %20s\n", "threads", "images/s", "speedup",
                "logits checksum");
    double base_ips = 0.0;
    double base_check = 0.0;
    for (const auto t : threads) {
      Cell c = measure(batch, t);
      if (t == 1) {
        base_ips = c.images_per_sec;
        base_check = c.check;
      }
      c.speedup = c.images_per_sec / base_ips;
      const bool same = c.check == base_check;
      std::printf("%8zu %14.1f %11.2fx %20.10g%s\n", c.threads,
                  c.images_per_sec, c.speedup, c.check,
                  same ? "" : "  <-- CHECKSUM MISMATCH");
      csv.row(c.batch, static_cast<std::int64_t>(c.threads),
              static_cast<std::int64_t>(hw), c.images_per_sec, c.speedup,
              c.check);
      if (c.images_per_sec > peak.images_per_sec) peak = c;
    }
  }

  // Flight-recorder overhead: the always-on postmortem black box must be
  // free at trainer event rates (~9 events/iteration here: one step marker
  // plus four collective begin/end pairs). Median of 5 trials per arm;
  // single trials at this workload size are noisier than the effect.
  bench::section("flight recorder overhead (on vs off, same workload)");
  const std::int64_t fb = 32;
  const std::size_t ft = 4;
  std::vector<double> on_ips, off_ips;
  for (int trial = 0; trial < 5; ++trial) {
    off_ips.push_back(flight_arm(false, fb, ft, 10));
    on_ips.push_back(flight_arm(true, fb, ft, 10));
  }
  std::sort(on_ips.begin(), on_ips.end());
  std::sort(off_ips.begin(), off_ips.end());
  const double on_med = on_ips[on_ips.size() / 2];
  const double off_med = off_ips[off_ips.size() / 2];
  const double overhead_pct = 100.0 * (off_med - on_med) / off_med;
  std::printf("recorder off: %.1f images/s (median of %zu)\n", off_med,
              off_ips.size());
  std::printf("recorder on:  %.1f images/s (median of %zu)\n", on_med,
              on_ips.size());
  std::printf("overhead: %.2f%% (acceptance: < 2%%)\n", overhead_pct);

  const auto json = bench::JsonSummary("intraop")
                        .add_string("peak_config",
                                    "batch " + std::to_string(peak.batch) +
                                        " x " + std::to_string(peak.threads) +
                                        " threads")
                        .add("images_per_sec", peak.images_per_sec)
                        .add("ms_per_iter", 1000.0 *
                                                static_cast<double>(peak.batch) /
                                                peak.images_per_sec)
                        .add("logits_checksum", peak.check)
                        .add("flight_overhead_pct", overhead_pct)
                        .add("hw_threads", static_cast<std::int64_t>(hw))
                        .add_string("kernel_isa",
                                    kernels::to_string(kernels::active()))
                        .write();
  std::printf("\nCSV: %s\nJSON: %s\n", bench::csv_path("intraop").c_str(),
              json.c_str());
  return 0;
}
