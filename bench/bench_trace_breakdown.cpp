// Trace-measured time breakdown and scaling ratio (the measured Table 6).
//
// bench_table6 reproduces the paper's *static* scaling ratio (flops per
// image / parameters). This bench runs actual instrumented data-parallel
// iterations on the simulated cluster and reports where the wall-clock time
// of a step goes — data / forward / backward / allreduce / step — then
// forms the *measured* ratio compute-time / comm-time per model. The
// paper's direction must hold: the ResNet-style model (more flops per
// parameter) spends relatively more time computing than communicating, so
// its measured ratio exceeds the AlexNet-style model's. Artifacts:
//   bench_results/trace_breakdown.csv   (the measured table)
//   bench_results/trace.json            (Chrome/Perfetto-loadable trace)
//   bench_results/metrics.jsonl         (counter/gauge/traffic snapshot)
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "optim/lars.hpp"
#include "optim/schedule.hpp"

using namespace minsgd;

int main() {
  bench::banner(
      "Trace breakdown — measured compute/comm scaling ratio (Table 6, "
      "measured)",
      "ResNet-50 computes ~12.5x more per byte communicated than AlexNet, "
      "so its synchronous steps are compute-bound and weak-scale well");

  const auto proxy = core::bench_proxy();
  const data::SyntheticImageNet dataset(proxy.dataset);

  obs::ScalingRatioOptions opts;
  opts.world = 4;
  opts.global_batch = 64;
  opts.epochs = 1;
  opts.algo = comm::AllreduceAlgo::kRing;

  const auto opt_factory = [&] {
    return std::unique_ptr<optim::Optimizer>(
        new optim::Lars({.trust_coeff = proxy.lars_trust}));
  };
  const optim::ConstantLr schedule(proxy.base_lr);

  obs::tracer().clear();
  std::vector<obs::ScalingRatioRow> rows;
  rows.push_back(obs::measure_scaling_ratio(
      "alexnet-proxy", proxy.alexnet_factory(), opt_factory, schedule,
      dataset, opts));
  rows.push_back(obs::measure_scaling_ratio(
      "resnet-proxy", proxy.resnet_factory(), opt_factory, schedule, dataset,
      opts));

  bench::section("measured per-iteration breakdown (ms per rank-iteration)");
  obs::print_scaling_ratio_table(rows, std::cout);

  const double alex_ratio = rows[0].ratio();
  const double res_ratio = rows[1].ratio();
  std::printf("\nmeasured ratio(resnet)/ratio(alexnet) = %.2f "
              "(paper's static ratios: 12.5x; direction must be > 1)\n",
              res_ratio / alex_ratio);

  core::CsvWriter csv(bench::csv_path("trace_breakdown"),
                      {"model", "world", "iterations", "data_ms",
                       "forward_ms", "backward_ms", "allreduce_ms", "step_ms",
                       "measured_ratio", "static_ratio"});
  for (const auto& r : rows) {
    csv.row(r.model, r.world, r.iterations, r.data_ms, r.forward_ms,
            r.backward_ms, r.allreduce_ms, r.step_ms, r.ratio(),
            r.static_ratio());
  }

  // Both models' runs are still buffered: one trace, two back-to-back runs.
  const std::string trace_path = bench::results_dir() + "/trace.json";
  obs::tracer().write_chrome_trace(trace_path);
  std::printf("\nwrote %s (load in chrome://tracing or ui.perfetto.dev)\n",
              trace_path.c_str());

  bench::section("span summary (all runs)");
  obs::tracer().write_summary(std::cout);

  const std::string metrics_path = bench::results_dir() + "/metrics.jsonl";
  std::ofstream mout(metrics_path);
  obs::metrics().write_jsonl_snapshot(mout);
  std::printf("\nwrote %s\n", metrics_path.c_str());

  return res_ratio > alex_ratio ? 0 : 1;
}
