// Kernel microbenchmarks (google-benchmark): the compute and communication
// primitives everything else is built from.
#include <benchmark/benchmark.h>

#include <vector>

#include "comm/cluster.hpp"
#include "nn/conv.hpp"
#include "nn/norm.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

using namespace minsgd;

namespace {

void BM_Sgemm(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  for (auto _ : state) {
    sgemm(Trans::kNo, Trans::kNo, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
          c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Sgemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_SgemmTransB(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(2);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  for (auto _ : state) {
    sgemm(Trans::kNo, Trans::kYes, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
          c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_SgemmTransB)->Arg(128)->Arg(256);

void BM_ConvForward(benchmark::State& state) {
  const auto channels = state.range(0);
  nn::Conv2d conv(channels, channels, 3, 1, 1);
  Rng rng(3);
  conv.init(rng);
  Tensor x({4, channels, 16, 16});
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor y;
  for (auto _ : state) {
    conv.forward(x, y, true);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4 * conv.flops(x.shape()));
}
BENCHMARK(BM_ConvForward)->Arg(16)->Arg(32)->Arg(64);

void BM_ConvBackward(benchmark::State& state) {
  const auto channels = state.range(0);
  nn::Conv2d conv(channels, channels, 3, 1, 1);
  Rng rng(4);
  conv.init(rng);
  Tensor x({4, channels, 16, 16});
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor y, dy, dx;
  conv.forward(x, y, true);
  dy.resize(y.shape());
  rng.fill_normal(dy.span(), 0.0f, 1.0f);
  for (auto _ : state) {
    conv.backward(x, y, dy, dx);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_ConvBackward)->Arg(16)->Arg(32);

void BM_BatchNormForward(benchmark::State& state) {
  const auto channels = state.range(0);
  nn::BatchNorm2d bn(channels);
  Rng rng(5);
  Tensor x({8, channels, 16, 16});
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor y;
  for (auto _ : state) {
    bn.forward(x, y, true);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_BatchNormForward)->Arg(16)->Arg(64);

void BM_L2Norm(benchmark::State& state) {
  std::vector<float> v(static_cast<std::size_t>(state.range(0)));
  Rng rng(6);
  rng.fill_normal(v, 0.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(l2_norm(v));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_L2Norm)->Arg(1 << 12)->Arg(1 << 20);

void BM_Allreduce(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const auto algo = static_cast<comm::AllreduceAlgo>(state.range(1));
  const std::int64_t words = 1 << 16;
  comm::SimCluster cluster(world);
  for (auto _ : state) {
    cluster.run([&](comm::Communicator& c) {
      std::vector<float> data(static_cast<std::size_t>(words), 1.0f);
      c.allreduce_sum(data, algo);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * words * 4 * world);
  state.SetLabel(comm::to_string(algo));
}
BENCHMARK(BM_Allreduce)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 3})
    ->Args({8, 1})
    ->Args({8, 2});

}  // namespace

BENCHMARK_MAIN();
