// Kernel microbenchmarks: the compute and communication primitives
// everything else is built from.
//
// Runs in two stages: first a fixed scalar-vs-SIMD comparison pass that
// writes bench_results/kernels.json (GFLOP/s per path, speedup over the
// pre-microkernel scalar baseline, bitwise checksums across ISA paths and
// thread counts), then the google-benchmark suite for ad-hoc exploration.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "nn/conv.hpp"
#include "nn/norm.hpp"
#include "tensor/context.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

using namespace minsgd;

namespace {

void BM_Sgemm(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  for (auto _ : state) {
    sgemm(Trans::kNo, Trans::kNo, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
          c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Sgemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_SgemmTransB(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(2);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  for (auto _ : state) {
    sgemm(Trans::kNo, Trans::kYes, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
          c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_SgemmTransB)->Arg(128)->Arg(256);

void BM_ConvForward(benchmark::State& state) {
  const auto channels = state.range(0);
  nn::Conv2d conv(channels, channels, 3, 1, 1);
  Rng rng(3);
  conv.init(rng);
  Tensor x({4, channels, 16, 16});
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor y;
  for (auto _ : state) {
    conv.forward(x, y, true);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4 * conv.flops(x.shape()));
}
BENCHMARK(BM_ConvForward)->Arg(16)->Arg(32)->Arg(64);

void BM_ConvBackward(benchmark::State& state) {
  const auto channels = state.range(0);
  nn::Conv2d conv(channels, channels, 3, 1, 1);
  Rng rng(4);
  conv.init(rng);
  Tensor x({4, channels, 16, 16});
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor y, dy, dx;
  conv.forward(x, y, true);
  dy.resize(y.shape());
  rng.fill_normal(dy.span(), 0.0f, 1.0f);
  for (auto _ : state) {
    conv.backward(x, y, dy, dx);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_ConvBackward)->Arg(16)->Arg(32);

void BM_BatchNormForward(benchmark::State& state) {
  const auto channels = state.range(0);
  nn::BatchNorm2d bn(channels);
  Rng rng(5);
  Tensor x({8, channels, 16, 16});
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor y;
  for (auto _ : state) {
    bn.forward(x, y, true);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_BatchNormForward)->Arg(16)->Arg(64);

void BM_L2Norm(benchmark::State& state) {
  std::vector<float> v(static_cast<std::size_t>(state.range(0)));
  Rng rng(6);
  rng.fill_normal(v, 0.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(l2_norm(v));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_L2Norm)->Arg(1 << 12)->Arg(1 << 20);

void BM_Allreduce(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const auto algo = static_cast<comm::AllreduceAlgo>(state.range(1));
  const std::int64_t words = 1 << 16;
  comm::SimCluster cluster(world);
  for (auto _ : state) {
    cluster.run([&](comm::Communicator& c) {
      std::vector<float> data(static_cast<std::size_t>(words), 1.0f);
      c.allreduce_sum(data, algo);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * words * 4 * world);
  state.SetLabel(comm::to_string(algo));
}
BENCHMARK(BM_Allreduce)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 3})
    ->Args({8, 1})
    ->Args({8, 2});

// -- scalar-vs-SIMD summary pass -------------------------------------------

// The pre-microkernel blocked sgemm (cache-blocked axpy inner loop, no
// packing into tile layout), kept verbatim as the old-path baseline. Two
// compilations of the same inner loop give two baselines: `autovec` is what
// the repo actually shipped before the microkernels (the compiler SIMD-izes
// the axpy), `scalar` pins auto-vectorization off so it measures true
// one-lane compute — that is the denominator of the headline scalar-vs-SIMD
// speedup in kernels.json.
constexpr std::int64_t kBaseMC = 64, kBaseKC = 256, kBaseNC = 512;

template <typename MicroBlock>
void baseline_sgemm_impl(std::int64_t n, const float* a, const float* b,
                         float* c, const MicroBlock& micro_block) {
  std::memset(c, 0, static_cast<std::size_t>(n * n) * sizeof(float));
  std::vector<float> apack(static_cast<std::size_t>(kBaseMC * kBaseKC));
  std::vector<float> bpack(static_cast<std::size_t>(kBaseKC * kBaseNC));
  for (std::int64_t i0 = 0; i0 < n; i0 += kBaseMC) {
    const std::int64_t mc = std::min(kBaseMC, n - i0);
    for (std::int64_t p0 = 0; p0 < n; p0 += kBaseKC) {
      const std::int64_t kc = std::min(kBaseKC, n - p0);
      for (std::int64_t i = 0; i < mc; ++i) {
        for (std::int64_t p = 0; p < kc; ++p) {
          apack[static_cast<std::size_t>(i * kc + p)] = a[(i0 + i) * n + p0 + p];
        }
      }
      for (std::int64_t j0 = 0; j0 < n; j0 += kBaseNC) {
        const std::int64_t nc = std::min(kBaseNC, n - j0);
        for (std::int64_t p = 0; p < kc; ++p) {
          for (std::int64_t j = 0; j < nc; ++j) {
            bpack[static_cast<std::size_t>(p * nc + j)] = b[(p0 + p) * n + j0 + j];
          }
        }
        micro_block(mc, nc, kc, apack.data(), bpack.data(), c + i0 * n + j0,
                    n);
      }
    }
  }
}

void micro_block_autovec(std::int64_t mc, std::int64_t nc, std::int64_t kc,
                         const float* ap, const float* bp, float* c,
                         std::int64_t ldc) {
  for (std::int64_t i = 0; i < mc; ++i) {
    float* crow = c + i * ldc;
    const float* arow = ap + i * kc;
    for (std::int64_t p = 0; p < kc; ++p) {
      const float aval = arow[p];
      const float* brow = bp + p * nc;
      for (std::int64_t j = 0; j < nc; ++j) crow[j] += aval * brow[j];
    }
  }
}

__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize"))) void
micro_block_scalar(std::int64_t mc, std::int64_t nc, std::int64_t kc,
                   const float* ap, const float* bp, float* c,
                   std::int64_t ldc) {
  for (std::int64_t i = 0; i < mc; ++i) {
    float* crow = c + i * ldc;
    const float* arow = ap + i * kc;
    for (std::int64_t p = 0; p < kc; ++p) {
      const float aval = arow[p];
      const float* brow = bp + p * nc;
      for (std::int64_t j = 0; j < nc; ++j) crow[j] += aval * brow[j];
    }
  }
}

void baseline_sgemm_autovec(std::int64_t n, const float* a, const float* b,
                            float* c) {
  baseline_sgemm_impl(n, a, b, c, micro_block_autovec);
}

void baseline_sgemm_scalar(std::int64_t n, const float* a, const float* b,
                           float* c) {
  baseline_sgemm_impl(n, a, b, c, micro_block_scalar);
}

std::uint64_t bits_checksum(const std::vector<float>& v) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the bit patterns
  for (const float f : v) {
    std::uint32_t u = 0;
    std::memcpy(&u, &f, sizeof(u));
    h ^= u;
    h *= 1099511628211ull;
  }
  return h;
}

/// Best-of-`reps` wall seconds for one invocation of `fn`.
template <typename Fn>
double time_best(int reps, const Fn& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

void run_kernel_summary() {
  bench::banner("bench_kernels: scalar vs dispatched microkernel sgemm",
                "single-node kernel efficiency underpins the time-to-accuracy "
                "scaling argument (paper Sec. 1: 'ImageNet training in "
                "minutes' starts from saturated per-node GEMMs)");

  bench::JsonSummary summary("kernels");
  summary.add_string("active_isa", kernels::to_string(kernels::active()));

  ComputeContext one(1);
  bool all_checksums_match = true;

  bench::section("sgemm NxNxN, single thread, best of 5");
  std::printf("%6s %13s %13s %14s %11s %9s\n", "N", "scalar GF/s",
              "autovec GF/s", "portable GF/s", "simd GF/s", "speedup");
  for (const std::int64_t n : {256, 384, 512}) {
    Rng rng(static_cast<std::uint64_t>(n));
    std::vector<float> a(static_cast<std::size_t>(n * n));
    std::vector<float> b(static_cast<std::size_t>(n * n));
    std::vector<float> c(static_cast<std::size_t>(n * n));
    rng.fill_normal(a, 0.0f, 1.0f);
    rng.fill_normal(b, 0.0f, 1.0f);
    const double flops = 2.0 * n * n * n;

    const double t_scalar = time_best(
        5, [&] { baseline_sgemm_scalar(n, a.data(), b.data(), c.data()); });
    const double t_autovec = time_best(
        5, [&] { baseline_sgemm_autovec(n, a.data(), b.data(), c.data()); });

    kernels::force(kernels::Isa::kPortable);
    const double t_portable = time_best(5, [&] {
      sgemm(one, Trans::kNo, Trans::kNo, n, n, n, 1.0f, a.data(), n, b.data(),
            n, 0.0f, c.data(), n);
    });
    const std::uint64_t sum_portable = bits_checksum(c);
    kernels::clear_force();

    // Dispatched (widest supported) path; on AVX2 hardware this is the
    // number the >=2x acceptance bar applies to.
    const double t_simd = time_best(5, [&] {
      sgemm(one, Trans::kNo, Trans::kNo, n, n, n, 1.0f, a.data(), n, b.data(),
            n, 0.0f, c.data(), n);
    });
    const std::uint64_t sum_simd = bits_checksum(c);

    // Thread-count sweep: same bytes for every thread count.
    std::uint64_t sum_threads = sum_simd;
    bool threads_match = true;
    for (const std::size_t t : {2u, 4u, 8u}) {
      ComputeContext ctx(t);
      sgemm(ctx, Trans::kNo, Trans::kNo, n, n, n, 1.0f, a.data(), n, b.data(),
            n, 0.0f, c.data(), n);
      sum_threads = bits_checksum(c);
      threads_match = threads_match && sum_threads == sum_simd;
    }
    const bool match = sum_portable == sum_simd && threads_match;
    all_checksums_match = all_checksums_match && match;

    const double speedup = t_scalar / t_simd;
    std::printf("%6lld %13.2f %13.2f %14.2f %11.2f %8.2fx %s\n",
                static_cast<long long>(n), flops / t_scalar * 1e-9,
                flops / t_autovec * 1e-9, flops / t_portable * 1e-9,
                flops / t_simd * 1e-9, speedup,
                match ? "" : "CHECKSUM MISMATCH");
    const std::string prefix = "sgemm" + std::to_string(n);
    summary.add(prefix + "_scalar_gflops", flops / t_scalar * 1e-9);
    summary.add(prefix + "_autovec_gflops", flops / t_autovec * 1e-9);
    summary.add(prefix + "_portable_gflops", flops / t_portable * 1e-9);
    summary.add(prefix + "_simd_gflops", flops / t_simd * 1e-9);
    summary.add(prefix + "_speedup_vs_scalar", speedup);
    summary.add(prefix + "_speedup_vs_autovec", t_autovec / t_simd);
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(sum_simd));
    summary.add_string(prefix + "_checksum", hex);
  }
  summary.add("checksum_match", static_cast<std::int64_t>(all_checksums_match));

  bench::section("conv3x3 64->64 on 8x64x16x16: direct vs im2col, best of 5");
  {
    nn::Conv2d conv(64, 64, 3, 1, 1);
    Rng rng(9);
    conv.init(rng);
    Tensor x({8, 64, 16, 16});
    rng.fill_normal(x.span(), 0.0f, 1.0f);
    Tensor y;
    const double flops = 8.0 * conv.flops(x.shape());

    nn::Conv2d::set_direct_enabled(false);
    const double t_im2col = time_best(5, [&] { conv.forward(x, y, false); });
    const std::uint64_t sum_im2col = bits_checksum(
        std::vector<float>(y.span().begin(), y.span().end()));
    nn::Conv2d::set_direct_enabled(true);
    const double t_direct = time_best(5, [&] { conv.forward(x, y, false); });
    const std::uint64_t sum_direct = bits_checksum(
        std::vector<float>(y.span().begin(), y.span().end()));

    const bool match = sum_im2col == sum_direct;
    all_checksums_match = all_checksums_match && match;
    std::printf("im2col %8.3f ms (%.2f GF/s)  direct %8.3f ms (%.2f GF/s)  "
                "%.2fx %s\n",
                t_im2col * 1e3, flops / t_im2col * 1e-9, t_direct * 1e3,
                flops / t_direct * 1e-9, t_im2col / t_direct,
                match ? "" : "CHECKSUM MISMATCH");
    summary.add("conv3x3_im2col_ms", t_im2col * 1e3);
    summary.add("conv3x3_direct_ms", t_direct * 1e3);
    summary.add("conv3x3_direct_speedup", t_im2col / t_direct);
    summary.add("conv_checksum_match", static_cast<std::int64_t>(match));
  }

  const std::string path = summary.write();
  std::printf("\nwrote %s\n\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  run_kernel_summary();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
