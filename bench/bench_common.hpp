// Shared infrastructure for the experiment-reproduction benches.
//
// Each bench binary reproduces one table or figure of the paper: it prints
// the paper's published rows next to what this repository measures (proxy
// training runs, simulated-cluster traffic) or computes (perf model), and
// writes a machine-readable CSV to ./bench_results/.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/csv.hpp"

namespace minsgd::bench {

/// Directory for CSV artifacts (created on first use).
inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

inline std::string csv_path(const std::string& name) {
  return results_dir() + "/" + name + ".csv";
}

/// Prints the standard bench banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::printf("=============================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("=============================================================\n");
}

inline void section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Machine-readable per-bench summary written alongside the CSV:
/// bench_results/<name>.json, one flat object of headline metrics (peak
/// images/s, ms/iteration, logits checksum, overheads). The CSV keeps the
/// full sweep; the JSON is for dashboards and regression diffs that only
/// want the headline numbers without parsing the sweep shape.
class JsonSummary {
 public:
  explicit JsonSummary(std::string name) : name_(std::move(name)) {}

  JsonSummary& add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    entries_.emplace_back(key, buf);
    return *this;
  }
  JsonSummary& add(const std::string& key, std::int64_t value) {
    entries_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonSummary& add_string(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    entries_.emplace_back(key, quoted);
    return *this;
  }

  /// Writes bench_results/<name>.json and returns its path.
  std::string write() const {
    const std::string path = results_dir() + "/" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return path;
    std::fprintf(f, "{\"bench\":\"%s\"", name_.c_str());
    for (const auto& [key, value] : entries_) {
      std::fprintf(f, ",\"%s\":%s", key.c_str(), value.c_str());
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    return path;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Formats seconds as the paper prints times ("20m", "6h 10m", "14d").
inline std::string human_time(double seconds) {
  char buf[64];
  if (seconds < 120) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else if (seconds < 3 * 3600) {
    std::snprintf(buf, sizeof(buf), "%.0fm", seconds / 60.0);
  } else if (seconds < 2 * 86400) {
    std::snprintf(buf, sizeof(buf), "%.1fh", seconds / 3600.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fd", seconds / 86400.0);
  }
  return buf;
}

}  // namespace minsgd::bench

#include <chrono>

#include "core/proxy.hpp"
#include "core/recipe.hpp"

namespace minsgd::bench {

/// One proxy training run's reportable outcome.
struct RunOutcome {
  double final_acc = 0.0;
  double best_acc = 0.0;
  bool diverged = false;
  double wall_seconds = 0.0;
  train::TrainResult full;
};

/// Trains a proxy recipe and times it. Accuracy of a diverged run is
/// reported the way the paper does (Table 5's 0.001 rows): the achieved
/// (chance-level) test accuracy, not NaN.
inline RunOutcome run_proxy(
    const std::function<std::unique_ptr<nn::Network>()>& factory,
    const core::RecipeConfig& rc, const data::SyntheticImageNet& ds) {
  const auto t0 = std::chrono::steady_clock::now();
  auto res = core::run_recipe(factory, rc, ds);
  const auto dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0);
  RunOutcome out;
  out.final_acc = res.final_test_acc;
  out.best_acc = res.best_test_acc;
  out.diverged = res.diverged;
  out.wall_seconds = dt.count();
  out.full = std::move(res);
  return out;
}

}  // namespace minsgd::bench
