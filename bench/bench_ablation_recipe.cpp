// Ablations of the large-batch recipe's design choices:
//   1. warmup on/off at large batch (the Goyal et al. ingredient),
//   2. the LARS trust coefficient (the one new hyperparameter),
//   3. momentum on/off under LARS.
// These are the knobs DESIGN.md calls out; the paper fixes them at
// (5-13 epochs, 0.001 on ImageNet scale, 0.9) — here we show each one's
// contribution on the proxy task.
#include <cstdio>

#include "bench_common.hpp"
#include "nn/models.hpp"
#include "optim/lars.hpp"
#include "train/trainer.hpp"

using namespace minsgd;

int main() {
  bench::banner("Ablation — warmup, trust coefficient, momentum",
                "each recipe ingredient carries weight at large batch");

  auto proxy = core::bench_proxy();
  data::SyntheticImageNet ds(proxy.dataset);
  const std::int64_t large = proxy.base_batch * 16;

  core::CsvWriter csv(bench::csv_path("ablation_recipe"),
                      {"variant", "value", "best_acc", "diverged"});

  bench::section("1. warmup at 16x batch (LARS)");
  for (double warmup : {0.0, 1.0, 2.0, 4.0}) {
    auto rc = proxy.recipe(large, core::LrRule::kLars);
    rc.warmup_epochs = warmup;
    const auto out = bench::run_proxy(proxy.alexnet_factory(), rc, ds);
    std::printf("  warmup %.0f epochs: acc %5.1f%%%s\n", warmup,
                100 * out.best_acc, out.diverged ? " (DIVERGED)" : "");
    csv.row("warmup_epochs", warmup, out.best_acc, out.diverged);
  }

  bench::section("2. LARS trust coefficient at 16x batch");
  for (double trust : {0.01, 0.05, 0.1, 0.5, 2.0}) {
    auto rc = proxy.recipe(large, core::LrRule::kLars);
    rc.lars_trust_coeff = trust;
    const auto out = bench::run_proxy(proxy.alexnet_factory(), rc, ds);
    std::printf("  trust %.2f: acc %5.1f%%%s\n", trust, 100 * out.best_acc,
                out.diverged ? " (DIVERGED)" : "");
    csv.row("trust_coeff", trust, out.best_acc, out.diverged);
  }

  bench::section("3. momentum under LARS at 16x batch");
  for (double momentum : {0.0, 0.5, 0.9}) {
    auto rc = proxy.recipe(large, core::LrRule::kLars);
    rc.momentum = momentum;
    const auto out = bench::run_proxy(proxy.alexnet_factory(), rc, ds);
    std::printf("  momentum %.1f: acc %5.1f%%%s\n", momentum,
                100 * out.best_acc, out.diverged ? " (DIVERGED)" : "");
    csv.row("momentum", momentum, out.best_acc, out.diverged);
  }

  bench::section("4. LRN vs BN at 16x batch (the paper's AlexNet-BN change)");
  for (const auto norm : {nn::AlexNetNorm::kLRN, nn::AlexNetNorm::kBN}) {
    auto factory = [&proxy, norm] {
      return nn::tiny_alexnet(proxy.dataset.classes, proxy.dataset.resolution,
                              norm, proxy.model_width);
    };
    const auto rc = proxy.recipe(large, core::LrRule::kLars);
    const auto out = bench::run_proxy(factory, rc, ds);
    std::printf("  %s: acc %5.1f%%%s\n",
                norm == nn::AlexNetNorm::kLRN ? "LRN" : "BN ",
                100 * out.best_acc, out.diverged ? " (DIVERGED)" : "");
    csv.row("norm", norm == nn::AlexNetNorm::kLRN ? 0.0 : 1.0, out.best_acc,
            out.diverged);
  }

  bench::section("5. LARC clipping at 16x batch");
  for (const bool clip : {false, true}) {
    auto rc = proxy.recipe(large, core::LrRule::kLars);
    core::Recipe r = core::make_recipe(rc, ds);
    optim::LarsConfig lc;
    lc.trust_coeff = rc.lars_trust_coeff;
    lc.momentum = rc.momentum;
    lc.weight_decay = rc.weight_decay;
    lc.clip = clip;
    auto net = proxy.alexnet_factory()();
    optim::Lars lars(lc);
    const auto res =
        train::train_single(*net, lars, *r.schedule, ds, r.options);
    std::printf("  clip=%d: acc %5.1f%%%s\n", clip ? 1 : 0,
                100 * res.best_test_acc, res.diverged ? " (DIVERGED)" : "");
    csv.row("larc_clip", clip ? 1.0 : 0.0, res.best_test_acc, res.diverged);
  }

  std::printf(
      "\nReading: warmup buys the early iterations back (the scaled LR is\n"
      "too hot for a cold He-initialized net); the trust coefficient has a\n"
      "wide usable plateau but fails open at extreme values; momentum\n"
      "matters as much as it does at small batch; BN replaces LRN cleanly\n"
      "(the paper's AlexNet-BN switch); LARC clipping is a safety rail that\n"
      "costs little when the trust coefficient is already sane.\n");
  return 0;
}
