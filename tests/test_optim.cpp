#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.hpp"
#include "optim/lars.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "tensor/ops.hpp"

namespace minsgd {
namespace {

// Builds a single-parameter "layer" for optimizer math tests.
struct FakeParam {
  Tensor w;
  Tensor g;
  std::vector<nn::ParamRef> refs;
  explicit FakeParam(const std::vector<float>& wv,
                     const std::vector<float>& gv, bool decay = true)
      : w({static_cast<std::int64_t>(wv.size())}, wv),
        g({static_cast<std::int64_t>(gv.size())}, gv) {
    refs.push_back({"p", &w, &g, decay});
  }
};

// ---------------- schedules ----------------

TEST(Schedules, ConstantLr) {
  optim::ConstantLr s(0.1);
  EXPECT_DOUBLE_EQ(s.lr(0), 0.1);
  EXPECT_DOUBLE_EQ(s.lr(1000000), 0.1);
}

TEST(Schedules, PolyPowerTwoMatchesPaperFormula) {
  optim::PolyLr s(2.0, 100, 2.0);
  EXPECT_DOUBLE_EQ(s.lr(0), 2.0);
  EXPECT_NEAR(s.lr(50), 2.0 * 0.25, 1e-12);
  EXPECT_NEAR(s.lr(90), 2.0 * 0.01, 1e-12);
  EXPECT_DOUBLE_EQ(s.lr(100), 0.0);
  EXPECT_DOUBLE_EQ(s.lr(150), 0.0);
}

TEST(Schedules, PolyPowerOneIsLinear) {
  optim::PolyLr s(1.0, 10, 1.0);
  EXPECT_NEAR(s.lr(5), 0.5, 1e-12);
}

TEST(Schedules, StepDecays) {
  optim::StepLr s(1.0, 10, 0.1);
  EXPECT_DOUBLE_EQ(s.lr(9), 1.0);
  EXPECT_NEAR(s.lr(10), 0.1, 1e-12);
  EXPECT_NEAR(s.lr(25), 0.01, 1e-12);
}

TEST(Schedules, WarmupRampsLinearlyToInner) {
  auto inner = std::make_unique<optim::ConstantLr>(1.0);
  optim::WarmupLr s(std::move(inner), 10, 0.0);
  EXPECT_NEAR(s.lr(0), 0.1, 1e-12);
  EXPECT_NEAR(s.lr(4), 0.5, 1e-12);
  EXPECT_NEAR(s.lr(9), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.lr(10), 1.0);
}

TEST(Schedules, WarmupStartsFromStartLr) {
  auto inner = std::make_unique<optim::ConstantLr>(2.0);
  optim::WarmupLr s(std::move(inner), 4, 1.0);
  EXPECT_NEAR(s.lr(0), 1.25, 1e-12);
  EXPECT_NEAR(s.lr(3), 2.0, 1e-12);
}

TEST(Schedules, WarmupIsMonotoneDuringRamp) {
  auto inner = std::make_unique<optim::PolyLr>(3.2, 1000, 2.0);
  optim::WarmupLr s(std::move(inner), 50, 0.05);
  for (int i = 1; i < 50; ++i) EXPECT_GE(s.lr(i), s.lr(i - 1));
}

TEST(Schedules, InvalidConfigsThrow) {
  EXPECT_THROW(optim::ConstantLr(0.0), std::invalid_argument);
  EXPECT_THROW(optim::PolyLr(1.0, 0), std::invalid_argument);
  EXPECT_THROW(optim::PolyLr(1.0, 10, -1.0), std::invalid_argument);
  EXPECT_THROW(optim::StepLr(1.0, 0), std::invalid_argument);
  EXPECT_THROW(optim::WarmupLr(nullptr, 5), std::invalid_argument);
}

TEST(Schedules, LinearScalingRule) {
  // Paper: B -> kB implies eta -> k*eta.
  EXPECT_DOUBLE_EQ(optim::linear_scaled_lr(0.02, 512, 4096), 0.16);
  EXPECT_DOUBLE_EQ(optim::linear_scaled_lr(0.1, 256, 256), 0.1);
}

TEST(Schedules, IterationsForEpochsMatchesTable2) {
  // Table 2 rows: ImageNet n=1.28M, 100 epochs.
  const std::int64_t n = 1'280'000;
  EXPECT_EQ(optim::iterations_for_epochs(100, n, 512), 250'000);
  EXPECT_EQ(optim::iterations_for_epochs(100, n, 1024), 125'000);
  EXPECT_EQ(optim::iterations_for_epochs(100, n, 8192), 15'625);
  EXPECT_EQ(optim::iterations_for_epochs(100, n, 1'280'000), 100);
}

TEST(Schedules, IterationsCeilOnNonDivisible) {
  EXPECT_EQ(optim::iterations_for_epochs(1, 10, 3), 4);
}

// ---------------- SGD ----------------

TEST(Sgd, PlainStepWithoutMomentum) {
  FakeParam p({1.0f}, {0.5f});
  optim::Sgd sgd({.momentum = 0.0, .weight_decay = 0.0});
  sgd.step(p.refs, 0.1);
  EXPECT_NEAR(p.w[0], 1.0f - 0.1f * 0.5f, 1e-7);
}

TEST(Sgd, WeightDecayAddsToGradient) {
  FakeParam p({2.0f}, {0.0f});
  optim::Sgd sgd({.momentum = 0.0, .weight_decay = 0.1});
  sgd.step(p.refs, 1.0);
  EXPECT_NEAR(p.w[0], 2.0f - 0.1f * 2.0f, 1e-7);
}

TEST(Sgd, NonDecayParamSkipsWeightDecay) {
  FakeParam p({2.0f}, {0.0f}, /*decay=*/false);
  optim::Sgd sgd({.momentum = 0.0, .weight_decay = 0.1});
  sgd.step(p.refs, 1.0);
  EXPECT_EQ(p.w[0], 2.0f);
}

TEST(Sgd, MomentumAccumulates) {
  FakeParam p({0.0f}, {1.0f});
  optim::Sgd sgd({.momentum = 0.5, .weight_decay = 0.0});
  sgd.step(p.refs, 1.0);   // v=1, w=-1
  sgd.step(p.refs, 1.0);   // v=1.5, w=-2.5
  EXPECT_NEAR(p.w[0], -2.5f, 1e-6);
}

TEST(Sgd, ResetClearsVelocity) {
  FakeParam p({0.0f}, {1.0f});
  optim::Sgd sgd({.momentum = 0.9, .weight_decay = 0.0});
  sgd.step(p.refs, 1.0);
  sgd.reset();
  p.w[0] = 0.0f;
  sgd.step(p.refs, 1.0);
  EXPECT_NEAR(p.w[0], -1.0f, 1e-6);  // no leftover momentum
}

TEST(Sgd, RejectsBadConfig) {
  EXPECT_THROW(optim::Sgd({.momentum = 1.0}), std::invalid_argument);
  EXPECT_THROW(optim::Sgd({.momentum = -0.1}), std::invalid_argument);
  EXPECT_THROW(optim::Sgd({.weight_decay = -1.0}), std::invalid_argument);
}

TEST(Sgd, RejectsChangedParamList) {
  FakeParam p({1.0f}, {1.0f});
  optim::Sgd sgd;
  sgd.step(p.refs, 0.1);
  FakeParam q({1.0f, 2.0f}, {1.0f, 1.0f});
  std::vector<nn::ParamRef> two = {p.refs[0], q.refs[0]};
  EXPECT_THROW(sgd.step(two, 0.1), std::invalid_argument);
}

// ---------------- LARS ----------------

TEST(Lars, TrustRatioMatchesFormula) {
  // w = [3, 4] (norm 5), g = [0.6, 0.8] (norm 1), wd = 0.
  FakeParam p({3.0f, 4.0f}, {0.6f, 0.8f});
  optim::Lars lars({.trust_coeff = 0.01,
                    .momentum = 0.0,
                    .weight_decay = 0.0,
                    .eps = 0.0});
  lars.step(p.refs, 1.0);
  ASSERT_EQ(lars.last_local_lrs().size(), 1u);
  EXPECT_NEAR(lars.last_local_lrs()[0], 0.01 * 5.0 / 1.0, 1e-6);
  // Update = lr * local * g.
  EXPECT_NEAR(p.w[0], 3.0f - 0.05f * 0.6f, 1e-6);
}

TEST(Lars, WeightDecayEntersDenominatorAndUpdate) {
  FakeParam p({3.0f, 4.0f}, {0.6f, 0.8f});
  const double wd = 0.1;
  optim::Lars lars({.trust_coeff = 0.01,
                    .momentum = 0.0,
                    .weight_decay = wd,
                    .eps = 0.0});
  lars.step(p.refs, 1.0);
  const double local = 0.01 * 5.0 / (1.0 + wd * 5.0);
  EXPECT_NEAR(lars.last_local_lrs()[0], local, 1e-9);
  EXPECT_NEAR(p.w[0], 3.0f - static_cast<float>(local * (0.6 + wd * 3.0)),
              1e-6);
}

TEST(Lars, NonDecayParamFollowsGlobalLr) {
  FakeParam p({2.0f}, {1.0f}, /*decay=*/false);
  optim::Lars lars({.trust_coeff = 0.001, .momentum = 0.0});
  lars.step(p.refs, 0.5);
  EXPECT_NEAR(p.w[0], 2.0f - 0.5f, 1e-6);  // plain step, no trust scaling
  EXPECT_DOUBLE_EQ(lars.last_local_lrs()[0], 0.0);
}

TEST(Lars, ZeroWeightNormFallsBackToGlobalLr) {
  FakeParam p({0.0f}, {1.0f});
  optim::Lars lars({.trust_coeff = 0.001, .momentum = 0.0,
                    .weight_decay = 0.0});
  lars.step(p.refs, 0.1);
  EXPECT_NEAR(p.w[0], -0.1f, 1e-6);
}

TEST(Lars, DampsLayersWithLargeGradients) {
  // Two layers, same weights, gradient 100x larger on the second: the
  // second's effective step must be ~100x smaller relative to its gradient.
  FakeParam a({1.0f}, {0.01f});
  FakeParam b({1.0f}, {1.0f});
  std::vector<nn::ParamRef> both = {a.refs[0], b.refs[0]};
  optim::Lars lars({.trust_coeff = 0.1, .momentum = 0.0,
                    .weight_decay = 0.0});
  lars.step(both, 1.0);
  const auto& locals = lars.last_local_lrs();
  EXPECT_NEAR(locals[0] / locals[1], 100.0, 1.0);
}

TEST(Lars, MomentumOnScaledUpdate) {
  FakeParam p({3.0f, 4.0f}, {0.6f, 0.8f});
  optim::Lars lars({.trust_coeff = 0.01, .momentum = 0.5,
                    .weight_decay = 0.0, .eps = 0.0});
  lars.step(p.refs, 1.0);
  const float w_after_1 = p.w[0];
  lars.step(p.refs, 1.0);
  // Second velocity includes half of the first: step grows.
  EXPECT_LT(p.w[0], w_after_1);
}

TEST(Lars, RejectsBadConfig) {
  EXPECT_THROW(optim::Lars({.trust_coeff = 0.0}), std::invalid_argument);
  EXPECT_THROW(optim::Lars({.momentum = 1.5}), std::invalid_argument);
  EXPECT_THROW(optim::Lars({.weight_decay = -0.1}), std::invalid_argument);
}

TEST(Lars, ResetClearsState) {
  FakeParam p({1.0f}, {1.0f});
  optim::Lars lars;
  lars.step(p.refs, 0.1);
  lars.reset();
  EXPECT_TRUE(lars.last_local_lrs().empty());
}

}  // namespace
}  // namespace minsgd
