// Tests for the library extensions: gradient accumulation, cosine
// annealing, and top-k metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "optim/schedule.hpp"
#include "nn/loss.hpp"
#include "optim/lars.hpp"
#include "optim/sgd.hpp"

#include <sstream>
#include "train/trainer.hpp"

namespace minsgd {
namespace {

data::SynthConfig data_cfg() {
  data::SynthConfig c;
  c.classes = 4;
  c.resolution = 12;
  c.train_size = 256;
  c.test_size = 128;
  c.noise = 0.4f;
  c.seed = 5;
  return c;
}

std::unique_ptr<nn::Network> det_model() {
  auto net = std::make_unique<nn::Network>("det");
  net->emplace<nn::Conv2d>(3, 8, 3, 1, 1);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2, 2);
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 36, 4);
  return net;
}

// ---------------- gradient accumulation ----------------

TEST(Accumulation, EquivalentToLargeBatch) {
  // batch 64 directly == batch 32 with 2 accumulation steps: the epoch
  // permutation makes micro-batches (0,1) exactly the large batch's halves.
  data::SyntheticImageNet ds(data_cfg());
  optim::ConstantLr lr(0.02);

  train::TrainOptions direct;
  direct.global_batch = 64;
  direct.epochs = 2;
  auto net1 = det_model();
  optim::Sgd opt1({.momentum = 0.9, .weight_decay = 0.0005});
  const auto big = train::train_single(*net1, opt1, lr, ds, direct);

  train::TrainOptions accum;
  accum.global_batch = 32;
  accum.epochs = 2;
  accum.accumulation_steps = 2;
  auto net2 = det_model();
  optim::Sgd opt2({.momentum = 0.9, .weight_decay = 0.0005});
  const auto acc = train::train_single(*net2, opt2, lr, ds, accum);

  ASSERT_EQ(big.iterations_run, acc.iterations_run);
  ASSERT_EQ(big.epochs.size(), acc.epochs.size());
  for (std::size_t e = 0; e < big.epochs.size(); ++e) {
    EXPECT_NEAR(big.epochs[e].train_loss, acc.epochs[e].train_loss, 1e-5);
    EXPECT_NEAR(big.epochs[e].train_acc, acc.epochs[e].train_acc, 1e-9);
  }
  EXPECT_EQ(net1->flatten_params().size(), net2->flatten_params().size());
  const auto w1 = net1->flatten_params();
  const auto w2 = net2->flatten_params();
  for (std::size_t i = 0; i < w1.size(); i += 97) {
    EXPECT_NEAR(w1[i], w2[i], 1e-5);
  }
}

TEST(Accumulation, RejectsInvalidSteps) {
  data::SyntheticImageNet ds(data_cfg());
  optim::ConstantLr lr(0.02);
  auto net = det_model();
  optim::Sgd opt;
  train::TrainOptions options;
  options.global_batch = 32;
  options.accumulation_steps = 0;
  EXPECT_THROW(train::train_single(*net, opt, lr, ds, options),
               std::invalid_argument);
  options.accumulation_steps = 100;  // > iterations per epoch (8)
  EXPECT_THROW(train::train_single(*net, opt, lr, ds, options),
               std::invalid_argument);
}

// ---------------- cosine schedule ----------------

TEST(Cosine, EndpointsAndMidpoint) {
  optim::CosineLr s(2.0, 100);
  EXPECT_DOUBLE_EQ(s.lr(0), 2.0);
  EXPECT_NEAR(s.lr(50), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.lr(100), 0.0);
  EXPECT_DOUBLE_EQ(s.lr(500), 0.0);
}

TEST(Cosine, MonotoneNonIncreasing) {
  optim::CosineLr s(1.0, 64);
  for (int i = 1; i <= 64; ++i) EXPECT_LE(s.lr(i), s.lr(i - 1));
}

TEST(Cosine, ComposesWithWarmup) {
  auto inner = std::make_unique<optim::CosineLr>(1.0, 100);
  optim::WarmupLr s(std::move(inner), 10, 0.0);
  EXPECT_LT(s.lr(0), 0.2);
  EXPECT_GT(s.lr(10), 0.9);  // cosine is still near base just after warmup
}

TEST(Cosine, RejectsBadConfig) {
  EXPECT_THROW(optim::CosineLr(0.0, 10), std::invalid_argument);
  EXPECT_THROW(optim::CosineLr(1.0, 0), std::invalid_argument);
}

// ---------------- top-k ----------------

TEST(TopK, KOneMatchesArgmax) {
  Tensor logits({2, 4}, std::vector<float>{1, 5, 2, 3, 9, 0, 1, 2});
  std::vector<std::int32_t> labels{1, 0};
  EXPECT_EQ(train::top_k_correct(logits, labels, 1), 2);
  labels = {0, 1};
  EXPECT_EQ(train::top_k_correct(logits, labels, 1), 0);
}

TEST(TopK, LargerKIsMoreForgiving) {
  Tensor logits({1, 5}, std::vector<float>{5, 4, 3, 2, 1});
  for (std::int64_t k = 1; k <= 5; ++k) {
    std::vector<std::int32_t> labels{static_cast<std::int32_t>(k - 1)};
    EXPECT_EQ(train::top_k_correct(logits, labels, k), 1) << "k=" << k;
    if (k < 5) {
      std::vector<std::int32_t> beyond{static_cast<std::int32_t>(k)};
      EXPECT_EQ(train::top_k_correct(logits, beyond, k), 0) << "k=" << k;
    }
  }
}

TEST(TopK, FullKAlwaysCorrect) {
  Rng rng(3);
  Tensor logits({8, 6});
  rng.fill_normal(logits.span(), 0.0f, 1.0f);
  std::vector<std::int32_t> labels(8, 5);
  EXPECT_EQ(train::top_k_correct(logits, labels, 6), 8);
}

TEST(TopK, RejectsBadArguments) {
  Tensor logits({1, 3});
  std::vector<std::int32_t> labels{0};
  EXPECT_THROW(train::top_k_correct(logits, labels, 0),
               std::invalid_argument);
  EXPECT_THROW(train::top_k_correct(logits, labels, 4),
               std::invalid_argument);
  std::vector<std::int32_t> bad{7};
  EXPECT_THROW(train::top_k_correct(logits, bad, 1), std::out_of_range);
}

TEST(TopK, EvaluateTopKAtLeastTopOne) {
  data::SyntheticImageNet ds(data_cfg());
  auto net = det_model();
  Rng rng(1);
  net->init(rng);
  const double top1 = train::evaluate_top_k(*net, ds, 1);
  const double top3 = train::evaluate_top_k(*net, ds, 3);
  EXPECT_GE(top3, top1);
  EXPECT_NEAR(top1, train::evaluate(*net, ds), 1e-9);
}

// ---------------- optimizer state checkpointing ----------------

TEST(OptimizerState, SgdRoundTripResumesExactly) {
  // Train 2 epochs in one go vs 1 epoch + state save/restore + 1 epoch:
  // the weights must match exactly (momentum is part of the trajectory).
  data::SyntheticImageNet ds(data_cfg());
  data::ShardedLoader loader(ds, 32);
  nn::SoftmaxCrossEntropy loss;
  auto run_epoch = [&](nn::Network& net, optim::Optimizer& opt,
                       std::int64_t epoch) {
    auto params = net.params();
    Tensor logits, dlogits, dx;
    for (std::int64_t it = 0; it < loader.iterations_per_epoch(); ++it) {
      const auto batch = loader.load_train(epoch, it);
      net.zero_grad();
      net.forward(batch.x, logits, true);
      loss.forward_backward(logits, batch.labels, &dlogits);
      net.backward(batch.x, logits, dlogits, dx);
      opt.step(params, 0.02);
    }
  };

  auto direct_net = det_model();
  Rng r1(3);
  direct_net->init(r1);
  optim::Sgd direct_opt({.momentum = 0.9, .weight_decay = 0.0005});
  run_epoch(*direct_net, direct_opt, 0);
  run_epoch(*direct_net, direct_opt, 1);

  auto resumed_net = det_model();
  Rng r2(3);
  resumed_net->init(r2);
  optim::Sgd phase1({.momentum = 0.9, .weight_decay = 0.0005});
  run_epoch(*resumed_net, phase1, 0);
  std::stringstream state;
  phase1.save_state(state);
  optim::Sgd phase2({.momentum = 0.9, .weight_decay = 0.0005});
  phase2.load_state(state);
  run_epoch(*resumed_net, phase2, 1);

  EXPECT_EQ(direct_net->flatten_params(), resumed_net->flatten_params());
}

TEST(OptimizerState, FreshOptimizerSavesEmptyState) {
  optim::Sgd sgd;
  std::stringstream s;
  sgd.save_state(s);
  optim::Lars lars;
  lars.load_state(s);  // empty state loads into any optimizer
  SUCCEED();
}

TEST(OptimizerState, LarsRoundTrip) {
  Tensor w({4}, std::vector<float>{1, 2, 3, 4});
  Tensor g({4}, std::vector<float>{0.1f, 0.2f, 0.3f, 0.4f});
  std::vector<nn::ParamRef> p{{"a", &w, &g, true}};
  optim::Lars a({.trust_coeff = 0.1, .momentum = 0.9});
  a.step(p, 0.5);
  std::stringstream s;
  a.save_state(s);

  Tensor w2 = w, g2 = g;
  std::vector<nn::ParamRef> p2{{"a", &w2, &g2, true}};
  optim::Lars b({.trust_coeff = 0.1, .momentum = 0.9});
  b.load_state(s);
  a.step(p, 0.5);
  b.step(p2, 0.5);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(w[i], w2[i]);
}

TEST(OptimizerState, TruncatedStateThrows) {
  optim::Sgd sgd;
  Tensor w({2}, 1.0f), g({2}, 1.0f);
  std::vector<nn::ParamRef> p{{"a", &w, &g, true}};
  sgd.step(p, 0.1);
  std::stringstream s;
  sgd.save_state(s);
  const std::string full = s.str();
  std::stringstream truncated(full.substr(0, full.size() - 3));
  optim::Sgd other;
  EXPECT_THROW(other.load_state(truncated), std::runtime_error);
}

}  // namespace
}  // namespace minsgd
