#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/csv.hpp"

namespace minsgd {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(CsvWriter, WritesHeaderAndRows) {
  TempFile f("csv_basic.csv");
  {
    core::CsvWriter csv(f.path, {"a", "b", "c"});
    csv.row(1, 2.5, "x");
    csv.row(-3, 0.0, "y z");
  }
  EXPECT_EQ(read_all(f.path), "a,b,c\n1,2.5,x\n-3,0,y z\n");
}

TEST(CsvWriter, RejectsColumnCountMismatch) {
  TempFile f("csv_mismatch.csv");
  core::CsvWriter csv(f.path, {"a", "b"});
  EXPECT_THROW(csv.row(1), std::invalid_argument);
  EXPECT_THROW(csv.row(1, 2, 3), std::invalid_argument);
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(core::CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

TEST(CsvWriter, SingleColumn) {
  TempFile f("csv_single.csv");
  {
    core::CsvWriter csv(f.path, {"only"});
    csv.row(42);
  }
  EXPECT_EQ(read_all(f.path), "only\n42\n");
}

}  // namespace
}  // namespace minsgd
