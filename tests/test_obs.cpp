// Tracer, MetricsRegistry, per-collective traffic attribution, and the
// TrainResult exporters. Trace and metrics output is validated by
// round-tripping through a real JSON parser (obs/json.hpp), not substring
// greps: a trace Chrome cannot load is a bug.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/cluster.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/trace.hpp"
#include "tensor/threadpool.hpp"
#include "train/metrics.hpp"

namespace minsgd {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Every test starts from an empty tracer/registry and leaves tracing off;
/// the tracer and registry are process-wide singletons.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::tracer().set_enabled(false);
    obs::tracer().clear();
    obs::metrics().clear();
  }
  void TearDown() override {
    obs::tracer().set_enabled(false);
    obs::tracer().clear();
    obs::metrics().clear();
  }
};

// -- tracer basics ----------------------------------------------------------

TEST_F(ObsTest, DisabledByDefaultRecordsNothing) {
  ASSERT_FALSE(obs::tracer().enabled());
  {
    obs::ScopedSpan sp("should.not.appear", obs::cat::kCompute);
    obs::ScopedSpan sp2(std::string("dynamic.") + "name", obs::cat::kComm);
    sp2.set_bytes(123);
  }
  EXPECT_EQ(obs::tracer().span_count(), 0u);
  EXPECT_TRUE(obs::tracer().snapshot().empty());
  EXPECT_TRUE(obs::tracer().summary().empty());
}

TEST_F(ObsTest, SpanStartedWhileDisabledStaysUnrecorded) {
  obs::ScopedSpan sp("started.disabled", obs::cat::kCompute);
  obs::tracer().set_enabled(true);  // enable before the span closes
  sp.stop();
  EXPECT_EQ(obs::tracer().span_count(), 0u);
}

#ifndef MINSGD_TRACE_OFF
TEST_F(ObsTest, RecordsNameCategoryNestingAndArgs) {
  obs::tracer().set_enabled(true);
  {
    obs::ScopedSpan outer("outer", obs::cat::kPhase);
    {
      obs::ScopedSpan inner("inner", obs::cat::kComm);
      inner.set_bytes(4096);
      inner.set_label("ring");
    }
  }
  const auto spans = obs::tracer().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // snapshot() orders by start time: outer first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[0].category, obs::cat::kPhase);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].bytes, 4096);
  EXPECT_EQ(spans[1].label, "ring");
  // The inner span is contained in the outer one.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].dur_ns,
            spans[0].start_ns + spans[0].dur_ns);
}

TEST_F(ObsTest, StopIsIdempotentAndEndsTheSpanEarly) {
  obs::tracer().set_enabled(true);
  obs::ScopedSpan sp("early", obs::cat::kCompute);
  sp.stop();
  sp.stop();  // second stop must not record again
  EXPECT_EQ(obs::tracer().span_count(), 1u);
  EXPECT_FALSE(sp.active());
}

TEST_F(ObsTest, ClearDropsSpansAndResetsEpoch) {
  obs::tracer().set_enabled(true);
  { obs::ScopedSpan sp("a", obs::cat::kCompute); }
  ASSERT_EQ(obs::tracer().span_count(), 1u);
  obs::tracer().clear();
  EXPECT_EQ(obs::tracer().span_count(), 0u);
  { obs::ScopedSpan sp("b", obs::cat::kCompute); }
  const auto spans = obs::tracer().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].start_ns, 0);
}
#endif  // MINSGD_TRACE_OFF

// -- summary math -----------------------------------------------------------

TEST_F(ObsTest, SummaryComputesCountTotalMeanAndNearestRankP95) {
  // Inject 100 spans with durations 1..100ns directly; nearest-rank p95 of
  // {1..100} is the 95th value.
  for (int i = 1; i <= 100; ++i) {
    obs::Span s;
    s.name = "op";
    s.category = obs::cat::kCompute;
    s.start_ns = i;
    s.dur_ns = i;
    obs::tracer().record(std::move(s));
  }
  const auto stats = obs::tracer().summary();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "op");
  EXPECT_EQ(stats[0].count, 100);
  EXPECT_EQ(stats[0].total_ns, 5050);
  EXPECT_DOUBLE_EQ(stats[0].mean_ns(), 50.5);
  EXPECT_EQ(stats[0].p95_ns, 95);
  EXPECT_EQ(stats[0].max_ns, 100);
}

TEST_F(ObsTest, SummaryP95SmallSamples) {
  // n = 1: p95 is the only sample. n = 2: nearest-rank index 2 -> max.
  obs::Span s;
  s.name = "one";
  s.category = obs::cat::kCompute;
  s.dur_ns = 7;
  obs::tracer().record(s);
  s.name = "two";
  s.dur_ns = 10;
  obs::tracer().record(s);
  s.dur_ns = 20;
  obs::tracer().record(s);
  for (const auto& st : obs::tracer().summary()) {
    if (st.name == "one") {
      EXPECT_EQ(st.p95_ns, 7);
    }
    if (st.name == "two") {
      EXPECT_EQ(st.p95_ns, 20);
    }
  }
}

TEST_F(ObsTest, SummaryGroupsByCategoryAndName) {
  obs::Span s;
  s.category = obs::cat::kCompute;
  s.name = "x";
  s.dur_ns = 5;
  obs::tracer().record(s);
  obs::tracer().record(s);
  s.category = obs::cat::kComm;  // same name, different category: own row
  obs::tracer().record(s);
  const auto stats = obs::tracer().summary();
  ASSERT_EQ(stats.size(), 2u);
  std::int64_t total = 0;
  for (const auto& st : stats) total += st.count;
  EXPECT_EQ(total, 3);
}

// -- concurrent recording + chrome export -----------------------------------

#ifndef MINSGD_TRACE_OFF
TEST_F(ObsTest, ConcurrentSpansFromThreadPoolProduceValidChromeTrace) {
  obs::tracer().set_enabled(true);
  constexpr int kTasks = 64;
  // minsgd-lint: allow(thread-spawn): a raw ThreadPool exercises the
  // tracer's per-thread buffers to test cross-thread span collection.
  ThreadPool pool(4);
  for (int t = 0; t < kTasks; ++t) {
    pool.submit([t] {
      obs::ScopedSpan sp("task." + std::to_string(t % 4), obs::cat::kCompute);
      obs::ScopedSpan inner("inner", obs::cat::kData);
    });
  }
  pool.wait_idle();
  obs::tracer().set_enabled(false);
  EXPECT_EQ(obs::tracer().span_count(), 2u * kTasks);

  std::ostringstream os;
  obs::tracer().write_chrome_trace(os);
  const auto doc = obs::json::parse(os.str());  // throws if malformed
  const auto& events = doc.at("traceEvents").as_array();
  std::size_t x_events = 0;
  for (const auto& e : events) {
    const auto& ph = e.at("ph").as_string();
    if (ph == "M") continue;  // process_name metadata
    EXPECT_EQ(ph, "X");
    EXPECT_FALSE(e.at("name").as_string().empty());
    EXPECT_GE(e.at("ts").as_number(), 0.0);
    EXPECT_GE(e.at("dur").as_number(), 0.0);
    e.at("pid").as_number();
    e.at("tid").as_number();
    ++x_events;
  }
  EXPECT_EQ(x_events, 2u * kTasks);
}
#endif  // MINSGD_TRACE_OFF

TEST_F(ObsTest, ChromeTraceEscapesSpecialCharacters) {
  obs::Span s;
  s.name = "weird \"name\"\nwith\\escapes";
  s.category = obs::cat::kCompute;
  s.dur_ns = 1;
  obs::tracer().record(s);
  std::ostringstream os;
  obs::tracer().write_chrome_trace(os);
  const auto doc = obs::json::parse(os.str());
  const auto& events = doc.at("traceEvents").as_array();
  bool found = false;
  for (const auto& e : events) {
    if (e.at("ph").as_string() != "X") continue;
    EXPECT_EQ(e.at("name").as_string(), s.name);
    found = true;
  }
  EXPECT_TRUE(found);
}

#ifndef MINSGD_TRACE_OFF
TEST_F(ObsTest, SimClusterRanksGetTheirOwnTraceLanes) {
  obs::tracer().set_enabled(true);
  constexpr int kWorld = 3;
  comm::SimCluster cluster(kWorld);
  cluster.run([](comm::Communicator& comm) {
    obs::ScopedSpan sp("work", obs::cat::kCompute);
    (void)comm;
  });
  obs::tracer().set_enabled(false);

  std::ostringstream os;
  obs::tracer().write_chrome_trace(os);
  const auto doc = obs::json::parse(os.str());
  std::vector<bool> lane_named(kWorld, false), lane_used(kWorld, false);
  for (const auto& e : doc.at("traceEvents").as_array()) {
    const int pid = static_cast<int>(e.at("pid").as_number());
    if (e.at("ph").as_string() == "M") {
      ASSERT_EQ(e.at("name").as_string(), "process_name");
      if (pid >= 0 && pid < kWorld) lane_named[pid] = true;
      continue;
    }
    if (e.at("name").as_string() == "work") {
      ASSERT_GE(pid, 0);
      ASSERT_LT(pid, kWorld);
      lane_used[pid] = true;
    }
  }
  for (int r = 0; r < kWorld; ++r) {
    EXPECT_TRUE(lane_named[r]) << "no process_name for rank " << r;
    EXPECT_TRUE(lane_used[r]) << "no span in rank " << r << "'s lane";
  }
}
#endif  // MINSGD_TRACE_OFF

// -- metrics registry -------------------------------------------------------

TEST_F(ObsTest, CountersAndGaugesAreCreateOnFirstUseAndStable) {
  auto& c = obs::metrics().counter("iters");
  c.add();
  c.add(9);
  EXPECT_EQ(obs::metrics().counter("iters").value(), 10);
  EXPECT_EQ(&obs::metrics().counter("iters"), &c);

  obs::metrics().gauge("lr").set(0.25);
  EXPECT_DOUBLE_EQ(obs::metrics().gauge("lr").value(), 0.25);
}

TEST_F(ObsTest, SourcesContributeSamplesAtSnapshotTime) {
  int polls = 0;
  obs::metrics().register_source("src", [&polls] {
    ++polls;
    std::vector<obs::Sample> out;
    out.push_back({"src.live", static_cast<double>(polls),
                   obs::Sample::Kind::kGauge});
    return out;
  });
  obs::metrics().counter("fixed").add(3);

  auto snap = obs::metrics().snapshot();
  ASSERT_EQ(snap.size(), 2u);  // sorted by name: fixed, src.live
  EXPECT_EQ(snap[0].name, "fixed");
  EXPECT_EQ(snap[1].name, "src.live");
  EXPECT_DOUBLE_EQ(snap[1].value, 1.0);

  obs::metrics().unregister_source("src");
  snap = obs::metrics().snapshot();
  EXPECT_EQ(snap.size(), 1u);
  EXPECT_EQ(polls, 1);
}

TEST_F(ObsTest, JsonlSnapshotParsesAndKeepsCountersIntegral) {
  obs::metrics().counter("msgs").add(7);
  obs::metrics().gauge("ratio").set(1.5);
  obs::metrics().gauge("bad").set(std::nan(""));
  std::ostringstream os;
  obs::metrics().write_jsonl_snapshot(os);
  const std::string line = os.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  const auto doc = obs::json::parse(line.substr(0, line.size() - 1));
  EXPECT_DOUBLE_EQ(doc.at("msgs").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(doc.at("ratio").as_number(), 1.5);
  EXPECT_TRUE(doc.at("bad").is_null());
  // Counter must be serialized without a decimal point.
  EXPECT_NE(line.find("\"msgs\":7"), std::string::npos);
  EXPECT_EQ(line.find("\"msgs\":7."), std::string::npos);
}

// -- per-collective traffic attribution -------------------------------------

TEST_F(ObsTest, TrafficMeterAttributesPerOp) {
  comm::TrafficMeter meter(2);
  meter.record_send(0, 100);  // defaults to p2p
  meter.record_send(1, 50, comm::WireOp::kAllreduceRing);
  meter.record_send(1, 50, comm::WireOp::kAllreduceRing);

  EXPECT_EQ(meter.op_stats(comm::WireOp::kP2P).bytes, 100);
  EXPECT_EQ(meter.op_stats(comm::WireOp::kAllreduceRing).messages, 2);
  EXPECT_EQ(meter.op_stats(comm::WireOp::kAllreduceRing).bytes, 100);
  EXPECT_EQ(meter.total().bytes, 200);

  const auto rows = meter.by_op();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "p2p");
  EXPECT_EQ(rows[1].first, "allreduce-ring");

  meter.reset();
  EXPECT_TRUE(meter.by_op().empty());
}

TEST_F(ObsTest, ClusterAttributesCollectiveTraffic) {
  comm::SimCluster cluster(4);
  std::vector<float> data(64, 1.0f);
  cluster.run([&](comm::Communicator& comm) {
    std::vector<float> local = data;
    comm.allreduce_sum(local, comm::AllreduceAlgo::kRing);
    comm.broadcast(local, /*root=*/0);
  });
  const auto ring = cluster.op_traffic(comm::WireOp::kAllreduceRing);
  const auto bcast = cluster.op_traffic(comm::WireOp::kBroadcast);
  EXPECT_GT(ring.messages, 0);
  EXPECT_GT(bcast.messages, 0);
  // The tree allreduce's internal reduce/broadcast must NOT be claimed by
  // the inner collectives: everything belongs to the outermost op.
  cluster.reset_traffic();
  cluster.run([&](comm::Communicator& comm) {
    std::vector<float> local = data;
    comm.allreduce_sum(local, comm::AllreduceAlgo::kTree);
  });
  EXPECT_GT(cluster.op_traffic(comm::WireOp::kAllreduceTree).messages, 0);
  EXPECT_EQ(cluster.op_traffic(comm::WireOp::kReduce).messages, 0);
  EXPECT_EQ(cluster.op_traffic(comm::WireOp::kBroadcast).messages, 0);
}

TEST_F(ObsTest, ClusterRegistersAsMetricsSource) {
  auto& reg = obs::metrics();
  {
    comm::SimCluster cluster(2);
    cluster.register_metrics(reg, "c0");
    cluster.run([](comm::Communicator& comm) {
      std::vector<float> v(8, 1.0f);
      comm.allreduce_sum(v, comm::AllreduceAlgo::kStar);
    });
    bool saw_bytes = false, saw_op = false;
    for (const auto& s : reg.snapshot()) {
      if (s.name == "c0.traffic.bytes") {
        saw_bytes = true;
        EXPECT_GT(s.value, 0.0);
      }
      if (s.name == "c0.traffic.allreduce-star.messages") saw_op = true;
    }
    EXPECT_TRUE(saw_bytes);
    EXPECT_TRUE(saw_op);
  }
  // Destructor unregistered the source: snapshot no longer polls it.
  for (const auto& s : reg.snapshot()) {
    EXPECT_TRUE(s.name.rfind("c0.", 0) != 0) << s.name;
  }
}

// -- TrainResult exporters --------------------------------------------------

train::TrainResult make_result() {
  train::TrainResult r;
  for (int e = 0; e < 3; ++e) {
    train::EpochRecord rec;
    rec.epoch = e;
    rec.lr = 0.1 * (e + 1);
    rec.train_loss = 2.0 - 0.5 * e;
    rec.train_acc = 0.2 * (e + 1);
    rec.test_acc = 0.15 * (e + 1);
    r.epochs.push_back(rec);
  }
  r.iterations_run = 96;
  r.best_test_acc = 0.45;
  r.final_test_acc = 0.45;
  return r;
}

TEST_F(ObsTest, TrainResultCsvExport) {
  TempFile f("train_result.csv");
  train::write_csv(make_result(), f.path);
  const auto text = read_all(f.path);
  std::istringstream is(text);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "epoch,lr,train_loss,train_acc,test_acc");
  int rows = 0;
  while (std::getline(is, line)) ++rows;
  EXPECT_EQ(rows, 3);
  EXPECT_NE(text.find("\n0,0.1,2,"), std::string::npos);
}

TEST_F(ObsTest, TrainResultJsonlExportParsesLineByLine) {
  auto r = make_result();
  r.epochs[1].train_loss = std::nan("");  // must serialize as null
  r.diverged = true;
  std::ostringstream os;
  train::write_jsonl(r, os);
  std::istringstream is(os.str());
  std::string line;
  int epoch_lines = 0;
  bool saw_summary = false;
  while (std::getline(is, line)) {
    const auto doc = obs::json::parse(line);  // throws if malformed
    if (doc.contains("summary")) {
      saw_summary = true;
      EXPECT_TRUE(doc.at("diverged").as_bool());
      EXPECT_DOUBLE_EQ(doc.at("best_test_acc").as_number(), 0.45);
      EXPECT_DOUBLE_EQ(doc.at("iterations_run").as_number(), 96.0);
    } else {
      if (epoch_lines == 1) {
        EXPECT_TRUE(doc.at("train_loss").is_null());
      } else {
        doc.at("train_loss").as_number();
      }
      ++epoch_lines;
    }
  }
  EXPECT_EQ(epoch_lines, 3);
  EXPECT_TRUE(saw_summary);
}

// -- flight recorder --------------------------------------------------------

TEST(FlightRecorder, RingWraparoundKeepsTheLastEvents) {
  obs::FlightRecorder rec(16);
  for (int i = 0; i < 40; ++i) {
    rec.record(obs::FlightKind::kStep, obs::FlightOp::kNone, 0, 0, 0, 0, i);
  }
  EXPECT_EQ(rec.total_recorded(), 40);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 16u);
  // The ring holds exactly the most recent capacity_per_lane events.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, static_cast<std::int64_t>(24 + i));
  }
  rec.clear();
  EXPECT_EQ(rec.total_recorded(), 0);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(FlightRecorder, FieldsRoundTripThroughTheSlotPacking) {
  obs::FlightRecorder rec(16);
  rec.record(obs::FlightKind::kCollBegin, obs::FlightOp::kAllreduceTree, 2,
             (std::int64_t{1} << 44) + 17, 9, 123456, -3);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::FlightKind::kCollBegin);
  EXPECT_EQ(events[0].op, obs::FlightOp::kAllreduceTree);
  EXPECT_EQ(events[0].channel, 2);
  EXPECT_EQ(events[0].tag, (std::int64_t{1} << 44) + 17);
  EXPECT_EQ(events[0].generation, 9);
  EXPECT_EQ(events[0].bytes, 123456);
  EXPECT_EQ(events[0].arg, -3);
  EXPECT_EQ(events[0].rank, obs::thread_rank());
}

// Concurrent writers on distinct rank lanes racing a snapshot reader: the
// seqlock must never surface a torn slot (tier2-tsan re-runs this under
// ThreadSanitizer).
TEST(FlightRecorder, ConcurrentWritersAndSnapshotsStayExact) {
  obs::FlightRecorder rec(64);
  constexpr int kWriters = 4;
  constexpr int kEvents = 4000;
  std::atomic<bool> done{false};
  // minsgd-lint: allow(thread-spawn): the FlightRecorder::record vs
  // snapshot seqlock race is exactly what this test must create.
  std::vector<std::thread> writers;
  for (int r = 0; r < kWriters; ++r) {
    writers.emplace_back([&rec, r] {
      obs::set_thread_rank(r);
      for (int i = 0; i < kEvents; ++i) {
        rec.record(obs::FlightKind::kStep, obs::FlightOp::kNone, r, 10 + r,
                   0, 0, i);
      }
      obs::set_thread_rank(-1);
    });
  }
  // minsgd-lint: allow(thread-spawn): FlightRecorder::snapshot reader half
  // of the seqlock race.
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      for (const auto& e : rec.snapshot()) {
        // A torn slot would show mixed fields; every accepted event must be
        // internally consistent.
        ASSERT_EQ(e.kind, obs::FlightKind::kStep);
        ASSERT_EQ(e.channel, e.rank);
        ASSERT_EQ(e.tag, 10 + e.rank);
        ASSERT_GE(e.arg, 0);
        ASSERT_LT(e.arg, kEvents);
      }
    }
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(rec.total_recorded(), kWriters * kEvents);
  const auto final_events = rec.snapshot();
  EXPECT_EQ(final_events.size(), kWriters * rec.capacity_per_lane());
}

TEST(FlightRecorder, MacroHonorsTheEnabledGate) {
  auto& rec = obs::flight();
  const bool was_enabled = rec.enabled();
  rec.clear();
  rec.set_enabled(false);
  MINSGD_FLIGHT(obs::FlightKind::kStep, obs::FlightOp::kNone, 0, 0, 0, 0, 1);
  EXPECT_EQ(rec.total_recorded(), 0);
  rec.set_enabled(true);
  MINSGD_FLIGHT(obs::FlightKind::kStep, obs::FlightOp::kNone, 0, 0, 0, 0, 2);
  EXPECT_EQ(rec.total_recorded(), 1);
  rec.clear();
  rec.set_enabled(was_enabled);
}

// -- postmortem dump + analyzer ---------------------------------------------

TEST(Postmortem, WriteReadRoundTrip) {
  obs::PostmortemInfo info;
  info.reason = "rank 1: \"boom\"\n\tat line 7";
  info.world = 4;
  info.rank_errors = {{1, "RankFailure: injected"}, {3, "ClusterAborted"}};
  std::vector<obs::FlightEvent> events(2);
  events[0].t_ns = 123;
  events[0].kind = obs::FlightKind::kCollBegin;
  events[0].op = obs::FlightOp::kAllreduceRing;
  events[0].rank = 2;
  events[0].channel = 1;
  events[0].tag = (std::int64_t{1} << 44) + 5;  // wire-tag magnitude
  events[0].generation = 3;
  events[0].bytes = 4096;
  events[0].arg = 7;
  events[1].t_ns = 456;
  events[1].kind = obs::FlightKind::kCrash;
  events[1].op = obs::FlightOp::kTimeout;
  events[1].rank = 1;

  std::ostringstream os;
  obs::write_postmortem(os, info, events);
  const obs::Postmortem pm = obs::read_postmortem(os.str());
  EXPECT_EQ(pm.info.reason, info.reason);
  EXPECT_EQ(pm.info.world, 4);
  ASSERT_EQ(pm.info.rank_errors.size(), 2u);
  EXPECT_EQ(pm.info.rank_errors[0].first, 1);
  EXPECT_EQ(pm.info.rank_errors[1].second, "ClusterAborted");
  ASSERT_EQ(pm.events.size(), 2u);
  EXPECT_EQ(pm.events[0].kind, obs::FlightKind::kCollBegin);
  EXPECT_EQ(pm.events[0].op, obs::FlightOp::kAllreduceRing);
  EXPECT_EQ(pm.events[0].tag, (std::int64_t{1} << 44) + 5);
  EXPECT_EQ(pm.events[0].generation, 3);
  EXPECT_EQ(pm.events[0].channel, 1);
  EXPECT_EQ(pm.events[1].kind, obs::FlightKind::kCrash);
  EXPECT_EQ(pm.events[1].op, obs::FlightOp::kTimeout);
}

TEST(Postmortem, RejectsUnknownSchemaAndEnumerators) {
  EXPECT_THROW(obs::read_postmortem("{\"schema\":\"nope\"}"),
               std::runtime_error);
  EXPECT_THROW(
      obs::read_postmortem(
          "{\"schema\":\"minsgd-postmortem-v1\",\"reason\":\"r\",\"world\":1,"
          "\"errors\":[],\"events\":[{\"t_ns\":0,\"kind\":\"weird\","
          "\"op\":\"none\",\"rank\":0,\"chan\":0,\"tag\":0,\"gen\":0,"
          "\"bytes\":0,\"arg\":0}]}"),
      std::runtime_error);
}

/// Synthetic cross-rank timeline: rank 2 is late into both complete
/// collectives, one group is missing rank 3, and a membership commit shrinks
/// generation 1 to world 2. Mirrors tools/trace/analyze.py --self-test.
TEST(Postmortem, AnalyzerJoinsRanksAndNamesTheStraggler) {
  std::vector<obs::FlightEvent> ev;
  auto add = [&ev](std::int64_t t, obs::FlightKind kind, obs::FlightOp op,
                   int rank, int chan, std::int64_t tag, std::int64_t gen,
                   std::int64_t arg) {
    obs::FlightEvent e;
    e.t_ns = t;
    e.kind = kind;
    e.op = op;
    e.rank = rank;
    e.channel = chan;
    e.tag = tag;
    e.generation = gen;
    e.arg = arg;
    ev.push_back(e);
  };
  const std::int64_t ms = 1'000'000;
  for (int r = 0; r < 4; ++r) {
    add(1 * ms + r * 1000 + (r == 2 ? 2 * ms : 0), obs::FlightKind::kCollBegin,
        obs::FlightOp::kAllreduceRing, r, 0, 100, 0, 0);
    add(4 * ms, obs::FlightKind::kCollEnd, obs::FlightOp::kAllreduceRing, r,
        0, 100, 0, 0);
  }
  for (int r = 0; r < 4; ++r) {
    add(5 * ms + r * 1000 + (r == 2 ? 3 * ms : 0), obs::FlightKind::kCollBegin,
        obs::FlightOp::kBarrier, r, 0, 200, 0, 0);
    add(9 * ms, obs::FlightKind::kCollEnd, obs::FlightOp::kBarrier, r, 0, 200,
        0, 0);
  }
  for (int r = 0; r < 3; ++r) {  // rank 3 never reaches tag 300
    add(10 * ms + r * 1000, obs::FlightKind::kCollBegin,
        obs::FlightOp::kBroadcast, r, 0, 300, 0, 0);
  }
  add(11 * ms, obs::FlightKind::kMembership, obs::FlightOp::kCommit, 0, 2, 0,
      1, 2);
  for (int r = 0; r < 4; ++r) {
    add(12 * ms, obs::FlightKind::kStep, obs::FlightOp::kNone, r, 0, 0, 0, 0);
  }

  const obs::FlightAnalysis a = obs::analyze_flight(ev, 4);
  EXPECT_EQ(a.world, 4);
  EXPECT_EQ(a.groups, 3);
  EXPECT_EQ(a.matched_groups, 2);
  EXPECT_EQ(a.straggler_rank, 2);
  EXPECT_GT(a.straggler_lag_ns, 4 * ms);  // ~2 ms + ~3 ms of charged margin
  ASSERT_FALSE(a.worst.empty());
  EXPECT_EQ(a.worst.front().tag, 200);  // biggest skew first
  ASSERT_EQ(a.reconfigs.size(), 1u);
  EXPECT_EQ(a.reconfigs[0].world, 2);
  // Rank 0's exposed comm: tags 100 (3 ms) + 200 (4 ms); tag 300 never ends.
  bool saw_rank0 = false;
  for (const auto& row : a.step_comm) {
    if (row.rank != 0) continue;
    saw_rank0 = true;
    EXPECT_EQ(row.steps, 1);
    EXPECT_NEAR(static_cast<double>(row.exposed_ns), 7.0 * ms, 0.1 * ms);
  }
  EXPECT_TRUE(saw_rank0);

  std::ostringstream report;
  obs::write_analysis(report, a);
  EXPECT_NE(report.str().find("straggler: rank 2"), std::string::npos);
  EXPECT_NE(report.str().find("membership timeline"), std::string::npos);
}

TEST(Postmortem, DumpWritesTheConfiguredPath) {
  TempFile dump("pm_dump_roundtrip.json");
  obs::set_postmortem_path(dump.path);
  obs::flight().clear();
  MINSGD_FLIGHT(obs::FlightKind::kStep, obs::FlightOp::kNone, 0, 0, 0, 0, 42);
  obs::PostmortemInfo info;
  info.reason = "unit-test dump";
  info.world = 1;
  EXPECT_TRUE(obs::dump_postmortem(info));
  const obs::Postmortem pm = obs::read_postmortem_file(dump.path);
  EXPECT_EQ(pm.info.reason, "unit-test dump");
  ASSERT_EQ(pm.events.size(), 1u);
  EXPECT_EQ(pm.events[0].arg, 42);
  obs::set_postmortem_path("postmortem.json");
  obs::flight().clear();
}

// -- tracer buffers across thread exit --------------------------------------

TEST_F(ObsTest, SpansOfExitedThreadsSurviveUntilExportThenPrune) {
  obs::tracer().set_enabled(true);
  const std::size_t base = obs::tracer().thread_buffer_count();
  // minsgd-lint: allow(thread-spawn): the regression under test is a
  // ScopedSpan recorded by a thread that exits before export.
  std::thread worker([] {
    obs::ScopedSpan sp("short.lived.worker", obs::cat::kCompute);
  });
  worker.join();
  // The buffer outlives its thread: the span must still be exportable...
  EXPECT_EQ(obs::tracer().thread_buffer_count(), base + 1);
  const auto spans = obs::tracer().snapshot();
  bool found = false;
  for (const auto& s : spans) found |= s.name == "short.lived.worker";
  EXPECT_TRUE(found);
  // ...and clear() prunes the detached buffer so thread churn cannot grow
  // the registry without bound.
  obs::tracer().clear();
  EXPECT_EQ(obs::tracer().thread_buffer_count(), base);
}

}  // namespace
}  // namespace minsgd
