#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "comm/cluster.hpp"
#include "tensor/context.hpp"

namespace minsgd {
namespace {

// -- chunk geometry ---------------------------------------------------------
// The determinism contract rests on chunk boundaries being a function of
// (n, grain) only — never of the thread count. These tests pin the geometry.

TEST(ChunkGeometry, CountRespectsGrainAndCap) {
  EXPECT_EQ(ComputeContext::chunk_count(0, 1), 0);
  EXPECT_EQ(ComputeContext::chunk_count(1, 1), 1);
  EXPECT_EQ(ComputeContext::chunk_count(8, 1), 8);
  // Capped at kMaxChunks no matter how large n gets.
  EXPECT_EQ(ComputeContext::chunk_count(std::int64_t{1} << 20, 1),
            ComputeContext::kMaxChunks);
  // Grain bounds the number of chunks from above: ceil(n / grain).
  EXPECT_EQ(ComputeContext::chunk_count(100, 64), 2);
  EXPECT_EQ(ComputeContext::chunk_count(64, 64), 1);
}

TEST(ChunkGeometry, BoundsPartitionTheRange) {
  for (std::int64_t n : {1, 5, 16, 17, 100, 1000}) {
    const std::int64_t chunks = ComputeContext::chunk_count(n, 1);
    std::int64_t covered = 0;
    std::int64_t prev_hi = 0;
    for (std::int64_t c = 0; c < chunks; ++c) {
      const auto [lo, hi] = ComputeContext::chunk_bounds(n, chunks, c);
      EXPECT_EQ(lo, prev_hi) << "gap/overlap at chunk " << c << " n=" << n;
      EXPECT_LE(lo, hi);
      covered += hi - lo;
      prev_hi = hi;
    }
    EXPECT_EQ(prev_hi, n);
    EXPECT_EQ(covered, n);
  }
}

TEST(ChunkGeometry, IndependentOfContextThreadCount) {
  // Identical chunking regardless of which context executes: for_chunks on
  // a 1-thread and an 8-thread context must report the same (c, lo, hi)
  // triples (order of execution may differ; the set may not).
  auto collect = [](const ComputeContext& ctx) {
    std::vector<std::array<std::int64_t, 3>> out(
        static_cast<std::size_t>(ComputeContext::chunk_count(1000, 8)));
    std::mutex mu;
    ctx.for_chunks(1000, 8,
                   [&](std::int64_t c, std::int64_t lo, std::int64_t hi) {
                     std::lock_guard lk(mu);
                     out[static_cast<std::size_t>(c)] = {c, lo, hi};
                   });
    return out;
  };
  ComputeContext one(1), eight(8);
  EXPECT_EQ(collect(one), collect(eight));
}

// -- execution --------------------------------------------------------------

TEST(ComputeContext, ParallelForCoversRangeExactlyOnce) {
  ComputeContext ctx(4);
  std::vector<std::atomic<int>> hits(513);
  ctx.parallel_for(
      0, 513,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      },
      /*grain=*/1);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ComputeContext, SingleThreadRunsInlineWithoutPool) {
  ComputeContext ctx(1);
  EXPECT_EQ(ctx.threads(), 1u);
  EXPECT_EQ(ctx.pool_stats().workers, 0u);
  // for_chunks visits only non-empty chunks (ceil-sized steps can leave a
  // trailing empty one).
  const std::int64_t chunks = ComputeContext::chunk_count(100, 1);
  std::int64_t expected = 0;
  for (std::int64_t c = 0; c < chunks; ++c) {
    const auto [lo, hi] = ComputeContext::chunk_bounds(100, chunks, c);
    if (lo < hi) ++expected;
  }
  std::int64_t calls = 0;
  ctx.for_chunks(100, 1, [&](std::int64_t, std::int64_t, std::int64_t) {
    // ctx is ComputeContext(1): chunks run strictly inline on this thread.
    // minsgd-lint: allow(shared-accumulator): ctx is ComputeContext(1), so
    // for_chunks runs every chunk inline on this thread (no concurrency)
    ++calls;
  });
  EXPECT_EQ(calls, expected);
}

TEST(ComputeContext, NestedParallelRunsInline) {
  // A parallel region launched from inside a chunk must not re-enter the
  // pool (deadlock/oversubscription); it runs inline on the worker.
  ComputeContext ctx(4);
  std::atomic<int> total{0};
  ctx.parallel_for(
      0, 8,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          ctx.parallel_for(
              0, 8,
              [&](std::int64_t l2, std::int64_t h2) {
                total.fetch_add(static_cast<int>(h2 - l2));
              },
              /*grain=*/1);
        }
      },
      /*grain=*/1);
  EXPECT_EQ(total.load(), 64);
}

TEST(ComputeContext, ExceptionInChunkPropagates) {
  ComputeContext ctx(4);
  EXPECT_THROW(
      ctx.parallel_for(
          0, 16,
          [&](std::int64_t lo, std::int64_t) {
            if (lo >= 0) throw std::runtime_error("boom");
          },
          /*grain=*/1),
      std::runtime_error);
  // The context stays usable after a failed region.
  std::atomic<int> n{0};
  ctx.parallel_for(
      0, 16,
      [&](std::int64_t lo, std::int64_t hi) {
        n.fetch_add(static_cast<int>(hi - lo));
      },
      /*grain=*/1);
  EXPECT_EQ(n.load(), 16);
}

TEST(ComputeContext, PoolStatsTrackWork) {
  ComputeContext ctx(4);
  EXPECT_EQ(ctx.pool_stats().workers, 3u);  // caller is the 4th executor
  ctx.parallel_for(
      0, std::int64_t{1} << 16, [](std::int64_t, std::int64_t) {},
      /*grain=*/1);
  const PoolStats st = ctx.pool_stats();
  EXPECT_GE(st.tasks_executed, 0);
  EXPECT_EQ(st.queue_depth, 0);  // region completed; nothing left queued
}

TEST(ComputeContext, DefaultThreadsReadsEnv) {
  ::setenv("MINSGD_THREADS", "3", 1);
  EXPECT_EQ(ComputeContext::default_threads(), 3u);
  ::unsetenv("MINSGD_THREADS");
  EXPECT_GE(ComputeContext::default_threads(), 1u);
}

// -- cluster thread-budget arithmetic --------------------------------------

TEST(ClusterBudget, SplitsGlobalBudgetAcrossRanks) {
  comm::SimCluster cluster(comm::ClusterOptions{4, 8});
  std::size_t workers = 0;
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.rank_context(r).threads(), 2u);
    workers += cluster.rank_context(r).pool_stats().workers;
  }
  // 4 ranks x (2 threads - caller) = 4 live pool workers <= budget of 8.
  EXPECT_EQ(workers, 4u);
}

TEST(ClusterBudget, NeverBelowOneThreadPerRank) {
  // world > budget: every rank still gets an inline (1-thread) context and
  // zero pool workers — no oversubscription no matter the world size.
  comm::SimCluster cluster(comm::ClusterOptions{8, 4});
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(cluster.rank_context(r).threads(), 1u);
    EXPECT_EQ(cluster.rank_context(r).pool_stats().workers, 0u);
  }
}

TEST(ClusterBudget, RankContextRangeChecked) {
  comm::SimCluster cluster(comm::ClusterOptions{2, 2});
  EXPECT_THROW(cluster.rank_context(-1), std::invalid_argument);
  EXPECT_THROW(cluster.rank_context(2), std::invalid_argument);
}

TEST(ClusterBudget, CommunicatorCtxIsTheRankContext) {
  comm::SimCluster cluster(comm::ClusterOptions{2, 4});
  cluster.run([&](comm::Communicator& comm) {
    EXPECT_EQ(&comm.ctx(), &cluster.rank_context(comm.rank()));
    EXPECT_EQ(comm.ctx().threads(), 2u);
    // Rank threads can actually use their slice.
    std::atomic<int> n{0};
    comm.ctx().parallel_for(
        0, 100,
        [&](std::int64_t lo, std::int64_t hi) {
          n.fetch_add(static_cast<int>(hi - lo));
        },
        /*grain=*/1);
    EXPECT_EQ(n.load(), 100);
  });
}

}  // namespace
}  // namespace minsgd
