#include <gtest/gtest.h>

#include <cmath>

#include "comm/compress.hpp"
#include "data/synthetic.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/network.hpp"
#include "nn/pool.hpp"
#include "optim/lars.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"
#include "train/trainer.hpp"

namespace minsgd {
namespace {

using comm::OneBitCompressor;

TEST(OneBit, PayloadSizeFormula) {
  EXPECT_EQ(OneBitCompressor::payload_floats(1), 3u);
  EXPECT_EQ(OneBitCompressor::payload_floats(32), 3u);
  EXPECT_EQ(OneBitCompressor::payload_floats(33), 4u);
  EXPECT_EQ(OneBitCompressor::payload_floats(1000), 2u + 32u);
}

TEST(OneBit, CompressionRatioIsAbout32x) {
  const std::size_t n = 1 << 20;
  const double ratio =
      static_cast<double>(n) /
      static_cast<double>(OneBitCompressor::payload_floats(n));
  EXPECT_GT(ratio, 31.0);
  EXPECT_LT(ratio, 33.0);
}

TEST(OneBit, SignsSurviveRoundTrip) {
  OneBitCompressor c(8);
  std::vector<float> g{1.0f, -2.0f, 3.0f, -4.0f, 0.5f, -0.5f, 2.0f, -1.0f};
  const auto payload = c.compress(g);
  std::vector<float> out(8, 0.0f);
  OneBitCompressor::decompress_add(payload, out);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i] > 0, g[i] > 0) << "i=" << i;
  }
}

TEST(OneBit, ScalesAreConditionalMeans) {
  OneBitCompressor c(4);
  std::vector<float> g{2.0f, 4.0f, -1.0f, -3.0f};
  const auto payload = c.compress(g);
  EXPECT_FLOAT_EQ(payload[0], 3.0f);  // mean of {2, 4}
  EXPECT_FLOAT_EQ(payload[1], 2.0f);  // mean of |{-1, -3}|
}

TEST(OneBit, ErrorFeedbackCarriesResidual) {
  OneBitCompressor c(2);
  std::vector<float> g{1.0f, 3.0f};  // both positive -> scale 2, errors -1,+1
  c.compress(g);
  EXPECT_FLOAT_EQ(c.residual()[0], -1.0f);
  EXPECT_FLOAT_EQ(c.residual()[1], 1.0f);
  // Next round with zero gradient: the residual alone drives quantization.
  std::vector<float> zero{0.0f, 0.0f};
  const auto payload = c.compress(zero);
  std::vector<float> out(2, 0.0f);
  OneBitCompressor::decompress_add(payload, out);
  EXPECT_LT(out[0], 0.0f);  // the -1 residual shows up
}

TEST(OneBit, ErrorFeedbackMeansNoSystematicLoss) {
  // Over many rounds, sum(decompressed) must track sum(inputs): the error
  // feedback prevents the quantizer from losing gradient mass.
  OneBitCompressor c(64);
  Rng rng(3);
  std::vector<float> truth_sum(64, 0.0f), recon_sum(64, 0.0f);
  for (int round = 0; round < 200; ++round) {
    std::vector<float> g(64);
    rng.fill_normal(g, 0.05f, 1.0f);
    axpy(1.0f, g, truth_sum);
    const auto payload = c.compress(g);
    OneBitCompressor::decompress_add(payload, recon_sum);
  }
  // recon_sum = truth_sum - final residual, so they differ by at most the
  // residual, which stays bounded (does not grow with rounds).
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(recon_sum[i], truth_sum[i] - c.residual()[i], 1e-3);
  }
  EXPECT_LT(l2_norm(c.residual()) / std::sqrt(64.0), 4.0);
}

TEST(OneBit, RejectsSizeMismatch) {
  OneBitCompressor c(4);
  std::vector<float> wrong(5);
  EXPECT_THROW(c.compress(wrong), std::invalid_argument);
  std::vector<float> out(4), bad_payload(2);
  EXPECT_THROW(OneBitCompressor::decompress_add(bad_payload, out),
               std::invalid_argument);
  EXPECT_THROW(OneBitCompressor(0), std::invalid_argument);
}

// ---------------- trainer integration ----------------

std::unique_ptr<nn::Network> small_model() {
  auto net = std::make_unique<nn::Network>("c");
  net->emplace<nn::Conv2d>(3, 8, 3, 1, 1);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2, 2);
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 6 * 6, 4);
  return net;
}

data::SynthConfig small_data() {
  data::SynthConfig c;
  c.classes = 4;
  c.resolution = 12;
  c.train_size = 256;
  c.test_size = 128;
  c.noise = 0.4f;
  c.seed = 5;
  return c;
}

TEST(OneBitTraining, CompressedRunStillLearns) {
  data::SyntheticImageNet ds(small_data());
  train::TrainOptions options;
  options.global_batch = 32;
  options.epochs = 4;
  options.compress_one_bit = true;
  optim::ConstantLr lr(0.02);
  const auto res = train::train_sync_data_parallel(
      small_model, [] { return std::make_unique<optim::Sgd>(); }, lr, ds,
      options, 4);
  EXPECT_FALSE(res.result.diverged);
  EXPECT_GT(res.result.final_test_acc, 0.5);
}

TEST(OneBitTraining, MovesFarFewerGradientBytes) {
  data::SyntheticImageNet ds(small_data());
  train::TrainOptions options;
  options.global_batch = 64;
  options.epochs = 1;
  optim::ConstantLr lr(0.01);
  auto run = [&](bool compress) {
    options.compress_one_bit = compress;
    return train::train_sync_data_parallel(
        small_model, [] { return std::make_unique<optim::Sgd>(); }, lr, ds,
        options, 4);
  };
  const auto dense = run(false);
  const auto compressed = run(true);
  // Ring allreduce moves ~2x the gradient; compressed allgather moves
  // (P-1) payloads of size |W|/32 per rank. Either way the compressed run
  // must move at least ~5x fewer bytes at world 4.
  EXPECT_LT(compressed.traffic.bytes * 5, dense.traffic.bytes);
}

// ---------------- gradient bucketing ----------------

TEST(Bucketing, EquivalentToSingleAllreduce) {
  data::SyntheticImageNet ds(small_data());
  train::TrainOptions options;
  options.global_batch = 32;
  options.epochs = 2;
  optim::ConstantLr lr(0.02);
  auto run = [&](std::int64_t bucket_bytes) {
    options.bucket_bytes = bucket_bytes;
    return train::train_sync_data_parallel(
        small_model,
        [] {
          return std::make_unique<optim::Sgd>(
              optim::SgdConfig{.momentum = 0.9, .weight_decay = 0.0005});
        },
        lr, ds, options, 4, comm::AllreduceAlgo::kTree);
  };
  const auto whole = run(0);
  const auto bucketed = run(1024);
  ASSERT_EQ(whole.result.epochs.size(), bucketed.result.epochs.size());
  for (std::size_t e = 0; e < whole.result.epochs.size(); ++e) {
    EXPECT_NEAR(whole.result.epochs[e].train_loss,
                bucketed.result.epochs[e].train_loss, 1e-5);
  }
  // More buckets -> more messages for the same bytes.
  EXPECT_GT(bucketed.traffic.messages, whole.traffic.messages);
  EXPECT_EQ(bucketed.traffic.bytes, whole.traffic.bytes);
}

TEST(Bucketing, RejectsSubFloatBuckets) {
  data::SyntheticImageNet ds(small_data());
  train::TrainOptions options;
  options.global_batch = 32;
  options.epochs = 1;
  options.bucket_bytes = 2;
  optim::ConstantLr lr(0.02);
  EXPECT_THROW(train::train_sync_data_parallel(
                   small_model, [] { return std::make_unique<optim::Sgd>(); },
                   lr, ds, options, 2),
               std::invalid_argument);
}

// ---------------- LARC clipping ----------------

TEST(LarcClip, CapsLocalMultiplierAtOne) {
  Tensor w({2}, std::vector<float>{30.0f, 40.0f});  // ||w|| = 50
  Tensor g({2}, std::vector<float>{0.006f, 0.008f});  // ||g|| = 0.01
  std::vector<nn::ParamRef> p{{"a", &w, &g, true}};
  optim::Lars unclipped({.trust_coeff = 0.1, .momentum = 0.0,
                         .weight_decay = 0.0, .eps = 0.0});
  unclipped.step(p, 1.0);
  EXPECT_GT(unclipped.last_local_lrs()[0], 100.0);  // 0.1 * 50/0.01 = 500

  Tensor w2({2}, std::vector<float>{30.0f, 40.0f});
  Tensor g2({2}, std::vector<float>{0.006f, 0.008f});
  std::vector<nn::ParamRef> p2{{"a", &w2, &g2, true}};
  optim::Lars clipped({.trust_coeff = 0.1, .momentum = 0.0,
                       .weight_decay = 0.0, .eps = 0.0,
                       .adapt_non_decay_params = false, .clip = true});
  clipped.step(p2, 1.0);
  EXPECT_DOUBLE_EQ(clipped.last_local_lrs()[0], 1.0);
}

TEST(LarcClip, LeavesSmallMultipliersAlone) {
  Tensor w({2}, std::vector<float>{3.0f, 4.0f});
  Tensor g({2}, std::vector<float>{30.0f, 40.0f});
  std::vector<nn::ParamRef> p{{"a", &w, &g, true}};
  optim::Lars clipped({.trust_coeff = 0.1, .momentum = 0.0,
                       .weight_decay = 0.0, .eps = 0.0,
                       .adapt_non_decay_params = false, .clip = true});
  clipped.step(p, 1.0);
  EXPECT_NEAR(clipped.last_local_lrs()[0], 0.01, 1e-9);  // 0.1 * 5/50
}

}  // namespace
}  // namespace minsgd
