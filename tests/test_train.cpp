#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "nn/pool.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "train/async_trainer.hpp"
#include "train/trainer.hpp"

namespace minsgd {
namespace {

data::SynthConfig tiny_data_cfg() {
  data::SynthConfig c;
  c.classes = 4;
  c.resolution = 12;
  c.train_size = 256;
  c.test_size = 128;
  c.noise = 0.4f;
  c.distractor = 0.3f;
  c.seed = 5;
  return c;
}

// A deterministic model (no dropout, no batch norm): required for the exact
// sequential-consistency comparison below.
std::unique_ptr<nn::Network> det_model(std::int64_t classes = 4,
                                       std::int64_t res = 12) {
  auto net = std::make_unique<nn::Network>("det");
  net->emplace<nn::Conv2d>(3, 8, 3, 1, 1);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2, 2);
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * (res / 2) * (res / 2), classes);
  return net;
}

TEST(TrainSingle, LossDecreasesOnLearnableTask) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  auto net = det_model();
  optim::Sgd opt({.momentum = 0.9, .weight_decay = 0.0005});
  optim::ConstantLr lr(0.05);
  train::TrainOptions options;
  options.global_batch = 32;
  options.epochs = 4;
  const auto res = train::train_single(*net, opt, lr, ds, options);
  ASSERT_FALSE(res.diverged);
  ASSERT_EQ(res.epochs.size(), 4u);
  EXPECT_LT(res.epochs.back().train_loss, res.epochs.front().train_loss);
  EXPECT_GT(res.final_test_acc, 0.5);  // way above 25% chance
}

TEST(TrainSingle, IterationsRunMatchesBudget) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  auto net = det_model();
  optim::Sgd opt;
  optim::ConstantLr lr(0.01);
  train::TrainOptions options;
  options.global_batch = 64;
  options.epochs = 3;
  const auto res = train::train_single(*net, opt, lr, ds, options);
  EXPECT_EQ(res.iterations_run, 3 * (256 / 64));
}

TEST(TrainSingle, DivergenceDetectedAtInsaneLr) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  auto net = det_model();
  optim::Sgd opt({.momentum = 0.9, .weight_decay = 0.0});
  optim::ConstantLr lr(500.0);
  train::TrainOptions options;
  options.global_batch = 32;
  options.epochs = 3;
  const auto res = train::train_single(*net, opt, lr, ds, options);
  EXPECT_TRUE(res.diverged);
  EXPECT_LT(res.iterations_run, 3 * (256 / 32));  // stopped early
}

TEST(TrainSingle, DeterministicGivenSeeds) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  train::TrainOptions options;
  options.global_batch = 32;
  options.epochs = 2;
  auto run = [&] {
    auto net = det_model();
    optim::Sgd opt;
    optim::ConstantLr lr(0.02);
    return train::train_single(*net, opt, lr, ds, options);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  EXPECT_DOUBLE_EQ(a.epochs.back().train_loss, b.epochs.back().train_loss);
  EXPECT_DOUBLE_EQ(a.final_test_acc, b.final_test_acc);
}

// The paper's sequential-consistency argument, made executable: a P-way
// synchronous data-parallel run must match the single-process run on the
// same global batch exactly (same data order, same init, deterministic
// model.)
class SequentialConsistency : public ::testing::TestWithParam<int> {};

TEST_P(SequentialConsistency, DistributedMatchesSingleProcess) {
  const int world = GetParam();
  data::SyntheticImageNet ds(tiny_data_cfg());
  train::TrainOptions options;
  options.global_batch = 32;
  options.epochs = 2;
  optim::ConstantLr lr(0.02);

  auto single_net = det_model();
  optim::Sgd single_opt({.momentum = 0.9, .weight_decay = 0.0005});
  const auto single =
      train::train_single(*single_net, single_opt, lr, ds, options);

  const auto dist = train::train_sync_data_parallel(
      [] { return det_model(); },
      [] {
        return std::make_unique<optim::Sgd>(
            optim::SgdConfig{.momentum = 0.9, .weight_decay = 0.0005});
      },
      lr, ds, options, world, comm::AllreduceAlgo::kTree);

  ASSERT_EQ(single.epochs.size(), dist.result.epochs.size());
  for (std::size_t e = 0; e < single.epochs.size(); ++e) {
    // Loss scalars go through one float allreduce; tolerance covers the
    // different summation order.
    EXPECT_NEAR(single.epochs[e].train_loss, dist.result.epochs[e].train_loss,
                1e-4);
    EXPECT_NEAR(single.epochs[e].train_acc, dist.result.epochs[e].train_acc,
                1e-6);
  }
  EXPECT_NEAR(single.final_test_acc, dist.result.final_test_acc, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Worlds, SequentialConsistency,
                         ::testing::Values(1, 2, 4, 8));

TEST(TrainDistributed, TrafficScalesWithModelAndIterations) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  train::TrainOptions options;
  options.global_batch = 64;
  options.epochs = 1;
  optim::ConstantLr lr(0.01);
  const int world = 4;
  const auto dist = train::train_sync_data_parallel(
      [] { return det_model(); },
      [] { return std::make_unique<optim::Sgd>(); }, lr, ds, options, world,
      comm::AllreduceAlgo::kRing);
  EXPECT_GT(dist.traffic.messages, 0);
  EXPECT_GT(dist.traffic.bytes, 0);
  // Ring allreduce total bytes per iteration ~ 2 * |W| * 4 bytes (plus the
  // tiny stats allreduce); iterations = 4.
  auto params_net = det_model();
  Rng rng(1);
  params_net->init(rng);
  const double grad_bytes = 4.0 * static_cast<double>(params_net->num_params());
  // Ring allreduce moves 2*(P-1) chunk rounds of ~|W|/P floats per rank;
  // summed over ranks that is 2*(P-1)*|W| floats per iteration.
  const double expect = 2.0 * (world - 1) * grad_bytes * 4 /*iters*/;
  EXPECT_NEAR(static_cast<double>(dist.traffic.bytes), expect, expect * 0.2);
}

TEST(TrainDistributed, RejectsIndivisibleBatch) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  train::TrainOptions options;
  options.global_batch = 30;
  optim::ConstantLr lr(0.01);
  EXPECT_THROW(
      train::train_sync_data_parallel(
          [] { return det_model(); },
          [] { return std::make_unique<optim::Sgd>(); }, lr, ds, options, 4),
      std::invalid_argument);
}

TEST(TrainDistributed, BucketBytesValidatedUpFront) {
  // Regression: bucket_bytes used to be validated inside the iteration
  // loop, so a bad value surfaced only after a full forward/backward (and
  // not at all on empty runs). It must throw before any work happens.
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.01);
  auto run = [&](std::int64_t bucket_bytes) {
    train::TrainOptions options;
    options.global_batch = 32;
    options.epochs = 1;
    options.bucket_bytes = bucket_bytes;
    return train::train_sync_data_parallel(
        [] { return det_model(); },
        [] { return std::make_unique<optim::Sgd>(); }, lr, ds, options, 2);
  };
  EXPECT_THROW(run(1), std::invalid_argument);   // < one float
  EXPECT_THROW(run(3), std::invalid_argument);   // still < one float
  EXPECT_THROW(run(-8), std::invalid_argument);  // negative
  EXPECT_GT(run(0).iterations, 0);               // 0 = single bucket, valid
  EXPECT_GT(run(4).iterations, 0);               // minimum legal bucket
}

TEST(TrainAsync, ParameterServerLearnsOnEasyTask) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  train::TrainOptions options;
  options.global_batch = 32;
  options.epochs = 4;
  optim::ConstantLr lr(0.02);
  const auto res = train::train_async_param_server(
      [] { return det_model(); }, lr, ds, options, 4);
  EXPECT_FALSE(res.diverged);
  EXPECT_GT(res.final_test_acc, 0.4);
  // Each of the 4 workers pushes once per iteration of each of its 4
  // epochs: 4 workers * 4 epochs * 8 iterations.
  EXPECT_EQ(res.updates_applied, 4 * 4 * 8);
}

TEST(TrainAsync, ReportsStaleness) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  train::TrainOptions options;
  options.global_batch = 32;
  options.epochs = 2;
  optim::ConstantLr lr(0.01);
  const auto res = train::train_async_param_server(
      [] { return det_model(); }, lr, ds, options, 4);
  // With 4 concurrent workers some update almost surely lands between a
  // worker's pull and push.
  EXPECT_GE(res.max_staleness, 0);
  EXPECT_LE(res.max_staleness, res.updates_applied);
}

TEST(Evaluate, PerfectAndChanceBounds) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  auto net = det_model();
  Rng rng(3);
  net->init(rng);
  const double acc = train::evaluate(*net, ds);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

}  // namespace
}  // namespace minsgd
