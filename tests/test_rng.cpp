#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/rng.hpp"

namespace minsgd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += r.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng r(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng r(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, UniformIntInRange) {
  Rng r(19);
  std::vector<int> hist(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const auto v = r.uniform_int(7);
    ASSERT_LT(v, 7u);
    ++hist[static_cast<std::size_t>(v)];
  }
  for (int c : hist) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, UniformIntOneAlwaysZero) {
  Rng r(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(1), 0u);
}

TEST(Rng, UniformIntZeroThrows) {
  Rng r(23);
  EXPECT_THROW(r.uniform_int(0), std::invalid_argument);
}

TEST(Rng, FillNormalFills) {
  Rng r(29);
  std::vector<float> v(1000);
  r.fill_normal(v, 2.0f, 1.0f);
  double acc = 0.0;
  for (float x : v) acc += x;
  EXPECT_NEAR(acc / 1000.0, 2.0, 0.15);
}

TEST(Rng, FillUniformFills) {
  Rng r(31);
  std::vector<float> v(1000);
  r.fill_uniform(v, -1.0f, 1.0f);
  for (float x : v) {
    EXPECT_GE(x, -1.0f);
    EXPECT_LT(x, 1.0f);
  }
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng base(77);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  Rng s1_again = base.split(1);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (s1.next_u64() == s2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

// Property sweep: every seed yields in-range uniform_int values for a range
// of moduli (guards the rejection-sampling path).
class RngModuloProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngModuloProperty, AllValuesBelowModulus) {
  const std::uint64_t n = GetParam();
  Rng r(n * 1234567 + 1);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(r.uniform_int(n), n);
}

INSTANTIATE_TEST_SUITE_P(Moduli, RngModuloProperty,
                         ::testing::Values(1, 2, 3, 5, 7, 16, 1000, 1 << 20,
                                           (1ull << 63) + 3));

// ---------------- state snapshot / restore (exact-resume checkpoints) -----

TEST(RngState, RoundTripContinuesSameSequence) {
  Rng a(321);
  for (int i = 0; i < 17; ++i) a.next_u64();  // advance to some position
  const RngState snap = a.state();
  Rng b(999);  // different seed, fully overwritten by set_state
  b.set_state(snap);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
    EXPECT_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngState, CapturesMidBoxMullerCarry) {
  // normal() produces pairs; after an odd number of draws one value is
  // cached. A snapshot taken there must restore the carry, or every later
  // normal shifts by one sample.
  Rng a(77);
  a.normal();  // consume one of the pair -> carry is live
  const RngState snap = a.state();
  EXPECT_TRUE(snap.has_cached);
  Rng b(1);
  b.set_state(snap);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(a.normal(), b.normal());

  // And with no carry in flight the flag round-trips as false.
  Rng c(78);
  c.next_u64();
  const RngState clean = c.state();
  EXPECT_FALSE(clean.has_cached);
  Rng d(2);
  d.set_state(clean);
  EXPECT_EQ(c.normal(), d.normal());
}

}  // namespace
}  // namespace minsgd
