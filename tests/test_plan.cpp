// ExecutionPlan / TensorArena: layout, liveness aliasing, rebuild triggers,
// planned-vs-legacy bit-identity, and the O(1) steady-state allocation
// guarantee the tensor.allocs counter pins down.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "nn/network.hpp"
#include "nn/norm.hpp"
#include "nn/plan.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"
#include "obs/metrics.hpp"
#include "tensor/arena.hpp"
#include "tensor/context.hpp"

namespace minsgd {
namespace {

bool bits_equal(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

Tensor random_tensor(const Shape& shape, std::uint64_t seed) {
  Tensor t(shape);
  Rng rng(seed);
  for (auto& v : t.span()) v = static_cast<float>(rng.normal()) * 0.5f;
  return t;
}

/// RAII guard so a test cannot leak a flipped process-wide plan gate.
struct PlanGateGuard {
  bool enabled = nn::ExecutionPlan::enabled();
  bool recompute = nn::ExecutionPlan::recompute_default();
  ~PlanGateGuard() {
    nn::ExecutionPlan::set_enabled(enabled);
    nn::ExecutionPlan::set_recompute_default(recompute);
  }
};

// -- TensorArena ------------------------------------------------------------

TEST(TensorArena, DisjointIntervalsAlias) {
  TensorArena arena;
  // Two same-size tensors with non-overlapping lifetimes share bytes.
  arena.build({{Shape{64}, 64, 1, 2}, {Shape{64}, 64, 3, 4}});
  EXPECT_EQ(arena.offset(0), arena.offset(1));
  EXPECT_EQ(arena.total_floats(), 64);
  EXPECT_EQ(arena.raw_floats(), 128);
}

TEST(TensorArena, OverlappingIntervalsDoNotAlias) {
  TensorArena arena;
  arena.build({{Shape{64}, 64, 1, 3}, {Shape{64}, 64, 3, 4}});
  // Inclusive intervals touch at step 3, so the ranges must be disjoint.
  const auto lo = std::min(arena.offset(0), arena.offset(1));
  const auto hi = std::max(arena.offset(0), arena.offset(1));
  EXPECT_GE(hi - lo, 64);
  EXPECT_GE(arena.total_floats(), 128);
}

TEST(TensorArena, OffsetsAreAligned) {
  TensorArena arena;
  arena.build({{Shape{3}, 3, 1, 5},
               {Shape{17}, 17, 1, 5},
               {Shape{33}, 33, 2, 3},
               {Shape{1}, 1, 4, 6}});
  for (std::size_t i = 0; i < arena.size(); ++i) {
    EXPECT_EQ(arena.offset(i) % 16, 0) << "item " << i;
  }
}

TEST(TensorArena, BestFitReusesSmallestSufficientGap) {
  TensorArena arena;
  // Three long-lived anchors with two dead items sandwiched between them.
  // Placement is largest-first, so the layout is
  //   [A1 256][D1 128][A2 96][D2 64][A3 48]
  // and at step 3 both D1's and D2's slots are enclosed gaps. The step-3
  // tensor fits either; best-fit must take the smaller one (D2's).
  arena.build({{Shape{256}, 256, 1, 9},   // 0: anchor A1, live throughout
               {Shape{128}, 128, 1, 2},   // 1: D1, dies at step 3
               {Shape{96}, 96, 1, 9},     // 2: anchor A2
               {Shape{64}, 64, 1, 2},     // 3: D2, dies at step 3
               {Shape{48}, 48, 1, 9},     // 4: anchor A3
               {Shape{32}, 32, 3, 4}});   // 5: candidate, fits both gaps
  EXPECT_EQ(arena.offset(5), arena.offset(3));  // smaller gap wins
  EXPECT_NE(arena.offset(5), arena.offset(1));
  EXPECT_EQ(arena.total_floats(), 592);  // high-water mark: A3 ends at 592
  EXPECT_EQ(arena.raw_floats(), 624);    // sum of all six items
}

TEST(TensorArena, ViewsBindShapesAndZeroFill) {
  TensorArena arena;
  arena.build({{Shape{2, 3}, 6, 1, 2}, {Shape{4}, 4, 3, 3}});
  EXPECT_EQ(arena.tensor(0).shape(), Shape({2, 3}));
  EXPECT_EQ(arena.tensor(1).shape(), Shape({4}));
  EXPECT_TRUE(arena.tensor(0).bound());
  for (float v : arena.tensor(0).span()) EXPECT_EQ(v, 0.0f);
  // Writes through one view land in the shared block.
  arena.tensor(0).fill(2.0f);
  EXPECT_EQ(arena.tensor(0)[5], 2.0f);
}

TEST(TensorArena, ScratchCapacityExceedsShape) {
  TensorArena arena;
  // Chunk-strided scratch: elems > shape.numel() reserves the full block.
  arena.build({{Shape{8}, 64, 1, 1}});
  EXPECT_EQ(arena.tensor(0).shape().numel(), 8);
  EXPECT_EQ(arena.tensor(0).bound_capacity(), 64);
  EXPECT_EQ(arena.total_floats(), 64);
}

// -- PlanBuilder ------------------------------------------------------------

TEST(PlanBuilder, TimelineAndExtend) {
  nn::PlanOptions opts;
  nn::PlanBuilder b(42, opts);
  EXPECT_EQ(b.now(), 0);
  EXPECT_EQ(b.tick(), 1);
  const auto id = b.add(Shape{10}, 1, 1);
  b.tick();
  b.extend(id, 2);
  b.extend(nn::kNoTensor, 99);  // must be a no-op, not a crash
  const auto items = b.take_items();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].def, 1);
  EXPECT_EQ(items[0].last, 2);
  EXPECT_EQ(b.epoch(), 42u);
}

// -- ExecutionPlan ----------------------------------------------------------

std::unique_ptr<nn::Network> small_resnetish() {
  auto net = std::make_unique<nn::Network>("planned");
  net->emplace<nn::Conv2d>(3, 8, 3, 1, 1);
  net->emplace<nn::BatchNorm2d>(8);
  net->emplace<nn::ReLU>();
  auto branch = std::make_unique<nn::Network>("branch");
  branch->emplace<nn::Conv2d>(8, 8, 3, 1, 1);
  branch->emplace<nn::BatchNorm2d>(8);
  branch->emplace<nn::ReLU>();
  branch->emplace<nn::Conv2d>(8, 8, 3, 1, 1);
  branch->emplace<nn::BatchNorm2d>(8);
  net->add(std::make_unique<nn::ResidualBlock>(std::move(branch)));
  net->emplace<nn::MaxPool2d>(2, 2);
  net->emplace<nn::Flatten>();
  net->emplace<nn::Dropout>(0.25f);
  net->emplace<nn::Linear>(8 * 6 * 6, 4);
  return net;
}

TEST(ExecutionPlan, RebuildTriggers) {
  auto net = small_resnetish();
  nn::ExecutionPlan plan;
  EXPECT_FALSE(plan.built());
  nn::PlanOptions opts;
  EXPECT_TRUE(plan.ensure(*net, Shape({4, 3, 12, 12}), opts));
  EXPECT_TRUE(plan.built());
  const auto epoch1 = plan.epoch();
  EXPECT_GT(epoch1, 0u);
  // Same geometry: no rebuild, same epoch.
  EXPECT_FALSE(plan.ensure(*net, Shape({4, 3, 12, 12}), opts));
  EXPECT_EQ(plan.epoch(), epoch1);
  // Batch change: rebuild with a fresh process-unique epoch.
  EXPECT_TRUE(plan.ensure(*net, Shape({8, 3, 12, 12}), opts));
  EXPECT_GT(plan.epoch(), epoch1);
  EXPECT_EQ(plan.rebuilds(), 2);
  // Option change: rebuild.
  opts.recompute_cheap = !opts.recompute_cheap;
  EXPECT_TRUE(plan.ensure(*net, Shape({8, 3, 12, 12}), opts));
  EXPECT_EQ(plan.rebuilds(), 3);
}

TEST(ExecutionPlan, ArenaAliasingSavesMemory) {
  auto net = small_resnetish();
  nn::ExecutionPlan plan;
  nn::PlanOptions opts;
  opts.recompute_cheap = false;
  plan.ensure(*net, Shape({8, 3, 12, 12}), opts);
  // Liveness aliasing must beat allocate-everything-forever layout.
  EXPECT_LT(plan.arena_bytes(), plan.raw_bytes());
}

TEST(ExecutionPlan, RecomputeCheapShrinksArena) {
  auto net = small_resnetish();
  nn::ExecutionPlan keep, recompute;
  nn::PlanOptions kopts, ropts;
  kopts.recompute_cheap = false;
  ropts.recompute_cheap = true;
  keep.ensure(*net, Shape({8, 3, 12, 12}), kopts);
  const auto kept_bytes = keep.arena_bytes();
  recompute.ensure(*net, Shape({8, 3, 12, 12}), ropts);
  // Conv outputs feeding BN die at their last forward read; the arena must
  // get strictly smaller on this model.
  EXPECT_LT(recompute.arena_bytes(), kept_bytes);
}

/// Runs forward + backward on `net` and returns (y, dx, flat grads).
struct NetRun {
  std::vector<float> y, dx, grads;
};

NetRun run_net(nn::Network& net, const Tensor& x, const ComputeContext& ctx,
               nn::ExecutionPlan* plan) {
  net.zero_grad();
  Tensor y, dx;
  if (plan != nullptr) {
    auto pc = plan->context(net, x.shape());
    net.forward(x, y, /*training=*/true, ctx, &pc);
    const Tensor dy = random_tensor(y.shape(), 11);
    net.backward(x, y, dy, dx, ctx, &pc);
  } else {
    net.forward(x, y, /*training=*/true, ctx);
    const Tensor dy = random_tensor(y.shape(), 11);
    net.backward(x, y, dy, dx, ctx);
  }
  NetRun out;
  out.y.assign(y.span().begin(), y.span().end());
  out.dx.assign(dx.span().begin(), dx.span().end());
  out.grads = net.flatten_grads();
  return out;
}

TEST(ExecutionPlan, PlannedMatchesLegacyBitwise) {
  const Tensor x = random_tensor(Shape({4, 3, 12, 12}), 7);
  for (const bool recompute : {false, true}) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      const ComputeContext ctx(threads);
      // Fresh nets per mode: dropout streams must start identically.
      auto legacy_net = small_resnetish();
      auto planned_net = small_resnetish();
      Rng r1(123), r2(123);
      legacy_net->init(r1);
      planned_net->init(r2);
      const NetRun legacy = run_net(*legacy_net, x, ctx, nullptr);
      nn::ExecutionPlan plan;
      nn::PlanOptions opts;
      opts.recompute_cheap = recompute;
      plan.ensure(*planned_net, x.shape(), opts);
      const NetRun planned = run_net(*planned_net, x, ctx, &plan);
      EXPECT_TRUE(bits_equal(legacy.y, planned.y))
          << "y differs, t=" << threads << " recompute=" << recompute;
      EXPECT_TRUE(bits_equal(legacy.dx, planned.dx))
          << "dx differs, t=" << threads << " recompute=" << recompute;
      EXPECT_TRUE(bits_equal(legacy.grads, planned.grads))
          << "grads differ, t=" << threads << " recompute=" << recompute;
    }
  }
}

TEST(ExecutionPlan, ForeignContextFallsBackToLegacy) {
  // A context built for net A handed to net B must not touch B's ids — B
  // runs the legacy path and still produces the right bytes.
  const Tensor x = random_tensor(Shape({2, 3, 12, 12}), 3);
  const ComputeContext ctx(2);
  auto net_a = small_resnetish();
  auto net_b = small_resnetish();
  auto net_ref = small_resnetish();
  Rng ra(9), rb(9), rr(9);
  net_a->init(ra);
  net_b->init(rb);
  net_ref->init(rr);
  nn::ExecutionPlan plan_a;
  auto pc = plan_a.context(*net_a, x.shape());
  Tensor yb, dxb, yr, dxr;
  net_b->forward(x, yb, /*training=*/true, ctx, &pc);  // foreign context
  net_ref->forward(x, yr, /*training=*/true, ctx);
  const Tensor dy = random_tensor(yb.shape(), 5);
  net_b->backward(x, yb, dy, dxb, ctx, &pc);
  net_ref->backward(x, yr, dy, dxr, ctx);
  EXPECT_TRUE(bits_equal(yb.span(), yr.span()));
  EXPECT_TRUE(bits_equal(dxb.span(), dxr.span()));
}

TEST(ExecutionPlan, GateOffYieldsLegacyContext) {
  PlanGateGuard guard;
  nn::ExecutionPlan::set_enabled(false);
  auto net = small_resnetish();
  Rng r(1);
  net->init(r);
  nn::ExecutionPlan plan;
  auto pc = plan.context(*net, Shape({2, 3, 12, 12}));
  EXPECT_FALSE(pc.planned());
  EXPECT_FALSE(plan.built());
}

TEST(ExecutionPlan, SteadyStateAllocsAreZero) {
  // The acceptance bar: with a plan, iterating at a fixed geometry performs
  // no tensor allocations at all after warmup — tensor.allocs is flat.
  auto net = small_resnetish();
  Rng r(77);
  net->init(r);
  const ComputeContext ctx(4);
  const Tensor x = random_tensor(Shape({4, 3, 12, 12}), 7);
  nn::ExecutionPlan plan;
  Tensor y, dx, dy;
  auto iterate = [&] {
    net->zero_grad();
    auto pc = plan.context(*net, x.shape());
    net->forward(x, y, /*training=*/true, ctx, &pc);
    dy.resize(y.shape());
    dy.fill(0.5f);
    net->backward(x, y, dy, dx, ctx, &pc);
  };
  iterate();  // warmup: builds the plan, sizes y/dx/dy and legacy caches
  iterate();  // second pass settles resize-grown capacities
  auto& allocs = obs::metrics().counter("tensor.allocs");
  const auto before = allocs.value();
  for (int i = 0; i < 5; ++i) iterate();
  EXPECT_EQ(allocs.value(), before) << "planned steady state must not allocate";
}

TEST(ExecutionPlan, LegacyPathAllocatesPerIteration) {
  // Control for the test above: without a plan the conv scratch is
  // allocated per call, so the counter must keep moving.
  auto net = small_resnetish();
  Rng r(77);
  net->init(r);
  const ComputeContext ctx(4);
  const Tensor x = random_tensor(Shape({4, 3, 12, 12}), 7);
  Tensor y, dx, dy;
  auto iterate = [&] {
    net->zero_grad();
    net->forward(x, y, /*training=*/true, ctx);
    dy.resize(y.shape());
    dy.fill(0.5f);
    net->backward(x, y, dy, dx, ctx);
  };
  iterate();
  iterate();
  auto& allocs = obs::metrics().counter("tensor.allocs");
  const auto before = allocs.value();
  iterate();
  EXPECT_GT(allocs.value(), before);
}

TEST(ExecutionPlan, TinyResnetPlans) {
  // The real proxy model the benches use: plan build must cover projection
  // shortcuts and strided stages, and aliasing must pay on a deep trunk.
  auto net = nn::tiny_resnet(/*blocks_per_stage=*/2, /*classes=*/10,
                             /*resolution=*/16);
  nn::ExecutionPlan plan;
  nn::PlanOptions opts;
  plan.ensure(*net, Shape({8, 3, 16, 16}), opts);
  EXPECT_LT(plan.arena_bytes(), plan.raw_bytes() / 2)
      << "deep residual trunk should alias at least 2x";
  const Tensor x = random_tensor(Shape({8, 3, 16, 16}), 13);
  const ComputeContext ctx(4);
  auto legacy_net = nn::tiny_resnet(2, 10, 16);
  Rng r1(5), r2(5);
  net->init(r1);
  legacy_net->init(r2);
  const NetRun planned = run_net(*net, x, ctx, &plan);
  const NetRun legacy = run_net(*legacy_net, x, ctx, nullptr);
  EXPECT_TRUE(bits_equal(legacy.y, planned.y));
  EXPECT_TRUE(bits_equal(legacy.dx, planned.dx));
  EXPECT_TRUE(bits_equal(legacy.grads, planned.grads));
}

}  // namespace
}  // namespace minsgd
