#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "tensor/ops.hpp"

namespace minsgd {
namespace {

TEST(Ops, Axpy) {
  std::vector<float> x{1, 2, 3};
  std::vector<float> y{10, 20, 30};
  axpy(2.0f, x, y);
  EXPECT_EQ(y[0], 12.0f);
  EXPECT_EQ(y[2], 36.0f);
}

TEST(OpsDeath, AxpySizeMismatchAborts) {
  std::vector<float> x{1};
  std::vector<float> y{1, 2};
  EXPECT_DEATH(axpy(1.0f, x, y), "axpy: size mismatch \\(1 vs 2\\)");
}

TEST(Ops, Scale) {
  std::vector<float> x{1, -2, 3};
  scale(-1.5f, x);
  EXPECT_EQ(x[0], -1.5f);
  EXPECT_EQ(x[1], 3.0f);
}

TEST(Ops, Dot) {
  std::vector<float> x{1, 2, 3};
  std::vector<float> y{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
}

TEST(Ops, L2Norm) {
  std::vector<float> x{3, 4};
  EXPECT_DOUBLE_EQ(l2_norm(x), 5.0);
  EXPECT_DOUBLE_EQ(l2_norm(std::vector<float>{}), 0.0);
}

TEST(Ops, L2NormStableForLargeVectors) {
  std::vector<float> x(1 << 20, 1e-3f);
  EXPECT_NEAR(l2_norm(x), std::sqrt(1048576.0) * 1e-3, 1e-6);
}

TEST(Ops, Sum) {
  std::vector<float> x{0.5f, 0.25f, -0.75f};
  EXPECT_DOUBLE_EQ(sum(x), 0.0);
}

TEST(Ops, MaxValue) {
  std::vector<float> x{-5, -1, -3};
  EXPECT_EQ(max_value(x), -1.0f);
  EXPECT_DEATH(max_value(std::vector<float>{}), "max_value: empty span");
}

TEST(Ops, CopyAndAddAndHadamard) {
  std::vector<float> x{1, 2}, y{3, 4}, z(2);
  copy(x, z);
  EXPECT_EQ(z[1], 2.0f);
  add(x, y, z);
  EXPECT_EQ(z[0], 4.0f);
  hadamard(x, y, z);
  EXPECT_EQ(z[1], 8.0f);
}

TEST(Ops, ReluInplace) {
  std::vector<float> x{-1, 0, 2};
  relu_inplace(x);
  EXPECT_EQ(x[0], 0.0f);
  EXPECT_EQ(x[1], 0.0f);
  EXPECT_EQ(x[2], 2.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  std::vector<float> x{1, 2, 3, -1, 0, 1};
  softmax_rows(x, 2, 3);
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0, 1e-6);
  EXPECT_NEAR(x[3] + x[4] + x[5], 1.0, 1e-6);
  EXPECT_GT(x[2], x[1]);
}

TEST(Ops, SoftmaxStableForHugeLogits) {
  std::vector<float> x{1000.0f, 1001.0f};
  softmax_rows(x, 1, 2);
  EXPECT_TRUE(all_finite(x));
  EXPECT_NEAR(x[0] + x[1], 1.0, 1e-6);
}

TEST(OpsDeath, SoftmaxSizeMismatchAborts) {
  std::vector<float> x{1, 2, 3};
  EXPECT_DEATH(softmax_rows(x, 2, 2), "softmax_rows: size mismatch");
}

TEST(Ops, AllFinite) {
  EXPECT_TRUE(all_finite(std::vector<float>{1, 2}));
  EXPECT_FALSE(all_finite(
      std::vector<float>{1, std::numeric_limits<float>::infinity()}));
  EXPECT_FALSE(all_finite(
      std::vector<float>{std::numeric_limits<float>::quiet_NaN()}));
}

}  // namespace
}  // namespace minsgd
