#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "data/augment.hpp"
#include "data/loader.hpp"
#include "data/synthetic.hpp"
#include "tensor/ops.hpp"

namespace minsgd {
namespace {

data::SynthConfig small_cfg() {
  data::SynthConfig c;
  c.classes = 4;
  c.resolution = 12;
  c.train_size = 256;
  c.test_size = 64;
  c.seed = 9;
  c.max_shift = 2;
  return c;
}

TEST(Synthetic, SamplesAreDeterministic) {
  data::SyntheticImageNet ds(small_cfg());
  std::vector<float> a(static_cast<std::size_t>(ds.image_numel()));
  std::vector<float> b(a.size());
  const auto la = ds.get_train(17, a);
  const auto lb = ds.get_train(17, b);
  EXPECT_EQ(la, lb);
  EXPECT_EQ(a, b);
}

TEST(Synthetic, TwoInstancesWithSameSeedAgree) {
  data::SyntheticImageNet d1(small_cfg());
  data::SyntheticImageNet d2(small_cfg());
  std::vector<float> a(static_cast<std::size_t>(d1.image_numel()));
  std::vector<float> b(a.size());
  EXPECT_EQ(d1.get_train(5, a), d2.get_train(5, b));
  EXPECT_EQ(a, b);
  EXPECT_EQ(d1.get_test(5, a), d2.get_test(5, b));
  EXPECT_EQ(a, b);
}

TEST(Synthetic, TrainAndTestSplitsDiffer) {
  data::SyntheticImageNet ds(small_cfg());
  std::vector<float> a(static_cast<std::size_t>(ds.image_numel()));
  std::vector<float> b(a.size());
  ds.get_train(0, a);
  ds.get_test(0, b);
  EXPECT_NE(a, b);
}

TEST(Synthetic, LabelsRoughlyBalanced) {
  auto cfg = small_cfg();
  cfg.train_size = 4000;
  data::SyntheticImageNet ds(cfg);
  std::vector<float> buf(static_cast<std::size_t>(ds.image_numel()));
  std::map<std::int32_t, int> hist;
  for (std::int64_t i = 0; i < cfg.train_size; ++i) {
    ++hist[ds.get_train(i, buf)];
  }
  ASSERT_EQ(hist.size(), 4u);
  for (const auto& [label, count] : hist) {
    EXPECT_NEAR(count, 1000, 150) << "label " << label;
  }
}

TEST(Synthetic, AllValuesFinite) {
  data::SyntheticImageNet ds(small_cfg());
  std::vector<float> buf(static_cast<std::size_t>(ds.image_numel()));
  for (std::int64_t i = 0; i < 32; ++i) {
    ds.get_train(i, buf);
    EXPECT_TRUE(all_finite(buf));
  }
}

TEST(Synthetic, PrototypesHaveUnitRms) {
  data::SyntheticImageNet ds(small_cfg());
  for (std::int64_t c = 0; c < 4; ++c) {
    const auto& p = ds.prototype(c);
    double ss = 0.0;
    for (std::int64_t i = 0; i < p.numel(); ++i) ss += p[i] * p[i];
    EXPECT_NEAR(std::sqrt(ss / static_cast<double>(p.numel())), 1.0, 1e-3);
  }
}

TEST(Synthetic, OutOfRangeIndicesThrow) {
  data::SyntheticImageNet ds(small_cfg());
  std::vector<float> buf(static_cast<std::size_t>(ds.image_numel()));
  EXPECT_THROW(ds.get_train(-1, buf), std::out_of_range);
  EXPECT_THROW(ds.get_train(256, buf), std::out_of_range);
  EXPECT_THROW(ds.get_test(64, buf), std::out_of_range);
}

TEST(Synthetic, WrongSpanSizeThrows) {
  data::SyntheticImageNet ds(small_cfg());
  std::vector<float> buf(3);
  EXPECT_THROW(ds.get_train(0, buf), std::invalid_argument);
}

TEST(Synthetic, InvalidConfigsThrow) {
  auto c = small_cfg();
  c.classes = 1;
  EXPECT_THROW(data::SyntheticImageNet{c}, std::invalid_argument);
  c = small_cfg();
  c.resolution = 4;
  EXPECT_THROW(data::SyntheticImageNet{c}, std::invalid_argument);
  c = small_cfg();
  c.max_shift = 6;
  EXPECT_THROW(data::SyntheticImageNet{c}, std::invalid_argument);
}

TEST(Synthetic, MirrorInvariantProducesMirroredSamples) {
  auto cfg = small_cfg();
  cfg.mirror_invariant = true;
  cfg.max_shift = 0;
  cfg.noise = 0.0f;
  cfg.distractor = 0.0f;
  data::SyntheticImageNet ds(cfg);
  const std::int64_t r = cfg.resolution;
  std::vector<float> img(static_cast<std::size_t>(ds.image_numel()));
  // With no noise/shift/distractor, every sample is its class prototype or
  // that prototype mirrored. Check both orientations occur.
  int mirrored = 0, straight = 0;
  for (std::int64_t i = 0; i < 64; ++i) {
    const auto label = ds.get_train(i, img);
    const auto& proto = ds.prototype(label);
    bool is_straight = true, is_mirrored = true;
    for (std::int64_t c = 0; c < 3 && (is_straight || is_mirrored); ++c) {
      for (std::int64_t y = 0; y < r; ++y) {
        for (std::int64_t x = 0; x < r; ++x) {
          const float v = img[static_cast<std::size_t>((c * r + y) * r + x)];
          if (v != proto.at(0, c, y, x)) is_straight = false;
          if (v != proto.at(0, c, y, r - 1 - x)) is_mirrored = false;
        }
      }
    }
    ASSERT_TRUE(is_straight || is_mirrored) << "sample " << i;
    if (is_mirrored && !is_straight) ++mirrored;
    if (is_straight) ++straight;
  }
  EXPECT_GT(mirrored, 10);
  EXPECT_GT(straight, 10);
}

// ---------------- augmentation ----------------

TEST(Augment, ZeroPadNoFlipIsIdentity) {
  Rng rng(1);
  std::vector<float> img(3 * 8 * 8);
  Rng fill(2);
  fill.fill_normal(img, 0.0f, 1.0f);
  auto orig = img;
  data::AugmentConfig cfg{.pad = 0, .hflip = false};
  data::augment_image(img, 8, cfg, rng);
  EXPECT_EQ(img, orig);
}

TEST(Augment, FlipIsInvolution) {
  std::vector<float> img(3 * 8 * 8);
  Rng fill(3);
  fill.fill_normal(img, 0.0f, 1.0f);
  auto orig = img;
  data::AugmentConfig cfg{.pad = 0, .hflip = true};
  // Force two flips by scanning seeds until both flip (prob 1/2 each).
  int flips = 0;
  for (std::uint64_t seed = 0; flips < 2 && seed < 64; ++seed) {
    Rng rng(seed);
    auto probe = img;
    data::augment_image(probe, 8, cfg, rng);
    if (probe != img) {
      img = probe;
      ++flips;
    }
  }
  ASSERT_EQ(flips, 2);
  EXPECT_EQ(img, orig);  // flip twice = identity
}

TEST(Augment, CropKeepsSizeAndIsDeterministic) {
  std::vector<float> a(3 * 8 * 8, 1.0f), b(3 * 8 * 8, 1.0f);
  data::AugmentConfig cfg{.pad = 2, .hflip = false};
  Rng r1(5), r2(5);
  data::augment_image(a, 8, cfg, r1);
  data::augment_image(b, 8, cfg, r2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 3u * 64u);
}

TEST(Augment, WrongSizeThrows) {
  std::vector<float> img(10);
  Rng rng(1);
  data::AugmentConfig cfg;
  EXPECT_THROW(data::augment_image(img, 8, cfg, rng), std::invalid_argument);
}

// ---------------- sharded loader ----------------

TEST(Loader, IterationsPerEpoch) {
  data::SyntheticImageNet ds(small_cfg());
  data::ShardedLoader loader(ds, 64);
  EXPECT_EQ(loader.iterations_per_epoch(), 4);
}

TEST(Loader, LocalBatchIsGlobalOverWorld) {
  data::SyntheticImageNet ds(small_cfg());
  data::ShardedLoader loader(ds, 64, 1, 4);
  EXPECT_EQ(loader.local_batch(), 16);
  const auto b = loader.load_train(0, 0);
  EXPECT_EQ(b.x.shape(), Shape({16, 3, 12, 12}));
  EXPECT_EQ(b.labels.size(), 16u);
}

TEST(Loader, ShardsPartitionTheGlobalBatch) {
  // The union of P rank-shards must equal the world=1 batch, in order.
  data::SyntheticImageNet ds(small_cfg());
  const std::int64_t B = 32;
  data::ShardedLoader whole(ds, B, 0, 1);
  const auto full = whole.load_train(2, 1);
  const int world = 4;
  const std::int64_t lb = B / world;
  const std::int64_t img = ds.image_numel();
  for (int r = 0; r < world; ++r) {
    data::ShardedLoader shard(ds, B, r, world);
    const auto part = shard.load_train(2, 1);
    for (std::int64_t i = 0; i < lb; ++i) {
      EXPECT_EQ(part.labels[static_cast<std::size_t>(i)],
                full.labels[static_cast<std::size_t>(r * lb + i)]);
      for (std::int64_t k = 0; k < img; ++k) {
        ASSERT_EQ(part.x[i * img + k], full.x[(r * lb + i) * img + k])
            << "rank " << r << " sample " << i;
      }
    }
  }
}

TEST(Loader, ShardingPartitionHoldsWithAugmentation) {
  data::SyntheticImageNet ds(small_cfg());
  const std::int64_t B = 16;
  data::AugmentConfig aug;
  data::ShardedLoader whole(ds, B, 0, 1, aug);
  const auto full = whole.load_train(1, 0);
  data::ShardedLoader shard(ds, B, 1, 2, aug);
  const auto part = shard.load_train(1, 0);
  const std::int64_t img = ds.image_numel();
  for (std::int64_t i = 0; i < B / 2; ++i) {
    for (std::int64_t k = 0; k < img; ++k) {
      ASSERT_EQ(part.x[i * img + k], full.x[(B / 2 + i) * img + k]);
    }
  }
}

TEST(Loader, EpochsUseDifferentPermutations) {
  data::SyntheticImageNet ds(small_cfg());
  data::ShardedLoader loader(ds, 64);
  const auto e0 = loader.load_train(0, 0);
  const auto e1 = loader.load_train(1, 0);
  EXPECT_NE(e0.labels, e1.labels);  // overwhelmingly likely
}

TEST(Loader, EachEpochTouchesEverySampleOnce) {
  // Collect all labels over one epoch from all shards; multiset must match
  // the dataset's own labels.
  auto cfg = small_cfg();
  data::SyntheticImageNet ds(cfg);
  std::multiset<std::int32_t> seen;
  data::ShardedLoader loader(ds, 64);
  for (std::int64_t it = 0; it < loader.iterations_per_epoch(); ++it) {
    const auto b = loader.load_train(3, it);
    seen.insert(b.labels.begin(), b.labels.end());
  }
  std::multiset<std::int32_t> expected;
  std::vector<float> buf(static_cast<std::size_t>(ds.image_numel()));
  for (std::int64_t i = 0; i < cfg.train_size; ++i) {
    expected.insert(ds.get_train(i, buf));
  }
  EXPECT_EQ(seen, expected);
}

TEST(Loader, TestBatchesSequentialAndCapped) {
  data::SyntheticImageNet ds(small_cfg());
  data::ShardedLoader loader(ds, 64);
  const auto b = loader.load_test(60, 100);
  EXPECT_EQ(b.x.shape()[0], 4);  // capped at test_size - start
}

TEST(Loader, InvalidConfigsThrow) {
  data::SyntheticImageNet ds(small_cfg());
  EXPECT_THROW(data::ShardedLoader(ds, 0), std::invalid_argument);
  EXPECT_THROW(data::ShardedLoader(ds, 63, 0, 2), std::invalid_argument);
  EXPECT_THROW(data::ShardedLoader(ds, 64, 2, 2), std::invalid_argument);
  EXPECT_THROW(data::ShardedLoader(ds, 512), std::invalid_argument);
  data::ShardedLoader ok(ds, 64);
  EXPECT_THROW(ok.load_train(-1, 0), std::invalid_argument);
  EXPECT_THROW(ok.load_test(64, 1), std::invalid_argument);
}

}  // namespace
}  // namespace minsgd
