// Determinism matrix: every parallel kernel must produce bit-identical
// results for any thread count. Each case runs the same computation under
// ComputeContext(t) for t in {1, 2, 4, 8} and compares the outputs of the
// multi-threaded runs against the single-threaded baseline byte for byte —
// EXPECT_EQ on floats would accept -0.0 == 0.0; memcmp does not.
//
// This is the executable form of the two chunking rules in
// tensor/context.hpp: chunk geometry depends only on problem shape, and
// reduction partials combine in fixed chunk order.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "data/loader.hpp"
#include "data/synthetic.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/norm.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"
#include "optim/lars.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "tensor/context.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "tensor/ops.hpp"
#include "train/trainer.hpp"

namespace minsgd {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

bool bits_equal(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) return false;
  // Empty spans have null data(); memcmp's arguments are declared nonnull.
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

Tensor random_tensor(const Shape& shape, std::uint64_t seed) {
  Tensor t(shape);
  Rng rng(seed);
  for (auto& v : t.span()) v = static_cast<float>(rng.normal()) * 0.5f;
  return t;
}

/// Everything a layer run can produce, captured for bitwise comparison.
struct LayerRun {
  std::vector<float> y, dx;
  std::vector<float> grads;          // concatenated parameter gradients
  std::vector<float> params_after;   // parameters after one optimizer step
};

/// Builds a fresh layer via `factory`, runs forward + backward + one SGD
/// step under `ctx`, and returns every produced tensor. The layer is
/// rebuilt per thread count so cached state cannot leak between runs.
template <typename Factory>
LayerRun run_layer(const Factory& factory, const Shape& in_shape,
                   const ComputeContext& ctx, bool training = true) {
  auto layer = factory();
  Rng init_rng(123);
  layer->init(init_rng);

  const Tensor x = random_tensor(in_shape, 7);
  Tensor y, dx;
  layer->forward(x, y, training, ctx);
  const Tensor dy = random_tensor(y.shape(), 11);
  layer->backward(x, y, dy, dx, ctx);

  LayerRun out;
  out.y.assign(y.span().begin(), y.span().end());
  out.dx.assign(dx.span().begin(), dx.span().end());
  auto params = layer->params();
  for (auto& p : params) {
    out.grads.insert(out.grads.end(), p.grad->span().begin(),
                     p.grad->span().end());
  }
  if (!params.empty()) {
    optim::Sgd sgd({.momentum = 0.9, .weight_decay = 0.0005});
    sgd.step(params, 0.05, ctx);
    for (auto& p : params) {
      out.params_after.insert(out.params_after.end(), p.value->span().begin(),
                              p.value->span().end());
    }
  }
  return out;
}

template <typename Factory>
void expect_layer_thread_invariant(const Factory& factory,
                                   const Shape& in_shape,
                                   bool training = true) {
  ComputeContext base_ctx(1);
  const LayerRun base = run_layer(factory, in_shape, base_ctx, training);
  ASSERT_FALSE(base.y.empty());
  for (std::size_t t : kThreadCounts) {
    if (t == 1) continue;
    ComputeContext ctx(t);
    const LayerRun run = run_layer(factory, in_shape, ctx, training);
    EXPECT_TRUE(bits_equal(base.y, run.y)) << "forward differs at t=" << t;
    EXPECT_TRUE(bits_equal(base.dx, run.dx)) << "dx differs at t=" << t;
    EXPECT_TRUE(bits_equal(base.grads, run.grads))
        << "param grads differ at t=" << t;
    EXPECT_TRUE(bits_equal(base.params_after, run.params_after))
        << "optimizer step differs at t=" << t;
  }
}

// -- per-layer matrix -------------------------------------------------------

TEST(LayerDeterminism, Conv2d) {
  expect_layer_thread_invariant(
      [] { return std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1); },
      Shape({6, 3, 10, 10}));
}

TEST(LayerDeterminism, Conv2dGrouped) {
  expect_layer_thread_invariant(
      [] {
        return std::make_unique<nn::Conv2d>(4, 8, 3, 2, 1, /*bias=*/true,
                                            /*groups=*/2);
      },
      Shape({5, 4, 9, 9}));
}

TEST(LayerDeterminism, Linear) {
  expect_layer_thread_invariant(
      [] { return std::make_unique<nn::Linear>(37, 19); }, Shape({8, 37}));
}

// -- packed-microkernel paths ----------------------------------------------
//
// The cases above are small enough to ride sgemm's scalar small path. These
// shapes push forward AND backward (dW/dx) through the packed panel
// microkernels, so the per-chunk-partials rule is exercised inside the
// kernel drivers too — including the fixed-order dW combine.

TEST(LayerDeterminism, LinearPackedSgemm) {
  // 64x256 @ 256x192: forward and both backward GEMMs exceed the small-path
  // threshold.
  expect_layer_thread_invariant(
      [] { return std::make_unique<nn::Linear>(256, 192); }, Shape({64, 256}));
}

TEST(LayerDeterminism, Conv2dFused3x3) {
  // Stride-1 3x3 rides the fused direct-conv path (im2col folded into
  // B-panel packing) in forward, im2col + packed sgemm in backward.
  expect_layer_thread_invariant(
      [] { return std::make_unique<nn::Conv2d>(16, 24, 3, 1, 1); },
      Shape({6, 16, 12, 12}));
}

TEST(LayerDeterminism, Conv2dDirect1x1) {
  // 48 x 196 x 48 per image: the 1x1 direct path's inner sgemm takes the
  // packed microkernels (inline, nested under the batch chunks).
  expect_layer_thread_invariant(
      [] { return std::make_unique<nn::Conv2d>(48, 48, 1); },
      Shape({4, 48, 14, 14}));
}

TEST(LayerDeterminism, FusedConvThreadInvariantPerIsa) {
  // The full matrix: thread counts {1,2,4,8} x every compiled-in ISA path.
  // Every cell must match the forced-portable single-thread bytes (the
  // cross-ISA agreement itself is pinned by the test_gemm/test_conv
  // oracles; here we re-run the whole layer matrix under each pin).
  for (kernels::Isa isa :
       {kernels::Isa::kPortable, kernels::Isa::kAvx2, kernels::Isa::kNeon}) {
    if (!kernels::supported(isa)) continue;
    kernels::force(isa);
    expect_layer_thread_invariant(
        [] { return std::make_unique<nn::Conv2d>(16, 24, 3, 1, 1); },
        Shape({5, 16, 10, 10}));
    expect_layer_thread_invariant(
        [] { return std::make_unique<nn::Linear>(256, 96); },
        Shape({32, 256}));
  }
  kernels::clear_force();
}

TEST(LayerDeterminism, ReLU) {
  expect_layer_thread_invariant([] { return std::make_unique<nn::ReLU>(); },
                                Shape({4, 8, 6, 6}));
}

TEST(LayerDeterminism, Flatten) {
  expect_layer_thread_invariant([] { return std::make_unique<nn::Flatten>(); },
                                Shape({4, 8, 6, 6}));
}

TEST(LayerDeterminism, MaxPool) {
  expect_layer_thread_invariant(
      [] { return std::make_unique<nn::MaxPool2d>(3, 2); },
      Shape({6, 4, 11, 11}));
}

TEST(LayerDeterminism, AvgPool) {
  expect_layer_thread_invariant(
      [] { return std::make_unique<nn::AvgPool2d>(2, 2); },
      Shape({6, 4, 10, 10}));
}

TEST(LayerDeterminism, GlobalAvgPool) {
  expect_layer_thread_invariant(
      [] { return std::make_unique<nn::GlobalAvgPool>(); },
      Shape({5, 7, 6, 6}));
}

TEST(LayerDeterminism, BatchNormTraining) {
  expect_layer_thread_invariant(
      [] { return std::make_unique<nn::BatchNorm2d>(6); },
      Shape({8, 6, 7, 7}), /*training=*/true);
}

TEST(LayerDeterminism, BatchNormEval) {
  // Eval-mode BN has no backward; prime the running stats with a training
  // forward, then compare the inference path alone.
  auto run = [](const ComputeContext& ctx) {
    nn::BatchNorm2d bn(6);
    Rng init_rng(123);
    bn.init(init_rng);
    const Tensor x = random_tensor(Shape({8, 6, 7, 7}), 7);
    Tensor y;
    bn.forward(x, y, /*training=*/true, ctx);
    bn.forward(x, y, /*training=*/false, ctx);
    return std::vector<float>(y.span().begin(), y.span().end());
  };
  ComputeContext one(1);
  const auto base = run(one);
  for (std::size_t t : kThreadCounts) {
    if (t == 1) continue;
    ComputeContext ctx(t);
    EXPECT_TRUE(bits_equal(base, run(ctx))) << "eval forward differs at t=" << t;
  }
}

TEST(LayerDeterminism, LRN) {
  expect_layer_thread_invariant([] { return std::make_unique<nn::LRN>(5); },
                                Shape({4, 12, 5, 5}));
}

TEST(LayerDeterminism, Dropout) {
  // The mask stream draws serially from the layer's RNG, so the mask — and
  // everything downstream of it — must match for every thread count.
  expect_layer_thread_invariant(
      [] { return std::make_unique<nn::Dropout>(0.4f, 99); },
      Shape({6, 64}), /*training=*/true);
}

TEST(LayerDeterminism, ResidualBlock) {
  expect_layer_thread_invariant(
      [] {
        auto branch = std::make_unique<nn::Network>("branch");
        branch->emplace<nn::Conv2d>(4, 4, 3, 1, 1);
        branch->emplace<nn::BatchNorm2d>(4);
        branch->emplace<nn::ReLU>();
        branch->emplace<nn::Conv2d>(4, 4, 3, 1, 1);
        return std::make_unique<nn::ResidualBlock>(std::move(branch));
      },
      Shape({4, 4, 8, 8}));
}

TEST(LayerDeterminism, LarsStep) {
  // LARS reduces ||w|| and ||g|| with the chunked dot product; the trust
  // ratio (and thus the update) must not move with the thread count.
  auto run = [](const ComputeContext& ctx) {
    auto layer = std::make_unique<nn::Linear>(64, 32);
    Rng init_rng(5);
    layer->init(init_rng);
    auto params = layer->params();
    for (auto& p : params) {
      Rng grng(17);
      for (auto& g : p.grad->span()) g = static_cast<float>(grng.normal()) * 0.1f;
    }
    optim::Lars lars;
    lars.step(params, 0.1, ctx);
    std::vector<float> out;
    for (auto& p : params) {
      out.insert(out.end(), p.value->span().begin(), p.value->span().end());
    }
    return out;
  };
  ComputeContext one(1);
  const auto base = run(one);
  for (std::size_t t : kThreadCounts) {
    if (t == 1) continue;
    ComputeContext ctx(t);
    EXPECT_TRUE(bits_equal(base, run(ctx))) << "LARS step differs at t=" << t;
  }
}

// -- reductions and the loss head ------------------------------------------

TEST(OpsDeterminism, ChunkedReductions) {
  const Tensor a = random_tensor(Shape({100000}), 3);
  const Tensor b = random_tensor(Shape({100000}), 4);
  ComputeContext one(1);
  const double dot1 = dot(one, a.span(), b.span());
  const double sum1 = sum(one, a.span());
  const double norm1 = l2_norm(one, a.span());
  for (std::size_t t : kThreadCounts) {
    ComputeContext ctx(t);
    EXPECT_EQ(dot1, dot(ctx, a.span(), b.span())) << "t=" << t;
    EXPECT_EQ(sum1, sum(ctx, a.span())) << "t=" << t;
    EXPECT_EQ(norm1, l2_norm(ctx, a.span())) << "t=" << t;
  }
}

TEST(OpsDeterminism, SoftmaxCrossEntropy) {
  const Tensor logits = random_tensor(Shape({64, 10}), 21);
  std::vector<std::int32_t> labels(64);
  Rng rng(9);
  for (auto& l : labels) {
    l = static_cast<std::int32_t>(rng.uniform_int(10));
  }
  nn::SoftmaxCrossEntropy loss;
  ComputeContext one(1);
  Tensor dl1;
  const auto base = loss.forward_backward(logits, labels, &dl1, one);
  for (std::size_t t : kThreadCounts) {
    ComputeContext ctx(t);
    Tensor dl;
    const auto res = loss.forward_backward(logits, labels, &dl, ctx);
    EXPECT_EQ(base.loss, res.loss) << "t=" << t;
    EXPECT_EQ(base.correct, res.correct) << "t=" << t;
    EXPECT_TRUE(bits_equal(dl1.span(), dl.span())) << "t=" << t;
  }
}

TEST(DataDeterminism, AugmentedLoaderBatch) {
  data::SynthConfig cfg;
  cfg.classes = 4;
  cfg.resolution = 12;
  cfg.train_size = 128;
  cfg.test_size = 32;
  cfg.seed = 5;
  data::SyntheticImageNet ds(cfg);
  data::AugmentConfig aug;  // defaults: flips/crops on
  data::ShardedLoader loader(ds, 32, 0, 1, aug);
  ComputeContext one(1);
  const auto base = loader.load_train(1, 2, one);
  for (std::size_t t : kThreadCounts) {
    ComputeContext ctx(t);
    const auto b = loader.load_train(1, 2, ctx);
    EXPECT_TRUE(bits_equal(base.x.span(), b.x.span())) << "t=" << t;
    EXPECT_EQ(base.labels, b.labels) << "t=" << t;
  }
}

// -- end-to-end -------------------------------------------------------------

data::SynthConfig tiny_data_cfg() {
  data::SynthConfig c;
  c.classes = 4;
  c.resolution = 12;
  c.train_size = 128;
  c.test_size = 64;
  c.noise = 0.4f;
  c.distractor = 0.3f;
  c.seed = 5;
  return c;
}

/// A model that exercises every stochastic/statistical layer: BN batch
/// statistics, a dropout RNG stream, shared-scratch conv, chunked loss.
std::unique_ptr<nn::Network> stochastic_model(std::int64_t classes = 4,
                                              std::int64_t res = 12) {
  auto net = std::make_unique<nn::Network>("stochastic");
  net->emplace<nn::Conv2d>(3, 8, 3, 1, 1);
  net->emplace<nn::BatchNorm2d>(8);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2, 2);
  net->emplace<nn::Flatten>();
  net->emplace<nn::Dropout>(0.25f);
  net->emplace<nn::Linear>(8 * (res / 2) * (res / 2), classes);
  return net;
}

TEST(EndToEndDeterminism, TrainSingleAcrossThreadCounts) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  data::AugmentConfig aug;
  auto run = [&](std::size_t threads) {
    auto net = stochastic_model();
    optim::Sgd opt;
    optim::ConstantLr lr(0.05);
    train::TrainOptions options;
    options.global_batch = 32;
    options.epochs = 2;
    options.augment = aug;
    options.compute_threads = threads;
    const auto res = train::train_single(*net, opt, lr, ds, options);
    return std::make_pair(res, net->flatten_params());
  };
  const auto [base_res, base_w] = run(1);
  for (std::size_t t : kThreadCounts) {
    if (t == 1) continue;
    const auto [res, w] = run(t);
    EXPECT_TRUE(bits_equal(base_w, w)) << "weights differ at t=" << t;
    ASSERT_EQ(base_res.epochs.size(), res.epochs.size());
    for (std::size_t e = 0; e < res.epochs.size(); ++e) {
      EXPECT_EQ(base_res.epochs[e].train_loss, res.epochs[e].train_loss)
          << "t=" << t << " epoch=" << e;
      EXPECT_EQ(base_res.epochs[e].test_acc, res.epochs[e].test_acc)
          << "t=" << t << " epoch=" << e;
    }
  }
}

TEST(EndToEndDeterminism, TrainSyncDataParallelAcrossThreadCounts) {
  // The full distributed stack — per-rank contexts carved from the global
  // budget, overlapped bucketed allreduce, dropout streams — must still be
  // invariant to the budget.
  data::SyntheticImageNet ds(tiny_data_cfg());
  auto run = [&](std::size_t threads) {
    optim::ConstantLr lr(0.05);
    train::TrainOptions options;
    options.global_batch = 32;
    options.epochs = 2;
    options.compute_threads = threads;
    options.bucket_bytes = 1024;
    options.overlap_comm = true;
    return train::train_sync_data_parallel(
        [] { return stochastic_model(); },
        [] { return std::make_unique<optim::Sgd>(); }, lr, ds, options,
        /*world=*/2);
  };
  const auto base = run(1);
  for (std::size_t t : {2u, 4u, 8u}) {
    const auto res = run(t);
    EXPECT_TRUE(bits_equal(base.final_weights, res.final_weights))
        << "weights differ at budget=" << t;
    ASSERT_EQ(base.result.epochs.size(), res.result.epochs.size());
    EXPECT_EQ(base.result.epochs.back().train_loss,
              res.result.epochs.back().train_loss)
        << "budget=" << t;
  }
}

// -- memory plan ------------------------------------------------------------
//
// The graph-compiled execution path (nn/plan.hpp) must be invisible in the
// numbers: plan-on and plan-off runs produce bit-identical weights and loss
// trajectories at every thread count, with both recompute policies, through
// the stochastic layers (dropout RNG stream, BN batch stats) and the
// overlapped data-parallel allreduce.

/// Restores the process-wide plan gates however the test exits.
struct PlanGateGuard {
  bool enabled = nn::ExecutionPlan::enabled();
  bool recompute = nn::ExecutionPlan::recompute_default();
  ~PlanGateGuard() {
    nn::ExecutionPlan::set_enabled(enabled);
    nn::ExecutionPlan::set_recompute_default(recompute);
  }
};

TEST(MemPlanDeterminism, TrainSinglePlanOnOffBitIdentical) {
  PlanGateGuard guard;
  data::SyntheticImageNet ds(tiny_data_cfg());
  auto run = [&](bool plan_on, bool recompute, std::size_t threads) {
    nn::ExecutionPlan::set_enabled(plan_on);
    nn::ExecutionPlan::set_recompute_default(recompute);
    auto net = stochastic_model();
    optim::Sgd opt;
    optim::ConstantLr lr(0.05);
    train::TrainOptions options;
    options.global_batch = 32;
    options.epochs = 2;
    options.compute_threads = threads;
    const auto res = train::train_single(*net, opt, lr, ds, options);
    return std::make_pair(res.epochs.back().train_loss,
                          net->flatten_params());
  };
  const auto [base_loss, base_w] = run(/*plan_on=*/false, false, 1);
  for (const bool recompute : {false, true}) {
    for (std::size_t t : kThreadCounts) {
      const auto [loss, w] = run(/*plan_on=*/true, recompute, t);
      EXPECT_EQ(base_loss, loss)
          << "loss differs: t=" << t << " recompute=" << recompute;
      EXPECT_TRUE(bits_equal(base_w, w))
          << "weights differ: t=" << t << " recompute=" << recompute;
    }
  }
}

TEST(MemPlanDeterminism, TrainSyncOverlapPlanOnOffBitIdentical) {
  // Plan + overlapped bucketed allreduce: the grad-ready hook fires from
  // inside the planned backward, so the overlap engine sees the identical
  // sequence it saw from the legacy path.
  PlanGateGuard guard;
  data::SyntheticImageNet ds(tiny_data_cfg());
  auto run = [&](bool plan_on, std::size_t threads) {
    nn::ExecutionPlan::set_enabled(plan_on);
    optim::ConstantLr lr(0.05);
    train::TrainOptions options;
    options.global_batch = 32;
    options.epochs = 2;
    options.compute_threads = threads;
    options.bucket_bytes = 1024;
    options.overlap_comm = true;
    return train::train_sync_data_parallel(
        [] { return stochastic_model(); },
        [] { return std::make_unique<optim::Sgd>(); }, lr, ds, options,
        /*world=*/2);
  };
  const auto base = run(/*plan_on=*/false, 1);
  for (std::size_t t : {1u, 2u, 4u}) {
    const auto res = run(/*plan_on=*/true, t);
    EXPECT_TRUE(bits_equal(base.final_weights, res.final_weights))
        << "weights differ: plan on, budget=" << t;
    EXPECT_EQ(base.result.epochs.back().train_loss,
              res.result.epochs.back().train_loss)
        << "plan on, budget=" << t;
  }
}

}  // namespace
}  // namespace minsgd
