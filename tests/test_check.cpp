// MINSGD_CHECK / MINSGD_DCHECK (src/core/check.hpp): death on violation,
// message content (expression, streamed context, source location), argument
// evaluation, and the compiled-out DCHECK branch.
#include "core/check.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

namespace {

TEST(CheckDeath, FailingCheckAbortsWithExpressionAndLocation) {
  EXPECT_DEATH(MINSGD_CHECK(1 + 1 == 3),
               "MINSGD_CHECK failed: 1 \\+ 1 == 3.*test_check\\.cpp:");
}

TEST(CheckDeath, MessageArgumentsAreStreamedIntoTheFailure) {
  const std::int64_t got = 7, want = 12;
  EXPECT_DEATH(
      MINSGD_CHECK(got == want, "size mismatch: got ", got, ", want ", want),
      "size mismatch: got 7, want 12");
}

TEST(Check, PassingCheckIsANoOp) {
  MINSGD_CHECK(2 + 2 == 4);
  MINSGD_CHECK(true, "message not evaluated on success");
  SUCCEED();
}

TEST(Check, ConditionIsEvaluatedExactlyOnce) {
  int calls = 0;
  MINSGD_CHECK([&] {
    ++calls;
    return true;
  }());
  EXPECT_EQ(calls, 1);
}

TEST(Check, WorksInsideExpressionsWithCommas) {
  // The variadic macro must swallow commas in both condition parentheses and
  // message arguments.
  MINSGD_CHECK(std::max(1, 2) == 2, "max(", 1, ",", 2, ")");
  SUCCEED();
}

TEST(DCheckDisabled, OffBranchDoesNotEvaluateArguments) {
  // MINSGD_DCHECK_DISABLED is the exact expansion DCHECK uses when compiled
  // out (NDEBUG without MINSGD_DCHECK_ON); neither the condition nor the
  // message may be evaluated.
  int evaluations = 0;
  auto bump = [&] {
    ++evaluations;
    return false;  // would abort if evaluated and checked
  };
  MINSGD_DCHECK_DISABLED(bump(), "message ", bump());
  EXPECT_EQ(evaluations, 0);
}

TEST(DCheck, ActiveBranchMatchesBuildConfiguration) {
#if MINSGD_DCHECK_ENABLED
  EXPECT_DEATH(MINSGD_DCHECK(false, "dcheck fires in this build"),
               "MINSGD_CHECK failed: false.*dcheck fires in this build");
#else
  // Compiled out: a false condition must be ignored, not aborted on.
  MINSGD_DCHECK(false, "dcheck is compiled out in this build");
  SUCCEED();
#endif
}

TEST(DCheck, PassingDCheckIsANoOpInEveryConfiguration) {
  MINSGD_DCHECK(2 + 2 == 4, "never fails");
  SUCCEED();
}

}  // namespace
