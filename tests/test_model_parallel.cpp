// Model parallelism (Figure 2(b)): the sharded layer must compute exactly
// what the single-machine layer computes, for any world size — including
// worlds that do not divide the output dimension.
#include <gtest/gtest.h>

#include "comm/cluster.hpp"
#include "comm/model_parallel.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "tensor/ops.hpp"

namespace minsgd {
namespace {

class ShardedLinearWorlds : public ::testing::TestWithParam<int> {};

TEST_P(ShardedLinearWorlds, ForwardMatchesLocalLinear) {
  const int world = GetParam();
  const std::int64_t in = 6, out = 10, batch = 3;

  // Reference on one machine with the same seed.
  nn::Linear ref(in, out);
  Rng ref_rng(77);
  nn::he_normal(ref.weight(), in, ref_rng);
  ref.bias().zero();
  Tensor x({batch, in});
  Rng xrng(5);
  xrng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor y_ref;
  ref.forward(x, y_ref, false);

  comm::SimCluster cluster(world);
  cluster.run([&](comm::Communicator& comm) {
    comm::ShardedLinear layer(comm, in, out);
    layer.init(77);
    Tensor y;
    layer.forward(x, y);
    ASSERT_EQ(y.shape(), y_ref.shape());
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      ASSERT_NEAR(y[i], y_ref[i], 1e-4) << "world " << world << " i " << i;
    }
  });
}

TEST_P(ShardedLinearWorlds, BackwardMatchesLocalLinear) {
  const int world = GetParam();
  const std::int64_t in = 5, out = 9, batch = 2;

  nn::Linear ref(in, out);
  Rng ref_rng(13);
  nn::he_normal(ref.weight(), in, ref_rng);
  ref.bias().zero();
  Tensor x({batch, in}), dy({batch, out});
  Rng xrng(21);
  xrng.fill_normal(x.span(), 0.0f, 1.0f);
  xrng.fill_normal(dy.span(), 0.0f, 1.0f);
  Tensor y_ref, dx_ref;
  ref.forward(x, y_ref, true);
  for (auto& p : ref.params()) p.grad->zero();
  ref.backward(x, y_ref, dy, dx_ref);
  const auto ref_params = ref.params();

  comm::SimCluster cluster(world);
  cluster.run([&](comm::Communicator& comm) {
    comm::ShardedLinear layer(comm, in, out);
    layer.init(13);
    Tensor y, dx;
    layer.forward(x, y);
    layer.backward(x, dy, dx);
    // dx identical on every rank, equal to the reference.
    for (std::int64_t i = 0; i < dx.numel(); ++i) {
      ASSERT_NEAR(dx[i], dx_ref[i], 1e-4);
    }
    // Local weight gradient equals the matching rows of the reference dW.
    const Tensor& dw_ref = *ref_params[0].grad;
    for (std::int64_t r = 0; r < layer.local_rows(); ++r) {
      for (std::int64_t c = 0; c < in; ++c) {
        ASSERT_NEAR(layer.weight_grad().at(r, c),
                    dw_ref.at(layer.first_row() + r, c), 1e-4);
      }
    }
    // Bias gradient slice likewise.
    const Tensor& db_ref = *ref_params[1].grad;
    for (std::int64_t r = 0; r < layer.local_rows(); ++r) {
      ASSERT_NEAR(layer.bias_grad()[r], db_ref[layer.first_row() + r], 1e-4);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Worlds, ShardedLinearWorlds,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(ShardedLinear, ShardsCoverAllRowsExactlyOnce) {
  const int world = 3;
  const std::int64_t out = 10;  // 10 = 4 + 3 + 3
  comm::SimCluster cluster(world);
  std::mutex mu;
  std::vector<std::pair<std::int64_t, std::int64_t>> shards;
  cluster.run([&](comm::Communicator& comm) {
    comm::ShardedLinear layer(comm, 4, out);
    std::lock_guard lk(mu);
    shards.emplace_back(layer.first_row(), layer.local_rows());
  });
  std::int64_t covered = 0;
  for (const auto& [first, rows] : shards) covered += rows;
  EXPECT_EQ(covered, out);
}

TEST(ShardedLinear, RejectsMoreRanksThanRows) {
  comm::SimCluster cluster(4);
  EXPECT_THROW(cluster.run([](comm::Communicator& comm) {
    comm::ShardedLinear layer(comm, 4, 2);
  }),
               std::invalid_argument);
}

TEST(ShardedLinear, CommunicationVolumePerForward) {
  // The Figure 2(b) trade-off made concrete: each forward moves the full
  // activation matrix (batch x out floats) around the ring.
  const int world = 4;
  const std::int64_t in = 8, out = 16, batch = 4;
  comm::SimCluster cluster(world);
  cluster.run([&](comm::Communicator& comm) {
    comm::ShardedLinear layer(comm, in, out);
    layer.init(1);
    Tensor x({batch, in}), y;
    Rng rng(2);
    rng.fill_normal(x.span(), 0.0f, 1.0f);
    layer.forward(x, y);
  });
  EXPECT_GT(cluster.total_traffic().bytes,
            batch * out * 4);  // at least one full activation on the wire
}

}  // namespace
}  // namespace minsgd
