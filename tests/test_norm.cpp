#include <gtest/gtest.h>

#include <cmath>

#include "grad_check.hpp"
#include "nn/norm.hpp"

namespace minsgd {
namespace {

TEST(BatchNorm, TrainForwardNormalizesPerChannel) {
  nn::BatchNorm2d bn(2);
  Rng rng(3);
  Tensor x({4, 2, 3, 3});
  rng.fill_normal(x.span(), 5.0f, 2.0f);
  Tensor y;
  bn.forward(x, y, /*training=*/true);
  // Each channel of y should have ~zero mean and ~unit variance.
  for (std::int64_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    std::int64_t count = 0;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t h = 0; h < 3; ++h) {
        for (std::int64_t w = 0; w < 3; ++w) {
          mean += y.at(n, c, h, w);
          ++count;
        }
      }
    }
    mean /= count;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t h = 0; h < 3; ++h) {
        for (std::int64_t w = 0; w < 3; ++w) {
          var += (y.at(n, c, h, w) - mean) * (y.at(n, c, h, w) - mean);
        }
      }
    }
    var /= count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, GammaBetaApplied) {
  nn::BatchNorm2d bn(1);
  auto params = bn.params();
  params[0].value->fill(3.0f);   // gamma
  params[1].value->fill(-1.0f);  // beta
  Tensor x({2, 1, 2, 2});
  Rng rng(5);
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor y;
  bn.forward(x, y, true);
  double mean = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) mean += y[i];
  EXPECT_NEAR(mean / y.numel(), -1.0, 1e-4);  // beta shifts the mean
}

TEST(BatchNorm, EvalUsesRunningStats) {
  nn::BatchNorm2d bn(1, 1e-5f, /*momentum=*/0.0f);  // running = last batch
  Rng rng(7);
  Tensor x({8, 1, 4, 4});
  rng.fill_normal(x.span(), 2.0f, 3.0f);
  Tensor y;
  bn.forward(x, y, /*training=*/true);
  // Eval on the same data should now normalize with those captured stats.
  Tensor y2;
  bn.forward(x, y2, /*training=*/false);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y[i], y2[i], 2e-2);
  }
}

TEST(BatchNorm, BackwardWithoutForwardThrows) {
  nn::BatchNorm2d bn(1);
  Tensor x({1, 1, 2, 2}), y({1, 1, 2, 2}), dy({1, 1, 2, 2}), dx;
  EXPECT_THROW(bn.backward(x, y, dy, dx), std::logic_error);
}

TEST(BatchNorm, GradCheck) {
  nn::BatchNorm2d bn(3);
  testing::check_gradients(bn, {4, 3, 3, 3}, /*seed=*/11,
                           {.step = 1e-3, .rel_tol = 3e-2, .abs_tol = 2e-4});
}

TEST(BatchNorm, NonDecayParams) {
  nn::BatchNorm2d bn(4);
  for (const auto& p : bn.params()) EXPECT_FALSE(p.decay);
}

TEST(BatchNorm, RejectsWrongChannels) {
  nn::BatchNorm2d bn(3);
  Tensor x({1, 4, 2, 2}), y;
  EXPECT_THROW(bn.forward(x, y, true), std::invalid_argument);
}

TEST(BatchNorm, InitResetsState) {
  nn::BatchNorm2d bn(2);
  auto params = bn.params();
  params[0].value->fill(9.0f);
  Rng rng(1);
  bn.init(rng);
  EXPECT_EQ((*params[0].value)[0], 1.0f);
  EXPECT_EQ((*params[1].value)[0], 0.0f);
}

// ---------------- LRN ----------------

TEST(LRN, ForwardMatchesFormulaSingleChannelWindow) {
  // With n=1 the window is just the element itself.
  nn::LRN lrn(1, 2.0f, 0.75f, 1.0f);
  Tensor x({1, 1, 1, 1}, std::vector<float>{2.0f});
  Tensor y;
  lrn.forward(x, y, false);
  const float expected = 2.0f * std::pow(1.0f + 2.0f * 4.0f, -0.75f);
  EXPECT_NEAR(y[0], expected, 1e-6);
}

TEST(LRN, WindowSpansNeighbouringChannels) {
  nn::LRN lrn(3, 3.0f, 1.0f, 1.0f);  // alpha/n = 1, beta = 1
  Tensor x({1, 3, 1, 1}, std::vector<float>{1, 2, 3});
  Tensor y;
  lrn.forward(x, y, false);
  // channel 1 window = {1,2,3}: scale = 1 + (1+4+9) = 15.
  EXPECT_NEAR(y.at(0, 1, 0, 0), 2.0f / 15.0f, 1e-6);
  // channel 0 window = {1,2}: scale = 1 + 5 = 6.
  EXPECT_NEAR(y.at(0, 0, 0, 0), 1.0f / 6.0f, 1e-6);
}

TEST(LRN, GradCheck) {
  nn::LRN lrn(5, 1e-2f, 0.75f, 1.0f);
  testing::check_gradients(lrn, {2, 6, 3, 3}, /*seed=*/13,
                           {.step = 1e-3, .rel_tol = 3e-2, .abs_tol = 2e-4});
}

TEST(LRN, RejectsEvenWindow) {
  EXPECT_THROW(nn::LRN(4), std::invalid_argument);
  EXPECT_THROW(nn::LRN(0), std::invalid_argument);
}

TEST(LRN, HasNoParams) {
  nn::LRN lrn;
  EXPECT_TRUE(lrn.params().empty());
}

}  // namespace
}  // namespace minsgd
