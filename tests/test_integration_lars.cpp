// The headline integration test: on a fixed synthetic task, large-batch
// training with linear scaling + warmup loses accuracy (or diverges), while
// LARS + warmup stays within epsilon of the small-batch baseline in the same
// number of epochs. This is Figure 1 / Table 7's qualitative claim.
#include <gtest/gtest.h>

#include "core/proxy.hpp"
#include "core/recipe.hpp"

namespace minsgd {
namespace {

using core::LrRule;

struct Outcome {
  double acc = 0.0;
  bool diverged = false;
};

Outcome run(const core::ProxyScale& proxy, const data::SyntheticImageNet& ds,
            std::int64_t batch, LrRule rule) {
  auto rc = proxy.recipe(batch, rule);
  const auto res = core::run_recipe(proxy.alexnet_factory(), rc, ds);
  return {res.best_test_acc, res.diverged};
}

class LarsHeadline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    proxy_ = new core::ProxyScale(core::micro_proxy());
    ds_ = new data::SyntheticImageNet(proxy_->dataset);
    baseline_ = new Outcome(
        run(*proxy_, *ds_, proxy_->base_batch, LrRule::kLinearWarmup));
  }
  static void TearDownTestSuite() {
    delete baseline_;
    delete ds_;
    delete proxy_;
    baseline_ = nullptr;
    ds_ = nullptr;
    proxy_ = nullptr;
  }

  static core::ProxyScale* proxy_;
  static data::SyntheticImageNet* ds_;
  static Outcome* baseline_;
};

core::ProxyScale* LarsHeadline::proxy_ = nullptr;
data::SyntheticImageNet* LarsHeadline::ds_ = nullptr;
Outcome* LarsHeadline::baseline_ = nullptr;

TEST_F(LarsHeadline, BaselineLearnsTheTask) {
  EXPECT_FALSE(baseline_->diverged);
  EXPECT_GT(baseline_->acc, 0.5);  // chance is 1/8
}

TEST_F(LarsHeadline, LinearScalingDegradesAtExtremeBatch) {
  // 16x the base batch: the scaled LR (16 * base) is beyond what the loss
  // surface tolerates without trust-ratio damping.
  const auto extreme =
      run(*proxy_, *ds_, proxy_->base_batch * 16, LrRule::kLinearWarmup);
  EXPECT_TRUE(extreme.diverged || extreme.acc < baseline_->acc - 0.10)
      << "linear scaling acc " << extreme.acc << " vs baseline "
      << baseline_->acc;
}

TEST_F(LarsHeadline, LarsHoldsAccuracyAtExtremeBatch) {
  const auto lars = run(*proxy_, *ds_, proxy_->base_batch * 16, LrRule::kLars);
  EXPECT_FALSE(lars.diverged);
  EXPECT_GT(lars.acc, baseline_->acc - 0.08)
      << "LARS acc " << lars.acc << " vs baseline " << baseline_->acc;
}

TEST_F(LarsHeadline, LarsBeatsLinearScalingAtExtremeBatch) {
  const auto linear =
      run(*proxy_, *ds_, proxy_->base_batch * 16, LrRule::kLinearWarmup);
  const auto lars = run(*proxy_, *ds_, proxy_->base_batch * 16, LrRule::kLars);
  const double linear_acc = linear.diverged ? 1.0 / 8 : linear.acc;
  EXPECT_GT(lars.acc, linear_acc + 0.05);
}

TEST_F(LarsHeadline, ModerateBatchIsFineEitherWay) {
  // Table 4's regime: up to ~4x scaling, plain linear scaling still works.
  const auto linear =
      run(*proxy_, *ds_, proxy_->base_batch * 4, LrRule::kLinearWarmup);
  EXPECT_FALSE(linear.diverged);
  EXPECT_GT(linear.acc, baseline_->acc - 0.12);
}

}  // namespace
}  // namespace minsgd
