// Comm/compute overlap: async collective engine, bucketing assigner, and
// the determinism bar the tentpole demands — with the same seed and bucket
// configuration, overlap_comm on and off produce bit-identical weights,
// loss trajectories, and RNG streams at every world size.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "comm/async.hpp"
#include "comm/cluster.hpp"
#include "data/loader.hpp"
#include "data/synthetic.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/loss.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"
#include "train/fault_tolerant.hpp"
#include "train/overlap.hpp"
#include "train/trainer.hpp"

namespace minsgd {
namespace {

using comm::AllreduceAlgo;
using comm::AllreduceHandle;
using comm::AsyncCollectiveEngine;
using comm::Communicator;
using comm::SimCluster;

data::SynthConfig tiny_data_cfg() {
  data::SynthConfig c;
  c.classes = 4;
  c.resolution = 12;
  c.train_size = 256;
  c.test_size = 64;
  c.noise = 0.4f;
  c.distractor = 0.3f;
  c.seed = 5;
  return c;
}

std::unique_ptr<nn::Network> det_model(std::int64_t classes = 4,
                                       std::int64_t res = 12) {
  auto net = std::make_unique<nn::Network>("det");
  net->emplace<nn::Conv2d>(3, 8, 3, 1, 1);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2, 2);
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * (res / 2) * (res / 2), classes);
  return net;
}

/// Same trunk plus dropout: per-layer RNG streams make this the witness
/// that overlap does not perturb stochastic state.
std::unique_ptr<nn::Network> dropout_model(std::int64_t classes = 4,
                                           std::int64_t res = 12) {
  auto net = std::make_unique<nn::Network>("drop");
  net->emplace<nn::Conv2d>(3, 8, 3, 1, 1);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2, 2);
  net->emplace<nn::Flatten>();
  net->emplace<nn::Dropout>(0.25f);
  net->emplace<nn::Linear>(8 * (res / 2) * (res / 2), classes);
  return net;
}

// ---------------- async collective engine ----------------

TEST(AsyncEngine, SingleOpMatchesSequentialSum) {
  const int world = 4;
  const std::size_t n = 257;
  SimCluster cluster(world);
  std::vector<std::vector<float>> inputs(world);
  for (int r = 0; r < world; ++r) {
    Rng rng(static_cast<std::uint64_t>(r) * 13 + 1);
    inputs[static_cast<std::size_t>(r)].resize(n);
    rng.fill_uniform(inputs[static_cast<std::size_t>(r)], -1.0f, 1.0f);
  }
  std::vector<float> expected(n, 0.0f);
  for (const auto& in : inputs) {
    for (std::size_t i = 0; i < n; ++i) expected[i] += in[i];
  }
  cluster.run([&](Communicator& comm) {
    AsyncCollectiveEngine engine(comm.cluster(), comm.rank());
    auto data = inputs[static_cast<std::size_t>(comm.rank())];
    auto h = engine.allreduce_sum_async(data, AllreduceAlgo::kRing);
    h.wait();
    EXPECT_TRUE(h.done());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(data[i], expected[i], 1e-4) << "i=" << i;
    }
    EXPECT_EQ(engine.ops_completed(), 1);
  });
}

TEST(AsyncEngine, FifoOrderMatchesBlockingPerBucketBitExact) {
  // Many buckets of mixed sizes launched back to back: each must equal the
  // *blocking* allreduce of the same span bit-for-bit, because the engine
  // runs the identical algorithm on the identical data.
  const int world = 3;
  const std::vector<std::size_t> sizes = {64, 1, 300, 7, 128};
  std::size_t total = 0;
  for (auto s : sizes) total += s;

  auto make_input = [&](int r) {
    std::vector<float> v(total);
    Rng rng(static_cast<std::uint64_t>(r) * 91 + 3);
    rng.fill_uniform(v, -2.0f, 2.0f);
    return v;
  };

  // Blocking reference: same buckets, same algo, main channel.
  std::vector<float> blocking_rank0;
  {
    SimCluster cluster(world);
    std::mutex mu;
    cluster.run([&](Communicator& comm) {
      auto data = make_input(comm.rank());
      std::size_t off = 0;
      for (auto s : sizes) {
        comm.allreduce_sum(std::span<float>(data).subspan(off, s),
                           AllreduceAlgo::kRing);
        off += s;
      }
      if (comm.rank() == 0) {
        std::lock_guard lk(mu);
        blocking_rank0 = std::move(data);
      }
    });
  }

  SimCluster cluster(world);
  std::mutex mu;
  std::vector<float> async_rank0;
  cluster.run([&](Communicator& comm) {
    AsyncCollectiveEngine engine(comm.cluster(), comm.rank());
    auto data = make_input(comm.rank());
    std::vector<AllreduceHandle> handles;
    std::size_t off = 0;
    for (auto s : sizes) {
      handles.push_back(engine.allreduce_sum_async(
          std::span<float>(data).subspan(off, s), AllreduceAlgo::kRing));
      off += s;
    }
    for (auto& h : handles) h.wait();
    if (comm.rank() == 0) {
      std::lock_guard lk(mu);
      async_rank0 = std::move(data);
    }
  });
  ASSERT_EQ(async_rank0.size(), blocking_rank0.size());
  // Bit-exact: same bucket boundaries + same algorithm = same reduction
  // order, asynchrony must not change a single ulp.
  EXPECT_EQ(async_rank0, blocking_rank0);
}

TEST(AsyncEngine, OverlapsWithMainChannelCollectives) {
  // Async ops in flight must not collide with the rank thread's own
  // collectives: the engine lives on a separate tag channel.
  const int world = 4;
  SimCluster cluster(world);
  cluster.run([&](Communicator& comm) {
    AsyncCollectiveEngine engine(comm.cluster(), comm.rank());
    std::vector<float> grad(4096, 1.0f);
    auto h = engine.allreduce_sum_async(grad, AllreduceAlgo::kRing);
    std::vector<float> stats(2, static_cast<float>(comm.rank()));
    comm.allreduce_sum(stats, AllreduceAlgo::kStar);  // concurrent, main ch.
    h.wait();
    for (float v : grad) ASSERT_EQ(v, static_cast<float>(world));
    for (float v : stats) ASSERT_EQ(v, 6.0f);  // 0+1+2+3
  });
}

TEST(AsyncEngine, BusyTimeIsTracked) {
  SimCluster cluster(2);
  cluster.run([&](Communicator& comm) {
    AsyncCollectiveEngine engine(comm.cluster(), comm.rank());
    std::vector<float> data(1 << 16, 1.0f);
    engine.allreduce_sum_async(data, AllreduceAlgo::kRing).wait();
    EXPECT_GT(engine.busy_ns(), 0);
  });
}

TEST(AsyncEngine, DropFaultSurfacesAsCommTimeoutNotHang) {
  // Every message dropped: the in-flight bucket's recv must time out and
  // surface through wait() as the fault taxonomy, promptly.
  const int world = 2;
  SimCluster cluster(world);
  comm::FaultPlan plan;
  plan.drop_prob = 1.0;
  cluster.set_fault_injector(std::make_shared<comm::FaultInjector>(plan, world));
  cluster.set_recv_timeout(std::chrono::milliseconds(200));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(cluster.run([&](Communicator& comm) {
                 AsyncCollectiveEngine engine(comm.cluster(), comm.rank());
                 std::vector<float> data(64, 1.0f);
                 auto h = engine.allreduce_sum_async(data, AllreduceAlgo::kRing);
                 h.wait();
               }),
               comm::FaultError);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            20);
}

TEST(AsyncEngine, QueuedOpsBehindFailureFailFast) {
  // Once one collective fails, later queued ops must not run (their tags
  // would no longer match peers) — they inherit the root-cause error.
  const int world = 2;
  SimCluster cluster(world);
  comm::FaultPlan plan;
  plan.drop_prob = 1.0;
  cluster.set_fault_injector(std::make_shared<comm::FaultInjector>(plan, world));
  cluster.set_recv_timeout(std::chrono::milliseconds(200));
  std::atomic<int> poisoned{0};
  EXPECT_THROW(
      cluster.run([&](Communicator& comm) {
        AsyncCollectiveEngine engine(comm.cluster(), comm.rank());
        std::vector<float> a(64, 1.0f), b(64, 1.0f), c(64, 1.0f);
        auto ha = engine.allreduce_sum_async(a, AllreduceAlgo::kRing);
        auto hb = engine.allreduce_sum_async(b, AllreduceAlgo::kRing);
        auto hc = engine.allreduce_sum_async(c, AllreduceAlgo::kRing);
        try {
          hb.wait();
        } catch (const comm::FaultError&) {
          poisoned.fetch_add(1);
        }
        try {
          hc.wait();
        } catch (const comm::FaultError&) {
          poisoned.fetch_add(1);
        }
        ha.wait();  // the root cause, rethrown out of the rank fn
      }),
      comm::FaultError);
  EXPECT_EQ(poisoned.load(), 2 * world);
}

TEST(AsyncEngine, CrashFaultPropagatesAsRankFailure) {
  const int world = 3;
  SimCluster cluster(world);
  comm::FaultPlan plan;
  plan.crash_rank = 1;
  plan.crash_at_send = 0;  // die on the very first send of the collective
  cluster.set_fault_injector(std::make_shared<comm::FaultInjector>(plan, world));
  cluster.set_recv_timeout(std::chrono::milliseconds(500));
  EXPECT_THROW(cluster.run([&](Communicator& comm) {
                 AsyncCollectiveEngine engine(comm.cluster(), comm.rank());
                 std::vector<float> data(256, 1.0f);
                 engine.allreduce_sum_async(data, AllreduceAlgo::kStar).wait();
               }),
               comm::FaultError);
}

// ---------------- OverlapAllreducer unit behaviour ----------------

TEST(OverlapAllreducer, SumsGradientsAndPreservesRngState) {
  // Drive three manual training iterations with a dropout model, overlap
  // on vs off, inside the same harness — weights AND the dropout RNG
  // streams must come out bit-identical.
  const int world = 2;
  const std::int64_t bucket_bytes = 256;  // smaller than the conv layer

  auto run = [&](bool overlap_on) {
    data::SyntheticImageNet ds(tiny_data_cfg());
    SimCluster cluster(world);
    std::mutex mu;
    std::vector<float> weights;
    std::vector<RngState> rng_states;
    cluster.run([&](Communicator& comm) {
      auto net = dropout_model();
      Rng init(7);
      net->init(init);
      auto params = net->params();
      optim::Sgd opt({.momentum = 0.9, .weight_decay = 0.0005});
      data::ShardedLoader loader(ds, 32, comm.rank(), world, std::nullopt);
      nn::SoftmaxCrossEntropy loss;
      std::unique_ptr<train::OverlapAllreducer> ov;
      if (overlap_on) {
        ov = std::make_unique<train::OverlapAllreducer>(
            *net, comm, bucket_bytes, AllreduceAlgo::kRing);
      }
      Tensor logits, dlogits, dx;
      for (int it = 0; it < 3; ++it) {
        auto batch = loader.load_train(0, it);
        net->zero_grad();
        net->forward(batch.x, logits, /*training=*/true);
        loss.forward_backward(logits, batch.labels, &dlogits);
        if (ov) ov->begin_iteration();
        net->backward(batch.x, logits, dlogits, dx);
        std::span<float> flat;
        std::vector<float> own;
        if (ov) {
          flat = ov->finish();
        } else {
          own = net->flatten_grads();
          flat = own;
          const auto bucket = static_cast<std::size_t>(bucket_bytes / 4);
          std::span<float> rest(flat);
          while (!rest.empty()) {
            const auto n = std::min(bucket, rest.size());
            comm.allreduce_sum(rest.subspan(0, n), AllreduceAlgo::kRing);
            rest = rest.subspan(n);
          }
        }
        scale(1.0f / world, flat);
        net->unflatten_grads(flat);
        opt.step(params, 0.05);
      }
      if (comm.rank() == 0) {
        std::lock_guard lk(mu);
        weights = net->flatten_params();
        for (Rng* r : net->rng_streams()) rng_states.push_back(r->state());
      }
    });
    return std::make_pair(weights, rng_states);
  };

  const auto [w_off, rng_off] = run(false);
  const auto [w_on, rng_on] = run(true);
  ASSERT_FALSE(w_off.empty());
  EXPECT_EQ(w_on, w_off);  // bit-identical weights
  ASSERT_EQ(rng_on.size(), rng_off.size());
  ASSERT_GT(rng_on.size(), 0u);  // dropout contributes at least one stream
  for (std::size_t i = 0; i < rng_on.size(); ++i) {
    for (int k = 0; k < 4; ++k) EXPECT_EQ(rng_on[i].s[k], rng_off[i].s[k]);
    EXPECT_EQ(rng_on[i].has_cached, rng_off[i].has_cached);
    EXPECT_EQ(rng_on[i].cached_normal, rng_off[i].cached_normal);
  }
}

TEST(OverlapAllreducer, BucketCountMatchesConfiguration) {
  SimCluster cluster(1);
  cluster.run([&](Communicator& comm) {
    auto net = det_model();
    Rng init(7);
    net->init(init);
    const auto n = static_cast<std::size_t>(net->num_params());
    train::OverlapAllreducer one(*net, comm, 0, AllreduceAlgo::kRing);
    EXPECT_EQ(one.num_buckets(), 1u);
    train::OverlapAllreducer tiny(*net, comm, 4, AllreduceAlgo::kRing);
    EXPECT_EQ(tiny.num_buckets(), n);  // one float per bucket
    train::OverlapAllreducer big(*net, comm, 1 << 26, AllreduceAlgo::kRing);
    EXPECT_EQ(big.num_buckets(), 1u);  // larger than the whole model
  });
}

TEST(OverlapAllreducer, RejectsBadBucketBytes) {
  SimCluster cluster(1);
  EXPECT_THROW(cluster.run([&](Communicator& comm) {
                 auto net = det_model();
                 Rng init(7);
                 net->init(init);
                 train::OverlapAllreducer bad(*net, comm, 3,
                                              AllreduceAlgo::kRing);
               }),
               std::invalid_argument);
}

// ---------------- end-to-end determinism: overlap on == off ----------------

// World sizes {1, 2, 4, 8} x bucket sizes {smaller than one layer, mid,
// larger than the whole model}: the acceptance bar from the issue.
class OverlapDeterminism
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(OverlapDeterminism, SyncTrainingBitIdenticalOnVsOff) {
  const auto [world, bucket_bytes] = GetParam();
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);

  auto run = [&](bool overlap_on) {
    train::TrainOptions options;
    options.global_batch = 32;
    options.epochs = 2;
    options.bucket_bytes = bucket_bytes;
    options.overlap_comm = overlap_on;
    return train::train_sync_data_parallel(
        [] { return det_model(); },
        [] {
          return std::make_unique<optim::Sgd>(
              optim::SgdConfig{.momentum = 0.9, .weight_decay = 0.0005});
        },
        lr, ds, options, world, AllreduceAlgo::kRing);
  };

  const auto off = run(false);
  const auto on = run(true);

  ASSERT_FALSE(off.final_weights.empty());
  // The non-negotiable bar: bit-identical weights.
  EXPECT_EQ(on.final_weights, off.final_weights);
  // And a bit-identical loss/accuracy trajectory.
  ASSERT_EQ(on.result.epochs.size(), off.result.epochs.size());
  for (std::size_t e = 0; e < off.result.epochs.size(); ++e) {
    EXPECT_EQ(on.result.epochs[e].train_loss, off.result.epochs[e].train_loss);
    EXPECT_EQ(on.result.epochs[e].train_acc, off.result.epochs[e].train_acc);
  }
  EXPECT_EQ(on.iterations, off.iterations);
  // Identical buckets on the wire: same payload bytes moved (message counts
  // match too because bucket boundaries match).
  EXPECT_EQ(on.traffic.bytes, off.traffic.bytes);
  EXPECT_EQ(on.traffic.messages, off.traffic.messages);
}

INSTANTIATE_TEST_SUITE_P(
    WorldsAndBuckets, OverlapDeterminism,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       // 128 B < one conv layer; 4 KiB mid; 1 GiB > model;
                       // 0 = the single-bucket convention.
                       ::testing::Values(std::int64_t{128},
                                         std::int64_t{4096},
                                         std::int64_t{1} << 30,
                                         std::int64_t{0})));

TEST(OverlapDeterminism, HoldsAcrossSeedsWithDropout) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);
  for (std::uint64_t seed : {7ull, 1234ull}) {
    auto run = [&](bool overlap_on) {
      train::TrainOptions options;
      options.global_batch = 32;
      options.epochs = 1;
      options.init_seed = seed;
      options.bucket_bytes = 512;
      options.overlap_comm = overlap_on;
      return train::train_sync_data_parallel(
          [] { return dropout_model(); },
          [] { return std::make_unique<optim::Sgd>(); }, lr, ds, options, 4,
          AllreduceAlgo::kRing);
    };
    const auto off = run(false);
    const auto on = run(true);
    ASSERT_FALSE(off.final_weights.empty()) << "seed=" << seed;
    EXPECT_EQ(on.final_weights, off.final_weights) << "seed=" << seed;
  }
}

TEST(OverlapDeterminism, ExposedCommAccountingIsSane) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);
  train::TrainOptions options;
  options.global_batch = 32;
  options.epochs = 1;
  options.bucket_bytes = 1024;
  options.overlap_comm = true;
  const auto on = train::train_sync_data_parallel(
      [] { return det_model(); }, [] { return std::make_unique<optim::Sgd>(); },
      lr, ds, options, 4, AllreduceAlgo::kRing);
  EXPECT_GT(on.total_comm_ns, 0);
  EXPECT_GE(on.exposed_comm_ns, 0);
  options.overlap_comm = false;
  const auto off = train::train_sync_data_parallel(
      [] { return det_model(); }, [] { return std::make_unique<optim::Sgd>(); },
      lr, ds, options, 4, AllreduceAlgo::kRing);
  EXPECT_GT(off.total_comm_ns, 0);
  EXPECT_EQ(off.exposed_comm_ns, off.total_comm_ns);  // nothing hidden
}

// ---------------- fault injection through the async path ----------------

TEST(OverlapFault, CrashRecoveryStaysBitExact) {
  // A rank crash mid-run with overlap on: the fault-tolerant driver must
  // restart from checkpoint and land on exactly the weights of an
  // uninterrupted overlap run.
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);
  const int world = 4;

  auto make_options = [&](const char* path) {
    train::FaultTolerantOptions fo;
    fo.train.global_batch = 32;
    fo.train.epochs = 2;
    fo.train.bucket_bytes = 512;
    fo.train.overlap_comm = true;
    fo.checkpoint_every = 4;
    fo.checkpoint_path = path;
    fo.recv_timeout = std::chrono::milliseconds(2000);
    return fo;
  };

  const auto clean = train::train_sync_fault_tolerant(
      [] { return det_model(); }, [] { return std::make_unique<optim::Sgd>(); },
      lr, ds, make_options("overlap_ft_clean.bin"), world);
  ASSERT_EQ(clean.restarts, 0);

  comm::FaultPlan plan;
  plan.crash_rank = 2;
  plan.crash_at_send = 40;  // mid-run, inside the bucket pipeline
  auto injector = std::make_shared<comm::FaultInjector>(plan, world);
  const auto faulted = train::train_sync_fault_tolerant(
      [] { return det_model(); }, [] { return std::make_unique<optim::Sgd>(); },
      lr, ds, make_options("overlap_ft_crash.bin"), world, injector);

  EXPECT_GE(faulted.restarts, 1);
  EXPECT_EQ(faulted.faults.crashes, 1);
  ASSERT_FALSE(clean.final_weights.empty());
  EXPECT_EQ(faulted.final_weights, clean.final_weights);  // bit-identical
  EXPECT_EQ(faulted.iterations, clean.iterations);
}

TEST(OverlapFault, DropFaultAbortsCleanlyWithNoRestartBudget) {
  // With max_restarts = 0, a lossy network must surface the fault to the
  // caller (CommTimeout or the aggregated ClusterAborted) — not hang, not
  // half-apply an update.
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);
  const int world = 2;
  train::FaultTolerantOptions fo;
  fo.train.global_batch = 32;
  fo.train.epochs = 1;
  fo.train.bucket_bytes = 256;
  fo.train.overlap_comm = true;
  fo.checkpoint_path = "overlap_ft_drop.bin";
  fo.max_restarts = 0;
  fo.recv_timeout = std::chrono::milliseconds(250);

  comm::FaultPlan plan;
  plan.drop_prob = 1.0;
  auto injector = std::make_shared<comm::FaultInjector>(plan, world);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(train::train_sync_fault_tolerant(
                   [] { return det_model(); },
                   [] { return std::make_unique<optim::Sgd>(); }, lr, ds, fo,
                   world, injector),
               comm::FaultError);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            30);
  std::remove("overlap_ft_drop.bin");
}

TEST(OverlapFault, DelayFaultIsValuePreserving) {
  // Stragglers reorder wall-clock, never bits: a delayed-message run with
  // overlap must equal the fault-free run exactly.
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);
  const int world = 2;

  auto run = [&](std::shared_ptr<comm::FaultInjector> injector,
                 const char* path) {
    train::FaultTolerantOptions fo;
    fo.train.global_batch = 32;
    fo.train.epochs = 1;
    fo.train.bucket_bytes = 512;
    fo.train.overlap_comm = true;
    fo.checkpoint_path = path;
    fo.recv_timeout = std::chrono::milliseconds(5000);
    return train::train_sync_fault_tolerant(
        [] { return det_model(); },
        [] { return std::make_unique<optim::Sgd>(); }, lr, ds, fo, world,
        std::move(injector));
  };

  const auto clean = run(nullptr, "overlap_ft_delay_clean.bin");
  comm::FaultPlan plan;
  plan.delay_prob = 0.2;
  plan.delay = std::chrono::milliseconds(2);
  const auto delayed = run(std::make_shared<comm::FaultInjector>(plan, world),
                           "overlap_ft_delay.bin");
  EXPECT_EQ(delayed.restarts, 0);
  EXPECT_GT(delayed.faults.delayed, 0);
  EXPECT_EQ(delayed.final_weights, clean.final_weights);
}

}  // namespace
}  // namespace minsgd
