// Shape oracle: Layer::output_shape() must predict exactly the shape
// forward() produces, for every layer type over a grid of input geometries.
// The memory planner sizes every arena slice from output_shape(), so a
// divergence here is an out-of-bounds write waiting to happen — this test
// pins the two against each other mechanically.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "nn/network.hpp"
#include "nn/norm.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"
#include "tensor/context.hpp"

namespace minsgd {
namespace {

Tensor filled(const Shape& shape, std::uint64_t seed) {
  Tensor t(shape);
  Rng rng(seed);
  for (auto& v : t.span()) v = static_cast<float>(rng.normal());
  return t;
}

/// The oracle check: output_shape(input) == shape forward actually builds,
/// in both training and eval mode.
void expect_oracle(nn::Layer& layer, const Shape& input) {
  const ComputeContext ctx(2);
  const Shape predicted = layer.output_shape(input);
  const Tensor x = filled(input, 42);
  for (const bool training : {true, false}) {
    Tensor y;
    layer.forward(x, y, training, ctx);
    EXPECT_EQ(y.shape(), predicted)
        << layer.name() << " on " << input.str() << " training=" << training
        << ": predicted " << predicted.str() << " got " << y.shape().str();
  }
}

TEST(ShapeOracle, Conv2d) {
  // kernel x stride x pad x groups over odd and even spatial extents.
  const std::int64_t batches[] = {1, 3};
  const std::int64_t spatial[] = {7, 8, 11};
  struct Cfg { std::int64_t k, s, p, g; };
  const Cfg cfgs[] = {{1, 1, 0, 1}, {1, 2, 0, 1}, {3, 1, 1, 1},
                      {3, 2, 1, 1}, {3, 1, 0, 2}, {5, 2, 2, 1},
                      {7, 2, 3, 1}, {2, 2, 0, 1}};
  for (const auto& c : cfgs) {
    for (const auto n : batches) {
      for (const auto hw : spatial) {
        if (hw + 2 * c.p < c.k) continue;
        nn::Conv2d conv(4, 6, c.k, c.s, c.p, /*bias=*/true, c.g);
        Rng rng(1);
        conv.init(rng);
        expect_oracle(conv, Shape({n, 4, hw, hw}));
        // Non-square input: H != W must flow through independently.
        if (hw + 1 + 2 * c.p >= c.k) {
          nn::Conv2d conv2(4, 6, c.k, c.s, c.p, /*bias=*/false, c.g);
          conv2.init(rng);
          expect_oracle(conv2, Shape({n, 4, hw + 1, hw}));
        }
      }
    }
  }
}

TEST(ShapeOracle, Linear) {
  for (const std::int64_t in : {1, 17, 64}) {
    for (const std::int64_t out : {1, 5, 32}) {
      for (const std::int64_t batch : {1, 9}) {
        nn::Linear lin(in, out);
        Rng rng(1);
        lin.init(rng);
        expect_oracle(lin, Shape({batch, in}));
      }
    }
  }
}

TEST(ShapeOracle, Pooling) {
  struct Cfg { std::int64_t k, s, p; };
  const Cfg cfgs[] = {{2, 2, 0}, {3, 2, 0}, {3, 2, 1}, {3, 1, 1}, {2, 1, 0}};
  for (const auto& c : cfgs) {
    for (const std::int64_t hw : {6, 9, 12}) {
      nn::MaxPool2d mp(c.k, c.s, c.p);
      expect_oracle(mp, Shape({2, 3, hw, hw}));
      nn::AvgPool2d ap(c.k, c.s, c.p);
      expect_oracle(ap, Shape({2, 3, hw, hw}));
      nn::MaxPool2d mp2(c.k, c.s, c.p);
      expect_oracle(mp2, Shape({1, 5, hw + 1, hw}));
    }
  }
  for (const std::int64_t hw : {1, 4, 7}) {
    nn::GlobalAvgPool gap;
    expect_oracle(gap, Shape({3, 6, hw, hw}));
  }
}

TEST(ShapeOracle, NormsActivationsDropout) {
  for (const std::int64_t hw : {3, 8}) {
    for (const std::int64_t batch : {1, 4}) {
      nn::BatchNorm2d bn(5);
      Rng rng(1);
      bn.init(rng);
      expect_oracle(bn, Shape({batch, 5, hw, hw}));
      nn::LRN lrn(5);
      expect_oracle(lrn, Shape({batch, 7, hw, hw}));
      nn::ReLU relu;
      expect_oracle(relu, Shape({batch, 5, hw, hw}));
      nn::Flatten flatten;
      expect_oracle(flatten, Shape({batch, 5, hw, hw}));
    }
  }
  nn::ReLU relu2d;
  expect_oracle(relu2d, Shape({3, 11}));
  // Dropout in eval mode is the identity; training keeps the shape too.
  nn::Dropout drop(0.3f);
  expect_oracle(drop, Shape({4, 20}));
  nn::Dropout drop4(0.5f);
  expect_oracle(drop4, Shape({2, 3, 5, 5}));
}

TEST(ShapeOracle, ResidualBlocks) {
  Rng rng(3);
  // Identity shortcut.
  {
    auto branch = std::make_unique<nn::Network>("b");
    branch->emplace<nn::Conv2d>(6, 6, 3, 1, 1);
    branch->emplace<nn::BatchNorm2d>(6);
    branch->emplace<nn::ReLU>();
    branch->emplace<nn::Conv2d>(6, 6, 3, 1, 1);
    nn::ResidualBlock block(std::move(branch));
    block.init(rng);
    expect_oracle(block, Shape({2, 6, 9, 9}));
  }
  // Strided projection shortcut: spatial halving + channel change.
  {
    auto branch = std::make_unique<nn::Network>("b");
    branch->emplace<nn::Conv2d>(4, 8, 3, 2, 1);
    branch->emplace<nn::BatchNorm2d>(8);
    branch->emplace<nn::ReLU>();
    branch->emplace<nn::Conv2d>(8, 8, 3, 1, 1);
    auto shortcut = std::make_unique<nn::Network>("s");
    shortcut->emplace<nn::Conv2d>(4, 8, 1, 2, 0);
    shortcut->emplace<nn::BatchNorm2d>(8);
    nn::ResidualBlock block(std::move(branch), std::move(shortcut));
    block.init(rng);
    expect_oracle(block, Shape({2, 4, 8, 8}));
    expect_oracle(block, Shape({1, 4, 11, 11}));
  }
}

TEST(ShapeOracle, WholeModels) {
  Rng rng(7);
  {
    auto net = nn::tiny_resnet(1, 10, 16);
    net->init(rng);
    expect_oracle(*net, Shape({2, 3, 16, 16}));
  }
  {
    auto net = nn::tiny_alexnet(8, 16);
    net->init(rng);
    expect_oracle(*net, Shape({2, 3, 16, 16}));
  }
}

}  // namespace
}  // namespace minsgd
