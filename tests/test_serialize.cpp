#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "nn/models.hpp"
#include "nn/serialize.hpp"
#include "optim/sgd.hpp"
#include "train/checkpoint.hpp"

namespace minsgd {
namespace {

std::unique_ptr<nn::Network> make_net() {
  return nn::tiny_alexnet(4, 16, nn::AlexNetNorm::kBN, 4);
}

TEST(Serialize, RoundTripRestoresExactWeights) {
  auto a = make_net();
  Rng rng(9);
  a->init(rng);
  std::stringstream buf;
  nn::save_checkpoint(*a, buf);

  auto b = make_net();
  Rng rng2(1234);  // different init, must be fully overwritten
  b->init(rng2);
  nn::load_checkpoint(*b, buf);
  EXPECT_EQ(a->flatten_params(), b->flatten_params());
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ckpt.bin";
  auto a = make_net();
  Rng rng(3);
  a->init(rng);
  nn::save_checkpoint(*a, path);
  auto b = make_net();
  b->init(rng);
  for (auto& p : b->params()) p.value->fill(0.0f);
  nn::load_checkpoint(*b, path);
  EXPECT_EQ(a->flatten_params(), b->flatten_params());
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBadMagic) {
  auto net = make_net();
  std::stringstream buf("not a checkpoint at all");
  EXPECT_THROW(nn::load_checkpoint(*net, buf), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedFile) {
  auto net = make_net();
  Rng rng(5);
  net->init(rng);
  std::stringstream buf;
  nn::save_checkpoint(*net, buf);
  const std::string full = buf.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(nn::load_checkpoint(*net, truncated), std::runtime_error);
}

TEST(Serialize, RejectsArchitectureMismatch) {
  auto a = make_net();
  Rng rng(7);
  a->init(rng);
  std::stringstream buf;
  nn::save_checkpoint(*a, buf);
  auto other = nn::tiny_alexnet(8, 16, nn::AlexNetNorm::kBN, 4);  // 8 classes
  other->init(rng);
  EXPECT_THROW(nn::load_checkpoint(*other, buf), std::runtime_error);
}

TEST(Serialize, RejectsMissingFile) {
  auto net = make_net();
  EXPECT_THROW(nn::load_checkpoint(*net, "/no/such/file.bin"),
               std::runtime_error);
}

TEST(Serialize, CheckpointPreservesInference) {
  auto a = make_net();
  Rng rng(11);
  a->init(rng);
  Tensor x({2, 3, 16, 16});
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor ya;
  a->forward(x, ya, /*training=*/false);

  std::stringstream buf;
  nn::save_checkpoint(*a, buf);
  auto b = make_net();
  Rng rng2(99);
  b->init(rng2);
  nn::load_checkpoint(*b, buf);
  Tensor yb;
  b->forward(x, yb, /*training=*/false);
  for (std::int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_NEAR(ya[i], yb[i], 1e-5);
  }
}

TEST(Serialize, BatchNormRunningStatsAreCheckpointed) {
  // Train-mode forwards move the running statistics; a checkpoint must
  // capture them or eval-mode inference changes after reload.
  auto a = make_net();
  Rng rng(21);
  a->init(rng);
  Tensor x({8, 3, 16, 16});
  rng.fill_normal(x.span(), 2.0f, 3.0f);
  Tensor y;
  for (int i = 0; i < 5; ++i) a->forward(x, y, /*training=*/true);
  Tensor eval_before;
  a->forward(x, eval_before, /*training=*/false);

  std::stringstream buf;
  nn::save_checkpoint(*a, buf);
  auto b = make_net();
  Rng rng2(77);
  b->init(rng2);
  nn::load_checkpoint(*b, buf);
  Tensor eval_after;
  b->forward(x, eval_after, /*training=*/false);
  for (std::int64_t i = 0; i < eval_before.numel(); ++i) {
    ASSERT_NEAR(eval_before[i], eval_after[i], 1e-5);
  }
}

TEST(Serialize, BuffersAreNamedAndAggregated) {
  auto net = make_net();
  const auto bufs = net->buffers();
  ASSERT_FALSE(bufs.empty());
  // Two buffers (mean, var) per BatchNorm layer; names carry the layer path.
  EXPECT_NE(bufs[0].name.find("bn"), std::string::npos);
  EXPECT_NE(bufs[0].name.find("running_mean"), std::string::npos);
}

// ---------------- legacy v1 (weight-only) files ----------------

TEST(SerializeV1, LegacyWeightOnlyFileStillLoads) {
  auto a = make_net();
  Rng rng(13);
  a->init(rng);
  // Move the running stats away from their init values so we can observe
  // that a v1 load leaves them alone.
  Tensor x({4, 3, 16, 16}), y;
  rng.fill_normal(x.span(), 1.0f, 2.0f);
  a->forward(x, y, /*training=*/true);

  std::stringstream buf;
  nn::save_checkpoint(*a, buf, /*version=*/1);

  auto b = make_net();
  Rng rng2(131);
  b->init(rng2);
  const auto b_buffers_before = [&] {
    std::vector<float> flat;
    for (const auto& ref : b->buffers()) {
      const auto s = ref.value->span();
      flat.insert(flat.end(), s.begin(), s.end());
    }
    return flat;
  };
  const auto before = b_buffers_before();
  nn::load_checkpoint(*b, buf);
  EXPECT_EQ(a->flatten_params(), b->flatten_params());  // weights restored
  EXPECT_EQ(b_buffers_before(), before);  // buffers untouched by a v1 file
}

TEST(SerializeV1, RejectsUnknownVersionOnSave) {
  auto net = make_net();
  std::stringstream buf;
  EXPECT_THROW(nn::save_checkpoint(*net, buf, /*version=*/3),
               std::invalid_argument);
}

// ---------------- train checkpoint (v2: optimizer + schedule + RNG) -------

train::TrainCheckpoint sample_meta() {
  train::TrainCheckpoint meta;
  meta.epoch = 3;
  meta.iter = 5;
  meta.global_iter = 29;
  meta.world = 4;
  meta.global_batch = 64;
  return meta;
}

/// Steps the optimizer a few times so it owns non-trivial momentum state.
void warm_up(nn::Network& net, optim::Optimizer& opt, Rng& rng) {
  auto params = net.params();
  for (int s = 0; s < 3; ++s) {
    for (auto& p : params) rng.fill_normal(p.grad->span(), 0.0f, 0.1f);
    opt.step(params, 0.05);
  }
}

TEST(TrainCheckpoint, RoundTripRestoresFullTrainerState) {
  auto a = make_net();
  Rng rng(17);
  a->init(rng);
  optim::Sgd opt_a({.momentum = 0.9, .weight_decay = 0.0});
  warm_up(*a, opt_a, rng);
  auto meta = sample_meta();
  rng.normal(0.0, 1.0);  // leave a cached Box-Muller value in flight
  meta.rng = rng.state();

  std::stringstream buf;
  train::save_train_checkpoint(buf, *a, opt_a, meta);

  auto b = make_net();
  Rng rng_b(1717);
  b->init(rng_b);
  optim::Sgd opt_b({.momentum = 0.9, .weight_decay = 0.0});
  train::TrainCheckpoint got;
  train::load_train_checkpoint(buf, *b, opt_b, got, /*expect_world=*/4,
                               /*expect_global_batch=*/64);

  EXPECT_EQ(got.epoch, meta.epoch);
  EXPECT_EQ(got.iter, meta.iter);
  EXPECT_EQ(got.global_iter, meta.global_iter);
  EXPECT_EQ(got.world, meta.world);
  EXPECT_EQ(got.global_batch, meta.global_batch);
  EXPECT_EQ(a->flatten_params(), b->flatten_params());

  // The restored RNG stream must continue exactly where the saved one was,
  // including the half-consumed Box-Muller pair.
  Rng resumed(1);
  resumed.set_state(got.rng);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(rng.normal(0.0, 1.0), resumed.normal(0.0, 1.0));
  }

  // Momentum survives: identical gradients must produce identical steps.
  auto pa = a->params();
  auto pb = b->params();
  Rng grads(55);
  for (auto& p : pa) grads.fill_normal(p.grad->span(), 0.0f, 0.1f);
  for (std::size_t i = 0; i < pb.size(); ++i) {
    std::copy(pa[i].grad->span().begin(), pa[i].grad->span().end(),
              pb[i].grad->span().begin());
  }
  opt_a.step(pa, 0.05);
  opt_b.step(pb, 0.05);
  EXPECT_EQ(a->flatten_params(), b->flatten_params());
}

TEST(TrainCheckpoint, WeightOnlyFileFailsLoudly) {
  auto net = make_net();
  Rng rng(19);
  net->init(rng);
  std::stringstream buf;
  nn::save_checkpoint(*net, buf);  // a model ("MSGD") file, not a train one
  optim::Sgd opt;
  train::TrainCheckpoint meta;
  try {
    train::load_train_checkpoint(buf, *net, opt, meta);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("weight-only"), std::string::npos) << what;
    EXPECT_NE(what.find("nn::load_checkpoint"), std::string::npos) << what;
  }
}

TEST(TrainCheckpoint, RejectsGeometryMismatch) {
  auto net = make_net();
  Rng rng(23);
  net->init(rng);
  optim::Sgd opt;
  std::stringstream buf;
  train::save_train_checkpoint(buf, *net, opt, sample_meta());  // world=4
  train::TrainCheckpoint meta;
  EXPECT_THROW(train::load_train_checkpoint(buf, *net, opt, meta,
                                            /*expect_world=*/8,
                                            /*expect_global_batch=*/64),
               std::runtime_error);
}

TEST(TrainCheckpoint, RejectsArchitectureMismatch) {
  auto a = make_net();
  Rng rng(29);
  a->init(rng);
  optim::Sgd opt;
  std::stringstream buf;
  train::save_train_checkpoint(buf, *a, opt, sample_meta());
  auto other = nn::tiny_alexnet(8, 16, nn::AlexNetNorm::kBN, 4);  // 8 classes
  other->init(rng);
  train::TrainCheckpoint meta;
  EXPECT_THROW(train::load_train_checkpoint(buf, *other, opt, meta),
               std::runtime_error);
}

TEST(TrainCheckpoint, RejectsTruncation) {
  auto net = make_net();
  Rng rng(31);
  net->init(rng);
  optim::Sgd opt;
  std::stringstream buf;
  train::save_train_checkpoint(buf, *net, opt, sample_meta());
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() - 3));  // lose the footer
  train::TrainCheckpoint meta;
  EXPECT_THROW(train::load_train_checkpoint(cut, *net, opt, meta),
               std::runtime_error);
}

TEST(TrainCheckpoint, AtomicFileWriteLeavesNoTempBehind) {
  const std::string path = ::testing::TempDir() + "/train_ckpt.bin";
  auto net = make_net();
  Rng rng(37);
  net->init(rng);
  optim::Sgd opt;
  train::save_train_checkpoint(path, *net, opt, sample_meta());
  EXPECT_TRUE(std::ifstream(path, std::ios::binary).good());
  EXPECT_FALSE(std::ifstream(path + ".tmp", std::ios::binary).good());
  auto b = make_net();
  b->init(rng);
  optim::Sgd opt_b;
  train::TrainCheckpoint meta;
  train::load_train_checkpoint(path, *b, opt_b, meta);
  EXPECT_EQ(net->flatten_params(), b->flatten_params());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace minsgd
