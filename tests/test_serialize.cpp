#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "nn/models.hpp"
#include "nn/serialize.hpp"

namespace minsgd {
namespace {

std::unique_ptr<nn::Network> make_net() {
  return nn::tiny_alexnet(4, 16, nn::AlexNetNorm::kBN, 4);
}

TEST(Serialize, RoundTripRestoresExactWeights) {
  auto a = make_net();
  Rng rng(9);
  a->init(rng);
  std::stringstream buf;
  nn::save_checkpoint(*a, buf);

  auto b = make_net();
  Rng rng2(1234);  // different init, must be fully overwritten
  b->init(rng2);
  nn::load_checkpoint(*b, buf);
  EXPECT_EQ(a->flatten_params(), b->flatten_params());
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ckpt.bin";
  auto a = make_net();
  Rng rng(3);
  a->init(rng);
  nn::save_checkpoint(*a, path);
  auto b = make_net();
  b->init(rng);
  for (auto& p : b->params()) p.value->fill(0.0f);
  nn::load_checkpoint(*b, path);
  EXPECT_EQ(a->flatten_params(), b->flatten_params());
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBadMagic) {
  auto net = make_net();
  std::stringstream buf("not a checkpoint at all");
  EXPECT_THROW(nn::load_checkpoint(*net, buf), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedFile) {
  auto net = make_net();
  Rng rng(5);
  net->init(rng);
  std::stringstream buf;
  nn::save_checkpoint(*net, buf);
  const std::string full = buf.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(nn::load_checkpoint(*net, truncated), std::runtime_error);
}

TEST(Serialize, RejectsArchitectureMismatch) {
  auto a = make_net();
  Rng rng(7);
  a->init(rng);
  std::stringstream buf;
  nn::save_checkpoint(*a, buf);
  auto other = nn::tiny_alexnet(8, 16, nn::AlexNetNorm::kBN, 4);  // 8 classes
  other->init(rng);
  EXPECT_THROW(nn::load_checkpoint(*other, buf), std::runtime_error);
}

TEST(Serialize, RejectsMissingFile) {
  auto net = make_net();
  EXPECT_THROW(nn::load_checkpoint(*net, "/no/such/file.bin"),
               std::runtime_error);
}

TEST(Serialize, CheckpointPreservesInference) {
  auto a = make_net();
  Rng rng(11);
  a->init(rng);
  Tensor x({2, 3, 16, 16});
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor ya;
  a->forward(x, ya, /*training=*/false);

  std::stringstream buf;
  nn::save_checkpoint(*a, buf);
  auto b = make_net();
  Rng rng2(99);
  b->init(rng2);
  nn::load_checkpoint(*b, buf);
  Tensor yb;
  b->forward(x, yb, /*training=*/false);
  for (std::int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_NEAR(ya[i], yb[i], 1e-5);
  }
}

TEST(Serialize, BatchNormRunningStatsAreCheckpointed) {
  // Train-mode forwards move the running statistics; a checkpoint must
  // capture them or eval-mode inference changes after reload.
  auto a = make_net();
  Rng rng(21);
  a->init(rng);
  Tensor x({8, 3, 16, 16});
  rng.fill_normal(x.span(), 2.0f, 3.0f);
  Tensor y;
  for (int i = 0; i < 5; ++i) a->forward(x, y, /*training=*/true);
  Tensor eval_before;
  a->forward(x, eval_before, /*training=*/false);

  std::stringstream buf;
  nn::save_checkpoint(*a, buf);
  auto b = make_net();
  Rng rng2(77);
  b->init(rng2);
  nn::load_checkpoint(*b, buf);
  Tensor eval_after;
  b->forward(x, eval_after, /*training=*/false);
  for (std::int64_t i = 0; i < eval_before.numel(); ++i) {
    ASSERT_NEAR(eval_before[i], eval_after[i], 1e-5);
  }
}

TEST(Serialize, BuffersAreNamedAndAggregated) {
  auto net = make_net();
  const auto bufs = net->buffers();
  ASSERT_FALSE(bufs.empty());
  // Two buffers (mean, var) per BatchNorm layer; names carry the layer path.
  EXPECT_NE(bufs[0].name.find("bn"), std::string::npos);
  EXPECT_NE(bufs[0].name.find("running_mean"), std::string::npos);
}

}  // namespace
}  // namespace minsgd
