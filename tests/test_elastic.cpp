// Elastic data-parallel training: membership, determinism, and soak.
//
// Covers the ElasticCoordinator's option validation (CHECK death tests),
// the two determinism contracts from train/elastic.hpp — a never-resized
// elastic run is bit-equal to the fixed sync trainer, and a shrink at step
// k is bit-equal to a fixed-(world-1) run resumed from the pre-shrink
// state — and the headline robustness property: a shrink -> grow -> shrink
// schedule under injected message loss completes without a full-cluster
// restart and lands on the identical trajectory.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>

#include "comm/fault.hpp"
#include "comm/membership.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "train/elastic.hpp"
#include "train/trainer.hpp"

namespace minsgd {
namespace {

using namespace std::chrono_literals;
using comm::ElasticEvent;
using comm::ElasticEventKind;

data::SynthConfig tiny_data_cfg() {
  data::SynthConfig c;
  c.classes = 4;
  c.resolution = 12;
  c.train_size = 256;
  c.test_size = 128;
  c.noise = 0.4f;
  c.distractor = 0.3f;
  c.seed = 5;
  return c;
}

// Deterministic model (no dropout, no batch norm), as required for exact
// bitwise trajectory comparisons.
std::unique_ptr<nn::Network> det_model() {
  auto net = std::make_unique<nn::Network>("det");
  net->emplace<nn::Conv2d>(3, 8, 3, 1, 1);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2, 2);
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 6 * 6, 4);
  return net;
}

std::function<std::unique_ptr<optim::Optimizer>()> sgd_factory() {
  return [] {
    return std::make_unique<optim::Sgd>(
        optim::SgdConfig{.momentum = 0.9, .weight_decay = 0.0005});
  };
}

train::ElasticOptions elastic_options() {
  train::ElasticOptions o;
  o.local_batch = 16;
  o.initial_world = 3;
  o.max_world = 3;
  o.total_iterations = 24;
  o.train.eval_every = 8;  // weights are what the tests compare
  o.train.detect_divergence = false;  // keep trajectories unconditional
  o.rendezvous_timeout = 20000ms;
  return o;
}

// ---------------- option validation ----------------

TEST(ElasticOptionsDeath, ChecksFireOnBadFields) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto o = elastic_options();
  o.local_batch = 0;
  EXPECT_DEATH(o.validate(), "local_batch");
  o = elastic_options();
  o.max_world = o.initial_world - 1;
  EXPECT_DEATH(o.validate(), "max_world");
  o = elastic_options();
  o.max_reconfig_rounds = 0;
  EXPECT_DEATH(o.validate(), "max_reconfig_rounds");
  o = elastic_options();
  o.round_timeout = 0ms;
  EXPECT_DEATH(o.validate(), "round_timeout");
  o = elastic_options();
  o.events.push_back({4, ElasticEventKind::kLeave, o.max_world});
  EXPECT_DEATH(o.validate(), "event rank");
  o = elastic_options();
  o.events.push_back({-1, ElasticEventKind::kJoin, 0});
  EXPECT_DEATH(o.validate(), "at_iter");
}

TEST(ElasticOptionsDeath, CoordinatorRejectsMalformedView) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  comm::SimCluster cluster(2);
  comm::MembershipView empty;
  EXPECT_DEATH(
      comm::ElasticCoordinator(cluster, empty, {}),
      "empty");
  comm::MembershipView unsorted;
  unsorted.ranks = {1, 0};
  EXPECT_DEATH(
      comm::ElasticCoordinator(cluster, unsorted, {}),
      "ascending");
}

// ---------------- determinism contracts ----------------

TEST(ElasticTrain, NoEventsBitMatchesFixedSyncTrainer) {
  // A run that never resizes must be indistinguishable from the fixed
  // trainer at the same geometry: same shards, same LR (ElasticLrScale
  // returns the base schedule verbatim at the base batch), same update
  // sequence, so bit-identical final weights.
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::StepLr lr(0.02, 7, 0.5);

  auto eo = elastic_options();
  eo.initial_world = 2;
  eo.max_world = 2;
  eo.total_iterations = 0;  // derive from epochs, like the fixed trainer
  eo.train.epochs = 2;
  const auto elastic =
      train::train_sync_elastic(det_model, sgd_factory(), lr, ds, eo);

  train::TrainOptions to = eo.train;
  to.global_batch = eo.local_batch * 2;
  const auto fixed = train::train_sync_data_parallel(
      det_model, sgd_factory(), lr, ds, to, 2, comm::AllreduceAlgo::kRing);

  EXPECT_EQ(elastic.reconfigurations, 0);
  ASSERT_FALSE(elastic.final_weights.empty());
  EXPECT_EQ(elastic.final_weights, fixed.final_weights);
  EXPECT_EQ(elastic.iterations, fixed.iterations);
}

TEST(ElasticTrain, NoEventsOverlapPathBitMatchesFixedOverlapTrainer) {
  // With overlap on, buckets are layer-aligned, so the reference is the
  // fixed trainer at the same overlap configuration (not the serial path,
  // whose fixed-stride buckets reduce in a different grouping).
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);
  auto eo = elastic_options();
  eo.initial_world = 2;
  eo.max_world = 2;
  eo.total_iterations = 0;
  eo.train.epochs = 2;
  eo.train.overlap_comm = true;
  eo.train.bucket_bytes = 4096;
  const auto elastic =
      train::train_sync_elastic(det_model, sgd_factory(), lr, ds, eo);

  train::TrainOptions to = eo.train;
  to.global_batch = eo.local_batch * 2;
  const auto fixed = train::train_sync_data_parallel(
      det_model, sgd_factory(), lr, ds, to, 2, comm::AllreduceAlgo::kRing);
  ASSERT_FALSE(elastic.final_weights.empty());
  EXPECT_EQ(elastic.final_weights, fixed.final_weights);
}

TEST(ElasticTrain, ShrinkMatchesFixedWorldResumedFromPreShrinkState) {
  // Shrink determinism: a 3-member run that loses rank 1 at step k must
  // finish bit-identical to a 2-member elastic run resumed from the
  // 3-member run's state at k (with the LR rule anchored at the original
  // base batch). Survivor shards and LR depend only on the committed view.
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::StepLr lr(0.02, 7, 0.5);
  const std::int64_t k = 6;

  auto shrink = elastic_options();
  shrink.events.push_back({k, ElasticEventKind::kLeave, 1});
  const auto a =
      train::train_sync_elastic(det_model, sgd_factory(), lr, ds, shrink);
  ASSERT_EQ(a.reconfigurations, 1);
  ASSERT_EQ(a.reconfigs[0].at_iter, k);
  EXPECT_EQ(a.reconfigs[0].world, 2);
  EXPECT_EQ(a.reconfigs[0].generation, 1);
  EXPECT_FALSE(a.reconfigs[0].fault_triggered);

  auto prefix = elastic_options();
  prefix.total_iterations = k;
  const auto pre =
      train::train_sync_elastic(det_model, sgd_factory(), lr, ds, prefix);
  ASSERT_FALSE(pre.final_state.empty());

  auto cont = elastic_options();
  cont.initial_world = 2;
  cont.max_world = 2;
  cont.base_global_batch = 16 * 3;  // anchor the LR rule at the original base
  cont.resume_state = pre.final_state;
  const auto b =
      train::train_sync_elastic(det_model, sgd_factory(), lr, ds, cont);

  ASSERT_FALSE(a.final_weights.empty());
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_EQ(a.iterations, b.iterations);
}

// ---------------- joins and fault-injected soak ----------------

train::ElasticOptions soak_options() {
  auto o = elastic_options();
  o.initial_world = 3;
  o.max_world = 4;  // physical rank 3 starts as a standby joiner slot
  o.total_iterations = 24;
  o.events.push_back({6, ElasticEventKind::kLeave, 1});
  o.events.push_back({12, ElasticEventKind::kJoin, 3});
  o.events.push_back({18, ElasticEventKind::kLeave, 0});
  return o;
}

TEST(ElasticTrain, ShrinkGrowShrinkCompletesAndJoinerIsBitExact) {
  // The full schedule: 3 members -> drop one -> admit a cold joiner via the
  // state broadcast -> drop the original leader. Every transition commits
  // in one attempt and training runs to completion without restart.
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);
  const auto r =
      train::train_sync_elastic(det_model, sgd_factory(), lr, ds,
                                soak_options());
  EXPECT_EQ(r.iterations, 24);
  ASSERT_EQ(r.reconfigurations, 3);
  EXPECT_EQ(r.reconfigs[0].world, 2);
  EXPECT_EQ(r.reconfigs[1].world, 3);
  EXPECT_EQ(r.reconfigs[2].world, 2);
  for (const auto& rec : r.reconfigs) {
    EXPECT_GT(rec.pause_ns, 0) << "gen " << rec.generation;
  }
  ASSERT_FALSE(r.result.epochs.empty());
  EXPECT_TRUE(std::isfinite(r.result.epochs.back().train_loss));
}

TEST(ElasticTrain, FaultInjectedSoakMatchesCleanScheduleBitwise) {
  // Message loss under the same join/leave schedule: drops surface as
  // CommTimeout -> reconfigure (same membership, fresh generation) -> the
  // interrupted iteration is retried and stragglers are healed by the
  // state broadcast. Since every completed allreduce is exact regardless
  // of which peers stalled, the healed trajectory is *bit-identical* to
  // the fault-free run of the same schedule — the strongest form of the
  // "loss within tolerance" acceptance bar.
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);

  const auto clean =
      train::train_sync_elastic(det_model, sgd_factory(), lr, ds,
                                soak_options());
  ASSERT_FALSE(clean.final_weights.empty());

  auto faulty_opts = soak_options();
  faulty_opts.recv_timeout = 300ms;  // a lost message costs one retry
  comm::FaultPlan plan;
  plan.seed = 11;
  plan.drop_prob = 0.01;
  auto injector =
      std::make_shared<comm::FaultInjector>(plan, faulty_opts.max_world);
  const auto faulty = train::train_sync_elastic(
      det_model, sgd_factory(), lr, ds, faulty_opts, injector);

  EXPECT_GT(faulty.faults.dropped, 0);
  // The three scheduled transitions plus at least one fault-triggered
  // re-formation.
  EXPECT_GE(faulty.reconfigurations, 4);
  bool any_fault_triggered = false;
  for (const auto& rec : faulty.reconfigs) {
    any_fault_triggered |= rec.fault_triggered;
  }
  EXPECT_TRUE(any_fault_triggered);
  EXPECT_EQ(faulty.iterations, clean.iterations);
  EXPECT_EQ(faulty.final_weights, clean.final_weights);
}

TEST(ElasticTrain, CrashShrinksMembershipAndRunCompletes) {
  // A hard crash (injected RankFailure) is not a scheduled leave: the dead
  // rank self-reports, survivors re-form without it, and training still
  // finishes. The trajectory legitimately differs from the clean run after
  // the crash (the world shrank), so the assertions are structural.
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);

  auto o = elastic_options();
  o.total_iterations = 16;
  o.recv_timeout = 300ms;
  comm::FaultPlan plan;
  plan.crash_rank = 2;
  plan.crash_at_send = 30;
  auto injector = std::make_shared<comm::FaultInjector>(plan, o.max_world);
  const auto r = train::train_sync_elastic(det_model, sgd_factory(), lr, ds,
                                           o, injector);

  EXPECT_EQ(r.faults.crashes, 1);
  EXPECT_GE(r.reconfigurations, 1);
  EXPECT_EQ(r.iterations, 16);
  // The committed view after recovery no longer contains the crashed rank.
  ASSERT_FALSE(r.reconfigs.empty());
  EXPECT_EQ(r.reconfigs.back().world, 2);
  ASSERT_FALSE(r.final_weights.empty());
  ASSERT_FALSE(r.result.epochs.empty());
  EXPECT_TRUE(std::isfinite(r.result.epochs.back().train_loss));
}

TEST(ElasticTrain, RejectsUnsupportedAndBadGeometry) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);
  auto o = elastic_options();
  o.train.compress_one_bit = true;
  EXPECT_THROW(train::train_sync_elastic(det_model, sgd_factory(), lr, ds, o),
               std::invalid_argument);
  o = elastic_options();
  o.local_batch = 512;  // 512 * 3 members > 256 training samples
  EXPECT_THROW(train::train_sync_elastic(det_model, sgd_factory(), lr, ds, o),
               std::invalid_argument);
}

}  // namespace
}  // namespace minsgd
