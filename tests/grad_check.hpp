// Finite-difference gradient checking for layers and networks.
//
// Validates both input gradients (dL/dx) and parameter gradients (dL/dw)
// against central differences of a scalar loss L = sum(w_out * y) with a
// fixed random weighting w_out, which exercises every output element.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace minsgd::testing {

/// Computes L(x) = sum_i w_out[i] * f(x)[i] for the current layer state.
inline double weighted_output(nn::Layer& layer, const Tensor& x,
                              const std::vector<float>& w_out) {
  Tensor y;
  layer.forward(x, y, /*training=*/true);
  double acc = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    acc += static_cast<double>(w_out[static_cast<std::size_t>(i)]) * y[i];
  }
  return acc;
}

struct GradCheckOptions {
  double step = 1e-3;        // finite-difference step
  double rel_tol = 2e-2;     // relative tolerance
  double abs_tol = 1e-4;     // absolute floor for near-zero gradients
  bool check_params = true;  // also check dL/dw for every parameter
  /// Skip input positions with |x| below this: finite differences straddle
  /// the kink of piecewise-linear layers (ReLU, max-pool ties) there.
  double kink_skip = 0.0;
};

/// Runs the check. The layer must be deterministic given the same inputs
/// (dropout with a fixed mask is NOT; skip such layers or test specially).
inline void check_gradients(nn::Layer& layer, const Shape& input_shape,
                            std::uint64_t seed = 123,
                            GradCheckOptions opt = {}) {
  Rng rng(seed);
  Tensor x(input_shape);
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  layer.init(rng);

  Tensor y;
  layer.forward(x, y, /*training=*/true);
  std::vector<float> w_out(static_cast<std::size_t>(y.numel()));
  Rng wrng(seed ^ 0xabcdef);
  wrng.fill_uniform(w_out, -1.0f, 1.0f);

  // Analytic gradients.
  Tensor dy(y.shape());
  for (std::int64_t i = 0; i < dy.numel(); ++i) {
    dy[i] = w_out[static_cast<std::size_t>(i)];
  }
  for (auto& p : layer.params()) p.grad->zero();
  Tensor dx;
  layer.backward(x, y, dy, dx);

  auto expect_close = [&](double analytic, double numeric,
                          const std::string& what) {
    const double denom =
        std::max({std::fabs(analytic), std::fabs(numeric), 1.0});
    const double rel = std::fabs(analytic - numeric) / denom;
    EXPECT_TRUE(rel < opt.rel_tol ||
                std::fabs(analytic - numeric) < opt.abs_tol)
        << what << ": analytic=" << analytic << " numeric=" << numeric;
  };

  // Input gradient, sampled positions (all positions for small tensors).
  const std::int64_t nx = x.numel();
  const std::int64_t stride_x = std::max<std::int64_t>(1, nx / 64);
  for (std::int64_t i = 0; i < nx; i += stride_x) {
    if (std::fabs(x[i]) < opt.kink_skip) continue;
    const float orig = x[i];
    x[i] = orig + static_cast<float>(opt.step);
    const double lp = weighted_output(layer, x, w_out);
    x[i] = orig - static_cast<float>(opt.step);
    const double lm = weighted_output(layer, x, w_out);
    x[i] = orig;
    expect_close(dx[i], (lp - lm) / (2 * opt.step),
                 "dx[" + std::to_string(i) + "]");
  }

  if (!opt.check_params) return;
  for (auto& p : layer.params()) {
    const std::int64_t np = p.value->numel();
    const std::int64_t stride_p = std::max<std::int64_t>(1, np / 48);
    for (std::int64_t i = 0; i < np; i += stride_p) {
      float& w = (*p.value)[i];
      const float orig = w;
      w = orig + static_cast<float>(opt.step);
      const double lp = weighted_output(layer, x, w_out);
      w = orig - static_cast<float>(opt.step);
      const double lm = weighted_output(layer, x, w_out);
      w = orig;
      expect_close((*p.grad)[i], (lp - lm) / (2 * opt.step),
                   p.name + "[" + std::to_string(i) + "]");
    }
  }
  // Restore a clean forward so subsequent assertions see consistent state.
  layer.forward(x, y, /*training=*/true);
}

}  // namespace minsgd::testing
