#include <gtest/gtest.h>

#include <cmath>

#include "perf/cost_model.hpp"
#include "perf/energy.hpp"
#include "perf/specs.hpp"

namespace minsgd {
namespace {

using namespace minsgd::perf;

// Paper constants.
constexpr std::int64_t kImageNet = 1'280'000;
constexpr std::int64_t kResNetFlops = 7'700'000'000;
constexpr std::int64_t kResNetParams = 25'000'000;

WorkloadSpec resnet_workload(std::int64_t epochs = 90) {
  return {kResNetFlops, kResNetParams, kImageNet, epochs, 3.0};
}

TEST(Specs, PaperQuotedPeaks) {
  EXPECT_DOUBLE_EQ(nvidia_p100().peak_flops, 10.6e12);
  EXPECT_DOUBLE_EQ(intel_knl7250().peak_flops, 6.0e12);
}

TEST(Specs, Table11Constants) {
  EXPECT_DOUBLE_EQ(mellanox_fdr_ib().alpha, 0.7e-6);
  EXPECT_DOUBLE_EQ(mellanox_fdr_ib().beta, 0.2e-9);
  EXPECT_DOUBLE_EQ(intel_qdr_ib().alpha, 1.2e-6);
  EXPECT_DOUBLE_EQ(intel_qdr_ib().beta, 0.3e-9);
  EXPECT_DOUBLE_EQ(intel_10gbe().alpha, 7.2e-6);
  EXPECT_DOUBLE_EQ(intel_10gbe().beta, 0.9e-9);
}

TEST(Specs, PaperP100IsRoughlyTwoKnls) {
  // "the power of one P100 GPU is roughly equal to two KNLs"
  const double ratio = nvidia_p100().sustained_flops() /
                       intel_knl7250().sustained_flops();
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 4.5);
}

TEST(Energy, TableMatchesPaperTable12) {
  const auto& t = energy_table_45nm();
  ASSERT_EQ(t.size(), 7u);
  EXPECT_EQ(t[0].operation, "32 bit int add");
  EXPECT_DOUBLE_EQ(t[0].picojoules, 0.1);
  EXPECT_EQ(t.back().operation, "32 bit DRAM access");
  EXPECT_DOUBLE_EQ(t.back().picojoules, 640.0);
}

TEST(Energy, DramDominatesFloatOps) {
  EXPECT_GT(energy_pj_dram_access() / energy_pj_float_mul(), 100.0);
}

TEST(Energy, IterationEnergySplitsComputeAndComm) {
  const auto e = estimate_iteration_energy(1'000'000, 1000, 2);
  EXPECT_GT(e.compute_j, 0.0);
  EXPECT_GT(e.comm_j, 0.0);
  EXPECT_NEAR(e.compute_j, 0.5e6 * (0.9 + 3.7) * 1e-12, 1e-12);
  EXPECT_NEAR(e.comm_j, 1000.0 * 2 * 2 * 640.0 * 1e-12, 1e-15);
}

TEST(CostModel, AllreduceLogTreeFormula) {
  NetworkSpec net{"t", 1e-6, 1e-9};
  EXPECT_DOUBLE_EQ(allreduce_time_logtree(net, 1, 100), 0.0);
  // log2(8)=3 hops of (alpha + V*beta).
  EXPECT_NEAR(allreduce_time_logtree(net, 8, 1000), 3 * (1e-6 + 1e-6), 1e-12);
}

TEST(CostModel, AllreduceRingFormula) {
  NetworkSpec net{"t", 1e-6, 1e-9};
  EXPECT_DOUBLE_EQ(allreduce_time_ring(net, 1, 100), 0.0);
  const double expect = 2 * 3 * 1e-6 + 2.0 * 3 / 4 * 1000 * 1e-9;
  EXPECT_NEAR(allreduce_time_ring(net, 4, 1000), expect, 1e-12);
}

TEST(CostModel, Table2IterationCounts) {
  const auto dev = nvidia_p100();
  const auto net = mellanox_fdr_ib();
  WorkloadSpec w = resnet_workload(100);
  for (const auto& [batch, expected] :
       std::vector<std::pair<std::int64_t, std::int64_t>>{
           {512, 250'000}, {1024, 125'000}, {2048, 62'500},
           {4096, 31'250}, {8192, 15'625}, {1'280'000, 100}}) {
    RunSpec run{batch, 1, CommModel::kLogTree};
    EXPECT_EQ(project_training(w, run, dev, net).iterations, expected)
        << "batch " << batch;
  }
}

TEST(CostModel, ConstantIterationTimeUnderWeakScaling) {
  // Table 2's premise: fixed local batch, growing nodes -> t_comp constant,
  // t_comm grows only logarithmically.
  const auto dev = nvidia_p100();
  const auto net = mellanox_fdr_ib();
  WorkloadSpec w = resnet_workload(100);
  const auto p1 = project_training(w, {512, 1}, dev, net);
  const auto p16 = project_training(w, {512 * 16, 16}, dev, net);
  EXPECT_DOUBLE_EQ(p1.t_comp, p16.t_comp);
  EXPECT_GT(p16.t_comm, p1.t_comm);
  // Total time shrinks nearly linearly.
  EXPECT_LT(p16.total_seconds(), p1.total_seconds() / 10.0);
}

TEST(CostModel, CommVolumeInverseInBatch) {
  // |W| * E * n / B: doubling B halves total bytes (Figure 10).
  const auto dev = intel_knl7250();
  const auto net = intel_qdr_ib();
  WorkloadSpec w = resnet_workload(90);
  const auto a = project_training(w, {8192, 256}, dev, net);
  const auto b = project_training(w, {16384, 256}, dev, net);
  EXPECT_NEAR(static_cast<double>(a.comm_bytes) / b.comm_bytes, 2.0, 0.01);
  EXPECT_NEAR(static_cast<double>(a.messages) / b.messages, 2.0, 0.01);
}

TEST(CostModel, PaperHeadline2048KnlTwentyMinutes) {
  // Table 9: ResNet-50, B=32K, 2048 KNLs, 90 epochs -> 20 minutes.
  // The analytic model with the paper's own constants must land within 2x.
  WorkloadSpec w = resnet_workload(90);
  RunSpec run{32768, 2048, CommModel::kLogTree};
  const auto p = project_training(w, run, intel_knl7250(), intel_qdr_ib());
  const double minutes = p.total_seconds() / 60.0;
  EXPECT_GT(minutes, 10.0);
  EXPECT_LT(minutes, 40.0);
}

TEST(CostModel, PaperFacebookOneHour) {
  // Table 9: ResNet-50, B=8K, 256 P100s, 90 epochs -> 1 hour.
  WorkloadSpec w = resnet_workload(90);
  RunSpec run{8192, 256, CommModel::kLogTree};
  const auto p = project_training(w, run, nvidia_p100(), mellanox_fdr_ib());
  const double minutes = p.total_seconds() / 60.0;
  EXPECT_GT(minutes, 30.0);
  EXPECT_LT(minutes, 120.0);
}

TEST(CostModel, SingleM40TakesWeeks) {
  // Intro: 90-epoch ResNet-50 on one M40 takes 14 days.
  WorkloadSpec w = resnet_workload(90);
  RunSpec run{512, 1};
  const auto p = project_training(w, run, nvidia_m40(), mellanox_fdr_ib());
  const double days = p.total_seconds() / 86400.0;
  EXPECT_GT(days, 7.0);
  EXPECT_LT(days, 28.0);
}

TEST(CostModel, WeakScalingStaysHigh) {
  // ResNet-50 at local batch 16 on KNL/QDR: weak scaling efficiency must
  // stay above 75% out to 2048 nodes (the Table 2/9 argument).
  WorkloadSpec w = resnet_workload(90);
  for (int nodes : {2, 16, 256, 2048}) {
    const double eff = weak_scaling_efficiency(w, intel_knl7250(),
                                               intel_qdr_ib(), 16, nodes);
    EXPECT_GT(eff, 0.75) << nodes << " nodes";
    EXPECT_LE(eff, 1.0 + 1e-9);
  }
}

TEST(CostModel, WeakScalingMonotoneInNodes) {
  WorkloadSpec w = resnet_workload(90);
  double prev = 1.0;
  for (int nodes : {2, 8, 64, 512}) {
    const double eff = weak_scaling_efficiency(w, intel_knl7250(),
                                               intel_qdr_ib(), 32, nodes);
    EXPECT_LE(eff, prev + 1e-9);
    prev = eff;
  }
}

TEST(CostModel, StrongScalingAtFixedBatchCollapsesWithNodes) {
  // Fixed global batch 8192: as nodes grow, each node's compute shrinks
  // while the allreduce does not, so strong-scaling efficiency collapses.
  // Growing the batch with the nodes (weak scaling at a healthy local
  // batch) keeps efficiency high — the paper's whole strategy.
  WorkloadSpec w = resnet_workload(90);
  double prev = 1.1;
  for (int nodes : {8, 64, 512}) {
    const double eff = strong_scaling_efficiency(w, intel_knl7250(),
                                                 intel_qdr_ib(), 8192, nodes);
    EXPECT_LT(eff, prev);
    prev = eff;
  }
  // At 512 nodes: 16 images per node under strong scaling vs 512 under
  // weak scaling at the same node count.
  const double strong = strong_scaling_efficiency(
      w, intel_knl7250(), intel_qdr_ib(), 8192, 512);
  const double weak = weak_scaling_efficiency(w, intel_knl7250(),
                                              intel_qdr_ib(), 512, 512);
  EXPECT_LT(strong, weak);
}

TEST(CostModel, ScalingEfficiencyRejectsBadInput) {
  WorkloadSpec w = resnet_workload(90);
  EXPECT_THROW(strong_scaling_efficiency(w, intel_knl7250(), intel_qdr_ib(),
                                         100, 3),
               std::invalid_argument);
}

TEST(CostModel, RejectsBadInput) {
  WorkloadSpec w = resnet_workload();
  EXPECT_THROW(
      project_training(w, {0, 1}, nvidia_p100(), mellanox_fdr_ib()),
      std::invalid_argument);
  EXPECT_THROW(
      project_training(w, {100, 3}, nvidia_p100(), mellanox_fdr_ib()),
      std::invalid_argument);
  WorkloadSpec bad = w;
  bad.params = 0;
  EXPECT_THROW(
      project_training(bad, {512, 1}, nvidia_p100(), mellanox_fdr_ib()),
      std::invalid_argument);
  EXPECT_THROW(allreduce_time_logtree(mellanox_fdr_ib(), 0, 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace minsgd
