// Cross-module property tests: algebraic invariants the implementation
// must satisfy regardless of configuration.
#include <gtest/gtest.h>

#include "comm/cluster.hpp"
#include "data/synthetic.hpp"
#include "nn/conv.hpp"
#include "nn/loss.hpp"
#include "optim/lars.hpp"
#include "optim/schedule.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace minsgd {
namespace {

// ---------------- LARS invariances ----------------

TEST(LarsProperties, TrustRatioScaleInvariant) {
  // Scaling w and g by the same c > 0 leaves the local LR unchanged
  // (with weight decay 0): LARS adapts to geometry, not magnitude.
  for (float c : {0.5f, 2.0f, 100.0f}) {
    Tensor w1({3}, std::vector<float>{1, 2, 2});
    Tensor g1({3}, std::vector<float>{0.3f, 0.0f, 0.4f});
    Tensor w2 = w1, g2 = g1;
    scale(c, w2.span());
    scale(c, g2.span());
    std::vector<nn::ParamRef> p1{{"a", &w1, &g1, true}};
    std::vector<nn::ParamRef> p2{{"a", &w2, &g2, true}};
    optim::Lars l1({.trust_coeff = 0.02, .momentum = 0.0,
                    .weight_decay = 0.0, .eps = 0.0});
    optim::Lars l2 = l1;
    l1.step(p1, 0.1);
    l2.step(p2, 0.1);
    EXPECT_NEAR(l1.last_local_lrs()[0], l2.last_local_lrs()[0], 1e-6)
        << "c = " << c;
  }
}

TEST(LarsProperties, UpdateDirectionMatchesGradient) {
  // With momentum 0 and wd 0, the update must be antiparallel to g.
  Rng rng(5);
  Tensor w({16}), g({16});
  rng.fill_normal(w.span(), 0.0f, 1.0f);
  rng.fill_normal(g.span(), 0.0f, 1.0f);
  Tensor w_before = w;
  std::vector<nn::ParamRef> p{{"a", &w, &g, true}};
  optim::Lars lars({.trust_coeff = 0.01, .momentum = 0.0,
                    .weight_decay = 0.0});
  lars.step(p, 0.5);
  // delta = w_before - w must be a positive multiple of g.
  std::vector<float> delta(16);
  for (int i = 0; i < 16; ++i) delta[i] = w_before[i] - w[i];
  const double cos = dot(delta, g.span()) /
                     (l2_norm(delta) * l2_norm(g.span()));
  EXPECT_NEAR(cos, 1.0, 1e-5);
}

// ---------------- softmax-CE invariances ----------------

TEST(LossProperties, ShiftInvariantPerRow) {
  nn::SoftmaxCrossEntropy loss;
  Rng rng(7);
  Tensor logits({3, 5});
  rng.fill_normal(logits.span(), 0.0f, 2.0f);
  std::vector<std::int32_t> labels{0, 2, 4};
  Tensor grad1, grad2;
  const auto r1 = loss.forward_backward(logits, labels, &grad1);
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t c = 0; c < 5; ++c) {
      logits.at(r, c) += 37.5f;  // constant shift per row
    }
  }
  const auto r2 = loss.forward_backward(logits, labels, &grad2);
  EXPECT_NEAR(r1.loss, r2.loss, 1e-4);
  for (std::int64_t i = 0; i < grad1.numel(); ++i) {
    EXPECT_NEAR(grad1[i], grad2[i], 1e-5);
  }
}

TEST(LossProperties, LossLowerBoundedByZero) {
  nn::SoftmaxCrossEntropy loss;
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    Tensor logits({4, 6});
    rng.fill_normal(logits.span(), 0.0f, 5.0f);
    std::vector<std::int32_t> labels;
    for (int i = 0; i < 4; ++i) {
      labels.push_back(static_cast<std::int32_t>(rng.uniform_int(6)));
    }
    EXPECT_GE(loss.forward_backward(logits, labels, nullptr).loss, 0.0);
  }
}

// ---------------- conv algebra ----------------

TEST(ConvProperties, LinearInInputWithoutBias) {
  nn::Conv2d conv(2, 3, 3, 1, 1, /*bias=*/false);
  Rng rng(13);
  conv.init(rng);
  Tensor x({1, 2, 5, 5});
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor y1, y2;
  conv.forward(x, y1, false);
  scale(2.5f, x.span());
  conv.forward(x, y2, false);
  for (std::int64_t i = 0; i < y1.numel(); ++i) {
    EXPECT_NEAR(2.5f * y1[i], y2[i], 1e-4);
  }
}

TEST(ConvProperties, GroupedConvEqualsTwoSplitConvs) {
  // A groups=2 conv must equal running each half independently.
  const std::int64_t c_in = 4, c_out = 6, k = 3;
  nn::Conv2d grouped(c_in, c_out, k, 1, 1, /*bias=*/false, /*groups=*/2);
  Rng rng(17);
  grouped.init(rng);

  nn::Conv2d half_a(c_in / 2, c_out / 2, k, 1, 1, false);
  nn::Conv2d half_b(c_in / 2, c_out / 2, k, 1, 1, false);
  // Copy the grouped weights into the halves (OIHW; group-major O).
  const std::int64_t per_half = (c_out / 2) * (c_in / 2) * k * k;
  copy(grouped.weight().span().subspan(0, per_half), half_a.weight().span());
  copy(grouped.weight().span().subspan(per_half, per_half),
       half_b.weight().span());

  Tensor x({2, c_in, 6, 6});
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor xa({2, c_in / 2, 6, 6}), xb({2, c_in / 2, 6, 6});
  for (std::int64_t n = 0; n < 2; ++n) {
    for (std::int64_t c = 0; c < c_in / 2; ++c) {
      for (std::int64_t i = 0; i < 36; ++i) {
        xa.data()[(n * 2 + c) * 36 + i] = x.data()[(n * 4 + c) * 36 + i];
        xb.data()[(n * 2 + c) * 36 + i] = x.data()[(n * 4 + 2 + c) * 36 + i];
      }
    }
  }
  Tensor y, ya, yb;
  grouped.forward(x, y, false);
  half_a.forward(xa, ya, false);
  half_b.forward(xb, yb, false);
  for (std::int64_t n = 0; n < 2; ++n) {
    for (std::int64_t c = 0; c < c_out / 2; ++c) {
      for (std::int64_t i = 0; i < 36; ++i) {
        EXPECT_NEAR(y.data()[(n * 6 + c) * 36 + i],
                    ya.data()[(n * 3 + c) * 36 + i], 1e-4);
        EXPECT_NEAR(y.data()[(n * 6 + 3 + c) * 36 + i],
                    yb.data()[(n * 3 + c) * 36 + i], 1e-4);
      }
    }
  }
}

// ---------------- collective equivalences ----------------

class CollectiveEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveEquivalence, ReduceThenBroadcastEqualsAllreduce) {
  const int world = GetParam();
  comm::SimCluster cluster(world);
  cluster.run([&](comm::Communicator& c) {
    Rng rng(static_cast<std::uint64_t>(c.rank()) + 1);
    std::vector<float> a(33);
    rng.fill_uniform(a, -1.0f, 1.0f);
    std::vector<float> b = a;
    c.allreduce_sum(a, comm::AllreduceAlgo::kRing);
    c.reduce_sum(b, 0);
    c.broadcast(b, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_NEAR(a[i], b[i], 1e-4);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Worlds, CollectiveEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8));

// ---------------- schedules ----------------

class PolyMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PolyMonotone, NonIncreasing) {
  optim::PolyLr s(1.0, 200, GetParam());
  for (int i = 1; i <= 200; ++i) {
    EXPECT_LE(s.lr(i), s.lr(i - 1)) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Powers, PolyMonotone,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

// ---------------- dataset class structure ----------------

TEST(DatasetProperties, SamplesCorrelateWithOwnPrototype) {
  data::SynthConfig cfg;
  cfg.classes = 4;
  cfg.resolution = 12;
  cfg.train_size = 512;
  cfg.test_size = 64;
  cfg.noise = 0.5f;
  cfg.max_shift = 0;  // no shift so correlation is direct
  data::SyntheticImageNet ds(cfg);
  std::vector<float> img(static_cast<std::size_t>(ds.image_numel()));
  int checked = 0;
  for (std::int64_t i = 0; i < 64; ++i) {
    const auto label = ds.get_train(i, img);
    double own = 0.0;
    double other_max = -1e30;
    for (std::int64_t c = 0; c < cfg.classes; ++c) {
      const auto& proto = ds.prototype(c);
      const double corr =
          dot(img, std::span<const float>(proto.data(),
                                          static_cast<std::size_t>(
                                              proto.numel())));
      if (c == label) own = corr;
      else other_max = std::max(other_max, corr);
    }
    if (own > other_max) ++checked;
  }
  // The signal must dominate for the vast majority of samples.
  EXPECT_GE(checked, 55);
}

}  // namespace
}  // namespace minsgd
