#include <gtest/gtest.h>

#include "grad_check.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/network.hpp"
#include "nn/norm.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"

namespace minsgd {
namespace {

std::unique_ptr<nn::Network> small_net() {
  auto net = std::make_unique<nn::Network>("small");
  net->emplace<nn::Conv2d>(2, 4, 3, 1, 1);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2, 2);
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(4 * 3 * 3, 5);
  return net;
}

TEST(Network, OutputShapeComposes) {
  auto net = small_net();
  EXPECT_EQ(net->output_shape({7, 2, 6, 6}), Shape({7, 5}));
}

TEST(Network, ForwardRuns) {
  auto net = small_net();
  Rng rng(1);
  net->init(rng);
  Tensor x({2, 2, 6, 6});
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor y;
  net->forward(x, y, false);
  EXPECT_EQ(y.shape(), Shape({2, 5}));
}

TEST(Network, GradCheckWholeStack) {
  auto net = small_net();
  testing::check_gradients(*net, {2, 2, 6, 6});
}

TEST(Network, EmptyForwardThrows) {
  nn::Network net;
  Tensor x({1, 2}), y;
  EXPECT_THROW(net.forward(x, y, false), std::logic_error);
}

TEST(Network, BackwardBeforeForwardThrows) {
  auto net = small_net();
  Tensor x({1, 2, 6, 6}), y({1, 5}), dy({1, 5}), dx;
  EXPECT_THROW(net->backward(x, y, dy, dx), std::logic_error);
}

TEST(Network, AddNullThrows) {
  nn::Network net;
  EXPECT_THROW(net.add(nullptr), std::invalid_argument);
}

TEST(Network, ParamNamesArePrefixed) {
  auto net = small_net();
  const auto params = net->params();
  ASSERT_FALSE(params.empty());
  EXPECT_NE(params[0].name.find("small.0.conv"), std::string::npos);
  EXPECT_NE(params[0].name.find("weight"), std::string::npos);
}

TEST(Network, NumParamsMatchesSum) {
  auto net = small_net();
  // conv: 4*2*9+4 = 76; linear: 36*5+5 = 185.
  EXPECT_EQ(net->num_params(), 76 + 185);
}

TEST(Network, ZeroGradClearsAll) {
  auto net = small_net();
  Rng rng(2);
  net->init(rng);
  for (auto& p : net->params()) p.grad->fill(1.0f);
  net->zero_grad();
  for (auto& p : net->params()) {
    for (std::int64_t i = 0; i < p.grad->numel(); ++i) {
      ASSERT_EQ((*p.grad)[i], 0.0f);
    }
  }
}

TEST(Network, FlattenUnflattenParamsRoundTrip) {
  auto net = small_net();
  Rng rng(3);
  net->init(rng);
  auto flat = net->flatten_params();
  EXPECT_EQ(static_cast<std::int64_t>(flat.size()), net->num_params());
  // Perturb, write back, read again.
  for (auto& v : flat) v += 1.0f;
  net->unflatten_params(flat);
  auto flat2 = net->flatten_params();
  EXPECT_EQ(flat, flat2);
}

TEST(Network, UnflattenRejectsWrongSize) {
  auto net = small_net();
  Rng rng(3);
  net->init(rng);
  std::vector<float> too_small(10);
  EXPECT_THROW(net->unflatten_params(too_small), std::invalid_argument);
  std::vector<float> too_big(static_cast<std::size_t>(net->num_params()) + 1);
  EXPECT_THROW(net->unflatten_grads(too_big), std::invalid_argument);
}

TEST(Network, FlopsSumAcrossLayers) {
  auto net = small_net();
  const Shape in{1, 2, 6, 6};
  // conv on 6x6 out: 2*4*2*9*36 ; linear: 2*36*5
  EXPECT_EQ(net->flops(in), 2 * 4 * 2 * 9 * 36 + 2 * 36 * 5);
}

TEST(Network, DeterministicInitGivenSeed) {
  auto a = small_net();
  auto b = small_net();
  Rng ra(9), rb(9);
  a->init(ra);
  b->init(rb);
  EXPECT_EQ(a->flatten_params(), b->flatten_params());
}

// ---------------- ResidualBlock ----------------

std::unique_ptr<nn::ResidualBlock> identity_block(std::int64_t c) {
  auto branch = std::make_unique<nn::Network>("b");
  branch->emplace<nn::Conv2d>(c, c, 3, 1, 1, false);
  branch->emplace<nn::BatchNorm2d>(c);
  return std::make_unique<nn::ResidualBlock>(std::move(branch));
}

TEST(ResidualBlock, IdentityShortcutShape) {
  auto blk = identity_block(4);
  EXPECT_EQ(blk->output_shape({2, 4, 5, 5}), Shape({2, 4, 5, 5}));
}

TEST(ResidualBlock, ZeroBranchPassesReluOfInput) {
  auto branch = std::make_unique<nn::Network>("b");
  branch->emplace<nn::Conv2d>(2, 2, 1, 1, 0, false);
  auto blk = std::make_unique<nn::ResidualBlock>(std::move(branch));
  // Zero conv weights: y = relu(0 + x).
  Rng rng(4);
  blk->init(rng);
  for (auto& p : blk->params()) p.value->zero();
  Tensor x({1, 2, 2, 2}, std::vector<float>{-1, 2, -3, 4, 5, -6, 7, -8});
  Tensor y;
  blk->forward(x, y, false);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(y[i], std::max(0.0f, x[i]));
  }
}

TEST(ResidualBlock, GradCheckIdentity) {
  auto blk = identity_block(3);
  testing::check_gradients(*blk, {2, 3, 4, 4}, /*seed=*/31,
                           {.step = 1e-3, .rel_tol = 3e-2, .abs_tol = 2e-4});
}

TEST(ResidualBlock, GradCheckProjection) {
  auto branch = std::make_unique<nn::Network>("b");
  branch->emplace<nn::Conv2d>(2, 4, 3, 2, 1, false);
  branch->emplace<nn::BatchNorm2d>(4);
  auto shortcut = std::make_unique<nn::Network>("s");
  shortcut->emplace<nn::Conv2d>(2, 4, 1, 2, 0, false);
  shortcut->emplace<nn::BatchNorm2d>(4);
  nn::ResidualBlock blk(std::move(branch), std::move(shortcut));
  testing::check_gradients(blk, {2, 2, 4, 4}, /*seed=*/33,
                           {.step = 1e-3, .rel_tol = 3e-2, .abs_tol = 2e-4});
}

TEST(ResidualBlock, MismatchedShapesThrow) {
  auto branch = std::make_unique<nn::Network>("b");
  branch->emplace<nn::Conv2d>(2, 4, 3, 1, 1, false);  // changes channels
  nn::ResidualBlock blk(std::move(branch));           // identity shortcut
  EXPECT_THROW(blk.output_shape({1, 2, 4, 4}), std::invalid_argument);
}

TEST(ResidualBlock, NullBranchThrows) {
  EXPECT_THROW(nn::ResidualBlock(nullptr), std::invalid_argument);
}

TEST(ResidualBlock, ParamsIncludeShortcut) {
  auto branch = std::make_unique<nn::Network>("b");
  branch->emplace<nn::Conv2d>(2, 4, 3, 1, 1, false);
  auto shortcut = std::make_unique<nn::Network>("s");
  shortcut->emplace<nn::Conv2d>(2, 4, 1, 1, 0, false);
  nn::ResidualBlock blk(std::move(branch), std::move(shortcut));
  EXPECT_EQ(blk.params().size(), 2u);
}

}  // namespace
}  // namespace minsgd
