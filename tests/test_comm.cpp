#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <mutex>
#include <numeric>
#include <span>
#include <tuple>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/membership.hpp"
#include "tensor/rng.hpp"

namespace minsgd {
namespace {

using comm::AllreduceAlgo;
using comm::Communicator;
using comm::SimCluster;

TEST(SimCluster, RejectsNonPositiveWorld) {
  EXPECT_THROW(SimCluster(0), std::invalid_argument);
  EXPECT_THROW(SimCluster(-3), std::invalid_argument);
}

TEST(SimCluster, RunsEveryRank) {
  SimCluster cluster(5);
  std::vector<int> seen(5, 0);
  std::mutex mu;
  cluster.run([&](Communicator& comm) {
    std::lock_guard lk(mu);
    seen[static_cast<std::size_t>(comm.rank())] = 1;
    EXPECT_EQ(comm.world(), 5);
  });
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0), 5);
}

TEST(SimCluster, PropagatesRankExceptions) {
  SimCluster cluster(3);
  EXPECT_THROW(cluster.run([](Communicator& comm) {
    if (comm.rank() == 1) throw std::runtime_error("boom");
  }),
               std::runtime_error);
}

TEST(PointToPoint, SendRecvDeliversPayload) {
  SimCluster cluster(2);
  cluster.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<float> msg{1.5f, -2.5f};
      comm.send(1, 7, msg);
    } else {
      const auto got = comm.recv(0, 7);
      ASSERT_EQ(got.size(), 2u);
      EXPECT_EQ(got[0], 1.5f);
      EXPECT_EQ(got[1], -2.5f);
    }
  });
}

TEST(PointToPoint, TagsDisambiguate) {
  SimCluster cluster(2);
  cluster.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<float>{1.0f});
      comm.send(1, 2, std::vector<float>{2.0f});
    } else {
      // Receive in reverse tag order.
      EXPECT_EQ(comm.recv(0, 2)[0], 2.0f);
      EXPECT_EQ(comm.recv(0, 1)[0], 1.0f);
    }
  });
}

TEST(PointToPoint, FifoWithinChannel) {
  SimCluster cluster(2);
  cluster.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        comm.send(1, 0, std::vector<float>{static_cast<float>(i)});
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(comm.recv(0, 0)[0], static_cast<float>(i));
      }
    }
  });
}

TEST(PointToPoint, SelfSendThrows) {
  SimCluster cluster(2);
  EXPECT_THROW(cluster.run([](Communicator& comm) {
    comm.send(comm.rank(), 0, std::vector<float>{1.0f});
  }),
               std::invalid_argument);
}

TEST(Barrier, AllRanksPass) {
  SimCluster cluster(8);
  std::atomic<int> before{0}, after{0};
  cluster.run([&](Communicator& comm) {
    before.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(before.load(), 8);  // nobody passes until everyone arrives
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 8);
}

// ---------------- broadcast / reduce ----------------

class BroadcastWorlds : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastWorlds, EveryRankGetsRootData) {
  const int world = GetParam();
  SimCluster cluster(world);
  for (int root = 0; root < std::min(world, 3); ++root) {
    cluster.run([&](Communicator& comm) {
      std::vector<float> data(17, comm.rank() == root ? 42.0f : -1.0f);
      comm.broadcast(data, root);
      for (float v : data) EXPECT_EQ(v, 42.0f);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, BroadcastWorlds,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

class ReduceWorlds : public ::testing::TestWithParam<int> {};

TEST_P(ReduceWorlds, RootHoldsSum) {
  const int world = GetParam();
  SimCluster cluster(world);
  cluster.run([&](Communicator& comm) {
    std::vector<float> data(5, static_cast<float>(comm.rank() + 1));
    comm.reduce_sum(data, 0);
    if (comm.rank() == 0) {
      const float expect = static_cast<float>(world * (world + 1) / 2);
      for (float v : data) EXPECT_EQ(v, expect);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Worlds, ReduceWorlds,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 9, 16));

// ---------------- allreduce (all algorithms x world sizes) ----------------

class AllreduceMatrix
    : public ::testing::TestWithParam<std::tuple<AllreduceAlgo, int, int>> {};

TEST_P(AllreduceMatrix, MatchesSequentialSum) {
  const auto [algo, world, n] = GetParam();
  SimCluster cluster(world);
  // Expected: elementwise sum of every rank's deterministic vector.
  std::vector<std::vector<float>> inputs(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    Rng rng(static_cast<std::uint64_t>(r) * 77 + 1);
    inputs[static_cast<std::size_t>(r)].resize(static_cast<std::size_t>(n));
    rng.fill_uniform(inputs[static_cast<std::size_t>(r)], -1.0f, 1.0f);
  }
  std::vector<float> expected(static_cast<std::size_t>(n), 0.0f);
  for (const auto& in : inputs) {
    for (std::size_t i = 0; i < expected.size(); ++i) expected[i] += in[i];
  }
  cluster.run([&](Communicator& comm) {
    auto data = inputs[static_cast<std::size_t>(comm.rank())];
    comm.allreduce_sum(data, algo);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(data[i], expected[i], 1e-4)
          << comm::to_string(algo) << " world=" << world << " i=" << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AlgoWorldSize, AllreduceMatrix,
    ::testing::Combine(
        ::testing::Values(AllreduceAlgo::kStar, AllreduceAlgo::kRing,
                          AllreduceAlgo::kTree,
                          AllreduceAlgo::kRecursiveHalving),
        ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 17),
        ::testing::Values(1, 5, 64, 1000)));

class AllreduceStarBaseline : public ::testing::TestWithParam<int> {};

// Every algorithm must agree with the star baseline on the same inputs —
// the direct pairwise check, complementing the sequential-sum oracle above.
// Odd worlds (3, 5, 7) stress the non-power-of-two paths of ring/tree/RHD;
// world=1 must be a no-op for all of them.
TEST_P(AllreduceStarBaseline, AllAlgosMatchStarResult) {
  const int world = GetParam();
  const int n = 129;  // not divisible by any of the tested worlds
  std::vector<std::vector<float>> inputs(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    Rng rng(static_cast<std::uint64_t>(r) * 31 + 9);
    inputs[static_cast<std::size_t>(r)].resize(n);
    rng.fill_uniform(inputs[static_cast<std::size_t>(r)], -2.0f, 2.0f);
  }
  auto run_algo = [&](AllreduceAlgo algo) {
    SimCluster cluster(world);
    std::vector<float> rank0_out;
    std::mutex mu;
    cluster.run([&](Communicator& comm) {
      auto data = inputs[static_cast<std::size_t>(comm.rank())];
      comm.allreduce_sum(data, algo);
      if (comm.rank() == 0) {
        std::lock_guard lk(mu);
        rank0_out = std::move(data);
      }
    });
    return rank0_out;
  };
  const auto star = run_algo(AllreduceAlgo::kStar);
  ASSERT_EQ(star.size(), static_cast<std::size_t>(n));
  for (const auto algo :
       {AllreduceAlgo::kRing, AllreduceAlgo::kTree,
        AllreduceAlgo::kRecursiveHalving}) {
    const auto got = run_algo(algo);
    ASSERT_EQ(got.size(), star.size()) << comm::to_string(algo);
    for (std::size_t i = 0; i < star.size(); ++i) {
      // Summation order differs between algorithms; values must agree to
      // float rounding.
      ASSERT_NEAR(got[i], star[i], 1e-4)
          << comm::to_string(algo) << " world=" << world << " i=" << i;
    }
    if (world == 1) {
      // With one rank no algorithm may touch the data at all.
      EXPECT_EQ(got, inputs[0]) << comm::to_string(algo);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, AllreduceStarBaseline,
                         ::testing::Values(1, 3, 5, 7));

TEST(Allreduce, RepeatedCollectivesStayConsistent) {
  SimCluster cluster(4);
  cluster.run([](Communicator& comm) {
    for (int round = 0; round < 20; ++round) {
      std::vector<float> data(8, 1.0f);
      comm.allreduce_sum(data, AllreduceAlgo::kRing);
      for (float v : data) ASSERT_EQ(v, 4.0f);
      std::vector<float> d2(3, static_cast<float>(comm.rank()));
      comm.allreduce_sum(d2, AllreduceAlgo::kTree);
      for (float v : d2) ASSERT_EQ(v, 6.0f);
    }
  });
}

TEST(Allgather, CollectsInRankOrder) {
  const int world = 5;
  SimCluster cluster(world);
  cluster.run([&](Communicator& comm) {
    std::vector<float> local{static_cast<float>(comm.rank() * 10),
                             static_cast<float>(comm.rank() * 10 + 1)};
    std::vector<float> out(2 * world);
    comm.allgather(local, out);
    for (int r = 0; r < world; ++r) {
      EXPECT_EQ(out[static_cast<std::size_t>(2 * r)], r * 10.0f);
      EXPECT_EQ(out[static_cast<std::size_t>(2 * r + 1)], r * 10.0f + 1.0f);
    }
  });
}

TEST(Allgather, RejectsWrongOutputSize) {
  SimCluster cluster(2);
  EXPECT_THROW(cluster.run([](Communicator& comm) {
    std::vector<float> local(3), out(5);
    comm.allgather(local, out);
  }),
               std::invalid_argument);
}

// ---------------- traffic metering ----------------

TEST(Traffic, StarCountsTwoPMinusTwoMessages) {
  const int world = 6;
  SimCluster cluster(world);
  cluster.run([](Communicator& comm) {
    std::vector<float> data(10, 1.0f);
    comm.allreduce_sum(data, AllreduceAlgo::kStar);
  });
  EXPECT_EQ(cluster.total_traffic().messages, 2 * (world - 1));
  EXPECT_EQ(cluster.total_traffic().bytes, 2 * (world - 1) * 10 * 4);
}

TEST(Traffic, RingCountsTwoPMinusOneRounds) {
  const int world = 4;
  const int n = 100;
  SimCluster cluster(world);
  cluster.run([](Communicator& comm) {
    std::vector<float> data(n, 1.0f);
    comm.allreduce_sum(data, AllreduceAlgo::kRing);
  });
  // Each rank sends 2*(P-1) chunk messages of ~n/P floats.
  EXPECT_EQ(cluster.total_traffic().messages, world * 2 * (world - 1));
  EXPECT_EQ(cluster.total_traffic().bytes, 2 * (world - 1) * n * 4);
}

TEST(Traffic, RingMovesLessDataPerNodeThanStarAtScale) {
  // The bandwidth argument: ring per-node bytes ~ 2*V, star root ~ 2*(P-1)*V.
  const int world = 8;
  const int n = 256;
  SimCluster ring_cluster(world);
  ring_cluster.run([](Communicator& comm) {
    std::vector<float> d(n, 1.0f);
    comm.allreduce_sum(d, AllreduceAlgo::kRing);
  });
  SimCluster star_cluster(world);
  star_cluster.run([](Communicator& comm) {
    std::vector<float> d(n, 1.0f);
    comm.allreduce_sum(d, AllreduceAlgo::kStar);
  });
  // Star root receives and sends P-1 full vectors; find the max per-rank
  // byte count and compare.
  std::int64_t star_max = 0, ring_max = 0;
  for (int r = 0; r < world; ++r) {
    star_max = std::max(star_max, star_cluster.rank_traffic(r).bytes);
    ring_max = std::max(ring_max, ring_cluster.rank_traffic(r).bytes);
  }
  EXPECT_GT(star_max, 2 * ring_max);
}

TEST(Traffic, ResetClears) {
  SimCluster cluster(2);
  cluster.run([](Communicator& comm) {
    if (comm.rank() == 0) comm.send(1, 0, std::vector<float>{1.0f});
    else comm.recv(0, 0);
  });
  EXPECT_GT(cluster.total_traffic().messages, 0);
  cluster.reset_traffic();
  EXPECT_EQ(cluster.total_traffic().messages, 0);
  EXPECT_EQ(cluster.total_traffic().bytes, 0);
}

TEST(Traffic, BarrierIsFree) {
  SimCluster cluster(4);
  cluster.run([](Communicator& comm) { comm.barrier(); });
  EXPECT_EQ(cluster.total_traffic().messages, 0);
}

// ---------------- property-based allreduce trials ----------------
//
// Randomized sweep over (world, payload length, algorithm): every trial
// checks the two properties any allreduce must satisfy —
//   1. agreement: all ranks end with bit-identical vectors, and
//   2. correctness: that vector matches the sequential sum of the inputs
//      to within float tolerance.
// Lengths deliberately include the degenerate cases (0, 1) and values that
// are not multiples of any world size, so chunked algorithms exercise their
// uneven-split paths.

constexpr AllreduceAlgo kAllAlgos[] = {
    AllreduceAlgo::kStar, AllreduceAlgo::kRing, AllreduceAlgo::kTree,
    AllreduceAlgo::kRecursiveHalving};

/// Deterministic per-(trial, rank) input so failures replay exactly.
std::vector<float> property_input(std::uint64_t trial, int rank,
                                  std::size_t n) {
  Rng rng(trial * 1000003ull + static_cast<std::uint64_t>(rank) * 7919ull + 1);
  std::vector<float> v(n);
  rng.fill_uniform(v, -8.0f, 8.0f);
  return v;
}

/// Runs one allreduce on `world` ranks and returns every rank's output.
std::vector<std::vector<float>> run_allreduce_trial(std::uint64_t trial,
                                                    int world, std::size_t n,
                                                    AllreduceAlgo algo) {
  SimCluster cluster(world);
  std::vector<std::vector<float>> outs(static_cast<std::size_t>(world));
  std::mutex mu;
  cluster.run([&](Communicator& comm) {
    auto data = property_input(trial, comm.rank(), n);
    comm.allreduce_sum(data, algo);
    std::lock_guard lk(mu);
    outs[static_cast<std::size_t>(comm.rank())] = std::move(data);
  });
  return outs;
}

class AllreduceProperty : public ::testing::TestWithParam<AllreduceAlgo> {};

TEST_P(AllreduceProperty, RandomTrialsAgreeAndMatchSequentialSum) {
  const AllreduceAlgo algo = GetParam();
  // Fixed edge lengths every trial pool draws from, plus random ones.
  const std::size_t edge_lengths[] = {0, 1, 2, 3, 5, 7, 17, 33, 129, 257};
  Rng meta(0xA11Eu);  // drives the trial shapes, not the payloads
  for (std::uint64_t trial = 0; trial < 24; ++trial) {
    const int world = 1 + static_cast<int>(meta.uniform_int(8));  // 1..8
    std::size_t n;
    if (trial < std::size(edge_lengths)) {
      n = edge_lengths[trial];  // guarantee every edge case is covered
    } else {
      n = static_cast<std::size_t>(meta.uniform_int(1000));
    }
    SCOPED_TRACE(::testing::Message() << "trial=" << trial << " world=" << world
                                      << " n=" << n << " algo="
                                      << comm::to_string(algo));

    const auto outs = run_allreduce_trial(trial, world, n, algo);

    // Property 1: every rank holds the bit-identical result.
    for (int r = 1; r < world; ++r) {
      EXPECT_EQ(outs[static_cast<std::size_t>(r)], outs[0]) << "rank " << r;
    }
    // Property 2: the result is the sequential sum, within float tolerance
    // (reduction order differs per algorithm, so NEAR not EQ).
    std::vector<float> expected(n, 0.0f);
    for (int r = 0; r < world; ++r) {
      const auto in = property_input(trial, r, n);
      for (std::size_t i = 0; i < n; ++i) expected[i] += in[i];
    }
    ASSERT_EQ(outs[0].size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(outs[0][i], expected[i], 1e-3) << "i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, AllreduceProperty,
                         ::testing::ValuesIn(kAllAlgos));

TEST(AllreduceProperty, BucketedSweepMatchesWholeVectorPerBucket) {
  // Splitting a payload into arbitrary buckets and allreducing each must
  // give, per bucket, exactly the result of allreducing that bucket alone —
  // the invariant the overlap engine's bit-exactness argument rests on.
  Rng meta(0xB0C4E7u);
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const int world = 2 + static_cast<int>(meta.uniform_int(7));  // 2..8
    const std::size_t n = 64 + static_cast<std::size_t>(meta.uniform_int(192));
    const std::size_t bucket = 1 + static_cast<std::size_t>(meta.uniform_int(49));
    SCOPED_TRACE(::testing::Message() << "trial=" << trial << " world=" << world
                                      << " n=" << n << " bucket=" << bucket);

    SimCluster cluster(world);
    std::vector<std::vector<float>> outs(static_cast<std::size_t>(world));
    std::mutex mu;
    cluster.run([&](Communicator& comm) {
      auto data = property_input(trial + 100, comm.rank(), n);
      std::span<float> rest(data);
      while (!rest.empty()) {
        const std::size_t take = std::min(bucket, rest.size());
        comm.allreduce_sum(rest.subspan(0, take), AllreduceAlgo::kRing);
        rest = rest.subspan(take);
      }
      std::lock_guard lk(mu);
      outs[static_cast<std::size_t>(comm.rank())] = std::move(data);
    });

    // Reference: each bucket allreduced in its own single-collective run.
    std::size_t off = 0;
    std::vector<float> ref;
    while (off < n) {
      const std::size_t take = std::min(bucket, n - off);
      SimCluster sub(world);
      std::vector<float> piece;
      std::mutex mu2;
      sub.run([&](Communicator& comm) {
        const auto full = property_input(trial + 100, comm.rank(), n);
        std::vector<float> local(full.begin() + static_cast<std::ptrdiff_t>(off),
                                 full.begin() +
                                     static_cast<std::ptrdiff_t>(off + take));
        comm.allreduce_sum(local, AllreduceAlgo::kRing);
        if (comm.rank() == 0) {
          std::lock_guard lk(mu2);
          piece = std::move(local);
        }
      });
      ref.insert(ref.end(), piece.begin(), piece.end());
      off += take;
    }
    for (int r = 0; r < world; ++r) {
      EXPECT_EQ(outs[static_cast<std::size_t>(r)], ref) << "rank " << r;
    }
  }
}

// ---------------- survivor-group allreduce trials ----------------
//
// Drop a random rank from worlds 2..8 and run every algorithm over a group
// Communicator formed from the survivor MembershipView. Because collectives
// address members by *virtual* rank, the survivor group must produce output
// bit-identical to a fresh fixed-world cluster of the survivor size fed the
// same per-virtual-rank inputs — the property elastic shrink determinism
// rests on.

TEST(SurvivorGroup, AllAlgosBitAgreeWithFixedWorldOfSurvivorSize) {
  Rng meta(0xE1A57Cu);  // drives (world, dropped rank, payload length)
  for (std::uint64_t trial = 0; trial < 14; ++trial) {
    const int world = 2 + static_cast<int>(meta.uniform_int(7));  // 2..8
    const int dropped = static_cast<int>(meta.uniform_int(world));
    const std::size_t n = 1 + static_cast<std::size_t>(meta.uniform_int(300));
    SCOPED_TRACE(::testing::Message() << "trial=" << trial << " world=" << world
                                      << " dropped=" << dropped << " n=" << n);

    comm::MembershipView view;
    view.generation = 1;  // post-shrink generation, fresh tag prefix
    for (int r = 0; r < world; ++r) {
      if (r != dropped) view.ranks.push_back(r);
    }
    const int survivors = view.world();

    for (const AllreduceAlgo algo : kAllAlgos) {
      SCOPED_TRACE(::testing::Message() << "algo=" << comm::to_string(algo));

      // Survivor run: full-world cluster, the dropped rank sits out while
      // the rest allreduce over the group view. Inputs are keyed by the
      // member's virtual rank so the fixed-world reference is comparable.
      std::vector<std::vector<float>> group_outs(
          static_cast<std::size_t>(survivors));
      std::mutex mu;
      SimCluster cluster(world);
      cluster.run([&](Communicator& comm) {
        if (comm.rank() == dropped) return;
        Communicator gc(cluster, comm.rank(), view, /*channel=*/0);
        auto data = property_input(trial + 500, gc.rank(), n);
        gc.allreduce_sum(data, algo);
        std::lock_guard lk(mu);
        group_outs[static_cast<std::size_t>(gc.rank())] = std::move(data);
      });

      std::vector<std::vector<float>> fixed_outs(
          static_cast<std::size_t>(survivors));
      SimCluster fixed(survivors);
      fixed.run([&](Communicator& comm) {
        auto data = property_input(trial + 500, comm.rank(), n);
        comm.allreduce_sum(data, algo);
        std::lock_guard lk(mu);
        fixed_outs[static_cast<std::size_t>(comm.rank())] = std::move(data);
      });

      for (int v = 0; v < survivors; ++v) {
        EXPECT_EQ(group_outs[static_cast<std::size_t>(v)],
                  fixed_outs[static_cast<std::size_t>(v)])
            << "virtual rank " << v;
      }
    }
  }
}

}  // namespace
}  // namespace minsgd
