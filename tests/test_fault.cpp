// Fault-injection layer and fault-tolerant training.
//
// Covers the fault taxonomy (drop -> CommTimeout, crash -> RankFailure,
// cooperative abort -> ClusterAborted on survivors), injector determinism,
// mailbox deadline semantics, cross-run mailbox hygiene, rank-error
// aggregation, and the headline recovery property: a run killed mid-training
// and restarted from its checkpoint finishes with weights bit-identical to
// the uninterrupted run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "comm/cluster.hpp"
#include "comm/fault.hpp"
#include "obs/flight.hpp"
#include "obs/postmortem.hpp"
#include "nn/conv.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/activation.hpp"
#include "nn/pool.hpp"
#include "optim/sgd.hpp"
#include "train/fault_tolerant.hpp"
#include "train/trainer.hpp"

namespace minsgd {
namespace {

using comm::AllreduceAlgo;
using comm::ClusterAborted;
using comm::CommTimeout;
using comm::Communicator;
using comm::FaultInjector;
using comm::FaultPlan;
using comm::Mailbox;
using comm::Message;
using comm::RankFailure;
using comm::SimCluster;
using namespace std::chrono_literals;

// ---------------- mailbox deadline / abort semantics ----------------

TEST(MailboxTimeout, TimesOutOnMissingMessage) {
  Mailbox mb;
  Message out;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(mb.take_for(0, 7, 30ms, out), Mailbox::TakeStatus::kTimeout);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 30ms);
}

TEST(MailboxTimeout, DeliveredMessageBeatsDeadline) {
  Mailbox mb;
  // minsgd-lint: allow(thread-spawn): a raw producer thread races a real
  // delivery against the Mailbox::take_for deadline.
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    mb.deliver(Message{0, 7, {1.0f, 2.0f}});
  });
  Message out;
  EXPECT_EQ(mb.take_for(0, 7, 5000ms, out), Mailbox::TakeStatus::kOk);
  EXPECT_EQ(out.payload.size(), 2u);
  producer.join();
}

TEST(MailboxTimeout, AbortWakesWaiter) {
  Mailbox mb;
  // minsgd-lint: allow(thread-spawn): a raw thread calls Mailbox::abort out
  // from under a waiter blocked in Mailbox::take_for.
  std::thread aborter([&] {
    std::this_thread::sleep_for(10ms);
    mb.abort();
  });
  Message out;
  EXPECT_EQ(mb.take_for(0, 7, Mailbox::kNoTimeout, out),
            Mailbox::TakeStatus::kAborted);
  aborter.join();
  // clear() re-arms the mailbox for the next run.
  mb.clear();
  mb.deliver(Message{0, 7, {3.0f}});
  EXPECT_EQ(mb.take_for(0, 7, 10ms, out), Mailbox::TakeStatus::kOk);
}

TEST(MailboxTimeout, SnapshotReportsPendingMessages) {
  Mailbox mb;
  mb.deliver(Message{2, 41, {1.0f, 2.0f, 3.0f}});
  const auto pending = mb.snapshot();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].src, 2);
  EXPECT_EQ(pending[0].tag, 41);
  EXPECT_EQ(pending[0].numel, 3u);
}

// ---------------- injector mechanics ----------------

TEST(FaultInjector, RejectsBadPlans) {
  FaultPlan bad;
  bad.drop_prob = 1.5;
  EXPECT_THROW(FaultInjector(bad, 4), std::invalid_argument);
  bad = {};
  bad.crash_rank = 4;
  EXPECT_THROW(FaultInjector(bad, 4), std::invalid_argument);
  bad = {};
  bad.crash_at_send = -1;
  EXPECT_THROW(FaultInjector(bad, 4), std::invalid_argument);
  EXPECT_THROW(FaultInjector({}, 0), std::invalid_argument);
}

TEST(FaultInjector, DeterministicGivenSeed) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_prob = 0.3;
  plan.duplicate_prob = 0.2;
  auto run_once = [&] {
    FaultInjector inj(plan, 2);
    std::vector<int> actions;
    std::vector<float> payload{1.0f, 2.0f};
    for (int i = 0; i < 64; ++i) {
      actions.push_back(static_cast<int>(inj.on_send(0, 1, i, payload)));
    }
    return actions;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FaultInjector, DropCausesCommTimeoutWithDiagnostics) {
  SimCluster cluster(2);
  FaultPlan plan;
  plan.drop_prob = 1.0;
  cluster.set_fault_injector(std::make_shared<FaultInjector>(plan, 2));
  cluster.set_recv_timeout(50ms);
  try {
    cluster.run([](Communicator& comm) {
      if (comm.rank() == 0) comm.send(1, 7, std::vector<float>{1.0f});
      else comm.recv(0, 7);
    });
    FAIL() << "expected CommTimeout";
  } catch (const CommTimeout& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.peer(), 0);
    EXPECT_EQ(e.tag(), 7);
    EXPECT_NE(std::string(e.what()).find("tag 7"), std::string::npos);
  }
  EXPECT_EQ(cluster.rank_faults(0).dropped, 1);
  EXPECT_EQ(cluster.total_faults().dropped, 1);
  // The lost message still hit the wire: traffic counts sends, not arrivals.
  EXPECT_EQ(cluster.rank_traffic(0).messages, 1);
}

TEST(FaultInjector, TimeoutMessageNamesUnmatchedQueueEntries) {
  SimCluster cluster(2);
  cluster.set_recv_timeout(50ms);
  try {
    cluster.run([](Communicator& comm) {
      if (comm.rank() == 0) {
        comm.send(1, 5, std::vector<float>{1.0f, 2.0f});
      } else {
        comm.recv(0, 6);  // wrong tag: the tag-5 message sits unmatched
      }
    });
    FAIL() << "expected CommTimeout";
  } catch (const CommTimeout& e) {
    ASSERT_EQ(e.pending().size(), 1u);
    EXPECT_EQ(e.pending()[0].tag, 5);
    EXPECT_NE(std::string(e.what()).find("tag 5"), std::string::npos);
  }
}

TEST(FaultInjector, CorruptFlipsSignBitOnce) {
  SimCluster cluster(2);
  FaultPlan plan;
  plan.corrupt_prob = 1.0;
  cluster.set_fault_injector(std::make_shared<FaultInjector>(plan, 2));
  cluster.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::vector<float>{1.0f, 2.0f, 3.0f});
    } else {
      const auto got = comm.recv(0, 0);
      int flipped = 0;
      const std::vector<float> sent{1.0f, 2.0f, 3.0f};
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (got[i] == -sent[i]) ++flipped;
        else EXPECT_EQ(got[i], sent[i]);
      }
      EXPECT_EQ(flipped, 1);
    }
  });
  EXPECT_EQ(cluster.rank_faults(0).corrupted, 1);
}

TEST(FaultInjector, DuplicateDeliversTwiceAndMeterSeesBoth) {
  SimCluster cluster(2);
  FaultPlan plan;
  plan.duplicate_prob = 1.0;
  cluster.set_fault_injector(std::make_shared<FaultInjector>(plan, 2));
  cluster.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::vector<float>{4.0f});
    } else {
      // Both copies are receivable on the same (src, tag) channel.
      EXPECT_EQ(comm.recv(0, 0)[0], 4.0f);
      EXPECT_EQ(comm.recv(0, 0)[0], 4.0f);
    }
  });
  EXPECT_EQ(cluster.rank_faults(0).duplicated, 1);
  EXPECT_EQ(cluster.rank_traffic(0).messages, 2);
}

TEST(FaultInjector, StragglerDelayStallsTheSend) {
  SimCluster cluster(2);
  FaultPlan plan;
  plan.delay_prob = 1.0;
  plan.delay = 40ms;
  cluster.set_fault_injector(std::make_shared<FaultInjector>(plan, 2));
  const auto t0 = std::chrono::steady_clock::now();
  cluster.run([](Communicator& comm) {
    if (comm.rank() == 0) comm.send(1, 0, std::vector<float>{1.0f});
    else comm.recv(0, 0);
  });
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 40ms);
  EXPECT_EQ(cluster.rank_faults(0).delayed, 1);
}

// ---------------- crash + cooperative abort ----------------

TEST(RankCrash, CollectiveWithDeadPeerUnwindsEveryRank) {
  // The acceptance scenario: one rank dies inside an allreduce; every
  // surviving rank must unwind promptly instead of hanging the join.
  const int world = 4;
  SimCluster cluster(world);
  FaultPlan plan;
  plan.crash_rank = 2;
  plan.crash_at_send = 1;  // die on the second send of the collective
  auto injector = std::make_shared<FaultInjector>(plan, world);
  cluster.set_fault_injector(injector);
  cluster.set_recv_timeout(5000ms);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    cluster.run([](Communicator& comm) {
      std::vector<float> data(64, static_cast<float>(comm.rank()));
      comm.allreduce_sum(data, AllreduceAlgo::kRing);
    });
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& e) {
    EXPECT_EQ(e.rank(), 2);
    // The aggregated message lists the aborted survivors too.
    EXPECT_NE(std::string(e.what()).find("aborted"), std::string::npos);
  }
  // Cooperative abort, not timeout expiry: survivors unwound quickly.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 4000ms);
  EXPECT_EQ(injector->total().crashes, 1);
  EXPECT_FALSE(injector->crash_pending());
}

TEST(RankCrash, EveryAllreduceAlgoUnwinds) {
  for (const auto algo :
       {AllreduceAlgo::kStar, AllreduceAlgo::kRing, AllreduceAlgo::kTree,
        AllreduceAlgo::kRecursiveHalving}) {
    SimCluster cluster(5);
    FaultPlan plan;
    plan.crash_rank = 1;
    plan.crash_at_send = 0;
    cluster.set_fault_injector(std::make_shared<FaultInjector>(plan, 5));
    cluster.set_recv_timeout(5000ms);
    EXPECT_THROW(cluster.run([&](Communicator& comm) {
      std::vector<float> data(257, 1.0f);
      comm.allreduce_sum(data, algo);
    }),
                 RankFailure)
        << comm::to_string(algo);
  }
}

TEST(CooperativeAbort, BlockedBarrierUnwinds) {
  SimCluster cluster(3);
  EXPECT_THROW(cluster.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      throw RankFailure(0, "RankFailure: rank 0 simulated death");
    }
    comm.barrier();  // would deadlock forever without the abort
  }),
               RankFailure);
  EXPECT_TRUE(cluster.aborted());
  EXPECT_NE(cluster.abort_reason().find("rank 0"), std::string::npos);
}

TEST(CooperativeAbort, BlockedRecvUnwindsWithoutTimeout) {
  // No recv deadline configured: only the cooperative abort can free the
  // blocked rank.
  SimCluster cluster(2);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(cluster.run([](Communicator& comm) {
    if (comm.rank() == 0) throw std::runtime_error("boom");
    comm.recv(0, 123);  // never sent
  }),
               std::runtime_error);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 4000ms);
}

TEST(CooperativeAbort, SendAfterAbortThrows) {
  SimCluster cluster(2);
  std::atomic<bool> rank1_done{false};
  EXPECT_THROW(cluster.run([&](Communicator& comm) {
    if (comm.rank() == 0) throw std::runtime_error("boom");
    // Busy-wait until the abort lands, then attempt to send.
    while (!cluster.aborted()) std::this_thread::sleep_for(1ms);
    try {
      comm.send(0, 0, std::vector<float>{1.0f});
    } catch (const ClusterAborted&) {
      rank1_done = true;
      throw;
    }
  }),
               std::runtime_error);
  EXPECT_TRUE(rank1_done.load());
}

// ---------------- run(): drain + aggregation (satellites) ----------------

TEST(ClusterHygiene, StaleMessagesFromAbortedRunAreDrained) {
  SimCluster cluster(2);
  // Run 1 aborts with an undelivered message sitting in rank 1's mailbox.
  EXPECT_THROW(cluster.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, std::vector<float>{13.0f});
      throw std::runtime_error("die after send");
    }
    comm.recv(0, 99);  // blocks until aborted
  }),
               std::runtime_error);
  // Run 2 must NOT receive run 1's stale tag-7 message.
  cluster.set_recv_timeout(50ms);
  EXPECT_THROW(cluster.run([](Communicator& comm) {
    if (comm.rank() == 1) comm.recv(0, 7);
  }),
               CommTimeout);
  // And a fully clean exchange works.
  cluster.run([](Communicator& comm) {
    if (comm.rank() == 0) comm.send(1, 7, std::vector<float>{2.0f});
    else EXPECT_EQ(comm.recv(0, 7)[0], 2.0f);
  });
}

TEST(ClusterHygiene, AggregatesAllRankErrorsIntoMessage) {
  SimCluster cluster(3);
  try {
    cluster.run([](Communicator& comm) {
      if (comm.rank() == 0) throw std::invalid_argument("alpha failure");
      if (comm.rank() == 2) throw std::runtime_error("gamma failure");
      comm.barrier();  // rank 1 becomes an abort victim
    });
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    // Type comes from the first root cause by rank order; the message
    // carries every rank's error.
    const std::string what = e.what();
    EXPECT_NE(what.find("alpha failure"), std::string::npos);
    EXPECT_NE(what.find("gamma failure"), std::string::npos);
    EXPECT_NE(what.find("rank 0"), std::string::npos);
    EXPECT_NE(what.find("rank 2"), std::string::npos);
  }
}

TEST(ClusterHygiene, SingleFailureRethrowsOriginalException) {
  SimCluster cluster(1);
  try {
    cluster.run([](Communicator&) { throw std::out_of_range("solo"); });
    FAIL() << "expected a throw";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "solo");
  }
}

// ---------------- fault-tolerant training ----------------

data::SynthConfig tiny_data_cfg() {
  data::SynthConfig c;
  c.classes = 4;
  c.resolution = 12;
  c.train_size = 256;
  c.test_size = 128;
  c.noise = 0.4f;
  c.distractor = 0.3f;
  c.seed = 5;
  return c;
}

// Deterministic model (no dropout, no batch norm), as required for exact
// sequential-consistency comparisons.
std::unique_ptr<nn::Network> det_model() {
  auto net = std::make_unique<nn::Network>("det");
  net->emplace<nn::Conv2d>(3, 8, 3, 1, 1);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2, 2);
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 6 * 6, 4);
  return net;
}

train::FaultTolerantOptions ft_options(const std::string& tag) {
  train::FaultTolerantOptions o;
  o.train.global_batch = 32;
  o.train.epochs = 3;
  o.train.eval_every = 8;  // skip most evals: weights are what we compare
  o.checkpoint_every = 3;
  o.checkpoint_path = ::testing::TempDir() + "/ft_" + tag + ".ckpt";
  o.recv_timeout = 5000ms;
  return o;
}

std::function<std::unique_ptr<optim::Optimizer>()> sgd_factory() {
  return [] {
    return std::make_unique<optim::Sgd>(
        optim::SgdConfig{.momentum = 0.9, .weight_decay = 0.0005});
  };
}

TEST(FaultTolerantTrain, NoFaultRunIsSequentiallyConsistent) {
  // world=2 must match world=1 up to float summation order (the sharded
  // gradient sums reduce in a different order, same tolerance-based check
  // the plain sync trainer uses), and the checkpoint cadence must not
  // perturb training at all: writing a checkpoint is observationally free.
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);
  const auto two = train::train_sync_fault_tolerant(
      det_model, sgd_factory(), lr, ds, ft_options("w2"), 2);
  const auto one = train::train_sync_fault_tolerant(
      det_model, sgd_factory(), lr, ds, ft_options("w1"), 1);
  EXPECT_EQ(two.restarts, 0);
  ASSERT_FALSE(two.final_weights.empty());
  ASSERT_EQ(two.final_weights.size(), one.final_weights.size());
  for (std::size_t i = 0; i < two.final_weights.size(); ++i) {
    ASSERT_NEAR(two.final_weights[i], one.final_weights[i], 2e-3) << "i=" << i;
  }
  EXPECT_GT(two.checkpoints_written, 0);

  auto rare = ft_options("w2rare");
  rare.checkpoint_every = 1000;  // never fires within this run
  const auto two_rare = train::train_sync_fault_tolerant(
      det_model, sgd_factory(), lr, ds, rare, 2);
  EXPECT_EQ(two_rare.checkpoints_written, 0);
  EXPECT_EQ(two.final_weights, two_rare.final_weights);  // bit-identical
}

TEST(FaultTolerantTrain, CrashRecoveryYieldsBitIdenticalWeights) {
  // The headline integration property: kill a rank mid-training via the
  // injector, restart from the checkpoint, and finish with final weights
  // exactly equal to the fault-free run's.
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);
  const int world = 2;

  const auto clean = train::train_sync_fault_tolerant(
      det_model, sgd_factory(), lr, ds, ft_options("clean"), world);
  ASSERT_EQ(clean.restarts, 0);
  ASSERT_FALSE(clean.final_weights.empty());

  FaultPlan plan;
  plan.crash_rank = 1;
  // Each iteration sends a handful of messages per rank; ~tens of sends in,
  // the run is mid-epoch and past at least one checkpoint.
  plan.crash_at_send = 40;
  auto injector = std::make_shared<FaultInjector>(plan, world);
  const auto faulty = train::train_sync_fault_tolerant(
      det_model, sgd_factory(), lr, ds, ft_options("crash"), world, injector);

  EXPECT_EQ(faulty.restarts, 1);
  EXPECT_EQ(faulty.faults.crashes, 1);
  ASSERT_FALSE(faulty.final_weights.empty());
  EXPECT_EQ(faulty.final_weights, clean.final_weights);
  EXPECT_EQ(faulty.iterations, clean.iterations);
}

TEST(FaultTolerantTrain, CrashRecoveryIsExactWithDropout) {
  // Dropout layers own private mask streams; the checkpoint must restore
  // them or the resumed run draws different masks and drifts from the
  // uninterrupted one (regression test for exactly that bug).
  auto dropout_model = [] {
    auto net = std::make_unique<nn::Network>("drop");
    net->emplace<nn::Conv2d>(3, 8, 3, 1, 1);
    net->emplace<nn::ReLU>();
    net->emplace<nn::MaxPool2d>(2, 2);
    net->emplace<nn::Flatten>();
    net->emplace<nn::Dropout>(0.25f);
    net->emplace<nn::Linear>(8 * 6 * 6, 4);
    return net;
  };
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);
  const auto clean = train::train_sync_fault_tolerant(
      dropout_model, sgd_factory(), lr, ds, ft_options("dclean"), 2);
  FaultPlan plan;
  plan.crash_rank = 0;
  plan.crash_at_send = 40;
  auto injector = std::make_shared<FaultInjector>(plan, 2);
  const auto faulty = train::train_sync_fault_tolerant(
      dropout_model, sgd_factory(), lr, ds, ft_options("dcrash"), 2, injector);
  EXPECT_EQ(faulty.restarts, 1);
  EXPECT_EQ(faulty.final_weights, clean.final_weights);
}

TEST(FaultTolerantTrain, StragglersSlowButDoNotChangeResults) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);
  const auto clean = train::train_sync_fault_tolerant(
      det_model, sgd_factory(), lr, ds, ft_options("fast"), 2);
  FaultPlan plan;
  plan.delay_prob = 0.02;
  plan.delay = 2ms;
  auto injector = std::make_shared<FaultInjector>(plan, 2);
  const auto slow = train::train_sync_fault_tolerant(
      det_model, sgd_factory(), lr, ds, ft_options("slow"), 2, injector);
  EXPECT_GT(slow.faults.delayed, 0);
  EXPECT_EQ(slow.restarts, 0);
  EXPECT_EQ(slow.final_weights, clean.final_weights);
}

TEST(FaultTolerantTrain, ExhaustedRestartBudgetRethrows) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);
  auto o = ft_options("budget");
  o.max_restarts = 0;
  FaultPlan plan;
  plan.crash_rank = 0;
  plan.crash_at_send = 5;
  auto injector = std::make_shared<FaultInjector>(plan, 2);
  EXPECT_THROW(train::train_sync_fault_tolerant(det_model, sgd_factory(), lr,
                                                ds, o, 2, injector),
               RankFailure);
}

TEST(FaultTolerantTrain, RejectsBadOptions) {
  data::SyntheticImageNet ds(tiny_data_cfg());
  optim::ConstantLr lr(0.02);
  auto o = ft_options("bad");
  o.checkpoint_every = 0;
  EXPECT_THROW(
      train::train_sync_fault_tolerant(det_model, sgd_factory(), lr, ds, o, 2),
      std::invalid_argument);
  o = ft_options("bad2");
  o.train.global_batch = 30;
  EXPECT_THROW(
      train::train_sync_fault_tolerant(det_model, sgd_factory(), lr, ds, o, 4),
      std::invalid_argument);
}

TEST(FaultTolerantTrainDeath, NegativeRestartBudgetTripsCheck) {
  // A negative budget is a programming error, not recoverable input:
  // validate() converts it to a MINSGD_CHECK abort instead of a throw.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto o = ft_options("neg");
  o.max_restarts = -1;
  EXPECT_DEATH(o.validate(), "max_restarts");
}

// ---------------- postmortem black box ----------------

/// RAII: point the postmortem dump at a private temp file for one test and
/// restore the default afterwards.
struct ScopedPostmortemPath {
  std::string path;
  explicit ScopedPostmortemPath(const char* name)
      : path(::testing::TempDir() + "/" + name) {
    obs::set_postmortem_path(path);
    obs::flight().clear();
  }
  ~ScopedPostmortemPath() {
    std::remove(path.c_str());
    obs::set_postmortem_path("postmortem.json");
    obs::flight().clear();
  }
};

TEST(Postmortem, StragglerStallIsCountedAndValidated) {
  FaultPlan bad;
  bad.straggler_rank = 4;
  EXPECT_THROW(FaultInjector(bad, 4), std::invalid_argument);
  bad = {};
  bad.straggler_rank = 0;
  bad.straggler_stall = std::chrono::milliseconds(-1);
  EXPECT_THROW(FaultInjector(bad, 4), std::invalid_argument);

  SimCluster cluster(2);
  FaultPlan plan;
  plan.straggler_rank = 1;
  plan.straggler_stall = std::chrono::milliseconds(1);
  auto injector = std::make_shared<FaultInjector>(plan, 2);
  cluster.set_fault_injector(injector);
  cluster.run([](Communicator& comm) {
    std::vector<float> data(8, 1.0f);
    for (int i = 0; i < 3; ++i) comm.allreduce_sum(data);
  });
  // One stall per outermost collective entry, straggler rank only.
  EXPECT_EQ(injector->total().stalls, 3);
}

// The acceptance scenario of the observability layer: a fault-injected
// crash at world=4 with a compute-side straggler leaves one merged
// postmortem.json whose cross-rank analysis joins the collectives and
// names the injected-delay rank.
TEST(Postmortem, CrashDumpJoinsRanksAndNamesInjectedStraggler) {
  ScopedPostmortemPath dump("pm_crash_world4.json");
  const int world = 4;
  SimCluster cluster(world);
  FaultPlan plan;
  plan.straggler_rank = 2;
  plan.straggler_stall = std::chrono::milliseconds(2);
  plan.crash_rank = 1;
  // Ring allreduce sends 2*(world-1) messages per rank: die ~30 steps in,
  // so the one crash-truncated group is well under the 5% unmatched budget.
  plan.crash_at_send = 30 * 2 * (world - 1);
  cluster.set_fault_injector(std::make_shared<FaultInjector>(plan, world));
  cluster.set_recv_timeout(10000ms);
  EXPECT_THROW(cluster.run([](Communicator& comm) {
    std::vector<float> grad(64, 1.0f);
    for (int it = 0;; ++it) {
      comm.allreduce_sum(grad, AllreduceAlgo::kRing);
      MINSGD_FLIGHT(obs::FlightKind::kStep, obs::FlightOp::kNone, 0, 0, 0, 0,
                    it);
    }
  }),
               RankFailure);

  // One merged dump, written while the failure was unwinding.
  const obs::Postmortem pm = obs::read_postmortem_file(dump.path);
  EXPECT_EQ(pm.info.world, world);
  EXPECT_FALSE(pm.info.reason.empty());
  EXPECT_EQ(static_cast<int>(pm.info.rank_errors.size()), world);
  EXPECT_FALSE(pm.events.empty());

  const obs::FlightAnalysis a = obs::analyze_flight(pm.events, world);
  // >= 95% of collective groups must join across all 4 ranks — only the
  // final crash-truncated step can be incomplete.
  EXPECT_GE(a.groups, 10);
  EXPECT_GE(a.match_rate, 0.95);
  // Attribution: the injected straggler is charged the arrival lag.
  EXPECT_EQ(a.straggler_rank, 2);
  EXPECT_GT(a.straggler_lag_ns, 0);
  // The injected faults are visible in the timeline: rank 2's stalls and
  // rank 1's crash marker.
  EXPECT_GT(a.fault_events, 0);
  EXPECT_GT(a.crash_events, 0);
}

TEST(Postmortem, CommTimeoutDumpRecordsTheTimeout) {
  ScopedPostmortemPath dump("pm_timeout.json");
  SimCluster cluster(2);
  FaultPlan plan;
  plan.drop_prob = 1.0;
  cluster.set_fault_injector(std::make_shared<FaultInjector>(plan, 2));
  cluster.set_recv_timeout(50ms);
  EXPECT_THROW(cluster.run([](Communicator& comm) {
    std::vector<float> data(8, 1.0f);
    comm.allreduce_sum(data);
  }),
               CommTimeout);

  const obs::Postmortem pm = obs::read_postmortem_file(dump.path);
  EXPECT_EQ(pm.info.world, 2);
  bool saw_timeout = false;
  bool saw_begin = false;
  for (const auto& e : pm.events) {
    saw_timeout |= e.kind == obs::FlightKind::kFault &&
                   e.op == obs::FlightOp::kTimeout;
    saw_begin |= e.kind == obs::FlightKind::kCollBegin;
  }
  EXPECT_TRUE(saw_timeout);
  EXPECT_TRUE(saw_begin);
}

}  // namespace
}  // namespace minsgd
