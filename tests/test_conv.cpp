#include <gtest/gtest.h>

#include "grad_check.hpp"
#include "nn/conv.hpp"

namespace minsgd {
namespace {

using nn::Conv2d;

TEST(Conv2d, OutputShapeNoPad) {
  Conv2d c(3, 8, 3);
  EXPECT_EQ(c.output_shape({2, 3, 8, 8}), Shape({2, 8, 6, 6}));
}

TEST(Conv2d, OutputShapeWithPadAndStride) {
  Conv2d c(3, 16, 3, 2, 1);
  EXPECT_EQ(c.output_shape({4, 3, 32, 32}), Shape({4, 16, 16, 16}));
}

TEST(Conv2d, AlexNetConv1Geometry) {
  Conv2d c(3, 96, 11, 4, 0);
  EXPECT_EQ(c.output_shape({1, 3, 227, 227}), Shape({1, 96, 55, 55}));
}

TEST(Conv2d, RejectsWrongChannelCount) {
  Conv2d c(3, 8, 3);
  EXPECT_THROW(c.output_shape({1, 4, 8, 8}), std::invalid_argument);
}

TEST(Conv2d, RejectsTooSmallInput) {
  Conv2d c(3, 8, 5);
  EXPECT_THROW(c.output_shape({1, 3, 4, 4}), std::invalid_argument);
}

TEST(Conv2d, RejectsBadConfig) {
  EXPECT_THROW(Conv2d(0, 8, 3), std::invalid_argument);
  EXPECT_THROW(Conv2d(3, 8, 0), std::invalid_argument);
  EXPECT_THROW(Conv2d(3, 8, 3, 0), std::invalid_argument);
  EXPECT_THROW(Conv2d(3, 8, 3, 1, -1), std::invalid_argument);
  EXPECT_THROW(Conv2d(3, 8, 3, 1, 0, true, 2),  // 3 % 2 != 0
               std::invalid_argument);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Conv2d c(1, 1, 1, 1, 0, /*bias=*/false);
  c.weight().fill(1.0f);
  Tensor x({1, 1, 3, 3}, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor y;
  c.forward(x, y, false);
  for (std::int64_t i = 0; i < 9; ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Conv2d, KnownSmallConvolution) {
  // 2x2 input, 2x2 kernel of ones, no pad: output = sum of all inputs.
  Conv2d c(1, 1, 2, 1, 0, /*bias=*/false);
  c.weight().fill(1.0f);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor y;
  c.forward(x, y, false);
  ASSERT_EQ(y.numel(), 1);
  EXPECT_EQ(y[0], 10.0f);
}

TEST(Conv2d, BiasAddsPerChannel) {
  Conv2d c(1, 2, 1, 1, 0, /*bias=*/true);
  c.weight().zero();
  c.bias()[0] = 1.5f;
  c.bias()[1] = -2.0f;
  Tensor x({1, 1, 2, 2}, 3.0f);
  Tensor y;
  c.forward(x, y, false);
  EXPECT_EQ(y.at(0, 0, 0, 0), 1.5f);
  EXPECT_EQ(y.at(0, 1, 1, 1), -2.0f);
}

TEST(Conv2d, GroupsPartitionChannels) {
  // 2 groups: output channel 0 must not depend on input channel 1.
  Conv2d c(2, 2, 1, 1, 0, /*bias=*/false, /*groups=*/2);
  c.weight().fill(1.0f);
  Tensor x({1, 2, 1, 1}, std::vector<float>{5.0f, 7.0f});
  Tensor y;
  c.forward(x, y, false);
  EXPECT_EQ(y[0], 5.0f);
  EXPECT_EQ(y[1], 7.0f);
}

TEST(Conv2d, GroupedParamCountHalved) {
  Conv2d full(96, 256, 5, 1, 2, true, 1);
  Conv2d grouped(96, 256, 5, 1, 2, true, 2);
  auto count = [](Conv2d& c) {
    std::int64_t n = 0;
    for (auto& p : c.params()) n += p.value->numel();
    return n;
  };
  EXPECT_EQ(count(full) - 256, 2 * (count(grouped) - 256));
}

TEST(Conv2d, FlopsMatchFormula) {
  Conv2d c(3, 8, 3, 1, 1);
  // out 8x8: 2 * 8 * 3 * 9 * 64
  EXPECT_EQ(c.flops({1, 3, 8, 8}), 2 * 8 * 3 * 3 * 3 * 8 * 8);
}

TEST(Conv2d, GradCheckBasic) {
  Conv2d c(2, 3, 3, 1, 1);
  testing::check_gradients(c, {2, 2, 5, 5});
}

TEST(Conv2d, GradCheckStridedNoBias) {
  Conv2d c(3, 4, 3, 2, 1, /*bias=*/false);
  testing::check_gradients(c, {2, 3, 7, 7});
}

TEST(Conv2d, GradCheckGrouped) {
  Conv2d c(4, 4, 3, 1, 1, /*bias=*/true, /*groups=*/2);
  testing::check_gradients(c, {1, 4, 5, 5});
}

TEST(Conv2d, GradCheck1x1) {
  Conv2d c(4, 6, 1, 1, 0);
  testing::check_gradients(c, {2, 4, 4, 4});
}

// Exhaustive configuration grid: every (kernel, stride, pad, groups, bias)
// combination must pass the finite-difference check.
struct ConvGridCase {
  std::int64_t kernel, stride, pad, groups;
  bool bias;
};

class ConvGradGrid : public ::testing::TestWithParam<ConvGridCase> {};

TEST_P(ConvGradGrid, GradCheck) {
  const auto& p = GetParam();
  Conv2d c(4, 4, p.kernel, p.stride, p.pad, p.bias, p.groups);
  testing::check_gradients(c, {1, 4, 6, 6},
                           /*seed=*/static_cast<std::uint64_t>(
                               p.kernel * 1000 + p.stride * 100 +
                               p.pad * 10 + p.groups));
}

std::vector<ConvGridCase> conv_grid() {
  std::vector<ConvGridCase> cases;
  for (std::int64_t k : {1, 2, 3}) {
    for (std::int64_t s : {1, 2}) {
      for (std::int64_t pad : {0, 1}) {
        for (std::int64_t g : {1, 2, 4}) {
          for (bool bias : {false, true}) {
            cases.push_back({k, s, pad, g, bias});
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, ConvGradGrid, ::testing::ValuesIn(conv_grid()));

TEST(Conv2d, GradientsAccumulateAcrossBackwardCalls) {
  Conv2d c(1, 1, 1, 1, 0, /*bias=*/false);
  Rng rng(5);
  c.init(rng);
  Tensor x({1, 1, 2, 2}, 1.0f), y, dy({1, 1, 2, 2}, 1.0f), dx;
  c.forward(x, y, true);
  for (auto& p : c.params()) p.grad->zero();
  c.backward(x, y, dy, dx);
  const float once = c.params()[0].grad->operator[](0);
  c.backward(x, y, dy, dx);
  EXPECT_FLOAT_EQ(c.params()[0].grad->operator[](0), 2.0f * once);
}

}  // namespace
}  // namespace minsgd
