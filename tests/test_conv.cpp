#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "grad_check.hpp"
#include "nn/conv.hpp"
#include "tensor/context.hpp"
#include "tensor/kernels/conv_direct.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "tensor/rng.hpp"

namespace minsgd {
namespace {

using nn::Conv2d;

TEST(Conv2d, OutputShapeNoPad) {
  Conv2d c(3, 8, 3);
  EXPECT_EQ(c.output_shape({2, 3, 8, 8}), Shape({2, 8, 6, 6}));
}

TEST(Conv2d, OutputShapeWithPadAndStride) {
  Conv2d c(3, 16, 3, 2, 1);
  EXPECT_EQ(c.output_shape({4, 3, 32, 32}), Shape({4, 16, 16, 16}));
}

TEST(Conv2d, AlexNetConv1Geometry) {
  Conv2d c(3, 96, 11, 4, 0);
  EXPECT_EQ(c.output_shape({1, 3, 227, 227}), Shape({1, 96, 55, 55}));
}

TEST(Conv2d, RejectsWrongChannelCount) {
  Conv2d c(3, 8, 3);
  EXPECT_THROW(c.output_shape({1, 4, 8, 8}), std::invalid_argument);
}

TEST(Conv2d, RejectsTooSmallInput) {
  Conv2d c(3, 8, 5);
  EXPECT_THROW(c.output_shape({1, 3, 4, 4}), std::invalid_argument);
}

TEST(Conv2d, RejectsBadConfig) {
  EXPECT_THROW(Conv2d(0, 8, 3), std::invalid_argument);
  EXPECT_THROW(Conv2d(3, 8, 0), std::invalid_argument);
  EXPECT_THROW(Conv2d(3, 8, 3, 0), std::invalid_argument);
  EXPECT_THROW(Conv2d(3, 8, 3, 1, -1), std::invalid_argument);
  EXPECT_THROW(Conv2d(3, 8, 3, 1, 0, true, 2),  // 3 % 2 != 0
               std::invalid_argument);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Conv2d c(1, 1, 1, 1, 0, /*bias=*/false);
  c.weight().fill(1.0f);
  Tensor x({1, 1, 3, 3}, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor y;
  c.forward(x, y, false);
  for (std::int64_t i = 0; i < 9; ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Conv2d, KnownSmallConvolution) {
  // 2x2 input, 2x2 kernel of ones, no pad: output = sum of all inputs.
  Conv2d c(1, 1, 2, 1, 0, /*bias=*/false);
  c.weight().fill(1.0f);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor y;
  c.forward(x, y, false);
  ASSERT_EQ(y.numel(), 1);
  EXPECT_EQ(y[0], 10.0f);
}

TEST(Conv2d, BiasAddsPerChannel) {
  Conv2d c(1, 2, 1, 1, 0, /*bias=*/true);
  c.weight().zero();
  c.bias()[0] = 1.5f;
  c.bias()[1] = -2.0f;
  Tensor x({1, 1, 2, 2}, 3.0f);
  Tensor y;
  c.forward(x, y, false);
  EXPECT_EQ(y.at(0, 0, 0, 0), 1.5f);
  EXPECT_EQ(y.at(0, 1, 1, 1), -2.0f);
}

TEST(Conv2d, GroupsPartitionChannels) {
  // 2 groups: output channel 0 must not depend on input channel 1.
  Conv2d c(2, 2, 1, 1, 0, /*bias=*/false, /*groups=*/2);
  c.weight().fill(1.0f);
  Tensor x({1, 2, 1, 1}, std::vector<float>{5.0f, 7.0f});
  Tensor y;
  c.forward(x, y, false);
  EXPECT_EQ(y[0], 5.0f);
  EXPECT_EQ(y[1], 7.0f);
}

TEST(Conv2d, GroupedParamCountHalved) {
  Conv2d full(96, 256, 5, 1, 2, true, 1);
  Conv2d grouped(96, 256, 5, 1, 2, true, 2);
  auto count = [](Conv2d& c) {
    std::int64_t n = 0;
    for (auto& p : c.params()) n += p.value->numel();
    return n;
  };
  EXPECT_EQ(count(full) - 256, 2 * (count(grouped) - 256));
}

TEST(Conv2d, FlopsMatchFormula) {
  Conv2d c(3, 8, 3, 1, 1);
  // out 8x8: 2 * 8 * 3 * 9 * 64
  EXPECT_EQ(c.flops({1, 3, 8, 8}), 2 * 8 * 3 * 3 * 3 * 8 * 8);
}

TEST(Conv2d, GradCheckBasic) {
  Conv2d c(2, 3, 3, 1, 1);
  testing::check_gradients(c, {2, 2, 5, 5});
}

TEST(Conv2d, GradCheckStridedNoBias) {
  Conv2d c(3, 4, 3, 2, 1, /*bias=*/false);
  testing::check_gradients(c, {2, 3, 7, 7});
}

TEST(Conv2d, GradCheckGrouped) {
  Conv2d c(4, 4, 3, 1, 1, /*bias=*/true, /*groups=*/2);
  testing::check_gradients(c, {1, 4, 5, 5});
}

TEST(Conv2d, GradCheck1x1) {
  Conv2d c(4, 6, 1, 1, 0);
  testing::check_gradients(c, {2, 4, 4, 4});
}

// Exhaustive configuration grid: every (kernel, stride, pad, groups, bias)
// combination must pass the finite-difference check.
struct ConvGridCase {
  std::int64_t kernel, stride, pad, groups;
  bool bias;
};

class ConvGradGrid : public ::testing::TestWithParam<ConvGridCase> {};

TEST_P(ConvGradGrid, GradCheck) {
  const auto& p = GetParam();
  Conv2d c(4, 4, p.kernel, p.stride, p.pad, p.bias, p.groups);
  testing::check_gradients(c, {1, 4, 6, 6},
                           /*seed=*/static_cast<std::uint64_t>(
                               p.kernel * 1000 + p.stride * 100 +
                               p.pad * 10 + p.groups));
}

std::vector<ConvGridCase> conv_grid() {
  std::vector<ConvGridCase> cases;
  for (std::int64_t k : {1, 2, 3}) {
    for (std::int64_t s : {1, 2}) {
      for (std::int64_t pad : {0, 1}) {
        for (std::int64_t g : {1, 2, 4}) {
          for (bool bias : {false, true}) {
            cases.push_back({k, s, pad, g, bias});
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, ConvGradGrid, ::testing::ValuesIn(conv_grid()));

// -- direct-path oracle -----------------------------------------------------
//
// The direct (im2col-free) conv path must agree with (a) a naive
// double-accumulated reference within float tolerance, and (b) the im2col
// path byte for byte at sizes where sgemm takes its packed microkernel path
// — same packed values, same microkernel visit order, so not just close but
// identical.

/// Restores the process-wide direct-path toggle on scope exit.
struct DirectPathGuard {
  bool prev = Conv2d::direct_enabled();
  ~DirectPathGuard() { Conv2d::set_direct_enabled(prev); }
};

bool same_bits(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) return false;
  if (a.numel() == 0) return true;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

/// Naive direct convolution, double accumulation, groups == 1.
Tensor naive_conv(const Tensor& x, const Tensor& w, const Tensor* bias,
                  std::int64_t stride, std::int64_t pad) {
  const std::int64_t batch = x.shape()[0], in_c = x.shape()[1];
  const std::int64_t h = x.shape()[2], wdim = x.shape()[3];
  const std::int64_t out_c = w.shape()[0], k = w.shape()[2];
  const std::int64_t out_h = (h + 2 * pad - k) / stride + 1;
  const std::int64_t out_w = (wdim + 2 * pad - k) / stride + 1;
  Tensor y({batch, out_c, out_h, out_w});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t oc = 0; oc < out_c; ++oc) {
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        for (std::int64_t ow = 0; ow < out_w; ++ow) {
          double acc = bias != nullptr ? (*bias)[oc] : 0.0;
          for (std::int64_t ci = 0; ci < in_c; ++ci) {
            for (std::int64_t ki = 0; ki < k; ++ki) {
              const std::int64_t ih = oh * stride - pad + ki;
              if (ih < 0 || ih >= h) continue;
              for (std::int64_t kj = 0; kj < k; ++kj) {
                const std::int64_t iw = ow * stride - pad + kj;
                if (iw < 0 || iw >= wdim) continue;
                acc += static_cast<double>(x.at(n, ci, ih, iw)) *
                       w.at(oc, ci, ki, kj);
              }
            }
          }
          y.at(n, oc, oh, ow) = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

TEST(ConvOracle, DirectForwardMatchesNaiveReference) {
  struct Case {
    std::int64_t in_c, out_c, k, pad, hw;
  };
  const Case cases[] = {
      {3, 8, 3, 1, 9},  {4, 6, 3, 0, 7},  {5, 7, 3, 1, 12},
      {4, 6, 1, 0, 8},  {8, 5, 1, 0, 5},
  };
  Rng rng(77);
  for (const auto& c : cases) {
    Conv2d conv(c.in_c, c.out_c, c.k, 1, c.pad, /*bias=*/true);
    conv.init(rng);
    rng.fill_normal(conv.bias().span(), 0.0f, 0.5f);
    Tensor x({2, c.in_c, c.hw, c.hw});
    rng.fill_normal(x.span(), 0.0f, 1.0f);
    Tensor y;
    conv.forward(x, y, false);
    const Tensor ref = naive_conv(x, conv.weight(), &conv.bias(), 1, c.pad);
    ASSERT_EQ(y.shape(), ref.shape());
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      ASSERT_NEAR(y[i], ref[i], 1e-3 * (1.0 + std::abs(ref[i])))
          << "k=" << c.k << " pad=" << c.pad << " at " << i;
    }
  }
}

TEST(ConvOracle, Direct3x3BitIdenticalToIm2colAtPackedSizes) {
  DirectPathGuard guard;
  // kdim=288, spatial=256, out_c=48: the im2col sgemm takes the packed
  // microkernel path, so direct and im2col must agree bytewise.
  Conv2d conv(32, 48, 3, 1, 1);
  Rng rng(11);
  conv.init(rng);
  rng.fill_normal(conv.bias().span(), 0.0f, 0.5f);
  Tensor x({2, 32, 16, 16});
  rng.fill_normal(x.span(), 0.0f, 1.0f);

  Tensor y_ref, y_direct;
  Conv2d::set_direct_enabled(false);
  conv.forward(x, y_ref, false);
  Conv2d::set_direct_enabled(true);
  conv.forward(x, y_direct, false);
  EXPECT_TRUE(same_bits(y_ref, y_direct));
}

TEST(ConvOracle, Direct1x1BitIdenticalToIm2colForwardBackward) {
  DirectPathGuard guard;
  Conv2d conv(64, 64, 1);
  Rng rng(13);
  conv.init(rng);
  Tensor x({2, 64, 16, 16});
  rng.fill_normal(x.span(), 0.0f, 1.0f);

  auto run = [&](bool direct, Tensor* y, Tensor* dx,
                 std::vector<float>* grads) {
    Conv2d::set_direct_enabled(direct);
    conv.forward(x, *y, true);
    Tensor dy(y->shape());
    Rng grng(17);
    grng.fill_normal(dy.span(), 0.0f, 1.0f);
    for (auto& p : conv.params()) p.grad->zero();
    conv.backward(x, *y, dy, *dx);
    grads->clear();
    for (auto& p : conv.params()) {
      grads->insert(grads->end(), p.grad->span().begin(),
                    p.grad->span().end());
    }
  };
  Tensor y_ref, dx_ref, y_dir, dx_dir;
  std::vector<float> g_ref, g_dir;
  run(false, &y_ref, &dx_ref, &g_ref);
  run(true, &y_dir, &dx_dir, &g_dir);
  EXPECT_TRUE(same_bits(y_ref, y_dir));
  EXPECT_TRUE(same_bits(dx_ref, dx_dir));
  ASSERT_EQ(g_ref.size(), g_dir.size());
  EXPECT_EQ(std::memcmp(g_ref.data(), g_dir.data(),
                        g_ref.size() * sizeof(float)),
            0);
}

TEST(ConvOracle, DirectForwardBitIdenticalAcrossIsaPaths) {
  Conv2d conv(16, 24, 3, 1, 1);
  Rng rng(19);
  conv.init(rng);
  Tensor x({2, 16, 12, 12});
  rng.fill_normal(x.span(), 0.0f, 1.0f);

  kernels::force(kernels::Isa::kPortable);
  Tensor y_portable;
  conv.forward(x, y_portable, false);
  for (kernels::Isa isa : {kernels::Isa::kAvx2, kernels::Isa::kNeon}) {
    if (!kernels::supported(isa)) continue;
    kernels::force(isa);
    Tensor y;
    conv.forward(x, y, false);
    EXPECT_TRUE(same_bits(y_portable, y))
        << kernels::to_string(isa) << " differs from portable";
  }
  kernels::clear_force();
}

TEST(ConvOracle, ZeroBatchDirectKernelNoOp) {
  // Layer::forward rejects empty inputs by contract, so zero-size coverage
  // targets the kernel API: batch == 0 must be a no-op, not a crash.
  const kernels::Conv2dGeom geom{/*in_c=*/3, /*h=*/8,  /*w=*/8,
                                 /*out_c=*/8, /*out_h=*/8, /*out_w=*/8,
                                 /*k=*/3,     /*stride=*/1, /*pad=*/1};
  std::vector<float> w(static_cast<std::size_t>(8 * 3 * 3 * 3), 1.0f);
  ComputeContext ctx(4);
  kernels::conv2d_forward_direct(ctx, nullptr, w.data(), nullptr, nullptr, 0,
                                 geom);
}

TEST(Conv2d, GradientsAccumulateAcrossBackwardCalls) {
  Conv2d c(1, 1, 1, 1, 0, /*bias=*/false);
  Rng rng(5);
  c.init(rng);
  Tensor x({1, 1, 2, 2}, 1.0f), y, dy({1, 1, 2, 2}, 1.0f), dx;
  c.forward(x, y, true);
  for (auto& p : c.params()) p.grad->zero();
  c.backward(x, y, dy, dx);
  const float once = c.params()[0].grad->operator[](0);
  c.backward(x, y, dy, dx);
  EXPECT_FLOAT_EQ(c.params()[0].grad->operator[](0), 2.0f * once);
}

}  // namespace
}  // namespace minsgd
