#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/tensor.hpp"

namespace minsgd {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  ASSERT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t({4}, 2.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}),
               std::invalid_argument);
}

TEST(Tensor, RowMajor2dIndexing) {
  Tensor t({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at(0, 0), 0.0f);
  EXPECT_EQ(t.at(0, 2), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 2), 5.0f);
}

TEST(Tensor, Nchw4dIndexing) {
  Tensor t({2, 2, 2, 2});
  t.at(1, 1, 1, 1) = 42.0f;
  EXPECT_EQ(t[15], 42.0f);
  t.at(0, 1, 0, 1) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
}

TEST(Tensor, CopyIsDeep) {
  Tensor a({2}, 1.0f);
  Tensor b = a;
  b[0] = 9.0f;
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(b[0], 9.0f);
}

TEST(Tensor, ReshapedPreservesData) {
  Tensor a({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
  Tensor b = a.reshaped({3, 2});
  EXPECT_EQ(b.shape(), Shape({3, 2}));
  EXPECT_EQ(b.at(2, 1), 5.0f);
}

TEST(Tensor, ReshapedRejectsNumelMismatch) {
  Tensor a({2, 3});
  EXPECT_THROW(a.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, ResizeReallocatesOnlyOnNumelChange) {
  Tensor a({2, 3}, 5.0f);
  a.resize({3, 2});  // same numel: data kept
  EXPECT_EQ(a[0], 5.0f);
  a.resize({4, 4});  // different numel: zeroed
  EXPECT_EQ(a.numel(), 16);
  EXPECT_EQ(a[0], 0.0f);
}

TEST(Tensor, FillAndZero) {
  Tensor a({3}, 1.0f);
  a.fill(2.0f);
  EXPECT_EQ(a[2], 2.0f);
  a.zero();
  EXPECT_EQ(a[0], 0.0f);
}

TEST(Tensor, SpanViewsData) {
  Tensor a({3}, 1.5f);
  auto s = a.span();
  s[1] = 3.0f;
  EXPECT_EQ(a[1], 3.0f);
  EXPECT_EQ(s.size(), 3u);
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace minsgd
