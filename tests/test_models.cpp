#include <gtest/gtest.h>

#include "nn/analysis.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"

namespace minsgd {
namespace {

// Table 6: AlexNet ~61M params / ~1.5 GFLOP; ResNet-50 ~25M / ~7.7 GFLOP;
// scaling ratios 24.6 and 308 respectively. Our from-scratch definitions
// must land within a few percent of the paper's rounded numbers.

TEST(Models, AlexNetParamsMatchTable6) {
  auto net = nn::alexnet();
  const auto prof = nn::profile_model(*net, nn::alexnet_input());
  EXPECT_NEAR(static_cast<double>(prof.params), 61.0e6, 1.5e6);
}

TEST(Models, AlexNetFlopsMatchTable6) {
  auto net = nn::alexnet();
  const auto prof = nn::profile_model(*net, nn::alexnet_input());
  EXPECT_NEAR(static_cast<double>(prof.flops_per_image), 1.5e9, 0.12e9);
}

TEST(Models, AlexNetScalingRatioNearPaper) {
  auto net = nn::alexnet();
  const auto prof = nn::profile_model(*net, nn::alexnet_input());
  EXPECT_NEAR(prof.scaling_ratio(), 24.6, 2.0);
}

TEST(Models, ResNet50ParamsMatchTable6) {
  auto net = nn::resnet(50);
  const auto prof = nn::profile_model(*net, nn::resnet_input());
  EXPECT_NEAR(static_cast<double>(prof.params), 25.5e6, 1.0e6);
}

TEST(Models, ResNet50FlopsMatchTable6) {
  auto net = nn::resnet(50);
  const auto prof = nn::profile_model(*net, nn::resnet_input());
  EXPECT_NEAR(static_cast<double>(prof.flops_per_image), 7.7e9, 0.4e9);
}

TEST(Models, ResNet50ScalingRatioNearPaper) {
  auto net = nn::resnet(50);
  const auto prof = nn::profile_model(*net, nn::resnet_input());
  EXPECT_NEAR(prof.scaling_ratio(), 308.0, 15.0);
}

TEST(Models, ScalingRatioGapIsAboutTwelveX) {
  auto a = nn::alexnet();
  auto r = nn::resnet(50);
  const auto pa = nn::profile_model(*a, nn::alexnet_input());
  const auto pr = nn::profile_model(*r, nn::resnet_input());
  EXPECT_NEAR(pr.scaling_ratio() / pa.scaling_ratio(), 12.5, 1.5);
}

TEST(Models, AlexNetOutputShape) {
  auto net = nn::alexnet(1000);
  EXPECT_EQ(net->output_shape({4, 3, 227, 227}), Shape({4, 1000}));
}

TEST(Models, AlexNetBnReplacesLrn) {
  auto lrn_net = nn::alexnet(10, nn::AlexNetNorm::kLRN);
  auto bn_net = nn::alexnet(10, nn::AlexNetNorm::kBN);
  // The BN variant has extra learnable scale/shift parameters.
  EXPECT_GT(bn_net->num_params(), lrn_net->num_params());
  EXPECT_EQ(bn_net->output_shape({1, 3, 227, 227}), Shape({1, 10}));
}

TEST(Models, ResNet18And34Shapes) {
  auto r18 = nn::resnet(18, 10);
  auto r34 = nn::resnet(34, 10);
  EXPECT_EQ(r18->output_shape({2, 3, 224, 224}), Shape({2, 10}));
  EXPECT_EQ(r34->output_shape({2, 3, 224, 224}), Shape({2, 10}));
  // Known parameter counts (torchvision, fc resized to 10 classes):
  // ResNet-18 ~11.2M, ResNet-34 ~21.3M.
  EXPECT_NEAR(static_cast<double>(r18->num_params()), 11.2e6, 0.5e6);
  EXPECT_NEAR(static_cast<double>(r34->num_params()), 21.3e6, 0.8e6);
}

TEST(Models, ResNetRejectsUnknownDepth) {
  EXPECT_THROW(nn::resnet(99), std::invalid_argument);
}

TEST(Models, TinyAlexNetForwardBackwardSmoke) {
  auto net = nn::tiny_alexnet(8, 16);
  Rng rng(1);
  net->init(rng);
  Tensor x({4, 3, 16, 16});
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor y;
  net->forward(x, y, true);
  EXPECT_EQ(y.shape(), Shape({4, 8}));
  Tensor dy(y.shape(), 0.1f), dx;
  net->zero_grad();
  net->backward(x, y, dy, dx);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Models, TinyResNetForwardSmoke) {
  auto net = nn::tiny_resnet(1, 8, 16);  // ResNet-8 style
  Rng rng(2);
  net->init(rng);
  Tensor x({2, 3, 16, 16});
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor y;
  net->forward(x, y, false);
  EXPECT_EQ(y.shape(), Shape({2, 8}));
}

TEST(Models, TinyModelsRejectBadConfig) {
  EXPECT_THROW(nn::tiny_alexnet(8, 8), std::invalid_argument);
  EXPECT_THROW(nn::tiny_resnet(0, 8, 16), std::invalid_argument);
  EXPECT_THROW(nn::tiny_resnet(2, 8, 4), std::invalid_argument);
}

TEST(Models, FullAlexNetForwardSmoke) {
  // One full-resolution image through the real architecture.
  auto net = nn::alexnet(1000);
  Rng rng(3);
  net->init(rng);
  Tensor x({1, 3, 227, 227});
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor y;
  net->forward(x, y, false);
  EXPECT_EQ(y.shape(), Shape({1, 1000}));
}

TEST(Models, ResNet18BackwardSmoke) {
  // Full residual architecture end to end (reduced input resolution so the
  // test stays fast; the graph structure is identical to 224).
  auto net = nn::resnet(18, 10);
  Rng rng(4);
  net->init(rng);
  Tensor x({1, 3, 64, 64});
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  Tensor y;
  net->forward(x, y, true);
  ASSERT_EQ(y.shape(), Shape({1, 10}));
  Tensor dy(y.shape(), 0.1f), dx;
  net->zero_grad();
  net->backward(x, y, dy, dx);
  EXPECT_EQ(dx.shape(), x.shape());
  EXPECT_TRUE(all_finite(dx.span()));
  for (auto& p : net->params()) {
    ASSERT_TRUE(all_finite(p.grad->span())) << p.name;
  }
}

TEST(Models, NetworkHandlesVaryingBatchSizes) {
  // Layers cache scratch buffers; a smaller batch after a larger one must
  // resize them correctly (the evaluation path does exactly this).
  auto net = nn::tiny_alexnet(4, 16, nn::AlexNetNorm::kBN, 4);
  Rng rng(6);
  net->init(rng);
  Tensor big({8, 3, 16, 16}), small({2, 3, 16, 16}), y;
  rng.fill_normal(big.span(), 0.0f, 1.0f);
  rng.fill_normal(small.span(), 0.0f, 1.0f);
  net->forward(big, y, true);
  EXPECT_EQ(y.shape()[0], 8);
  net->forward(small, y, true);
  EXPECT_EQ(y.shape()[0], 2);
  net->forward(big, y, false);
  EXPECT_EQ(y.shape()[0], 8);
}

TEST(Models, LayerTableListsEveryLayer) {
  auto net = nn::tiny_resnet(1, 8, 16);
  const auto table = nn::layer_table(*net, {1, 3, 16, 16});
  EXPECT_NE(table.find("resblock"), std::string::npos);
  EXPECT_NE(table.find("gap"), std::string::npos);
  EXPECT_NE(table.find("linear"), std::string::npos);
}

}  // namespace
}  // namespace minsgd
