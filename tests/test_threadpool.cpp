#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "tensor/threadpool.hpp"

namespace minsgd {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ParallelFor, CoversEntireRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000,
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) {
                   hits[static_cast<std::size_t>(i)].fetch_add(1);
                 }
               },
               /*grain=*/16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoOp) {
  bool called = false;
  parallel_for(5, 5, [&](std::int64_t, std::int64_t) { called = true; });
  parallel_for(5, 3, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, NonZeroBegin) {
  std::atomic<std::int64_t> sum{0};
  parallel_for(10, 20,
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
               },
               /*grain=*/2);
  EXPECT_EQ(sum.load(), 145);  // 10+..+19
}

TEST(ParallelFor, SmallRangeRunsInline) {
  // grain larger than range: single chunk, same thread semantics.
  std::vector<int> hits(8, 0);
  parallel_for(0, 8,
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) ++hits[i];
               },
               /*grain=*/1024);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 8);
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
  std::atomic<int> count{0};
  parallel_for(0, 4, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      parallel_for(0, 4, [&](std::int64_t l2, std::int64_t h2) {
        count.fetch_add(static_cast<int>(h2 - l2));
      });
    }
  });
  EXPECT_EQ(count.load(), 16);
}

}  // namespace
}  // namespace minsgd
