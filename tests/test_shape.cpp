#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/shape.hpp"

namespace minsgd {
namespace {

TEST(Shape, DefaultIsRankZeroScalar) {
  Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, RankAndDims) {
  Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.rank(), 4u);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[3], 5);
  EXPECT_EQ(s.numel(), 120);
}

TEST(Shape, Rank1) {
  Shape s{7};
  EXPECT_EQ(s.rank(), 1u);
  EXPECT_EQ(s.numel(), 7);
}

TEST(Shape, ZeroDimGivesZeroNumel) {
  Shape s{4, 0, 2};
  EXPECT_EQ(s.numel(), 0);
}

TEST(Shape, EqualityRequiresSameRankAndDims) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
  EXPECT_NE(Shape({6}), Shape({2, 3}));
}

TEST(Shape, OutOfRangeIndexThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s[2], std::out_of_range);
}

TEST(Shape, NegativeDimThrows) {
  EXPECT_THROW(Shape({2, -1}), std::invalid_argument);
}

TEST(Shape, RankAboveFourThrows) {
  EXPECT_THROW(Shape({1, 2, 3, 4, 5}), std::invalid_argument);
}

TEST(Shape, StrFormatsDims) {
  EXPECT_EQ(Shape({2, 3}).str(), "[2, 3]");
  EXPECT_EQ(Shape{}.str(), "[]");
}

}  // namespace
}  // namespace minsgd
