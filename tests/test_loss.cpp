#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "tensor/rng.hpp"

namespace minsgd {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  nn::SoftmaxCrossEntropy loss;
  Tensor logits({2, 4});  // all zeros
  std::vector<std::int32_t> labels{0, 3};
  const auto res = loss.forward_backward(logits, labels, nullptr);
  EXPECT_NEAR(res.loss, std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectHasLowLoss) {
  nn::SoftmaxCrossEntropy loss;
  Tensor logits({1, 3}, std::vector<float>{10.0f, 0.0f, 0.0f});
  std::vector<std::int32_t> labels{0};
  const auto res = loss.forward_backward(logits, labels, nullptr);
  EXPECT_LT(res.loss, 1e-3);
  EXPECT_EQ(res.correct, 1);
}

TEST(SoftmaxCrossEntropy, CountsTopOneCorrect) {
  nn::SoftmaxCrossEntropy loss;
  Tensor logits({3, 2}, std::vector<float>{1, 0, 0, 1, 5, -5});
  std::vector<std::int32_t> labels{0, 0, 0};
  const auto res = loss.forward_backward(logits, labels, nullptr);
  EXPECT_EQ(res.correct, 2);
}

TEST(SoftmaxCrossEntropy, GradientIsProbMinusOneHotOverBatch) {
  nn::SoftmaxCrossEntropy loss;
  Tensor logits({1, 2}, std::vector<float>{0.0f, 0.0f});
  std::vector<std::int32_t> labels{1};
  Tensor dlogits;
  loss.forward_backward(logits, labels, &dlogits);
  EXPECT_NEAR(dlogits[0], 0.5f, 1e-6);
  EXPECT_NEAR(dlogits[1], -0.5f, 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  nn::SoftmaxCrossEntropy loss;
  Rng rng(17);
  Tensor logits({4, 5});
  rng.fill_normal(logits.span(), 0.0f, 2.0f);
  std::vector<std::int32_t> labels{3, 0, 4, 1};
  Tensor dlogits;
  const auto base = loss.forward_backward(logits, labels, &dlogits);
  (void)base;
  const double h = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); i += 3) {
    const float orig = logits[i];
    logits[i] = orig + static_cast<float>(h);
    const double lp = loss.forward_backward(logits, labels, nullptr).loss;
    logits[i] = orig - static_cast<float>(h);
    const double lm = loss.forward_backward(logits, labels, nullptr).loss;
    logits[i] = orig;
    EXPECT_NEAR(dlogits[i], (lp - lm) / (2 * h), 1e-3);
  }
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  nn::SoftmaxCrossEntropy loss;
  Rng rng(23);
  Tensor logits({2, 6});
  rng.fill_normal(logits.span(), 0.0f, 1.0f);
  std::vector<std::int32_t> labels{2, 5};
  Tensor dlogits;
  loss.forward_backward(logits, labels, &dlogits);
  for (std::int64_t r = 0; r < 2; ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < 6; ++c) s += dlogits.at(r, c);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, StableForExtremeLogits) {
  nn::SoftmaxCrossEntropy loss;
  Tensor logits({1, 2}, std::vector<float>{1000.0f, -1000.0f});
  std::vector<std::int32_t> labels{0};
  Tensor dlogits;
  const auto res = loss.forward_backward(logits, labels, &dlogits);
  EXPECT_TRUE(std::isfinite(res.loss));
  EXPECT_NEAR(res.loss, 0.0, 1e-6);
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  nn::SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  EXPECT_THROW(
      loss.forward_backward(logits, std::vector<std::int32_t>{3}, nullptr),
      std::out_of_range);
  EXPECT_THROW(
      loss.forward_backward(logits, std::vector<std::int32_t>{-1}, nullptr),
      std::out_of_range);
}

TEST(SoftmaxCrossEntropy, RejectsLabelCountMismatch) {
  nn::SoftmaxCrossEntropy loss;
  Tensor logits({2, 3});
  EXPECT_THROW(
      loss.forward_backward(logits, std::vector<std::int32_t>{0}, nullptr),
      std::invalid_argument);
}

}  // namespace
}  // namespace minsgd
