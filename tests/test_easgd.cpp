#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "optim/schedule.hpp"
#include "train/easgd.hpp"

namespace minsgd {
namespace {

data::SynthConfig data_cfg() {
  data::SynthConfig c;
  c.classes = 4;
  c.resolution = 12;
  c.train_size = 256;
  c.test_size = 128;
  c.noise = 0.4f;
  c.seed = 5;
  return c;
}

std::unique_ptr<nn::Network> det_model() {
  auto net = std::make_unique<nn::Network>("det");
  net->emplace<nn::Conv2d>(3, 8, 3, 1, 1);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2, 2);
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(8 * 36, 4);
  return net;
}

TEST(Easgd, CenterLearnsTheTask) {
  data::SyntheticImageNet ds(data_cfg());
  train::TrainOptions options;
  options.global_batch = 32;
  options.epochs = 6;
  optim::ConstantLr lr(0.02);
  const auto res = train::train_easgd(det_model, lr, ds, options, 4);
  EXPECT_FALSE(res.diverged);
  EXPECT_GT(res.center_test_acc, 0.5);  // chance is 0.25
}

TEST(Easgd, ElasticUpdatesMatchPeriod) {
  data::SyntheticImageNet ds(data_cfg());
  train::TrainOptions options;
  options.global_batch = 32;
  options.epochs = 2;
  optim::ConstantLr lr(0.01);
  train::EasgdConfig cfg;
  cfg.communication_period = 4;
  const auto res = train::train_easgd(det_model, lr, ds, options, 2, cfg);
  // Each of the 2 workers runs 2 epochs x 8 iterations = 16 steps, syncing
  // every 4 steps: 4 syncs each, 8 total.
  EXPECT_EQ(res.elastic_updates, 8);
}

TEST(Easgd, SingleWorkerPeriodOneTracksSgdClosely) {
  // With one worker and tau = 1, the center is an elastic moving average
  // of a plain SGD trajectory: it must reach a similar accuracy.
  data::SyntheticImageNet ds(data_cfg());
  train::TrainOptions options;
  options.global_batch = 32;
  options.epochs = 6;
  optim::ConstantLr lr(0.02);
  train::EasgdConfig cfg;
  cfg.communication_period = 1;
  cfg.alpha = 0.5;
  const auto res = train::train_easgd(det_model, lr, ds, options, 1, cfg);
  EXPECT_GT(res.center_test_acc, 0.5);
}

TEST(Easgd, RejectsBadConfig) {
  data::SyntheticImageNet ds(data_cfg());
  train::TrainOptions options;
  options.global_batch = 32;
  optim::ConstantLr lr(0.01);
  EXPECT_THROW(train::train_easgd(det_model, lr, ds, options, 0),
               std::invalid_argument);
  EXPECT_THROW(train::train_easgd(det_model, lr, ds, options, 3),
               std::invalid_argument);  // 32 % 3 != 0
  train::EasgdConfig bad;
  bad.alpha = 1.5;
  EXPECT_THROW(train::train_easgd(det_model, lr, ds, options, 2, bad),
               std::invalid_argument);
  bad = {};
  bad.communication_period = 0;
  EXPECT_THROW(train::train_easgd(det_model, lr, ds, options, 2, bad),
               std::invalid_argument);
}

TEST(Easgd, DivergenceDetected) {
  data::SyntheticImageNet ds(data_cfg());
  train::TrainOptions options;
  options.global_batch = 32;
  options.epochs = 3;
  optim::ConstantLr lr(500.0);
  const auto res = train::train_easgd(det_model, lr, ds, options, 2);
  EXPECT_TRUE(res.diverged);
}

}  // namespace
}  // namespace minsgd
