// Behavioral coverage for every MINSGD_* runtime gate.
//
// Each gate's environment read happens once, at first use, so re-exporting a
// variable mid-process cannot change behavior; what CAN be tested is the
// mechanism the variable feeds — every runtime gate resolves to a
// programmatic setter or constructor argument, and these tests pin that
// behavior down. The env-gate registry check (tools/analyze/analyze.py)
// requires every runtime gate to be exercised by at least one test; this
// file is that anchor for:
//
//   MINSGD_THREADS            -> ComputeContext::default_threads()
//   MINSGD_KERNEL_ISA         -> kernels::force() / active()
//   MINSGD_CONV_DIRECT        -> Conv2d::set_direct_enabled()
//   MINSGD_MEMPLAN            -> nn::ExecutionPlan::set_enabled()
//   MINSGD_MEMPLAN_RECOMPUTE  -> nn::ExecutionPlan::set_recompute_default()
//   MINSGD_FLIGHT             -> obs::FlightRecorder::set_enabled()
//   MINSGD_FLIGHT_CAPACITY    -> obs::FlightRecorder(capacity_per_lane)
#include <gtest/gtest.h>

#include <cstring>

#include "nn/conv.hpp"
#include "nn/plan.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "tensor/context.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace minsgd {
namespace {

// MINSGD_THREADS seeds the process-wide context width; whatever the
// environment says, the resolved count must be usable (>= 1).
TEST(EnvGates, ThreadsGateResolvesToUsableWidth) {
  EXPECT_GE(ComputeContext::default_threads(), 1u);
  EXPECT_GE(ComputeContext::default_ctx().threads(), 1u);
}

// MINSGD_KERNEL_ISA is the env twin of kernels::force(): both pin active().
TEST(EnvGates, KernelIsaForcePinsActiveSelection) {
  const kernels::Isa prev = kernels::active();
  kernels::force(kernels::Isa::kPortable);
  EXPECT_EQ(kernels::active(), kernels::Isa::kPortable);
  kernels::clear_force();
  EXPECT_EQ(kernels::active(), prev);
}

// MINSGD_CONV_DIRECT seeds Conv2d::direct_enabled(); flipping the toggle
// must not change a single output bit (the direct path's whole contract).
// Geometry is chosen so the im2col sgemm takes the packed microkernel path
// (kdim=288, spatial=256, out_c=48), where bytewise agreement is the pinned
// contract (ConvOracle.Direct3x3BitIdenticalToIm2colAtPackedSizes).
TEST(EnvGates, ConvDirectGateIsBitInvisible) {
  const bool prev = nn::Conv2d::direct_enabled();
  nn::Conv2d conv(32, 48, 3, 1, 1);
  Rng rng(29);
  conv.init(rng);
  Tensor x({2, 32, 16, 16});
  rng.fill_normal(x.span(), 0.0f, 1.0f);

  Tensor y_off, y_on;
  nn::Conv2d::set_direct_enabled(false);
  conv.forward(x, y_off, /*training=*/false);
  nn::Conv2d::set_direct_enabled(true);
  conv.forward(x, y_on, /*training=*/false);
  nn::Conv2d::set_direct_enabled(prev);

  ASSERT_EQ(y_off.shape(), y_on.shape());
  EXPECT_EQ(std::memcmp(y_off.data(), y_on.data(),
                        static_cast<std::size_t>(y_off.numel()) *
                            sizeof(float)),
            0);
}

// MINSGD_MEMPLAN seeds ExecutionPlan::enabled() (default on).
TEST(EnvGates, MemplanGateRoundTrips) {
  const bool prev = nn::ExecutionPlan::enabled();
  nn::ExecutionPlan::set_enabled(false);
  EXPECT_FALSE(nn::ExecutionPlan::enabled());
  nn::ExecutionPlan::set_enabled(true);
  EXPECT_TRUE(nn::ExecutionPlan::enabled());
  nn::ExecutionPlan::set_enabled(prev);
}

// MINSGD_MEMPLAN_RECOMPUTE seeds the plan's recompute-cheap policy default.
TEST(EnvGates, MemplanRecomputeGateRoundTrips) {
  const bool prev = nn::ExecutionPlan::recompute_default();
  nn::ExecutionPlan::set_recompute_default(!prev);
  EXPECT_EQ(nn::ExecutionPlan::recompute_default(), !prev);
  nn::ExecutionPlan::set_recompute_default(prev);
  EXPECT_EQ(nn::ExecutionPlan::recompute_default(), prev);
}

// MINSGD_FLIGHT / MINSGD_FLIGHT_CAPACITY feed the recorder's enabled flag
// and per-lane ring size. record() itself is unconditional by design — the
// enabled() gate lives at every call site — so the disabled phase models
// the caller contract `if (rec.enabled()) rec.record(...)`.
TEST(EnvGates, FlightGatesControlRecordingAndRingSize) {
  obs::FlightRecorder rec(/*capacity_per_lane=*/32);
  EXPECT_EQ(rec.capacity_per_lane(), 32u);

  obs::set_thread_rank(0);
  rec.set_enabled(false);
  if (rec.enabled()) {
    rec.record(obs::FlightKind::kStep, obs::FlightOp::kNone, 0, 1, 0, 0, 0);
  }
  EXPECT_TRUE(rec.snapshot().empty());

  rec.set_enabled(true);
  for (int i = 0; i < 100; ++i) {
    if (!rec.enabled()) break;
    rec.record(obs::FlightKind::kStep, obs::FlightOp::kNone, 0, 1, 0, 0, i);
  }
  const auto events = rec.snapshot();
  obs::set_thread_rank(-1);
  EXPECT_FALSE(events.empty());
  EXPECT_LE(events.size(), 32u);
}

}  // namespace
}  // namespace minsgd
