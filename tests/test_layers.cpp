#include <gtest/gtest.h>

#include "grad_check.hpp"
#include "nn/activation.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"

namespace minsgd {
namespace {

// ---------------- ReLU ----------------

TEST(ReLU, ForwardClampsNegatives) {
  nn::ReLU r;
  Tensor x({1, 4}, std::vector<float>{-2, -0.5f, 0, 3});
  Tensor y;
  r.forward(x, y, false);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 0.0f);
  EXPECT_EQ(y[3], 3.0f);
}

TEST(ReLU, GradCheck) {
  nn::ReLU r;
  testing::check_gradients(r, {2, 3, 4, 4}, /*seed=*/123,
                           {.step = 1e-3, .kink_skip = 1e-2});
}

TEST(ReLU, PreservesShape) {
  nn::ReLU r;
  EXPECT_EQ(r.output_shape({5, 7}), Shape({5, 7}));
}

// ---------------- Flatten ----------------

TEST(Flatten, CollapsesTrailingDims) {
  nn::Flatten f;
  EXPECT_EQ(f.output_shape({4, 3, 2, 2}), Shape({4, 12}));
}

TEST(Flatten, RoundTripsGradient) {
  nn::Flatten f;
  testing::check_gradients(f, {2, 2, 3, 3});
}

TEST(Flatten, RejectsRank1) {
  nn::Flatten f;
  EXPECT_THROW(f.output_shape({4}), std::invalid_argument);
}

// ---------------- Linear ----------------

TEST(Linear, ForwardMatchesManual) {
  nn::Linear l(2, 3);
  // W is (out x in) = [[1,2],[3,4],[5,6]], b = [0.5, -0.5, 0].
  l.weight() = Tensor({3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  l.bias() = Tensor({3}, std::vector<float>{0.5f, -0.5f, 0.0f});
  Tensor x({1, 2}, std::vector<float>{10, 20});
  Tensor y;
  l.forward(x, y, false);
  EXPECT_FLOAT_EQ(y[0], 50.5f);
  EXPECT_FLOAT_EQ(y[1], 109.5f);
  EXPECT_FLOAT_EQ(y[2], 170.0f);
}

TEST(Linear, GradCheck) {
  nn::Linear l(5, 4);
  testing::check_gradients(l, {3, 5});
}

TEST(Linear, GradCheckNoBias) {
  nn::Linear l(4, 4, /*bias=*/false);
  testing::check_gradients(l, {2, 4});
  EXPECT_EQ(l.params().size(), 1u);
}

TEST(Linear, FlopsFormula) {
  nn::Linear l(128, 64);
  EXPECT_EQ(l.flops({1, 128}), 2 * 128 * 64);
}

TEST(Linear, RejectsBadInput) {
  nn::Linear l(4, 2);
  EXPECT_THROW(l.output_shape({2, 5}), std::invalid_argument);
  EXPECT_THROW(l.output_shape({2, 4, 1, 1}), std::invalid_argument);
}

// ---------------- MaxPool ----------------

TEST(MaxPool, ForwardPicksMaxima) {
  nn::MaxPool2d p(2, 2);
  Tensor x({1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  Tensor y;
  p.forward(x, y, false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_EQ(y[0], 5.0f);
  EXPECT_EQ(y[1], 7.0f);
  EXPECT_EQ(y[2], 13.0f);
  EXPECT_EQ(y[3], 15.0f);
}

TEST(MaxPool, AlexNetOverlappingPoolGeometry) {
  nn::MaxPool2d p(3, 2);
  EXPECT_EQ(p.output_shape({1, 96, 55, 55}), Shape({1, 96, 27, 27}));
}

TEST(MaxPool, BackwardRoutesToArgmaxOnly) {
  nn::MaxPool2d p(2, 2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 9, 3, 4});
  Tensor y, dy({1, 1, 1, 1}, std::vector<float>{2.0f}), dx;
  p.forward(x, y, true);
  p.backward(x, y, dy, dx);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 2.0f);
  EXPECT_EQ(dx[2], 0.0f);
  EXPECT_EQ(dx[3], 0.0f);
}

TEST(MaxPool, GradCheck) {
  // Distinct random values make the argmax stable under the FD step.
  nn::MaxPool2d p(2, 2);
  testing::check_gradients(p, {2, 2, 6, 6}, /*seed=*/321,
                           {.step = 1e-4, .rel_tol = 2e-2, .abs_tol = 1e-4});
}

TEST(MaxPool, PaddedPoolIgnoresPadding) {
  nn::MaxPool2d p(3, 2, 1);
  Tensor x({1, 1, 2, 2}, std::vector<float>{-1, -2, -3, -4});
  Tensor y;
  p.forward(x, y, false);
  // With negative inputs, zero padding must NOT win (it is skipped, not 0).
  EXPECT_EQ(y[0], -1.0f);
}

// ---------------- AvgPool ----------------

TEST(AvgPool, ForwardAverages) {
  nn::AvgPool2d p(2, 2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor y;
  p.forward(x, y, false);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(AvgPool, GradCheck) {
  nn::AvgPool2d p(2, 2);
  testing::check_gradients(p, {2, 3, 4, 4});
}

TEST(AvgPool, GradCheckOverlapping) {
  nn::AvgPool2d p(3, 2, 1);
  testing::check_gradients(p, {1, 2, 5, 5});
}

// ---------------- GlobalAvgPool ----------------

TEST(GlobalAvgPool, ReducesToChannels) {
  nn::GlobalAvgPool g;
  Tensor x({2, 3, 4, 4}, 2.0f);
  Tensor y;
  g.forward(x, y, false);
  EXPECT_EQ(y.shape(), Shape({2, 3}));
  EXPECT_FLOAT_EQ(y[0], 2.0f);
}

TEST(GlobalAvgPool, GradCheck) {
  nn::GlobalAvgPool g;
  testing::check_gradients(g, {2, 4, 3, 3});
}

// ---------------- Dropout ----------------

TEST(Dropout, EvalModeIsIdentity) {
  nn::Dropout d(0.5f);
  Tensor x({1, 100}, 1.0f), y;
  d.forward(x, y, /*training=*/false);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(y[i], 1.0f);
}

TEST(Dropout, TrainModeZeroesAboutPFraction) {
  nn::Dropout d(0.5f, /*seed=*/42);
  Tensor x({1, 10000}, 1.0f), y;
  d.forward(x, y, /*training=*/true);
  int zeros = 0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (y[i] == 0.0f) ++zeros;
  }
  EXPECT_NEAR(zeros, 5000, 200);
}

TEST(Dropout, SurvivorsScaledByInverseKeep) {
  nn::Dropout d(0.75f, 1);
  Tensor x({1, 1000}, 1.0f), y;
  d.forward(x, y, true);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_TRUE(y[i] == 0.0f || y[i] == 4.0f);
  }
}

TEST(Dropout, BackwardUsesSameMask) {
  nn::Dropout d(0.5f, 7);
  Tensor x({1, 64}, 1.0f), y, dy({1, 64}, 1.0f), dx;
  d.forward(x, y, true);
  d.backward(x, y, dy, dx);
  for (std::int64_t i = 0; i < 64; ++i) EXPECT_EQ(dx[i], y[i]);
}

TEST(Dropout, ZeroProbabilityIsIdentityInTraining) {
  nn::Dropout d(0.0f);
  Tensor x({1, 8}, 3.0f), y;
  d.forward(x, y, true);
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_EQ(y[i], 3.0f);
}

TEST(Dropout, RejectsInvalidP) {
  EXPECT_THROW(nn::Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(nn::Dropout(1.0f), std::invalid_argument);
}

}  // namespace
}  // namespace minsgd
