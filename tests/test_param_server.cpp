#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "comm/param_server.hpp"

namespace minsgd {
namespace {

using comm::ParameterServer;

TEST(ParameterServer, PullReturnsInitialWeights) {
  ParameterServer ps({1.0f, 2.0f, 3.0f});
  ps.set_workers(1);
  std::vector<float> w(3);
  ps.pull(0, w);
  EXPECT_EQ(w, (std::vector<float>{1.0f, 2.0f, 3.0f}));
}

TEST(ParameterServer, PushAppliesSgdStep) {
  ParameterServer ps({1.0f});
  ps.set_workers(1);
  std::vector<float> w(1);
  ps.pull(0, w);
  ps.push_pull(0, std::vector<float>{2.0f}, 0.5, w);
  EXPECT_FLOAT_EQ(w[0], 0.0f);  // 1 - 0.5*2
  EXPECT_EQ(ps.updates_applied(), 1);
}

TEST(ParameterServer, StalenessZeroWhenAlone) {
  ParameterServer ps({0.0f});
  ps.set_workers(1);
  std::vector<float> w(1);
  ps.pull(0, w);
  EXPECT_EQ(ps.push_pull(0, std::vector<float>{1.0f}, 0.1, w), 0);
  EXPECT_EQ(ps.push_pull(0, std::vector<float>{1.0f}, 0.1, w), 0);
}

TEST(ParameterServer, StalenessCountsInterleavedUpdates) {
  ParameterServer ps({0.0f});
  ps.set_workers(2);
  std::vector<float> w(1);
  ps.pull(0, w);
  ps.pull(1, w);
  ps.push_pull(1, std::vector<float>{1.0f}, 0.1, w);
  ps.push_pull(1, std::vector<float>{1.0f}, 0.1, w);
  // Worker 0 pulled at version 0; two updates landed since.
  EXPECT_EQ(ps.push_pull(0, std::vector<float>{1.0f}, 0.1, w), 2);
  EXPECT_EQ(ps.max_staleness(), 2);
}

TEST(ParameterServer, DimensionMismatchThrows) {
  ParameterServer ps({0.0f, 0.0f});
  ps.set_workers(1);
  std::vector<float> w(2), bad(1);
  EXPECT_THROW(ps.pull(0, bad), std::invalid_argument);
  EXPECT_THROW(ps.push_pull(0, bad, 0.1, w), std::invalid_argument);
}

TEST(ParameterServer, ConcurrentPushesAllApplied) {
  ParameterServer ps({0.0f});
  const int workers = 8, per_worker = 50;
  ps.set_workers(workers);
  // minsgd-lint: allow(thread-spawn): raw threads hammer
  // ParameterServer::push_pull on purpose — the unit under test is its
  // internal locking.
  std::vector<std::thread> threads;
  for (int t = 0; t < workers; ++t) {
    threads.emplace_back([&, t] {
      std::vector<float> w(1);
      ps.pull(t, w);
      for (int i = 0; i < per_worker; ++i) {
        ps.push_pull(t, std::vector<float>{1.0f}, 1.0, w);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ps.updates_applied(), workers * per_worker);
  std::vector<float> w(1);
  ps.pull(0, w);
  EXPECT_FLOAT_EQ(w[0], -static_cast<float>(workers * per_worker));
}

}  // namespace
}  // namespace minsgd
