#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <tuple>
#include <vector>

#include "obs/metrics.hpp"
#include "tensor/context.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "tensor/rng.hpp"

namespace minsgd {
namespace {

// Naive reference: C = alpha*op(A)*op(B) + beta*C, packed row-major.
void ref_gemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
              std::int64_t k, float alpha, const std::vector<float>& a,
              const std::vector<float>& b, float beta, std::vector<float>& c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta == Trans::kNo
                             ? a[static_cast<std::size_t>(i * k + p)]
                             : a[static_cast<std::size_t>(p * m + i)];
        const float bv = tb == Trans::kNo
                             ? b[static_cast<std::size_t>(p * n + j)]
                             : b[static_cast<std::size_t>(j * k + p)];
        acc += static_cast<double>(av) * bv;
      }
      auto& cv = c[static_cast<std::size_t>(i * n + j)];
      cv = alpha * static_cast<float>(acc) + beta * cv;
    }
  }
}

struct GemmCase {
  std::int64_t m, n, k;
  Trans ta, tb;
  float alpha, beta;
};

class GemmVsReference : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmVsReference, Matches) {
  const auto& p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p.m * 131 + p.n * 17 + p.k));
  std::vector<float> a(static_cast<std::size_t>(p.m * p.k));
  std::vector<float> b(static_cast<std::size_t>(p.k * p.n));
  std::vector<float> c(static_cast<std::size_t>(p.m * p.n));
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  rng.fill_normal(c, 0.0f, 1.0f);
  std::vector<float> c_ref = c;

  sgemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a.data(), b.data(), p.beta,
        c.data());
  ref_gemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a, b, p.beta, c_ref);

  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], c_ref[i], 1e-3 * (1.0 + std::abs(c_ref[i])))
        << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmVsReference,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{3, 5, 7, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{3, 5, 7, Trans::kYes, Trans::kNo, 1.0f, 0.0f},
        GemmCase{3, 5, 7, Trans::kNo, Trans::kYes, 1.0f, 0.0f},
        GemmCase{3, 5, 7, Trans::kYes, Trans::kYes, 1.0f, 0.0f},
        GemmCase{16, 16, 16, Trans::kNo, Trans::kNo, 2.0f, 0.5f},
        GemmCase{64, 64, 64, Trans::kNo, Trans::kNo, 1.0f, 1.0f},
        GemmCase{65, 33, 257, Trans::kNo, Trans::kNo, 1.0f, 0.0f},  // off-block
        GemmCase{128, 513, 300, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{100, 1, 50, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{1, 100, 50, Trans::kYes, Trans::kYes, -1.0f, 2.0f},
        GemmCase{70, 40, 1, Trans::kNo, Trans::kNo, 1.0f, 0.0f}));

TEST(Gemm, ZeroAlphaOnlyScalesC) {
  std::vector<float> a{1, 2, 3, 4}, b{5, 6, 7, 8}, c{1, 1, 1, 1};
  sgemm(Trans::kNo, Trans::kNo, 2, 2, 2, 0.0f, a.data(), b.data(), 3.0f,
        c.data());
  for (float v : c) EXPECT_EQ(v, 3.0f);
}

TEST(Gemm, BetaZeroIgnoresGarbageC) {
  std::vector<float> a{1, 0, 0, 1}, b{1, 2, 3, 4};
  std::vector<float> c{std::numeric_limits<float>::quiet_NaN(), 0, 0, 0};
  sgemm(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0f, a.data(), b.data(), 0.0f,
        c.data());
  EXPECT_EQ(c[0], 1.0f);
  EXPECT_EQ(c[1], 2.0f);
  EXPECT_EQ(c[2], 3.0f);
  EXPECT_EQ(c[3], 4.0f);
}

TEST(Gemm, EmptyDimsNoOp) {
  std::vector<float> c{7.0f};
  sgemm(Trans::kNo, Trans::kNo, 0, 0, 0, 1.0f, nullptr, nullptr, 0.0f,
        c.data());
  EXPECT_EQ(c[0], 7.0f);
}

TEST(GemmDeath, NegativeDimsAbort) {
  EXPECT_DEATH(sgemm(Trans::kNo, Trans::kNo, -1, 2, 2, 1.0f, nullptr, nullptr,
                     0.0f, nullptr),
               "sgemm: bad dims \\(m=-1 n=2 k=2\\)");
}

TEST(Gemm, StridedLeadingDimensions) {
  // A is a 2x2 view inside a 2x4 buffer (lda=4); B packed; C has ldc=3.
  std::vector<float> a{1, 2, 9, 9, 3, 4, 9, 9};
  std::vector<float> b{1, 0, 0, 1};
  std::vector<float> c(6, 0.0f);
  sgemm(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0f, a.data(), 4, b.data(), 2, 0.0f,
        c.data(), 3);
  EXPECT_EQ(c[0], 1.0f);
  EXPECT_EQ(c[1], 2.0f);
  EXPECT_EQ(c[3], 3.0f);
  EXPECT_EQ(c[4], 4.0f);
}

// -- kernel oracle ----------------------------------------------------------
//
// The portable microkernel is the semantic reference for every dispatched
// ISA path: identical packed panels, identical mul-then-add sequence per
// output element, same k order, no FMA. These tests pin each path in turn
// and compare outputs byte for byte (memcmp, not EXPECT_EQ — the contract
// is bitwise, and -0.0 == 0.0 would hide a sign flip).

bool same_bits(const std::vector<float>& x, const std::vector<float>& y) {
  if (x.size() != y.size()) return false;
  if (x.empty()) return true;
  return std::memcmp(x.data(), y.data(), x.size() * sizeof(float)) == 0;
}

std::vector<kernels::Isa> supported_isas() {
  std::vector<kernels::Isa> v{kernels::Isa::kPortable};
  for (kernels::Isa isa : {kernels::Isa::kAvx2, kernels::Isa::kNeon}) {
    if (kernels::supported(isa)) v.push_back(isa);
  }
  return v;
}

/// Pins the dispatcher for one scope; restores automatic selection on exit.
struct ForcedIsa {
  explicit ForcedIsa(kernels::Isa isa) { kernels::force(isa); }
  ~ForcedIsa() { kernels::clear_force(); }
};

std::vector<float> run_sgemm(const ComputeContext& ctx, Trans ta, Trans tb,
                             std::int64_t m, std::int64_t n, std::int64_t k,
                             float alpha, const std::vector<float>& a,
                             const std::vector<float>& b, float beta,
                             const std::vector<float>& c0) {
  std::vector<float> c = c0;
  const std::int64_t lda = std::max<std::int64_t>(1, ta == Trans::kNo ? k : m);
  const std::int64_t ldb = std::max<std::int64_t>(1, tb == Trans::kNo ? n : k);
  sgemm(ctx, ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
        c.data(), std::max<std::int64_t>(1, n));
  return c;
}

// Randomized property trials plus the classic edge shapes: every supported
// ISA path, and every thread count, must reproduce the forced-portable
// single-thread result bit for bit. Shapes span both the small-GEMM path
// and the packed path (which is where the ISA actually matters), tile
// remainders (m % 6, n % 16, k % 256 != 0), degenerate M=1/N=1/K=1, and
// zero-size dims.
TEST(KernelOracle, RandomTrialsBitIdenticalAcrossIsaAndThreads) {
  const auto isas = supported_isas();
  ComputeContext ctx1(1), ctx4(4);
  Rng rng(20260808);

  struct Dims {
    std::int64_t m, n, k;
  };
  std::vector<Dims> trials = {
      {1, 1, 1},    {1, 320, 1},  {6, 16, 64},    {96, 512, 256},
      {97, 257, 131}, {200, 1, 300}, {1, 300, 200}, {7, 17, 513},
      {0, 8, 8},    {8, 0, 8},    {8, 8, 0},      {64, 64, 64},
  };
  for (int t = 0; t < 12; ++t) {
    trials.push_back({1 + static_cast<std::int64_t>(rng.uniform_int(160)),
                      1 + static_cast<std::int64_t>(rng.uniform_int(320)),
                      1 + static_cast<std::int64_t>(rng.uniform_int(320))});
  }

  const float alphas[] = {1.0f, -0.5f};
  const float betas[] = {0.0f, 1.0f, 0.25f};
  for (const auto& d : trials) {
    const Trans ta = rng.uniform_int(2) ? Trans::kYes : Trans::kNo;
    const Trans tb = rng.uniform_int(2) ? Trans::kYes : Trans::kNo;
    const float alpha = alphas[rng.uniform_int(2)];
    const float beta = betas[rng.uniform_int(3)];
    std::vector<float> a(static_cast<std::size_t>(std::max<std::int64_t>(
        1, d.m * d.k)));
    std::vector<float> b(static_cast<std::size_t>(std::max<std::int64_t>(
        1, d.k * d.n)));
    std::vector<float> c0(static_cast<std::size_t>(d.m * d.n));
    rng.fill_normal(a, 0.0f, 1.0f);
    rng.fill_normal(b, 0.0f, 1.0f);
    rng.fill_normal(c0, 0.0f, 1.0f);

    std::vector<float> base;
    {
      ForcedIsa pin(kernels::Isa::kPortable);
      base = run_sgemm(ctx1, ta, tb, d.m, d.n, d.k, alpha, a, b, beta, c0);
    }
    for (kernels::Isa isa : isas) {
      ForcedIsa pin(isa);
      const auto got1 =
          run_sgemm(ctx1, ta, tb, d.m, d.n, d.k, alpha, a, b, beta, c0);
      const auto got4 =
          run_sgemm(ctx4, ta, tb, d.m, d.n, d.k, alpha, a, b, beta, c0);
      EXPECT_TRUE(same_bits(base, got1))
          << kernels::to_string(isa) << " t=1 differs at m=" << d.m
          << " n=" << d.n << " k=" << d.k;
      EXPECT_TRUE(same_bits(base, got4))
          << kernels::to_string(isa) << " t=4 differs at m=" << d.m
          << " n=" << d.n << " k=" << d.k;
    }
  }
}

// The dispatch matrix: each compiled-in path, when forced, produces the
// same bytes AND reports itself through the "kernels.isa" gauge, so a run's
// metrics snapshot records which kernels actually executed.
TEST(KernelIsaMatrix, EachForcedPathMatchesAndReportsGauge) {
  ComputeContext ctx(4);
  const std::int64_t m = 96, n = 160, k = 128;  // packed path (> 2^18 flops)
  Rng rng(42);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c0(static_cast<std::size_t>(m * n));
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  rng.fill_normal(c0, 0.0f, 1.0f);

  std::vector<std::vector<float>> outs;
  for (kernels::Isa isa : supported_isas()) {
    ForcedIsa pin(isa);
    outs.push_back(run_sgemm(ctx, Trans::kNo, Trans::kNo, m, n, k, 1.0f, a, b,
                             1.0f, c0));
    EXPECT_EQ(obs::metrics().gauge("kernels.isa").value(),
              static_cast<double>(static_cast<int>(isa)))
        << "gauge does not report " << kernels::to_string(isa);
  }
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_TRUE(same_bits(outs[0], outs[i]))
        << "ISA path " << kernels::to_string(supported_isas()[i])
        << " differs from portable";
  }
}

TEST(KernelIsaMatrix, PackedPathThreadInvariantPerIsa) {
  // Off-tile shape spanning two row-blocks, so chunks really run in
  // parallel; {1,2,4,8} must agree bytewise on every path.
  const std::int64_t m = 97, n = 513, k = 200;
  Rng rng(7);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c0(static_cast<std::size_t>(m * n));
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  rng.fill_normal(c0, 0.0f, 1.0f);

  for (kernels::Isa isa : supported_isas()) {
    ForcedIsa pin(isa);
    ComputeContext one(1);
    const auto base =
        run_sgemm(one, Trans::kNo, Trans::kNo, m, n, k, 1.0f, a, b, 0.0f, c0);
    for (std::size_t t : {2u, 4u, 8u}) {
      ComputeContext ctx(t);
      const auto got = run_sgemm(ctx, Trans::kNo, Trans::kNo, m, n, k, 1.0f,
                                 a, b, 0.0f, c0);
      EXPECT_TRUE(same_bits(base, got))
          << kernels::to_string(isa) << " differs at t=" << t;
    }
  }
}

TEST(KernelIsaDispatch, ParseIsa) {
  kernels::Isa isa = kernels::Isa::kAvx2;
  EXPECT_TRUE(kernels::parse_isa("portable", &isa));
  EXPECT_EQ(isa, kernels::Isa::kPortable);
  EXPECT_TRUE(kernels::parse_isa("avx2", &isa));
  EXPECT_EQ(isa, kernels::Isa::kAvx2);
  EXPECT_TRUE(kernels::parse_isa("neon", &isa));
  EXPECT_EQ(isa, kernels::Isa::kNeon);
  EXPECT_TRUE(kernels::parse_isa("auto", &isa));
  EXPECT_EQ(isa, kernels::best_supported());
  EXPECT_FALSE(kernels::parse_isa("avx512", &isa));
  EXPECT_FALSE(kernels::parse_isa("", &isa));
  EXPECT_FALSE(kernels::parse_isa(nullptr, &isa));
  EXPECT_FALSE(kernels::parse_isa("portable", nullptr));
}

TEST(KernelIsaDispatch, BestSupportedIsSupported) {
  EXPECT_TRUE(kernels::supported(kernels::best_supported()));
  EXPECT_TRUE(kernels::supported(kernels::Isa::kPortable));
}

TEST(KernelIsaDispatch, DefaultSelectionIsBestSupported) {
  if (std::getenv("MINSGD_KERNEL_ISA") != nullptr) {
    GTEST_SKIP() << "MINSGD_KERNEL_ISA overrides automatic selection";
  }
  kernels::clear_force();
  EXPECT_EQ(kernels::active(), kernels::best_supported());
}

// check_all.sh reruns the oracle suite with MINSGD_KERNEL_ISA=portable under
// the sanitizers; this test only bites in those runs and asserts the
// environment override actually reached the dispatcher.
TEST(KernelIsaDispatch, EnvOverrideHonored) {
  const char* env = std::getenv("MINSGD_KERNEL_ISA");
  if (env == nullptr || env[0] == '\0') {
    GTEST_SKIP() << "MINSGD_KERNEL_ISA not set";
  }
  kernels::Isa want = kernels::Isa::kPortable;
  ASSERT_TRUE(kernels::parse_isa(env, &want));
  kernels::clear_force();
  EXPECT_EQ(kernels::active(), want);
}

TEST(KernelIsaDispatch, ForceUnsupportedAborts) {
#if defined(__aarch64__)
  EXPECT_DEATH(kernels::force(kernels::Isa::kAvx2), "not supported");
#else
  EXPECT_DEATH(kernels::force(kernels::Isa::kNeon), "not supported");
#endif
}

}  // namespace
}  // namespace minsgd
