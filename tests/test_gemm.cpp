#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/rng.hpp"

namespace minsgd {
namespace {

// Naive reference: C = alpha*op(A)*op(B) + beta*C, packed row-major.
void ref_gemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
              std::int64_t k, float alpha, const std::vector<float>& a,
              const std::vector<float>& b, float beta, std::vector<float>& c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta == Trans::kNo
                             ? a[static_cast<std::size_t>(i * k + p)]
                             : a[static_cast<std::size_t>(p * m + i)];
        const float bv = tb == Trans::kNo
                             ? b[static_cast<std::size_t>(p * n + j)]
                             : b[static_cast<std::size_t>(j * k + p)];
        acc += static_cast<double>(av) * bv;
      }
      auto& cv = c[static_cast<std::size_t>(i * n + j)];
      cv = alpha * static_cast<float>(acc) + beta * cv;
    }
  }
}

struct GemmCase {
  std::int64_t m, n, k;
  Trans ta, tb;
  float alpha, beta;
};

class GemmVsReference : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmVsReference, Matches) {
  const auto& p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p.m * 131 + p.n * 17 + p.k));
  std::vector<float> a(static_cast<std::size_t>(p.m * p.k));
  std::vector<float> b(static_cast<std::size_t>(p.k * p.n));
  std::vector<float> c(static_cast<std::size_t>(p.m * p.n));
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  rng.fill_normal(c, 0.0f, 1.0f);
  std::vector<float> c_ref = c;

  sgemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a.data(), b.data(), p.beta,
        c.data());
  ref_gemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a, b, p.beta, c_ref);

  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], c_ref[i], 1e-3 * (1.0 + std::abs(c_ref[i])))
        << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmVsReference,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{3, 5, 7, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{3, 5, 7, Trans::kYes, Trans::kNo, 1.0f, 0.0f},
        GemmCase{3, 5, 7, Trans::kNo, Trans::kYes, 1.0f, 0.0f},
        GemmCase{3, 5, 7, Trans::kYes, Trans::kYes, 1.0f, 0.0f},
        GemmCase{16, 16, 16, Trans::kNo, Trans::kNo, 2.0f, 0.5f},
        GemmCase{64, 64, 64, Trans::kNo, Trans::kNo, 1.0f, 1.0f},
        GemmCase{65, 33, 257, Trans::kNo, Trans::kNo, 1.0f, 0.0f},  // off-block
        GemmCase{128, 513, 300, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{100, 1, 50, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{1, 100, 50, Trans::kYes, Trans::kYes, -1.0f, 2.0f},
        GemmCase{70, 40, 1, Trans::kNo, Trans::kNo, 1.0f, 0.0f}));

TEST(Gemm, ZeroAlphaOnlyScalesC) {
  std::vector<float> a{1, 2, 3, 4}, b{5, 6, 7, 8}, c{1, 1, 1, 1};
  sgemm(Trans::kNo, Trans::kNo, 2, 2, 2, 0.0f, a.data(), b.data(), 3.0f,
        c.data());
  for (float v : c) EXPECT_EQ(v, 3.0f);
}

TEST(Gemm, BetaZeroIgnoresGarbageC) {
  std::vector<float> a{1, 0, 0, 1}, b{1, 2, 3, 4};
  std::vector<float> c{std::numeric_limits<float>::quiet_NaN(), 0, 0, 0};
  sgemm(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0f, a.data(), b.data(), 0.0f,
        c.data());
  EXPECT_EQ(c[0], 1.0f);
  EXPECT_EQ(c[1], 2.0f);
  EXPECT_EQ(c[2], 3.0f);
  EXPECT_EQ(c[3], 4.0f);
}

TEST(Gemm, EmptyDimsNoOp) {
  std::vector<float> c{7.0f};
  sgemm(Trans::kNo, Trans::kNo, 0, 0, 0, 1.0f, nullptr, nullptr, 0.0f,
        c.data());
  EXPECT_EQ(c[0], 7.0f);
}

TEST(GemmDeath, NegativeDimsAbort) {
  EXPECT_DEATH(sgemm(Trans::kNo, Trans::kNo, -1, 2, 2, 1.0f, nullptr, nullptr,
                     0.0f, nullptr),
               "sgemm: bad dims \\(m=-1 n=2 k=2\\)");
}

TEST(Gemm, StridedLeadingDimensions) {
  // A is a 2x2 view inside a 2x4 buffer (lda=4); B packed; C has ldc=3.
  std::vector<float> a{1, 2, 9, 9, 3, 4, 9, 9};
  std::vector<float> b{1, 0, 0, 1};
  std::vector<float> c(6, 0.0f);
  sgemm(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0f, a.data(), 4, b.data(), 2, 0.0f,
        c.data(), 3);
  EXPECT_EQ(c[0], 1.0f);
  EXPECT_EQ(c[1], 2.0f);
  EXPECT_EQ(c[3], 3.0f);
  EXPECT_EQ(c[4], 4.0f);
}

}  // namespace
}  // namespace minsgd
