// End-to-end trace smoke test: run a tiny instrumented distributed training
// job, export trace.json, and verify the file is valid Chrome trace_event
// JSON containing the spans the paper's time-breakdown argument needs
// (forward, backward, allreduce) in per-rank lanes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/proxy.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "optim/lars.hpp"
#include "optim/schedule.hpp"
#include "train/trainer.hpp"

namespace minsgd {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

#ifndef MINSGD_TRACE_OFF
TEST(TraceSmoke, InstrumentedTrainingProducesLoadableTrace) {
  const auto proxy = core::micro_proxy();
  data::SyntheticImageNet dataset(proxy.dataset);
  constexpr int kWorld = 2;

  train::TrainOptions topt;
  topt.global_batch = proxy.base_batch * kWorld;
  topt.epochs = 1;
  topt.eval_every = 1;
  topt.init_seed = 3;
  const optim::ConstantLr schedule(proxy.base_lr);
  const auto opt_factory = [&] {
    return std::unique_ptr<optim::Optimizer>(
        new optim::Lars({.trust_coeff = proxy.lars_trust}));
  };

  obs::tracer().clear();
  obs::tracer().set_enabled(true);
  const auto res = train::train_sync_data_parallel(
      proxy.alexnet_factory(), opt_factory, schedule, dataset, topt, kWorld,
      comm::AllreduceAlgo::kRing);
  obs::tracer().set_enabled(false);
  ASSERT_FALSE(res.result.diverged);
  ASSERT_GT(res.iterations, 0);
  ASSERT_GT(obs::tracer().span_count(), 0u);

  const std::string path = ::testing::TempDir() + "/smoke_trace.json";
  obs::tracer().write_chrome_trace(path);
  const auto doc = obs::json::parse(read_all(path));  // throws if malformed
  std::remove(path.c_str());

  bool saw_forward = false, saw_backward = false, saw_allreduce = false;
  bool saw_phase = false;
  std::vector<bool> rank_lane(kWorld, false);
  for (const auto& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "X") continue;
    const auto& name = e.at("name").as_string();
    const int pid = static_cast<int>(e.at("pid").as_number());
    if (pid >= 0 && pid < kWorld) rank_lane[pid] = true;
    if (name.rfind("forward.", 0) == 0) saw_forward = true;
    if (name.rfind("backward.", 0) == 0) saw_backward = true;
    if (name.rfind("allreduce.", 0) == 0) {
      saw_allreduce = true;
      // Comm spans must carry their payload size.
      EXPECT_GT(e.at("args").at("bytes").as_number(), 0.0);
    }
    if (name == "phase.forward" || name == "phase.allreduce") saw_phase = true;
  }
  EXPECT_TRUE(saw_forward);
  EXPECT_TRUE(saw_backward);
  EXPECT_TRUE(saw_allreduce);
  EXPECT_TRUE(saw_phase);
  for (int r = 0; r < kWorld; ++r) {
    EXPECT_TRUE(rank_lane[r]) << "rank " << r << " recorded no spans";
  }

  // The per-phase summary that feeds the scaling-ratio report is present.
  const auto stats = obs::tracer().summary();
  bool phase_allreduce = false;
  for (const auto& st : stats) {
    if (st.name == "phase.allreduce") {
      phase_allreduce = true;
      EXPECT_EQ(st.count, res.iterations * kWorld);
      EXPECT_GT(st.total_ns, 0);
    }
  }
  EXPECT_TRUE(phase_allreduce);
  obs::tracer().clear();
}
#endif  // MINSGD_TRACE_OFF

TEST(TraceSmoke, DisabledTrainingRecordsNoSpans) {
  const auto proxy = core::micro_proxy();
  data::SyntheticImageNet dataset(proxy.dataset);

  train::TrainOptions topt;
  topt.global_batch = proxy.base_batch;
  topt.epochs = 1;
  topt.init_seed = 3;
  const optim::ConstantLr schedule(proxy.base_lr);

  obs::tracer().clear();
  ASSERT_FALSE(obs::tracer().enabled());
  auto net = proxy.alexnet_factory()();  // train_single inits from the seed
  optim::Lars opt({.trust_coeff = proxy.lars_trust});
  const auto res = train::train_single(*net, opt, schedule, dataset, topt);
  ASSERT_GT(res.iterations_run, 0);
  EXPECT_EQ(obs::tracer().span_count(), 0u);
}

}  // namespace
}  // namespace minsgd
