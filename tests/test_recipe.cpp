#include <gtest/gtest.h>

#include "core/proxy.hpp"
#include "core/recipe.hpp"

namespace minsgd {
namespace {

using core::LrRule;
using core::RecipeConfig;

data::SyntheticImageNet proxy_dataset() {
  return data::SyntheticImageNet(core::micro_proxy().dataset);
}

TEST(Recipe, IterationBudgetFixedByEpochs) {
  auto ds = proxy_dataset();
  RecipeConfig rc = core::micro_proxy().recipe(64, LrRule::kLinearWarmup);
  const auto r = core::make_recipe(rc, ds);
  EXPECT_EQ(r.total_iterations, rc.epochs * 1024 / 64);
}

TEST(Recipe, LinearScalingSetsPeakLr) {
  auto ds = proxy_dataset();
  auto proxy = core::micro_proxy();
  RecipeConfig rc = proxy.recipe(256, LrRule::kLinearWarmup);
  const auto r = core::make_recipe(rc, ds);
  EXPECT_DOUBLE_EQ(r.scaled_lr, proxy.base_lr * 256 / proxy.base_batch);
}

TEST(Recipe, BaselineHasNoWarmup) {
  auto proxy = core::micro_proxy();
  RecipeConfig rc = proxy.recipe(proxy.base_batch, LrRule::kLinearWarmup);
  EXPECT_DOUBLE_EQ(rc.warmup_epochs, 0.0);
  auto ds = proxy_dataset();
  const auto r = core::make_recipe(rc, ds);
  // First-iteration LR is already the (unscaled) base LR under poly decay.
  EXPECT_NEAR(r.schedule->lr(0), proxy.base_lr, 1e-9);
}

TEST(Recipe, LargeBatchWarmsUp) {
  auto proxy = core::micro_proxy();
  auto ds = proxy_dataset();
  RecipeConfig rc = proxy.recipe(256, LrRule::kLinearWarmup);
  const auto r = core::make_recipe(rc, ds);
  // During warmup the LR must sit well below the scaled peak and ramp up.
  EXPECT_LT(r.schedule->lr(0), r.scaled_lr * 0.5);
  const auto warmup_iters = static_cast<std::int64_t>(
      rc.warmup_epochs * 1024 / 256);
  EXPECT_GT(r.schedule->lr(warmup_iters), r.schedule->lr(0));
}

TEST(Recipe, PolyDecayReachesZero) {
  auto proxy = core::micro_proxy();
  auto ds = proxy_dataset();
  const auto r = core::make_recipe(proxy.recipe(64, LrRule::kLars), ds);
  EXPECT_DOUBLE_EQ(r.schedule->lr(r.total_iterations), 0.0);
}

TEST(Recipe, OptimizerFactoryMatchesRule) {
  auto proxy = core::micro_proxy();
  auto ds = proxy_dataset();
  const auto sgd_recipe =
      core::make_recipe(proxy.recipe(64, LrRule::kLinearWarmup), ds);
  const auto lars_recipe =
      core::make_recipe(proxy.recipe(64, LrRule::kLars), ds);
  auto sgd_opt = sgd_recipe.optimizer_factory();
  auto lars_opt = lars_recipe.optimizer_factory();
  EXPECT_NE(dynamic_cast<optim::Sgd*>(sgd_opt.get()), nullptr);
  EXPECT_NE(dynamic_cast<optim::Lars*>(lars_opt.get()), nullptr);
}

TEST(Recipe, ToStringNamesRules) {
  EXPECT_STREQ(core::to_string(LrRule::kLars), "LARS+warmup");
  EXPECT_STREQ(core::to_string(LrRule::kLinearWarmup),
               "linear-scaling+warmup");
}

TEST(Recipe, RejectsBatchBelowBase) {
  auto proxy = core::micro_proxy();
  auto ds = proxy_dataset();
  RecipeConfig rc = proxy.recipe(proxy.base_batch, LrRule::kLars);
  rc.global_batch = proxy.base_batch / 2;
  EXPECT_THROW(core::make_recipe(rc, ds), std::invalid_argument);
}

TEST(Recipe, RejectsWarmupLongerThanRun) {
  auto proxy = core::micro_proxy();
  auto ds = proxy_dataset();
  RecipeConfig rc = proxy.recipe(256, LrRule::kLars);
  rc.warmup_epochs = static_cast<double>(rc.epochs);
  EXPECT_THROW(core::make_recipe(rc, ds), std::invalid_argument);
}

TEST(Recipe, RunRecipeTrainsEndToEnd) {
  auto proxy = core::micro_proxy();
  auto ds = proxy_dataset();
  RecipeConfig rc = proxy.recipe(proxy.base_batch, LrRule::kLinearWarmup);
  rc.epochs = 2;
  const auto res = core::run_recipe(proxy.alexnet_factory(), rc, ds);
  EXPECT_EQ(res.epochs.size(), 2u);
  EXPECT_FALSE(res.diverged);
}

TEST(Recipe, DistributedRunProducesTraffic) {
  auto proxy = core::micro_proxy();
  auto ds = proxy_dataset();
  RecipeConfig rc = proxy.recipe(64, LrRule::kLars);
  rc.epochs = 1;
  rc.warmup_epochs = 0.25;
  const auto res =
      core::run_recipe_distributed(proxy.alexnet_factory(), rc, ds, 4);
  EXPECT_GT(res.traffic.messages, 0);
  EXPECT_EQ(res.iterations, 1024 / 64);
}

TEST(Proxy, PresetsAreConsistent) {
  const auto micro = core::micro_proxy();
  const auto bench = core::bench_proxy();
  EXPECT_LE(micro.dataset.train_size, bench.dataset.train_size);
  EXPECT_EQ(micro.dataset.train_size % micro.base_batch, 0);
  EXPECT_EQ(bench.dataset.train_size % bench.base_batch, 0);
  // Factories build nets with the right output arity.
  auto net = bench.alexnet_factory()();
  EXPECT_EQ(net->output_shape({1, 3, bench.dataset.resolution,
                               bench.dataset.resolution}),
            Shape({1, bench.dataset.classes}));
  auto rnet = bench.resnet_factory()();
  EXPECT_EQ(rnet->output_shape({1, 3, bench.dataset.resolution,
                                bench.dataset.resolution}),
            Shape({1, bench.dataset.classes}));
}

}  // namespace
}  // namespace minsgd
