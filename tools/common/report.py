"""Shared JSON-report writing for the repo's offline tools.

Both the postmortem analyzer (tools/trace/analyze.py) and the semantic
analyzer (tools/analyze/analyze.py) emit machine-readable JSON reports that
other stages (check_all.sh, benches, CI diffing) consume. A half-written
report is worse than none — a crashed tool must never leave a truncated
findings.json that a later stage parses as "clean" — so every report is
written to a temp file in the destination directory and atomically renamed
over the target, mirroring the tmp+rename discipline of the C++ postmortem
writer (src/obs/postmortem.cpp).
"""

from __future__ import annotations

import json
import os
import tempfile


def write_json_atomic(path: str, obj, indent: int = 2) -> None:
    """Serialize `obj` as JSON to `path` via tmp+rename (atomic on POSIX).

    The temp file lives in the destination directory so os.replace never
    crosses a filesystem boundary. Parent directories are created on demand.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=os.path.basename(path) + ".",
                               suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(obj, f, indent=indent, sort_keys=False)
            f.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_json(path: str):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)
