# Shared stdlib-only helpers for the repo's Python tooling (tools/lint,
# tools/trace, tools/analyze). Keep this package dependency-free: every tool
# must run on a bare python3 with no site-packages.
