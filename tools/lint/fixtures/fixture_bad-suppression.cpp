// Fixture: allow() naming a rule that does not exist.
// Expected finding: [bad-suppression]

// minsgd-lint: allow(made-up-rule): justification for a rule nobody defined
inline int three() { return 3; }
