// Fixture: the kernel-driver shape of the shared-accumulator bug. A packed
// microkernel lambda's per-chunk scratch writes — subscripted panel and
// register-tile accumulator stores, for-init locals — are all legal and must
// NOT fire; the one violation is the captured FLOP counter compound-assigned
// from inside the parallel region. Expected finding: [shared-accumulator]
// (exactly one, on the counter line).
#include <cstdint>
#include <vector>

struct Ctx {
  void parallel_for(std::int64_t, std::int64_t, auto fn,
                    std::int64_t = 1) const {
    fn(0, 1);
  }
};

void gemm_blocks(const Ctx& ctx, const float* a, const float* b, float* c,
                 std::int64_t blocks, std::int64_t kc) {
  double total_flops = 0.0;  // captured: needs a per-chunk partial instead
  ctx.parallel_for(
      0, blocks,
      [&](std::int64_t blk_lo, std::int64_t blk_hi) {
        std::vector<float> apack(static_cast<std::size_t>(6 * kc));
        std::vector<float> bpack(static_cast<std::size_t>(16 * kc));
        for (std::int64_t q = 0; q < kc; ++q) {
          apack[static_cast<std::size_t>(q)] = a[q];
          bpack[static_cast<std::size_t>(q)] = b[q];
        }
        for (std::int64_t blk = blk_lo; blk < blk_hi; ++blk) {
          float acc[6][16] = {};
          for (std::int64_t p = 0; p < kc; ++p) {
            for (std::int64_t i = 0; i < 6; ++i) {
              const float av = apack[static_cast<std::size_t>(p * 6 + i) %
                                     apack.size()];
              for (std::int64_t j = 0; j < 16; ++j) {
                acc[i][j] += av * bpack[static_cast<std::size_t>(p * 16 + j) %
                                        bpack.size()];  // subscripted: exempt
              }
            }
          }
          for (std::int64_t i = 0; i < 6; ++i) {
            for (std::int64_t j = 0; j < 16; ++j) {
              c[(blk * 6 + i) * 16 + j] += acc[i][j];  // subscripted: exempt
            }
          }
          total_flops += 2.0 * 6 * 16 * static_cast<double>(kc);  // fires
        }
      });
  static_cast<void>(total_flops);
}
