// Fixture: reinterpret_cast without the mandatory justification comment.
// Expected finding: [cast]
#include <cstdint>

float punned(std::uint32_t bits) {
  return *reinterpret_cast<float*>(&bits);
}
