// Fixture: naked assert() where MINSGD_CHECK / MINSGD_DCHECK is required.
// Expected finding: [naked-assert]
#include <cassert>

int halve(int n) {
  assert(n % 2 == 0);
  return n / 2;
}
