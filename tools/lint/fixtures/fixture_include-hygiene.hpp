// Fixture: header without #pragma once, with an upward-relative include and
// a C header spelling. Expected finding: [include-hygiene]
#include "../tensor/ops.hpp"
#include <stdint.h>

inline int three() { return 3; }
