// Fixture: std::random_device used outside src/tensor/rng.*.
// Expected finding: [rng-source]
#include <random>

unsigned draw() {
  std::random_device rd;
  return rd();
}
