// Fixture: `using namespace` at header scope.
// Expected finding: [using-namespace-header]
#pragma once

#include <string>

using namespace std;

inline string greet() { return "hi"; }
