// Fixture: violation-free file including a correctly justified suppression
// and the per-chunk-partials reduction idiom. Expected findings: none.
#include <cstdint>
#include <span>
#include <thread>

struct Ctx {
  static constexpr std::int64_t kMaxChunks = 16;
  static std::int64_t chunk_count(std::int64_t n, std::int64_t g) {
    const std::int64_t c = (n + g - 1) / g;
    return c < kMaxChunks ? c : kMaxChunks;
  }
  void for_chunks_n(std::int64_t, std::int64_t, auto fn) const {
    fn(0, 0, 0);
  }
};

double sum_all(const Ctx& ctx, std::span<const float> x) {
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  const std::int64_t chunks = Ctx::chunk_count(n, 1024);
  double partial[Ctx::kMaxChunks] = {};
  ctx.for_chunks_n(n, chunks,
                   [&](std::int64_t c, std::int64_t lo, std::int64_t hi) {
                     double acc = 0.0;
                     for (std::int64_t i = lo; i < hi; ++i) acc += x[i];
                     partial[c] = acc;
                   });
  double total = 0.0;
  for (std::int64_t c = 0; c < chunks; ++c) total += partial[c];
  return total;
}

void justified_spawn() {
  // minsgd-lint: allow(thread-spawn): fixture demonstrating a well-formed
  // suppression with a justification that spans comment lines.
  std::thread t([] {});
  t.join();
}
