// Fixture: heap allocation inside a layer's do_forward/do_backward body.
// Scratch must come from the PlanContext so planned steady-state iterations
// allocate nothing.
// Expected finding: [hot-path-alloc]
#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace minsgd::nn {

void FakeLayer::do_forward(const Tensor& x, Tensor& y, bool training,
                           const ComputeContext& ctx, PlanContext& pc) {
  Tensor scratch(x.shape());               // bad: per-call Tensor
  Tensor tmp = Tensor(x.shape());          // bad: Tensor temporary
  std::vector<float> partials(8, 0.0f);    // bad: per-call vector
  (void)scratch;
  (void)tmp;
  (void)partials;
  (void)y;
  (void)training;
  (void)ctx;
  (void)pc;
}

void FakeLayer::do_backward(const Tensor& x, const Tensor& y,
                            const Tensor& dy, Tensor& dx,
                            const ComputeContext& ctx, PlanContext& pc) {
  // References and pointers bind existing storage: fine.
  const Tensor& yy = y;
  const Tensor* in = &x;
  // Scratch through the plan context: fine.
  Tensor& col = pc.tensor(0, x.shape());
  // minsgd-lint: allow(hot-path-alloc): one-time cold-path fallback buffer
  Tensor cold(x.shape());
  (void)yy;
  (void)in;
  (void)col;
  (void)cold;
  (void)dy;
  (void)dx;
  (void)ctx;
}

}  // namespace minsgd::nn
