// Fixture: the elastic membership comm worker (the rendezvous watchdog of
// src/comm/membership.cpp) spawns one std::thread per coordinator. In the
// real tree the spawn passes thread-spawn by path (src/comm/ implements the
// comm layer and is THREAD_ALLOWED); mirrored outside that path it must
// carry a justified suppression, which this fixture pins down.
// Expected findings: none.
#include <condition_variable>
#include <mutex>
#include <thread>

class WatchdogOwner {
 public:
  WatchdogOwner() {
    // minsgd-lint: allow(thread-spawn): membership liveness watchdog is a
    // comm-layer worker, not compute — it sleeps on a condvar and cannot go
    // through a ComputeContext, whose workers must stay free for kernels.
    watchdog_ = std::thread([this] { loop(); });
  }
  ~WatchdogOwner() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    watchdog_.join();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return shutdown_; });
  }

  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  // minsgd-lint: allow(thread-spawn): storage for the comm-layer watchdog
  // spawned (and justified) in the constructor above.
  std::thread watchdog_;
};
