// Fixture: raw std::thread spawn outside the context/comm layer.
// Expected finding: [thread-spawn]
#include <thread>

void spawn_worker() {
  std::thread t([] {});
  t.join();
}
