// Fixture: compound-assign to a captured variable inside a parallel region.
// The canonical nondeterminism/race bug the per-chunk-partials idiom exists
// to prevent. Expected finding: [shared-accumulator]
#include <cstdint>
#include <span>

struct Ctx {
  void parallel_for(std::int64_t, std::int64_t, auto fn,
                    std::int64_t = 1024) const {
    fn(0, 0);
  }
};

double sum_all(const Ctx& ctx, std::span<const float> x) {
  double total = 0.0;
  ctx.parallel_for(0, static_cast<std::int64_t>(x.size()),
                   [&](std::int64_t lo, std::int64_t hi) {
                     for (std::int64_t i = lo; i < hi; ++i) total += x[i];
                   });
  return total;
}
