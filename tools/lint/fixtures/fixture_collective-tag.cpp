// Fixture: hand-minted tag in the reserved collective tag space.
// Expected finding: [collective-tag]
#include <cstdint>

std::int64_t my_private_tag(int channel) {
  return (std::int64_t{1} << 40) + channel;
}
