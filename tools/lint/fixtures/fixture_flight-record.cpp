// Fixture: direct flight-recorder record() calls bypassing the
// MINSGD_FLIGHT macro (and its enabled() gate).
// Expected finding: [flight-record]
#include "obs/flight.hpp"

void bad_direct_singleton(long tag) {
  minsgd::obs::flight().record(minsgd::obs::FlightKind::kCollBegin,
                               minsgd::obs::FlightOp::kBarrier, 0, tag, 0, 0,
                               0);
}

void bad_named_reference(long tag) {
  auto& rec = minsgd::obs::flight();
  rec.record(minsgd::obs::FlightKind::kCollEnd,
             minsgd::obs::FlightOp::kBarrier, 0, tag, 0, 0, 0);
}

void good_macro(long tag) {
  MINSGD_FLIGHT(minsgd::obs::FlightKind::kCollBegin,
                minsgd::obs::FlightOp::kBarrier, 0, tag, 0, 0, 0);
}
