#!/usr/bin/env python3
"""minsgd-lint: project-invariant static analysis for the minsgd tree.

The correctness story of this repo (deterministic sync-SGD at any thread
count, channelized collective tags, single RNG discipline) rests on a small
set of invariants that PRs 1-4 established by convention. This tool enforces
them mechanically over src/ tests/ bench/ examples/. It is dependency-free
(stdlib only) and runs as a tier-1 ctest test.

Rules (ids in brackets; see DESIGN.md §11 for the catalog):

  [thread-spawn]          No std::thread / std::jthread / ThreadPool
                          construction outside src/tensor/context.*,
                          src/tensor/threadpool.*, src/comm/ (and their unit
                          tests). All other parallelism must flow through a
                          ComputeContext so thread budgets stay bounded and
                          chunking stays deterministic.
  [rng-source]            No rand()/srand()/std::random_device/std::mt19937/
                          time-seeded randomness outside src/tensor/rng.*.
                          Every random draw must come from the project Rng so
                          runs are replayable and checkpoints capture all
                          streams.
  [shared-accumulator]    Inside a parallel_for/for_chunks/for_chunks_n body,
                          compound-assignment to a variable captured from the
                          enclosing scope (an unsubscripted `x += ...`) is a
                          cross-chunk shared write. Reductions must compute
                          per-chunk partials and combine them in fixed chunk
                          order on the calling thread (context.hpp rule 2).
  [collective-tag]        The collective tag space (kCollectiveBase +
                          channel * kChannelStride) is minted only by
                          Communicator::next_collective_tag. References to
                          the tag-space constants, `<< 40` / `<< 36` tag
                          arithmetic, or 13+-digit literal tags outside
                          src/comm/communicator.* are collisions waiting to
                          happen.
  [using-namespace-header] `using namespace` in a header leaks into every
                          includer.
  [include-hygiene]       Headers carry #pragma once; no upward-relative
                          includes ("../"); C++ spellings (<cstdint>) over C
                          headers (<stdint.h>).
  [naked-assert]          src/ must use MINSGD_CHECK / MINSGD_DCHECK
                          (src/core/check.hpp), never assert(): assert is
                          silently compiled out of NDEBUG builds and prints
                          no invariant message. (static_assert is fine.)
  [cast]                  Every reinterpret_cast / const_cast in src/ needs a
                          written justification via the suppression comment.
  [flight-record]         src/ records flight-recorder events only through
                          the MINSGD_FLIGHT macro (src/obs/flight.hpp), never
                          by calling flight().record(...) / .record(FlightKind
                          ...) directly: the macro carries the enabled() gate,
                          so a direct call bypasses the off switch and pays
                          the record cost even when the recorder is disabled.
  [hot-path-alloc]        Inside a do_forward/do_backward body in src/nn,
                          constructing a Tensor or declaring a std::vector
                          allocates on the training hot path. Layer scratch
                          must come from the PlanContext (arena-backed when
                          planned, pooled in legacy mode) so steady-state
                          iterations perform zero heap allocations.
  [bad-suppression]       A suppression that names an unknown rule or omits
                          the justification text.

Suppression: a finding on line N is suppressed by a comment on line N or
N-1 of the form

    // minsgd-lint: allow(<rule-id>): <justification — required, non-empty>

The justification is mandatory; an empty one is itself a finding.

Usage:
    minsgd_lint.py [paths...]        lint files/directories (default: src
                                     tests bench examples relative to the
                                     repo root, i.e. this file's ../..)
    minsgd_lint.py --list-rules      print the rule catalog
    minsgd_lint.py --self-test       run against tools/lint/fixtures/ and
                                     assert the exact expected rule fires
                                     for each fixture

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import os
import re
import sys
from dataclasses import dataclass

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))

CXX_EXTS = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh", ".inl")
HEADER_EXTS = (".hpp", ".h", ".hh")

RULES = {
    "thread-spawn": "raw thread/pool construction outside the context/comm layer",
    "rng-source": "non-project randomness source outside src/tensor/rng.*",
    "shared-accumulator": "unsubscripted compound-assign to a captured variable inside a parallel region",
    "collective-tag": "collective tag-space arithmetic outside Communicator",
    "using-namespace-header": "`using namespace` at header scope",
    "include-hygiene": "include hygiene (#pragma once, no \"../\" includes, C++ header spellings)",
    "naked-assert": "assert() in src/ instead of MINSGD_CHECK/MINSGD_DCHECK",
    "cast": "reinterpret_cast/const_cast in src/ without a written justification",
    "flight-record": "direct flight-recorder record() call instead of the MINSGD_FLIGHT macro",
    "hot-path-alloc": "Tensor/std::vector construction inside do_forward/do_backward in src/nn",
    "bad-suppression": "malformed minsgd-lint suppression comment",
}

# Paths (relative to repo root, '/'-separated prefixes) where a rule does not
# apply. The context/threadpool/comm sources implement the thread layer; their
# unit tests exercise it directly.
THREAD_ALLOWED = (
    "src/tensor/context.",
    "src/tensor/threadpool.",
    "src/comm/",
    "tests/test_threadpool.cpp",
    "tests/test_context.cpp",
)
RNG_ALLOWED = ("src/tensor/rng.",)
TAG_ALLOWED = ("src/comm/communicator.",)
FLIGHT_ALLOWED = ("src/obs/flight.",)

C_HEADER_TO_CXX = {
    "assert.h": "cassert",
    "ctype.h": "cctype",
    "limits.h": "climits",
    "math.h": "cmath",
    "stddef.h": "cstddef",
    "stdint.h": "cstdint",
    "stdio.h": "cstdio",
    "stdlib.h": "cstdlib",
    "string.h": "cstring",
    "time.h": "ctime",
}

SUPPRESS_RE = re.compile(r"minsgd-lint:\s*allow\(([a-zA-Z-]+)\)(?::\s*(\S.*))?")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure.

    A lexer-grade pass, not a parser: handles //, /* */, "..." with escapes,
    '...' with escapes. Raw strings are treated as plain strings, which is
    fine for the patterns we match.
    """
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            else:
                out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def rel(path: str) -> str:
    r = os.path.relpath(os.path.abspath(path), REPO_ROOT)
    return r.replace(os.sep, "/")


class FileLint:
    def __init__(self, path: str, fixture_mode: bool = False):
        self.path = path
        self.relpath = rel(path)
        self.fixture_mode = fixture_mode
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.raw = f.read()
        self.raw_lines = self.raw.split("\n")
        self.code = strip_comments_and_strings(self.raw)
        self.code_lines = self.code.split("\n")
        self.findings: list[Finding] = []

    # -- helpers -----------------------------------------------------------

    def in_src(self) -> bool:
        return self.fixture_mode or self.relpath.startswith("src/")

    def allowed_path(self, prefixes) -> bool:
        if self.fixture_mode:
            return False
        return any(self.relpath.startswith(p) for p in prefixes)

    def is_header(self) -> bool:
        return self.path.endswith(HEADER_EXTS)

    def report(self, line: int, rule: str, message: str) -> None:
        self.findings.append(Finding(self.relpath, line, rule, message))

    # -- suppression -------------------------------------------------------

    def suppressions(self):
        """Map line -> (rule, justification) for every allow comment,
        validating the format. An allow on line N covers findings on N itself
        (trailing comment) and on the next line that contains code —
        justifications may span several comment lines between the allow()
        and the code it suppresses."""
        out = {}
        for idx, raw in enumerate(self.raw_lines, start=1):
            m = SUPPRESS_RE.search(raw)
            if not m:
                if "minsgd-lint" in raw and "allow" in raw:
                    self.report(idx, "bad-suppression",
                                "unrecognized minsgd-lint comment; expected "
                                "'// minsgd-lint: allow(<rule>): <justification>'")
                continue
            rule, just = m.group(1), (m.group(2) or "").strip()
            if rule not in RULES:
                self.report(idx, "bad-suppression",
                            f"allow() names unknown rule '{rule}'")
                continue
            if len(just) < 10:
                self.report(idx, "bad-suppression",
                            f"allow({rule}) requires a justification "
                            "(>= 10 chars) after a colon")
                continue
            out.setdefault(idx, []).append(rule)
            # Extend coverage to the next code-bearing line.
            j = idx + 1
            while j <= len(self.code_lines) and not self.code_lines[j - 1].strip():
                j += 1
            if j <= len(self.code_lines):
                out.setdefault(j, []).append(rule)
        return out

    # -- rules -------------------------------------------------------------

    def rule_thread_spawn(self):
        if self.allowed_path(THREAD_ALLOWED):
            return
        for idx, line in enumerate(self.code_lines, start=1):
            # std::thread::hardware_concurrency() is a query, not a spawn.
            if re.search(r"\bstd::j?thread\b(?!\s*::)", line):
                self.report(idx, "thread-spawn",
                            "std::thread outside src/tensor/context.*, "
                            "src/tensor/threadpool.*, src/comm/ — use a "
                            "ComputeContext")
            elif re.search(r"\bThreadPool\b", line):
                self.report(idx, "thread-spawn",
                            "direct ThreadPool use outside the context layer "
                            "— use a ComputeContext")

    def rule_rng_source(self):
        if self.allowed_path(RNG_ALLOWED):
            return
        pats = [
            (r"\bstd::random_device\b", "std::random_device"),
            (r"\bstd::mt19937(?:_64)?\b", "std::mt19937"),
            (r"\bstd::default_random_engine\b", "std::default_random_engine"),
            (r"\bstd::minstd_rand0?\b", "std::minstd_rand"),
            (r"(?<![\w:])s?rand\s*\(", "rand()/srand()"),
            (r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)", "time(nullptr) seeding"),
        ]
        for idx, line in enumerate(self.code_lines, start=1):
            for pat, what in pats:
                if re.search(pat, line):
                    self.report(idx, "rng-source",
                                f"{what} outside src/tensor/rng.* — draw from "
                                "the project Rng (seeded, checkpointable)")
                    break

    PARALLEL_CALL_RE = re.compile(r"\b(?:parallel_for|for_chunks(?:_n)?)\s*\(")
    DECL_RE = re.compile(
        r"\b(?:const\s+)?(?:unsigned\s+|signed\s+)?"
        r"(?:float|double|bool|char|auto|int|long|short|size_t|"
        r"std::[A-Za-z_][\w:<>, ]*?|u?int\d+_t)"
        r"(?:\s+const)?\s*[&*]?\s+([A-Za-z_]\w*)\s*[=;{(,[]")
    COMPOUND_RE = re.compile(r"(?<![\w\]\)])([A-Za-z_]\w*)\s*(\+=|-=|\*=|/=|\|=|&=|\^=|<<=|>>=)")
    INCR_RE = re.compile(r"(?:\+\+|--)\s*([A-Za-z_]\w*)|(?<![\w\]\)])([A-Za-z_]\w*)\s*(?:\+\+|--)")

    def rule_shared_accumulator(self):
        for m in self.PARALLEL_CALL_RE.finditer(self.code):
            body, body_off = self._lambda_body_after(m.end() - 1)
            if body is None:
                continue
            decls = set()
            for d in self.DECL_RE.finditer(body):
                decls.add(d.group(1))
                # Multi-declarator statements: double a = 0.0, b = 0.0;
                stmt_end = body.find(";", d.end())
                if stmt_end != -1:
                    for extra in re.finditer(r",\s*([A-Za-z_]\w*)\s*[=,;]",
                                             body[d.end() - 1:stmt_end + 1]):
                        decls.add(extra.group(1))
            for cm in self.COMPOUND_RE.finditer(body):
                name = cm.group(1)
                if name in decls:
                    continue
                self.report(line_of(self.code, body_off + cm.start()),
                            "shared-accumulator",
                            f"'{name} {cm.group(2)}' writes a captured "
                            "variable from inside a parallel region — use "
                            "per-chunk partials combined in fixed chunk order")
            for im in self.INCR_RE.finditer(body):
                name = im.group(1) or im.group(2)
                if name in decls:
                    continue
                # ++x[i] / x[i]++ writes a subscripted element, not x itself.
                if body[im.end():im.end() + 1] == "[":
                    continue
                self.report(line_of(self.code, body_off + im.start()),
                            "shared-accumulator",
                            f"'{name}++/--' mutates a captured variable from "
                            "inside a parallel region — use per-chunk "
                            "partials combined in fixed chunk order")

    def _lambda_body_after(self, open_paren: int):
        """Given the offset of the '(' of a parallel call, return (body text,
        offset) of the outermost lambda body inside the call, or (None, 0)."""
        depth = 0
        i = open_paren
        n = len(self.code)
        call_end = n
        while i < n:  # find matching ')' of the call
            c = self.code[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    call_end = i
                    break
            i += 1
        seg = self.code[open_paren:call_end]
        lm = re.search(r"\[[^\]]*\]\s*(?:\([^)]*\))?\s*(?:mutable\s*)?\{", seg)
        if not lm:
            return None, 0
        body_start = open_paren + lm.end()  # just past '{'
        depth = 1
        i = body_start
        while i < n and depth > 0:
            c = self.code[i]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
            i += 1
        return self.code[body_start:i - 1], body_start

    def rule_collective_tag(self):
        if self.allowed_path(TAG_ALLOWED):
            return
        pats = [
            (r"\bnext_collective_tag\b", "minting collective tags"),
            (r"\bkCollectiveBase\b", "referencing kCollectiveBase"),
            (r"\bkChannelStride\b", "referencing kChannelStride"),
            (r"<<\s*(?:40|36)\b", "tag-space shift arithmetic"),
            (r"\b\d{13,}\b", "13+-digit literal (collective tag range)"),
        ]
        for idx, line in enumerate(self.code_lines, start=1):
            for pat, what in pats:
                if re.search(pat, line):
                    self.report(idx, "collective-tag",
                                f"{what} outside src/comm/communicator.* — "
                                "collective tags are minted only by "
                                "Communicator::next_collective_tag")
                    break

    def rule_using_namespace_header(self):
        if not self.is_header():
            return
        for idx, line in enumerate(self.code_lines, start=1):
            if re.search(r"\busing\s+namespace\b", line):
                self.report(idx, "using-namespace-header",
                            "`using namespace` in a header leaks into every "
                            "translation unit that includes it")

    def rule_include_hygiene(self):
        if self.is_header() and "#pragma once" not in self.raw:
            self.report(1, "include-hygiene", "header is missing #pragma once")
        for idx, line in enumerate(self.raw_lines, start=1):
            m = re.match(r'\s*#\s*include\s+["<]([^">]+)[">]', line)
            if not m:
                continue
            inc = m.group(1)
            if inc.startswith("../"):
                self.report(idx, "include-hygiene",
                            "upward-relative include — include from the "
                            "src/ root (e.g. \"tensor/ops.hpp\")")
            elif inc in C_HEADER_TO_CXX:
                self.report(idx, "include-hygiene",
                            f"<{inc}> — use <{C_HEADER_TO_CXX[inc]}>")

    def rule_naked_assert(self):
        if not self.in_src():
            return
        for idx, line in enumerate(self.code_lines, start=1):
            if re.search(r"(?<!static_)(?<!_)\bassert\s*\(", line):
                self.report(idx, "naked-assert",
                            "assert() in src/ — use MINSGD_CHECK (always-on) "
                            "or MINSGD_DCHECK (debug) from core/check.hpp")
        for idx, line in enumerate(self.raw_lines, start=1):
            if re.search(r'#\s*include\s+<(cassert|assert\.h)>', line):
                self.report(idx, "naked-assert",
                            "including <cassert> in src/ — use "
                            "core/check.hpp instead")

    def rule_cast(self):
        if not self.in_src():
            return
        for idx, line in enumerate(self.code_lines, start=1):
            for kind in ("reinterpret_cast", "const_cast"):
                if re.search(rf"\b{kind}\b", line):
                    self.report(idx, "cast",
                                f"{kind} requires a justification: "
                                "'// minsgd-lint: allow(cast): <why this is "
                                "sound>' on this or the preceding line")

    def rule_flight_record(self):
        # src/-only, like naked-assert: tests/benches construct their own
        # FlightRecorder instances and call record() on them legitimately.
        if not self.in_src() or self.allowed_path(FLIGHT_ALLOWED):
            return
        pats = [
            # The singleton accessor chained straight into record().
            (r"\bflight\s*\(\s*\)\s*\.\s*record\s*\(",
             "flight().record(...)"),
            # Any record() call whose first argument is a FlightKind — the
            # recorder's signature — via a named reference to the singleton.
            (r"\.\s*record\s*\(\s*(?:::)?\s*(?:minsgd\s*::\s*)?(?:obs\s*::\s*)?"
             r"FlightKind\b",
             ".record(FlightKind...)"),
        ]
        for idx, line in enumerate(self.code_lines, start=1):
            for pat, what in pats:
                if re.search(pat, line):
                    self.report(idx, "flight-record",
                                f"{what} in src/ — record flight events "
                                "through MINSGD_FLIGHT (obs/flight.hpp), "
                                "which carries the enabled() gate")
                    break

    HOT_PATH_FN_RE = re.compile(r"\bdo_(?:forward|backward)\s*\(")
    # A named Tensor local or a Tensor temporary. References/pointers
    # (`const Tensor& x`, `const Tensor* in`) bind existing storage and are
    # fine; `std::vector<Tensor>` never matches `Tensor\s+ident`.
    TENSOR_ALLOC_RE = re.compile(r"\bTensor\s+[A-Za-z_]\w*|\bTensor\s*[({]")
    # A named std::vector local (declaration => construction). Greedy `.*>`
    # keeps `const std::vector<float>&` (reference, next char is '&') out.
    VECTOR_ALLOC_RE = re.compile(r"\bstd::vector\s*<.*>\s+[A-Za-z_]\w*")

    def rule_hot_path_alloc(self):
        if not self.fixture_mode and not self.relpath.startswith("src/nn/"):
            return
        for m in self.HOT_PATH_FN_RE.finditer(self.code):
            # Find the matching ')' of the parameter list, then require a
            # definition body ('{' with no ';' in between — declarations and
            # call sites are skipped).
            i = m.end() - 1
            depth = 0
            n = len(self.code)
            while i < n:
                if self.code[i] == "(":
                    depth += 1
                elif self.code[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            brace = self.code.find("{", i)
            if brace == -1 or ";" in self.code[i:brace]:
                continue
            depth = 1
            k = brace + 1
            while k < n and depth:
                if self.code[k] == "{":
                    depth += 1
                elif self.code[k] == "}":
                    depth -= 1
                k += 1
            body = self.code[brace:k]
            for pat, what in ((self.TENSOR_ALLOC_RE, "Tensor construction"),
                              (self.VECTOR_ALLOC_RE,
                               "std::vector declaration")):
                for am in pat.finditer(body):
                    self.report(line_of(self.code, brace + am.start()),
                                "hot-path-alloc",
                                f"{what} inside do_forward/do_backward — "
                                "take scratch from the PlanContext "
                                "(pc.tensor / pc.floats) so steady-state "
                                "iterations allocate nothing")

    # -- driver ------------------------------------------------------------

    def run(self) -> list[Finding]:
        suppressions = self.suppressions()  # also emits bad-suppression
        self.rule_thread_spawn()
        self.rule_rng_source()
        self.rule_shared_accumulator()
        self.rule_collective_tag()
        self.rule_using_namespace_header()
        self.rule_include_hygiene()
        self.rule_naked_assert()
        self.rule_cast()
        self.rule_flight_record()
        self.rule_hot_path_alloc()

        kept = []
        for f in self.findings:
            if f.rule == "bad-suppression":
                kept.append(f)
                continue
            covering = suppressions.get(f.line, []) + suppressions.get(f.line - 1, [])
            if f.rule in covering:
                continue
            kept.append(f)
        return kept


def collect_files(paths) -> list[str]:
    out = []
    for p in paths:
        if not os.path.isabs(p):
            p = os.path.join(REPO_ROOT, p)
        if os.path.isfile(p):
            if p.endswith(CXX_EXTS):
                out.append(p)
        elif os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(d for d in dirs if not d.startswith("."))
                for f in sorted(files):
                    if f.endswith(CXX_EXTS):
                        out.append(os.path.join(root, f))
        else:
            print(f"minsgd-lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return out


def lint_paths(paths, fixture_mode=False) -> list[Finding]:
    findings = []
    for path in collect_files(paths):
        findings.extend(FileLint(path, fixture_mode=fixture_mode).run())
    return findings


def self_test() -> int:
    """Every fixture file fixture_<rule>.<ext> must trigger exactly that rule.
    A rule may have scenario variants named fixture_<rule>-<scenario>.<ext>
    (e.g. fixture_shared-accumulator-kernel); the longest rule name that
    prefixes the stem wins, since rule ids themselves contain dashes.
    fixture_clean*.* (the shared clean file plus scenario-specific clean
    fixtures like fixture_clean-membership-spawn) must be finding-free even
    in fixture mode."""
    fixdir = os.path.join(REPO_ROOT, "tools", "lint", "fixtures")
    if not os.path.isdir(fixdir):
        print(f"minsgd-lint self-test: missing fixtures dir {fixdir}",
              file=sys.stderr)
        return 2
    failures = 0
    names = sorted(os.listdir(fixdir))
    if not names:
        print("minsgd-lint self-test: fixtures dir is empty", file=sys.stderr)
        return 2
    tested_rules = set()
    for name in names:
        path = os.path.join(fixdir, name)
        stem = os.path.splitext(name)[0]
        if not stem.startswith("fixture_"):
            continue
        expected = stem[len("fixture_"):]
        findings = lint_paths([path], fixture_mode=True)
        fired = {f.rule for f in findings}
        if expected.startswith("clean"):
            if findings:
                failures += 1
                print(f"FAIL {name}: expected no findings, got:")
                for f in findings:
                    print(f"  {f.render()}")
            else:
                print(f"ok   {name}: clean")
            continue
        if expected not in RULES:
            # fixture_<rule>-<scenario>: strip the scenario suffix by longest
            # matching rule prefix.
            prefixes = [r for r in RULES if expected.startswith(r + "-")]
            if prefixes:
                expected = max(prefixes, key=len)
        if expected not in RULES:
            failures += 1
            print(f"FAIL {name}: fixture names unknown rule '{expected}'")
            continue
        tested_rules.add(expected)
        if fired == {expected}:
            print(f"ok   {name}: fired [{expected}]")
        else:
            failures += 1
            print(f"FAIL {name}: expected exactly [{expected}], "
                  f"got {sorted(fired) or '[]'}")
            for f in findings:
                print(f"  {f.render()}")
    untested = set(RULES) - tested_rules
    if untested:
        failures += 1
        print(f"FAIL: rules with no fixture: {sorted(untested)}")
    if failures:
        print(f"minsgd-lint self-test: {failures} failure(s)")
        return 1
    print(f"minsgd-lint self-test: all {len(tested_rules)} rules covered")
    return 0


def main(argv) -> int:
    args = argv[1:]
    if "--list-rules" in args:
        for rule, desc in RULES.items():
            print(f"{rule:24} {desc}")
        return 0
    if "--self-test" in args:
        return self_test()
    paths = [a for a in args if not a.startswith("-")]
    if not paths:
        paths = ["src", "tests", "bench", "examples"]
    findings = lint_paths(paths)
    for f in findings:
        print(f.render())
    if findings:
        print(f"minsgd-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
