#!/usr/bin/env python3
"""analyze.py: cross-rank postmortem analyzer for minsgd flight-recorder dumps.

A crashed SimCluster run (fault injection, CommTimeout, MINSGD_CHECK failure)
leaves one merged `postmortem.json` holding the last N flight-recorder events
of every rank. This tool joins those events across ranks and answers the
questions a postmortem starts with:

  * Did every rank reach every collective? Events are joined into groups by
    (channel, tag, generation, op); a group is *matched* when the number of
    distinct ranks that recorded a begin equals the expected world for that
    generation (taken from membership-commit events, or --world for gen 0).
  * Who is the straggler? For each group the last arriver is charged only the
    margin over the second-last arrival — the delay nobody else shares. The
    rank with the largest accumulated margin is named.
  * How much comm is exposed vs overlapped? Per-rank union of collective
    [begin, end] intervals, split by channel (0 = the rank thread blocked in
    a collective, 1 = the async engine worker), divided by step count.
  * What did the elastic membership do? Commit events give a generation /
    world timeline; fault and crash events are counted.

This is the dependency-free (stdlib-only) twin of obs::analyze_flight in
src/obs/postmortem.cpp: same join keys, same attribution policy, same report
shape, so the numbers agree whether the dump is read in-process (tests) or
offline (this tool). Keep the two in sync.

Usage:
    analyze.py <postmortem.json> [--world N] [--json] [--out PATH]
    analyze.py --self-test

--json prints the machine-readable analysis to stdout; --out writes it to
PATH via the shared atomic tmp+rename helper (tools/common/report.py), so a
crash can never leave a truncated report for a later stage to misread.

Exit status: 0 on success, 1 on analysis/self-test failure, 2 on usage error.
"""

from __future__ import annotations

import json
import os
import sys
from collections import defaultdict
from dataclasses import dataclass, field

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from common.report import write_json_atomic  # noqa: E402

SCHEMA = "minsgd-postmortem-v1"

KINDS = ("none", "coll-begin", "coll-end", "arrive", "step", "membership",
         "checkpoint", "fault", "crash")
OPS = ("none", "barrier", "broadcast", "reduce", "allgather",
       "allreduce-star", "allreduce-ring", "allreduce-tree", "allreduce-rhd",
       "drop", "delay", "duplicate", "corrupt", "crashed", "timeout", "stall",
       "save", "load", "commit", "rendezvous")


@dataclass
class Event:
    t_ns: int
    kind: str
    op: str
    rank: int
    chan: int
    tag: int
    gen: int
    bytes: int
    arg: int


@dataclass
class Group:
    chan: int
    tag: int
    gen: int
    op: str
    ranks_seen: int = 0
    ranks_expected: int = 0
    first_begin_ns: int = 0
    first_rank: int = -1
    last_begin_ns: int = 0
    last_rank: int = -1
    skew_ns: int = 0
    margin_ns: int = 0


@dataclass
class Analysis:
    world: int = 0
    groups: int = 0
    matched_groups: int = 0
    match_rate: float = 1.0
    straggler_rank: int = -1
    straggler_lag_ns: int = 0
    ranks: dict = field(default_factory=dict)  # rank -> {groups, last, lag_ns}
    worst: list = field(default_factory=list)
    step_comm: dict = field(default_factory=dict)
    reconfigs: list = field(default_factory=list)
    fault_events: int = 0
    crash_events: int = 0


def load_postmortem(path: str):
    with open(path, "r", encoding="utf-8") as f:
        root = json.load(f)
    if root.get("schema") != SCHEMA:
        raise ValueError(f"{path}: missing or unknown schema "
                         f"(want {SCHEMA!r}, got {root.get('schema')!r})")
    events = []
    for e in root["events"]:
        if e["kind"] not in KINDS:
            raise ValueError(f"unknown event kind {e['kind']!r}")
        if e["op"] not in OPS:
            raise ValueError(f"unknown event op {e['op']!r}")
        events.append(Event(int(e["t_ns"]), e["kind"], e["op"], int(e["rank"]),
                            int(e["chan"]), int(e["tag"]), int(e["gen"]),
                            int(e["bytes"]), int(e["arg"])))
    return root, events


def interval_union(ivals):
    """Total length of the union of [b, e) intervals."""
    ivals = sorted(ivals)
    total = 0
    cur_b, cur_e = ivals[0]
    for b, e in ivals:
        if b > cur_e:
            total += cur_e - cur_b
            cur_b, cur_e = b, e
        else:
            cur_e = max(cur_e, e)
    total += cur_e - cur_b
    return total


def analyze(events, world=0):
    a = Analysis()
    max_rank = max((e.rank for e in events), default=-1)
    a.world = world if world > 0 else max_rank + 1

    # Expected participant count per generation: --world seeds generation 0;
    # every committed view declares its own (membership events carry world
    # in arg).
    gen_world = {}
    for e in events:
        if e.kind == "membership":
            gen_world[e.gen] = e.arg
            a.reconfigs.append((e.t_ns, e.gen, e.arg))
        elif e.kind == "fault":
            a.fault_events += 1
        elif e.kind == "crash":
            a.crash_events += 1
    a.reconfigs.sort()

    # The cross-rank join: one group per (chan, tag, gen, op). The op
    # disambiguates an allreduce wrapper from the nested collective that
    # mints the same first tag (allreduce-tree's inner reduce).
    begins = defaultdict(dict)  # key -> {rank: earliest begin}
    open_begins = {}
    intervals = defaultdict(list)  # (rank, chan) -> [(b, e)]
    steps_by_rank = defaultdict(int)
    for e in events:
        if e.kind == "step":
            steps_by_rank[e.rank] += 1
        elif e.kind == "coll-begin":
            g = begins[(e.chan, e.tag, e.gen, e.op)]
            g[e.rank] = min(g.get(e.rank, e.t_ns), e.t_ns)
            open_begins[(e.rank, e.chan, e.tag, e.gen, e.op)] = e.t_ns
        elif e.kind == "coll-end":
            b = open_begins.pop((e.rank, e.chan, e.tag, e.gen, e.op), None)
            if b is not None:
                intervals[(e.rank, e.chan)].append((b, e.t_ns))

    all_groups = []
    for (chan, tag, gen, op), by_rank in begins.items():
        g = Group(chan, tag, gen, op)
        g.ranks_seen = len(by_rank)
        g.ranks_expected = gen_world.get(gen, a.world)
        order = sorted((t, r) for r, t in by_rank.items())
        g.first_begin_ns, g.first_rank = order[0]
        g.last_begin_ns, g.last_rank = order[-1]
        g.skew_ns = g.last_begin_ns - g.first_begin_ns
        # The last arriver is charged only the margin over the second-last —
        # the delay nobody else shares.
        g.margin_ns = g.last_begin_ns - order[-2][0] if len(order) >= 2 else 0
        for r in by_rank:
            ra = a.ranks.setdefault(r, {"groups": 0, "last": 0, "lag_ns": 0})
            ra["groups"] += 1
        if len(order) >= 2:
            ra = a.ranks[g.last_rank]
            ra["last"] += 1
            ra["lag_ns"] += g.margin_ns
        a.groups += 1
        if g.ranks_expected > 0 and g.ranks_seen == g.ranks_expected:
            a.matched_groups += 1
        all_groups.append(g)
    a.match_rate = 1.0 if a.groups == 0 else a.matched_groups / a.groups

    for r, ra in sorted(a.ranks.items()):
        if ra["lag_ns"] > a.straggler_lag_ns:
            a.straggler_lag_ns = ra["lag_ns"]
            a.straggler_rank = r

    all_groups.sort(key=lambda g: -g.skew_ns)
    a.worst = all_groups[:8]

    # Exposed (chan 0) vs overlapped (chan 1) comm: union of each rank's
    # collective intervals so nested spans are not double counted.
    for (rank, chan), ivals in intervals.items():
        row = a.step_comm.setdefault(rank, {"steps": 0, "exposed_ns": 0,
                                            "overlapped_ns": 0})
        total = interval_union(ivals)
        if chan == 0:
            row["exposed_ns"] += total
        elif chan == 1:
            row["overlapped_ns"] += total
    for rank, n in steps_by_rank.items():
        a.step_comm.setdefault(rank, {"steps": 0, "exposed_ns": 0,
                                      "overlapped_ns": 0})["steps"] = n
    return a


def report(a: Analysis, root=None, out=sys.stdout):
    w = out.write
    if root is not None:
        w(f"reason: {root.get('reason', '')}\n")
        for err in root.get("errors", []):
            w(f"  rank {err['rank']}: {err['what']}\n")
    w(f"postmortem: world={a.world}, {a.groups} collective group(s), "
      f"{a.matched_groups} matched across ranks ({100.0 * a.match_rate:.1f}%)\n")
    if a.straggler_rank >= 0:
        w(f"straggler: rank {a.straggler_rank} "
          f"(+{a.straggler_lag_ns / 1e6:.3f} ms total arrival lag)\n")
    else:
        w("straggler: no attribution evidence\n")
    for r, ra in sorted(a.ranks.items()):
        w(f"  rank {r:2d}: {ra['groups']} group(s), arrived last "
          f"{ra['last']} times, charged {ra['lag_ns'] / 1e6:.3f} ms\n")
    if a.worst:
        w("worst arrival skew:\n")
        for g in a.worst:
            w(f"  chan {g.chan} gen {g.gen} tag {g.tag} {g.op:<15} "
              f"{g.ranks_seen}/{g.ranks_expected} ranks, "
              f"skew {g.skew_ns / 1e6:.3f} ms, last rank {g.last_rank} "
              f"(+{g.margin_ns / 1e6:.3f} ms)\n")
    if a.step_comm:
        w("per-step comm (exposed = main channel, overlapped = async):\n")
        for r, row in sorted(a.step_comm.items()):
            steps = row["steps"] if row["steps"] > 0 else 1
            w(f"  rank {r:2d}: {row['steps']} step(s), exposed "
              f"{row['exposed_ns'] / steps / 1e6:.3f} ms/step, overlapped "
              f"{row['overlapped_ns'] / steps / 1e6:.3f} ms/step\n")
    if a.reconfigs:
        w("membership timeline:\n")
        for t_ns, gen, world in a.reconfigs:
            w(f"  t={t_ns / 1e6:.3f} ms: generation {gen} committed, "
              f"world {world}\n")
    w(f"fault events: {a.fault_events}, crash events: {a.crash_events}\n")


def to_json(a: Analysis):
    return {
        "world": a.world,
        "groups": a.groups,
        "matched_groups": a.matched_groups,
        "match_rate": a.match_rate,
        "straggler_rank": a.straggler_rank,
        "straggler_lag_ns": a.straggler_lag_ns,
        "ranks": {str(r): ra for r, ra in sorted(a.ranks.items())},
        "fault_events": a.fault_events,
        "crash_events": a.crash_events,
    }


def self_test() -> int:
    """Synthetic 4-rank timeline exercising every analyzer feature: a clean
    collective, a straggling rank, an incomplete group (crashed rank absent),
    nested spans on one rank, an overlapped-channel group, a membership
    commit, and fault/crash markers."""
    ev = []

    def add(t, kind, op, rank, chan=0, tag=0, gen=0, nbytes=0, arg=0):
        ev.append(Event(t, kind, op, rank, chan, tag, gen, nbytes, arg))

    T = 1_000_000  # 1 ms in ns
    # Group A (tag 100): all 4 ranks, rank 2 arrives 2 ms after the pack.
    for r in range(4):
        add(1 * T + r * 10_000 + (2 * T if r == 2 else 0),
            "coll-begin", "allreduce-ring", r, tag=100, nbytes=4096)
    for r in range(4):
        add(4 * T + r * 10_000, "coll-end", "allreduce-ring", r, tag=100,
            nbytes=4096)
    # Group B (tag 200): rank 2 late again — attribution must accumulate.
    for r in range(4):
        add(5 * T + r * 10_000 + (3 * T if r == 2 else 0),
            "coll-begin", "barrier", r, tag=200)
    for r in range(4):
        add(9 * T + r * 10_000, "coll-end", "barrier", r, tag=200)
    # Group C (tag 300): rank 3 crashed before it — only 3 ranks => unmatched.
    for r in range(3):
        add(10 * T + r * 10_000, "coll-begin", "broadcast", r, tag=300)
    add(10 * T + 500_000, "crash", "crashed", 3, arg=3)
    # Nested span on rank 0 (tag 301 inside 300's window): union, not sum.
    add(10 * T + 20_000, "coll-begin", "reduce", 0, tag=301)
    add(10 * T + 400_000, "coll-end", "reduce", 0, tag=301)
    for r in range(3):
        add(11 * T + r * 10_000, "coll-end", "broadcast", r, tag=300)
    # Overlapped-channel group on ranks 0-1 (chan 1), gen 1 after a commit
    # that shrank the world to 2.
    add(12 * T, "membership", "commit", 0, chan=2, gen=1, arg=2)
    for r in range(2):
        add(13 * T + r * 10_000, "coll-begin", "allreduce-ring", r, chan=1,
            tag=400, gen=1)
        add(14 * T + r * 10_000, "coll-end", "allreduce-ring", r, chan=1,
            tag=400, gen=1)
    # Steps and a fault marker.
    for r in range(4):
        add(15 * T, "step", "none", r, arg=1)
    add(2 * T, "fault", "delay", 1, nbytes=5, arg=2)

    a = analyze(ev, world=4)

    failures = []

    def expect(cond, what):
        if not cond:
            failures.append(what)

    # 4 main-channel groups + 1 overlapped = 5; unmatched: tag 300 (3/4) and
    # tag 301 (1/4).
    expect(a.groups == 5, f"groups: want 5, got {a.groups}")
    expect(a.matched_groups == 3, f"matched: want 3, got {a.matched_groups}")
    expect(abs(a.match_rate - 0.6) < 1e-9,
           f"match_rate: want 0.6, got {a.match_rate}")
    expect(a.straggler_rank == 2, f"straggler: want 2, got {a.straggler_rank}")
    # Rank 2 charged margin-over-second-last: ~2 ms (A) + ~3 ms (B).
    expect(4_900_000 < a.straggler_lag_ns < 5_100_000,
           f"straggler lag: want ~5 ms, got {a.straggler_lag_ns}")
    # A, B, and (trivially, by 20 us) the incomplete group C.
    expect(a.ranks[2]["last"] == 3,
           f"rank 2 arrived-last count: want 3, got {a.ranks[2]['last']}")
    expect(a.fault_events == 1, f"fault events: want 1, got {a.fault_events}")
    expect(a.crash_events == 1, f"crash events: want 1, got {a.crash_events}")
    expect(a.reconfigs == [(12 * T, 1, 2)], f"reconfigs: {a.reconfigs}")
    # Gen-1 group expects world 2 from the commit, so 2/2 ranks matches.
    gen1 = [g for g in a.worst if g.gen == 1]
    expect(len(gen1) == 1 and gen1[0].ranks_expected == 2,
           f"gen-1 expected world: {gen1}")
    # Rank 0 exposed time is a union: tags 100 (3 ms), 200 (4 ms), 300 (1 ms,
    # with nested 301 inside — no double count) = 8 ms; chan-1 time is
    # separate (1 ms overlapped).
    r0 = a.step_comm[0]
    expect(abs(r0["exposed_ns"] - 8 * T) < 200_000,
           f"rank 0 exposed: want ~8 ms, got {r0['exposed_ns']}")
    expect(abs(r0["overlapped_ns"] - 1 * T) < 200_000,
           f"rank 0 overlapped: want ~1 ms, got {r0['overlapped_ns']}")
    expect(r0["steps"] == 1, f"rank 0 steps: want 1, got {r0['steps']}")
    # Worst-skew ordering: tag 200 (3 ms skew) ahead of tag 100 (2 ms).
    expect(a.worst[0].tag == 200 and a.worst[1].tag == 100,
           f"worst order: {[g.tag for g in a.worst]}")

    # Round-trip: the report must render without error.
    import io
    buf = io.StringIO()
    report(a, out=buf)
    expect("straggler: rank 2" in buf.getvalue(), "report names straggler")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        print(f"analyze.py self-test: {len(failures)} failure(s)")
        return 1
    print("analyze.py self-test: all checks passed")
    return 0


def main(argv) -> int:
    args = argv[1:]
    if "--self-test" in args:
        return self_test()
    world = 0
    as_json = "--json" in args
    out_path = None
    if "--out" in args:
        i = args.index("--out")
        try:
            out_path = args[i + 1]
        except IndexError:
            print("analyze.py: --out needs a path", file=sys.stderr)
            return 2
        del args[i:i + 2]
    if "--world" in args:
        i = args.index("--world")
        try:
            world = int(args[i + 1])
        except (IndexError, ValueError):
            print("analyze.py: --world needs an integer", file=sys.stderr)
            return 2
        del args[i:i + 2]
    paths = [a for a in args if not a.startswith("-")]
    if len(paths) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        root, events = load_postmortem(paths[0])
    except (OSError, ValueError, KeyError) as err:
        print(f"analyze.py: {err}", file=sys.stderr)
        return 1
    a = analyze(events, world=world or int(root.get("world", 0)))
    if out_path is not None:
        write_json_atomic(out_path, to_json(a))
    if as_json:
        json.dump(to_json(a), sys.stdout, indent=2)
        print()
    elif out_path is None:
        report(a, root=root)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:
        # Piped into head/less and the reader closed first; not an error.
        sys.exit(0)
