"""checks: the five whole-program invariants the analyzer proves.

Each check is a function `check_<name>(world) -> list[Finding]` over the
shared World (index + call graph + discovery registries). The catalog:

  hot-path-alloc     interprocedural extension of the linter's rule: any
                     function *reachable* from do_forward/do_backward/do_step
                     that constructs a Tensor or std::vector is flagged, with
                     the full entrypoint -> offender call chain.
  tag-space          evaluates the collective tag constants and every
                     Communicator construction site's channel argument, then
                     proves rank-thread / async / membership channel sets are
                     disjoint and the field arithmetic cannot collide.
  det-reduction      flags FP accumulation that bypasses the fixed-chunk-order
                     combine contract (shared accumulators written from
                     parallel regions, descending/unordered combines) and
                     cross-checks the -ffp-contract=off CMake source property
                     against the kernel TUs actually on disk.
  env-gate           discovers every MINSGD_* runtime getenv / CMake build
                     gate and fails gates that are undocumented (README or
                     DESIGN.md) or, for runtime gates, untested (tests/ or
                     bench/ mention).
  suppression-audit  inventories every `minsgd-lint: allow(...)` and
                     `minsgd-analyze: allow(...)` site with justification and
                     git blame age, failing suppressions whose justification
                     no longer names any existing symbol.

Findings can be silenced at the site with
    // minsgd-analyze: allow(<check>): <justification>
on the flagged line or the line above — the same shape the linter uses, and
itself audited by suppression-audit.
"""

from __future__ import annotations

import glob as globmod
import os
import re
import subprocess
from dataclasses import dataclass, field

from callgraph import CallGraph
from cpp_model import Index

CHECKS = ("hot-path-alloc", "tag-space", "det-reduction", "env-gate",
          "suppression-audit")

ANALYZE_ALLOW_RE = re.compile(
    r"minsgd-analyze:\s*allow\(([a-zA-Z-]+)\)(?::\s*(\S.*))?")
ANY_ALLOW_RE = re.compile(
    r"minsgd-(lint|analyze):\s*allow\(([a-zA-Z-]+)\)(?::\s*(.*))?")


@dataclass
class Finding:
    check: str
    rule: str
    file: str
    line: int
    message: str
    trace: list = field(default_factory=list)

    @property
    def fid(self) -> str:
        return f"{self.check}/{self.rule}:{self.file}:{self.line}"

    def to_json(self):
        return {"check": self.check, "rule": self.rule, "id": self.fid,
                "file": self.file, "line": self.line,
                "message": self.message, "trace": self.trace}


@dataclass
class World:
    root: str
    index: Index
    graph: CallGraph
    gates: list = field(default_factory=list)         # filled by env-gate
    suppressions: list = field(default_factory=list)  # filled by audit


def is_allowed(tu, line: int, check: str) -> bool:
    """Is a `minsgd-analyze: allow(<check>)` on `line` or in the contiguous
    comment block directly above it? (The allow tag opens the block and its
    justification may continue on following comment lines.)"""
    return is_allowed_line(tu.raw_lines, line, check)


# ---------------------------------------------------------------------------
# 1. hot-path transitive allocation
# ---------------------------------------------------------------------------

HOT_ENTRY_NAMES = frozenset({"do_forward", "do_backward", "do_step"})
HOT_SCOPES = ("src/nn", "src/tensor", "src/optim")

TENSOR_ALLOC_RE = re.compile(r"\bTensor\s+[A-Za-z_]\w*|\bTensor\s*[({]")
TENSOR_HEAP_RE = re.compile(
    r"std::make_unique\s*<\s*Tensor\b|std::make_shared\s*<\s*Tensor\b|"
    r"\bnew\s+Tensor\b")
VECTOR_ALLOC_RE = re.compile(r"\bstd::vector\s*<.*>\s+[A-Za-z_]\w*")


def check_hot_path_alloc(world: World):
    idx, cg = world.index, world.graph
    entries = [fn for name in HOT_ENTRY_NAMES
               for fn in idx.by_name.get(name, [])
               if fn.tu.relpath.startswith("src/")]
    parent = cg.reachable_from(entries)
    findings = []
    for fn in parent:
        rel = fn.tu.relpath
        if not rel.startswith(HOT_SCOPES):
            continue
        for pat, what in ((TENSOR_ALLOC_RE, "Tensor"),
                          (TENSOR_HEAP_RE, "heap Tensor"),
                          (VECTOR_ALLOC_RE, "std::vector")):
            for m in pat.finditer(fn.body):
                line = fn.tu.line_of(fn.body_off + m.start())
                if is_allowed(fn.tu, line, "hot-path-alloc"):
                    continue
                chain = CallGraph.chain(parent, fn)
                findings.append(Finding(
                    "hot-path-alloc", "transitive-alloc", rel, line,
                    f"{fn.qual} constructs a {what} and is reachable from "
                    f"the planned hot path; use PlanContext scratch "
                    f"(pc.floats/pc.tensor) or pack_scratch instead",
                    trace=chain))
    return findings


# ---------------------------------------------------------------------------
# 2. collective tag-space analysis
# ---------------------------------------------------------------------------

TAG_CONSTANTS = ("kCollectiveBase", "kChannelStride", "kMaxChannels",
                 "kGenerationStride", "kMaxGenerations")


def _split_args(text: str):
    out, depth, cur = [], 0, []
    for c in text:
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth -= 1
        if c == "," and depth == 0:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
    tail = "".join(cur).strip()
    if tail:
        out.append(tail)
    return out


def _balanced_args(code: str, open_paren: int):
    depth, i = 0, open_paren
    while i < len(code):
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren + 1:i]
        i += 1
    return None


def _comm_sites(world: World):
    """(tu, line, channel, subsystem) for each Communicator construction
    site outside the class's own TU. The channel is the last argument when
    constant-derivable, else 0 (every ctor defaults channel to 0)."""
    pool = world.index.constants
    sites = []
    decl_re = re.compile(r"\b(?:comm::)?Communicator\s+\w+\s*(\()")
    mk_re = re.compile(
        r"make_unique\s*<\s*(?:comm::)?Communicator\s*>\s*(\()")
    for rel, tu in sorted(world.index.tus.items()):
        if not rel.startswith("src/"):
            continue
        base = os.path.basename(rel)
        if base.startswith("communicator."):
            continue
        # Local declarations and make_unique sites.
        hits = []
        for pat in (decl_re, mk_re):
            for m in pat.finditer(tu.code):
                hits.append(m.start(1))
        # Member init-list sites: members declared `Communicator name_;`.
        members = re.findall(r"\b(?:comm::)?Communicator\s+(\w+_)\s*;",
                             tu.code)
        for fn in tu.functions:
            if fn.cls != fn.name:
                continue  # only constructors carry init lists
            for mem in members:
                for m in re.finditer(r"\b" + mem + r"\s*(\()", fn.head):
                    args = _balanced_args(fn.head, m.start(1))
                    if args is None:
                        continue
                    sites.append(_classify_site(tu, fn.line, args, pool))
        for off in hits:
            args = _balanced_args(tu.code, off)
            if args is None:
                continue
            line = tu.line_of(off)
            sites.append(_classify_site(tu, line, args, pool))
    return [s for s in sites if s is not None]


def _classify_site(tu, line, args_text, pool):
    args = _split_args(args_text)
    if not args:
        return None
    channel = pool.eval_expr(args[-1])
    if channel is None:
        channel = 0  # non-constant trailing arg => defaulted channel
    rel = tu.relpath
    if "membership" in rel:
        subsystem = "membership"
    elif "async" in rel:
        subsystem = "async"
    else:
        subsystem = "rank-thread"
    return (tu, line, channel, subsystem)


def check_tag_space(world: World):
    pool = world.index.constants
    vals = {name: pool.value(name) for name in TAG_CONSTANTS}
    if vals["kCollectiveBase"] is None or vals["kChannelStride"] is None:
        return []  # no communicator in this tree (e.g. most fixtures)
    findings = []
    comm_tu = next((tu for rel, tu in sorted(world.index.tus.items())
                    if "kCollectiveBase" in tu.constants), None)
    comm_rel = comm_tu.relpath if comm_tu else "src/comm/communicator.hpp"
    base, stride = vals["kCollectiveBase"], vals["kChannelStride"]
    maxch = vals["kMaxChannels"]
    genstride = vals["kGenerationStride"]
    maxgen = vals["kMaxGenerations"]

    def arith(msg):
        findings.append(Finding("tag-space", "tag-arith", comm_rel, 1, msg))

    if base <= 0:
        arith(f"kCollectiveBase = {base} does not leave a positive p2p tag "
              f"range below the collective space")
    if maxch is not None and genstride is not None \
            and maxch * stride > genstride:
        arith(f"channel field overflows into the generation field: "
              f"kMaxChannels*kChannelStride = {maxch * stride} > "
              f"kGenerationStride = {genstride}")
    if None not in (maxch, genstride, maxgen) \
            and base + maxgen * genstride + maxch * stride >= 1 << 63:
        arith("tag space overflows int64: kCollectiveBase + "
              "kMaxGenerations*kGenerationStride + kMaxChannels*"
              "kChannelStride >= 2^63")

    by_channel: dict[int, list] = {}
    for tu, line, channel, subsystem in _comm_sites(world):
        if maxch is not None and not (0 <= channel < maxch):
            if not is_allowed(tu, line, "tag-space"):
                findings.append(Finding(
                    "tag-space", "channel-range", tu.relpath, line,
                    f"channel {channel} outside [0, kMaxChannels={maxch})"))
            continue
        by_channel.setdefault(channel, []).append((tu, line, subsystem))
    for channel, sites in sorted(by_channel.items()):
        subsystems = sorted({s for _, _, s in sites})
        if len(subsystems) <= 1:
            continue
        lo = base + channel * stride
        hi = lo + stride
        tu, line, _ = sites[0]
        if is_allowed(tu, line, "tag-space"):
            continue
        where = ", ".join(f"{t.relpath}:{ln} ({s})" for t, ln, s in sites)
        findings.append(Finding(
            "tag-space", "channel-overlap", tu.relpath, line,
            f"channel {channel} (tag interval [{lo}, {hi})) is claimed by "
            f"multiple subsystems: {where}; collective traffic on shared "
            f"channels can cross-match",
            trace=[where]))
    return findings


# ---------------------------------------------------------------------------
# 3. deterministic-reduction audit
# ---------------------------------------------------------------------------

DET_SCOPES = ("src/tensor", "src/nn", "src/optim")
FP_REF_PARAM_RE = re.compile(r"\b(float|double)\s*&\s*(\w+)\b")
DESC_COMBINE_RE = re.compile(
    r"for\s*\(\s*(?:int|long|auto|std::\w+|\w+_t)\s+(\w+)\s*=\s*[\w.]+\s*"
    r"-\s*1\s*;\s*\1\s*>=\s*0\s*;\s*--\s*\1\s*\)")
DECL_WORDS = (r"(?:float|double|auto|int|unsigned|long|bool|std::size_t|"
              r"size_t|std::int64_t|int64_t|std::uint64_t)")


def _pinned_kernels(root: str):
    """Files covered by an -ffp-contract=off source property in the tensor
    CMakeLists, and the property's line for diagnostics."""
    cml = os.path.join(root, "src", "tensor", "CMakeLists.txt")
    pinned, prop_line = set(), 1
    if not os.path.isfile(cml):
        return None, pinned, prop_line
    with open(cml, "r", encoding="utf-8") as f:
        text = f.read()
    for m in re.finditer(r"set_source_files_properties\s*\(", text):
        args = _balanced_args(text, m.end() - 1)
        if args is None or "ffp-contract=off" not in args:
            continue
        prop_line = text.count("\n", 0, m.start()) + 1
        for tok in args.split():
            if tok.endswith(".cpp"):
                pinned.add(os.path.basename(tok))
    return cml, pinned, prop_line


def check_det_reduction(world: World):
    idx, cg = world.index, world.graph
    findings = []

    # fp-contract: every kernel TU on disk must carry the source property.
    kdir = os.path.join(world.root, "src", "tensor", "kernels")
    if os.path.isdir(kdir):
        cml, pinned, prop_line = _pinned_kernels(world.root)
        for path in sorted(globmod.glob(os.path.join(kdir, "*.cpp"))):
            fname = os.path.basename(path)
            if fname in pinned:
                continue
            rel = os.path.relpath(path, world.root).replace(os.sep, "/")
            tu = idx.tus.get(rel)
            if tu is not None and is_allowed(tu, 1, "det-reduction"):
                continue
            where = ("src/tensor/CMakeLists.txt" if cml else rel)
            findings.append(Finding(
                "det-reduction", "fp-contract", where,
                prop_line if cml else 1,
                f"kernel TU {rel} is not covered by the -ffp-contract=off "
                f"source property; contraction would break portable-vs-SIMD "
                f"bitwise identity"))

    # Per-function rules.
    fp_ref_accums = {}  # simple name -> FunctionDef with `ref_param +=`
    for rel, tu in sorted(idx.tus.items()):
        if not rel.startswith(DET_SCOPES):
            continue
        for fn in tu.functions:
            for _ty, pname in FP_REF_PARAM_RE.findall(fn.param_text()):
                if re.search(r"\b" + pname + r"\s*\+=", fn.body):
                    fp_ref_accums.setdefault(fn.name, fn)
            # Descending combine loops.
            for m in DESC_COMBINE_RE.finditer(fn.body):
                tail = fn.body[m.end():m.end() + 200]
                if re.search(r"\+=\s*[^;]*\[\s*" + m.group(1) + r"\s*\]",
                             tail):
                    line = tu.line_of(fn.body_off + m.start())
                    if is_allowed(tu, line, "det-reduction"):
                        continue
                    findings.append(Finding(
                        "det-reduction", "unordered-combine", rel, line,
                        f"{fn.qual} combines per-chunk partials in "
                        f"descending order; the contract is ascending "
                        f"chunk order on the calling thread"))
            # Range-for accumulation over unordered containers.
            for dm in re.finditer(r"std::unordered_(?:map|set)\s*<[^;]*?>\s*"
                                  r"&?\s*(\w+)", tu.code):
                cont = dm.group(1)
                for fm in re.finditer(
                        r"for\s*\(\s*[^;:]*:\s*" + cont + r"\s*\)", fn.body):
                    blk_start = fn.body.find("{", fm.end())
                    stmt_end = fn.body.find(";", fm.end())
                    if blk_start != -1 and (stmt_end == -1
                                            or blk_start < stmt_end):
                        depth, j = 0, blk_start
                        while j < len(fn.body):
                            if fn.body[j] == "{":
                                depth += 1
                            elif fn.body[j] == "}":
                                depth -= 1
                                if depth == 0:
                                    break
                            j += 1
                        blk = fn.body[blk_start:j]
                    else:
                        blk = fn.body[fm.end():stmt_end + 1]
                    if re.search(r"\+=", blk):
                        line = tu.line_of(fn.body_off + fm.start())
                        if is_allowed(tu, line, "det-reduction"):
                            continue
                        findings.append(Finding(
                            "det-reduction", "unordered-combine", rel, line,
                            f"{fn.qual} accumulates over unordered "
                            f"container '{cont}'; iteration order is "
                            f"unspecified — combine in a fixed order"))
            # Direct `x +=` on a captured (not span-local) variable inside a
            # parallel region.
            for start, end in cg.parallel_spans.get(fn, ()):
                span = fn.body[start:end]
                for am in re.finditer(r"(?<![\w.\]>])([A-Za-z_]\w*)\s*\+=",
                                      span):
                    name = am.group(1)
                    before = span[:am.start()]
                    if re.search(DECL_WORDS + r"[\s<>:\w]*[&*]?\s*\b" + name
                                 + r"\s*[=;({]", before):
                        continue  # declared inside the span
                    if re.search(r",\s*" + name + r"\s*=", before):
                        continue  # comma-continued declarator list
                    line = tu.line_of(fn.body_off + start + am.start(1))
                    if is_allowed(tu, line, "det-reduction"):
                        continue
                    findings.append(Finding(
                        "det-reduction", "parallel-shared-accum", rel, line,
                        f"{fn.qual} accumulates into captured '{name}' from "
                        f"inside a parallel region; write per-chunk "
                        f"partial[c] and combine in ascending chunk order"))

    # Callees with FP-reference accumulator params invoked from parallel
    # regions anywhere in scope.
    for rel, tu in sorted(idx.tus.items()):
        if not rel.startswith(DET_SCOPES):
            continue
        for fn in tu.functions:
            for start, end in cg.parallel_spans.get(fn, ()):
                span = fn.body[start:end]
                for name, callee in sorted(fp_ref_accums.items()):
                    if callee is fn:
                        continue
                    if not re.search(r"\b" + name + r"\s*\(", span):
                        continue
                    if is_allowed(callee.tu, callee.line, "det-reduction"):
                        continue
                    findings.append(Finding(
                        "det-reduction", "shared-accum-callee",
                        callee.tu.relpath, callee.line,
                        f"{callee.qual} accumulates into a float&/double& "
                        f"parameter and is called from a parallel region in "
                        f"{fn.qual} ({rel}); route partials through the "
                        f"fixed-chunk-order combine instead",
                        trace=[f"{fn.qual} ({rel}:{fn.line})"]))
    return findings


# ---------------------------------------------------------------------------
# 4. env-gate registry
# ---------------------------------------------------------------------------

GATE_DESCRIPTIONS = {
    "MINSGD_THREADS": "intra-op worker threads (default: hardware conc.)",
    "MINSGD_KERNEL_ISA": "force kernel ISA: portable, avx2, neon",
    "MINSGD_CONV_DIRECT": "direct-conv fast path on/off (default on)",
    "MINSGD_MEMPLAN": "graph-compiled execution plans on/off (default on)",
    "MINSGD_MEMPLAN_RECOMPUTE": "plan recompute-cheap-activations policy",
    "MINSGD_FLIGHT": "cross-rank flight recorder on/off",
    "MINSGD_FLIGHT_CAPACITY": "flight recorder ring capacity [16, 2^20]",
    "MINSGD_SANITIZE": "build preset: asan-ubsan or tsan",
    "MINSGD_DCHECK": "heavy debug-check assertions (MINSGD_DCHECK_ON)",
    "MINSGD_DCHECK_ON": "preprocessor define set by -DMINSGD_DCHECK=ON",
    "MINSGD_TIDY": "run clang-tidy during the build",
    "MINSGD_TRACE_OFF": "compile out trace spans entirely",
}

GETENV_RE = re.compile(r'getenv\s*\(\s*"(MINSGD_\w+)"')
MACRO_USE_RE = re.compile(
    r'^\s*#\s*(?:ifdef|ifndef|if|elif)\b.*?\b(MINSGD_[A-Z0-9_]+)',
    re.MULTILINE)
DEFINED_RE = re.compile(r"defined\s*\(?\s*(MINSGD_[A-Z0-9_]+)")


def _read(path):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            return f.read()
    except OSError:
        return ""


def _word_in(name, text):
    return re.search(r"\b" + re.escape(name) + r"\b", text) is not None


def discover_gates(world: World):
    """The env-gate registry: every MINSGD_* runtime/build gate with its
    read sites, documentation, and test coverage."""
    idx = world.index
    gates: dict[str, dict] = {}

    def add(name, kind, rel, line):
        g = gates.setdefault(name, {"name": name, "kind": kind, "sites": []})
        if kind == "build" and g["kind"] == "env":
            pass  # an env read wins: it is the stronger contract
        site = f"{rel}:{line}"
        if site not in g["sites"]:
            g["sites"].append(site)

    # Runtime: direct getenv reads, then helper-mediated reads.
    helpers = set()
    for fns in idx.by_name.values():
        for fn in fns:
            if re.search(r"\bgetenv\s*\(", fn.body) \
                    and "char" in fn.param_text():
                helpers.add(fn.name)
    for rel, tu in sorted(idx.tus.items()):
        if not rel.startswith("src/"):
            continue
        for m in GETENV_RE.finditer(tu.raw):
            add(m.group(1), "env", rel, tu.raw.count("\n", 0, m.start()) + 1)
        for h in sorted(helpers):
            for m in re.finditer(r"\b" + h + r'\s*\(\s*"(MINSGD_\w+)"',
                                 tu.raw):
                add(m.group(1), "env", rel,
                    tu.raw.count("\n", 0, m.start()) + 1)
    # Build: CMake options/cache vars, plus preprocessor gates whose macro is
    # injected by the build (not #define'd inside src/).
    cmake_files = [os.path.join(world.root, "CMakeLists.txt")]
    cmake_files += sorted(globmod.glob(
        os.path.join(world.root, "*", "CMakeLists.txt")))
    cmake_files += sorted(globmod.glob(
        os.path.join(world.root, "src", "*", "CMakeLists.txt")))
    cmake_defs = set()
    for path in cmake_files:
        text = _read(path)
        rel = os.path.relpath(path, world.root).replace(os.sep, "/")
        for m in re.finditer(r"\boption\s*\(\s*(MINSGD_\w+)", text):
            add(m.group(1), "build", rel,
                text.count("\n", 0, m.start()) + 1)
        for m in re.finditer(r"\bset\s*\(\s*(MINSGD_\w+)[^)]*\bCACHE\b",
                             text, re.DOTALL):
            add(m.group(1), "build", rel,
                text.count("\n", 0, m.start()) + 1)
        for m in re.finditer(
                r"compile_definitions\s*\([^)]*?\b(MINSGD_[A-Z0-9_]+)",
                text, re.DOTALL):
            cmake_defs.add(m.group(1))
    for rel, tu in sorted(idx.tus.items()):
        if not rel.startswith("src/"):
            continue
        for pat in (MACRO_USE_RE, DEFINED_RE):
            for m in pat.finditer(tu.directive_code):
                name = m.group(1)
                if name in cmake_defs or name not in idx.macros:
                    line = tu.directive_code.count("\n", 0, m.start()) + 1
                    add(name, "build", rel, line)

    # Documentation and test coverage.
    docs = {p: _read(os.path.join(world.root, p))
            for p in ("README.md", "DESIGN.md")}
    test_files = []
    for sub in ("tests", "bench"):
        base = os.path.join(world.root, sub)
        for dirpath, dirnames, files in os.walk(base):
            dirnames[:] = sorted(dirnames)
            for f in sorted(files):
                if f.endswith((".cpp", ".hpp", ".h", ".cmake", ".txt",
                               ".sh", ".py")):
                    test_files.append(os.path.join(dirpath, f))
    out = []
    for name in sorted(gates):
        g = gates[name]
        g["documented_in"] = sorted(p for p, text in docs.items()
                                    if _word_in(name, text))
        g["tested_in"] = sorted(
            os.path.relpath(p, world.root).replace(os.sep, "/")
            for p in test_files if _word_in(name, _read(p)))[:3]
        g["description"] = GATE_DESCRIPTIONS.get(name, "")
        out.append(g)
    return out


def check_env_gate(world: World):
    world.gates = discover_gates(world)
    findings = []
    for g in world.gates:
        rel, _, line = g["sites"][0].partition(":")
        tu = world.index.tus.get(rel)
        line = int(line or 1)
        if tu is not None and is_allowed(tu, line, "env-gate"):
            continue
        if not g["documented_in"]:
            findings.append(Finding(
                "env-gate", "undocumented-gate", rel, line,
                f"{g['name']} ({g['kind']} gate) is not mentioned in "
                f"README.md or DESIGN.md"))
        if g["kind"] == "env" and not g["tested_in"]:
            findings.append(Finding(
                "env-gate", "untested-gate", rel, line,
                f"{g['name']} (runtime gate) has no test or bench "
                f"exercising it"))
    return findings


def gates_markdown(gates) -> str:
    """The README gate table, generated from the registry."""
    lines = [
        "| Gate | Kind | Read at | Purpose | Docs | Tests |",
        "|------|------|---------|---------|:----:|:-----:|",
    ]
    for g in gates:
        docs = "yes" if g["documented_in"] else "**no**"
        tests = ("yes" if g["tested_in"]
                 else ("n/a" if g["kind"] == "build" else "**no**"))
        lines.append(
            f"| `{g['name']}` | {g['kind']} | `{g['sites'][0]}` | "
            f"{g['description']} | {docs} | {tests} |")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# 5. suppression audit
# ---------------------------------------------------------------------------

SYMBOLISH_RE = re.compile(r"[A-Za-z_][\w:]*|[\w./-]+\.(?:cpp|hpp|h|py|sh|md)")
AUDIT_SCOPES = ("src", "tests", "bench", "examples")


def _symbol_shaped(tok: str) -> bool:
    return ("::" in tok or "_" in tok or "/" in tok or "." in tok
            or re.search(r"[a-z][A-Z]", tok) is not None)


def _blame_age_days(root: str, rel: str, line: int):
    try:
        out = subprocess.run(
            ["git", "-C", root, "blame", "--porcelain",
             "-L", f"{line},{line}", "--", rel],
            capture_output=True, text=True, timeout=10)
        if out.returncode != 0:
            return None
        m = re.search(r"^committer-time (\d+)$", out.stdout, re.MULTILINE)
        if not m:
            return None
        import time
        return max(0, int((time.time() - int(m.group(1))) / 86400))
    except Exception:
        return None


def check_suppression_audit(world: World):
    idx = world.index
    gate_names = {g["name"] for g in world.gates} if world.gates else set()
    findings, inventory = [], []
    files = []
    for scope in AUDIT_SCOPES:
        base = os.path.join(world.root, scope)
        for dirpath, dirnames, names in os.walk(base):
            dirnames[:] = sorted(d for d in dirnames if d != "fixtures"
                                 and not d.startswith("."))
            for f in sorted(names):
                if f.endswith((".cpp", ".hpp", ".h", ".hh", ".inl")):
                    files.append(os.path.join(dirpath, f))
    for path in files:
        rel = os.path.relpath(path, world.root).replace(os.sep, "/")
        lines = _read(path).split("\n")
        for i, raw in enumerate(lines):
            m = ANY_ALLOW_RE.search(raw)
            if m is None:
                continue
            tool, rule, just = m.group(1), m.group(2), (m.group(3) or "")
            # Continuation comment lines extend the justification.
            j = i + 1
            while j < len(lines) and re.match(r"\s*//(?!\s*minsgd-)",
                                              lines[j]):
                just += " " + lines[j].strip().lstrip("/").strip()
                j += 1
            line_no = i + 1
            toks = [t for t in SYMBOLISH_RE.findall(just)
                    if _symbol_shaped(t)]
            resolved = sorted({t for t in toks
                               if idx.symbol_exists(t) or t in gate_names})
            entry = {"file": rel, "line": line_no, "tool": tool,
                     "rule": rule, "justification": just.strip(),
                     "age_days": _blame_age_days(world.root, rel, line_no),
                     "names": resolved}
            inventory.append(entry)
            suppressed = is_allowed_line(lines, line_no, "suppression-audit")
            if tool == "analyze" and len(just.strip()) < 10:
                if not suppressed:
                    findings.append(Finding(
                        "suppression-audit", "malformed-suppression", rel,
                        line_no,
                        f"allow({rule}) needs a justification of at least "
                        f"10 characters"))
                continue
            if not resolved and not suppressed:
                findings.append(Finding(
                    "suppression-audit", "stale-suppression", rel, line_no,
                    f"minsgd-{tool}: allow({rule}) justification names no "
                    f"existing symbol, gate, or file — re-justify with the "
                    f"concrete symbol that makes it safe, or remove it"))
    world.suppressions = inventory
    return findings


def is_allowed_line(lines, line: int, check: str) -> bool:
    """True if the flagged line, or the contiguous `//` comment block ending
    directly above it, carries `minsgd-analyze: allow(<check>)`. Multi-line
    justifications open with the tag and continue on following comment lines."""
    if 1 <= line <= len(lines):
        m = ANALYZE_ALLOW_RE.search(lines[line - 1])
        if m and m.group(1) == check:
            return True
    ln = line - 1
    while 1 <= ln <= len(lines):
        text = lines[ln - 1].strip()
        if not text.startswith("//"):
            break
        m = ANALYZE_ALLOW_RE.search(text)
        if m:
            return m.group(1) == check
        ln -= 1
    return False


CHECK_FNS = {
    "hot-path-alloc": check_hot_path_alloc,
    "tag-space": check_tag_space,
    "det-reduction": check_det_reduction,
    "env-gate": check_env_gate,
    "suppression-audit": check_suppression_audit,
}


def run_checks(world: World, only=None):
    findings = []
    for name in CHECKS:
        if only and name not in only:
            continue
        findings.extend(CHECK_FNS[name](world))
    return findings
