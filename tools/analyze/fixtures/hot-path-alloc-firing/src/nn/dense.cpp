// Firing: do_forward itself is alloc-free, but a helper one call away in a
// different TU is not — only the interprocedural check can see it.
namespace minsgd::nn {

class Dense {
 public:
  void do_forward(float* y, const float* x, int n);
};

void Dense::do_forward(float* y, const float* x, int n) {
  scale_rows(y, x, n);
}

}  // namespace minsgd::nn
