#include <vector>

namespace minsgd {

void scale_rows(float* y, const float* x, int n) {
  std::vector<float> tmp(static_cast<unsigned long>(n));
  for (int i = 0; i < n; ++i) tmp[i] = x[i];
  for (int i = 0; i < n; ++i) y[i] = 2.0f * tmp[i];
}

}  // namespace minsgd
