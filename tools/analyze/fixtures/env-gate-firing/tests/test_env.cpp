// Exercises MINSGD_BAZ's twin only.
namespace minsgd {
void check_baz() { (void)baz_enabled(); }
}  // namespace minsgd
