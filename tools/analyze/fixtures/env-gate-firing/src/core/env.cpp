#include <cstdlib>

namespace minsgd {

// MINSGD_BAR is documented but untested; MINSGD_BAZ is tested but
// undocumented. Each should produce exactly one finding.
bool bar_enabled() { return std::getenv("MINSGD_BAR") != nullptr; }
bool baz_enabled() { return std::getenv("MINSGD_BAZ") != nullptr; }

}  // namespace minsgd
