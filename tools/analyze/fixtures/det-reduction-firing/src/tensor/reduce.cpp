// Firing: four distinct ways to lose the fixed-order reduction contract.
namespace minsgd {

// Accumulates into a caller's float& — fine alone, a race and an ordering
// leak once called from a parallel region (see call_from_parallel).
void add_into(float& acc, const float* x, long n) {
  for (long i = 0; i < n; ++i) acc += x[i];
}

double bad_sum(const float* x, long n) {
  double total = 0.0;
  parallel_for(0, n, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) total += x[i];
  });
  return total;
}

float call_from_parallel(const float* x, long n) {
  float acc = 0.0f;
  parallel_for(0, n, [&](long lo, long hi) {
    add_into(acc, x + lo, hi - lo);
  });
  return acc;
}

double reversed_combine(const double* partial, long chunks) {
  double acc = 0.0;
  for (long c = chunks - 1; c >= 0; --c) acc += partial[c];
  return acc;
}

}  // namespace minsgd
