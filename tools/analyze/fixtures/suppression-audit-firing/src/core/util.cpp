namespace minsgd {

int helper_fn(int x) {
  // minsgd-lint: allow(cast): required by old_removed_helper for endianness
  return x;
}

int other_fn(int x) {
  // minsgd-analyze: allow(env-gate): short
  return x;
}

}  // namespace minsgd
