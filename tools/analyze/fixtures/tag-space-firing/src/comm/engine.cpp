#include "comm/communicator.hpp"

namespace minsgd::comm {

void start_rank(int r) {
  Communicator comm(r);  // defaulted channel: rank-thread collectives on 0
  (void)comm;
}

}  // namespace minsgd::comm
