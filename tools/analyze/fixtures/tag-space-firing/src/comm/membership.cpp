#include "comm/communicator.hpp"

namespace minsgd::comm {

void propose(int r) {
  Communicator wc(r, Communicator::kMembershipChannel);
  (void)wc;
}

}  // namespace minsgd::comm
