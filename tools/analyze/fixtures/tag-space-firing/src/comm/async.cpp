#include "comm/communicator.hpp"

namespace minsgd::comm {

void start_async(int r) {
  // BUG under test: the async engine grabs channel 0, which the rank-thread
  // communicators already use — tags from the two subsystems cross-match.
  Communicator comm(r, /*channel=*/0);
  (void)comm;
}

}  // namespace minsgd::comm
