// Clean: everything reachable from do_forward works in caller-owned memory.
namespace minsgd::nn {

void scale_rows(float* y, const float* x, int n, float s) {
  for (int i = 0; i < n; ++i) y[i] = s * x[i];
}

class Dense {
 public:
  void do_forward(float* y, const float* x, int n);

 private:
  float scale_ = 2.0f;
};

void Dense::do_forward(float* y, const float* x, int n) {
  scale_rows(y, x, n, scale_);
}

}  // namespace minsgd::nn
