namespace minsgd {

int parse_widget(const char* s) {
  // minsgd-lint: allow(cast): parse_widget byte-views its input here; the
  // typed overloads all funnel through this one bridge.
  return static_cast<int>(s[0]);
}

}  // namespace minsgd
