// Exercises the MINSGD_FOO gate's programmatic twin.
namespace minsgd {
void check_foo() { (void)foo_enabled(); }
}  // namespace minsgd
