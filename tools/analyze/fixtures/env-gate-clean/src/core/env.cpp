#include <cstdlib>

namespace minsgd {

bool foo_enabled() {
  const char* v = std::getenv("MINSGD_FOO");
  return v == nullptr || v[0] != '0';
}

}  // namespace minsgd
