namespace minsgd::kernels {

void axpy_k(float* y, const float* x, float a, long n) {
  for (long i = 0; i < n; ++i) y[i] = a * x[i] + y[i];
}

}  // namespace minsgd::kernels
