// Clean: per-chunk partials, combined in ascending chunk order on the
// calling thread — the canonical deterministic reduction shape.
namespace minsgd {

double sum_fixed(const float* x, long n) {
  double partial[16] = {};
  const long chunks = 4;
  for_chunks_n(n, 1, [&](long c, long lo, long hi) {
    double acc = 0.0;
    for (long i = lo; i < hi; ++i) acc += x[i];
    partial[c] = acc;
  });
  double total = 0.0;
  for (long c = 0; c < chunks; ++c) total += partial[c];
  return total;
}

}  // namespace minsgd
