#pragma once
#include <cstdint>

namespace minsgd::comm {

class Communicator {
 public:
  static constexpr std::int64_t kCollectiveBase = std::int64_t{1} << 40;
  static constexpr std::int64_t kChannelStride = std::int64_t{1} << 36;
  static constexpr std::int64_t kMaxChannels = 8;
  static constexpr std::int64_t kGenerationStride = std::int64_t{1} << 43;
  static constexpr std::int64_t kMaxGenerations = std::int64_t{1} << 19;
  static constexpr int kMembershipChannel = 2;

  explicit Communicator(int rank, int channel = 0)
      : rank_(rank), channel_(channel) {}

 private:
  int rank_;
  int channel_;
};

}  // namespace minsgd::comm
