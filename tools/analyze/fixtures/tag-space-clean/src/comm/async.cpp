#include "comm/communicator.hpp"

namespace minsgd::comm {

void start_async(int r) {
  Communicator comm(r, /*channel=*/1);  // async engine owns channel 1
  (void)comm;
}

}  // namespace minsgd::comm
