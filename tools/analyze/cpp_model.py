"""cpp_model: the per-TU front half of the minsgd semantic analyzer.

This module turns a C++ tree into a queryable model without a real compiler:

  * a preprocessor-aware lexer: comments and string/char literals are blanked
    (preserving line structure and byte offsets), directive lines are spliced
    across backslash continuations, #include targets and #define names are
    recorded, and directive text is removed from the code the parsers see;
  * a per-TU function index: every function/method *definition* with its
    body text, byte offset, enclosing class, and qualified name — found by a
    brace-tracking scope walker (namespace / class / function), not regexes
    over whole files, so nested classes and out-of-line `Cls::method`
    definitions both resolve;
  * integer constant extraction and evaluation (`constexpr ... kName = expr`)
    with cross-constant references resolved, which is what lets the tag-space
    check compute real intervals from kCollectiveBase/kChannelStride/...;
  * an include graph resolved against the real build's include directories
    (compile_commands.json when CMAKE_EXPORT_COMPILE_COMMANDS left one in a
    build dir; src/-rooted fallback otherwise).

Everything downstream (tools/analyze/callgraph.py, tools/analyze/checks.py)
consumes this model. Stdlib only, same packaging discipline as
tools/lint/minsgd_lint.py.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field

CXX_EXTS = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh", ".inl")
HEADER_EXTS = (".hpp", ".h", ".hh")

# Keywords that look like `name(` but are not calls or definitions.
CONTROL_KEYWORDS = frozenset(
    "if else for while switch do return sizeof alignof alignas decltype "
    "catch throw new delete static_assert noexcept defined co_await "
    "co_return co_yield".split())


def strip_comments_and_strings(text: str) -> str:
    """Blank comments and string/char literals, preserving line structure.

    Same lexer grade as tools/lint: //, /* */, "..." and '...' with escapes.
    Raw strings are treated as plain strings, which is fine for the patterns
    matched downstream.
    """
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        else:  # string / char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            else:
                out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out)


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')
DEFINE_RE = re.compile(r"^\s*#\s*define\s+([A-Za-z_]\w*)")


@dataclass(eq=False)  # identity semantics: each def is hashable as itself
class FunctionDef:
    """One function/method definition."""
    tu: "TU"
    name: str            # simple name (no qualifiers)
    cls: str | None      # enclosing/qualifying class, if a method
    qual: str            # Cls::name for methods, else name
    line: int            # 1-based line of the body-opening brace
    body: str            # text between the braces (stripped code)
    body_off: int        # offset of body[0] within tu.code
    head: str = ""       # definition head: return type, name, params, quals

    def __repr__(self):
        return f"<fn {self.qual} {self.tu.relpath}:{self.line}>"

    def param_text(self) -> str:
        """The parameter list (text inside the last balanced parens of the
        head, before any constructor init list)."""
        h = _cut_init_list(self.head) or self.head
        depth = 0
        close = open_ = -1
        for idx in range(len(h) - 1, -1, -1):
            c = h[idx]
            if c == ")":
                if depth == 0 and close == -1:
                    close = idx
                depth += 1
            elif c == "(":
                depth -= 1
                if depth == 0 and close != -1:
                    open_ = idx
                    break
        if open_ == -1:
            return ""
        return h[open_ + 1:close]


@dataclass
class TU:
    """One parsed translation unit (source or header)."""
    path: str
    relpath: str
    raw: str = ""
    code: str = ""                 # comments/strings blanked, directives out
    directive_code: str = ""       # comments/strings blanked, directives kept
    includes: list = field(default_factory=list)   # (line, path, is_angle)
    defines: list = field(default_factory=list)    # (line, macro name)
    functions: list = field(default_factory=list)  # [FunctionDef]
    constants: dict = field(default_factory=dict)  # name -> raw expr text
    virtual_decls: set = field(default_factory=set)
    classes: set = field(default_factory=set)

    @property
    def raw_lines(self):
        return self.raw.split("\n")

    @property
    def code_lines(self):
        return self.code.split("\n")

    def line_of(self, offset: int) -> int:
        return self.code.count("\n", 0, offset) + 1

    def is_header(self) -> bool:
        return self.path.endswith(HEADER_EXTS)


def _blank_directives(tu: TU, stripped: str) -> str:
    """Record #include/#define lines (with backslash continuations spliced)
    and return code with every directive line blanked to spaces."""
    out_lines = []
    lines = stripped.split("\n")
    i = 0
    while i < len(lines):
        line = lines[i]
        if re.match(r"\s*#", line):
            # Splice continuations so a multi-line #define is one directive.
            start = i
            spliced = line
            while spliced.rstrip().endswith("\\") and i + 1 < len(lines):
                i += 1
                spliced = spliced.rstrip()[:-1] + " " + lines[i]
            m = INCLUDE_RE.match(spliced)
            if m:
                tu.includes.append((start + 1, m.group(2), m.group(1) == "<"))
            m = DEFINE_RE.match(spliced)
            if m:
                tu.defines.append((start + 1, m.group(1)))
            for j in range(start, i + 1):
                out_lines.append(" " * len(lines[j]))
        else:
            out_lines.append(line)
        i += 1
    return "\n".join(out_lines)


# A scope-opening head is the text between the previous top-level ';'/'{'/'}'
# and the '{' being classified.
NAMESPACE_HEAD_RE = re.compile(r"\bnamespace\s+([A-Za-z_][\w:]*)\s*$")
ANON_NAMESPACE_RE = re.compile(r"\bnamespace\s*$")
CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?([A-Za-z_]\w*)"
    r"(?:\s*final)?(?:\s*:\s*[^{;]*)?\s*$")
ENUM_HEAD_RE = re.compile(r"\benum\b")
EXTERN_C_RE = re.compile(r'\bextern\s*"')

# Candidate function name directly before a parameter list.
FN_NAME_RE = re.compile(r"(~?[A-Za-z_]\w*)\s*\($")
VIRTUAL_DECL_RE = re.compile(r"\bvirtual\s+[^;{}=()]*?\b([A-Za-z_]\w*)\s*\(")
CONST_RE = re.compile(
    r"\bconstexpr\s+(?:static\s+)?[\w:<>\s]*?\b(k[A-Za-z0-9_]\w*)\s*=\s*"
    r"([^;]+);")
STATIC_CONST_RE = re.compile(
    r"\bstatic\s+constexpr\s+[\w:<>\s]*?\b(k[A-Za-z0-9_]\w*)\s*=\s*([^;]+);")


def _head_function_name(head: str):
    """If `head` reads like a function definition head, return (name, cls).

    Handles `Ret ns::Cls::name(args) const noexcept`, constructors with
    `: init(list)`, trailing return types, and rejects control-flow and
    lambda heads. `cls` is the immediate `Cls` qualifier, if any.
    """
    h = head.strip()
    if not h or h.endswith(("=", ",", "(", "&&", "||")):
        return None
    # Constructor init lists: cut at the top-level `) :` that starts them so
    # the param list is the last paren group we scan.
    # Find the last balanced '(...)' group in the head.
    depth = 0
    close = -1
    open_ = -1
    for idx in range(len(h) - 1, -1, -1):
        c = h[idx]
        if c == ")":
            if depth == 0 and close == -1:
                close = idx
            depth += 1
        elif c == "(":
            depth -= 1
            if depth == 0 and close != -1:
                open_ = idx
                break
    if open_ == -1:
        return None
    trailer = h[close + 1:]
    # Only qualifiers/specifiers may follow the param list before '{'.
    if not re.fullmatch(
            r"(?:\s|const|noexcept|override|final|mutable|&|&&|"
            r"->\s*[\w:<>,&*\s]+|:\s*[^{}]*)*", trailer):
        # A constructor init list that itself contains paren groups makes the
        # *last* group one of the initializers; retry by cutting the head at
        # the first top-level ':' after a ')'.
        cut = _cut_init_list(h)
        if cut is not None and cut != h:
            return _head_function_name(cut)
        return None
    m = FN_NAME_RE.search(h[:open_ + 1])
    if not m:
        return None
    name = m.group(1)
    if name in CONTROL_KEYWORDS or name.startswith("operator"):
        return None
    # Reject lambda heads: `](...)` or `= [...](...)`.
    pre = h[:m.start(1)].rstrip()
    if pre.endswith("]"):
        return None
    cls = None
    if pre.endswith("::"):
        qm = re.search(r"([A-Za-z_]\w*)\s*::\s*$", pre)
        if qm:
            cls = qm.group(1)
    return name, cls


def _cut_init_list(head: str):
    """Cut a constructor head at the `:` that starts its init list."""
    depth = 0
    seen_params = False
    for idx, c in enumerate(head):
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                seen_params = True
        elif c == ":" and depth == 0 and seen_params:
            if idx + 1 < len(head) and head[idx + 1] == ":":
                continue
            if idx > 0 and head[idx - 1] == ":":
                continue
            return head[:idx]
    return None


def _parse_scopes(tu: TU) -> None:
    """Brace-tracking walk over tu.code: namespaces, classes, functions."""
    code = tu.code
    n = len(code)
    i = 0
    head_start = 0
    # Stack entries: ("namespace", name) | ("class", name) | ("block", None)
    stack = []

    def enclosing_class():
        for kind, name in reversed(stack):
            if kind == "class":
                return name
        return None

    while i < n:
        c = code[i]
        if c in ";":
            head_start = i + 1
            i += 1
            continue
        if c == "}":
            if stack:
                stack.pop()
            head_start = i + 1
            i += 1
            continue
        if c != "{":
            i += 1
            continue
        head = code[head_start:i]
        # Classify the '{'.
        nm = NAMESPACE_HEAD_RE.search(head)
        if nm:
            stack.append(("namespace", nm.group(1)))
            head_start = i + 1
            i += 1
            continue
        if ANON_NAMESPACE_RE.search(head) or EXTERN_C_RE.search(head):
            stack.append(("namespace", ""))
            head_start = i + 1
            i += 1
            continue
        cm = CLASS_HEAD_RE.search(head)
        if cm:
            tu.classes.add(cm.group(1))
            stack.append(("class", cm.group(1)))
            head_start = i + 1
            i += 1
            continue
        if ENUM_HEAD_RE.search(head.split("{")[-1] if "{" in head else head):
            i = _skip_braced(code, i)
            head_start = i
            continue
        fn = _head_function_name(head)
        if fn is not None:
            name, qual_cls = fn
            cls = qual_cls or enclosing_class()
            body_start = i + 1
            end = _skip_braced(code, i)
            body = code[body_start:end - 1] if end > body_start else ""
            tu.functions.append(FunctionDef(
                tu=tu, name=name, cls=cls,
                qual=(f"{cls}::{name}" if cls else name),
                line=tu.line_of(i), body=body, body_off=body_start,
                head=head.strip()))
            i = end
            head_start = i
            continue
        # Aggregate initializer, array init, lambda at namespace scope,
        # or anything else: skip the block wholesale.
        i = _skip_braced(code, i)
        head_start = i
    # done


def _skip_braced(code: str, open_brace: int) -> int:
    """Offset just past the '}' matching code[open_brace] == '{'."""
    depth = 0
    i = open_brace
    n = len(code)
    while i < n:
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _collect_virtuals_and_constants(tu: TU) -> None:
    for m in VIRTUAL_DECL_RE.finditer(tu.code):
        tu.virtual_decls.add(m.group(1))
    for pat in (CONST_RE, STATIC_CONST_RE):
        for m in pat.finditer(tu.code):
            tu.constants.setdefault(m.group(1), m.group(2).strip())


def parse_tu(path: str, root: str) -> TU:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read()
    rel = os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")
    tu = TU(path=path, relpath=rel, raw=raw)
    stripped = strip_comments_and_strings(raw)
    tu.directive_code = stripped
    tu.code = _blank_directives(tu, stripped)
    _parse_scopes(tu)
    _collect_virtuals_and_constants(tu)
    return tu


# -- constant evaluation -----------------------------------------------------

_CAST_RE = re.compile(r"\b(?:std::)?u?int(?:8|16|32|64)?_t\s*\{([^{}]*)\}")
_STATIC_CAST_RE = re.compile(r"\bstatic_cast\s*<[^<>]*>\s*")
_NUM_TOKEN = re.compile(r"^(?:0[xX][0-9a-fA-F]+|\d+)(?:[uUlL]*)$")
_NAME_TOKEN = re.compile(r"^[A-Za-z_][\w:]*$")


class ConstantPool:
    """Evaluates integer constexpr expressions across the indexed tree."""

    def __init__(self):
        self.exprs: dict[str, str] = {}    # name and Cls::name -> expr text
        self.values: dict[str, int] = {}

    def add_tu(self, tu: TU, cls_of_constant=None):
        for name, expr in tu.constants.items():
            self.exprs.setdefault(name, expr)

    def value(self, name: str):
        """Evaluated integer value of `name`, or None."""
        if name in self.values:
            return self.values[name]
        expr = self.exprs.get(name)
        if expr is None and "::" in name:
            expr = self.exprs.get(name.split("::")[-1])
        if expr is None:
            return None
        val = self.eval_expr(expr, _seen={name})
        if val is not None:
            self.values[name] = val
        return val

    def eval_expr(self, expr: str, _seen=None):
        """Evaluate an integer constant expression; None if not derivable."""
        _seen = _seen or set()
        e = expr.strip()
        # `std::int64_t{1}` -> `(1)`; strip static_cast<...>.
        for _ in range(4):
            e2 = _CAST_RE.sub(r"(\1)", e)
            e2 = _STATIC_CAST_RE.sub("", e2)
            if e2 == e:
                break
            e = e2
        tokens = re.findall(r"[A-Za-z_][\w:]*|0[xX][0-9a-fA-F]+[uUlL]*|"
                            r"\d+[uUlL]*|<<|>>|[-+*/%()|&^~]", e)
        if not tokens or "".join(tokens).strip() == "":
            return None
        py = []
        for t in tokens:
            if _NUM_TOKEN.match(t):
                py.append(re.sub(r"[uUlL]+$", "", t))
            elif _NAME_TOKEN.match(t):
                if t in _seen:
                    return None
                sub = self.exprs.get(t) or (
                    self.exprs.get(t.split("::")[-1]) if "::" in t else None)
                if sub is None:
                    return None
                v = self.eval_expr(sub, _seen | {t})
                if v is None:
                    return None
                py.append(f"({v})")
            else:
                py.append(t)
        joined = " ".join(py)
        # Only arithmetic survives the tokenizer; evaluate with no builtins.
        try:
            val = eval(joined, {"__builtins__": {}}, {})  # noqa: S307
        except Exception:
            return None
        return int(val) if isinstance(val, int) else None


# -- include graph -----------------------------------------------------------

def find_include_dirs(root: str, build_dirs=None) -> list[str]:
    """Include directories for quoted-include resolution.

    Prefers the real build's compile_commands.json (exported via
    CMAKE_EXPORT_COMPILE_COMMANDS); falls back to <root>/src and <root>.
    """
    dirs: list[str] = []
    for bd in (build_dirs or ("build", "build-asan-ubsan", "build-tsan")):
        cc = os.path.join(root, bd, "compile_commands.json")
        if not os.path.isfile(cc):
            continue
        try:
            with open(cc, "r", encoding="utf-8") as f:
                entries = json.load(f)
        except (OSError, ValueError):
            continue
        for entry in entries:
            cmd = entry.get("command")
            args = cmd.split() if cmd else list(entry.get("arguments", []))
            base = entry.get("directory", root)
            it = iter(range(len(args)))
            for k in it:
                a = args[k]
                inc = None
                if a == "-I" and k + 1 < len(args):
                    inc = args[k + 1]
                elif a.startswith("-I"):
                    inc = a[2:]
                elif a.startswith("-isystem") and len(a) > 8:
                    inc = a[8:]
                if inc:
                    if not os.path.isabs(inc):
                        inc = os.path.join(base, inc)
                    inc = os.path.normpath(inc)
                    if inc not in dirs and os.path.isdir(inc):
                        dirs.append(inc)
        if dirs:
            break
    for fallback in (os.path.join(root, "src"), root):
        if os.path.isdir(fallback) and fallback not in dirs:
            dirs.append(fallback)
    return dirs


class Index:
    """Whole-program index: TUs, functions by name, constants, includes."""

    def __init__(self, root: str):
        self.root = root
        self.tus: dict[str, TU] = {}
        self.by_name: dict[str, list[FunctionDef]] = {}
        self.by_qual: dict[str, list[FunctionDef]] = {}
        self.constants = ConstantPool()
        self.virtuals: set[str] = set()
        self.classes: set[str] = set()
        self.macros: set[str] = set()
        self.include_dirs: list[str] = []
        self.include_graph: dict[str, set[str]] = {}

    def add_file(self, path: str):
        tu = parse_tu(path, self.root)
        self.tus[tu.relpath] = tu
        for fn in tu.functions:
            self.by_name.setdefault(fn.name, []).append(fn)
            self.by_qual.setdefault(fn.qual, []).append(fn)
        self.constants.add_tu(tu)
        self.virtuals |= tu.virtual_decls
        self.classes |= tu.classes
        self.macros |= {name for _, name in tu.defines}
        return tu

    def resolve_includes(self):
        """Build the quoted-include graph over indexed TUs."""
        rel_of = {}
        for rel, tu in self.tus.items():
            rel_of[os.path.normpath(tu.path)] = rel
        for rel, tu in self.tus.items():
            edges = set()
            for _line, inc, is_angle in tu.includes:
                if is_angle:
                    continue
                for d in self.include_dirs:
                    cand = os.path.normpath(os.path.join(d, inc))
                    if cand in rel_of:
                        edges.add(rel_of[cand])
                        break
            self.include_graph[rel] = edges

    def include_closure(self, rel: str) -> set[str]:
        seen = set()
        work = [rel]
        while work:
            cur = work.pop()
            if cur in seen:
                continue
            seen.add(cur)
            work.extend(self.include_graph.get(cur, ()))
        return seen

    def symbol_exists(self, token: str) -> bool:
        """Does `token` name something real: a function, class, macro,
        constant, or an existing repo path?"""
        t = token.rstrip("(").rstrip(")")
        simple = t.split("::")[-1]
        if simple in self.by_name or t in self.by_qual:
            return True
        if simple in self.classes or simple in self.virtuals:
            return True
        if simple in self.macros or t in self.macros:
            return True
        if simple in self.constants.exprs:
            return True
        if "/" in t and os.path.exists(os.path.join(self.root, t)):
            return True
        return False


def collect_cxx_files(root: str, subdirs) -> list[str]:
    out = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        if os.path.isfile(base) and base.endswith(CXX_EXTS):
            out.append(base)
            continue
        for dirpath, dirnames, files in os.walk(base):
            dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
            for f in sorted(files):
                if f.endswith(CXX_EXTS):
                    out.append(os.path.join(dirpath, f))
    return out


def build_index(root: str, subdirs=("src",), extra_files=()) -> Index:
    idx = Index(root)
    idx.include_dirs = find_include_dirs(root)
    for path in collect_cxx_files(root, subdirs):
        idx.add_file(path)
    for path in extra_files:
        if os.path.isfile(path):
            idx.add_file(path)
    idx.resolve_includes()
    return idx
