"""callgraph: name-based whole-program call graph with NVI and lambda edges.

Built on the cpp_model Index. Resolution rules, in order of bearing on the
minsgd tree:

  * plain calls `foo(...)` resolve to every indexed definition named `foo`;
    when more than one TU defines the name, candidates whose TU is in the
    caller's include closure are preferred (cuts cross-subsystem collisions
    without pretending to do real overload resolution);
  * method calls `obj.m(...)` / `p->m(...)` resolve by method name; when `m`
    is declared `virtual` anywhere, the call fans out to every `Cls::m`
    override — this is what carries `Layer::forward -> do_forward` edges to
    each concrete layer under the repo's NVI convention;
  * lambdas are not functions here: a lambda body belongs to the enclosing
    definition, so calls inside `ctx.parallel_for(..., [&](...){ ... })`
    become edges out of the enclosing method. Parallel-region lambdas
    (arguments to parallel_for / for_chunks / for_chunks_n) are additionally
    recorded per function because the deterministic-reduction check treats
    code inside them differently from code on the calling thread;
  * constructors/destructors are excluded as edge targets: object
    construction is handled by site-level detectors in checks.py, and ctor
    edges would double-count every `Tensor t(...)` as a call into the ctor.

BFS helpers return parent pointers so checks can print a full entrypoint ->
offender call chain in diagnostics.
"""

from __future__ import annotations

import re
from collections import deque

from cpp_model import CONTROL_KEYWORDS, FunctionDef, Index

CALL_RE = re.compile(r"(?:(\.|->|::)\s*)?(~?[A-Za-z_]\w*)\s*\(")
PARALLEL_APIS = ("parallel_for", "for_chunks_n", "for_chunks")

# Common identifiers that read like calls but never resolve usefully: casts,
# std:: machinery, and C library noise that the index may coincidentally name.
CALL_NOISE = frozenset(
    "assert memcpy memset memmove printf fprintf snprintf abort exit "
    "push_back emplace_back pop_back reserve resize clear insert erase at "
    "begin end cbegin cend rbegin size empty data find count front back "
    "c_str str substr append get reset release swap emplace make_pair "
    "make_tuple make_unique make_shared move forward min max abs fabs sqrt "
    "exp log pow lround lrint static_cast".split())


def lambda_bodies_after(code: str, api_pos: int):
    """Bodies of every lambda appearing in the call whose name starts at
    api_pos — i.e. the `[...](...){ ... }` arguments of a parallel API call.

    Returns list of (body_start, body_end) offsets into `code` (the text
    between the lambda's braces).
    """
    open_paren = code.find("(", api_pos)
    if open_paren == -1:
        return []
    # Find the matching close paren of the API call.
    depth = 0
    i = open_paren
    end = len(code)
    while i < end:
        c = code[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                break
        i += 1
    call_end = i
    out = []
    j = open_paren
    while j < call_end:
        if code[j] == "[":
            # Potential lambda intro: `[...]` then optional `(...)` then `{`.
            k = j
            d = 0
            while k < call_end:
                if code[k] == "[":
                    d += 1
                elif code[k] == "]":
                    d -= 1
                    if d == 0:
                        break
                k += 1
            k += 1
            while k < call_end and code[k].isspace():
                k += 1
            if k < call_end and code[k] == "(":
                d = 0
                while k < call_end:
                    if code[k] == "(":
                        d += 1
                    elif code[k] == ")":
                        d -= 1
                        if d == 0:
                            break
                    k += 1
                k += 1
                while k < call_end and code[k].isspace():
                    k += 1
            if k < call_end and code[k] == "{":
                d = 0
                body_start = k + 1
                while k < call_end + 1 and k < len(code):
                    if code[k] == "{":
                        d += 1
                    elif code[k] == "}":
                        d -= 1
                        if d == 0:
                            break
                    k += 1
                out.append((body_start, k))
                j = k
        j += 1
    return out


def calls_in(body: str):
    """(name, offset, is_method_call) for each call-looking site in body."""
    out = []
    for m in CALL_RE.finditer(body):
        name = m.group(2)
        if name in CONTROL_KEYWORDS or name in CALL_NOISE:
            continue
        if name.startswith("~"):
            continue
        sep = m.group(1)
        # `Type ident(` declarations: identifier preceded by another
        # identifier or `>`/`&`/`*` AND followed by nothing call-like is
        # still ambiguous; we accept the noise — name-based resolution only
        # creates an edge when a definition by that name exists.
        out.append((name, m.start(2), sep in (".", "->")))
    return out


class CallGraph:
    def __init__(self, index: Index):
        self.index = index
        # FunctionDef -> list[(callee FunctionDef, call name, offset)]
        self.edges: dict[FunctionDef, list] = {}
        # FunctionDef -> list[(start, end)] parallel lambda body spans
        self.parallel_spans: dict[FunctionDef, list] = {}
        self._build()

    def _resolve(self, caller: FunctionDef, name: str, is_method: bool):
        cands = self.index.by_name.get(name, [])
        if not cands:
            return []
        # Never edge into constructors/destructors (see module docstring).
        cands = [fd for fd in cands
                 if fd.cls != fd.name and not fd.name.startswith("~")]
        if not cands:
            return []
        if len(cands) > 1:
            closure = self.index.include_closure(caller.tu.relpath)
            near = [fd for fd in cands
                    if fd.tu.relpath in closure
                    or fd.tu.relpath == caller.tu.relpath]
            if near:
                cands = near
        if is_method and name not in self.index.virtuals:
            # Non-virtual method call: keep only method definitions.
            methods = [fd for fd in cands if fd.cls]
            if methods:
                cands = methods
        return cands

    def _build(self):
        for fns in self.index.by_name.values():
            for fn in fns:
                edges = []
                for name, off, is_method in calls_in(fn.body):
                    for callee in self._resolve(fn, name, is_method):
                        if callee is fn:
                            continue
                        edges.append((callee, name, off))
                self.edges[fn] = edges
                spans = []
                for api in PARALLEL_APIS:
                    for m in re.finditer(r"\b" + api + r"\s*\(", fn.body):
                        spans.extend(lambda_bodies_after(fn.body, m.start()))
                self.parallel_spans[fn] = spans

    def reachable_from(self, entries):
        """BFS over call edges. Returns {FunctionDef: parent FunctionDef}
        with entries mapping to None, for call-chain reconstruction."""
        parent: dict[FunctionDef, FunctionDef | None] = {}
        work = deque()
        for e in entries:
            if e not in parent:
                parent[e] = None
                work.append(e)
        while work:
            cur = work.popleft()
            for callee, _name, _off in self.edges.get(cur, ()):
                if callee not in parent:
                    parent[callee] = cur
                    work.append(callee)
        return parent

    @staticmethod
    def chain(parent, fn):
        """Entry -> ... -> fn as a list of qualified names."""
        out = []
        cur = fn
        seen = set()
        while cur is not None and cur not in seen:
            seen.add(cur)
            out.append(f"{cur.qual} ({cur.tu.relpath}:{cur.line})")
            cur = parent.get(cur)
        return list(reversed(out))

    def in_parallel_span(self, fn: FunctionDef, offset: int) -> bool:
        return any(s <= offset < e for s, e in self.parallel_spans.get(fn, ()))
