#!/usr/bin/env python3
"""minsgd cross-TU semantic analyzer.

Whole-program companion to tools/lint/minsgd_lint.py: where the linter
pattern-matches single files, this builds a real model of the tree — lexed
TUs, a function/symbol index, the include graph, and a call graph with NVI
and lambda resolution — and proves five cross-cutting invariants (see
tools/analyze/checks.py and DESIGN.md §16 for the catalog).

Stdlib only. No third-party imports, ever.

Usage:
  python3 tools/analyze/analyze.py                 # analyze the repo
  python3 tools/analyze/analyze.py --self-test     # run fixture suite
  python3 tools/analyze/analyze.py --gates-md      # print MINSGD_* table
  python3 tools/analyze/analyze.py --check tag-space --check env-gate
  python3 tools/analyze/analyze.py --root some/tree --no-json

Exit codes: 0 = clean / self-test passed, 1 = findings / self-test failed,
2 = internal error. A machine-readable report is written atomically to
<root>/analyze_results/findings.json (schema: minsgd-analyze-v1) unless
--no-json is given.
"""

from __future__ import annotations

import argparse
import os
import sys

TOOL_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, TOOL_DIR)                       # cpp_model, callgraph, ...
sys.path.insert(1, os.path.dirname(TOOL_DIR))      # common.report

from common.report import write_json_atomic  # noqa: E402

from callgraph import CallGraph  # noqa: E402
from checks import CHECKS, World, gates_markdown, run_checks  # noqa: E402
from cpp_model import build_index  # noqa: E402

INDEX_SUBDIRS = ("src", "tests", "bench", "examples")
SCHEMA = "minsgd-analyze-v1"


def build_world(root: str) -> World:
    subdirs = tuple(s for s in INDEX_SUBDIRS
                    if os.path.isdir(os.path.join(root, s)))
    index = build_index(root, subdirs or ("src",))
    return World(root=root, index=index, graph=CallGraph(index))


def analyze(root: str, only=None):
    world = build_world(root)
    findings = run_checks(world, only=only)
    findings.sort(key=lambda f: (f.check, f.rule, f.file, f.line))
    return world, findings


def report_obj(world: World, findings, only=None):
    return {
        "schema": SCHEMA,
        "root": os.path.abspath(world.root),
        "checks": list(only) if only else list(CHECKS),
        "summary": {
            "files_indexed": len(world.index.tus),
            "functions": sum(len(v) for v in world.index.by_name.values()),
            "edges": sum(len(v) for v in world.graph.edges.values()),
            "findings": len(findings),
        },
        "findings": [f.to_json() for f in findings],
        "gates": world.gates,
        "suppressions": world.suppressions,
    }


def print_findings(findings, quiet=False):
    for f in findings:
        print(f"{f.file}:{f.line}: [{f.check}/{f.rule}] {f.message}")
        if not quiet:
            for hop in f.trace:
                print(f"    via: {hop}")


def self_test(verbose=True) -> int:
    """Run every fixture tree and compare findings to its expect.txt.

    Fixture layout: tools/analyze/fixtures/<name>/ is a mini repo root
    (src/, optionally tests/, README.md, ...). expect.txt lists one
    `check/rule` per expected finding (duplicates meaningful); a missing or
    empty expect.txt asserts the tree is clean. All five checks run on every
    fixture, so a firing fixture also proves the other four stay quiet.
    """
    fixdir = os.path.join(TOOL_DIR, "fixtures")
    names = sorted(d for d in os.listdir(fixdir)
                   if os.path.isdir(os.path.join(fixdir, d)))
    if not names:
        print("analyze self-test: no fixtures found", file=sys.stderr)
        return 1
    failures = 0
    for name in names:
        root = os.path.join(fixdir, name)
        expect_path = os.path.join(root, "expect.txt")
        expected = []
        if os.path.isfile(expect_path):
            with open(expect_path, "r", encoding="utf-8") as f:
                expected = sorted(ln.strip() for ln in f
                                  if ln.strip() and not ln.startswith("#"))
        world, findings = analyze(root)
        got = sorted(f"{f.check}/{f.rule}" for f in findings)
        # Round-trip the report through the shared atomic writer.
        obj = report_obj(world, findings)
        out = os.path.join(root, "analyze_results", "findings.json")
        write_json_atomic(out, obj)
        from common.report import read_json
        back = read_json(out)
        ok = (got == expected and back["schema"] == SCHEMA
              and back["summary"]["findings"] == len(findings))
        if not ok:
            failures += 1
            print(f"FAIL {name}")
            print(f"  expected: {expected}")
            print(f"  got:      {got}")
            for f in findings:
                print(f"    {f.fid}: {f.message}")
        elif verbose:
            print(f"ok   {name} ({len(got)} finding(s))")
    if failures:
        print(f"analyze self-test: {failures}/{len(names)} fixtures FAILED")
        return 1
    print(f"analyze self-test: {len(names)} fixtures passed")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="analyze.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(TOOL_DIR)), help="tree to analyze (default: repo)")
    ap.add_argument("--check", action="append", choices=CHECKS,
                    help="run only the named check(s)")
    ap.add_argument("--json", metavar="PATH",
                    help="report path (default <root>/analyze_results/"
                         "findings.json)")
    ap.add_argument("--no-json", action="store_true",
                    help="skip writing the JSON report")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite and exit")
    ap.add_argument("--gates-md", action="store_true",
                    help="print the MINSGD_* gate table as markdown")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress call chains and the summary line")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test(verbose=not args.quiet)

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"analyze: no such root: {root}", file=sys.stderr)
        return 2

    only = args.check
    if args.gates_md:
        only = ["env-gate"]
    world, findings = analyze(root, only=only)

    if args.gates_md:
        print(gates_markdown(world.gates))
        return 0

    print_findings(findings, quiet=args.quiet)
    if not args.no_json:
        path = args.json or os.path.join(root, "analyze_results",
                                         "findings.json")
        write_json_atomic(path, report_obj(world, findings, only=only))
    if not args.quiet:
        s = report_obj(world, findings, only=only)["summary"]
        print(f"analyze: {s['findings']} finding(s) | "
              f"{s['files_indexed']} files, {s['functions']} functions, "
              f"{s['edges']} call edges")
    return 1 if findings else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except KeyboardInterrupt:
        sys.exit(2)
    except Exception as exc:  # noqa: BLE001 — tool must not die silently
        print(f"analyze: internal error: {exc}", file=sys.stderr)
        raise
