// Binary stream I/O primitives: the project's only sanctioned bridge between
// typed objects and byte streams.
//
// Checkpoint/serialization code used to hand-roll
// `out.write(reinterpret_cast<const char*>(&v), sizeof(v))` at every site
// (14 casts across nn/serialize, optim/optimizer, train/checkpoint). All of
// them funnel through the two functions below now, so the type-punning
// surface the `cast` lint rule audits is exactly two lines. Everything here
// is constrained to trivially-copyable types, for which object
// representation I/O is well-defined.
//
// Like core/check.hpp, this header is dependency-free and included from any
// layer (see DESIGN.md §11).
#pragma once

#include <cstddef>
#include <istream>
#include <ostream>
#include <span>
#include <type_traits>

namespace minsgd::core {

/// Writes `n` bytes of the object representation starting at `p`.
inline void write_bytes(std::ostream& out, const void* p, std::size_t n) {
  // The ostream byte interface is char*; viewing any object representation
  // as char is explicitly sanctioned by the standard's aliasing rules, and
  // every typed overload in this header funnels through here.
  // minsgd-lint: allow(cast): write_bytes is the sole object-to-char
  // bridge; every typed overload in io.hpp funnels through it (see above)
  out.write(reinterpret_cast<const char*>(p),
            static_cast<std::streamsize>(n));
}

/// Reads `n` bytes into the storage at `p`. Stream state signals truncation;
/// callers decide whether that throws (file input) or CHECK-fails.
inline void read_bytes(std::istream& in, void* p, std::size_t n) {
  // minsgd-lint: allow(cast): mirror of write_bytes, sole char-to-object bridge
  in.read(reinterpret_cast<char*>(p), static_cast<std::streamsize>(n));
}

/// Writes the object representation of a trivially-copyable value.
template <typename T>
void write_pod(std::ostream& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>,
                "write_pod requires a trivially-copyable type");
  write_bytes(out, &v, sizeof(v));
}

/// Reads a trivially-copyable value in place; check `in` for truncation.
template <typename T>
void read_pod(std::istream& in, T& v) {
  static_assert(std::is_trivially_copyable_v<T>,
                "read_pod requires a trivially-copyable type");
  read_bytes(in, &v, sizeof(v));
}

/// Bulk float payloads (tensor data) without an intermediate copy.
inline void write_f32(std::ostream& out, std::span<const float> data) {
  write_bytes(out, data.data(), data.size() * sizeof(float));
}

inline void read_f32(std::istream& in, std::span<float> data) {
  read_bytes(in, data.data(), data.size() * sizeof(float));
}

}  // namespace minsgd::core
