// MINSGD_CHECK / MINSGD_DCHECK: the project's invariant layer.
//
// MINSGD_CHECK(cond, msg...)   always on. On violation, prints the failed
//                              expression, the formatted message, and the
//                              source location to stderr, then aborts.
// MINSGD_DCHECK(cond, msg...)  hot-path variant. Compiled in when NDEBUG is
//                              not defined or when MINSGD_DCHECK_ON is
//                              defined (cmake -DMINSGD_DCHECK=ON); otherwise
//                              it expands to nothing and its arguments are
//                              not evaluated.
//
// Policy (DESIGN.md §11): CHECK/DCHECK guard *programmer* invariants —
// conditions that can only be false because calling code is wrong (shape
// contracts between layers, communicator tag-space discipline, save-side
// checkpoint preconditions). Violations are not recoverable, so they abort;
// the fault-tolerant trainer must never catch its way past a broken
// invariant. Validation of *external input* (checkpoint files on disk,
// user-facing constructor arguments) stays exception-based: those paths are
// recoverable and tier-1 tests exercise them with EXPECT_THROW.
//
// This header is dependency-free on purpose: it lives in src/core/ but is
// included from the bottom of the dependency order (tensor) upward.
//
// The lint rule `naked-assert` (tools/lint/minsgd_lint.py) forbids plain
// assert() in src/ so every invariant goes through this layer.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace minsgd::check_detail {

/// Failure hook invoked once, after the message is written to stderr and
/// before abort. The postmortem layer (obs/postmortem.hpp) registers a dump
/// here so a CHECK violation leaves the flight-recorder black box behind.
/// A plain function pointer, not std::function: registration must not
/// allocate, and the abort path must not run arbitrary destructors.
using FailureHook = void (*)(const char* message);

inline std::atomic<FailureHook>& failure_hook_slot() {
  static std::atomic<FailureHook> hook{nullptr};
  return hook;
}

inline std::string format_message() { return {}; }

template <typename... Args>
std::string format_message(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

[[noreturn]] inline void check_fail(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const std::string& msg) {
  // One single write so concurrent failures from pool threads do not
  // interleave mid-line.
  std::string out = std::string(kind) + " failed: " + expr;
  if (!msg.empty()) out += " — " + msg;
  out += " [" + std::string(file) + ":" + std::to_string(line) + "]\n";
  std::fputs(out.c_str(), stderr);
  std::fflush(stderr);
  // First failure wins the hook: a second CHECK tripping inside the hook
  // itself (or on another thread mid-dump) must not recurse or re-dump.
  static std::atomic<bool> hook_fired{false};
  if (const FailureHook hook =
          failure_hook_slot().load(std::memory_order_acquire)) {
    if (!hook_fired.exchange(true, std::memory_order_acq_rel)) {
      hook(out.c_str());
    }
  }
  std::abort();
}

}  // namespace minsgd::check_detail

namespace minsgd {

/// Registers the process-wide CHECK failure hook (nullptr clears it). The
/// hook runs at most once per process, on the first failing CHECK, before
/// abort.
inline void set_check_failure_hook(check_detail::FailureHook hook) {
  check_detail::failure_hook_slot().store(hook, std::memory_order_release);
}

}  // namespace minsgd

// Always-on invariant check. Extra arguments are streamed into the failure
// message: MINSGD_CHECK(a == b, "size mismatch: ", a, " vs ", b).
#define MINSGD_CHECK(cond, ...)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::minsgd::check_detail::check_fail(                               \
          "MINSGD_CHECK", #cond, __FILE__, __LINE__,                    \
          ::minsgd::check_detail::format_message(__VA_ARGS__));         \
    }                                                                   \
  } while (false)

// Expansion used when debug checks are compiled out: arguments are never
// evaluated. Kept as a named macro so tests/test_check.cpp can exercise the
// off-branch regardless of how the test binary itself was configured.
#define MINSGD_DCHECK_DISABLED(cond, ...) \
  do {                                    \
  } while (false)

#if !defined(NDEBUG) || defined(MINSGD_DCHECK_ON)
#define MINSGD_DCHECK_ENABLED 1
#define MINSGD_DCHECK(cond, ...) MINSGD_CHECK(cond, __VA_ARGS__)
#else
#define MINSGD_DCHECK_ENABLED 0
#define MINSGD_DCHECK(cond, ...) MINSGD_DCHECK_DISABLED(cond, __VA_ARGS__)
#endif
