#include "core/proxy.hpp"

namespace minsgd::core {

std::function<std::unique_ptr<nn::Network>()> ProxyScale::alexnet_factory()
    const {
  const auto classes = dataset.classes;
  const auto res = dataset.resolution;
  const auto width = model_width;
  return [classes, res, width] {
    return nn::tiny_alexnet(classes, res, nn::AlexNetNorm::kBN, width);
  };
}

std::function<std::unique_ptr<nn::Network>()> ProxyScale::resnet_factory()
    const {
  const auto classes = dataset.classes;
  const auto res = dataset.resolution;
  return [classes, res] { return nn::tiny_resnet(1, classes, res); };
}

RecipeConfig ProxyScale::recipe(std::int64_t global_batch, LrRule rule) const {
  RecipeConfig rc;
  rc.base_batch = base_batch;
  rc.base_lr = base_lr;
  rc.global_batch = global_batch;
  rc.epochs = epochs;
  rc.rule = rule;
  rc.lars_trust_coeff = lars_trust;
  // Warmup only matters once the batch (and hence the scaled LR) is large;
  // keep the baseline warmup-free like the paper's Table 5 "N/A" row.
  rc.warmup_epochs = (global_batch > base_batch) ? warmup_epochs_large : 0.0;
  return rc;
}

RecipeConfig ProxyScale::resnet_recipe(std::int64_t global_batch,
                                       LrRule rule) const {
  RecipeConfig rc = recipe(global_batch, rule);
  rc.lars_trust_coeff = lars_trust_resnet;
  return rc;
}

ProxyScale micro_proxy() {
  ProxyScale p;
  p.dataset.classes = 8;
  p.dataset.resolution = 16;
  p.dataset.train_size = 1024;
  p.dataset.test_size = 256;
  p.dataset.seed = 42;
  p.dataset.noise = 0.7f;
  p.dataset.distractor = 0.5f;
  p.dataset.max_shift = 2;
  p.base_batch = 32;
  p.base_lr = 0.05;
  p.epochs = 12;
  p.warmup_epochs_large = 2.0;
  p.lars_trust = 0.1;
  p.model_width = 8;
  return p;
}

ProxyScale bench_proxy() {
  // Calibration (see EXPERIMENTS.md) showed the micro scale is the sweet
  // spot: larger datasets/models make the task too easy for the batch-size
  // effect to show within a laptop budget. The bench preset therefore uses
  // the same scale; benches differ from tests by sweeping more points.
  return micro_proxy();
}

}  // namespace minsgd::core
