// LargeBatchRecipe: the paper's contribution as a public API.
//
// A recipe fixes the epoch budget and assembles the three ingredients of
// large-batch training exactly as the paper composes them:
//
//   * linear LR scaling from (base_batch, base_lr) to the target batch,
//   * gradual warmup over the first few epochs,
//   * poly(power=2) decay over the fixed iteration budget,
//   * and either plain momentum SGD (the Goyal et al. baseline recipe) or
//     LARS (the paper's recipe) as the update rule.
//
// Everything the benches sweep — batch size, warmup length, LR rule — is a
// field here, so an experiment reads like the paper's tables.
#pragma once

#include <cstdint>
#include <optional>
#include <functional>
#include <memory>

#include "data/synthetic.hpp"
#include "optim/lars.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "train/async_trainer.hpp"
#include "train/trainer.hpp"

namespace minsgd::core {

enum class LrRule {
  kLinearWarmup,  // linear scaling + warmup (Goyal et al. 2017)
  kLars,          // LARS + warmup (You et al.; this paper)
};

const char* to_string(LrRule rule);

struct RecipeConfig {
  // Reference configuration the scaling starts from.
  std::int64_t base_batch = 32;
  double base_lr = 0.05;

  // Target run.
  std::int64_t global_batch = 32;
  std::int64_t epochs = 12;
  double warmup_epochs = 0.0;  // paper uses 5-13 epochs at large batch
  LrRule rule = LrRule::kLinearWarmup;

  // Update-rule hyperparameters (paper: momentum 0.9, wd 0.0005, poly 2).
  double momentum = 0.9;
  double weight_decay = 0.0005;
  double poly_power = 2.0;
  double lars_trust_coeff = 0.02;

  bool augment = false;   // weak augmentation (default pad-crop + hflip)
  /// Overrides the augmentation transform when `augment` is set (e.g.
  /// flip-only for flip-closed synthetic tasks).
  std::optional<data::AugmentConfig> augment_config;
  std::uint64_t init_seed = 7;
  bool verbose = false;
};

/// The assembled, ready-to-run pieces of a recipe.
struct Recipe {
  optim::LrSchedulePtr schedule;
  std::function<std::unique_ptr<optim::Optimizer>()> optimizer_factory;
  train::TrainOptions options;
  double scaled_lr = 0.0;          // the post-warmup peak learning rate
  std::int64_t total_iterations = 0;
};

/// Builds the schedule/optimizer/options for `config` against `dataset`.
Recipe make_recipe(const RecipeConfig& config,
                   const data::SyntheticImageNet& dataset);

/// Convenience: build + train in one process.
train::TrainResult run_recipe(
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const RecipeConfig& config, const data::SyntheticImageNet& dataset);

/// Convenience: build + train data-parallel on a simulated cluster.
train::DistResult run_recipe_distributed(
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const RecipeConfig& config, const data::SyntheticImageNet& dataset,
    int world, comm::AllreduceAlgo algo = comm::AllreduceAlgo::kRing);

}  // namespace minsgd::core
