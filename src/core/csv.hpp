// Minimal CSV emitter for experiment outputs.
//
// Benches write their series here so EXPERIMENTS.md can reference stable
// artifacts (bench binaries also print human-readable tables to stdout).
#pragma once

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace minsgd::core {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns)
      : out_(path), ncols_(columns.size()) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    write_row_strings(columns);
  }

  /// Appends one row; values are formatted with operator<<.
  template <typename... Ts>
  void row(const Ts&... values) {
    if (sizeof...(values) != ncols_) {
      throw std::invalid_argument("CsvWriter: column count mismatch");
    }
    std::ostringstream os;
    bool first = true;
    ((os << (first ? "" : ",") << values, first = false), ...);
    out_ << os.str() << "\n";
  }

 private:
  void write_row_strings(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out_ << ",";
      out_ << cells[i];
    }
    out_ << "\n";
  }

  std::ofstream out_;
  std::size_t ncols_;
};

}  // namespace minsgd::core
