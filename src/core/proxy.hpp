// Proxy experiment scales: the laptop-sized stand-ins for the paper's
// ImageNet runs.
//
// Every accuracy experiment (integration tests and the Table 3/4/5/7/10 and
// Figure 1/4/5/6/7 benches) uses one of these presets so results are
// comparable across binaries. micro_proxy() is sized for the CI test suite;
// bench_proxy() is the larger instance the bench harness uses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/recipe.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"

namespace minsgd::core {

struct ProxyScale {
  data::SynthConfig dataset;
  std::int64_t base_batch = 32;
  double base_lr = 0.05;
  std::int64_t epochs = 8;
  double warmup_epochs_large = 1.0;  // warmup used at large batch
  double lars_trust = 0.1;          // trust coeff for the AlexNet proxy
  double lars_trust_resnet = 0.02;   // the residual proxy needs less damping
  std::int64_t model_width = 16;     // tiny_alexnet base width

  /// AlexNet-flavored proxy model (conv trunk + FC head + dropout).
  std::function<std::unique_ptr<nn::Network>()> alexnet_factory() const;

  /// ResNet-flavored proxy model (residual trunk + GAP head).
  std::function<std::unique_ptr<nn::Network>()> resnet_factory() const;

  /// Recipe preset for a batch size and rule, warmup scaled to batch.
  RecipeConfig recipe(std::int64_t global_batch, LrRule rule) const;

  /// Same, with the trust coefficient tuned for the residual proxy.
  RecipeConfig resnet_recipe(std::int64_t global_batch, LrRule rule) const;
};

/// Test-suite scale: trains in seconds.
ProxyScale micro_proxy();

/// Bench scale: the default for the experiment harness (minutes total).
ProxyScale bench_proxy();

}  // namespace minsgd::core
