#include "core/recipe.hpp"

#include <cmath>
#include <stdexcept>

namespace minsgd::core {

const char* to_string(LrRule rule) {
  switch (rule) {
    case LrRule::kLinearWarmup: return "linear-scaling+warmup";
    case LrRule::kLars: return "LARS+warmup";
  }
  return "?";
}

Recipe make_recipe(const RecipeConfig& config,
                   const data::SyntheticImageNet& dataset) {
  if (config.global_batch < config.base_batch) {
    throw std::invalid_argument("make_recipe: global_batch < base_batch");
  }
  if (config.warmup_epochs < 0 ||
      config.warmup_epochs >= static_cast<double>(config.epochs)) {
    throw std::invalid_argument("make_recipe: bad warmup_epochs");
  }

  Recipe r;
  r.total_iterations = optim::iterations_for_epochs(
      config.epochs, dataset.train_size(), config.global_batch);
  r.scaled_lr = optim::linear_scaled_lr(config.base_lr, config.base_batch,
                                        config.global_batch);

  auto poly = std::make_unique<optim::PolyLr>(r.scaled_lr, r.total_iterations,
                                              config.poly_power);
  const auto iters_per_epoch =
      static_cast<double>(dataset.train_size()) /
      static_cast<double>(config.global_batch);
  const auto warmup_iters = static_cast<std::int64_t>(
      std::llround(config.warmup_epochs * iters_per_epoch));
  if (warmup_iters > 0) {
    r.schedule = std::make_unique<optim::WarmupLr>(std::move(poly),
                                                   warmup_iters,
                                                   config.base_lr);
  } else {
    r.schedule = std::move(poly);
  }

  if (config.rule == LrRule::kLars) {
    optim::LarsConfig lc;
    lc.trust_coeff = config.lars_trust_coeff;
    lc.momentum = config.momentum;
    lc.weight_decay = config.weight_decay;
    r.optimizer_factory = [lc] { return std::make_unique<optim::Lars>(lc); };
  } else {
    optim::SgdConfig sc;
    sc.momentum = config.momentum;
    sc.weight_decay = config.weight_decay;
    r.optimizer_factory = [sc] { return std::make_unique<optim::Sgd>(sc); };
  }

  r.options.global_batch = config.global_batch;
  r.options.epochs = config.epochs;
  r.options.init_seed = config.init_seed;
  r.options.verbose = config.verbose;
  if (config.augment) {
    r.options.augment = config.augment_config.value_or(data::AugmentConfig{});
  }
  return r;
}

train::TrainResult run_recipe(
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const RecipeConfig& config, const data::SyntheticImageNet& dataset) {
  Recipe r = make_recipe(config, dataset);
  auto net = model_factory();
  auto opt = r.optimizer_factory();
  return train::train_single(*net, *opt, *r.schedule, dataset, r.options);
}

train::DistResult run_recipe_distributed(
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const RecipeConfig& config, const data::SyntheticImageNet& dataset,
    int world, comm::AllreduceAlgo algo) {
  Recipe r = make_recipe(config, dataset);
  return train::train_sync_data_parallel(model_factory, r.optimizer_factory,
                                         *r.schedule, dataset, r.options,
                                         world, algo);
}

}  // namespace minsgd::core
