#include "train/fault_tolerant.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>

#include "core/check.hpp"
#include "data/loader.hpp"
#include "nn/loss.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "train/checkpoint.hpp"
#include "train/metrics.hpp"
#include "train/overlap.hpp"

namespace minsgd::train {
namespace {

bool file_exists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

/// Mutable bookkeeping shared between the driver and rank 0 across
/// attempts. Epoch records are keyed by epoch so a re-run after a mid-epoch
/// crash replaces the partial record instead of duplicating it.
struct SharedProgress {
  std::mutex mu;
  std::map<std::int64_t, EpochRecord> epochs;
  std::vector<float> final_weights;
  std::int64_t global_iter = 0;
  std::int64_t checkpoints_written = 0;
  bool diverged = false;
};

}  // namespace

void FaultTolerantOptions::validate() const {
  MINSGD_CHECK(max_restarts >= 0, "FaultTolerantOptions: max_restarts ",
               max_restarts, " < 0");
  MINSGD_CHECK(recv_timeout.count() >= 0,
               "FaultTolerantOptions: recv_timeout < 0");
}

FaultTolerantResult train_sync_fault_tolerant(
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const std::function<std::unique_ptr<optim::Optimizer>()>& opt_factory,
    const optim::LrSchedule& schedule, const data::SyntheticImageNet& dataset,
    const FaultTolerantOptions& options, int world,
    std::shared_ptr<comm::FaultInjector> injector) {
  const TrainOptions& topt = options.train;
  if (world <= 0) {
    throw std::invalid_argument("train_sync_fault_tolerant: world <= 0");
  }
  if (topt.global_batch % world != 0) {
    throw std::invalid_argument(
        "train_sync_fault_tolerant: global_batch % world != 0");
  }
  if (options.checkpoint_every < 1) {
    throw std::invalid_argument(
        "train_sync_fault_tolerant: checkpoint_every < 1");
  }
  if (options.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "train_sync_fault_tolerant: empty checkpoint_path");
  }
  options.validate();
  if (topt.bucket_bytes < 0 ||
      (topt.bucket_bytes > 0 && topt.bucket_bytes < 4)) {
    throw std::invalid_argument(
        "train_sync_fault_tolerant: bucket_bytes must be 0 (single bucket) "
        "or >= 4");
  }
  const std::string& path = options.checkpoint_path;
  if (!options.resume_existing) std::remove(path.c_str());

  FaultTolerantResult out;
  SharedProgress progress;

  auto rank_fn = [&](comm::Communicator& comm) {
    const int rank = comm.rank();
    // This rank's slice of the cluster-wide compute budget.
    const ComputeContext& ctx = comm.ctx();
    auto net = model_factory();
    Rng rng(topt.init_seed);
    net->init(rng);
    auto opt = opt_factory();
    auto params = net->params();

    data::ShardedLoader loader(dataset, topt.global_batch, rank, world,
                               topt.augment);
    nn::SoftmaxCrossEntropy loss;
    const std::int64_t iters = loader.iterations_per_epoch();
    Tensor logits, dlogits, dx;
    nn::ExecutionPlan plan;       // per-rank, lives across iterations
    std::vector<float> flat_own;  // hoisted serial-path allreduce buffer
    const float inv_world = 1.0f / static_cast<float>(world);
    std::unique_ptr<OverlapAllreducer> overlap;
    if (topt.overlap_comm) {
      overlap = std::make_unique<OverlapAllreducer>(
          *net, comm, topt.bucket_bytes, options.algo);
    }

    std::int64_t start_epoch = 0, start_iter = 0, global_iter = 0;
    if (file_exists(path)) {
      // Every rank restores the identical replica the cluster had after the
      // checkpointed step; the next iteration then proceeds exactly as the
      // uninterrupted run would have.
      TrainCheckpoint meta;
      load_train_checkpoint(path, *net, *opt, meta, world,
                            topt.global_batch);
      start_epoch = meta.epoch;
      start_iter = meta.iter;
      global_iter = meta.global_iter;
      rng.set_state(meta.rng);
    }

    double first_loss = -1.0;
    bool stop = false;
    for (std::int64_t epoch = start_epoch; epoch < topt.epochs && !stop;
         ++epoch) {
      double epoch_loss = 0.0;
      std::int64_t epoch_correct = 0;
      std::int64_t epoch_iters = 0;
      const double epoch_lr = schedule.lr(global_iter);
      for (std::int64_t it = (epoch == start_epoch ? start_iter : 0);
           it < iters && !stop; ++it, ++global_iter) {
        data::Batch batch;
        {
          obs::ScopedSpan sp("phase.data", obs::cat::kPhase);
          batch = loader.load_train(epoch, it, ctx);
        }
        net->zero_grad();
        nn::LossResult lres;
        auto pc = plan.context(*net, batch.x.shape());
        {
          obs::ScopedSpan sp("phase.forward", obs::cat::kPhase);
          net->forward(batch.x, logits, /*training=*/true, ctx, &pc);
          lres = loss.forward_backward(logits, batch.labels, &dlogits, ctx);
        }
        if (overlap) overlap->begin_iteration();
        {
          obs::ScopedSpan sp("phase.backward", obs::cat::kPhase);
          net->backward(batch.x, logits, dlogits, dx, ctx, &pc);
        }

        // Identical update sequence to train_sync_data_parallel: rank-sum
        // the gradients (bucketed exactly like the sync trainer, so the
        // overlap on/off determinism guarantee carries over), divide by
        // world, step at lr(global_iter).
        std::span<float> flat;
        if (overlap) {
          flat = overlap->finish();
        } else {
          net->flatten_grads_into(flat_own);
          flat = flat_own;
          obs::ScopedSpan sp("phase.allreduce", obs::cat::kPhase);
          sp.set_bytes(static_cast<std::int64_t>(flat.size()) * 4);
          if (topt.bucket_bytes > 0) {
            const auto bucket = static_cast<std::size_t>(topt.bucket_bytes / 4);
            std::span<float> rest(flat);
            while (!rest.empty()) {
              const auto n = std::min(bucket, rest.size());
              comm.allreduce_sum(rest.subspan(0, n), options.algo);
              rest = rest.subspan(n);
            }
          } else {
            comm.allreduce_sum(flat, options.algo);
          }
        }
        {
          obs::ScopedSpan sp("phase.step", obs::cat::kPhase);
          scale(ctx, inv_world, flat);
          net->unflatten_grads(flat);
          opt->step(params, schedule.lr(global_iter), ctx);
        }
        MINSGD_FLIGHT(obs::FlightKind::kStep, obs::FlightOp::kNone, 0, 0, 0,
                      0, global_iter);

        float stats[2] = {static_cast<float>(lres.loss),
                          static_cast<float>(lres.correct)};
        comm.allreduce_sum(std::span<float>(stats, 2), options.algo);
        const double mean_loss = stats[0] / world;
        epoch_loss += mean_loss;
        epoch_correct += static_cast<std::int64_t>(stats[1]);
        ++epoch_iters;

        if (first_loss < 0) first_loss = mean_loss;
        if (topt.detect_divergence &&
            (!std::isfinite(mean_loss) ||
             mean_loss > topt.divergence_factor * first_loss)) {
          stop = true;  // all ranks see the same scalars, so all stop
        }

        if ((global_iter + 1) % options.checkpoint_every == 0 && rank == 0) {
          TrainCheckpoint meta;
          meta.global_iter = global_iter + 1;
          meta.epoch = (it + 1 == iters) ? epoch + 1 : epoch;
          meta.iter = (it + 1 == iters) ? 0 : it + 1;
          meta.world = world;
          meta.global_batch = topt.global_batch;
          meta.rng = rng.state();
          save_train_checkpoint(path, *net, *opt, meta);
          std::lock_guard lk(progress.mu);
          ++progress.checkpoints_written;
        }
      }

      EpochRecord rec;
      rec.epoch = epoch;
      rec.lr = epoch_lr;
      // After a mid-epoch resume these cover only the replayed tail of the
      // epoch; weights are exact, per-epoch averages are best-effort.
      rec.train_loss =
          epoch_iters > 0 ? epoch_loss / static_cast<double>(epoch_iters) : 0.0;
      rec.train_acc =
          epoch_iters > 0
              ? static_cast<double>(epoch_correct) /
                    static_cast<double>(epoch_iters * topt.global_batch)
              : 0.0;
      if (rank == 0) {
        const bool eval_now = (epoch % topt.eval_every == 0) ||
                              (epoch + 1 == topt.epochs) || stop;
        rec.test_acc = eval_now ? evaluate(*net, dataset, 256, ctx) : 0.0;
        if (topt.verbose) {
          std::printf(
              "epoch %3lld  lr %.5f  loss %.4f  train_acc %.4f  test_acc "
              "%.4f\n",
              static_cast<long long>(rec.epoch), rec.lr, rec.train_loss,
              rec.train_acc, rec.test_acc);
          std::fflush(stdout);
        }
        std::lock_guard lk(progress.mu);
        progress.epochs[epoch] = rec;
      }
      comm.barrier();  // keep epochs aligned (rank 0 evaluates)
    }

    if (rank == 0) {
      std::lock_guard lk(progress.mu);
      progress.final_weights = net->flatten_params();
      progress.global_iter = global_iter;
      progress.diverged = stop;
    }
  };

  for (int attempt = 0;; ++attempt) {
    comm::SimCluster cluster(
        comm::ClusterOptions{world, topt.compute_threads});
    if (options.recv_timeout.count() > 0) {
      cluster.set_recv_timeout(options.recv_timeout);
    }
    if (injector) cluster.set_fault_injector(injector);
    try {
      cluster.run(rank_fn);
      out.traffic += cluster.total_traffic();
      break;
    } catch (const comm::FaultError& e) {
      out.traffic += cluster.total_traffic();
      ++out.restarts;
      if (out.restarts > options.max_restarts) throw;
      if (topt.verbose) {
        std::printf("fault (attempt %d): %s\n  -> restarting from %s\n",
                    attempt, e.what(),
                    file_exists(path) ? path.c_str() : "scratch");
        std::fflush(stdout);
      }
    }
  }

  if (injector) out.faults = injector->total();
  {
    std::lock_guard lk(progress.mu);
    for (const auto& [epoch, rec] : progress.epochs) {
      out.result.epochs.push_back(rec);
    }
    out.result.diverged = progress.diverged;
    out.result.iterations_run = progress.global_iter;
    out.final_weights = std::move(progress.final_weights);
    out.iterations = progress.global_iter;
    out.checkpoints_written = progress.checkpoints_written;
  }
  for (const auto& e : out.result.epochs) {
    if (e.test_acc > out.result.best_test_acc) {
      out.result.best_test_acc = e.test_acc;
    }
  }
  if (!out.result.epochs.empty()) {
    out.result.final_test_acc = out.result.epochs.back().test_acc;
  }
  if (!options.keep_checkpoint) std::remove(path.c_str());
  return out;
}

}  // namespace minsgd::train
