#include "train/async_trainer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "comm/param_server.hpp"
#include "data/loader.hpp"
#include "nn/loss.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"

namespace minsgd::train {

AsyncResult train_async_param_server(
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const optim::LrSchedule& schedule, const data::SyntheticImageNet& dataset,
    const TrainOptions& options, int workers) {
  if (workers <= 0) {
    throw std::invalid_argument("train_async_param_server: workers <= 0");
  }
  if (options.global_batch % workers != 0) {
    throw std::invalid_argument(
        "train_async_param_server: global_batch % workers != 0");
  }

  // Server starts from the same deterministic initialization the sync
  // trainers use.
  auto init_net = model_factory();
  Rng init_rng(options.init_seed);
  init_net->init(init_rng);
  comm::ParameterServer server(init_net->flatten_params());
  server.set_workers(workers);

  std::atomic<bool> abort{false};
  std::atomic<double> last_loss{0.0};
  // minsgd-lint: allow(thread-spawn): async parameter-server workers are
  // rank threads, not intra-op compute — each owns a budgeted ComputeContext
  // so the process-wide thread total stays <= the global budget.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));

  // Worker threads split one global intra-op budget, mirroring SimCluster's
  // per-rank arithmetic: total pool workers stay <= budget.
  const std::size_t budget = options.compute_threads != 0
                                 ? options.compute_threads
                                 : ComputeContext::default_threads();
  const std::size_t per_worker =
      std::max<std::size_t>(1, budget / static_cast<std::size_t>(workers));

  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      obs::set_thread_rank(w);  // trace lane per worker
      const ComputeContext ctx(per_worker);
      auto net = model_factory();
      Rng worker_init(options.init_seed);
      net->init(worker_init);  // allocate param storage; overwritten by pull
      std::vector<float> weights(
          static_cast<std::size_t>(net->num_params()));
      server.pull(w, weights);
      net->unflatten_params(weights);

      data::ShardedLoader loader(dataset, options.global_batch, w, workers,
                                 options.augment);
      nn::SoftmaxCrossEntropy loss;
      Tensor logits, dlogits, dx;
      nn::ExecutionPlan plan;  // per-worker, lives across iterations
      const std::int64_t iters = loader.iterations_per_epoch();
      double first_loss = -1.0;

      for (std::int64_t epoch = 0; epoch < options.epochs; ++epoch) {
        for (std::int64_t it = 0; it < iters; ++it) {
          if (abort.load(std::memory_order_relaxed)) return;
          data::Batch batch;
          {
            obs::ScopedSpan sp("phase.data", obs::cat::kPhase);
            batch = loader.load_train(epoch, it, ctx);
          }
          net->zero_grad();
          nn::LossResult lres;
          auto pc = plan.context(*net, batch.x.shape());
          {
            obs::ScopedSpan sp("phase.forward", obs::cat::kPhase);
            net->forward(batch.x, logits, /*training=*/true, ctx, &pc);
            lres = loss.forward_backward(logits, batch.labels, &dlogits, ctx);
          }
          {
            obs::ScopedSpan sp("phase.backward", obs::cat::kPhase);
            net->backward(batch.x, logits, dlogits, dx, ctx, &pc);
          }
          const double lr = schedule.lr(server.updates_applied());
          auto grad = net->flatten_grads();
          {
            obs::ScopedSpan sp("phase.push_pull", obs::cat::kPhase);
            sp.set_bytes(static_cast<std::int64_t>(grad.size()) * 4);
            server.push_pull(w, grad, lr, weights);
          }
          net->unflatten_params(weights);
          MINSGD_FLIGHT(obs::FlightKind::kStep, obs::FlightOp::kNone, 0, 0,
                        0, 0, it);
          last_loss.store(lres.loss, std::memory_order_relaxed);
          if (first_loss < 0) first_loss = lres.loss;
          if (options.detect_divergence &&
              (!std::isfinite(lres.loss) ||
               lres.loss > options.divergence_factor * first_loss)) {
            abort.store(true, std::memory_order_relaxed);
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  AsyncResult res;
  res.diverged = abort.load();
  res.updates_applied = server.updates_applied();
  res.max_staleness = server.max_staleness();
  res.final_train_loss = last_loss.load();
  // Evaluate the server's final weights.
  std::vector<float> weights(static_cast<std::size_t>(init_net->num_params()));
  server.pull(0, weights);
  init_net->unflatten_params(weights);
  res.final_test_acc = evaluate(*init_net, dataset);
  return res;
}

}  // namespace minsgd::train
