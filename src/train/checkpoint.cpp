#include "train/checkpoint.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "core/io.hpp"
#include "nn/serialize.hpp"
#include "obs/flight.hpp"

namespace minsgd::train {
namespace {

constexpr char kMagic[4] = {'M', 'S', 'G', 'T'};
constexpr char kFooter[4] = {'T', 'G', 'S', 'M'};
constexpr char kModelMagic[4] = {'M', 'S', 'G', 'D'};  // nn::serialize's

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  core::write_pod(out, v);
}

template <typename T>
T read_pod(std::istream& in, const char* what) {
  T v{};
  core::read_pod(in, v);
  if (!in) {
    throw std::runtime_error(std::string("train checkpoint: truncated (") +
                             what + ")");
  }
  return v;
}

void write_rng_state(std::ostream& out, const RngState& st) {
  for (std::uint64_t s : st.s) write_pod(out, s);
  write_pod(out, st.cached_normal);
  write_pod(out, static_cast<std::uint8_t>(st.has_cached ? 1 : 0));
}

RngState read_rng_state(std::istream& in, const char* what) {
  RngState st;
  for (auto& s : st.s) s = read_pod<std::uint64_t>(in, what);
  st.cached_normal = read_pod<double>(in, what);
  st.has_cached = read_pod<std::uint8_t>(in, what) != 0;
  return st;
}

}  // namespace

void save_train_checkpoint(std::ostream& out, nn::Network& net,
                           const optim::Optimizer& opt,
                           const TrainCheckpoint& meta) {
  // Save-side header fields are produced by the trainer, never by external
  // input: nonsense here is a trainer bug and would poison every resume, so
  // it aborts instead of writing a plausible-looking file. (Load-side
  // validation of the *file* stays exception-based — a corrupt checkpoint is
  // recoverable input, and the fault-tolerant trainer relies on that.)
  MINSGD_CHECK(meta.world >= 1, "train checkpoint: world=", meta.world);
  MINSGD_CHECK(meta.global_batch >= 1,
               "train checkpoint: global_batch=", meta.global_batch);
  MINSGD_CHECK(meta.epoch >= 0 && meta.iter >= 0 && meta.global_iter >= 0,
               "train checkpoint: negative progress (epoch=", meta.epoch,
               " iter=", meta.iter, " global_iter=", meta.global_iter, ")");
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kTrainCheckpointVersion);
  write_pod(out, meta.epoch);
  write_pod(out, meta.iter);
  write_pod(out, meta.global_iter);
  write_pod(out, meta.world);
  write_pod(out, meta.global_batch);
  write_rng_state(out, meta.rng);
  // Layer-internal streams (dropout mask generators): without them a resumed
  // run draws different masks than the uninterrupted one from the first
  // training forward on.
  const auto streams = net.rng_streams();
  write_pod(out, static_cast<std::uint64_t>(streams.size()));
  for (const Rng* r : streams) write_rng_state(out, r->state());
  nn::save_checkpoint(net, out);
  opt.save_state(out);
  out.write(kFooter, sizeof(kFooter));
  if (!out) throw std::runtime_error("train checkpoint: write failed");
}

void load_train_checkpoint(std::istream& in, nn::Network& net,
                           optim::Optimizer& opt, TrainCheckpoint& meta,
                           std::int64_t expect_world,
                           std::int64_t expect_global_batch) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in) throw std::runtime_error("train checkpoint: truncated (magic)");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    if (std::memcmp(magic, kModelMagic, sizeof(kModelMagic)) == 0) {
      throw std::runtime_error(
          "train checkpoint: file is a weight-only model checkpoint "
          "(\"MSGD\"); it has no optimizer/schedule/RNG state and cannot "
          "resume a run exactly — load it with nn::load_checkpoint instead");
    }
    throw std::runtime_error("train checkpoint: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in, "version");
  if (version != kTrainCheckpointVersion) {
    throw std::runtime_error("train checkpoint: unsupported version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kTrainCheckpointVersion) + ")");
  }
  TrainCheckpoint m;
  m.epoch = read_pod<std::int64_t>(in, "epoch");
  m.iter = read_pod<std::int64_t>(in, "iter");
  m.global_iter = read_pod<std::int64_t>(in, "global_iter");
  m.world = read_pod<std::int64_t>(in, "world");
  m.global_batch = read_pod<std::int64_t>(in, "global_batch");
  m.rng = read_rng_state(in, "rng");
  const auto n_streams = read_pod<std::uint64_t>(in, "rng stream count");
  const auto streams = net.rng_streams();
  if (n_streams != streams.size()) {
    throw std::runtime_error(
        "train checkpoint: model has " + std::to_string(streams.size()) +
        " internal RNG stream(s) but the file holds " +
        std::to_string(n_streams) + "; architecture mismatch");
  }
  for (Rng* r : streams) r->set_state(read_rng_state(in, "layer rng"));
  if (expect_world > 0 && m.world != expect_world) {
    throw std::runtime_error(
        "train checkpoint: world mismatch (file " + std::to_string(m.world) +
        ", run " + std::to_string(expect_world) +
        "); sharding and gradient scaling depend on world, resume with the "
        "same cluster size");
  }
  if (expect_global_batch > 0 && m.global_batch != expect_global_batch) {
    throw std::runtime_error("train checkpoint: global batch mismatch (file " +
                             std::to_string(m.global_batch) + ", run " +
                             std::to_string(expect_global_batch) + ")");
  }
  nn::load_checkpoint(net, in);
  opt.load_state(in);
  char footer[4];
  in.read(footer, sizeof(footer));
  if (!in || std::memcmp(footer, kFooter, sizeof(kFooter)) != 0) {
    throw std::runtime_error("train checkpoint: missing footer (truncated?)");
  }
  meta = m;
}

void save_train_checkpoint(const std::string& path, nn::Network& net,
                           const optim::Optimizer& opt,
                           const TrainCheckpoint& meta) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("train checkpoint: cannot open " + tmp);
    }
    save_train_checkpoint(out, net, opt, meta);
    out.flush();
    if (!out) throw std::runtime_error("train checkpoint: write failed");
    MINSGD_FLIGHT(obs::FlightKind::kCheckpoint, obs::FlightOp::kSave, 0, 0,
                  0, static_cast<std::int64_t>(out.tellp()),
                  meta.global_iter);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("train checkpoint: rename to " + path +
                             " failed");
  }
}

void load_train_checkpoint(const std::string& path, nn::Network& net,
                           optim::Optimizer& opt, TrainCheckpoint& meta,
                           std::int64_t expect_world,
                           std::int64_t expect_global_batch) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("train checkpoint: cannot open " + path);
  load_train_checkpoint(in, net, opt, meta, expect_world,
                        expect_global_batch);
  MINSGD_FLIGHT(obs::FlightKind::kCheckpoint, obs::FlightOp::kLoad, 0, 0, 0,
                static_cast<std::int64_t>(in.tellg()), meta.global_iter);
}

}  // namespace minsgd::train
