// Evaluation and per-epoch bookkeeping.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/synthetic.hpp"
#include "nn/network.hpp"

namespace minsgd::train {

/// One epoch's record; `lr` is the learning rate at the epoch's first
/// iteration.
struct EpochRecord {
  std::int64_t epoch = 0;
  double lr = 0.0;
  double train_loss = 0.0;
  double train_acc = 0.0;
  double test_acc = 0.0;
};

struct TrainResult {
  std::vector<EpochRecord> epochs;
  bool diverged = false;
  std::int64_t iterations_run = 0;
  double best_test_acc = 0.0;
  double final_test_acc = 0.0;
};

/// Top-1 accuracy of `net` on the dataset's test split (eval mode).
double evaluate(nn::Network& net, const data::SyntheticImageNet& dataset,
                std::int64_t eval_batch = 256);

/// Top-k hits over a batch of logits: a sample counts if its label is among
/// the k largest logits. k = 1 reproduces the loss head's `correct`.
std::int64_t top_k_correct(const Tensor& logits,
                           std::span<const std::int32_t> labels,
                           std::int64_t k);

/// Top-k accuracy on the test split.
double evaluate_top_k(nn::Network& net,
                      const data::SyntheticImageNet& dataset, std::int64_t k,
                      std::int64_t eval_batch = 256);

}  // namespace minsgd::train
