// Evaluation and per-epoch bookkeeping.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "nn/network.hpp"
#include "tensor/context.hpp"

namespace minsgd::train {

/// One epoch's record; `lr` is the learning rate at the epoch's first
/// iteration.
struct EpochRecord {
  std::int64_t epoch = 0;
  double lr = 0.0;
  double train_loss = 0.0;
  double train_acc = 0.0;
  double test_acc = 0.0;
};

struct TrainResult {
  std::vector<EpochRecord> epochs;
  bool diverged = false;
  std::int64_t iterations_run = 0;
  double best_test_acc = 0.0;
  double final_test_acc = 0.0;
};

/// Top-1 accuracy of `net` on the dataset's test split (eval mode).
double evaluate(nn::Network& net, const data::SyntheticImageNet& dataset,
                std::int64_t eval_batch = 256,
                const ComputeContext& ctx = ComputeContext::default_ctx());

/// Top-k hits over a batch of logits: a sample counts if its label is among
/// the k largest logits. k = 1 reproduces the loss head's `correct`.
std::int64_t top_k_correct(const Tensor& logits,
                           std::span<const std::int32_t> labels,
                           std::int64_t k);

/// Top-k accuracy on the test split.
double evaluate_top_k(nn::Network& net,
                      const data::SyntheticImageNet& dataset, std::int64_t k,
                      std::int64_t eval_batch = 256,
                      const ComputeContext& ctx = ComputeContext::default_ctx());

// -- training-curve export --------------------------------------------------
// The paper's accuracy claims are curves (Figures 1, 4, 5); these dump any
// TrainResult without bench-specific glue. CSV: one row per epoch. JSONL:
// one object per epoch plus a final {"summary":true,...} line; non-finite
// values (diverged losses) are emitted as null.

void write_csv(const TrainResult& result, const std::string& path);
void write_jsonl(const TrainResult& result, std::ostream& out);
void write_jsonl(const TrainResult& result, const std::string& path);

}  // namespace minsgd::train
