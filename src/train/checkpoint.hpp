// Train checkpoint (v2): everything needed for bit-exact resume.
//
// A weight-only model checkpoint (src/nn/serialize.hpp) cannot reproduce an
// uninterrupted run: momentum is part of the trajectory, the LR schedule is
// a function of the global iteration, and any random stream keeps a
// position. The v2 train checkpoint captures all of it:
//
//   magic "MSGT"  u32 version(2)
//   i64 epoch, i64 iter, i64 global_iter     (next position, not last done)
//   i64 world, i64 global_batch              (validated on load: sharding
//                                             and the 1/world gradient
//                                             scaling are world-dependent,
//                                             so exact resume requires the
//                                             same geometry)
//   RngState                                 (trainer RNG stream)
//   u64 stream_count, RngState[stream_count] (layer-internal streams, e.g.
//                                             dropout mask generators, in
//                                             Network::rng_streams() order)
//   embedded model section                   (nn::save_checkpoint, v2)
//   embedded optimizer state                 (Optimizer::save_state)
//   footer "TGSM"                            (truncation sentinel)
//
// Feeding a weight-only "MSGD" file to the train loader fails loudly with a
// message saying exactly that, and vice versa.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "nn/network.hpp"
#include "optim/optimizer.hpp"
#include "tensor/rng.hpp"

namespace minsgd::train {

/// Version written/required by save/load_train_checkpoint.
inline constexpr std::uint32_t kTrainCheckpointVersion = 2;

/// The scalar trainer state riding along with the model and optimizer.
/// Positions are "next to execute": a checkpoint written after finishing
/// iteration t of epoch e has iter == t + 1 (or epoch e+1, iter 0 once the
/// epoch wraps — the loader normalizes).
struct TrainCheckpoint {
  std::int64_t epoch = 0;
  std::int64_t iter = 0;
  std::int64_t global_iter = 0;
  std::int64_t world = 1;
  std::int64_t global_batch = 0;
  RngState rng;
};

/// Writes net + optimizer + `meta` to `path` atomically (temp file +
/// rename), so a crash mid-write cannot leave a torn checkpoint behind.
void save_train_checkpoint(const std::string& path, nn::Network& net,
                           const optim::Optimizer& opt,
                           const TrainCheckpoint& meta);

/// Restores net, optimizer, and `meta` from `path`. Throws
/// std::runtime_error on a weight-only (v1 "MSGD") file, version skew,
/// geometry mismatch against `expect_world`/`expect_global_batch` (pass 0
/// to skip the check), name/shape mismatch, or truncation.
void load_train_checkpoint(const std::string& path, nn::Network& net,
                           optim::Optimizer& opt, TrainCheckpoint& meta,
                           std::int64_t expect_world = 0,
                           std::int64_t expect_global_batch = 0);

/// Stream versions (unit-testable without touching the filesystem).
void save_train_checkpoint(std::ostream& out, nn::Network& net,
                           const optim::Optimizer& opt,
                           const TrainCheckpoint& meta);
void load_train_checkpoint(std::istream& in, nn::Network& net,
                           optim::Optimizer& opt, TrainCheckpoint& meta,
                           std::int64_t expect_world = 0,
                           std::int64_t expect_global_batch = 0);

}  // namespace minsgd::train
