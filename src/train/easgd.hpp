// Elastic Averaging SGD (Zhang, Choromanska & LeCun 2015).
//
// The second asynchronous baseline the paper cites. Unlike the Downpour
// parameter server (workers overwrite their weights with the server's on
// every push), EASGD lets each worker explore its own trajectory and only
// couples it to a shared "center" variable with an elastic force every
// `communication_period` steps:
//
//     worker:  w_i <- w_i - alpha * (w_i - center)
//     center:  c   <- c   + alpha * (w_i - center)
//
// The center accumulates a moving average of the workers; exploration vs.
// consensus is tuned by alpha and the period.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "data/synthetic.hpp"
#include "nn/network.hpp"
#include "train/trainer.hpp"

namespace minsgd::train {

struct EasgdConfig {
  /// Elastic coefficient (the paper's alpha = beta / p convention).
  double alpha = 0.5;
  /// Local SGD steps between elastic synchronizations (tau).
  std::int64_t communication_period = 4;
};

struct EasgdResult {
  double center_test_acc = 0.0;   // accuracy of the center variable
  double final_train_loss = 0.0;  // last worker loss observed
  std::int64_t elastic_updates = 0;
  bool diverged = false;
};

/// Runs `workers` asynchronous EASGD workers for `options.epochs` epochs
/// (each worker covers its 1/workers shard per epoch). Plain SGD locally
/// with the schedule evaluated at the worker's own step counter.
EasgdResult train_easgd(
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const optim::LrSchedule& schedule, const data::SyntheticImageNet& dataset,
    const TrainOptions& options, int workers, EasgdConfig config = {});

}  // namespace minsgd::train
