// Fault-tolerant synchronous data-parallel training.
//
// train_sync_data_parallel assumes a perfect cluster: one crashed rank used
// to deadlock every peer inside the allreduce, and a restart had to begin
// from scratch. This driver wraps the same per-iteration math (identical
// update sequence, so the no-fault run is bit-equal to the plain sync
// trainer) in a checkpoint/restart loop:
//
//   * every `checkpoint_every` global iterations, rank 0 atomically writes
//     a v2 train checkpoint (weights + optimizer + schedule position + RNG;
//     see train/checkpoint.hpp) — legal because synchronous SGD keeps every
//     rank's replica identical after the step;
//   * when a rank dies (injected RankFailure, CommTimeout, or the
//     cooperative ClusterAborted unwind), the driver catches the FaultError,
//     builds a fresh cluster, and resumes all ranks from the last
//     checkpoint;
//   * because batches are a pure function of (epoch, iteration) and the
//     checkpoint restores the full trajectory state, the recovered run's
//     final weights are bit-identical to an uninterrupted run's — the
//     integration tests assert exactly that.
//
// Only FaultError and its subclasses trigger a restart; logic errors (bad
// arguments, shape mismatches) propagate immediately.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "comm/cluster.hpp"
#include "comm/fault.hpp"
#include "data/synthetic.hpp"
#include "nn/network.hpp"
#include "optim/optimizer.hpp"
#include "optim/schedule.hpp"
#include "train/trainer.hpp"

namespace minsgd::train {

struct FaultTolerantOptions {
  TrainOptions train;
  /// Global iterations between checkpoints (>= 1).
  std::int64_t checkpoint_every = 8;
  /// Where rank 0 writes the v2 train checkpoint.
  std::string checkpoint_path = "minsgd_ft_checkpoint.bin";
  /// Restart budget: the run fails (rethrowing the last fault) once more
  /// than this many restarts were needed.
  int max_restarts = 4;
  /// Resume from an existing checkpoint file at `checkpoint_path` instead
  /// of deleting it at startup (cross-process resume).
  bool resume_existing = false;
  /// Keep the checkpoint file after a successful run (default: remove it).
  bool keep_checkpoint = false;
  /// Recv deadline for the underlying cluster; fault scenarios with message
  /// loss need a finite value or survivors wait forever. Zero means "leave
  /// it to the cluster default" (which arms itself when an injector is
  /// installed).
  std::chrono::milliseconds recv_timeout{0};
  comm::AllreduceAlgo algo = comm::AllreduceAlgo::kRing;

  /// MINSGD_CHECK the self-contained budget fields (max_restarts,
  /// recv_timeout): a negative budget is a programming error, not
  /// recoverable input. Dataset/world-dependent geometry stays
  /// std::invalid_argument in train_sync_fault_tolerant.
  void validate() const;
};

struct FaultTolerantResult {
  TrainResult result;               // merged epoch records (rank 0)
  std::vector<float> final_weights; // rank 0 replica after the last step
  std::int64_t iterations = 0;      // logical global iterations completed
  int restarts = 0;                 // cluster rebuilds after faults
  std::int64_t checkpoints_written = 0;
  comm::TrafficStats traffic;       // summed over all attempts
  comm::FaultStats faults;          // injector totals (zeros if none)
};

/// Synchronous data-parallel training that survives rank failures by
/// checkpoint/restart. `injector` (optional) perturbs the send path; it is
/// shared with the cluster(s) so a one-shot crash stays consumed across
/// restarts, modeling a failed-and-replaced node.
FaultTolerantResult train_sync_fault_tolerant(
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const std::function<std::unique_ptr<optim::Optimizer>()>& opt_factory,
    const optim::LrSchedule& schedule, const data::SyntheticImageNet& dataset,
    const FaultTolerantOptions& options, int world,
    std::shared_ptr<comm::FaultInjector> injector = nullptr);

}  // namespace minsgd::train
