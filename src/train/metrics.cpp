#include "train/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "data/loader.hpp"
#include "nn/loss.hpp"

namespace minsgd::train {

double evaluate(nn::Network& net, const data::SyntheticImageNet& dataset,
                std::int64_t eval_batch) {
  data::ShardedLoader loader(dataset, std::min<std::int64_t>(
                                           eval_batch, dataset.train_size()));
  nn::SoftmaxCrossEntropy loss;
  Tensor logits;
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < dataset.test_size();
       start += eval_batch) {
    const auto batch = loader.load_test(start, eval_batch);
    net.forward(batch.x, logits, /*training=*/false);
    const auto res = loss.forward_backward(logits, batch.labels, nullptr);
    correct += res.correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(dataset.test_size());
}

std::int64_t top_k_correct(const Tensor& logits,
                           std::span<const std::int32_t> labels,
                           std::int64_t k) {
  if (logits.shape().rank() != 2) {
    throw std::invalid_argument("top_k_correct: logits must be 2-D");
  }
  const std::int64_t batch = logits.shape()[0];
  const std::int64_t classes = logits.shape()[1];
  if (static_cast<std::int64_t>(labels.size()) != batch) {
    throw std::invalid_argument("top_k_correct: label count mismatch");
  }
  if (k <= 0 || k > classes) {
    throw std::invalid_argument("top_k_correct: k out of range");
  }
  std::int64_t correct = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    const std::int32_t label = labels[static_cast<std::size_t>(n)];
    if (label < 0 || label >= classes) {
      throw std::out_of_range("top_k_correct: label out of range");
    }
    // Count how many classes strictly beat the label's logit; ties resolve
    // in the label's favour (consistent with argmax picking the first max).
    std::int64_t better = 0;
    for (std::int64_t c = 0; c < classes; ++c) {
      if (row[c] > row[label]) ++better;
    }
    if (better < k) ++correct;
  }
  return correct;
}

double evaluate_top_k(nn::Network& net,
                      const data::SyntheticImageNet& dataset, std::int64_t k,
                      std::int64_t eval_batch) {
  data::ShardedLoader loader(dataset, std::min<std::int64_t>(
                                          eval_batch, dataset.train_size()));
  Tensor logits;
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < dataset.test_size();
       start += eval_batch) {
    const auto batch = loader.load_test(start, eval_batch);
    net.forward(batch.x, logits, /*training=*/false);
    correct += top_k_correct(logits, batch.labels, k);
  }
  return static_cast<double>(correct) /
         static_cast<double>(dataset.test_size());
}

}  // namespace minsgd::train
