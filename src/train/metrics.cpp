#include "train/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "core/csv.hpp"
#include "data/loader.hpp"
#include "nn/loss.hpp"
#include "obs/trace.hpp"

namespace minsgd::train {

double evaluate(nn::Network& net, const data::SyntheticImageNet& dataset,
                std::int64_t eval_batch, const ComputeContext& ctx) {
  obs::ScopedSpan span("phase.eval", obs::cat::kEval);
  span.set_threads(static_cast<int>(ctx.threads()));
  data::ShardedLoader loader(dataset, std::min<std::int64_t>(
                                           eval_batch, dataset.train_size()));
  nn::SoftmaxCrossEntropy loss;
  Tensor logits;
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < dataset.test_size();
       start += eval_batch) {
    const auto batch = loader.load_test(start, eval_batch);
    net.forward(batch.x, logits, /*training=*/false, ctx);
    const auto res = loss.forward_backward(logits, batch.labels, nullptr, ctx);
    correct += res.correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(dataset.test_size());
}

std::int64_t top_k_correct(const Tensor& logits,
                           std::span<const std::int32_t> labels,
                           std::int64_t k) {
  if (logits.shape().rank() != 2) {
    throw std::invalid_argument("top_k_correct: logits must be 2-D");
  }
  const std::int64_t batch = logits.shape()[0];
  const std::int64_t classes = logits.shape()[1];
  if (static_cast<std::int64_t>(labels.size()) != batch) {
    throw std::invalid_argument("top_k_correct: label count mismatch");
  }
  if (k <= 0 || k > classes) {
    throw std::invalid_argument("top_k_correct: k out of range");
  }
  std::int64_t correct = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    const std::int32_t label = labels[static_cast<std::size_t>(n)];
    if (label < 0 || label >= classes) {
      throw std::out_of_range("top_k_correct: label out of range");
    }
    // Count how many classes strictly beat the label's logit; ties resolve
    // in the label's favour (consistent with argmax picking the first max).
    std::int64_t better = 0;
    for (std::int64_t c = 0; c < classes; ++c) {
      if (row[c] > row[label]) ++better;
    }
    if (better < k) ++correct;
  }
  return correct;
}

double evaluate_top_k(nn::Network& net,
                      const data::SyntheticImageNet& dataset, std::int64_t k,
                      std::int64_t eval_batch, const ComputeContext& ctx) {
  obs::ScopedSpan span("phase.eval", obs::cat::kEval);
  span.set_threads(static_cast<int>(ctx.threads()));
  data::ShardedLoader loader(dataset, std::min<std::int64_t>(
                                          eval_batch, dataset.train_size()));
  Tensor logits;
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < dataset.test_size();
       start += eval_batch) {
    const auto batch = loader.load_test(start, eval_batch);
    net.forward(batch.x, logits, /*training=*/false, ctx);
    correct += top_k_correct(logits, batch.labels, k);
  }
  return static_cast<double>(correct) /
         static_cast<double>(dataset.test_size());
}

void write_csv(const TrainResult& result, const std::string& path) {
  core::CsvWriter csv(
      path, {"epoch", "lr", "train_loss", "train_acc", "test_acc"});
  for (const auto& e : result.epochs) {
    csv.row(e.epoch, e.lr, e.train_loss, e.train_acc, e.test_acc);
  }
}

namespace {

void write_json_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";  // a diverged run's loss is NaN; JSON has no NaN
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out << buf;
}

}  // namespace

void write_jsonl(const TrainResult& result, std::ostream& out) {
  for (const auto& e : result.epochs) {
    out << "{\"epoch\":" << e.epoch << ",\"lr\":";
    write_json_number(out, e.lr);
    out << ",\"train_loss\":";
    write_json_number(out, e.train_loss);
    out << ",\"train_acc\":";
    write_json_number(out, e.train_acc);
    out << ",\"test_acc\":";
    write_json_number(out, e.test_acc);
    out << "}\n";
  }
  out << "{\"summary\":true,\"epochs\":" << result.epochs.size()
      << ",\"iterations_run\":" << result.iterations_run
      << ",\"diverged\":" << (result.diverged ? "true" : "false")
      << ",\"best_test_acc\":";
  write_json_number(out, result.best_test_acc);
  out << ",\"final_test_acc\":";
  write_json_number(out, result.final_test_acc);
  out << "}\n";
}

void write_jsonl(const TrainResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_jsonl: cannot open " + path);
  write_jsonl(result, out);
}

}  // namespace minsgd::train
