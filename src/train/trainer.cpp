#include "train/trainer.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <stdexcept>

#include "comm/compress.hpp"
#include "nn/loss.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "train/overlap.hpp"

namespace minsgd::train {
namespace {

void maybe_print(const TrainOptions& opt, const EpochRecord& rec) {
  if (!opt.verbose) return;
  std::printf("epoch %3lld  lr %.5f  loss %.4f  train_acc %.4f  test_acc %.4f\n",
              static_cast<long long>(rec.epoch), rec.lr, rec.train_loss,
              rec.train_acc, rec.test_acc);
  std::fflush(stdout);
}

void finalize(TrainResult& res) {
  for (const auto& e : res.epochs) {
    if (e.test_acc > res.best_test_acc) res.best_test_acc = e.test_acc;
  }
  if (!res.epochs.empty()) res.final_test_acc = res.epochs.back().test_acc;
}

}  // namespace

TrainResult train_single(nn::Network& net, optim::Optimizer& opt,
                         const optim::LrSchedule& schedule,
                         const data::SyntheticImageNet& dataset,
                         const TrainOptions& options) {
  if (options.accumulation_steps < 1) {
    throw std::invalid_argument("train_single: accumulation_steps < 1");
  }
  Rng init_rng(options.init_seed);
  net.init(init_rng);
  // The single-process trainer owns the whole intra-op budget.
  const ComputeContext ctx(options.compute_threads != 0
                               ? options.compute_threads
                               : ComputeContext::default_threads());
  data::ShardedLoader loader(dataset, options.global_batch, 0, 1,
                             options.augment);
  nn::SoftmaxCrossEntropy loss;
  auto params = net.params();

  TrainResult res;
  const std::int64_t accum = options.accumulation_steps;
  const std::int64_t iters = loader.iterations_per_epoch() / accum;
  if (iters == 0) {
    throw std::invalid_argument(
        "train_single: accumulation_steps exceeds iterations per epoch");
  }
  Tensor logits, dlogits, dx;
  // One memory plan per trainer, kept across iterations; context() is a
  // no-op while the batch geometry is stable and a rebuild when it changes.
  nn::ExecutionPlan plan;
  double first_loss = -1.0;
  std::int64_t global_iter = 0;
  const float inv_accum = 1.0f / static_cast<float>(accum);

  for (std::int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    std::int64_t epoch_correct = 0;
    const double epoch_lr = schedule.lr(global_iter);
    for (std::int64_t it = 0; it < iters; ++it, ++global_iter) {
      net.zero_grad();
      double step_loss = 0.0;
      for (std::int64_t micro = 0; micro < accum; ++micro) {
        data::Batch batch;
        {
          obs::ScopedSpan sp("phase.data", obs::cat::kPhase);
          batch = loader.load_train(epoch, it * accum + micro, ctx);
        }
        nn::LossResult lres;
        auto pc = plan.context(net, batch.x.shape());
        {
          obs::ScopedSpan sp("phase.forward", obs::cat::kPhase);
          net.forward(batch.x, logits, /*training=*/true, ctx, &pc);
          lres = loss.forward_backward(logits, batch.labels, &dlogits, ctx);
        }
        {
          obs::ScopedSpan sp("phase.backward", obs::cat::kPhase);
          net.backward(batch.x, logits, dlogits, dx, ctx, &pc);
        }
        step_loss += lres.loss;
        epoch_correct += lres.correct;
      }
      step_loss *= inv_accum;
      {
        obs::ScopedSpan sp("phase.step", obs::cat::kPhase);
        if (accum > 1) {
          // Average the accumulated micro-batch gradients so the update is
          // the mean over the effective batch.
          for (auto& p : params) scale(ctx, inv_accum, p.grad->span());
        }
        opt.step(params, schedule.lr(global_iter), ctx);
        MINSGD_FLIGHT(obs::FlightKind::kStep, obs::FlightOp::kNone, 0, 0, 0,
                      0, global_iter);
      }
      epoch_loss += step_loss;
      ++res.iterations_run;
      if (first_loss < 0) first_loss = step_loss;
      if (options.detect_divergence &&
          (!std::isfinite(step_loss) ||
           step_loss > options.divergence_factor * first_loss)) {
        res.diverged = true;
        EpochRecord rec{epoch, epoch_lr, step_loss,
                        0.0, evaluate(net, dataset, 256, ctx)};
        res.epochs.push_back(rec);
        maybe_print(options, rec);
        finalize(res);
        return res;
      }
    }
    EpochRecord rec;
    rec.epoch = epoch;
    rec.lr = epoch_lr;
    rec.train_loss = epoch_loss / static_cast<double>(iters);
    rec.train_acc =
        static_cast<double>(epoch_correct) /
        static_cast<double>(iters * accum * options.global_batch);
    const bool eval_now = (epoch % options.eval_every == 0) ||
                          (epoch + 1 == options.epochs);
    rec.test_acc = eval_now ? evaluate(net, dataset, 256, ctx) : 0.0;
    res.epochs.push_back(rec);
    maybe_print(options, rec);
  }
  finalize(res);
  return res;
}

DistResult train_sync_data_parallel(
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const std::function<std::unique_ptr<optim::Optimizer>()>& opt_factory,
    const optim::LrSchedule& schedule, const data::SyntheticImageNet& dataset,
    const TrainOptions& options, int world, comm::AllreduceAlgo algo) {
  if (world <= 0) {
    throw std::invalid_argument("train_sync_data_parallel: world <= 0");
  }
  if (options.global_batch % world != 0) {
    throw std::invalid_argument(
        "train_sync_data_parallel: global_batch % world != 0");
  }
  // Validate the bucket configuration up front, before any cluster thread
  // is spawned — a bad value used to surface only once the bucket loop ran.
  if (options.bucket_bytes < 0 ||
      (options.bucket_bytes > 0 && options.bucket_bytes < 4)) {
    throw std::invalid_argument(
        "train_sync_data_parallel: bucket_bytes must be 0 (single bucket) "
        "or >= 4");
  }
  if (options.overlap_comm && options.compress_one_bit) {
    throw std::invalid_argument(
        "train_sync_data_parallel: overlap_comm is incompatible with "
        "compress_one_bit");
  }
  // The P rank threads split one global intra-op budget between them
  // instead of oversubscribing P copies of a process-wide pool.
  comm::SimCluster cluster(
      comm::ClusterOptions{world, options.compute_threads});
  DistResult out;
  std::mutex result_mu;

  cluster.run([&](comm::Communicator& comm) {
    // This rank's slice of the cluster-wide compute budget.
    const ComputeContext& ctx = comm.ctx();
    // Every rank builds an identical replica (same init seed).
    auto net = model_factory();
    Rng init_rng(options.init_seed);
    net->init(init_rng);
    auto opt = opt_factory();
    auto params = net->params();

    data::ShardedLoader loader(dataset, options.global_batch, comm.rank(),
                               world, options.augment);
    nn::SoftmaxCrossEntropy loss;
    const std::int64_t iters = loader.iterations_per_epoch();
    Tensor logits, dlogits, dx;
    nn::ExecutionPlan plan;           // per-replica, lives across iterations
    std::vector<float> flat_own;      // hoisted serial-path allreduce buffer
    const float inv_world = 1.0f / static_cast<float>(world);
    std::unique_ptr<comm::OneBitCompressor> compressor;
    if (options.compress_one_bit) {
      compressor = std::make_unique<comm::OneBitCompressor>(
          static_cast<std::size_t>(net->num_params()));
    }
    std::unique_ptr<OverlapAllreducer> overlap;
    if (options.overlap_comm) {
      overlap = std::make_unique<OverlapAllreducer>(
          *net, comm, options.bucket_bytes, algo);
    }
    std::int64_t serial_comm_ns = 0;  // gradient-allreduce time, serial path

    TrainResult res;
    double first_loss = -1.0;
    std::int64_t global_iter = 0;
    bool stop = false;

    for (std::int64_t epoch = 0; epoch < options.epochs && !stop; ++epoch) {
      double epoch_loss = 0.0;
      std::int64_t epoch_correct = 0;
      const double epoch_lr = schedule.lr(global_iter);
      for (std::int64_t it = 0; it < iters && !stop; ++it, ++global_iter) {
        data::Batch batch;
        {
          obs::ScopedSpan sp("phase.data", obs::cat::kPhase);
          batch = loader.load_train(epoch, it, ctx);
        }
        net->zero_grad();
        nn::LossResult lres;
        auto pc = plan.context(*net, batch.x.shape());
        {
          obs::ScopedSpan sp("phase.forward", obs::cat::kPhase);
          net->forward(batch.x, logits, /*training=*/true, ctx, &pc);
          lres = loss.forward_backward(logits, batch.labels, &dlogits, ctx);
        }
        if (overlap) overlap->begin_iteration();
        {
          obs::ScopedSpan sp("phase.backward", obs::cat::kPhase);
          // With overlap on, the gradient-ready hook fires in here: each
          // finalized layer is copied into the flat buffer and full buckets
          // launch on the comm worker while later layers still compute.
          net->backward(batch.x, logits, dlogits, dx, ctx, &pc);
        }

        // Sum gradients across ranks, then average: each local gradient is
        // the mean over the local shard, so the global-batch mean is the
        // rank-sum divided by world.
        std::span<float> flat;
        if (overlap) {
          flat = overlap->finish();  // wait on all in-flight buckets
        } else {
          net->flatten_grads_into(flat_own);
          flat = flat_own;
          obs::ScopedSpan sp_comm;
          if (obs::tracer().enabled()) {
            sp_comm.start("phase.allreduce", obs::cat::kPhase);
            sp_comm.set_bytes(static_cast<std::int64_t>(flat.size()) * 4);
          }
          const auto comm_t0 = std::chrono::steady_clock::now();
          if (compressor) {
            // 1-bit SGD: compress locally (error feedback), allgather the
            // payloads, reconstruct and sum every rank's contribution.
            const auto payload = compressor->compress(flat);
            std::vector<float> all(payload.size() *
                                   static_cast<std::size_t>(world));
            comm.allgather(payload, all);
            std::fill(flat.begin(), flat.end(), 0.0f);
            for (int r = 0; r < world; ++r) {
              comm::OneBitCompressor::decompress_add(
                  std::span<const float>(all).subspan(
                      static_cast<std::size_t>(r) * payload.size(),
                      payload.size()),
                  flat);
            }
          } else if (options.bucket_bytes > 0) {
            const auto bucket =
                static_cast<std::size_t>(options.bucket_bytes / 4);
            std::span<float> rest(flat);
            while (!rest.empty()) {
              const auto n = std::min(bucket, rest.size());
              comm.allreduce_sum(rest.subspan(0, n), algo);
              rest = rest.subspan(n);
            }
          } else {
            comm.allreduce_sum(flat, algo);
          }
          serial_comm_ns +=
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - comm_t0)
                  .count();
        }
        {
          obs::ScopedSpan sp("phase.step", obs::cat::kPhase);
          scale(ctx, inv_world, flat);
          net->unflatten_grads(flat);
          opt->step(params, schedule.lr(global_iter), ctx);
        }
        MINSGD_FLIGHT(obs::FlightKind::kStep, obs::FlightOp::kNone, 0, 0, 0,
                      0, global_iter);

        // Aggregate the loss/accuracy scalars for reporting.
        float stats[2] = {static_cast<float>(lres.loss),
                          static_cast<float>(lres.correct)};
        comm.allreduce_sum(std::span<float>(stats, 2), algo);
        const double mean_loss = stats[0] / world;
        epoch_loss += mean_loss;
        epoch_correct += static_cast<std::int64_t>(stats[1]);

        if (first_loss < 0) first_loss = mean_loss;
        if (options.detect_divergence &&
            (!std::isfinite(mean_loss) ||
             mean_loss > options.divergence_factor * first_loss)) {
          res.diverged = true;
          stop = true;  // all ranks see the same scalars, so all stop
        }
        ++res.iterations_run;
      }
      EpochRecord rec;
      rec.epoch = epoch;
      rec.lr = epoch_lr;
      rec.train_loss = epoch_loss / static_cast<double>(iters);
      rec.train_acc =
          static_cast<double>(epoch_correct) /
          static_cast<double>(iters * options.global_batch);
      if (comm.rank() == 0) {
        const bool eval_now = (epoch % options.eval_every == 0) ||
                              (epoch + 1 == options.epochs) || stop;
        rec.test_acc = eval_now ? evaluate(*net, dataset, 256, ctx) : 0.0;
        maybe_print(options, rec);
      }
      res.epochs.push_back(rec);
      comm.barrier();  // keep epochs aligned (rank 0 evaluates)
    }

    if (comm.rank() == 0) {
      finalize(res);
      std::lock_guard lk(result_mu);
      out.result = std::move(res);
      out.iterations = global_iter;
      out.final_weights = net->flatten_params();
      out.exposed_comm_ns = overlap ? overlap->exposed_ns() : serial_comm_ns;
      out.total_comm_ns = overlap ? overlap->comm_ns() : serial_comm_ns;
    }
  });

  out.traffic = cluster.total_traffic();
  // Persist the wire traffic past the cluster's lifetime: snapshots taken
  // after training still see what each collective put on the wire.
  auto& reg = obs::metrics();
  reg.counter("train.traffic.messages").add(out.traffic.messages);
  reg.counter("train.traffic.bytes").add(out.traffic.bytes);
  // Exposed vs total gradient-allreduce time: with overlap_comm the gap is
  // the communication the backward pass hid.
  reg.counter("train.allreduce.exposed_ns").add(out.exposed_comm_ns);
  reg.counter("train.allreduce.total_ns").add(out.total_comm_ns);
  for (const auto& [op, st] : cluster.traffic_by_op()) {
    reg.counter("train.traffic." + op + ".messages").add(st.messages);
    reg.counter("train.traffic." + op + ".bytes").add(st.bytes);
  }
  return out;
}

}  // namespace minsgd::train
