// OverlapAllreducer: hides gradient allreduce under the backward pass.
//
// The glue between the two halves of comm/compute overlap: it subscribes to
// Network's gradient-ready hook (fired per top-level layer as backward
// walks output→input) and the async collective engine (a per-rank FIFO comm
// worker). Gradients are copied into a persistent flat buffer at their
// flatten_grads() offsets; the buffer is divided into fixed `bucket_bytes`
// buckets *by flat offset* — exactly the boundaries the serial bucketed
// loop in train_sync_data_parallel uses — and each bucket's allreduce
// launches the moment every parameter overlapping it has reported.
//
// Why this is bit-exact against overlap off: a bucket's allreduce result
// depends only on (bucket contents, algorithm, world), not on when or in
// what order buckets are launched. Identical bucket boundaries + identical
// algorithm ⇒ identical per-element reduction order ⇒ identical bits. The
// determinism tests (tests/test_overlap.cpp) enforce this at world sizes
// {1, 2, 4, 8}.
//
// Why tags still match across ranks: backward's layer walk is the same on
// every rank, so buckets complete — and launch — in the same order
// everywhere, and the engine executes them FIFO on a dedicated tag channel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "comm/async.hpp"
#include "nn/network.hpp"

namespace minsgd::train {

class OverlapAllreducer {
 public:
  /// Installs itself as `net`'s gradient-ready hook. `bucket_bytes` uses
  /// the TrainOptions convention: 0 = one bucket spanning the whole
  /// gradient, otherwise >= 4. The hook is removed on destruction.
  OverlapAllreducer(nn::Network& net, comm::Communicator& comm,
                    std::int64_t bucket_bytes, comm::AllreduceAlgo algo);
  ~OverlapAllreducer();

  OverlapAllreducer(const OverlapAllreducer&) = delete;
  OverlapAllreducer& operator=(const OverlapAllreducer&) = delete;

  /// Resets bucket fill state. Call before every backward().
  void begin_iteration();

  /// Launches any bucket that has not launched yet (a no-op when the hook
  /// observed every layer) and blocks until all in-flight allreduces
  /// complete, rethrowing the first failure. Returns the flat rank-summed
  /// gradient, laid out exactly like Network::flatten_grads().
  std::span<float> finish();

  /// Wall-clock time finish() spent blocked — the *exposed* communication
  /// the backward pass failed to hide. Accumulated across iterations.
  std::int64_t exposed_ns() const { return exposed_ns_; }

  /// Total collective execution time on the comm worker (hidden+exposed).
  std::int64_t comm_ns() const { return engine_.busy_ns(); }

  std::size_t num_buckets() const { return bucket_fill_.size(); }

 private:
  void on_layer_ready(std::size_t layer_index);
  void launch(std::size_t bucket);
  std::size_t bucket_size(std::size_t bucket) const;

  struct Slot {
    Tensor* grad = nullptr;   // the parameter's gradient accumulator
    std::size_t offset = 0;   // its start in the flat layout
    std::size_t numel = 0;
  };
  struct LayerRange {
    std::vector<Slot> slots;
    std::size_t lo = 0, hi = 0;  // [lo, hi): flat floats this layer covers
  };

  nn::Network& net_;
  comm::AsyncCollectiveEngine engine_;
  comm::AllreduceAlgo algo_;
  std::size_t bucket_floats_ = 0;
  std::vector<float> flat_;
  std::vector<LayerRange> layers_;
  std::vector<std::size_t> bucket_fill_;         // floats reported per bucket
  std::vector<char> launched_;
  std::vector<comm::AllreduceHandle> handles_;   // in launch order
  std::int64_t exposed_ns_ = 0;
};

}  // namespace minsgd::train
