// Elastic synchronous data-parallel training.
//
// train_sync_elastic is the overlap-enabled sync trainer wired into dynamic
// world membership (comm/membership.hpp): ranks leave on schedule or by
// crashing, standby ranks join mid-run, and the surviving members keep
// training without a full-cluster restart. Across a membership change the
// trainer:
//
//   * re-forms the Communicator over the committed view (fresh generation
//     tag prefix, so stale in-flight ops can never collide),
//   * re-shards the dataset deterministically from the new (rank, world)
//     — ShardedLoader batches are a pure function of geometry, so the
//     post-change sample order equals a fixed-world run of the new size,
//   * rescales the effective global batch (local_batch x world) and the
//     learning rate per the linear scaling rule (optim::ElasticLrScale),
//   * re-splits the cluster's intra-op thread budget over the members, and
//   * admits joiners via a state broadcast: the authoritative member
//     serializes the v2 train checkpoint (weights + optimizer + schedule
//     position + RNG streams) and broadcasts the bytes over the new
//     generation's channel, so a joiner is bit-identical before its first
//     step.
//
// Determinism contracts (enforced by tests/test_elastic.cpp):
//   * no events, no faults  ==> final weights bit-equal
//     train_sync_data_parallel at the same geometry;
//   * a shrink at step k    ==> final weights bit-equal a fixed-(world-1)
//     elastic run resumed from the pre-shrink state (survivor shards and
//     the rescaled LR depend only on the committed view, not on which
//     rank left).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "comm/membership.hpp"
#include "train/trainer.hpp"

namespace minsgd::train {

struct ElasticOptions {
  /// Base trainer knobs. Interpreted fields: augment, init_seed,
  /// detect_divergence, divergence_factor, verbose, bucket_bytes,
  /// overlap_comm, compute_threads, eval_every (in windows), epochs (used
  /// to derive total_iterations when it is 0). global_batch is ignored —
  /// the elastic invariant is a fixed *local* batch, so the global batch is
  /// local_batch x live world. compress_one_bit and accumulation_steps are
  /// unsupported here.
  TrainOptions train;

  /// Per-member batch share, constant across resizes.
  std::int64_t local_batch = 8;
  /// Members at generation 0 (physical ranks [0, initial_world)).
  int initial_world = 2;
  /// Cluster size: physical ranks [initial_world, max_world) start as
  /// standby joiner slots.
  int max_world = 4;

  /// Optimizer steps to run. 0 derives train.epochs worth of iterations at
  /// the base geometry: epochs * (train_size / base batch).
  std::int64_t total_iterations = 0;
  /// Reference batch for the linear LR scaling rule. 0 means
  /// initial_world * local_batch; a resumed continuation run must pass the
  /// original run's base so the rule scales against the same anchor.
  std::int64_t base_global_batch = 0;

  /// Scheduled joins/leaves, consumed in iteration order.
  std::vector<comm::ElasticEvent> events;

  /// Recv deadline for *training* collectives. 0 keeps the cluster default
  /// (block forever without an injector; 30 s with one). Fault-injected
  /// elastic runs want this low: a dropped message then costs one
  /// CommTimeout -> reconfigure -> retry, not a long stall.
  std::chrono::milliseconds recv_timeout{0};
  std::chrono::milliseconds round_timeout{2000};
  std::chrono::milliseconds rendezvous_timeout{30000};
  int max_reconfig_rounds = 8;

  comm::AllreduceAlgo algo = comm::AllreduceAlgo::kRing;

  /// Serialized v2 train checkpoint to resume from (ElasticResult::
  /// final_state of a previous run); empty starts fresh. Every initial
  /// member loads it locally before the first step.
  std::string resume_state;

  /// MINSGD_CHECK the self-contained fields (programming errors, not
  /// recoverable input): local_batch/worlds/timeouts/attempt budget and
  /// event targets. Dataset-dependent geometry is validated by
  /// train_sync_elastic with std::invalid_argument.
  void validate() const;
};

struct ElasticResult {
  TrainResult result;  // window-aggregated metrics (one record per window)
  /// Final member-replica weights (flatten_params layout) — the witness
  /// the determinism tests compare bitwise.
  std::vector<float> final_weights;
  /// Serialized v2 train checkpoint at exit; feed to resume_state to
  /// continue the run.
  std::string final_state;
  std::int64_t iterations = 0;  // optimizer steps completed
  int reconfigurations = 0;
  std::vector<comm::ReconfigRecord> reconfigs;
  comm::TrafficStats traffic;
  comm::FaultStats faults;
};

/// Runs the elastic sync trainer over a SimCluster of max_world threads.
/// `injector` (optional) perturbs the send path — crashes surface as
/// membership shrinks, not run failures, as long as one member survives.
/// Throws std::invalid_argument on bad geometry and comm::RankFailure /
/// std::runtime_error when the run dies (no survivors, rendezvous
/// deadline, attempt budget).
ElasticResult train_sync_elastic(
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const std::function<std::unique_ptr<optim::Optimizer>()>& opt_factory,
    const optim::LrSchedule& schedule, const data::SyntheticImageNet& dataset,
    const ElasticOptions& options,
    std::shared_ptr<comm::FaultInjector> injector = nullptr);

}  // namespace minsgd::train
