#include "train/easgd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "data/loader.hpp"
#include "nn/loss.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "optim/sgd.hpp"
#include "tensor/ops.hpp"

namespace minsgd::train {

EasgdResult train_easgd(
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const optim::LrSchedule& schedule, const data::SyntheticImageNet& dataset,
    const TrainOptions& options, int workers, EasgdConfig config) {
  if (workers <= 0) throw std::invalid_argument("train_easgd: workers <= 0");
  if (options.global_batch % workers != 0) {
    throw std::invalid_argument("train_easgd: global_batch % workers != 0");
  }
  if (config.alpha <= 0 || config.alpha >= 1) {
    throw std::invalid_argument("train_easgd: alpha must be in (0, 1)");
  }
  if (config.communication_period <= 0) {
    throw std::invalid_argument("train_easgd: communication_period <= 0");
  }

  // The shared center variable, mutex-protected like a parameter server.
  auto center_net = model_factory();
  Rng init_rng(options.init_seed);
  center_net->init(init_rng);
  std::vector<float> center = center_net->flatten_params();
  std::mutex center_mu;
  std::atomic<std::int64_t> elastic_updates{0};
  std::atomic<bool> abort{false};
  std::atomic<double> last_loss{0.0};

  // Worker threads split one global intra-op budget, mirroring SimCluster's
  // per-rank arithmetic: total pool workers stay <= budget.
  const std::size_t budget = options.compute_threads != 0
                                 ? options.compute_threads
                                 : ComputeContext::default_threads();
  const std::size_t per_worker =
      std::max<std::size_t>(1, budget / static_cast<std::size_t>(workers));

  // minsgd-lint: allow(thread-spawn): EASGD workers are rank threads, not
  // intra-op compute — each one owns a budgeted ComputeContext (per_worker
  // above), mirroring SimCluster's rank-thread arithmetic.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      obs::set_thread_rank(w);  // trace lane per worker
      const ComputeContext ctx(per_worker);
      auto net = model_factory();
      Rng wrng(options.init_seed);
      net->init(wrng);  // all workers start at the center
      auto params = net->params();
      optim::Sgd sgd({.momentum = 0.9, .weight_decay = 0.0005});

      data::ShardedLoader loader(dataset, options.global_batch, w, workers,
                                 options.augment);
      nn::SoftmaxCrossEntropy loss;
      Tensor logits, dlogits, dx;
      nn::ExecutionPlan plan;  // per-worker, lives across iterations
      const std::int64_t iters = loader.iterations_per_epoch();
      double first_loss = -1.0;
      std::int64_t step = 0;
      const auto alpha = static_cast<float>(config.alpha);

      for (std::int64_t epoch = 0; epoch < options.epochs; ++epoch) {
        for (std::int64_t it = 0; it < iters; ++it, ++step) {
          if (abort.load(std::memory_order_relaxed)) return;
          data::Batch batch;
          {
            obs::ScopedSpan sp("phase.data", obs::cat::kPhase);
            batch = loader.load_train(epoch, it, ctx);
          }
          net->zero_grad();
          nn::LossResult lres;
          auto pc = plan.context(*net, batch.x.shape());
          {
            obs::ScopedSpan sp("phase.forward", obs::cat::kPhase);
            net->forward(batch.x, logits, /*training=*/true, ctx, &pc);
            lres = loss.forward_backward(logits, batch.labels, &dlogits, ctx);
          }
          {
            obs::ScopedSpan sp("phase.backward", obs::cat::kPhase);
            net->backward(batch.x, logits, dlogits, dx, ctx, &pc);
          }
          {
            obs::ScopedSpan sp("phase.step", obs::cat::kPhase);
            sgd.step(params, schedule.lr(step), ctx);
          }
          MINSGD_FLIGHT(obs::FlightKind::kStep, obs::FlightOp::kNone, 0, 0,
                        0, 0, step);
          last_loss.store(lres.loss, std::memory_order_relaxed);
          if (first_loss < 0) first_loss = lres.loss;
          if (options.detect_divergence &&
              (!std::isfinite(lres.loss) ||
               lres.loss > options.divergence_factor * first_loss)) {
            abort.store(true, std::memory_order_relaxed);
            return;
          }

          if ((step + 1) % config.communication_period == 0) {
            // Elastic synchronization with the center.
            obs::ScopedSpan sp("phase.elastic", obs::cat::kPhase);
            auto flat = net->flatten_params();
            {
              std::lock_guard lk(center_mu);
              for (std::size_t i = 0; i < flat.size(); ++i) {
                const float diff = flat[i] - center[i];
                flat[i] -= alpha * diff;
                center[i] += alpha * diff;
              }
            }
            net->unflatten_params(flat);
            elastic_updates.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EasgdResult res;
  res.diverged = abort.load();
  res.elastic_updates = elastic_updates.load();
  res.final_train_loss = last_loss.load();
  center_net->unflatten_params(center);
  res.center_test_acc = evaluate(*center_net, dataset);
  return res;
}

}  // namespace minsgd::train
