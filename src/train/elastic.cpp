#include "train/elastic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "core/check.hpp"
#include "nn/loss.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "train/checkpoint.hpp"
#include "train/overlap.hpp"

namespace minsgd::train {
namespace {

/// Window-aggregated metrics (a "window" is one base-geometry epoch:
/// train_size / base_global_batch iterations, fixed across resizes so the
/// records of runs with different membership histories line up).
struct WindowAgg {
  double lr = 0.0;
  double loss_sum = 0.0;
  std::int64_t correct = 0;
  std::int64_t iters = 0;     // iterations actually booked (faults may skip)
  std::int64_t examples = 0;  // global-batch sizes summed over booked iters
  double test_acc = 0.0;
};

struct SharedState {
  std::mutex mu;
  std::map<std::int64_t, WindowAgg> windows;
  bool diverged = false;
  std::vector<float> final_weights;
  std::string final_state;
  std::int64_t iterations = 0;
};

/// Broadcasts the root's serialized v2 checkpoint (plus the divergence
/// baseline) over the group and loads it on every other member. Raw bytes
/// ride in floats via memcpy; the 4-float header carries the byte length as
/// hi*65536 + lo (both < 2^24, so exact in float) and the baseline. The
/// root does not round-trip its own state: serialize/deserialize is exact,
/// so skipping the reload preserves bit-identity trivially.
void broadcast_state(comm::Communicator& gc, int root, nn::Network& net,
                     optim::Optimizer& opt, TrainCheckpoint& meta,
                     bool& has_first, double& first_loss) {
  std::string bytes;
  if (gc.rank() == root) {
    std::ostringstream os;
    save_train_checkpoint(os, net, opt, meta);
    bytes = os.str();
  }
  float hdr[4] = {static_cast<float>(bytes.size() / 65536),
                  static_cast<float>(bytes.size() % 65536),
                  has_first ? 1.0f : 0.0f, static_cast<float>(first_loss)};
  gc.broadcast(std::span<float>(hdr, 4), root);
  const std::size_t len = static_cast<std::size_t>(hdr[0]) * 65536 +
                          static_cast<std::size_t>(hdr[1]);
  std::vector<float> payload((len + 3) / 4, 0.0f);
  if (gc.rank() == root) {
    std::memcpy(payload.data(), bytes.data(), bytes.size());
  }
  if (!payload.empty()) {
    gc.broadcast(payload, root);
  }
  if (gc.rank() != root) {
    std::string raw(len, '\0');
    std::memcpy(raw.data(), payload.data(), len);
    std::istringstream is(raw);
    load_train_checkpoint(is, net, opt, meta, /*expect_world=*/0);
    has_first = hdr[2] != 0.0f;
    // The baseline crossed the wire as a float; every member (including
    // the root, which rounded at capture) now holds the identical double.
    first_loss = static_cast<double>(hdr[3]);
  }
}

}  // namespace

void ElasticOptions::validate() const {
  MINSGD_CHECK(local_batch >= 1, "ElasticOptions: local_batch ", local_batch,
               " < 1");
  MINSGD_CHECK(initial_world >= 1, "ElasticOptions: initial_world ",
               initial_world, " < 1");
  MINSGD_CHECK(max_world >= initial_world, "ElasticOptions: max_world ",
               max_world, " < initial_world ", initial_world);
  MINSGD_CHECK(total_iterations >= 0, "ElasticOptions: total_iterations ",
               total_iterations, " < 0");
  MINSGD_CHECK(base_global_batch >= 0, "ElasticOptions: base_global_batch ",
               base_global_batch, " < 0");
  MINSGD_CHECK(recv_timeout.count() >= 0,
               "ElasticOptions: recv_timeout < 0");
  MINSGD_CHECK(round_timeout.count() > 0,
               "ElasticOptions: round_timeout <= 0");
  MINSGD_CHECK(rendezvous_timeout.count() > 0,
               "ElasticOptions: rendezvous_timeout <= 0");
  MINSGD_CHECK(max_reconfig_rounds >= 1,
               "ElasticOptions: max_reconfig_rounds ", max_reconfig_rounds,
               " < 1");
  MINSGD_CHECK(train.eval_every >= 1, "ElasticOptions: eval_every ",
               train.eval_every, " < 1");
  MINSGD_CHECK(train.epochs >= 1, "ElasticOptions: epochs ", train.epochs,
               " < 1");
  for (const auto& ev : events) {
    MINSGD_CHECK(ev.rank >= 0 && ev.rank < max_world,
                 "ElasticOptions: event rank ", ev.rank,
                 " outside [0, max_world=", max_world, ")");
    MINSGD_CHECK(ev.at_iter >= 0, "ElasticOptions: event at_iter ",
                 ev.at_iter, " < 0");
  }
}

ElasticResult train_sync_elastic(
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const std::function<std::unique_ptr<optim::Optimizer>()>& opt_factory,
    const optim::LrSchedule& schedule, const data::SyntheticImageNet& dataset,
    const ElasticOptions& options,
    std::shared_ptr<comm::FaultInjector> injector) {
  options.validate();
  const TrainOptions& t = options.train;
  if (t.compress_one_bit) {
    throw std::invalid_argument(
        "train_sync_elastic: compress_one_bit is unsupported");
  }
  if (t.accumulation_steps != 1) {
    throw std::invalid_argument(
        "train_sync_elastic: accumulation_steps is unsupported");
  }
  if (t.bucket_bytes < 0 || (t.bucket_bytes > 0 && t.bucket_bytes < 4)) {
    throw std::invalid_argument(
        "train_sync_elastic: bucket_bytes must be 0 (single bucket) or >= 4");
  }
  const std::int64_t base_gb =
      options.base_global_batch != 0
          ? options.base_global_batch
          : options.local_batch * options.initial_world;
  if (options.local_batch * options.max_world > dataset.train_size() ||
      base_gb > dataset.train_size()) {
    throw std::invalid_argument(
        "train_sync_elastic: a world's global batch exceeds the training "
        "set");
  }
  // Base-geometry epoch length; the schedule, the eval cadence, and the
  // derived iteration budget all key off it so runs with different
  // membership histories stay comparable.
  const std::int64_t ipw = dataset.train_size() / base_gb;
  const std::int64_t total_iters = options.total_iterations != 0
                                       ? options.total_iterations
                                       : t.epochs * ipw;
  if (total_iters <= 0) {
    throw std::invalid_argument("train_sync_elastic: zero-iteration run");
  }

  comm::SimCluster cluster(
      comm::ClusterOptions{options.max_world, t.compute_threads});
  if (injector) cluster.set_fault_injector(std::move(injector));
  if (options.recv_timeout.count() > 0) {
    cluster.set_recv_timeout(options.recv_timeout);
  }

  comm::MembershipView init;
  init.generation = 0;
  for (int r = 0; r < options.initial_world; ++r) init.ranks.push_back(r);
  comm::ElasticCoordinator::Options copts;
  copts.round_timeout = options.round_timeout;
  copts.rendezvous_timeout = options.rendezvous_timeout;
  copts.max_rounds = options.max_reconfig_rounds;
  comm::ElasticCoordinator coordinator(cluster, init, options.events, copts);

  SharedState shared;

  auto rank_fn = [&](comm::Communicator& comm) {
    const int phys = comm.rank();  // full-world: physical identity
    auto net = model_factory();
    Rng init_rng(t.init_seed);
    net->init(init_rng);
    auto opt = opt_factory();
    auto params = net->params();
    nn::SoftmaxCrossEntropy loss;
    optim::ElasticLrScale lrs(schedule, base_gb);
    Tensor logits, dlogits, dx;
    nn::ExecutionPlan plan;       // survives generation changes; rebuilds on
                                  // batch-geometry change after a resize
    std::vector<float> flat_own;  // hoisted serial-path allreduce buffer

    // Per-generation state, rebuilt by adopt() after every commit.
    std::unique_ptr<comm::Communicator> gc;
    std::unique_ptr<data::ShardedLoader> loader;
    std::unique_ptr<OverlapAllreducer> overlap;
    const ComputeContext* ctx = nullptr;
    std::int64_t ipe = 1, gb = 0;
    float inv_world = 1.0f;

    std::int64_t global_iter = 0;  // next iteration to execute
    std::int64_t steps_done = 0;   // optimizer steps applied to the replica
    bool has_state = false;        // replica holds real training state
    double first_loss = 0.0;       // divergence baseline (float-rounded)
    bool has_first = false;
    bool diverged = false;
    bool active = phys < options.initial_world;

    auto teardown = [&] {
      overlap.reset();  // joins the comm worker before transport changes
      loader.reset();
      gc.reset();
      ctx = nullptr;
    };

    auto adopt = [&](const comm::MembershipView& view) {
      overlap.reset();
      gc = std::make_unique<comm::Communicator>(cluster, phys, view, 0);
      ctx = &gc->ctx();
      gb = options.local_batch * view.world();
      loader = std::make_unique<data::ShardedLoader>(dataset, gb, gc->rank(),
                                                     view.world(), t.augment);
      ipe = loader->iterations_per_epoch();
      lrs.set_batch(gb);
      inv_world = 1.0f / static_cast<float>(view.world());
      if (t.overlap_comm) {
        overlap = std::make_unique<OverlapAllreducer>(*net, *gc,
                                                      t.bucket_bytes,
                                                      options.algo);
      }
    };

    auto state_sync = [&](const comm::ReconfigOutcome& oc) {
      TrainCheckpoint meta;
      if (oc.is_root) {
        meta.global_iter = oc.resume_iter;
        meta.epoch = oc.resume_iter / ipe;
        meta.iter = oc.resume_iter % ipe;
        meta.world = gc->world();
        meta.global_batch = gb;
        meta.rng = Rng(t.init_seed).state();
      }
      broadcast_state(*gc, oc.state_root, *net, *opt, meta, has_first,
                      first_loss);
      global_iter = oc.resume_iter;
      steps_done = oc.resume_iter;
      has_state = true;
    };

    // Reconfiguration driver shared by the fault handlers and the
    // scheduled-event poll. Retries until a committed view either includes
    // this rank with its state synced (stays active) or excludes it (parks
    // as standby). Returns false once the rank is no longer active.
    auto do_reconfig = [&]() -> bool {
      int sync_failures = 0;
      for (;;) {
        overlap.reset();
        try {
          const auto oc =
              coordinator.reconfigure(phys, has_state ? steps_done : -1);
          if (oc.role != comm::MemberRole::kMember) {
            teardown();
            return active = false;
          }
          adopt(oc.view);
          try {
            state_sync(oc);
            return active = true;
          } catch (const comm::RankFailure&) {
            throw;  // crash during the broadcast: handled below
          } catch (const std::exception&) {
            // Torn or corrupted state payload: burn this generation and
            // re-form. Bounded so a persistent failure cannot spin.
            if (++sync_failures > options.max_reconfig_rounds) throw;
            coordinator.report_failure(phys);
            continue;
          }
        } catch (const comm::RankFailure&) {
          coordinator.report_death(phys);
          teardown();
          return active = false;  // the slot parks as a replacement standby
        } catch (const std::runtime_error&) {
          teardown();  // run declared failed; unwind via the standby path
          return active = false;
        }
      }
    };

    if (active) {
      adopt(coordinator.view());
      if (!options.resume_state.empty()) {
        std::istringstream is(options.resume_state);
        TrainCheckpoint meta;
        load_train_checkpoint(is, *net, *opt, meta, /*expect_world=*/0);
        global_iter = meta.global_iter;
        steps_done = meta.global_iter;
      }
      has_state = true;
    }

    auto one_iteration = [&] {
      const std::int64_t epoch = global_iter / ipe;
      const std::int64_t it = global_iter % ipe;
      data::Batch batch;
      {
        obs::ScopedSpan sp("phase.data", obs::cat::kPhase);
        batch = loader->load_train(epoch, it, *ctx);
      }
      net->zero_grad();
      nn::LossResult lres;
      auto pc = plan.context(*net, batch.x.shape());
      {
        obs::ScopedSpan sp("phase.forward", obs::cat::kPhase);
        net->forward(batch.x, logits, /*training=*/true, *ctx, &pc);
        lres = loss.forward_backward(logits, batch.labels, &dlogits, *ctx);
      }
      if (overlap) overlap->begin_iteration();
      {
        obs::ScopedSpan sp("phase.backward", obs::cat::kPhase);
        net->backward(batch.x, logits, dlogits, dx, *ctx, &pc);
      }
      // Sum gradients across the members, then average by the live world.
      // Bucket boundaries match the fixed trainer's, so a run that never
      // resizes is bit-identical to train_sync_data_parallel.
      std::span<float> flat;
      if (overlap) {
        flat = overlap->finish();
      } else {
        net->flatten_grads_into(flat_own);
        flat = flat_own;
        if (t.bucket_bytes > 0) {
          const auto bucket = static_cast<std::size_t>(t.bucket_bytes / 4);
          std::span<float> rest(flat);
          while (!rest.empty()) {
            const auto n = std::min(bucket, rest.size());
            gc->allreduce_sum(rest.subspan(0, n), options.algo);
            rest = rest.subspan(n);
          }
        } else {
          gc->allreduce_sum(flat, options.algo);
        }
      }
      {
        obs::ScopedSpan sp("phase.step", obs::cat::kPhase);
        scale(*ctx, inv_world, flat);
        net->unflatten_grads(flat);
        opt->step(params, lrs.lr(global_iter), *ctx);
      }
      MINSGD_FLIGHT(obs::FlightKind::kStep, obs::FlightOp::kNone, 0, 0,
                    gc->generation(), 0, global_iter);
      // The step is applied: the replica's state is now "global_iter done".
      // Tracked separately from global_iter so a fault later in the
      // iteration still reports a state-consistent position.
      ++steps_done;

      float stats[2] = {static_cast<float>(lres.loss),
                        static_cast<float>(lres.correct)};
      gc->allreduce_sum(std::span<float>(stats, 2), options.algo);
      const double mean_loss =
          stats[0] / static_cast<double>(gc->world());
      if (!has_first) {
        // Round through float so members that later receive the baseline
        // over the wire (joiners) hold the identical double.
        first_loss = static_cast<double>(static_cast<float>(mean_loss));
        has_first = true;
      }
      if (t.detect_divergence &&
          (!std::isfinite(mean_loss) ||
           mean_loss > t.divergence_factor * first_loss)) {
        diverged = true;  // same scalars everywhere: every member agrees
      }

      const std::int64_t window = global_iter / ipw;
      if (gc->rank() == 0) {
        std::lock_guard lk(shared.mu);
        WindowAgg& w = shared.windows[window];
        if (w.iters == 0) w.lr = lrs.lr(window * ipw);
        w.loss_sum += mean_loss;
        w.correct += static_cast<std::int64_t>(stats[1]);
        w.examples += gb;
        ++w.iters;
      }
      ++global_iter;

      const bool boundary = (global_iter % ipw == 0) ||
                            global_iter >= total_iters || diverged;
      if (boundary) {
        if (gc->rank() == 0) {
          const bool eval_now = (window % t.eval_every == 0) ||
                                global_iter >= total_iters || diverged;
          const double acc =
              eval_now ? evaluate(*net, dataset, 256, *ctx) : 0.0;
          std::lock_guard lk(shared.mu);
          shared.windows[window].test_acc = acc;
          if (t.verbose) {
            const WindowAgg& w = shared.windows[window];
            std::printf(
                "window %3lld  world %d  lr %.5f  loss %.4f  test_acc "
                "%.4f\n",
                static_cast<long long>(window), gc->world(), w.lr,
                w.iters ? w.loss_sum / static_cast<double>(w.iters) : 0.0,
                acc);
            std::fflush(stdout);
          }
        }
        gc->barrier();  // keep members aligned across rank 0's evaluation
      }
    };

    for (;;) {
      if (!active) {
        if (!coordinator.await_admission(phys)) break;
        try {
          const auto oc =
              coordinator.reconfigure(phys, has_state ? steps_done : -1);
          if (oc.role == comm::MemberRole::kMember) {
            adopt(oc.view);
            state_sync(oc);
            active = true;
          }
        } catch (const comm::RankFailure&) {
          coordinator.report_death(phys);
          teardown();
        } catch (const comm::FaultError&) {
          coordinator.report_failure(phys);
          teardown();
        } catch (const std::runtime_error&) {
          break;  // run declared failed (deadline / attempt budget)
        }
        continue;
      }

      if (diverged || global_iter >= total_iters) {
        if (gc->rank() == 0) {
          TrainCheckpoint meta;
          meta.global_iter = global_iter;
          meta.epoch = global_iter / ipe;
          meta.iter = global_iter % ipe;
          meta.world = gc->world();
          meta.global_batch = gb;
          meta.rng = Rng(t.init_seed).state();
          std::ostringstream os;
          save_train_checkpoint(os, *net, *opt, meta);
          std::lock_guard lk(shared.mu);
          shared.final_state = os.str();
          shared.final_weights = net->flatten_params();
          shared.iterations = global_iter;
          shared.diverged = diverged;
        }
        coordinator.finish(phys);
        break;
      }

      if (coordinator.reconfig_due(global_iter)) {
        do_reconfig();
        continue;
      }

      try {
        one_iteration();
      } catch (const comm::RankFailure&) {
        coordinator.report_death(phys);
        teardown();
        active = false;  // the slot parks as a replacement standby
      } catch (const comm::CommTimeout&) {
        coordinator.report_failure(phys);
        do_reconfig();
      } catch (const comm::ClusterAborted&) {
        // A peer observed the fault first; its report is already pending.
        do_reconfig();
      }
    }
  };

  try {
    cluster.run(rank_fn);
  } catch (...) {
    if (coordinator.run_failed()) {
      throw std::runtime_error("train_sync_elastic: " +
                               coordinator.fail_reason());
    }
    throw;
  }
  if (coordinator.run_failed()) {
    throw std::runtime_error("train_sync_elastic: " +
                             coordinator.fail_reason());
  }

  ElasticResult out;
  {
    std::lock_guard lk(shared.mu);
    out.final_weights = std::move(shared.final_weights);
    out.final_state = std::move(shared.final_state);
    out.iterations = shared.iterations;
    out.result.diverged = shared.diverged;
    for (const auto& [window, w] : shared.windows) {
      EpochRecord rec;
      rec.epoch = window;
      rec.lr = w.lr;
      rec.train_loss =
          w.iters ? w.loss_sum / static_cast<double>(w.iters) : 0.0;
      rec.train_acc = w.examples ? static_cast<double>(w.correct) /
                                       static_cast<double>(w.examples)
                                 : 0.0;
      rec.test_acc = w.test_acc;
      out.result.epochs.push_back(rec);
      out.result.iterations_run += w.iters;
      if (rec.test_acc > out.result.best_test_acc) {
        out.result.best_test_acc = rec.test_acc;
      }
    }
    if (!out.result.epochs.empty()) {
      out.result.final_test_acc = out.result.epochs.back().test_acc;
    }
  }
  out.reconfigs = coordinator.records();
  out.reconfigurations = static_cast<int>(out.reconfigs.size());
  out.traffic = cluster.total_traffic();
  out.faults = cluster.total_faults();
  // Persist wire traffic past the cluster's lifetime, like the fixed
  // trainer does, so post-run metric snapshots still see it.
  auto& reg = obs::metrics();
  reg.counter("train.traffic.messages").add(out.traffic.messages);
  reg.counter("train.traffic.bytes").add(out.traffic.bytes);
  return out;
}

}  // namespace minsgd::train
