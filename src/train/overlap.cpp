#include "train/overlap.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "comm/cluster.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace minsgd::train {

OverlapAllreducer::OverlapAllreducer(nn::Network& net,
                                     comm::Communicator& comm,
                                     std::int64_t bucket_bytes,
                                     comm::AllreduceAlgo algo)
    : net_(net), engine_(comm), algo_(algo) {
  if (bucket_bytes < 0 || (bucket_bytes > 0 && bucket_bytes < 4)) {
    throw std::invalid_argument(
        "OverlapAllreducer: bucket_bytes must be 0 (single bucket) or >= 4");
  }
  // Map every top-level layer to its contiguous range of the flat gradient
  // (params() walks layers in order, so flatten offsets accumulate).
  std::size_t off = 0;
  layers_.resize(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) {
    LayerRange& lr = layers_[i];
    lr.lo = off;
    for (const auto& p : net.layer(i).params()) {
      const auto n = static_cast<std::size_t>(p.grad->numel());
      lr.slots.push_back({p.grad, off, n});
      off += n;
    }
    lr.hi = off;
  }
  flat_.resize(off);
  bucket_floats_ = bucket_bytes == 0 ? off
                                     : static_cast<std::size_t>(bucket_bytes) / 4;
  const std::size_t buckets =
      (off == 0 || bucket_floats_ == 0)
          ? 0
          : (off + bucket_floats_ - 1) / bucket_floats_;
  bucket_fill_.assign(buckets, 0);
  launched_.assign(buckets, 0);
  handles_.reserve(buckets);
  net_.set_grad_ready_hook(
      [this](std::size_t layer_index, nn::Layer&) { on_layer_ready(layer_index); });
}

OverlapAllreducer::~OverlapAllreducer() { net_.set_grad_ready_hook(nullptr); }

void OverlapAllreducer::begin_iteration() {
  std::fill(bucket_fill_.begin(), bucket_fill_.end(), 0);
  std::fill(launched_.begin(), launched_.end(), 0);
  handles_.clear();
}

std::size_t OverlapAllreducer::bucket_size(std::size_t bucket) const {
  const std::size_t lo = bucket * bucket_floats_;
  return std::min(bucket_floats_, flat_.size() - lo);
}

void OverlapAllreducer::launch(std::size_t bucket) {
  launched_[bucket] = 1;
  handles_.push_back(engine_.allreduce_sum_async(
      std::span<float>(flat_).subspan(bucket * bucket_floats_,
                                      bucket_size(bucket)),
      algo_));
}

void OverlapAllreducer::on_layer_ready(std::size_t layer_index) {
  const LayerRange& lr = layers_.at(layer_index);
  for (const auto& s : lr.slots) {
    copy(s.grad->span(), std::span<float>(flat_).subspan(s.offset, s.numel));
  }
  if (lr.lo == lr.hi) return;
  // Credit the reported floats to every bucket the layer's range overlaps;
  // a bucket launches the moment its full extent has been credited. Bucket
  // boundaries are pure flat offsets, so a bucket spanning two layers waits
  // for both, and the same parameter bytes are never credited twice (the
  // hook fires once per layer per backward).
  const std::size_t first = lr.lo / bucket_floats_;
  const std::size_t last = (lr.hi - 1) / bucket_floats_;
  for (std::size_t k = first; k <= last; ++k) {
    const std::size_t b_lo = k * bucket_floats_;
    const std::size_t b_hi = b_lo + bucket_size(k);
    bucket_fill_[k] +=
        std::min(lr.hi, b_hi) - std::max(lr.lo, b_lo);
    if (bucket_fill_[k] == bucket_size(k) && !launched_[k]) launch(k);
  }
}

std::span<float> OverlapAllreducer::finish() {
  // Defensive flush: with the hook wired to every top-level layer, all
  // buckets launched during backward. Content, not order, determines each
  // bucket's result, so a late launch is still bit-exact.
  for (std::size_t k = 0; k < launched_.size(); ++k) {
    if (!launched_[k]) launch(k);
  }
  obs::ScopedSpan sp;
  if (obs::tracer().enabled()) {
    sp.start("phase.allreduce.async", obs::cat::kPhase);
    sp.set_bytes(static_cast<std::int64_t>(flat_.size()) * 4);
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& h : handles_) h.wait();  // rethrows the first failure
  exposed_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  return flat_;
}

}  // namespace minsgd::train
