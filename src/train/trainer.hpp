// Training loops: single-process and synchronous data-parallel.
//
// train_single is the sequential reference. train_sync_data_parallel runs P
// replicas on a SimCluster, allreduces gradient sums each iteration, and
// applies identical optimizer steps on every rank — the paper's Figure 2(a)
// structure with the master replaced by an allreduce. The two produce the
// same weights for the same global batch when the model has no per-replica
// stochastic state (no dropout, no per-replica BN batches); that is the
// "sequential consistency" property the paper leans on, and it is asserted
// by the integration tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "comm/cluster.hpp"
#include "data/loader.hpp"
#include "data/synthetic.hpp"
#include "nn/network.hpp"
#include "optim/optimizer.hpp"
#include "optim/schedule.hpp"
#include "train/metrics.hpp"

namespace minsgd::train {

struct TrainOptions {
  std::int64_t global_batch = 64;
  std::int64_t epochs = 5;
  std::optional<data::AugmentConfig> augment;  // weak augmentation if set
  std::uint64_t init_seed = 7;
  /// Evaluate on the test split every `eval_every` epochs (and at the end).
  std::int64_t eval_every = 1;
  /// Abort when the train loss goes non-finite or explodes beyond
  /// `divergence_factor` x the initial loss (mirrors the paper's 0.001
  /// accuracy rows for diverged LR settings in Table 5).
  bool detect_divergence = true;
  double divergence_factor = 10.0;
  /// Print one line per epoch to stdout.
  bool verbose = false;
  /// Gradient bucketing for the distributed trainer: the flat gradient is
  /// allreduced in buckets of at most this many bytes (0 = one bucket).
  /// This is the structure that lets real systems overlap communication
  /// with the tail of the backward pass (Das et al. 2016, Goyal et al.
  /// 2017); here it trades per-iteration message count against pipeline
  /// granularity, observable through the traffic meter.
  std::int64_t bucket_bytes = 0;
  /// Overlap gradient allreduce with backward compute: each bucket's
  /// allreduce launches on a per-rank comm worker thread the moment
  /// backward has finalized every gradient in it, and the optimizer step
  /// waits on all of them. Bucket boundaries and reduction order are
  /// identical to the serial bucketed path, so with the same seed and
  /// bucket_bytes the trained weights are bit-identical to overlap off —
  /// the overlap determinism tests enforce exactly that. Incompatible with
  /// compress_one_bit. Ignored by train_single.
  bool overlap_comm = false;
  /// 1-bit SGD gradient compression with error feedback (Seide et al.
  /// 2014), the bandwidth-side baseline the paper contrasts with its
  /// latency-side approach. Each rank quantizes its local gradient to sign
  /// bits + two scales, payloads are exchanged with an allgather, and every
  /// rank reconstructs and averages — ~32x less gradient traffic, at the
  /// cost of quantization noise (and no sequential consistency).
  bool compress_one_bit = false;
  /// Gradient accumulation for the single-process trainer: each optimizer
  /// step averages the gradients of this many consecutive `global_batch`
  /// micro-batches, emulating an effective batch of
  /// global_batch * accumulation_steps without the memory. Equivalent to
  /// training at the large batch directly for deterministic models (the
  /// epoch permutation makes consecutive micro-batches exactly the large
  /// batch's shards).
  std::int64_t accumulation_steps = 1;
  /// Intra-op compute thread budget. train_single gives the whole budget to
  /// its one replica; train_sync_data_parallel (and the other multi-replica
  /// trainers) split it across rank/worker threads via ClusterOptions so the
  /// total number of live pool workers never exceeds it. 0 means
  /// ComputeContext::default_threads() (MINSGD_THREADS env var, else
  /// hardware concurrency). Chunking is thread-count-invariant, so trained
  /// weights are bit-identical for any value.
  std::size_t compute_threads = 0;
};

/// Sequential reference trainer.
TrainResult train_single(nn::Network& net, optim::Optimizer& opt,
                         const optim::LrSchedule& schedule,
                         const data::SyntheticImageNet& dataset,
                         const TrainOptions& options);

struct DistResult {
  TrainResult result;           // metrics from rank 0's replica
  comm::TrafficStats traffic;   // total wire traffic of the run
  std::int64_t iterations = 0;  // global iterations executed
  /// Rank 0's replica weights after the final step (flatten_params()
  /// layout) — the bit-exactness witness the determinism tests compare.
  std::vector<float> final_weights;
  /// Rank 0, summed over iterations: gradient-allreduce time the iteration
  /// actually waited on (exposed), and total collective execution time
  /// (hidden + exposed). Equal when overlap_comm is off; their ratio is
  /// the exposed-communication fraction bench_ablation_overlap reports.
  std::int64_t exposed_comm_ns = 0;
  std::int64_t total_comm_ns = 0;
};

/// Synchronous data-parallel trainer over `world` simulated ranks.
/// `model_factory` / `opt_factory` build one replica per rank; replicas are
/// initialized identically from options.init_seed.
DistResult train_sync_data_parallel(
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const std::function<std::unique_ptr<optim::Optimizer>()>& opt_factory,
    const optim::LrSchedule& schedule, const data::SyntheticImageNet& dataset,
    const TrainOptions& options, int world,
    comm::AllreduceAlgo algo = comm::AllreduceAlgo::kRing);

}  // namespace minsgd::train
