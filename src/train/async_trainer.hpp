// Asynchronous parameter-server trainer (the Downpour-style baseline).
//
// Each worker loops independently: pull weights, compute a gradient on its
// own shard, push it; the server applies updates first-come-first-served.
// No barriers, no allreduce — and no sequential consistency: the result
// depends on interleaving, and stale gradients destabilize training at
// scale, which is the paper's stated reason for preferring synchronous SGD.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "data/synthetic.hpp"
#include "nn/network.hpp"
#include "train/trainer.hpp"

namespace minsgd::train {

struct AsyncResult {
  double final_test_acc = 0.0;
  double final_train_loss = 0.0;
  std::int64_t updates_applied = 0;
  std::int64_t max_staleness = 0;
  bool diverged = false;
};

/// Runs `workers` asynchronous workers for `options.epochs` epochs of the
/// dataset (each worker covers 1/workers of each epoch). The server applies
/// plain SGD with the schedule evaluated at its global update counter.
AsyncResult train_async_param_server(
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const optim::LrSchedule& schedule, const data::SyntheticImageNet& dataset,
    const TrainOptions& options, int workers);

}  // namespace minsgd::train
