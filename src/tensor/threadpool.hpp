// ThreadPool: the fixed-size worker pool ComputeContext builds on.
//
// A pool with a blocking task queue plus the thread-local "in parallel
// region" flag that makes nested parallel constructs run inline. Kernels do
// not use the pool directly anymore — they go through ComputeContext
// (tensor/context.hpp), which owns a pool per thread budget and adds the
// deterministic chunking policy. On a 1-core machine everything degenerates
// to serial execution with negligible overhead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace minsgd {

/// Fixed-size worker pool. Tasks are void() callables.
class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; returns immediately.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Tasks completed since construction (metrics gauge feed).
  std::int64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Tasks queued but not yet picked up by a worker.
  std::int64_t queue_depth() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::atomic<std::int64_t> tasks_executed_{0};
};

namespace detail {

/// True while the calling thread executes inside a parallel region — a pool
/// worker task, or a caller thread participating in its own region. Nested
/// parallel constructs check this and run inline (re-entering a pool from a
/// worker could deadlock; re-entering from a rank thread oversubscribes).
bool in_parallel_region();

/// RAII marker for a caller thread's participation in a region.
class ParallelRegionGuard {
 public:
  ParallelRegionGuard();
  ~ParallelRegionGuard();
  ParallelRegionGuard(const ParallelRegionGuard&) = delete;
  ParallelRegionGuard& operator=(const ParallelRegionGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace detail

/// Runs fn(lo, hi) over [begin, end) using the process-wide default
/// ComputeContext. Kept for callers with no context to thread through;
/// defined in context.cpp.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t, std::int64_t)>& fn,
                  std::int64_t grain = 1024);

}  // namespace minsgd
