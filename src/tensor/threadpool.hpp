// ThreadPool / parallel_for: intra-op parallelism for kernels.
//
// A fixed-size pool with a blocking task queue plus a fork-join
// parallel_for that chunks an index range across workers. On a 1-core
// machine this degenerates to serial execution with negligible overhead;
// kernels are written against parallel_for so they scale when cores exist.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace minsgd {

/// Fixed-size worker pool. Tasks are void() callables.
class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; returns immediately.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs fn(i) for i in [begin, end), chunked over the pool.
/// `grain` is the minimum chunk size; small ranges run inline.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t, std::int64_t)>& fn,
                  std::int64_t grain = 1024);

}  // namespace minsgd
