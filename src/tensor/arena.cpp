#include "tensor/arena.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace minsgd {

namespace {

// 64-byte alignment keeps every arena slice on a cacheline boundary.
constexpr std::int64_t kAlignFloats = 16;

std::int64_t align_up(std::int64_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

bool intervals_overlap(const ArenaItem& a, const ArenaItem& b) {
  return a.def <= b.last && b.def <= a.last;
}

}  // namespace

void TensorArena::build(std::vector<ArenaItem> items) {
  items_ = std::move(items);
  const std::size_t n = items_.size();
  offsets_.assign(n, 0);
  raw_ = 0;
  for (const auto& it : items_) {
    MINSGD_CHECK(it.elems >= it.shape.numel() && it.def <= it.last,
                 "TensorArena: bad item (elems ", it.elems, ", [", it.def,
                 ",", it.last, "])");
    raw_ += align_up(it.elems);
  }

  // Greedy best-fit: place items largest-first (id breaks ties, so the
  // layout is deterministic). For each item, collect the already-placed
  // items whose liveness intervals overlap it — those are the only bytes it
  // must avoid — sort them by offset, and scan the gaps between them for
  // the smallest one that fits. No gap => append at the high-water mark.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (items_[a].elems != items_[b].elems) {
      return items_[a].elems > items_[b].elems;
    }
    return a < b;
  });

  std::vector<std::size_t> placed;
  placed.reserve(n);
  total_ = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> busy;  // offset, size
  for (const std::size_t id : order) {
    const std::int64_t sz = align_up(items_[id].elems);
    busy.clear();
    for (const std::size_t other : placed) {
      if (intervals_overlap(items_[id], items_[other])) {
        busy.emplace_back(offsets_[other], align_up(items_[other].elems));
      }
    }
    std::sort(busy.begin(), busy.end());

    std::int64_t best_off = -1;
    std::int64_t best_gap = std::numeric_limits<std::int64_t>::max();
    std::int64_t cursor = 0;  // end of the highest busy byte seen so far
    for (const auto& [off, bsz] : busy) {
      if (off > cursor) {
        const std::int64_t gap = off - cursor;
        if (gap >= sz && gap < best_gap) {
          best_gap = gap;
          best_off = cursor;
        }
      }
      cursor = std::max(cursor, off + bsz);
    }
    offsets_[id] = best_off >= 0 ? best_off : cursor;
    total_ = std::max(total_, offsets_[id] + sz);
    placed.push_back(id);
  }

  block_.assign(static_cast<std::size_t>(total_), 0.0f);
  views_.assign(n, Tensor{});
  for (std::size_t id = 0; id < n; ++id) {
    views_[id].bind(block_.data() + offsets_[id], items_[id].elems,
                    items_[id].shape);
  }
}

void TensorArena::release() {
  views_.clear();
  offsets_.clear();
  items_.clear();
  block_.clear();
  block_.shrink_to_fit();
  total_ = 0;
  raw_ = 0;
}

}  // namespace minsgd
