// Elementwise / BLAS-1 style operations used across the stack.
//
// These operate on spans so they serve tensors, raw parameter buffers, and
// communication staging areas alike. All are single-precision.
#pragma once

#include <cstdint>
#include <span>

namespace minsgd {

class ComputeContext;

/// y += alpha * x  (sizes must match).
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void scale(float alpha, std::span<float> x);

/// dot product.
double dot(std::span<const float> x, std::span<const float> y);

/// Euclidean norm, accumulated in double for stability.
double l2_norm(std::span<const float> x);

/// Sum of elements (double accumulator).
double sum(std::span<const float> x);

/// Max element; x must be non-empty.
float max_value(std::span<const float> x);

/// y = x (sizes must match).
void copy(std::span<const float> x, std::span<float> y);

/// z = x + y elementwise.
void add(std::span<const float> x, std::span<const float> y,
         std::span<float> z);

/// z = x * y elementwise (Hadamard).
void hadamard(std::span<const float> x, std::span<const float> y,
              std::span<float> z);

/// In-place ReLU.
void relu_inplace(std::span<float> x);

/// Numerically stable in-place softmax over each row of an (rows x cols)
/// row-major matrix.
void softmax_rows(std::span<float> x, std::int64_t rows, std::int64_t cols);

/// True iff every element is finite.
bool all_finite(std::span<const float> x);

// Context-aware overloads. Elementwise ops write disjoint ranges so they
// parallelize freely; the reductions (sum/dot/l2_norm) keep one double
// partial per deterministic chunk and combine partials in chunk order, so
// all of these are bit-identical for any thread count.

void axpy(const ComputeContext& ctx, float alpha, std::span<const float> x,
          std::span<float> y);
void scale(const ComputeContext& ctx, float alpha, std::span<float> x);
double dot(const ComputeContext& ctx, std::span<const float> x,
           std::span<const float> y);
double l2_norm(const ComputeContext& ctx, std::span<const float> x);
double sum(const ComputeContext& ctx, std::span<const float> x);
void copy(const ComputeContext& ctx, std::span<const float> x,
          std::span<float> y);
void add(const ComputeContext& ctx, std::span<const float> x,
         std::span<const float> y, std::span<float> z);
void hadamard(const ComputeContext& ctx, std::span<const float> x,
              std::span<const float> y, std::span<float> z);
void relu_inplace(const ComputeContext& ctx, std::span<float> x);

}  // namespace minsgd
