#include "tensor/threadpool.hpp"

#include <algorithm>

namespace minsgd {
namespace {
// Set while executing inside a parallel region (worker task or caller
// participation); nested parallel constructs run inline instead of
// re-entering a pool (which could deadlock if every worker blocked waiting
// for its own sub-chunks).
thread_local bool g_in_parallel_region = false;
}  // namespace

namespace detail {

bool in_parallel_region() { return g_in_parallel_region; }

ParallelRegionGuard::ParallelRegionGuard() : prev_(g_in_parallel_region) {
  g_in_parallel_region = true;
}

ParallelRegionGuard::~ParallelRegionGuard() { g_in_parallel_region = prev_; }

}  // namespace detail

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

std::int64_t ThreadPool::queue_depth() const {
  std::lock_guard lk(mu_);
  return static_cast<std::int64_t>(tasks_.size());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    {
      detail::ParallelRegionGuard in_region;
      task();
    }
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace minsgd
