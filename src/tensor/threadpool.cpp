#include "tensor/threadpool.hpp"

#include <algorithm>
#include <atomic>

namespace minsgd {
namespace {
// Set while executing inside a pool worker; nested parallel_for calls run
// inline instead of re-entering the pool (which could deadlock if every
// worker blocked waiting for its own sub-chunks).
thread_local bool g_inside_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    g_inside_pool_worker = true;
    task();
    g_inside_pool_worker = false;
    {
      std::lock_guard lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t, std::int64_t)>& fn,
                  std::int64_t grain) {
  if (end <= begin) return;
  const std::int64_t n = end - begin;
  auto& pool = ThreadPool::global();
  const auto num_workers = static_cast<std::int64_t>(pool.size());
  if (n <= grain || num_workers <= 1 || g_inside_pool_worker) {
    fn(begin, end);
    return;
  }
  const std::int64_t chunks = std::min(num_workers, (n + grain - 1) / grain);
  const std::int64_t step = (n + chunks - 1) / chunks;
  const std::int64_t total = (n + step - 1) / step;
  std::atomic<std::int64_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  for (std::int64_t c = begin; c < end; c += step) {
    const std::int64_t lo = c;
    const std::int64_t hi = std::min(end, c + step);
    pool.submit([&, lo, hi] {
      fn(lo, hi);
      if (done.fetch_add(1) + 1 == total) {
        std::lock_guard lk(mu);
        cv.notify_one();
      }
    });
  }
  std::unique_lock lk(mu);
  cv.wait(lk, [&] { return done.load() == total; });
}

}  // namespace minsgd
