#include "tensor/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace minsgd {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_) {
    has_cached_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_int: n == 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

void Rng::fill_normal(std::span<float> out, float mean, float stddev) {
  for (auto& v : out) v = static_cast<float>(normal(mean, stddev));
}

void Rng::fill_uniform(std::span<float> out, float lo, float hi) {
  for (auto& v : out) v = static_cast<float>(uniform(lo, hi));
}

RngState Rng::state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.cached_normal = cached_normal_;
  st.has_cached = has_cached_;
  return st;
}

void Rng::set_state(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_ = state.has_cached;
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Hash the current state with the stream id so streams are decorrelated.
  std::uint64_t x = s_[0] ^ (stream_id * 0x9e3779b97f4a7c15ull + 0x85ebca6bull);
  return Rng(splitmix64(x));
}

}  // namespace minsgd
