// ComputeContext: a per-caller intra-op parallelism handle.
//
// A ComputeContext bundles a thread budget, a private worker pool, and a
// deterministic chunking policy, and flows from the trainers through
// Network::forward/backward into every Layer, the element-wise ops, the
// optimizer steps, and the augmentation pipeline. Two rules make the whole
// stack bit-identical for any thread count:
//
//   1. Chunk boundaries are a function of (range size, grain) ONLY — never
//      of threads(). chunk_count caps the count at kMaxChunks so reduction
//      partials stay small.
//   2. Reductions compute one partial per chunk and combine the partials in
//      fixed chunk order on the calling thread.
//
// Threads pull chunks from a shared atomic cursor, so which thread runs a
// chunk varies run to run — but since every chunk's work and every combine
// order is fixed, the results do not. A context with T threads owns T-1
// pool workers; the calling thread executes chunks too, so a SimCluster
// rank thread counts toward its own budget. Nested parallel regions run
// inline (the in-region flag from threadpool.hpp), which is what lets P
// rank threads each drive their own context without oversubscription.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "tensor/threadpool.hpp"

namespace minsgd {

/// Snapshot of a context's pool activity (zeros for a 1-thread context).
struct PoolStats {
  std::size_t workers = 0;
  std::int64_t tasks_executed = 0;
  std::int64_t queue_depth = 0;
};

class ComputeContext {
 public:
  /// Upper bound on deterministic chunks per region: reduction code keeps
  /// one partial per chunk, so this caps both partial-buffer memory and the
  /// fixed-order combine cost, independent of how many threads exist.
  static constexpr std::int64_t kMaxChunks = 16;

  /// `threads == 0` resolves to default_threads(). A context with T threads
  /// spawns T-1 pool workers (the caller is the T-th executor); T == 1 owns
  /// no pool and runs everything inline.
  explicit ComputeContext(std::size_t threads = 0);
  ~ComputeContext();

  ComputeContext(const ComputeContext&) = delete;
  ComputeContext& operator=(const ComputeContext&) = delete;

  std::size_t threads() const { return threads_; }
  PoolStats pool_stats() const;

  /// Deterministic chunk count for a range of `n` with minimum chunk size
  /// `grain`: min(kMaxChunks, ceil(n / grain)). Depends only on (n, grain).
  static std::int64_t chunk_count(std::int64_t n, std::int64_t grain = 1);

  /// Half-open bounds of chunk `c` of `num_chunks` over [0, n). Trailing
  /// chunks may be empty (lo == hi).
  static std::pair<std::int64_t, std::int64_t> chunk_bounds(
      std::int64_t n, std::int64_t num_chunks, std::int64_t c);

  /// Runs fn(c, lo, hi) for every non-empty chunk c of [0, n), chunked by
  /// chunk_count(n, grain). Chunks execute concurrently across the pool but
  /// the geometry — and therefore any per-chunk partial a caller combines in
  /// chunk order — is identical for every thread count.
  void for_chunks(
      std::int64_t n, std::int64_t grain,
      const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn)
      const;

  /// for_chunks with an explicit chunk count (clamped to [1, n]). The caller
  /// must derive `num_chunks` from problem shape only (never threads()) to
  /// keep the determinism guarantee — used e.g. by Conv2d::backward to cap
  /// per-chunk dW partial memory.
  void for_chunks_n(
      std::int64_t n, std::int64_t num_chunks,
      const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn)
      const;

  /// Runs fn(lo, hi) over [begin, end) in deterministic chunks. The drop-in
  /// replacement for the old global-pool parallel_for; safe for disjoint
  /// writes (no reduction).
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t, std::int64_t)>& fn,
                    std::int64_t grain = 1024) const;

  /// Process-wide context sized default_threads(), used by code paths that
  /// predate explicit plumbing (default arguments on Layer::forward etc.).
  /// SimCluster rank threads never touch it — each rank gets its own
  /// budgeted context.
  static ComputeContext& default_ctx();

  /// MINSGD_THREADS environment variable if set and positive, else
  /// hardware_concurrency(). The total intra-op budget a process splits.
  static std::size_t default_threads();

 private:
  std::size_t threads_;
  std::unique_ptr<ThreadPool> pool_;  // null when threads_ == 1
};

}  // namespace minsgd
