// Tensor: dense float32 storage with row-major layout.
//
// The minimal tensor a DNN training stack needs: owning, contiguous,
// value-semantic (copies copy data), with convenience indexing for the
// layouts used by layers (NCHW activations, OI/OIHW weights).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/check.hpp"
#include "tensor/shape.hpp"

namespace minsgd {

/// Dense row-major float tensor. Rank <= 4. Copy copies the data.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates zero-initialized storage for `shape`.
  explicit Tensor(Shape shape);

  /// Allocates and fills with `value`.
  Tensor(Shape shape, float value);

  /// Builds from explicit data (size must match shape.numel()).
  Tensor(Shape shape, std::vector<float> data);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  // Indexing is the innermost-loop hot path, so bounds checks are
  // MINSGD_DCHECK: free in release builds, armed in Debug or with
  // -DMINSGD_DCHECK=ON (scripts/check_all.sh arms them in the
  // address,undefined tier).
  float& operator[](std::int64_t i) {
    MINSGD_DCHECK(i >= 0 && i < numel(), "Tensor[", i, "] of ", numel());
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    MINSGD_DCHECK(i >= 0 && i < numel(), "Tensor[", i, "] of ", numel());
    return data_[static_cast<std::size_t>(i)];
  }

  /// 2-D indexing (rows, cols) for matrices.
  float& at(std::int64_t r, std::int64_t c) {
    const std::int64_t i = r * shape_[1] + c;
    MINSGD_DCHECK(i >= 0 && i < numel(),
                  "Tensor::at(", r, ",", c, ") out of bounds");
    return data_[static_cast<std::size_t>(i)];
  }
  float at(std::int64_t r, std::int64_t c) const {
    const std::int64_t i = r * shape_[1] + c;
    MINSGD_DCHECK(i >= 0 && i < numel(),
                  "Tensor::at(", r, ",", c, ") out of bounds");
    return data_[static_cast<std::size_t>(i)];
  }

  /// 4-D NCHW indexing.
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    const std::int64_t i =
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
    MINSGD_DCHECK(i >= 0 && i < numel(), "Tensor::at(", n, ",", c, ",", h,
                  ",", w, ") out of bounds");
    return data_[static_cast<std::size_t>(i)];
  }
  float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
    const std::int64_t i =
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
    MINSGD_DCHECK(i >= 0 && i < numel(), "Tensor::at(", n, ",", c, ",", h,
                  ",", w, ") out of bounds");
    return data_[static_cast<std::size_t>(i)];
  }

  /// Sets every element to `value`.
  void fill(float value);

  /// Sets every element to zero.
  void zero() { fill(0.0f); }

  /// Reinterprets the same data under a new shape (numel must match).
  Tensor reshaped(Shape new_shape) const;

  /// Resizes to `shape`, zero-filling, only reallocating when numel changes.
  void resize(Shape shape);

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace minsgd
