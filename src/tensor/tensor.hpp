// Tensor: dense float32 storage with row-major layout.
//
// The minimal tensor a DNN training stack needs: contiguous,
// value-semantic (copies copy data), with convenience indexing for the
// layouts used by layers (NCHW activations, OI/OIHW weights).
//
// Storage comes in two modes:
//   * owning (default): the tensor owns a heap buffer; resize() reallocates
//     when numel changes.
//   * bound: the tensor is a view over caller-provided storage — a
//     TensorArena slice (tensor/arena.hpp). bind() installs the pointer and
//     a float capacity; resize() may reshape within that capacity but never
//     reallocates (exceeding it is a MINSGD_CHECK failure, which is how a
//     stale memory plan announces itself). Copying a bound tensor yields an
//     owning deep copy; assigning *into* a bound tensor copies into the
//     bound storage.
//
// Every owning allocation bumps the `tensor.allocs` / `tensor.alloc_bytes`
// metrics counters, so the memory plan's allocator-traffic reduction is a
// measured quantity (see bench_memplan), not a claim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/check.hpp"
#include "tensor/shape.hpp"

namespace minsgd {

/// Dense row-major float tensor. Rank <= 4. Copy copies the data.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates zero-initialized storage for `shape`.
  explicit Tensor(Shape shape);

  /// Allocates and fills with `value`.
  Tensor(Shape shape, float value);

  /// Builds from explicit data (size must match shape.numel()).
  Tensor(Shape shape, std::vector<float> data);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor() = default;

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }

  std::span<float> span() { return {ptr_, static_cast<std::size_t>(numel_)}; }
  std::span<const float> span() const {
    return {ptr_, static_cast<std::size_t>(numel_)};
  }

  // Indexing is the innermost-loop hot path, so bounds checks are
  // MINSGD_DCHECK: free in release builds, armed in Debug or with
  // -DMINSGD_DCHECK=ON (scripts/check_all.sh arms them in the
  // address,undefined tier).
  float& operator[](std::int64_t i) {
    MINSGD_DCHECK(i >= 0 && i < numel(), "Tensor[", i, "] of ", numel());
    return ptr_[i];
  }
  float operator[](std::int64_t i) const {
    MINSGD_DCHECK(i >= 0 && i < numel(), "Tensor[", i, "] of ", numel());
    return ptr_[i];
  }

  /// 2-D indexing (rows, cols) for matrices.
  float& at(std::int64_t r, std::int64_t c) {
    const std::int64_t i = r * shape_[1] + c;
    MINSGD_DCHECK(i >= 0 && i < numel(),
                  "Tensor::at(", r, ",", c, ") out of bounds");
    return ptr_[i];
  }
  float at(std::int64_t r, std::int64_t c) const {
    const std::int64_t i = r * shape_[1] + c;
    MINSGD_DCHECK(i >= 0 && i < numel(),
                  "Tensor::at(", r, ",", c, ") out of bounds");
    return ptr_[i];
  }

  /// 4-D NCHW indexing.
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    const std::int64_t i =
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
    MINSGD_DCHECK(i >= 0 && i < numel(), "Tensor::at(", n, ",", c, ",", h,
                  ",", w, ") out of bounds");
    return ptr_[i];
  }
  float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
    const std::int64_t i =
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
    MINSGD_DCHECK(i >= 0 && i < numel(), "Tensor::at(", n, ",", c, ",", h,
                  ",", w, ") out of bounds");
    return ptr_[i];
  }

  /// Sets every element to `value`.
  void fill(float value);

  /// Sets every element to zero.
  void zero() { fill(0.0f); }

  /// Reinterprets the same data under a new shape (numel must match).
  Tensor reshaped(Shape new_shape) const;

  /// Resizes to `shape`, zero-filling when numel changes (same-numel calls
  /// reshape in place and preserve the data). Owning tensors reallocate only
  /// when numel changes; bound tensors never reallocate and check-fail if
  /// `shape` exceeds the bound capacity.
  void resize(Shape shape);

  /// True when this tensor views external storage instead of owning it.
  bool bound() const { return bound_cap_ >= 0; }

  /// Float capacity of the bound storage (-1 when owning).
  std::int64_t bound_capacity() const { return bound_cap_; }

  /// Rebinds this tensor onto caller-owned storage of `capacity` floats,
  /// dropping any owned data. `shape.numel()` must fit the capacity. The
  /// storage must outlive the binding (TensorArena guarantees this for the
  /// plan's lifetime).
  void bind(float* storage, std::int64_t capacity, const Shape& shape);

 private:
  Shape shape_;
  std::vector<float> data_;      // owning storage (empty while bound)
  float* ptr_ = nullptr;         // data_.data() or the bound storage
  std::int64_t numel_ = 0;
  std::int64_t bound_cap_ = -1;  // >= 0 iff bound
};

}  // namespace minsgd
