#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "core/check.hpp"
#include "tensor/context.hpp"

namespace minsgd {
namespace {
// BLAS-1 span-size agreement is a caller invariant (layers pass views of
// tensors they shaped themselves), so violations abort via the check layer
// rather than throwing.
void check_same_size(std::size_t a, std::size_t b, const char* what) {
  MINSGD_CHECK(a == b, what, ": size mismatch (", a, " vs ", b, ")");
}

// Elementwise ops amortize fork-join over this many elements per chunk.
constexpr std::int64_t kElemGrain = 16384;
}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  check_same_size(x.size(), y.size(), "axpy");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(float alpha, std::span<float> x) {
  for (auto& v : x) v *= alpha;
}

double dot(std::span<const float> x, std::span<const float> y) {
  check_same_size(x.size(), y.size(), "dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

double l2_norm(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(acc);
}

double sum(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += v;
  return acc;
}

float max_value(std::span<const float> x) {
  MINSGD_CHECK(!x.empty(), "max_value: empty span");
  return *std::max_element(x.begin(), x.end());
}

void copy(std::span<const float> x, std::span<float> y) {
  check_same_size(x.size(), y.size(), "copy");
  std::memcpy(y.data(), x.data(), x.size() * sizeof(float));
}

void add(std::span<const float> x, std::span<const float> y,
         std::span<float> z) {
  check_same_size(x.size(), y.size(), "add");
  check_same_size(x.size(), z.size(), "add");
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] + y[i];
}

void hadamard(std::span<const float> x, std::span<const float> y,
              std::span<float> z) {
  check_same_size(x.size(), y.size(), "hadamard");
  check_same_size(x.size(), z.size(), "hadamard");
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] * y[i];
}

void relu_inplace(std::span<float> x) {
  for (auto& v : x) v = v > 0.0f ? v : 0.0f;
}

void softmax_rows(std::span<float> x, std::int64_t rows, std::int64_t cols) {
  MINSGD_CHECK(static_cast<std::int64_t>(x.size()) == rows * cols,
               "softmax_rows: size mismatch (", x.size(), " vs ", rows, "x",
               cols, ")");
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = x.data() + r * cols;
    float m = row[0];
    for (std::int64_t c = 1; c < cols; ++c) m = std::max(m, row[c]);
    double denom = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - m);
      denom += row[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::int64_t c = 0; c < cols; ++c) row[c] *= inv;
  }
}

bool all_finite(std::span<const float> x) {
  for (float v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void axpy(const ComputeContext& ctx, float alpha, std::span<const float> x,
          std::span<float> y) {
  check_same_size(x.size(), y.size(), "axpy");
  ctx.parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) y[i] += alpha * x[i];
      },
      kElemGrain);
}

void scale(const ComputeContext& ctx, float alpha, std::span<float> x) {
  ctx.parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) x[i] *= alpha;
      },
      kElemGrain);
}

double dot(const ComputeContext& ctx, std::span<const float> x,
           std::span<const float> y) {
  check_same_size(x.size(), y.size(), "dot");
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  const std::int64_t chunks = ComputeContext::chunk_count(n, kElemGrain);
  if (chunks <= 0) return 0.0;
  double partial[ComputeContext::kMaxChunks] = {};
  ctx.for_chunks_n(n, chunks,
                   [&](std::int64_t c, std::int64_t lo, std::int64_t hi) {
                     double acc = 0.0;
                     for (std::int64_t i = lo; i < hi; ++i) {
                       acc += static_cast<double>(x[i]) *
                              static_cast<double>(y[i]);
                     }
                     partial[c] = acc;
                   });
  double acc = 0.0;
  for (std::int64_t c = 0; c < chunks; ++c) acc += partial[c];
  return acc;
}

double sum(const ComputeContext& ctx, std::span<const float> x) {
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  const std::int64_t chunks = ComputeContext::chunk_count(n, kElemGrain);
  if (chunks <= 0) return 0.0;
  double partial[ComputeContext::kMaxChunks] = {};
  ctx.for_chunks_n(n, chunks,
                   [&](std::int64_t c, std::int64_t lo, std::int64_t hi) {
                     double acc = 0.0;
                     for (std::int64_t i = lo; i < hi; ++i) acc += x[i];
                     partial[c] = acc;
                   });
  double acc = 0.0;
  for (std::int64_t c = 0; c < chunks; ++c) acc += partial[c];
  return acc;
}

double l2_norm(const ComputeContext& ctx, std::span<const float> x) {
  return std::sqrt(dot(ctx, x, x));
}

void copy(const ComputeContext& ctx, std::span<const float> x,
          std::span<float> y) {
  check_same_size(x.size(), y.size(), "copy");
  ctx.parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        std::memcpy(y.data() + lo, x.data() + lo,
                    static_cast<std::size_t>(hi - lo) * sizeof(float));
      },
      kElemGrain);
}

void add(const ComputeContext& ctx, std::span<const float> x,
         std::span<const float> y, std::span<float> z) {
  check_same_size(x.size(), y.size(), "add");
  check_same_size(x.size(), z.size(), "add");
  ctx.parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) z[i] = x[i] + y[i];
      },
      kElemGrain);
}

void hadamard(const ComputeContext& ctx, std::span<const float> x,
              std::span<const float> y, std::span<float> z) {
  check_same_size(x.size(), y.size(), "hadamard");
  check_same_size(x.size(), z.size(), "hadamard");
  ctx.parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) z[i] = x[i] * y[i];
      },
      kElemGrain);
}

void relu_inplace(const ComputeContext& ctx, std::span<float> x) {
  ctx.parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          x[i] = x[i] > 0.0f ? x[i] : 0.0f;
        }
      },
      kElemGrain);
}

}  // namespace minsgd
