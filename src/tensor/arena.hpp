// TensorArena: one backing allocation shared by many logical tensors,
// laid out with liveness-based aliasing.
//
// The execution planner (nn/plan.hpp) walks a network once per input
// geometry and emits one ArenaItem per logical tensor — activation,
// gradient, or per-call scratch — carrying a float count and an inclusive
// liveness interval [def, last] in plan steps. build() assigns offsets with
// a greedy best-fit sweep (the ccv/NNC-style alternative to
// allocate-per-call): items are placed largest-first; two items may share
// bytes iff their intervals do not overlap; among the candidate gaps left
// by already-placed overlapping items the smallest sufficient one wins.
// The result is a single block typically far smaller than the sum of item
// sizes — backward gradient buffers, whose lifetimes form a ping-pong
// chain, collapse into two slots.
//
// Offsets are 16-float (64-byte) aligned so arena slices line up with the
// SIMD microkernels' cacheline expectations. The layout is a pure function
// of the item list, so plan-on runs are reproducible byte-for-byte.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace minsgd {

/// One logical tensor in a memory plan.
struct ArenaItem {
  Shape shape;              // shape the arena view is bound with
  std::int64_t elems = 0;   // floats reserved; >= shape.numel() (chunk-strided
                            // scratch reserves chunks * per-chunk elems)
  std::int32_t def = 0;     // first plan step that writes this tensor
  std::int32_t last = 0;    // last plan step that reads it (inclusive)
};

class TensorArena {
 public:
  /// Computes the aliased layout, allocates the backing block, and binds one
  /// Tensor view per item. Replaces any previous layout (all previously
  /// returned views are rebound).
  void build(std::vector<ArenaItem> items);

  /// Drops the layout and backing block. Outstanding views dangle; callers
  /// (ExecutionPlan) must not use them past this point.
  void release();

  std::size_t size() const { return items_.size(); }

  /// The bound view for item `id`. Valid until the next build()/release().
  Tensor& tensor(std::size_t id) {
    MINSGD_CHECK(id < views_.size(), "TensorArena: bad id ", id);
    return views_[id];
  }

  /// Float offset of item `id` inside the block (tests / debugging).
  std::int64_t offset(std::size_t id) const {
    MINSGD_CHECK(id < offsets_.size(), "TensorArena: bad id ", id);
    return offsets_[id];
  }

  const ArenaItem& item(std::size_t id) const {
    MINSGD_CHECK(id < items_.size(), "TensorArena: bad id ", id);
    return items_[id];
  }

  /// Floats/bytes in the aliased block.
  std::int64_t total_floats() const { return total_; }
  std::int64_t total_bytes() const {
    return total_ * static_cast<std::int64_t>(sizeof(float));
  }

  /// Sum of item sizes with no aliasing — what allocate-per-tensor would
  /// hold live at once. total_bytes()/raw_bytes() is the aliasing ratio.
  std::int64_t raw_floats() const { return raw_; }
  std::int64_t raw_bytes() const {
    return raw_ * static_cast<std::int64_t>(sizeof(float));
  }

 private:
  std::vector<float> block_;
  std::vector<ArenaItem> items_;
  std::vector<std::int64_t> offsets_;
  std::vector<Tensor> views_;
  std::int64_t total_ = 0;
  std::int64_t raw_ = 0;
};

}  // namespace minsgd
