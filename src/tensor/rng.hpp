// Rng: deterministic pseudo-random generation for weights and data.
//
// A splitmix64/xoshiro256** generator. Determinism across platforms matters
// here: the sequential-consistency tests compare a data-parallel run against
// a single-process run bit-for-bit, which requires identical random streams.
#pragma once

#include <cstdint>
#include <span>

namespace minsgd {

/// The full generator state: xoshiro words plus the Box-Muller carry.
/// Capturing the carry matters for exact-resume checkpoints — dropping a
/// cached normal would shift every subsequent draw by one sample.
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  double cached_normal = 0.0;
  bool has_cached = false;
};

/// xoshiro256** seeded via splitmix64. Cheap, reproducible, good quality.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached pair).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Fills `out` with N(mean, stddev) samples.
  void fill_normal(std::span<float> out, float mean, float stddev);

  /// Fills `out` with U[lo, hi) samples.
  void fill_uniform(std::span<float> out, float lo, float hi);

  /// Derives an independent stream (for per-worker/per-shard RNGs).
  Rng split(std::uint64_t stream_id) const;

  /// Snapshot / restore of the exact generator position, so a resumed
  /// training run continues the same random sequence bit-for-bit.
  RngState state() const;
  void set_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace minsgd
