#include "tensor/context.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace minsgd {

ComputeContext::ComputeContext(std::size_t threads)
    : threads_(threads == 0 ? default_threads() : threads) {
  if (threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(threads_ - 1);
  }
}

ComputeContext::~ComputeContext() = default;

PoolStats ComputeContext::pool_stats() const {
  if (!pool_) return {};
  return {pool_->size(), pool_->tasks_executed(), pool_->queue_depth()};
}

std::int64_t ComputeContext::chunk_count(std::int64_t n, std::int64_t grain) {
  if (n <= 0) return 0;
  if (grain < 1) grain = 1;
  return std::min<std::int64_t>(kMaxChunks, (n + grain - 1) / grain);
}

std::pair<std::int64_t, std::int64_t> ComputeContext::chunk_bounds(
    std::int64_t n, std::int64_t num_chunks, std::int64_t c) {
  const std::int64_t step = (n + num_chunks - 1) / num_chunks;
  const std::int64_t lo = std::min(n, c * step);
  const std::int64_t hi = std::min(n, lo + step);
  return {lo, hi};
}

void ComputeContext::for_chunks(
    std::int64_t n, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn)
    const {
  for_chunks_n(n, chunk_count(n, grain), fn);
}

void ComputeContext::for_chunks_n(
    std::int64_t n, std::int64_t num_chunks,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn)
    const {
  if (n <= 0) return;
  const std::int64_t chunks = std::clamp<std::int64_t>(num_chunks, 1, n);

  // Inline path: single chunk, no pool, or already inside a parallel region
  // (nested regions must not re-enter a pool).
  if (chunks == 1 || !pool_ || detail::in_parallel_region()) {
    for (std::int64_t c = 0; c < chunks; ++c) {
      const auto [lo, hi] = chunk_bounds(n, chunks, c);
      if (lo < hi) fn(c, lo, hi);
    }
    return;
  }

  // Work-stealing over a shared cursor: helpers and the caller all pull the
  // next chunk index. The chunk *geometry* is fixed; only the executing
  // thread varies.
  std::atomic<std::int64_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  auto run_chunks = [&] {
    try {
      std::int64_t c;
      while (!failed.load(std::memory_order_relaxed) &&
             (c = next.fetch_add(1, std::memory_order_relaxed)) < chunks) {
        const auto [lo, hi] = chunk_bounds(n, chunks, c);
        if (lo < hi) fn(c, lo, hi);
      }
    } catch (...) {
      failed.store(true, std::memory_order_relaxed);
      std::lock_guard lk(error_mu);
      if (!error) error = std::current_exception();
    }
  };

  const std::int64_t helpers =
      std::min<std::int64_t>(static_cast<std::int64_t>(pool_->size()),
                             chunks - 1);
  std::int64_t done = 0;  // guarded by mu
  std::mutex mu;
  std::condition_variable cv;
  for (std::int64_t h = 0; h < helpers; ++h) {
    pool_->submit([&] {
      run_chunks();
      // A helper's LAST access to this stack frame must happen under mu:
      // the caller cannot observe done == helpers and destroy the frame
      // until the lock is released.
      std::lock_guard lk(mu);
      if (++done == helpers) cv.notify_one();
    });
  }
  {
    // The caller participates; nested parallel calls inside fn run inline.
    detail::ParallelRegionGuard in_region;
    run_chunks();
  }
  {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return done == helpers; });
  }
  if (error) std::rethrow_exception(error);
}

void ComputeContext::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    std::int64_t grain) const {
  if (end <= begin) return;
  for_chunks(end - begin, grain,
             [&](std::int64_t, std::int64_t lo, std::int64_t hi) {
               fn(begin + lo, begin + hi);
             });
}

ComputeContext& ComputeContext::default_ctx() {
  static ComputeContext ctx;
  return ctx;
}

std::size_t ComputeContext::default_threads() {
  if (const char* env = std::getenv("MINSGD_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

// Legacy entry point kept for callers that have no context to thread
// through; chunking and nesting behaviour now match the context policy.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t, std::int64_t)>& fn,
                  std::int64_t grain) {
  ComputeContext::default_ctx().parallel_for(begin, end, fn, grain);
}

}  // namespace minsgd
