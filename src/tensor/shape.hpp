// Shape: a small fixed-capacity dimension vector for dense tensors.
//
// minsgd tensors are dense, row-major (outermost dimension first), and at
// most rank 4 (NCHW activations). Shape is a value type with cheap copies.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <stdexcept>
#include <string>

namespace minsgd {

/// Dense tensor shape, rank 0..4, row-major semantics.
class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Shape() = default;

  Shape(std::initializer_list<std::int64_t> dims) {
    if (dims.size() > kMaxRank) {
      throw std::invalid_argument("Shape: rank > 4 not supported");
    }
    rank_ = dims.size();
    std::size_t i = 0;
    for (std::int64_t d : dims) {
      if (d < 0) throw std::invalid_argument("Shape: negative dimension");
      dims_[i++] = d;
    }
  }

  std::size_t rank() const { return rank_; }

  std::int64_t operator[](std::size_t i) const {
    if (i >= rank_) throw std::out_of_range("Shape: dim index out of range");
    return dims_[i];
  }

  /// Total element count; 1 for rank-0 (scalar) shapes.
  std::int64_t numel() const {
    std::int64_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  bool operator==(const Shape& o) const {
    if (rank_ != o.rank_) return false;
    for (std::size_t i = 0; i < rank_; ++i) {
      if (dims_[i] != o.dims_[i]) return false;
    }
    return true;
  }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  std::string str() const {
    std::string s = "[";
    for (std::size_t i = 0; i < rank_; ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    s += "]";
    return s;
  }

 private:
  std::array<std::int64_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.str();
}

}  // namespace minsgd
