// Direct (im2col-free) convolution driver.
//
// Lowers y[n] = W * im2col(x[n]) through the same packed microkernels as
// gemm_packed, but fuses the im2col gather into the B-panel packing stage:
// the (kdim x spatial) column matrix is never materialized — each kc x nc
// panel is gathered straight from the input plane into microkernel layout.
// Compared to the im2col path this removes a full write+read pass over a
// kdim x spatial buffer per image (for 3x3 conv, 9x the input size).
//
// The packed values and the microkernel visit order are exactly what the
// im2col + gemm_packed path would produce, so for shapes where sgemm takes
// its packed path the direct output is bit-identical to the im2col path —
// and across ISA paths and thread counts unconditionally.
#pragma once

#include <cstdint>

namespace minsgd {
class ComputeContext;
}

namespace minsgd::kernels {

/// Geometry of one grouped-free 2-D convolution (NCHW input, OIHW weight).
struct Conv2dGeom {
  std::int64_t in_c = 0, h = 0, w = 0;          // input plane
  std::int64_t out_c = 0, out_h = 0, out_w = 0;  // output plane
  std::int64_t k = 0, stride = 0, pad = 0;
};

/// Shapes the direct path covers: 1x1 stride-1 unpadded (a plain GEMM on
/// the input) and stride-1 3x3 (row-contiguous gathers), ungrouped.
bool conv2d_direct_eligible(std::int64_t k, std::int64_t stride,
                            std::int64_t pad, std::int64_t groups);

/// y = conv(x, w) (+ bias per output channel when bias != nullptr).
/// x is (batch x in_c x h x w), w is (out_c x in_c x k x k) row-major,
/// y is (batch x out_c x out_h x out_w) and is overwritten. Batch-parallel
/// on `ctx` with per-chunk packing scratch; each image is serial within
/// itself, so results are bit-identical for any thread count.
void conv2d_forward_direct(const ComputeContext& ctx, const float* x,
                           const float* w, const float* bias, float* y,
                           std::int64_t batch, const Conv2dGeom& g);

}  // namespace minsgd::kernels
