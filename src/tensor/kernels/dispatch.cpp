#include "tensor/kernels/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "core/check.hpp"
#include "obs/metrics.hpp"

namespace minsgd::kernels {
namespace {

// -1 = no programmatic override.
std::atomic<int> g_forced{-1};

Isa detect_best() {
#if defined(__aarch64__)
  // NEON is architecturally baseline on aarch64.
  return Isa::kNeon;
#elif defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") ? Isa::kAvx2 : Isa::kPortable;
#else
  return Isa::kPortable;
#endif
}

// MINSGD_KERNEL_ISA, parsed once. Resolution must not change mid-run: a
// rank that flipped ISA between two halves of a reduction would break the
// cross-rank bit-agreement contract.
Isa env_isa() {
  static const Isa cached = [] {
    const char* env = std::getenv("MINSGD_KERNEL_ISA");
    if (env == nullptr || env[0] == '\0') return best_supported();
    Isa isa = Isa::kPortable;
    MINSGD_CHECK(parse_isa(env, &isa), "MINSGD_KERNEL_ISA: unknown value '",
                 env, "' (want portable|avx2|neon|auto)");
    MINSGD_CHECK(supported(isa), "MINSGD_KERNEL_ISA=", to_string(isa),
                 " is not supported on this CPU/build");
    return isa;
  }();
  return cached;
}

}  // namespace

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::kPortable:
      return "portable";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool parse_isa(const char* s, Isa* out) {
  if (s == nullptr || out == nullptr) return false;
  if (std::strcmp(s, "portable") == 0) {
    *out = Isa::kPortable;
  } else if (std::strcmp(s, "avx2") == 0) {
    *out = Isa::kAvx2;
  } else if (std::strcmp(s, "neon") == 0) {
    *out = Isa::kNeon;
  } else if (std::strcmp(s, "auto") == 0) {
    *out = best_supported();
  } else {
    return false;
  }
  return true;
}

bool supported(Isa isa) {
  switch (isa) {
    case Isa::kPortable:
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Isa best_supported() {
  static const Isa best = detect_best();
  return best;
}

Isa active() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  const Isa isa = forced >= 0 ? static_cast<Isa>(forced) : env_isa();
  obs::metrics().gauge("kernels.isa").set(static_cast<double>(
      static_cast<int>(isa)));
  return isa;
}

void force(Isa isa) {
  MINSGD_CHECK(supported(isa), "kernels::force(", to_string(isa),
               "): not supported on this CPU/build");
  g_forced.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void clear_force() { g_forced.store(-1, std::memory_order_relaxed); }

}  // namespace minsgd::kernels
