// AVX2 sgemm microkernel: a 6x16 register tile (12 ymm accumulators, two
// B vectors, one broadcast) over packed panels.
//
// Deliberately no FMA: _mm256_fmadd_ps rounds once where the portable
// reference rounds twice, so the kernel uses an explicit multiply then add
// — bit-identical to the portable path at ~the same throughput here, since
// the tile is bound by loads and register traffic, not FLOPs. The function
// carries target("avx2") so this file builds on any x86-64 host and the
// dispatcher gates execution on __builtin_cpu_supports("avx2").
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "tensor/kernels/microkernel.hpp"

namespace minsgd::kernels {

__attribute__((target("avx2"))) void microkernel_avx2(
    std::int64_t kc, const float* ap, const float* bp, float* c,
    std::int64_t ldc, std::int64_t mr, std::int64_t nr) {
  __m256 acc0[kMR];
  __m256 acc1[kMR];
  for (std::int64_t i = 0; i < kMR; ++i) {
    acc0[i] = _mm256_setzero_ps();
    acc1[i] = _mm256_setzero_ps();
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNR);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNR + 8);
    const float* arow = ap + p * kMR;
    for (std::int64_t i = 0; i < kMR; ++i) {
      const __m256 av = _mm256_broadcast_ss(arow + i);
      acc0[i] = _mm256_add_ps(acc0[i], _mm256_mul_ps(av, b0));
      acc1[i] = _mm256_add_ps(acc1[i], _mm256_mul_ps(av, b1));
    }
  }
  if (mr == kMR && nr == kNR) {
    for (std::int64_t i = 0; i < kMR; ++i) {
      float* crow = c + i * ldc;
      _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc0[i]));
      _mm256_storeu_ps(crow + 8,
                       _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc1[i]));
    }
    return;
  }
  // Edge tile: spill the full accumulator tile and store the mr x nr
  // sub-block with scalar adds — the accumulate sequence above is identical
  // to the interior case, so edges stay bit-exact across ISA paths too.
  float spill[kMR][kNR];
  for (std::int64_t i = 0; i < kMR; ++i) {
    _mm256_storeu_ps(&spill[i][0], acc0[i]);
    _mm256_storeu_ps(&spill[i][8], acc1[i]);
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) crow[j] += spill[i][j];
  }
}

}  // namespace minsgd::kernels

#endif  // x86
