// Portable sgemm microkernel — the semantic reference every SIMD path must
// match bit for bit. This translation unit is compiled with
// -ffp-contract=off (see src/tensor/CMakeLists.txt): the compiler may
// vectorize the j loop freely (lane-parallel over independent output
// elements preserves per-element bits), but it must not fuse the multiply
// and add into an FMA, which rounds once instead of twice and would diverge
// from the non-FMA AVX2/NEON kernels.
#include "tensor/kernels/microkernel.hpp"

#include "core/check.hpp"

namespace minsgd::kernels {

void microkernel_portable(std::int64_t kc, const float* ap, const float* bp,
                          float* c, std::int64_t ldc, std::int64_t mr,
                          std::int64_t nr) {
  float acc[kMR][kNR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMR;
    const float* brow = bp + p * kNR;
    for (std::int64_t i = 0; i < kMR; ++i) {
      const float av = arow[i];
      for (std::int64_t j = 0; j < kNR; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
  }
}

MicrokernelFn microkernel_for(Isa isa) {
  switch (isa) {
    case Isa::kPortable:
      return microkernel_portable;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return microkernel_avx2;
#else
      break;
#endif
    case Isa::kNeon:
#if defined(__aarch64__)
      return microkernel_neon;
#else
      break;
#endif
  }
  MINSGD_CHECK(false, "microkernel_for: ISA ", to_string(isa),
               " not compiled into this build");
  return nullptr;
}

}  // namespace minsgd::kernels
