// NEON sgemm microkernel: a 6x16 register tile (24 q accumulators, four B
// vectors, one broadcast lane) over packed panels.
//
// Uses vaddq/vmulq rather than vfmaq/vmlaq: on aarch64 vmlaq_f32 lowers to
// a fused FMLA, which rounds once and would diverge from the portable
// reference. Explicit multiply-then-add keeps every lane bit-identical to
// the scalar sequence.
#if defined(__aarch64__)

#include <arm_neon.h>

#include "tensor/kernels/microkernel.hpp"

namespace minsgd::kernels {

void microkernel_neon(std::int64_t kc, const float* ap, const float* bp,
                      float* c, std::int64_t ldc, std::int64_t mr,
                      std::int64_t nr) {
  float32x4_t acc[kMR][4];
  for (std::int64_t i = 0; i < kMR; ++i) {
    for (int v = 0; v < 4; ++v) acc[i][v] = vdupq_n_f32(0.0f);
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* brow = bp + p * kNR;
    const float32x4_t b0 = vld1q_f32(brow);
    const float32x4_t b1 = vld1q_f32(brow + 4);
    const float32x4_t b2 = vld1q_f32(brow + 8);
    const float32x4_t b3 = vld1q_f32(brow + 12);
    const float* arow = ap + p * kMR;
    for (std::int64_t i = 0; i < kMR; ++i) {
      const float32x4_t av = vdupq_n_f32(arow[i]);
      acc[i][0] = vaddq_f32(acc[i][0], vmulq_f32(av, b0));
      acc[i][1] = vaddq_f32(acc[i][1], vmulq_f32(av, b1));
      acc[i][2] = vaddq_f32(acc[i][2], vmulq_f32(av, b2));
      acc[i][3] = vaddq_f32(acc[i][3], vmulq_f32(av, b3));
    }
  }
  if (mr == kMR && nr == kNR) {
    for (std::int64_t i = 0; i < kMR; ++i) {
      float* crow = c + i * ldc;
      for (int v = 0; v < 4; ++v) {
        vst1q_f32(crow + 4 * v,
                  vaddq_f32(vld1q_f32(crow + 4 * v), acc[i][v]));
      }
    }
    return;
  }
  float spill[kMR][kNR];
  for (std::int64_t i = 0; i < kMR; ++i) {
    for (int v = 0; v < 4; ++v) vst1q_f32(&spill[i][4 * v], acc[i][v]);
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) crow[j] += spill[i][j];
  }
}

}  // namespace minsgd::kernels

#endif  // aarch64
