#include "tensor/kernels/gemm_packed.hpp"

#include <algorithm>

#include "tensor/context.hpp"
#include "tensor/kernels/microkernel.hpp"
#include "tensor/kernels/pack.hpp"

namespace minsgd::kernels {
namespace {

// Grain tuning: a chunk must amortize fork-join and panel packing, so the
// row-block grain is sized to keep at least this many FLOPs per chunk.
// Derived from (m, n, k) only — never the thread count — so chunk geometry
// stays deterministic.
constexpr std::int64_t kMinChunkFlops = std::int64_t{1} << 23;  // 8 MFLOP

}  // namespace

void gemm_packed(const ComputeContext& ctx, Trans ta, Trans tb, std::int64_t m,
                 std::int64_t n, std::int64_t k, float alpha, const float* a,
                 std::int64_t lda, const float* b, std::int64_t ldb, float* c,
                 std::int64_t ldc) {
  const MicrokernelFn ukr = microkernel_for(active());
  const std::int64_t row_blocks = (m + kMC - 1) / kMC;
  const std::int64_t flops_per_block =
      2 * std::min(kMC, m) * n * std::max<std::int64_t>(1, k);
  const std::int64_t grain =
      std::max<std::int64_t>(1, kMinChunkFlops / std::max<std::int64_t>(
                                                     1, flops_per_block));

  ctx.parallel_for(
      0, row_blocks,
      [&](std::int64_t blk_lo, std::int64_t blk_hi) {
        // Packed-panel scratch, private to this worker thread (grow-only;
        // every pack fully overwrites what the microkernel reads).
        float* const apack =
            pack_scratch(kPackScratchA, static_cast<std::size_t>(kMC * kKC));
        float* const bpack =
            pack_scratch(kPackScratchB, static_cast<std::size_t>(kKC * kNC));
        for (std::int64_t blk = blk_lo; blk < blk_hi; ++blk) {
          const std::int64_t i0 = blk * kMC;
          const std::int64_t mc = std::min(kMC, m - i0);
          const std::int64_t mtiles = (mc + kMR - 1) / kMR;
          for (std::int64_t p0 = 0; p0 < k; p0 += kKC) {
            const std::int64_t kc = std::min(kKC, k - p0);
            pack_a_panel(a, lda, ta, i0, p0, mc, kc, alpha, apack);
            for (std::int64_t j0 = 0; j0 < n; j0 += kNC) {
              const std::int64_t nc = std::min(kNC, n - j0);
              const std::int64_t ntiles = (nc + kNR - 1) / kNR;
              pack_b_panel(b, ldb, tb, p0, j0, kc, nc, bpack);
              for (std::int64_t jt = 0; jt < ntiles; ++jt) {
                const std::int64_t nr = std::min(kNR, nc - jt * kNR);
                const float* btile = bpack + jt * kc * kNR;
                for (std::int64_t it = 0; it < mtiles; ++it) {
                  const std::int64_t mr = std::min(kMR, mc - it * kMR);
                  ukr(kc, apack + it * kc * kMR, btile,
                      c + (i0 + it * kMR) * ldc + j0 + jt * kNR, ldc, mr, nr);
                }
              }
            }
          }
        }
      },
      grain);
}

}  // namespace minsgd::kernels
