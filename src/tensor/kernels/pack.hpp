// Panel packing for the blocked microkernel drivers.
//
// Packed layouts (the only layouts the microkernels read):
//
//   A panel: ceil(mc/kMR) micro-panels of kc x kMR, p-major — element
//            (row r, depth p) of micro-panel `it` lives at
//            ap[it*kc*kMR + p*kMR + r]. Values are pre-scaled by alpha at
//            pack time (one multiply per element, shared by every ISA
//            path); rows past mc are zero-filled so edge tiles run the
//            same full-width accumulate as interior tiles.
//   B panel: ceil(nc/kNR) micro-panels of kc x kNR, p-major — element
//            (depth p, col q) of micro-panel `jt` lives at
//            bp[jt*kc*kNR + p*kNR + q]; columns past nc are zero-filled.
//
// Padding lanes are accumulated by the microkernels but never stored, so
// the zero fill cannot perturb any output element.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/gemm.hpp"

namespace minsgd::kernels {

// Thread-local, grow-only scratch backing packed panels, so the blocked
// drivers never allocate on the planned hot path (hot-path-alloc contract).
// Distinct slots keep concurrent users on one thread from aliasing:
//   kPackScratchA / kPackScratchB       gemm_packed, inside its region
//   kPackScratchConvB                   conv2d_forward_direct, per chunk
//   kPackScratchConvW                   conv2d_forward_direct, packed on the
//                                       calling thread before its region and
//                                       read-only inside it
// Buffers reach steady-state size after the first block and are reused dirty;
// that is bitwise-safe because every pack fully overwrites the region the
// microkernels read, zero-filling edge lanes (see layout notes above).
inline constexpr int kPackScratchA = 0;
inline constexpr int kPackScratchB = 1;
inline constexpr int kPackScratchConvB = 2;
inline constexpr int kPackScratchConvW = 3;
inline constexpr int kPackScratchSlots = 4;

/// Returns this thread's scratch buffer for `slot`, grown to at least
/// `elems` floats. The pointer stays valid until the next pack_scratch call
/// on the same thread and slot with a larger `elems`.
float* pack_scratch(int slot, std::size_t elems);

/// Packs the (mc x kc) block of op(A) starting at logical row i0, depth p0
/// into A-panel layout, scaling every element by alpha.
void pack_a_panel(const float* a, std::int64_t lda, Trans ta, std::int64_t i0,
                  std::int64_t p0, std::int64_t mc, std::int64_t kc,
                  float alpha, float* ap);

/// Packs the (kc x nc) block of op(B) starting at depth p0, logical column
/// j0 into B-panel layout.
void pack_b_panel(const float* b, std::int64_t ldb, Trans tb, std::int64_t p0,
                  std::int64_t j0, std::int64_t kc, std::int64_t nc,
                  float* bp);

}  // namespace minsgd::kernels
