// The microkernel contract shared by every ISA path.
//
// A microkernel computes one kMR x kNR register tile of C from packed
// panels, with semantics fixed down to the bit:
//
//   acc[i][j]  = sum over p in [0, kc), ascending:  ap[p*kMR+i] * bp[p*kNR+j]
//                (each term a separate IEEE multiply then add — never fused)
//   C[i][j]   += acc[i][j]        for i < mr, j < nr
//
// ap is an A micro-panel (kc x kMR, p-major, alpha pre-scaled at pack time,
// rows past mr zero-filled); bp is a B micro-panel (kc x kNR, p-major,
// columns past nr zero-filled). Because every path consumes identical
// panels and runs the identical per-element operation sequence, portable,
// AVX2, and NEON kernels produce bit-identical C — padding lanes are
// accumulated but never stored, so they cannot perturb a stored element.
//
// One file per microkernel family (ccv/NNC-style): sgemm_portable.cpp,
// sgemm_avx2.cpp, sgemm_neon.cpp. The blocked drivers (gemm_packed.cpp,
// conv_direct.cpp) resolve the function pointer once per launch via
// microkernel_for(active()).
#pragma once

#include <cstdint>

#include "tensor/kernels/dispatch.hpp"

namespace minsgd::kernels {

/// Microtile rows of C held in registers (6 x 16 fits 12 AVX2 ymm
/// accumulators, or 24 NEON q accumulators, with room for operands).
inline constexpr std::int64_t kMR = 6;
/// Microtile columns of C (two 8-lane AVX2 vectors / four NEON quads).
inline constexpr std::int64_t kNR = 16;

/// Cache-blocking panel sizes. kMC is a multiple of kMR and kNC a multiple
/// of kNR so packed panels tile exactly; sized for a typical 32K L1 / 512K
/// L2 (A panel 96 KiB, B panel 512 KiB at kKC depth).
inline constexpr std::int64_t kMC = 96;
inline constexpr std::int64_t kKC = 256;
inline constexpr std::int64_t kNC = 512;

/// See the file comment for the exact semantics. `mr`/`nr` (1..kMR/kNR)
/// select the stored sub-tile; the accumulate sequence never varies.
using MicrokernelFn = void (*)(std::int64_t kc, const float* ap,
                               const float* bp, float* c, std::int64_t ldc,
                               std::int64_t mr, std::int64_t nr);

/// The semantic reference (always compiled).
void microkernel_portable(std::int64_t kc, const float* ap, const float* bp,
                          float* c, std::int64_t ldc, std::int64_t mr,
                          std::int64_t nr);

#if defined(__x86_64__) || defined(__i386__)
void microkernel_avx2(std::int64_t kc, const float* ap, const float* bp,
                      float* c, std::int64_t ldc, std::int64_t mr,
                      std::int64_t nr);
#endif

#if defined(__aarch64__)
void microkernel_neon(std::int64_t kc, const float* ap, const float* bp,
                      float* c, std::int64_t ldc, std::int64_t mr,
                      std::int64_t nr);
#endif

/// Resolves the microkernel for `isa` (must be supported()).
MicrokernelFn microkernel_for(Isa isa);

}  // namespace minsgd::kernels
