// Blocked, panel-packed sgemm driver over the dispatched microkernels.
#pragma once

#include <cstdint>

#include "tensor/gemm.hpp"

namespace minsgd {
class ComputeContext;
}

namespace minsgd::kernels {

/// C += op(A) * op(B) with A pre-scaled by alpha at pack time. The caller
/// (minsgd::sgemm) has already applied beta to C and filtered the k==0 /
/// alpha==0 / empty cases. Row-blocks of C run on `ctx` with chunk
/// geometry a function of (m, n, k) only; each row-block is serial within
/// itself, so the result is bit-identical for any thread count — and, via
/// the microkernel contract, for any dispatched ISA.
void gemm_packed(const ComputeContext& ctx, Trans ta, Trans tb, std::int64_t m,
                 std::int64_t n, std::int64_t k, float alpha, const float* a,
                 std::int64_t lda, const float* b, std::int64_t ldb, float* c,
                 std::int64_t ldc);

}  // namespace minsgd::kernels
