#include "tensor/kernels/pack.hpp"

#include <algorithm>
#include <vector>

#include "tensor/kernels/microkernel.hpp"

namespace minsgd::kernels {

float* pack_scratch(int slot, std::size_t elems) {
  // minsgd-analyze: allow(hot-path-alloc): grow-only thread_local scratch
  // shared by gemm_packed and conv2d_forward_direct; it reaches steady-state
  // size on the first block and never reallocates on the planned hot path.
  static thread_local std::vector<float> buffers[kPackScratchSlots];
  std::vector<float>& buf = buffers[slot];
  if (buf.size() < elems) buf.resize(elems);
  return buf.data();
}

namespace {

inline float load_a(const float* a, std::int64_t lda, Trans ta, std::int64_t i,
                    std::int64_t p) {
  return ta == Trans::kNo ? a[i * lda + p] : a[p * lda + i];
}

inline float load_b(const float* b, std::int64_t ldb, Trans tb, std::int64_t p,
                    std::int64_t j) {
  return tb == Trans::kNo ? b[p * ldb + j] : b[j * ldb + p];
}

}  // namespace

void pack_a_panel(const float* a, std::int64_t lda, Trans ta, std::int64_t i0,
                  std::int64_t p0, std::int64_t mc, std::int64_t kc,
                  float alpha, float* ap) {
  const std::int64_t mtiles = (mc + kMR - 1) / kMR;
  for (std::int64_t it = 0; it < mtiles; ++it) {
    float* tile = ap + it * kc * kMR;
    const std::int64_t mr = std::min(kMR, mc - it * kMR);
    for (std::int64_t p = 0; p < kc; ++p) {
      float* dst = tile + p * kMR;
      for (std::int64_t r = 0; r < mr; ++r) {
        dst[r] = alpha * load_a(a, lda, ta, i0 + it * kMR + r, p0 + p);
      }
      for (std::int64_t r = mr; r < kMR; ++r) dst[r] = 0.0f;
    }
  }
}

void pack_b_panel(const float* b, std::int64_t ldb, Trans tb, std::int64_t p0,
                  std::int64_t j0, std::int64_t kc, std::int64_t nc,
                  float* bp) {
  const std::int64_t ntiles = (nc + kNR - 1) / kNR;
  for (std::int64_t jt = 0; jt < ntiles; ++jt) {
    float* tile = bp + jt * kc * kNR;
    const std::int64_t nr = std::min(kNR, nc - jt * kNR);
    if (tb == Trans::kNo) {
      // Unit-stride source rows.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = b + (p0 + p) * ldb + j0 + jt * kNR;
        float* dst = tile + p * kNR;
        for (std::int64_t q = 0; q < nr; ++q) dst[q] = src[q];
        for (std::int64_t q = nr; q < kNR; ++q) dst[q] = 0.0f;
      }
    } else {
      for (std::int64_t p = 0; p < kc; ++p) {
        float* dst = tile + p * kNR;
        for (std::int64_t q = 0; q < nr; ++q) {
          dst[q] = load_b(b, ldb, tb, p0 + p, j0 + jt * kNR + q);
        }
        for (std::int64_t q = nr; q < kNR; ++q) dst[q] = 0.0f;
      }
    }
  }
}

}  // namespace minsgd::kernels
