#include "tensor/kernels/conv_direct.hpp"

#include <algorithm>
#include <cstring>

#include "core/check.hpp"
#include "tensor/context.hpp"
#include "tensor/kernels/microkernel.hpp"
#include "tensor/kernels/pack.hpp"

namespace minsgd::kernels {
namespace {

// im2col fused into B packing: gathers the (kc x nc) block of the implicit
// column matrix (rows = (ci, ki, kj) taps, cols = output positions) for one
// image, directly into B-panel layout. For stride 1 the inner gather is a
// unit-stride row copy with border zero-fill.
void pack_b_im2col(const float* xn, const Conv2dGeom& g, std::int64_t p0,
                   std::int64_t j0, std::int64_t kc, std::int64_t nc,
                   float* bp) {
  const std::int64_t ntiles = (nc + kNR - 1) / kNR;
  const std::int64_t padded = ntiles * kNR;
  for (std::int64_t p = 0; p < kc; ++p) {
    const std::int64_t prow = p0 + p;
    const std::int64_t ci = prow / (g.k * g.k);
    const std::int64_t rem = prow % (g.k * g.k);
    const std::int64_t ki = rem / g.k;
    const std::int64_t kj = rem % g.k;
    const float* plane = xn + ci * g.h * g.w;
    std::int64_t jl = 0;
    while (jl < nc) {
      const std::int64_t j = j0 + jl;
      const std::int64_t oh = j / g.out_w;
      const std::int64_t ow = j % g.out_w;
      // Stay within one output row and one kNR micro-panel so the
      // destination is contiguous.
      std::int64_t run = std::min(g.out_w - ow, nc - jl);
      run = std::min(run, kNR - (jl % kNR));
      float* dst = bp + (jl / kNR) * kc * kNR + p * kNR + (jl % kNR);
      const std::int64_t ih = oh * g.stride - g.pad + ki;
      if (ih < 0 || ih >= g.h) {
        for (std::int64_t t = 0; t < run; ++t) dst[t] = 0.0f;
      } else {
        const float* row = plane + ih * g.w;
        if (g.stride == 1) {
          const std::int64_t iw0 = ow - g.pad + kj;
          for (std::int64_t t = 0; t < run; ++t) {
            const std::int64_t iw = iw0 + t;
            dst[t] = (iw >= 0 && iw < g.w) ? row[iw] : 0.0f;
          }
        } else {
          for (std::int64_t t = 0; t < run; ++t) {
            const std::int64_t iw = (ow + t) * g.stride - g.pad + kj;
            dst[t] = (iw >= 0 && iw < g.w) ? row[iw] : 0.0f;
          }
        }
      }
      jl += run;
    }
    for (std::int64_t q = nc; q < padded; ++q) {
      bp[(q / kNR) * kc * kNR + p * kNR + (q % kNR)] = 0.0f;
    }
  }
}

}  // namespace

bool conv2d_direct_eligible(std::int64_t k, std::int64_t stride,
                            std::int64_t pad, std::int64_t groups) {
  if (groups != 1) return false;
  if (k == 1 && stride == 1 && pad == 0) return true;
  return k == 3 && stride == 1;
}

void conv2d_forward_direct(const ComputeContext& ctx, const float* x,
                           const float* w, const float* bias, float* y,
                           std::int64_t batch, const Conv2dGeom& g) {
  MINSGD_CHECK(g.in_c > 0 && g.out_c > 0 && g.k > 0 && g.stride > 0 &&
                   g.pad >= 0 && g.out_h > 0 && g.out_w > 0,
               "conv2d_forward_direct: bad geometry");
  if (batch <= 0) return;
  const std::int64_t kdim = g.in_c * g.k * g.k;
  const std::int64_t spatial = g.out_h * g.out_w;
  const std::int64_t in_plane = g.in_c * g.h * g.w;
  const std::int64_t out_plane = g.out_c * spatial;
  const MicrokernelFn ukr = microkernel_for(active());

  // The weight matrix (out_c x kdim) is shared by every image: pack it once
  // into A-panel layout for all kc blocks. Block p0 starts at
  // mtiles*kMR*p0 because every block's footprint is proportional to kc.
  // The packed weights live in calling-thread scratch: written here, before
  // the parallel region starts, and read-only by every worker inside it
  // (region start/join orders the accesses).
  const std::int64_t mtiles = (g.out_c + kMR - 1) / kMR;
  float* const wpack = pack_scratch(
      kPackScratchConvW, static_cast<std::size_t>(mtiles * kMR * kdim));
  for (std::int64_t p0 = 0; p0 < kdim; p0 += kKC) {
    const std::int64_t kc = std::min(kKC, kdim - p0);
    pack_a_panel(w, kdim, Trans::kNo, 0, p0, g.out_c, kc, /*alpha=*/1.0f,
                 wpack + mtiles * kMR * p0);
  }

  // Batch-parallel with per-chunk packing scratch; the inner blocked loops
  // are serial per image, so chunk geometry f(batch, 1) is the only
  // parallel dimension.
  ctx.for_chunks(
      batch, /*grain=*/1,
      [&](std::int64_t /*c*/, std::int64_t lo, std::int64_t hi) {
        float* const bpack = pack_scratch(
            kPackScratchConvB, static_cast<std::size_t>(kKC * kNC));
        for (std::int64_t n = lo; n < hi; ++n) {
          const float* xn = x + n * in_plane;
          float* yn = y + n * out_plane;
          std::memset(yn, 0,
                      static_cast<std::size_t>(out_plane) * sizeof(float));
          for (std::int64_t p0 = 0; p0 < kdim; p0 += kKC) {
            const std::int64_t kc = std::min(kKC, kdim - p0);
            const float* apanel = wpack + mtiles * kMR * p0;
            for (std::int64_t j0 = 0; j0 < spatial; j0 += kNC) {
              const std::int64_t nc = std::min(kNC, spatial - j0);
              const std::int64_t ntiles = (nc + kNR - 1) / kNR;
              pack_b_im2col(xn, g, p0, j0, kc, nc, bpack);
              for (std::int64_t jt = 0; jt < ntiles; ++jt) {
                const std::int64_t nr = std::min(kNR, nc - jt * kNR);
                const float* btile = bpack + jt * kc * kNR;
                for (std::int64_t it = 0; it < mtiles; ++it) {
                  const std::int64_t mr = std::min(kMR, g.out_c - it * kMR);
                  ukr(kc, apanel + it * kc * kMR, btile,
                      yn + it * kMR * spatial + j0 + jt * kNR, spatial, mr,
                      nr);
                }
              }
            }
          }
          if (bias != nullptr) {
            for (std::int64_t oc = 0; oc < g.out_c; ++oc) {
              float* dst = yn + oc * spatial;
              const float bv = bias[oc];
              for (std::int64_t s = 0; s < spatial; ++s) dst[s] += bv;
            }
          }
        }
      });
}

}  // namespace minsgd::kernels
