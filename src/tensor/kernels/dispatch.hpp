// Runtime ISA dispatch for the sgemm/conv microkernels.
//
// Every compute-bound kernel family in src/tensor/kernels ships one
// microkernel per ISA (portable C, AVX2, NEON) behind a single dispatcher.
// The portable path is the semantic reference: the SIMD paths consume the
// same packed panels and accumulate each output element with the same
// mul-then-add sequence in the same k order, so all paths are bit-identical
// — the reference-oracle tests in tests/test_gemm assert it byte for byte.
//
// Selection order:
//   1. force(isa) — programmatic override, used by tests and benches to pin
//      a path (clear_force() restores automatic selection).
//   2. MINSGD_KERNEL_ISA environment variable, read once at first dispatch:
//      "portable" | "avx2" | "neon" | "auto". An unsupported or unknown
//      value aborts via MINSGD_CHECK rather than silently falling back.
//   3. best_supported(): the widest ISA the running CPU supports.
//
// The dispatcher reports the path it resolved through the metrics gauge
// "kernels.isa" (value = static_cast<double> of the Isa enum), so a run's
// JSONL snapshot records which kernels actually executed.
#pragma once

namespace minsgd::kernels {

enum class Isa : int {
  kPortable = 0,  // plain C microkernel; the semantic reference
  kAvx2 = 1,      // x86-64 AVX2 (no FMA: fusion would change rounding)
  kNeon = 2,      // aarch64 NEON (explicit mul+add, never vfma)
};

/// Stable lowercase name ("portable", "avx2", "neon").
const char* to_string(Isa isa);

/// Parses a MINSGD_KERNEL_ISA value. Returns false for unknown strings;
/// "auto" parses to best_supported().
bool parse_isa(const char* s, Isa* out);

/// True when `isa` is both compiled in and supported by the running CPU.
/// kPortable is always supported.
bool supported(Isa isa);

/// The widest supported ISA on this machine.
Isa best_supported();

/// The ISA the next kernel launch will use (force > env > best_supported).
/// Also publishes the resolved value to the "kernels.isa" gauge.
Isa active();

/// Pins the dispatcher to `isa` for this process (aborts if unsupported).
/// Test/bench hook; production runs use the environment variable.
void force(Isa isa);

/// Restores automatic selection after force().
void clear_force();

}  // namespace minsgd::kernels
