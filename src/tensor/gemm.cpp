#include "tensor/gemm.hpp"

#include <cstring>

#include "core/check.hpp"
#include "tensor/context.hpp"
#include "tensor/kernels/gemm_packed.hpp"

namespace minsgd {
namespace {

inline float load_a(const float* a, std::int64_t lda, Trans ta, std::int64_t i,
                    std::int64_t p) {
  return ta == Trans::kNo ? a[i * lda + p] : a[p * lda + i];
}

// Direct (non-packing, single-thread) path for small problems, where the
// packed kernel's panel copies and fork-join overheads dominate. DNN training
// at proxy resolutions still hits this for biases, tiny heads and 1x1 convs
// on small planes.
void gemm_small(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                std::int64_t k, float alpha, const float* a, std::int64_t lda,
                const float* b, std::int64_t ldb, float* c, std::int64_t ldc) {
  if (tb == Trans::kNo) {
    // C[i,:] += alpha * A[i,p] * B[p,:]  (unit-stride axpy rows)
    for (std::int64_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = alpha * load_a(a, lda, ta, i, p);
        if (av == 0.0f) continue;
        const float* brow = b + p * ldb;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else {
    // C[i,j] += alpha * dot(A[i,:], B[j,:])  (unit-stride dot products)
    for (std::int64_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * ldb;
        float acc = 0.0f;
        if (ta == Trans::kNo) {
          const float* arow = a + i * lda;
          for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        } else {
          for (std::int64_t p = 0; p < k; ++p) acc += a[p * lda + i] * brow[p];
        }
        crow[j] += alpha * acc;
      }
    }
  }
}

// Below this FLOP count the small path wins; above it the packed microkernel
// path does. The threshold is a function of shape only, so which path runs
// never depends on the thread count or the dispatched ISA.
constexpr std::int64_t kSmallGemmFlops = std::int64_t{1} << 18;

}  // namespace

void sgemm(const ComputeContext& ctx, Trans ta, Trans tb, std::int64_t m,
           std::int64_t n, std::int64_t k, float alpha, const float* a,
           std::int64_t lda, const float* b, std::int64_t ldb, float beta,
           float* c, std::int64_t ldc) {
  MINSGD_CHECK(m >= 0 && n >= 0 && k >= 0, "sgemm: bad dims (m=", m, " n=", n,
               " k=", k, ")");
  if (m == 0 || n == 0) return;
  MINSGD_DCHECK(c != nullptr, "sgemm: null C with m=", m, " n=", n);
  MINSGD_DCHECK(k == 0 || (a != nullptr && b != nullptr),
                "sgemm: null A/B with k=", k);
  MINSGD_DCHECK(lda >= 1 && ldb >= 1 && ldc >= n,
                "sgemm: bad leading dims (lda=", lda, " ldb=", ldb,
                " ldc=", ldc, ", n=", n, ")");

  // Scale C by beta once, up front.
  if (beta == 0.0f) {
    for (std::int64_t i = 0; i < m; ++i) {
      std::memset(c + i * ldc, 0, static_cast<std::size_t>(n) * sizeof(float));
    }
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m; ++i) {
      float* row = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
  if (k == 0 || alpha == 0.0f) return;

  if (m * n * k <= kSmallGemmFlops) {
    gemm_small(ta, tb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }

  kernels::gemm_packed(ctx, ta, tb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

void sgemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
           float alpha, const float* a, std::int64_t lda, const float* b,
           std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
  sgemm(ComputeContext::default_ctx(), ta, tb, m, n, k, alpha, a, lda, b, ldb,
        beta, c, ldc);
}

void sgemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
           float alpha, const float* a, const float* b, float beta, float* c) {
  const std::int64_t lda = (ta == Trans::kNo) ? k : m;
  const std::int64_t ldb = (tb == Trans::kNo) ? n : k;
  sgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, n);
}

}  // namespace minsgd
