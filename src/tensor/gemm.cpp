#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/check.hpp"
#include "tensor/context.hpp"

namespace minsgd {
namespace {

// Block sizes sized for a typical 32K L1 / 512K L2.
constexpr std::int64_t kMC = 64;   // rows of A per block
constexpr std::int64_t kKC = 256;  // depth per block
constexpr std::int64_t kNC = 512;  // cols of B per block

// Computes a kMC x kNC block of C += A_block * B_block where A_block is
// packed row-major (mc x kc) and B_block is packed row-major (kc x nc).
void micro_block(std::int64_t mc, std::int64_t nc, std::int64_t kc,
                 const float* ap, const float* bp, float* c,
                 std::int64_t ldc) {
  for (std::int64_t i = 0; i < mc; ++i) {
    float* crow = c + i * ldc;
    const float* arow = ap + i * kc;
    for (std::int64_t p = 0; p < kc; ++p) {
      const float aval = arow[p];
      const float* brow = bp + p * nc;
      // Vectorizable axpy over the C row.
      for (std::int64_t j = 0; j < nc; ++j) crow[j] += aval * brow[j];
    }
  }
}

inline float load_a(const float* a, std::int64_t lda, Trans ta, std::int64_t i,
                    std::int64_t p) {
  return ta == Trans::kNo ? a[i * lda + p] : a[p * lda + i];
}

inline float load_b(const float* b, std::int64_t ldb, Trans tb, std::int64_t p,
                    std::int64_t j) {
  return tb == Trans::kNo ? b[p * ldb + j] : b[j * ldb + p];
}

// Direct (non-packing, single-thread) path for small problems, where the
// blocked kernel's packing and fork-join overheads dominate. DNN training at
// proxy resolutions consists almost entirely of such GEMMs.
void gemm_small(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                std::int64_t k, float alpha, const float* a, std::int64_t lda,
                const float* b, std::int64_t ldb, float* c, std::int64_t ldc) {
  if (tb == Trans::kNo) {
    // C[i,:] += alpha * A[i,p] * B[p,:]  (unit-stride axpy rows)
    for (std::int64_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = alpha * load_a(a, lda, ta, i, p);
        if (av == 0.0f) continue;
        const float* brow = b + p * ldb;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else {
    // C[i,j] += alpha * dot(A[i,:], B[j,:])  (unit-stride dot products)
    for (std::int64_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * ldb;
        float acc = 0.0f;
        if (ta == Trans::kNo) {
          const float* arow = a + i * lda;
          for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        } else {
          for (std::int64_t p = 0; p < k; ++p) acc += a[p * lda + i] * brow[p];
        }
        crow[j] += alpha * acc;
      }
    }
  }
}

}  // namespace

void sgemm(const ComputeContext& ctx, Trans ta, Trans tb, std::int64_t m,
           std::int64_t n, std::int64_t k, float alpha, const float* a,
           std::int64_t lda, const float* b, std::int64_t ldb, float beta,
           float* c, std::int64_t ldc) {
  MINSGD_CHECK(m >= 0 && n >= 0 && k >= 0, "sgemm: bad dims (m=", m, " n=", n,
               " k=", k, ")");
  if (m == 0 || n == 0) return;
  MINSGD_DCHECK(c != nullptr, "sgemm: null C with m=", m, " n=", n);
  MINSGD_DCHECK(k == 0 || (a != nullptr && b != nullptr),
                "sgemm: null A/B with k=", k);
  MINSGD_DCHECK(lda >= 1 && ldb >= 1 && ldc >= n,
                "sgemm: bad leading dims (lda=", lda, " ldb=", ldb,
                " ldc=", ldc, ", n=", n, ")");

  // Scale C by beta once, up front.
  if (beta == 0.0f) {
    for (std::int64_t i = 0; i < m; ++i) {
      std::memset(c + i * ldc, 0, static_cast<std::size_t>(n) * sizeof(float));
    }
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m; ++i) {
      float* row = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
  if (k == 0 || alpha == 0.0f) return;

  if (m * n * k <= (std::int64_t{1} << 21)) {
    gemm_small(ta, tb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }

  // Parallelize over row-blocks of C; each task packs its own A/B blocks.
  // Each row-block is serial within itself, so results do not depend on the
  // thread count.
  ctx.parallel_for(
      0, (m + kMC - 1) / kMC,
      [&](std::int64_t blk_lo, std::int64_t blk_hi) {
        std::vector<float> apack(static_cast<std::size_t>(kMC * kKC));
        std::vector<float> bpack(static_cast<std::size_t>(kKC * kNC));
        for (std::int64_t blk = blk_lo; blk < blk_hi; ++blk) {
          const std::int64_t i0 = blk * kMC;
          const std::int64_t mc = std::min(kMC, m - i0);
          for (std::int64_t p0 = 0; p0 < k; p0 += kKC) {
            const std::int64_t kc = std::min(kKC, k - p0);
            // Pack A block (mc x kc), pre-scaled by alpha.
            for (std::int64_t i = 0; i < mc; ++i) {
              for (std::int64_t p = 0; p < kc; ++p) {
                apack[static_cast<std::size_t>(i * kc + p)] =
                    alpha * load_a(a, lda, ta, i0 + i, p0 + p);
              }
            }
            for (std::int64_t j0 = 0; j0 < n; j0 += kNC) {
              const std::int64_t nc = std::min(kNC, n - j0);
              // Pack B block (kc x nc).
              for (std::int64_t p = 0; p < kc; ++p) {
                for (std::int64_t j = 0; j < nc; ++j) {
                  bpack[static_cast<std::size_t>(p * nc + j)] =
                      load_b(b, ldb, tb, p0 + p, j0 + j);
                }
              }
              micro_block(mc, nc, kc, apack.data(), bpack.data(),
                          c + i0 * ldc + j0, ldc);
            }
          }
        }
      },
      /*grain=*/1);
}

void sgemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
           float alpha, const float* a, std::int64_t lda, const float* b,
           std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
  sgemm(ComputeContext::default_ctx(), ta, tb, m, n, k, alpha, a, lda, b, ldb,
        beta, c, ldc);
}

void sgemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
           float alpha, const float* a, const float* b, float beta, float* c) {
  const std::int64_t lda = (ta == Trans::kNo) ? k : m;
  const std::int64_t ldb = (tb == Trans::kNo) ? n : k;
  sgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, n);
}

}  // namespace minsgd
