#include "tensor/tensor.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace minsgd {

namespace {

// Registry lookup (mutex + map) per allocation is noise next to the malloc
// and zero-fill it annotates, and unlike a cached Counter& it survives
// MetricsRegistry::clear() in tests.
void note_alloc(std::size_t bytes) {
  if (bytes == 0) return;
  auto& reg = obs::metrics();
  reg.counter("tensor.allocs").add(1);
  reg.counter("tensor.alloc_bytes").add(static_cast<std::int64_t>(bytes));
}

}  // namespace

Tensor::Tensor(Shape shape) : shape_(shape) {
  const auto n = static_cast<std::size_t>(shape.numel());
  note_alloc(n * sizeof(float));
  data_.assign(n, 0.0f);
  ptr_ = data_.data();
  numel_ = static_cast<std::int64_t>(n);
}

Tensor::Tensor(Shape shape, float value) : shape_(shape) {
  const auto n = static_cast<std::size_t>(shape.numel());
  note_alloc(n * sizeof(float));
  data_.assign(n, value);
  ptr_ = data_.data();
  numel_ = static_cast<std::int64_t>(n);
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(shape), data_(std::move(data)) {
  if (static_cast<std::int64_t>(data_.size()) != shape_.numel()) {
    throw std::invalid_argument("Tensor: data size does not match shape " +
                                shape_.str());
  }
  ptr_ = data_.data();
  numel_ = static_cast<std::int64_t>(data_.size());
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  note_alloc(static_cast<std::size_t>(other.numel_) * sizeof(float));
  if (other.numel_ > 0) data_.assign(other.ptr_, other.ptr_ + other.numel_);
  ptr_ = data_.data();
  numel_ = other.numel_;
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  if (bound()) {
    MINSGD_CHECK(other.numel_ <= bound_cap_,
                 "Tensor: assigning ", other.numel_,
                 " elements into bound capacity ", bound_cap_);
    if (other.numel_ > 0) std::copy_n(other.ptr_, other.numel_, ptr_);
  } else {
    const auto n = static_cast<std::size_t>(other.numel_);
    if (n > data_.capacity()) note_alloc(n * sizeof(float));
    if (n > 0) {
      data_.assign(other.ptr_, other.ptr_ + other.numel_);
    } else {
      data_.clear();
    }
    ptr_ = data_.data();
  }
  numel_ = other.numel_;
  shape_ = other.shape_;
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(other.shape_),
      data_(std::move(other.data_)),
      numel_(other.numel_),
      bound_cap_(other.bound_cap_) {
  ptr_ = bound() ? other.ptr_ : data_.data();
  other.shape_ = Shape{};
  other.data_.clear();
  other.ptr_ = nullptr;
  other.numel_ = 0;
  other.bound_cap_ = -1;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  shape_ = other.shape_;
  data_ = std::move(other.data_);
  numel_ = other.numel_;
  bound_cap_ = other.bound_cap_;
  ptr_ = bound() ? other.ptr_ : data_.data();
  other.shape_ = Shape{};
  other.data_.clear();
  other.ptr_ = nullptr;
  other.numel_ = 0;
  other.bound_cap_ = -1;
  return *this;
}

void Tensor::fill(float value) {
  std::fill_n(ptr_, static_cast<std::size_t>(numel_), value);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != shape_.numel()) {
    throw std::invalid_argument("Tensor::reshaped: numel mismatch " +
                                shape_.str() + " -> " + new_shape.str());
  }
  Tensor t(*this);
  t.shape_ = new_shape;
  return t;
}

void Tensor::resize(Shape shape) {
  // Compare against the actual element count: a default-constructed tensor
  // has a rank-0 shape whose numel() is 1 but holds no data.
  const std::int64_t n = shape.numel();
  if (bound()) {
    MINSGD_CHECK(n <= bound_cap_, "Tensor::resize: shape ", shape.str(),
                 " exceeds bound capacity ", bound_cap_);
    if (n != numel_) std::fill_n(ptr_, static_cast<std::size_t>(n), 0.0f);
    numel_ = n;
  } else if (static_cast<std::size_t>(n) != data_.size()) {
    if (static_cast<std::size_t>(n) > data_.capacity()) {
      note_alloc(static_cast<std::size_t>(n) * sizeof(float));
    }
    data_.assign(static_cast<std::size_t>(n), 0.0f);
    ptr_ = data_.data();
    numel_ = n;
  }
  shape_ = shape;
}

void Tensor::bind(float* storage, std::int64_t capacity, const Shape& shape) {
  MINSGD_CHECK(capacity >= 0 && (storage != nullptr || capacity == 0),
               "Tensor::bind: bad storage");
  MINSGD_CHECK(shape.numel() <= capacity, "Tensor::bind: shape ", shape.str(),
               " exceeds capacity ", capacity);
  data_.clear();
  data_.shrink_to_fit();
  shape_ = shape;
  ptr_ = storage;
  numel_ = shape.numel();
  bound_cap_ = capacity;
}

}  // namespace minsgd
