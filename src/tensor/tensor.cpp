#include "tensor/tensor.hpp"

#include <algorithm>
#include <stdexcept>

namespace minsgd {

Tensor::Tensor(Shape shape)
    : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(shape), data_(std::move(data)) {
  if (static_cast<std::int64_t>(data_.size()) != shape_.numel()) {
    throw std::invalid_argument("Tensor: data size does not match shape " +
                                shape_.str());
  }
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != shape_.numel()) {
    throw std::invalid_argument("Tensor::reshaped: numel mismatch " +
                                shape_.str() + " -> " + new_shape.str());
  }
  Tensor t;
  t.shape_ = new_shape;
  t.data_ = data_;
  return t;
}

void Tensor::resize(Shape shape) {
  // Compare against the actual storage size: a default-constructed tensor
  // has a rank-0 shape whose numel() is 1 but holds no data.
  if (static_cast<std::size_t>(shape.numel()) != data_.size()) {
    data_.assign(static_cast<std::size_t>(shape.numel()), 0.0f);
  }
  shape_ = shape;
}

}  // namespace minsgd
