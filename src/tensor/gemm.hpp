// sgemm: single-precision general matrix multiply.
//
// C = alpha * op(A) * op(B) + beta * C, row-major. Large problems route to
// register-blocked, panel-packed microkernels behind a runtime ISA
// dispatcher (see tensor/kernels/); small problems take a direct scalar
// path. Which path runs is a function of shape only, and the microkernel
// contract makes results bit-identical across ISA paths and thread counts.
// This is the compute backbone: Conv2d lowers to im2col + sgemm (or a fused
// direct-conv variant of the same kernels), Linear is a direct sgemm.
#pragma once

#include <cstdint>

namespace minsgd {

class ComputeContext;

enum class Trans { kNo, kYes };

/// Row-major sgemm. A is (M x K) if ta==kNo else (K x M); B is (K x N) if
/// tb==kNo else (N x K); C is always (M x N) with leading dimension N.
/// lda/ldb are the leading dimensions of A/B as stored.
void sgemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
           float alpha, const float* a, std::int64_t lda, const float* b,
           std::int64_t ldb, float beta, float* c, std::int64_t ldc);

/// Context-aware sgemm: row-blocks of C run on `ctx`. Each row-block is
/// computed serially within itself, so the result is bit-identical for any
/// thread count; inside an outer parallel region the whole call runs inline.
void sgemm(const ComputeContext& ctx, Trans ta, Trans tb, std::int64_t m,
           std::int64_t n, std::int64_t k, float alpha, const float* a,
           std::int64_t lda, const float* b, std::int64_t ldb, float beta,
           float* c, std::int64_t ldc);

/// Convenience overload with packed leading dimensions.
void sgemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
           float alpha, const float* a, const float* b, float beta, float* c);

}  // namespace minsgd
