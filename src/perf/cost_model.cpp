#include "perf/cost_model.hpp"

#include <cmath>
#include <stdexcept>

namespace minsgd::perf {

double allreduce_time_logtree(const NetworkSpec& net, int nodes,
                              std::int64_t bytes) {
  if (nodes <= 0) throw std::invalid_argument("allreduce: nodes <= 0");
  if (nodes == 1) return 0.0;
  const double hops = std::log2(static_cast<double>(nodes));
  return hops * (net.alpha + static_cast<double>(bytes) * net.beta);
}

double allreduce_time_ring(const NetworkSpec& net, int nodes,
                           std::int64_t bytes) {
  if (nodes <= 0) throw std::invalid_argument("allreduce: nodes <= 0");
  if (nodes == 1) return 0.0;
  const double p = nodes;
  return 2.0 * (p - 1.0) * net.alpha +
         2.0 * (p - 1.0) / p * static_cast<double>(bytes) * net.beta;
}

Projection project_training(const WorkloadSpec& work, const RunSpec& run,
                            const DeviceSpec& device, const NetworkSpec& net) {
  if (work.flops_per_image <= 0 || work.params <= 0 ||
      work.dataset_size <= 0 || work.epochs <= 0) {
    throw std::invalid_argument("project_training: bad workload");
  }
  if (run.global_batch <= 0 || run.nodes <= 0 ||
      run.global_batch % run.nodes != 0) {
    throw std::invalid_argument(
        "project_training: batch must be a positive multiple of nodes");
  }
  Projection p;
  p.iterations = (work.epochs * work.dataset_size + run.global_batch - 1) /
                 run.global_batch;
  const std::int64_t local_batch = run.global_batch / run.nodes;
  p.t_comp = work.fwd_bwd_factor *
             static_cast<double>(work.flops_per_image) *
             static_cast<double>(local_batch) / device.sustained_flops();
  const std::int64_t grad_bytes = work.params * 4;
  p.t_comm = (run.comm_model == CommModel::kLogTree)
                 ? allreduce_time_logtree(net, run.nodes, grad_bytes)
                 : allreduce_time_ring(net, run.nodes, grad_bytes);
  // Latency/bandwidth bookkeeping, the paper's Figures 8-10: one allreduce
  // per iteration; "messages" counts the per-iteration collective rounds
  // and volume counts gradient bytes per node.
  p.messages = p.iterations;
  p.comm_bytes = p.iterations * grad_bytes;
  return p;
}

double weak_scaling_efficiency(const WorkloadSpec& work,
                               const DeviceSpec& device,
                               const NetworkSpec& net,
                               std::int64_t local_batch, int nodes,
                               CommModel comm_model) {
  const auto one =
      project_training(work, {local_batch, 1, comm_model}, device, net);
  const auto many = project_training(
      work, {local_batch * nodes, nodes, comm_model}, device, net);
  return one.iteration_time() / many.iteration_time();
}

double strong_scaling_efficiency(const WorkloadSpec& work,
                                 const DeviceSpec& device,
                                 const NetworkSpec& net,
                                 std::int64_t global_batch, int nodes,
                                 CommModel comm_model) {
  if (global_batch % nodes != 0) {
    throw std::invalid_argument(
        "strong_scaling_efficiency: nodes must divide global_batch");
  }
  const auto one =
      project_training(work, {global_batch, 1, comm_model}, device, net);
  const auto many =
      project_training(work, {global_batch, nodes, comm_model}, device, net);
  const double speedup = one.total_seconds() / many.total_seconds();
  return speedup / static_cast<double>(nodes);
}

}  // namespace minsgd::perf
