#include "perf/energy.hpp"

namespace minsgd::perf {

const std::vector<EnergyEntry>& energy_table_45nm() {
  static const std::vector<EnergyEntry> table = {
      {"32 bit int add", OpKind::kComputation, 0.1},
      {"32 bit float add", OpKind::kComputation, 0.9},
      {"32 bit register access", OpKind::kCommunication, 1.0},
      {"32 bit int multiply", OpKind::kComputation, 3.1},
      {"32 bit float multiply", OpKind::kComputation, 3.7},
      {"32 bit SRAM access", OpKind::kCommunication, 5.0},
      {"32 bit DRAM access", OpKind::kCommunication, 640.0},
  };
  return table;
}

double energy_pj_float_add() { return 0.9; }
double energy_pj_float_mul() { return 3.7; }
double energy_pj_dram_access() { return 640.0; }
double energy_pj_sram_access() { return 5.0; }

IterationEnergy estimate_iteration_energy(std::int64_t flops,
                                          std::int64_t comm_words,
                                          std::int64_t hops) {
  IterationEnergy e;
  const double half_flops = static_cast<double>(flops) / 2.0;
  e.compute_j =
      (half_flops * energy_pj_float_add() + half_flops * energy_pj_float_mul())
      * 1e-12;
  e.comm_j = static_cast<double>(comm_words) * static_cast<double>(hops) *
             2.0 * energy_pj_dram_access() * 1e-12;
  return e;
}

}  // namespace minsgd::perf
