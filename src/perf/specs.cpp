#include "perf/specs.hpp"

namespace minsgd::perf {

DeviceSpec nvidia_m40() { return {"NVIDIA M40", 7.0e12, 0.30}; }

DeviceSpec nvidia_p100() { return {"NVIDIA P100", 10.6e12, 0.45}; }

DeviceSpec intel_knl7250() { return {"Intel KNL 7250", 6.0e12, 0.25}; }

DeviceSpec intel_skylake8160() {
  // 24 cores x 2.1 GHz x 64 SP flops/cycle (2x AVX-512 FMA) = 3.2 Tflops.
  return {"Intel Xeon Platinum 8160", 3.2e12, 0.35};
}

NetworkSpec mellanox_fdr_ib() {
  return {"Mellanox 56Gb/s FDR IB", 0.7e-6, 0.2e-9};
}

NetworkSpec intel_qdr_ib() {
  return {"Intel 40Gb/s QDR IB", 1.2e-6, 0.3e-9};
}

NetworkSpec intel_10gbe() {
  return {"Intel 10GbE NetEffect NE020", 7.2e-6, 0.9e-9};
}

NetworkSpec nvlink() {
  // First-generation NVLink: ~50 GB/s effective per direction, ~5us
  // software latency. Used for the paper's single-DGX-1 rows.
  return {"NVLink (DGX-1)", 5.0e-6, 0.02e-9};
}

}  // namespace minsgd::perf
