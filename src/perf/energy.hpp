// Energy model (paper Table 12, Horowitz's 45nm numbers).
//
// The paper's point: moving a word costs orders of magnitude more energy
// than computing with it (DRAM access 640 pJ vs float multiply 3.7 pJ), so
// reducing communication volume — which large batches do — saves energy as
// well as time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace minsgd::perf {

enum class OpKind { kComputation, kCommunication };

struct EnergyEntry {
  std::string operation;
  OpKind kind;
  double picojoules;
};

/// The 45nm CMOS energy table exactly as the paper reproduces it.
const std::vector<EnergyEntry>& energy_table_45nm();

/// Convenience accessors for the entries the estimators use.
double energy_pj_float_add();
double energy_pj_float_mul();
double energy_pj_dram_access();
double energy_pj_sram_access();

/// Energy estimate for one training iteration, in joules.
///
/// Computation: flops split evenly into adds and multiplies.
/// Communication: every gradient word is read from DRAM, moved, and written
/// back at the receiver (2 DRAM accesses per word per hop).
struct IterationEnergy {
  double compute_j = 0.0;
  double comm_j = 0.0;
  double total() const { return compute_j + comm_j; }
};

IterationEnergy estimate_iteration_energy(std::int64_t flops,
                                          std::int64_t comm_words,
                                          std::int64_t hops);

}  // namespace minsgd::perf
