// Alpha-beta-gamma cost model for synchronous data-parallel SGD.
//
// This is the paper's own scaling analysis (Table 2 and the "Scaling
// Efficiency of Large Batches" section) turned into code:
//
//   iterations(E, n, B)   = E * n / B
//   t_iter                = t_comp + t_comm
//   t_comp(B_local)       = fwd_bwd_factor * flops_per_image * B_local
//                           / sustained_flops
//   t_comm(P, |W|)        = allreduce cost of 4|W| bytes over P nodes
//
// Two allreduce cost shapes are provided: the log(P)*(alpha + V*beta) model
// the paper's Table 2 uses, and the bandwidth-optimal ring model
// 2*(P-1)/P*V*beta + 2*(P-1)*alpha. Both are exposed so benches can show
// the paper's numbers and the tighter bound side by side.
#pragma once

#include <cstdint>

#include "perf/specs.hpp"

namespace minsgd::perf {

/// Cost of one allreduce of `bytes` over `nodes`, log-tree model (Table 2).
double allreduce_time_logtree(const NetworkSpec& net, int nodes,
                              std::int64_t bytes);

/// Cost of one allreduce of `bytes` over `nodes`, ring model.
double allreduce_time_ring(const NetworkSpec& net, int nodes,
                           std::int64_t bytes);

enum class CommModel { kLogTree, kRing };

struct WorkloadSpec {
  std::int64_t flops_per_image = 0;  // forward pass, one image
  std::int64_t params = 0;           // |W|
  std::int64_t dataset_size = 0;     // n
  std::int64_t epochs = 0;           // E
  /// backward+update cost relative to forward (classic rule of thumb: the
  /// two backward GEMMs double the forward work, so total = 3x forward).
  double fwd_bwd_factor = 3.0;
};

struct RunSpec {
  std::int64_t global_batch = 0;
  int nodes = 1;
  CommModel comm_model = CommModel::kLogTree;
};

struct Projection {
  std::int64_t iterations = 0;
  double t_comp = 0.0;        // per iteration, seconds
  double t_comm = 0.0;        // per iteration, seconds
  double iteration_time() const { return t_comp + t_comm; }
  double total_seconds() const {
    return static_cast<double>(iterations) * iteration_time();
  }
  std::int64_t messages = 0;       // total messages (latency overhead)
  std::int64_t comm_bytes = 0;     // total bytes moved (bandwidth overhead)
};

/// Projects a full training run. Throws if global_batch is not divisible by
/// nodes or any size is non-positive.
Projection project_training(const WorkloadSpec& work, const RunSpec& run,
                            const DeviceSpec& device, const NetworkSpec& net);

/// Weak scaling efficiency at P nodes: keep the local batch fixed (global
/// batch = local_batch * P) and compare per-iteration time against one
/// node. 1.0 means communication is free; the paper's Table 2 argument is
/// that this stays near 1 because t_comm grows only logarithmically.
double weak_scaling_efficiency(const WorkloadSpec& work,
                               const DeviceSpec& device,
                               const NetworkSpec& net,
                               std::int64_t local_batch, int nodes,
                               CommModel comm_model = CommModel::kRing);

/// Strong scaling efficiency at P nodes: keep the global batch fixed and
/// compare total time speedup against one node, divided by P. Degrades
/// faster than weak scaling because the per-node compute shrinks while the
/// allreduce does not — the reason the paper grows the batch with P.
double strong_scaling_efficiency(const WorkloadSpec& work,
                                 const DeviceSpec& device,
                                 const NetworkSpec& net,
                                 std::int64_t global_batch, int nodes,
                                 CommModel comm_model = CommModel::kRing);

}  // namespace minsgd::perf
