// Hardware specifications used by the analytic performance model.
//
// Peak FLOP rates are the vendor numbers the paper itself quotes (P100
// 10.6 Tflops, KNL 6 Tflops); network alpha/beta constants are the paper's
// Table 11. `dnn_efficiency` is the fraction of peak a tuned DNN framework
// sustained on each device circa 2017 — the one calibration knob, recorded
// per device and validated against the paper's published wall-clock rows in
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>

namespace minsgd::perf {

struct DeviceSpec {
  std::string name;
  double peak_flops = 0.0;      // single-precision flop/s
  double dnn_efficiency = 0.3;  // sustained fraction of peak for conv nets
  double sustained_flops() const { return peak_flops * dnn_efficiency; }
};

struct NetworkSpec {
  std::string name;
  double alpha = 0.0;  // per-message latency, seconds
  double beta = 0.0;   // per-byte transfer time, seconds (1/bandwidth)
};

// -- devices (paper: "NVIDIA P100 GPU and Intel KNL" section) --------------
DeviceSpec nvidia_m40();      // 7.0 Tflops; the paper's 14-day baseline GPU
DeviceSpec nvidia_p100();     // 10.6 Tflops
DeviceSpec intel_knl7250();   // 6.0 Tflops (Xeon Phi 7250)
DeviceSpec intel_skylake8160();  // Xeon Platinum 8160, 32 SP flops/cycle/core

// -- networks (paper Table 11) ---------------------------------------------
NetworkSpec mellanox_fdr_ib();   // alpha 0.7us, beta 0.2 ns/byte
NetworkSpec intel_qdr_ib();      // alpha 1.2us, beta 0.3 ns/byte
NetworkSpec intel_10gbe();       // alpha 7.2us, beta 0.9 ns/byte
NetworkSpec nvlink();            // intra-DGX-1 fabric (not in Table 11)

/// Stampede-2-like cluster description.
struct ClusterSpec {
  std::string name;
  DeviceSpec device;
  NetworkSpec network;
  int nodes = 1;
};

}  // namespace minsgd::perf
