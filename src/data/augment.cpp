#include "data/augment.hpp"

#include <stdexcept>
#include <vector>

#include "obs/trace.hpp"

namespace minsgd::data {

void augment_image(std::span<float> chw, std::int64_t resolution,
                   const AugmentConfig& config, Rng& rng) {
  obs::ScopedSpan span("data.augment", obs::cat::kData);
  const std::int64_t r = resolution;
  if (static_cast<std::int64_t>(chw.size()) != 3 * r * r) {
    throw std::invalid_argument("augment_image: span size mismatch");
  }
  if (config.pad < 0) throw std::invalid_argument("augment_image: pad < 0");

  const std::int64_t pad = config.pad;
  if (pad > 0) {
    // Crop offset in the zero-padded frame; offset == pad is the identity.
    const auto oy = static_cast<std::int64_t>(rng.uniform_int(2 * pad + 1));
    const auto ox = static_cast<std::int64_t>(rng.uniform_int(2 * pad + 1));
    std::vector<float> tmp(chw.begin(), chw.end());
    for (std::int64_t c = 0; c < 3; ++c) {
      for (std::int64_t y = 0; y < r; ++y) {
        for (std::int64_t x = 0; x < r; ++x) {
          const std::int64_t sy = y + oy - pad;
          const std::int64_t sx = x + ox - pad;
          chw[(c * r + y) * r + x] =
              (sy >= 0 && sy < r && sx >= 0 && sx < r)
                  ? tmp[static_cast<std::size_t>((c * r + sy) * r + sx)]
                  : 0.0f;
        }
      }
    }
  }
  if (config.hflip && rng.uniform() < 0.5) {
    for (std::int64_t c = 0; c < 3; ++c) {
      for (std::int64_t y = 0; y < r; ++y) {
        float* row = chw.data() + (c * r + y) * r;
        for (std::int64_t x = 0; x < r / 2; ++x) {
          std::swap(row[x], row[r - 1 - x]);
        }
      }
    }
  }
}

}  // namespace minsgd::data
