// Sharded batch loader for data-parallel training.
//
// The global batch of iteration t in epoch e is a fixed function of
// (dataset seed, e, t); worker `rank` of `world` materializes only its
// 1/world slice. This is the property that makes the sequential-consistency
// test possible: a single process with world=1 sees exactly the union of
// the P workers' shards, in the same order.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "data/augment.hpp"
#include "data/synthetic.hpp"
#include "tensor/context.hpp"
#include "tensor/tensor.hpp"

namespace minsgd::data {

/// One (local) batch of NCHW images and labels.
struct Batch {
  Tensor x;                           // local_batch x 3 x r x r
  std::vector<std::int32_t> labels;   // local_batch
};

class ShardedLoader {
 public:
  /// `global_batch` must be divisible by `world`; `rank` in [0, world).
  /// If `augment` is set, weak augmentation is applied to training samples
  /// with a per-(epoch, rank) deterministic stream.
  ShardedLoader(const SyntheticImageNet& dataset, std::int64_t global_batch,
                std::int64_t rank = 0, std::int64_t world = 1,
                std::optional<AugmentConfig> augment = std::nullopt);

  std::int64_t iterations_per_epoch() const;
  std::int64_t local_batch() const { return global_batch_ / world_; }
  std::int64_t global_batch() const { return global_batch_; }

  /// Materializes this rank's slice of global batch `iter` of `epoch`.
  /// Iterations wrap modulo iterations_per_epoch(). Per-sample generation +
  /// augmentation run batch-parallel on `ctx`; the augmentation RNG is keyed
  /// by (epoch, sample), so the batch bytes are identical for any thread
  /// count (and any rank/world split).
  Batch load_train(
      std::int64_t epoch, std::int64_t iter,
      const ComputeContext& ctx = ComputeContext::default_ctx()) const;

  /// Sequential test batches (no sharding, no augmentation); `start` is the
  /// first test index, count capped at the split size.
  Batch load_test(std::int64_t start, std::int64_t count) const;

 private:
  const SyntheticImageNet& dataset_;
  std::int64_t global_batch_, rank_, world_;
  std::optional<AugmentConfig> augment_;
};

}  // namespace minsgd::data
