// SyntheticImageNet: a deterministic ImageNet-1k stand-in.
//
// The real dataset is unavailable in this environment; this generator is the
// documented substitution (DESIGN.md §2). Each class has a smooth random
// "prototype" pattern (a sum of random oriented sinusoids per channel);
// a sample is its class prototype randomly shifted, mixed with a distractor
// prototype from another class, plus per-sample Gaussian noise. The task has
// a genuine generalization gap (test samples use unseen noise and shifts),
// so optimizer quality — not memorization — determines test accuracy, which
// is the property the paper's large-batch experiments probe.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace minsgd::data {

struct SynthConfig {
  std::int64_t classes = 16;
  std::int64_t resolution = 24;  // images are 3 x resolution x resolution
  std::int64_t train_size = 16384;
  std::int64_t test_size = 2048;
  std::uint64_t seed = 42;
  float noise = 0.6f;        // per-pixel Gaussian noise stddev
  float distractor = 0.45f;  // weight of the confusing other-class pattern
  std::int64_t max_shift = 3;  // random translation amplitude, pixels
  /// When set, each sample's pattern is horizontally mirrored with
  /// probability 1/2, making the class distribution flip-closed like
  /// natural images. Required for horizontal-flip augmentation to be
  /// label-preserving (see bench_augmentation).
  bool mirror_invariant = false;
};

/// Deterministic synthetic classification dataset. Samples are generated on
/// demand from (split, index) so arbitrarily large datasets cost no memory
/// and any shard can be produced without coordination — mirroring how each
/// worker in the paper's data-parallel runs reads its own partition.
class SyntheticImageNet {
 public:
  explicit SyntheticImageNet(SynthConfig config = {});

  const SynthConfig& config() const { return config_; }
  std::int64_t classes() const { return config_.classes; }
  std::int64_t train_size() const { return config_.train_size; }
  std::int64_t test_size() const { return config_.test_size; }
  std::int64_t resolution() const { return config_.resolution; }
  /// Floats per image (3 * r * r).
  std::int64_t image_numel() const;

  /// Writes train sample `idx` (label returned) into `out`.
  std::int32_t get_train(std::int64_t idx, std::span<float> out) const;

  /// Writes test sample `idx` into `out`.
  std::int32_t get_test(std::int64_t idx, std::span<float> out) const;

  /// Read-only access to a class prototype (for tests / visual checks).
  const Tensor& prototype(std::int64_t cls) const;

 private:
  std::int32_t generate(std::int64_t idx, std::uint64_t split_salt,
                        std::span<float> out) const;

  SynthConfig config_;
  std::vector<Tensor> prototypes_;
};

}  // namespace minsgd::data
