// Weak data augmentation: random pad-crop and horizontal flip.
//
// The paper distinguishes "no augmentation" (73.0% baseline) from "weak
// augmentation" (75.3% baseline) from Facebook's heavy pipeline. Pad-crop +
// hflip is the classic weak recipe and is what Table 9/10's "YES" rows use
// here.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/rng.hpp"

namespace minsgd::data {

struct AugmentConfig {
  std::int64_t pad = 2;   // zero-pad then crop back to original size
  bool hflip = true;      // mirror with probability 1/2
};

/// Applies pad-crop + flip in place to one CHW image of side `resolution`.
/// `rng` supplies the crop offsets / flip coin, so the caller controls
/// determinism (each worker uses its own stream, reseeded per epoch).
void augment_image(std::span<float> chw, std::int64_t resolution,
                   const AugmentConfig& config, Rng& rng);

}  // namespace minsgd::data
