#include "data/loader.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "obs/trace.hpp"

namespace minsgd::data {

ShardedLoader::ShardedLoader(const SyntheticImageNet& dataset,
                             std::int64_t global_batch, std::int64_t rank,
                             std::int64_t world,
                             std::optional<AugmentConfig> augment)
    : dataset_(dataset),
      global_batch_(global_batch),
      rank_(rank),
      world_(world),
      augment_(augment) {
  if (world_ <= 0 || rank_ < 0 || rank_ >= world_) {
    throw std::invalid_argument("ShardedLoader: bad rank/world");
  }
  if (global_batch_ <= 0 || global_batch_ % world_ != 0) {
    throw std::invalid_argument(
        "ShardedLoader: global_batch must be a positive multiple of world");
  }
  if (global_batch_ > dataset_.train_size()) {
    throw std::invalid_argument(
        "ShardedLoader: global_batch exceeds the training set");
  }
}

std::int64_t ShardedLoader::iterations_per_epoch() const {
  return dataset_.train_size() / global_batch_;
}

Batch ShardedLoader::load_train(std::int64_t epoch, std::int64_t iter,
                                const ComputeContext& ctx) const {
  if (epoch < 0 || iter < 0) {
    throw std::invalid_argument("ShardedLoader::load_train: negative index");
  }
  obs::ScopedSpan span("data.load_train", obs::cat::kData);
  span.set_threads(static_cast<int>(ctx.threads()));
  iter %= iterations_per_epoch();

  // Deterministic epoch permutation (Fisher-Yates from a per-epoch stream).
  std::vector<std::int64_t> perm(
      static_cast<std::size_t>(dataset_.train_size()));
  std::iota(perm.begin(), perm.end(), 0);
  Rng shuffle_rng(dataset_.config().seed * 0x2545f4914f6cdd1dull +
                  static_cast<std::uint64_t>(epoch) + 1);
  for (std::size_t i = perm.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(shuffle_rng.uniform_int(i));
    std::swap(perm[i - 1], perm[j]);
  }

  const std::int64_t lb = local_batch();
  const std::int64_t r = dataset_.resolution();
  const std::int64_t img = dataset_.image_numel();
  Batch b;
  b.x = Tensor({lb, 3, r, r});
  b.labels.resize(static_cast<std::size_t>(lb));
  const std::int64_t base = iter * global_batch_ + rank_ * lb;
  // Each sample writes a disjoint slice of b.x and draws from its own
  // (epoch, sample)-keyed RNG, so batch-parallel materialization is safe and
  // thread-count-invariant.
  ctx.parallel_for(
      0, lb,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const std::int64_t global_pos = base + i;  // global batch position
          const std::int64_t sample = perm[static_cast<std::size_t>(global_pos)];
          auto out = std::span<float>(b.x.data() + i * img,
                                      static_cast<std::size_t>(img));
          b.labels[static_cast<std::size_t>(i)] =
              dataset_.get_train(sample, out);
          if (augment_) {
            // Keyed by (epoch, sample): independent of rank/world so a
            // world=1 run sees byte-identical data to the union of P shards.
            Rng aug_rng(
                dataset_.config().seed ^
                (static_cast<std::uint64_t>(epoch) * 0x9e3779b97f4a7c15ull) ^
                (static_cast<std::uint64_t>(sample) + 0x51ull));
            augment_image(out, r, *augment_, aug_rng);
          }
        }
      },
      /*grain=*/1);
  return b;
}

Batch ShardedLoader::load_test(std::int64_t start, std::int64_t count) const {
  if (start < 0 || start >= dataset_.test_size() || count <= 0) {
    throw std::invalid_argument("ShardedLoader::load_test: bad range");
  }
  count = std::min(count, dataset_.test_size() - start);
  const std::int64_t r = dataset_.resolution();
  const std::int64_t img = dataset_.image_numel();
  Batch b;
  b.x = Tensor({count, 3, r, r});
  b.labels.resize(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    auto out = std::span<float>(b.x.data() + i * img,
                                static_cast<std::size_t>(img));
    b.labels[static_cast<std::size_t>(i)] = dataset_.get_test(start + i, out);
  }
  return b;
}

}  // namespace minsgd::data
