#include "data/synthetic.hpp"

#include <cmath>
#include <stdexcept>

namespace minsgd::data {
namespace {
constexpr std::uint64_t kTrainSalt = 0x7261696eull;  // "rain"
constexpr std::uint64_t kTestSalt = 0x74657374ull;   // "test"
constexpr int kWavesPerChannel = 4;
}  // namespace

SyntheticImageNet::SyntheticImageNet(SynthConfig config) : config_(config) {
  if (config_.classes < 2) {
    throw std::invalid_argument("SyntheticImageNet: need >= 2 classes");
  }
  if (config_.resolution < 8) {
    throw std::invalid_argument("SyntheticImageNet: resolution < 8");
  }
  if (config_.train_size <= 0 || config_.test_size <= 0) {
    throw std::invalid_argument("SyntheticImageNet: empty split");
  }
  if (config_.max_shift < 0 || config_.max_shift >= config_.resolution / 2) {
    throw std::invalid_argument("SyntheticImageNet: bad max_shift");
  }
  // Build class prototypes: per channel, a sum of random oriented sinusoids
  // normalized to unit RMS, so every class has comparable energy.
  const std::int64_t r = config_.resolution;
  Rng proto_rng(config_.seed);
  prototypes_.reserve(static_cast<std::size_t>(config_.classes));
  for (std::int64_t cls = 0; cls < config_.classes; ++cls) {
    Tensor p({1, 3, r, r});
    for (std::int64_t ch = 0; ch < 3; ++ch) {
      for (int wv = 0; wv < kWavesPerChannel; ++wv) {
        const double fx = proto_rng.uniform(0.5, 3.0) * 2.0 * M_PI / r;
        const double fy = proto_rng.uniform(0.5, 3.0) * 2.0 * M_PI / r;
        const double phase = proto_rng.uniform(0.0, 2.0 * M_PI);
        const double amp = proto_rng.uniform(0.5, 1.0);
        for (std::int64_t y = 0; y < r; ++y) {
          for (std::int64_t x = 0; x < r; ++x) {
            p.at(0, ch, y, x) += static_cast<float>(
                amp * std::sin(fx * x + fy * y + phase));
          }
        }
      }
    }
    // Normalize to unit RMS.
    double ss = 0.0;
    for (std::int64_t i = 0; i < p.numel(); ++i) ss += p[i] * p[i];
    const auto inv_rms = static_cast<float>(
        1.0 / std::sqrt(ss / static_cast<double>(p.numel()) + 1e-12));
    for (std::int64_t i = 0; i < p.numel(); ++i) p[i] *= inv_rms;
    prototypes_.push_back(std::move(p));
  }
}

std::int64_t SyntheticImageNet::image_numel() const {
  return 3 * config_.resolution * config_.resolution;
}

const Tensor& SyntheticImageNet::prototype(std::int64_t cls) const {
  return prototypes_.at(static_cast<std::size_t>(cls));
}

std::int32_t SyntheticImageNet::generate(std::int64_t idx,
                                         std::uint64_t split_salt,
                                         std::span<float> out) const {
  if (static_cast<std::int64_t>(out.size()) != image_numel()) {
    throw std::invalid_argument("SyntheticImageNet: output span size");
  }
  // Per-sample stream: fully determined by (seed, split, index).
  Rng rng(config_.seed ^ (split_salt * 0x9e3779b97f4a7c15ull) ^
          (static_cast<std::uint64_t>(idx) * 0xd1b54a32d192ed03ull));
  const auto label =
      static_cast<std::int32_t>(rng.uniform_int(
          static_cast<std::uint64_t>(config_.classes)));
  auto distractor_cls = static_cast<std::int64_t>(rng.uniform_int(
      static_cast<std::uint64_t>(config_.classes - 1)));
  if (distractor_cls >= label) ++distractor_cls;

  const std::int64_t r = config_.resolution;
  const std::int64_t s = config_.max_shift;
  const bool mirrored = config_.mirror_invariant && rng.uniform() < 0.5;
  const auto dx = static_cast<std::int64_t>(rng.uniform_int(2 * s + 1)) - s;
  const auto dy = static_cast<std::int64_t>(rng.uniform_int(2 * s + 1)) - s;
  const auto ddx = static_cast<std::int64_t>(rng.uniform_int(2 * s + 1)) - s;
  const auto ddy = static_cast<std::int64_t>(rng.uniform_int(2 * s + 1)) - s;

  const Tensor& proto = prototypes_[static_cast<std::size_t>(label)];
  const Tensor& dis = prototypes_[static_cast<std::size_t>(distractor_cls)];
  const float dw = config_.distractor;
  std::size_t o = 0;
  for (std::int64_t ch = 0; ch < 3; ++ch) {
    for (std::int64_t y = 0; y < r; ++y) {
      for (std::int64_t x = 0; x < r; ++x, ++o) {
        // Toroidal shift keeps energy constant under translation; the
        // optional mirror flips the sampling coordinate.
        const std::int64_t sx = mirrored ? (r - 1 - x) : x;
        const std::int64_t py = ((y + dy) % r + r) % r;
        const std::int64_t px = ((sx + dx) % r + r) % r;
        const std::int64_t qy = ((y + ddy) % r + r) % r;
        const std::int64_t qx = ((sx + ddx) % r + r) % r;
        out[o] = proto.at(0, ch, py, px) + dw * dis.at(0, ch, qy, qx) +
                 config_.noise * static_cast<float>(rng.normal());
      }
    }
  }
  return label;
}

std::int32_t SyntheticImageNet::get_train(std::int64_t idx,
                                          std::span<float> out) const {
  if (idx < 0 || idx >= config_.train_size) {
    throw std::out_of_range("SyntheticImageNet::get_train: index");
  }
  return generate(idx, kTrainSalt, out);
}

std::int32_t SyntheticImageNet::get_test(std::int64_t idx,
                                         std::span<float> out) const {
  if (idx < 0 || idx >= config_.test_size) {
    throw std::out_of_range("SyntheticImageNet::get_test: index");
  }
  return generate(idx, kTestSalt, out);
}

}  // namespace minsgd::data
