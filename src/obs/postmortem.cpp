#include "obs/postmortem.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <tuple>

#include "core/check.hpp"
#include "obs/json.hpp"

namespace minsgd::obs {

namespace {

/// JSON string escaping (same policy as the tracer's writer).
void write_escaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

constexpr const char* kSchema = "minsgd-postmortem-v1";

// Every enumerator, for string round-tripping. Extending the enums without
// extending these lists breaks the read-back tests, on purpose.
constexpr FlightKind kAllKinds[] = {
    FlightKind::kNone,       FlightKind::kCollBegin, FlightKind::kCollEnd,
    FlightKind::kArrive,     FlightKind::kStep,      FlightKind::kMembership,
    FlightKind::kCheckpoint, FlightKind::kFault,     FlightKind::kCrash,
};
constexpr FlightOp kAllOps[] = {
    FlightOp::kNone,          FlightOp::kBarrier,
    FlightOp::kBroadcast,     FlightOp::kReduce,
    FlightOp::kAllgather,     FlightOp::kAllreduceStar,
    FlightOp::kAllreduceRing, FlightOp::kAllreduceTree,
    FlightOp::kAllreduceRhd,  FlightOp::kDrop,
    FlightOp::kDelay,         FlightOp::kDuplicate,
    FlightOp::kCorrupt,       FlightOp::kCrashed,
    FlightOp::kTimeout,       FlightOp::kStall,
    FlightOp::kSave,          FlightOp::kLoad,
    FlightOp::kCommit,        FlightOp::kRendezvous,
};

FlightKind kind_from_string(const std::string& s) {
  for (const FlightKind k : kAllKinds) {
    if (s == to_string(k)) return k;
  }
  throw std::runtime_error("postmortem: unknown event kind \"" + s + "\"");
}

FlightOp op_from_string(const std::string& s) {
  for (const FlightOp o : kAllOps) {
    if (s == to_string(o)) return o;
  }
  throw std::runtime_error("postmortem: unknown event op \"" + s + "\"");
}

std::int64_t as_int(const json::Value& v) {
  return static_cast<std::int64_t>(v.as_number());
}

struct PathState {
  std::mutex mu;
  std::string path = "postmortem.json";
};

PathState& path_state() {
  static PathState* s = new PathState();  // leaked: read on abort paths
  return *s;
}

void check_failure_dump(const char* message) {
  PostmortemInfo info;
  info.reason = message ? message : "MINSGD_CHECK failure";
  dump_postmortem(info);
}

}  // namespace

void set_postmortem_path(std::string path) {
  PathState& s = path_state();
  std::lock_guard lk(s.mu);
  s.path = std::move(path);
}

std::string postmortem_path() {
  PathState& s = path_state();
  std::lock_guard lk(s.mu);
  return s.path;
}

void write_postmortem(std::ostream& out, const PostmortemInfo& info,
                      std::span<const FlightEvent> events) {
  out << "{\"schema\":\"" << kSchema << "\",\"reason\":\"";
  write_escaped(out, info.reason);
  out << "\",\"world\":" << info.world << ",\"errors\":[";
  bool first = true;
  for (const auto& [rank, what] : info.rank_errors) {
    out << (first ? "" : ",") << "{\"rank\":" << rank << ",\"what\":\"";
    write_escaped(out, what);
    out << "\"}";
    first = false;
  }
  out << "],\"events\":[";
  first = true;
  for (const FlightEvent& e : events) {
    out << (first ? "" : ",\n") << "{\"t_ns\":" << e.t_ns << ",\"kind\":\""
        << to_string(e.kind) << "\",\"op\":\"" << to_string(e.op)
        << "\",\"rank\":" << e.rank << ",\"chan\":" << e.channel
        << ",\"tag\":" << e.tag << ",\"gen\":" << e.generation
        << ",\"bytes\":" << e.bytes << ",\"arg\":" << e.arg << "}";
    first = false;
  }
  out << "]}\n";
}

bool dump_postmortem(const PostmortemInfo& info) {
  const std::string path = postmortem_path();
  if (path.empty()) return false;
  // Temp file + rename: a reader (or a second dumping process under
  // parallel ctest) never observes a half-written dump. The pid suffix
  // keeps concurrent processes off each other's temp file.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  try {
    const std::vector<FlightEvent> events = flight().snapshot();
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) return false;
      write_postmortem(out, info, events);
      if (!out) return false;
    }
    std::filesystem::rename(tmp, path);
    return true;
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return false;
  }
}

void arm_postmortem_on_check_failure() {
  set_check_failure_hook(&check_failure_dump);
}

Postmortem read_postmortem(const std::string& text) {
  const json::Value root = json::parse(text);
  if (!root.contains("schema") || root.at("schema").as_string() != kSchema) {
    throw std::runtime_error("postmortem: missing or unknown schema");
  }
  Postmortem pm;
  pm.info.reason = root.at("reason").as_string();
  pm.info.world = static_cast<int>(as_int(root.at("world")));
  for (const json::Value& e : root.at("errors").as_array()) {
    pm.info.rank_errors.emplace_back(static_cast<int>(as_int(e.at("rank"))),
                                     e.at("what").as_string());
  }
  for (const json::Value& v : root.at("events").as_array()) {
    FlightEvent e;
    e.t_ns = as_int(v.at("t_ns"));
    e.kind = kind_from_string(v.at("kind").as_string());
    e.op = op_from_string(v.at("op").as_string());
    e.rank = static_cast<int>(as_int(v.at("rank")));
    e.channel = static_cast<int>(as_int(v.at("chan")));
    e.tag = as_int(v.at("tag"));
    e.generation = as_int(v.at("gen"));
    e.bytes = as_int(v.at("bytes"));
    e.arg = as_int(v.at("arg"));
    pm.events.push_back(e);
  }
  return pm;
}

Postmortem read_postmortem_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("postmortem: cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return read_postmortem(os.str());
}

FlightAnalysis analyze_flight(std::span<const FlightEvent> events,
                              int world) {
  FlightAnalysis a;
  int max_rank = -1;
  for (const FlightEvent& e : events) max_rank = std::max(max_rank, e.rank);
  a.world = world > 0 ? world : max_rank + 1;

  // Expected participant count per generation: the world argument seeds
  // generation 0; every committed view declares its own (kMembership events
  // carry world in arg).
  std::map<std::int64_t, int> gen_world;
  for (const FlightEvent& e : events) {
    if (e.kind == FlightKind::kMembership) {
      gen_world[e.generation] = static_cast<int>(e.arg);
      a.reconfigs.push_back({e.t_ns, e.generation, static_cast<int>(e.arg)});
    } else if (e.kind == FlightKind::kFault) {
      ++a.fault_events;
    } else if (e.kind == FlightKind::kCrash) {
      ++a.crash_events;
    }
  }
  std::sort(a.reconfigs.begin(), a.reconfigs.end(),
            [](const ReconfigPoint& x, const ReconfigPoint& y) {
              return x.t_ns < y.t_ns;
            });

  // The cross-rank join: one group per (channel, tag, generation, op). The
  // op disambiguates an allreduce wrapper from the nested collective that
  // mints the same first tag (allreduce-tree's inner reduce).
  using Key = std::tuple<int, std::int64_t, std::int64_t, FlightOp>;
  struct GroupAcc {
    std::map<int, std::int64_t> begin_ns;  // rank -> earliest begin
  };
  std::map<Key, GroupAcc> groups;
  // Per-(rank, channel) collective intervals for the exposed/overlapped
  // split; open_begins pairs each end with its begin.
  std::map<std::tuple<int, int, std::int64_t, std::int64_t, FlightOp>,
           std::int64_t>
      open_begins;
  std::map<std::pair<int, int>,
           std::vector<std::pair<std::int64_t, std::int64_t>>>
      intervals;
  std::map<int, std::int64_t> steps_by_rank;

  for (const FlightEvent& e : events) {
    if (e.kind == FlightKind::kStep) {
      ++steps_by_rank[e.rank];
    } else if (e.kind == FlightKind::kCollBegin) {
      auto& g = groups[{e.channel, e.tag, e.generation, e.op}];
      auto [it, inserted] = g.begin_ns.emplace(e.rank, e.t_ns);
      if (!inserted) it->second = std::min(it->second, e.t_ns);
      open_begins[{e.rank, e.channel, e.tag, e.generation, e.op}] = e.t_ns;
    } else if (e.kind == FlightKind::kCollEnd) {
      const auto it =
          open_begins.find({e.rank, e.channel, e.tag, e.generation, e.op});
      if (it != open_begins.end()) {
        intervals[{e.rank, e.channel}].push_back({it->second, e.t_ns});
        open_begins.erase(it);
      }
    }
  }

  std::map<int, RankAttribution> ranks;
  std::vector<CollectiveGroup> all;
  all.reserve(groups.size());
  for (const auto& [key, acc] : groups) {
    CollectiveGroup g;
    g.channel = std::get<0>(key);
    g.tag = std::get<1>(key);
    g.generation = std::get<2>(key);
    g.op = std::get<3>(key);
    g.ranks_seen = static_cast<int>(acc.begin_ns.size());
    const auto gw = gen_world.find(g.generation);
    g.ranks_expected = gw != gen_world.end() ? gw->second : a.world;

    // Arrival order: earliest begin first. The last arriver is charged only
    // the margin over the second-last — the delay nobody else shares.
    std::vector<std::pair<std::int64_t, int>> order;  // (t, rank)
    order.reserve(acc.begin_ns.size());
    for (const auto& [rank, t] : acc.begin_ns) order.push_back({t, rank});
    std::sort(order.begin(), order.end());
    g.first_begin_ns = order.front().first;
    g.first_rank = order.front().second;
    g.last_begin_ns = order.back().first;
    g.last_rank = order.back().second;
    g.skew_ns = g.last_begin_ns - g.first_begin_ns;
    g.margin_ns = order.size() >= 2
                      ? g.last_begin_ns - order[order.size() - 2].first
                      : 0;

    for (const auto& [rank, t] : acc.begin_ns) {
      auto& ra = ranks[rank];
      ra.rank = rank;
      ++ra.groups;
    }
    if (order.size() >= 2) {
      auto& ra = ranks[g.last_rank];
      ++ra.arrived_last;
      ra.lag_ns += g.margin_ns;
    }

    ++a.groups;
    if (g.ranks_expected > 0 && g.ranks_seen == g.ranks_expected) {
      ++a.matched_groups;
    }
    all.push_back(g);
  }
  a.match_rate = a.groups == 0 ? 1.0
                               : static_cast<double>(a.matched_groups) /
                                     static_cast<double>(a.groups);

  for (auto& [rank, ra] : ranks) a.ranks.push_back(ra);
  for (const auto& ra : a.ranks) {
    if (ra.lag_ns > a.straggler_lag_ns) {
      a.straggler_lag_ns = ra.lag_ns;
      a.straggler_rank = ra.rank;
    }
  }

  std::sort(all.begin(), all.end(),
            [](const CollectiveGroup& x, const CollectiveGroup& y) {
              return x.skew_ns > y.skew_ns;
            });
  const std::size_t keep = std::min<std::size_t>(all.size(), 8);
  a.worst.assign(all.begin(),
                 all.begin() + static_cast<std::ptrdiff_t>(keep));

  // Exposed (channel 0: the rank thread blocked in a collective) vs
  // overlapped (channel 1: the async engine's worker) time, as the union of
  // each rank's collective intervals — nested spans (allreduce-tree over
  // reduce + broadcast) are not double counted.
  std::map<int, StepCommRow> rows;
  for (auto& [key, ivals] : intervals) {
    const auto [rank, channel] = key;
    std::sort(ivals.begin(), ivals.end());
    std::int64_t total = 0;
    std::int64_t cur_b = ivals.front().first;
    std::int64_t cur_e = ivals.front().second;
    for (const auto& [b, e] : ivals) {
      if (b > cur_e) {
        total += cur_e - cur_b;
        cur_b = b;
        cur_e = e;
      } else {
        cur_e = std::max(cur_e, e);
      }
    }
    total += cur_e - cur_b;
    auto& row = rows[rank];
    row.rank = rank;
    if (channel == 0) {
      row.exposed_ns += total;
    } else if (channel == 1) {
      row.overlapped_ns += total;
    }
  }
  for (const auto& [rank, n] : steps_by_rank) {
    auto& row = rows[rank];
    row.rank = rank;
    row.steps = n;
  }
  for (const auto& [rank, row] : rows) a.step_comm.push_back(row);
  return a;
}

void write_analysis(std::ostream& out, const FlightAnalysis& a) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "postmortem: world=%d, %lld collective group(s), %lld "
                "matched across ranks (%.1f%%)\n",
                a.world, static_cast<long long>(a.groups),
                static_cast<long long>(a.matched_groups),
                100.0 * a.match_rate);
  out << line;
  if (a.straggler_rank >= 0) {
    std::snprintf(line, sizeof(line),
                  "straggler: rank %d (+%.3f ms total arrival lag)\n",
                  a.straggler_rank,
                  static_cast<double>(a.straggler_lag_ns) / 1e6);
    out << line;
  } else {
    out << "straggler: no attribution evidence\n";
  }
  for (const auto& r : a.ranks) {
    std::snprintf(line, sizeof(line),
                  "  rank %2d: %lld group(s), arrived last %lld times, "
                  "charged %.3f ms\n",
                  r.rank, static_cast<long long>(r.groups),
                  static_cast<long long>(r.arrived_last),
                  static_cast<double>(r.lag_ns) / 1e6);
    out << line;
  }
  if (!a.worst.empty()) {
    out << "worst arrival skew:\n";
    for (const auto& g : a.worst) {
      std::snprintf(
          line, sizeof(line),
          "  chan %d gen %lld tag %lld %-15s %d/%d ranks, skew %.3f ms, "
          "last rank %d (+%.3f ms)\n",
          g.channel, static_cast<long long>(g.generation),
          static_cast<long long>(g.tag), to_string(g.op), g.ranks_seen,
          g.ranks_expected, static_cast<double>(g.skew_ns) / 1e6,
          g.last_rank, static_cast<double>(g.margin_ns) / 1e6);
      out << line;
    }
  }
  if (!a.step_comm.empty()) {
    out << "per-step comm (exposed = main channel, overlapped = async):\n";
    for (const auto& r : a.step_comm) {
      const double steps =
          r.steps > 0 ? static_cast<double>(r.steps) : 1.0;
      std::snprintf(line, sizeof(line),
                    "  rank %2d: %lld step(s), exposed %.3f ms/step, "
                    "overlapped %.3f ms/step\n",
                    r.rank, static_cast<long long>(r.steps),
                    static_cast<double>(r.exposed_ns) / steps / 1e6,
                    static_cast<double>(r.overlapped_ns) / steps / 1e6);
      out << line;
    }
  }
  if (!a.reconfigs.empty()) {
    out << "membership timeline:\n";
    for (const auto& rc : a.reconfigs) {
      std::snprintf(line, sizeof(line),
                    "  t=%.3f ms: generation %lld committed, world %d\n",
                    static_cast<double>(rc.t_ns) / 1e6,
                    static_cast<long long>(rc.generation), rc.world);
      out << line;
    }
  }
  std::snprintf(line, sizeof(line),
                "fault events: %lld, crash events: %lld\n",
                static_cast<long long>(a.fault_events),
                static_cast<long long>(a.crash_events));
  out << line;
}

}  // namespace minsgd::obs
