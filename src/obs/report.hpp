// ScalingRatioReport: Table 6, measured instead of modeled.
//
// The paper's Table 6 computes the "scaling ratio" — how much computation a
// model carries per unit of communication — from static counts (flops per
// image / parameter bytes): AlexNet ~24.6, ResNet-50 ~308, and that 12.5x
// gap is the whole argument for why ResNet-50 weak-scales. bench_table6
// reproduces the static version. This report produces the *measured*
// counterpart: run N instrumented data-parallel iterations, pull the
// per-phase spans out of the tracer, and report wall-clock
// compute-time / comm-time per iteration. The static ratio predicts the
// measured one up to hardware constants, so the direction must agree:
// the ResNet-style model's measured ratio exceeds the AlexNet-style one.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "data/synthetic.hpp"
#include "nn/network.hpp"
#include "optim/optimizer.hpp"
#include "optim/schedule.hpp"

namespace minsgd::obs {

/// Measured per-iteration time breakdown of one model (milliseconds,
/// averaged over ranks and iterations).
struct ScalingRatioRow {
  std::string model;
  int world = 0;
  std::int64_t iterations = 0;  // global iterations measured
  std::int64_t params = 0;
  std::int64_t flops_per_image = 0;
  double data_ms = 0.0;
  double forward_ms = 0.0;
  double backward_ms = 0.0;
  double allreduce_ms = 0.0;
  double step_ms = 0.0;

  double compute_ms() const { return forward_ms + backward_ms + step_ms; }
  double comm_ms() const { return allreduce_ms; }
  /// Measured scaling ratio: wall-clock compute per wall-clock comm.
  double ratio() const;
  /// The paper's static ratio (flops per image / params) for comparison.
  double static_ratio() const;
};

struct ScalingRatioOptions {
  int world = 4;
  std::int64_t global_batch = 32;
  std::int64_t epochs = 1;
  comm::AllreduceAlgo algo = comm::AllreduceAlgo::kRing;
  std::uint64_t init_seed = 7;
};

/// Runs an instrumented sync data-parallel training of `model_factory` and
/// aggregates the trainer's per-iteration phase spans. Tracing is enabled
/// for the duration and restored afterwards; spans recorded by the run stay
/// buffered in the global tracer so the caller can export trace.json.
ScalingRatioRow measure_scaling_ratio(
    const std::string& model_name,
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const std::function<std::unique_ptr<optim::Optimizer>()>& opt_factory,
    const optim::LrSchedule& schedule, const data::SyntheticImageNet& dataset,
    const ScalingRatioOptions& options);

/// Prints the measured-breakdown table (one row per model) to `out`.
void print_scaling_ratio_table(const std::vector<ScalingRatioRow>& rows,
                               std::ostream& out);

}  // namespace minsgd::obs
