#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace minsgd::obs {

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry r;
  return r;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

void MetricsRegistry::register_source(const std::string& name, Source source) {
  std::lock_guard lk(mu_);
  sources_[name] = std::move(source);
}

void MetricsRegistry::unregister_source(const std::string& name) {
  std::lock_guard lk(mu_);
  sources_.erase(name);
}

std::vector<Sample> MetricsRegistry::snapshot() const {
  std::vector<Sample> out;
  std::vector<Source> sources;
  {
    std::lock_guard lk(mu_);
    for (const auto& [name, c] : counters_) {
      out.push_back({name, static_cast<double>(c->value()),
                     Sample::Kind::kCounter});
    }
    for (const auto& [name, g] : gauges_) {
      out.push_back({name, g->value(), Sample::Kind::kGauge});
    }
    sources.reserve(sources_.size());
    for (const auto& [name, s] : sources_) sources.push_back(s);
  }
  // Poll sources outside the lock: a source may itself touch the registry.
  for (const auto& s : sources) {
    auto samples = s();
    out.insert(out.end(), samples.begin(), samples.end());
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

void MetricsRegistry::write_jsonl_snapshot(std::ostream& out) const {
  const auto samples = snapshot();
  out << "{";
  bool first = true;
  char buf[64];
  for (const auto& s : samples) {
    out << (first ? "" : ",") << "\"" << s.name << "\":";
    if (s.kind == Sample::Kind::kCounter) {
      out << static_cast<std::int64_t>(s.value);
    } else if (std::isfinite(s.value)) {
      std::snprintf(buf, sizeof(buf), "%.9g", s.value);
      out << buf;
    } else {
      out << "null";  // JSON has no NaN/Inf
    }
    first = false;
  }
  out << "}\n";
}

void MetricsRegistry::clear() {
  std::lock_guard lk(mu_);
  counters_.clear();
  gauges_.clear();
  sources_.clear();
}

}  // namespace minsgd::obs
