// Minimal JSON reader for validating the tracer's own output.
//
// The obs tests round-trip trace.json and metrics JSONL through a real
// parser instead of grepping for substrings — a trace Chrome cannot load is
// a bug even if the substrings are present. This is a strict little
// recursive-descent parser (objects, arrays, strings with the escapes the
// writer emits, numbers, true/false/null); it throws std::runtime_error
// with an offset on malformed input. It is deliberately not a general JSON
// library: no unicode \uXXXX decoding beyond pass-through, no streaming.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace minsgd::obs::json {

class Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double d) : type_(Type::kNumber), num_(d) {}
  explicit Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool as_bool() const { return checked(Type::kBool), bool_; }
  double as_number() const { return checked(Type::kNumber), num_; }
  const std::string& as_string() const {
    return checked(Type::kString), str_;
  }
  const Array& as_array() const { return checked(Type::kArray), *arr_; }
  const Object& as_object() const { return checked(Type::kObject), *obj_; }

  /// Object member access; throws if absent or not an object.
  const Value& at(const std::string& key) const {
    const auto& o = as_object();
    const auto it = o.find(key);
    if (it == o.end()) throw std::runtime_error("json: missing key " + key);
    return it->second;
  }
  bool contains(const std::string& key) const {
    return type_ == Type::kObject && obj_->count(key) > 0;
  }

 private:
  void checked(Type want) const {
    if (type_ != want) throw std::runtime_error("json: wrong type access");
  }

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Value(string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      default: return number();
    }
  }

  Value object() {
    expect('{');
    Object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      o.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(o));
    }
  }

  Value array() {
    expect('[');
    Array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(a));
    }
    while (true) {
      a.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(a));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            out += text_.substr(pos_ - 2, 6);  // pass through undecoded
            pos_ += 4;
            break;
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    try {
      return Value(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses a complete JSON document; throws std::runtime_error on error.
inline Value parse(const std::string& text) {
  return detail::Parser(text).parse();
}

}  // namespace minsgd::obs::json
