// MetricsRegistry: named counters, gauges, and pollable sources.
//
// Counters are monotonic (bytes moved, messages sent, iterations run);
// gauges are instantaneous values (LARS trust ratio of a layer, current
// learning rate). Both are create-on-first-use and safe to update from any
// thread. Components that already keep their own counters (TrafficMeter,
// FaultInjector stats) register as *sources*: a callback polled at snapshot
// time, so their state is reported without double bookkeeping. Snapshots
// export as JSONL — one JSON object per line, appendable across a run, so
// training curves and traffic totals land in one greppable stream.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace minsgd::obs {

/// Monotonic counter. add() from any thread.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Instantaneous value. set() from any thread; last writer wins.
class Gauge {
 public:
  void set(double value) { v_.store(value, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// One snapshotted value.
struct Sample {
  std::string name;
  double value = 0.0;
  enum class Kind { kCounter, kGauge } kind = Kind::kGauge;
};

class MetricsRegistry {
 public:
  /// Process-wide registry the built-in instrumentation uses.
  static MetricsRegistry& instance();

  /// Returns the counter/gauge with this name, creating it on first use.
  /// References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);

  /// A source contributes samples at snapshot time. Re-registering a name
  /// replaces the previous source; unregister before the callback's
  /// captures die (SimCluster does this in its destructor).
  using Source = std::function<std::vector<Sample>()>;
  void register_source(const std::string& name, Source source);
  void unregister_source(const std::string& name);

  /// All counters, gauges, and source samples, sorted by name.
  std::vector<Sample> snapshot() const;

  /// One JSON object line: {"name":value,...} with counters as integers.
  void write_jsonl_snapshot(std::ostream& out) const;

  /// Drops every counter, gauge, and source (tests).
  void clear();

 private:
  mutable std::mutex mu_;
  // Node-based maps: references returned by counter()/gauge() must survive
  // later insertions.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, Source> sources_;
};

/// Shorthand for the process-wide registry.
inline MetricsRegistry& metrics() { return MetricsRegistry::instance(); }

}  // namespace minsgd::obs
