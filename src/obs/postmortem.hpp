// Postmortem: turn a crash into one merged, analyzable artifact.
//
// When a distributed run dies, the question is never "which rank threw" —
// SimCluster::run already aggregates that — but "what was everyone doing
// when it happened": which collective was in flight, who had arrived, who
// had not, what the membership generation was, when the last checkpoint
// landed. This module is the dump-and-analyze half of the flight recorder
// (obs/flight.hpp):
//
//   * dump_postmortem() snapshots every rank lane of the process-wide
//     recorder and writes one merged postmortem.json (schema
//     "minsgd-postmortem-v1": run-level reason + per-rank errors + the last
//     N events of every rank). It is wired into (a) SimCluster::run's
//     all-rank error aggregation — which is where CommTimeout / RankFailure
//     / ClusterAborted unwinds converge — and (b) MINSGD_CHECK failure via
//     arm_postmortem_on_check_failure(), so even an abort()ing invariant
//     violation leaves the black box behind.
//   * analyze_flight() is the cross-rank join: collective events are
//     grouped by (channel, tag, generation); per group it computes arrival
//     skew (first/last begin) and charges the margin to the last arriver,
//     which accumulates into per-rank straggler attribution. It also splits
//     per-step collective time into exposed (channel 0, the rank thread
//     blocks) vs overlapped (channel 1, the async engine's worker), and
//     extracts the elastic reconfiguration timeline from membership events.
//
// tools/trace/analyze.py is the offline twin: same join, same report,
// runnable against any postmortem.json without the binary that wrote it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight.hpp"

namespace minsgd::obs {

// -- dump -------------------------------------------------------------------

/// Run-level context written into the dump next to the events.
struct PostmortemInfo {
  std::string reason;  // aggregated failure / check message
  int world = 0;       // ranks of the failed run (0 = unknown)
  /// Per-rank error strings, (rank, what). Abort victims included.
  std::vector<std::pair<int, std::string>> rank_errors;
};

/// Where dump_postmortem() writes. Default "postmortem.json" in the working
/// directory; the empty string disables dumping. Thread-safe.
void set_postmortem_path(std::string path);
std::string postmortem_path();

/// Serializes `info` + `events` as minsgd-postmortem-v1 JSON.
void write_postmortem(std::ostream& out, const PostmortemInfo& info,
                      std::span<const FlightEvent> events);

/// Snapshots the process-wide flight recorder and writes the merged dump to
/// postmortem_path() (temp file + rename, so a dump racing a reader — or
/// another dumping process under parallel ctest — is never seen half
/// written). Returns false when dumping is disabled or the write failed;
/// never throws.
bool dump_postmortem(const PostmortemInfo& info);

/// Registers a MINSGD_CHECK failure hook that dumps a postmortem (reason =
/// the check message) before abort. Idempotent; SimCluster arms it on
/// construction so any cluster run is covered.
void arm_postmortem_on_check_failure();

// -- read back --------------------------------------------------------------

/// A parsed minsgd-postmortem-v1 file.
struct Postmortem {
  PostmortemInfo info;
  std::vector<FlightEvent> events;  // merged, timestamp-ordered
};

/// Parses a dump (strict; throws std::runtime_error on malformed input or
/// wrong schema).
Postmortem read_postmortem(const std::string& text);
Postmortem read_postmortem_file(const std::string& path);

// -- cross-rank analysis ----------------------------------------------------

/// One collective joined across ranks by (channel, tag, generation).
struct CollectiveGroup {
  int channel = 0;
  std::int64_t tag = 0;
  std::int64_t generation = 0;
  FlightOp op = FlightOp::kNone;
  int ranks_seen = 0;     // distinct ranks that recorded a begin
  int ranks_expected = 0; // world of the generation (0 = unknown)
  std::int64_t first_begin_ns = 0;
  std::int64_t last_begin_ns = 0;
  int first_rank = -1;
  int last_rank = -1;       // the straggler of this group
  std::int64_t skew_ns = 0; // last begin - first begin
  /// last begin - second-last begin: the margin only the last arriver is
  /// responsible for (the attribution charge).
  std::int64_t margin_ns = 0;
};

/// Straggler attribution for one rank, accumulated over matched groups.
struct RankAttribution {
  int rank = -1;
  std::int64_t groups = 0;         // groups this rank participated in
  std::int64_t arrived_last = 0;   // groups where it was the last arriver
  std::int64_t lag_ns = 0;         // sum of margin_ns it was charged
};

/// Per-rank collective time split by channel, per optimizer step.
struct StepCommRow {
  int rank = -1;
  std::int64_t steps = 0;          // kStep events recorded by the rank
  std::int64_t exposed_ns = 0;     // channel 0: the rank thread blocked
  std::int64_t overlapped_ns = 0;  // channel 1: async engine worker
};

/// One committed membership view, for the reconfig timeline.
struct ReconfigPoint {
  std::int64_t t_ns = 0;
  std::int64_t generation = 0;
  int world = 0;
};

struct FlightAnalysis {
  int world = 0;
  std::int64_t groups = 0;          // collective groups seen
  std::int64_t matched_groups = 0;  // begins from every expected rank
  double match_rate = 0.0;          // matched / groups (1.0 when no groups)
  int straggler_rank = -1;          // most-charged rank (-1: no evidence)
  std::int64_t straggler_lag_ns = 0;
  std::vector<RankAttribution> ranks;     // by rank, ascending
  std::vector<CollectiveGroup> worst;     // top skew, descending
  std::vector<StepCommRow> step_comm;     // by rank, ascending
  std::vector<ReconfigPoint> reconfigs;   // by time
  std::int64_t fault_events = 0;
  std::int64_t crash_events = 0;
};

/// Joins `events` across ranks. `world` seeds the expected rank count for
/// generation 0; later generations take theirs from membership commit
/// events. Worlds <= 0 mean "derive from the events" (max rank + 1).
FlightAnalysis analyze_flight(std::span<const FlightEvent> events, int world);

/// Human-readable report of an analysis (the C++ twin of analyze.py's
/// output).
void write_analysis(std::ostream& out, const FlightAnalysis& a);

}  // namespace minsgd::obs
