// Tracer: where a training step's wall-clock time actually goes.
//
// The paper's systems argument is a time-breakdown argument: the scaling
// ratio of Table 6, the per-iteration comm costs of Table 11, and the
// comm-vs-compute curves of Figures 8-10 all divide a step into phases and
// compare their durations. The alpha-beta model (src/perf) *predicts* those
// phases; this tracer *measures* them. Every hot path emits RAII
// ScopedSpans (forward/backward per layer, optimizer step, each collective,
// loader, per-iteration trainer phases), buffered per thread and exported
// as Chrome/Perfetto `trace_event` JSON — load trace.json in
// chrome://tracing or ui.perfetto.dev and the step structure is visible —
// plus a plain-text summary (count/total/mean/p95 per span name).
//
// Cost policy: tracing is DISABLED at runtime by default. A disabled span
// is one relaxed atomic load and a branch; no clock is read, no string is
// built, nothing allocates. Compiling with -DMINSGD_TRACE_OFF turns spans
// into empty inline bodies for zero overhead. When enabled, spans append to
// a per-thread buffer; the buffer's mutex is uncontended on the hot path
// (only export/clear ever lock it from outside), so recording is effectively
// lock-free while staying clean under ThreadSanitizer.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace minsgd::obs {

/// Span categories used by the built-in instrumentation. Static strings so
/// spans store a pointer, not a copy.
namespace cat {
inline constexpr const char* kCompute = "compute";  // forward/backward/step
inline constexpr const char* kComm = "comm";        // collectives, p2p
inline constexpr const char* kData = "data";        // loader, augmentation
inline constexpr const char* kPhase = "phase";      // trainer iteration phases
inline constexpr const char* kEval = "eval";        // test-split evaluation
inline constexpr const char* kCluster = "cluster";  // rank lifetimes
}  // namespace cat

/// One completed span. `rank` is the SimCluster rank lane (-1 outside a
/// cluster); `depth` is the nesting depth on its thread at start time.
/// `bytes` and `label` are the two optional args the instrumentation needs
/// (payload size for comm spans, algorithm / model name elsewhere); -1 and
/// "" mean unset.
struct Span {
  std::string name;
  const char* category = "";
  std::int64_t start_ns = 0;  // relative to the tracer's epoch
  std::int64_t dur_ns = 0;
  int rank = -1;
  int depth = 0;
  std::uint32_t tid = 0;
  std::int64_t bytes = -1;
  int threads = -1;  // intra-op thread budget for parallel-kernel spans
  std::string label;
};

/// Aggregate statistics for one span name within one category.
struct SpanStat {
  std::string name;
  const char* category = "";
  std::int64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t p95_ns = 0;
  std::int64_t max_ns = 0;
  int min_depth = 0;  // shallowest nesting observed; indentation in reports
  double mean_ns() const {
    return count ? static_cast<double>(total_ns) / static_cast<double>(count)
                 : 0.0;
  }
};

class Tracer;

/// Process-wide tracer all built-in instrumentation records into.
Tracer& tracer();

/// Sets the SimCluster rank lane for spans recorded by the calling thread.
/// Returns the previous value so scopes can nest/restore.
int set_thread_rank(int rank);
int thread_rank();

class Tracer {
 public:
  Tracer();

  /// Runtime switch; default off. Spans started while disabled record
  /// nothing even if the tracer is enabled before they close.
  void set_enabled(bool on);
  bool enabled() const {
#ifdef MINSGD_TRACE_OFF
    return false;
#else
    return enabled_.load(std::memory_order_relaxed);
#endif
  }

  /// Appends a completed span (tests and non-RAII recorders). tid/rank are
  /// taken from `s` verbatim.
  void record(Span s);

  /// Copies every buffered span (all threads), ordered by start time.
  std::vector<Span> snapshot() const;
  std::size_t span_count() const;

  /// Drops all buffered spans and resets the epoch so the next recording
  /// starts at t=0. Buffers whose owning thread has exited (comm workers,
  /// elastic joiners) are pruned from the registry here — their spans were
  /// already exported by snapshot(), and without pruning a churn of
  /// short-lived threads would grow the registry without bound.
  void clear();

  /// Registered per-thread buffers, including detached ones not yet pruned
  /// (tests; a proxy for registry growth under thread churn).
  std::size_t thread_buffer_count() const;

  // -- export --------------------------------------------------------------
  /// Chrome/Perfetto trace_event JSON ("X" complete events, pid = rank lane,
  /// process_name metadata per lane).
  void write_chrome_trace(std::ostream& out) const;
  void write_chrome_trace(const std::string& path) const;

  /// Per-(category, name) statistics, grouped by category, largest total
  /// first within each.
  std::vector<SpanStat> summary() const;

  /// Plain-text hierarchical summary table of summary().
  void write_summary(std::ostream& out) const;

  /// Current time relative to the tracer epoch.
  std::int64_t now_ns() const;

 private:
  friend class ScopedSpan;

  struct ThreadBuffer {
    mutable std::mutex mu;  // uncontended in steady state: the owning
                            // thread records, outsiders only export/clear
    std::vector<Span> spans;
    std::uint32_t tid = 0;
    /// Set when the owning thread exits (its thread_local binding is
    /// destroyed). The registry's shared_ptr keeps the spans alive for
    /// export; the flag lets clear() prune the drained buffer.
    std::atomic<bool> detached{false};
  };

  /// The calling thread's buffer, registering it on first use.
  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> epoch_ns_;
  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 0;
};

/// RAII span against the global tracer. Two-phase form supports dynamic
/// names without paying for the string when tracing is off:
///
///   obs::ScopedSpan sp;                       // inert
///   if (obs::tracer().enabled()) sp.start("fwd." + layer.name(), cat);
///
/// One-phase form for static names: obs::ScopedSpan sp("barrier", cat::kComm);
class ScopedSpan {
 public:
#ifdef MINSGD_TRACE_OFF
  ScopedSpan() = default;
  ScopedSpan(const char*, const char*) {}
  ScopedSpan(std::string, const char*) {}
  void start(const char*, const char*) {}
  void start(std::string, const char*) {}
  void stop() {}
  void set_bytes(std::int64_t) {}
  void set_label(std::string) {}
  void set_threads(int) {}
  bool active() const { return false; }
  ~ScopedSpan() = default;
#else
  ScopedSpan() = default;
  ScopedSpan(const char* name, const char* category) { start(name, category); }
  ScopedSpan(std::string name, const char* category) {
    start(std::move(name), category);
  }
  void start(const char* name, const char* category) {
    if (tracer().enabled()) begin(std::string(name), category);
  }
  void start(std::string name, const char* category) {
    if (tracer().enabled()) begin(std::move(name), category);
  }
  void set_bytes(std::int64_t bytes) { span_.bytes = bytes; }
  void set_label(std::string label) { span_.label = std::move(label); }
  void set_threads(int threads) { span_.threads = threads; }
  bool active() const { return active_; }
  /// Records the span now instead of at scope exit; idempotent.
  void stop();
  ~ScopedSpan() { stop(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(std::string name, const char* category);

  Span span_;
  bool active_ = false;
#endif
};

}  // namespace minsgd::obs
