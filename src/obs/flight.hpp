// FlightRecorder: the always-on black box behind every distributed run.
//
// The tracer (obs/trace.hpp) answers "where does a step's time go?" but is
// off by default and allocates per span; when a 512-rank run dies at 3 a.m.
// the trace is empty and the only artifact is one rank's abort message. The
// flight recorder is the complement: an always-on, fixed-capacity, lock-free
// ring of compact binary events per rank lane — collective begin/end with
// tag + membership generation + bytes, membership commits, checkpoint ops,
// fault injections, step boundaries. Recording one event is a clock read,
// one relaxed fetch_add, and seven relaxed/release atomic stores into a
// preallocated slot: no locks, no allocation, no strings, cheap enough to
// leave on during benchmarks (EXPERIMENTS.md pins the overhead on
// bench_intraop under 2%).
//
// On any failure — a MINSGD_CHECK violation, a CommTimeout/RankFailure
// unwinding out of SimCluster::run — the postmortem layer (obs/postmortem)
// snapshots every lane and writes one merged postmortem.json holding the
// last N events of every rank, which the cross-rank analyzer joins by
// (tag, generation) into arrival-skew and straggler attribution.
//
// Concurrency: each slot is a seqlock — the writer invalidates `seq`,
// stores the fields, then publishes `seq = index + 1` with release order;
// the snapshot reader accepts a slot only when `seq` reads `index + 1`
// before *and* after the field loads. Every access is atomic, so concurrent
// writers + reader are exact under ThreadSanitizer (tier2-tsan covers it),
// and a torn slot is skipped, never misread.
//
// Instrumentation sites in src/ must go through MINSGD_FLIGHT (bottom of
// this header) so the enabled() gate is never bypassed; the lint rule
// `flight-record` enforces it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace minsgd::obs {

/// What happened. kCollBegin/kCollEnd bracket one rank's participation in
/// one collective (the begin timestamp is the rank's *arrival*, which is
/// what skew analysis joins); kArrive marks a rendezvous arrival that has no
/// wire tag (membership epochs).
enum class FlightKind : std::uint8_t {
  kNone = 0,
  kCollBegin,   // entered a collective        tag, gen, bytes, arg=algo-free
  kCollEnd,     // left a collective           tag, gen
  kArrive,      // rendezvous arrival          arg = completed iters
  kStep,        // optimizer step done         arg = global iteration
  kMembership,  // view committed              gen, arg = world
  kCheckpoint,  // checkpoint save/load        bytes, arg = global iteration
  kFault,       // injector/transport fault    tag, arg = peer rank
  kCrash,       // this rank is unwinding      arg = rank
};

/// Which operation, within the kind.
enum class FlightOp : std::uint8_t {
  kNone = 0,
  // collectives (kCollBegin / kCollEnd)
  kBarrier,
  kBroadcast,
  kReduce,
  kAllgather,
  kAllreduceStar,
  kAllreduceRing,
  kAllreduceTree,
  kAllreduceRhd,
  // faults (kFault)
  kDrop,
  kDelay,
  kDuplicate,
  kCorrupt,
  kCrashed,
  kTimeout,
  kStall,  // straggler stall at collective entry
  // checkpoint (kCheckpoint)
  kSave,
  kLoad,
  // membership (kMembership / kArrive)
  kCommit,
  kRendezvous,
};

const char* to_string(FlightKind kind);
const char* to_string(FlightOp op);

/// One decoded event, as read back by snapshot(). `rank` is the recording
/// thread's cluster rank lane (obs::thread_rank(); -1 = driver).
struct FlightEvent {
  std::int64_t t_ns = 0;  // relative to the recorder's epoch
  FlightKind kind = FlightKind::kNone;
  FlightOp op = FlightOp::kNone;
  int rank = -1;
  int channel = 0;
  std::int64_t tag = 0;
  std::int64_t generation = 0;
  std::int64_t bytes = 0;
  std::int64_t arg = 0;
};

/// Fixed-capacity, lock-free per-rank-lane ring of FlightEvents.
///
/// Thread-safe: record() from any number of threads concurrently with
/// snapshot(). clear() requires quiescence (no concurrent recorders) — it
/// is a test/driver operation, like Tracer::clear().
class FlightRecorder {
 public:
  /// Rank lanes: lane 0 is the driver (-1), lanes 1..kMaxLanes-1 hold ranks
  /// 0..kMaxLanes-2; larger ranks share the last lane.
  static constexpr int kMaxLanes = 65;
  static constexpr std::size_t kDefaultCapacity = 1024;  // events per lane

  explicit FlightRecorder(std::size_t capacity_per_lane = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Runtime switch. The process-wide recorder defaults to ON (black boxes
  /// that need arming are empty when the plane goes down); the environment
  /// variable MINSGD_FLIGHT=off|0 disables it at startup.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one event into the calling thread's rank lane. Lock-free;
  /// callers in src/ must go through MINSGD_FLIGHT so the enabled() gate
  /// stays in front of the call.
  void record(FlightKind kind, FlightOp op, int channel, std::int64_t tag,
              std::int64_t generation, std::int64_t bytes, std::int64_t arg);

  /// Copies the surviving events of every lane, ordered by timestamp.
  /// Safe against concurrent record(); mid-write slots are skipped.
  std::vector<FlightEvent> snapshot() const;

  /// Events ever recorded (including overwritten ones).
  std::int64_t total_recorded() const;

  /// Drops all events and resets the epoch. Requires quiescence.
  void clear();

  std::size_t capacity_per_lane() const { return capacity_; }

  /// Current time relative to the recorder epoch.
  std::int64_t now_ns() const;

 private:
  // One seqlock slot. seq == 0: never written; seq == i + 1: slot holds the
  // i-th event of its lane, fully published.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::int64_t> t_ns{0};
    std::atomic<std::int64_t> meta{0};  // kind | op << 8 | channel << 16
    std::atomic<std::int64_t> tag{0};
    std::atomic<std::int64_t> gen{0};
    std::atomic<std::int64_t> bytes{0};
    std::atomic<std::int64_t> arg{0};
  };
  struct Lane {
    std::atomic<std::uint64_t> cursor{0};  // events ever written to the lane
    std::unique_ptr<Slot[]> slots;
  };

  static int lane_of(int rank) {
    if (rank < 0) return 0;
    return 1 + (rank < kMaxLanes - 1 ? rank : kMaxLanes - 2);
  }
  static int rank_of_lane(int lane) { return lane - 1; }

  std::size_t capacity_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::int64_t> epoch_ns_;
  Lane lanes_[kMaxLanes];
};

/// Process-wide recorder all built-in instrumentation records into.
/// Enabled by default; MINSGD_FLIGHT=off|0 in the environment disables it,
/// MINSGD_FLIGHT_CAPACITY=<n> sizes the per-lane ring.
FlightRecorder& flight();

}  // namespace minsgd::obs

/// The sanctioned recording macro: the enabled() gate runs before any
/// argument-side work reaches the recorder. All flight instrumentation in
/// src/ must use this (lint rule `flight-record`); tests may drive
/// FlightRecorder instances directly.
#define MINSGD_FLIGHT(kind, op, channel, tag, generation, bytes, arg)       \
  do {                                                                      \
    ::minsgd::obs::FlightRecorder& minsgd_flight_rec =                      \
        ::minsgd::obs::flight();                                            \
    if (minsgd_flight_rec.enabled()) {                                      \
      minsgd_flight_rec.record((kind), (op), (channel), (tag), (generation),\
                               (bytes), (arg));                             \
    }                                                                       \
  } while (false)
