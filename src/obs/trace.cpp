#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>

namespace minsgd::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

thread_local int t_rank = -1;
thread_local int t_depth = 0;

/// JSON string escaping for span names / labels (quotes, backslash,
/// control characters; everything else passes through).
void write_escaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

Tracer& tracer() {
  static Tracer t;
  return t;
}

int set_thread_rank(int rank) {
  const int prev = t_rank;
  t_rank = rank;
  return prev;
}

int thread_rank() { return t_rank; }

Tracer::Tracer() : epoch_ns_(steady_ns()) {}

void Tracer::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

std::int64_t Tracer::now_ns() const {
  return steady_ns() - epoch_ns_.load(std::memory_order_relaxed);
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // Cache keyed by tracer identity so tests with their own Tracer instances
  // don't cross-record; rebinding registers a fresh buffer. The binding is
  // a destructor-bearing thread_local: when the thread exits (comm worker,
  // elastic joiner), every buffer it ever registered is flushed-on-detach —
  // marked so clear() can prune it — and the cache is reset so a span
  // recorded during later TLS destruction cannot touch a dead shared_ptr.
  struct Binding {
    Tracer* bound = nullptr;
    std::shared_ptr<ThreadBuffer> buf;
    std::vector<std::weak_ptr<ThreadBuffer>> owned;
    ~Binding() {
      for (const auto& w : owned) {
        if (const auto b = w.lock()) {
          b->detached.store(true, std::memory_order_release);
        }
      }
      bound = nullptr;
    }
  };
  thread_local Binding tb;
  if (tb.bound != this) {
    tb.buf = std::make_shared<ThreadBuffer>();
    tb.owned.push_back(tb.buf);
    std::lock_guard lk(registry_mu_);
    tb.buf->tid = next_tid_++;
    buffers_.push_back(tb.buf);
    tb.bound = this;
  }
  return *tb.buf;
}

void Tracer::record(Span s) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard lk(buf.mu);
  buf.spans.push_back(std::move(s));
}

std::vector<Span> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> bufs;
  {
    std::lock_guard lk(registry_mu_);
    bufs = buffers_;
  }
  std::vector<Span> all;
  for (const auto& b : bufs) {
    std::lock_guard lk(b->mu);
    all.insert(all.end(), b->spans.begin(), b->spans.end());
  }
  std::stable_sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
    return a.start_ns < b.start_ns;
  });
  return all;
}

std::size_t Tracer::span_count() const {
  std::vector<std::shared_ptr<ThreadBuffer>> bufs;
  {
    std::lock_guard lk(registry_mu_);
    bufs = buffers_;
  }
  std::size_t n = 0;
  for (const auto& b : bufs) {
    std::lock_guard lk(b->mu);
    n += b->spans.size();
  }
  return n;
}

void Tracer::clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> bufs;
  {
    std::lock_guard lk(registry_mu_);
    bufs = buffers_;
  }
  for (const auto& b : bufs) {
    std::lock_guard lk(b->mu);
    b->spans.clear();
  }
  {
    // Detached buffers are now drained; dropping them bounds the registry
    // under thread churn (a detached buffer can never record again).
    std::lock_guard lk(registry_mu_);
    std::erase_if(buffers_, [](const std::shared_ptr<ThreadBuffer>& b) {
      return b->detached.load(std::memory_order_acquire);
    });
  }
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
}

std::size_t Tracer::thread_buffer_count() const {
  std::lock_guard lk(registry_mu_);
  return buffers_.size();
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const auto spans = snapshot();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Name the pid lanes: rank R -> "rank R", -1 -> "driver".
  std::vector<int> ranks;
  for (const auto& s : spans) {
    if (std::find(ranks.begin(), ranks.end(), s.rank) == ranks.end()) {
      ranks.push_back(s.rank);
    }
  }
  std::sort(ranks.begin(), ranks.end());
  for (const int r : ranks) {
    out << (first ? "" : ",") << "{\"name\":\"process_name\",\"ph\":\"M\","
        << "\"pid\":" << r << ",\"args\":{\"name\":\""
        << (r < 0 ? std::string("driver") : "rank " + std::to_string(r))
        << "\"}}";
    first = false;
  }
  char num[64];
  for (const auto& s : spans) {
    out << (first ? "" : ",") << "{\"name\":\"";
    write_escaped(out, s.name);
    out << "\",\"cat\":\"" << s.category << "\",\"ph\":\"X\"";
    // trace_event timestamps are microseconds; keep ns resolution with a
    // fractional part.
    std::snprintf(num, sizeof(num), "%.3f",
                  static_cast<double>(s.start_ns) / 1000.0);
    out << ",\"ts\":" << num;
    std::snprintf(num, sizeof(num), "%.3f",
                  static_cast<double>(s.dur_ns) / 1000.0);
    out << ",\"dur\":" << num;
    out << ",\"pid\":" << s.rank << ",\"tid\":" << s.tid << ",\"args\":{";
    bool first_arg = true;
    if (s.bytes >= 0) {
      out << "\"bytes\":" << s.bytes;
      first_arg = false;
    }
    if (!s.label.empty()) {
      out << (first_arg ? "" : ",") << "\"label\":\"";
      write_escaped(out, s.label);
      out << "\"";
      first_arg = false;
    }
    if (s.threads >= 0) {
      out << (first_arg ? "" : ",") << "\"threads\":" << s.threads;
      first_arg = false;
    }
    out << (first_arg ? "" : ",") << "\"depth\":" << s.depth << "}}";
    first = false;
  }
  out << "]}\n";
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Tracer: cannot open " + path);
  write_chrome_trace(out);
}

std::vector<SpanStat> Tracer::summary() const {
  const auto spans = snapshot();
  struct Acc {
    std::vector<std::int64_t> durs;
    const char* category = "";
    int min_depth = 0;
  };
  // Key on (category, name): the same name in two categories is two rows.
  std::map<std::pair<std::string, std::string>, Acc> by_name;
  for (const auto& s : spans) {
    auto& acc = by_name[{std::string(s.category), s.name}];
    if (acc.durs.empty() || s.depth < acc.min_depth) acc.min_depth = s.depth;
    acc.category = s.category;
    acc.durs.push_back(s.dur_ns);
  }
  std::vector<SpanStat> stats;
  stats.reserve(by_name.size());
  for (auto& [key, acc] : by_name) {
    SpanStat st;
    st.name = key.second;
    st.category = acc.category;
    st.count = static_cast<std::int64_t>(acc.durs.size());
    std::sort(acc.durs.begin(), acc.durs.end());
    for (const auto d : acc.durs) st.total_ns += d;
    st.max_ns = acc.durs.back();
    // p95 = smallest duration >= 95% of the samples (nearest-rank method).
    const auto idx = static_cast<std::size_t>(
        (acc.durs.size() * 95 + 99) / 100);  // ceil(0.95 n)
    st.p95_ns = acc.durs[std::min(idx == 0 ? 0 : idx - 1,
                                  acc.durs.size() - 1)];
    st.min_depth = acc.min_depth;
    stats.push_back(std::move(st));
  }
  // Group by category (alphabetical), biggest total first within a group.
  std::sort(stats.begin(), stats.end(),
            [](const SpanStat& a, const SpanStat& b) {
              const int c = std::string(a.category).compare(b.category);
              if (c != 0) return c < 0;
              return a.total_ns > b.total_ns;
            });
  return stats;
}

void Tracer::write_summary(std::ostream& out) const {
  const auto stats = summary();
  const char* cur_cat = nullptr;
  char line[256];
  for (const auto& st : stats) {
    if (!cur_cat || std::string(cur_cat) != st.category) {
      cur_cat = st.category;
      std::snprintf(line, sizeof(line),
                    "%-38s %10s %8s %10s %10s %10s\n", cur_cat, "total_ms",
                    "count", "mean_us", "p95_us", "max_us");
      out << line;
    }
    std::string name(static_cast<std::size_t>(2 * (st.min_depth + 1)), ' ');
    name += st.name;
    std::snprintf(line, sizeof(line),
                  "%-38s %10.3f %8lld %10.1f %10.1f %10.1f\n", name.c_str(),
                  static_cast<double>(st.total_ns) / 1e6,
                  static_cast<long long>(st.count), st.mean_ns() / 1e3,
                  static_cast<double>(st.p95_ns) / 1e3,
                  static_cast<double>(st.max_ns) / 1e3);
    out << line;
  }
}

#ifndef MINSGD_TRACE_OFF

void ScopedSpan::begin(std::string name, const char* category) {
  span_.name = std::move(name);
  span_.category = category;
  span_.rank = t_rank;
  span_.depth = t_depth++;
  span_.start_ns = tracer().now_ns();
  active_ = true;
}

void ScopedSpan::stop() {
  if (!active_) return;
  active_ = false;
  --t_depth;
  Tracer& tr = tracer();
  span_.dur_ns = tr.now_ns() - span_.start_ns;
  span_.tid = tr.local_buffer().tid;
  tr.record(std::move(span_));
}

#endif  // MINSGD_TRACE_OFF

}  // namespace minsgd::obs
