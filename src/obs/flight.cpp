#include "obs/flight.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/trace.hpp"

namespace minsgd::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Startup configuration of the process-wide recorder. MINSGD_FLIGHT=off|0
/// disables it (e.g. for the recorder-off arm of the overhead bench);
/// MINSGD_FLIGHT_CAPACITY clamps into [16, 1 << 20].
bool env_enabled() {
  const char* v = std::getenv("MINSGD_FLIGHT");
  if (!v) return true;
  return std::strcmp(v, "off") != 0 && std::strcmp(v, "0") != 0 &&
         std::strcmp(v, "false") != 0;
}

std::size_t env_capacity() {
  const char* v = std::getenv("MINSGD_FLIGHT_CAPACITY");
  if (!v) return FlightRecorder::kDefaultCapacity;
  const long n = std::atol(v);
  if (n < 16) return 16;
  if (n > (1L << 20)) return std::size_t{1} << 20;
  return static_cast<std::size_t>(n);
}

}  // namespace

const char* to_string(FlightKind kind) {
  switch (kind) {
    case FlightKind::kNone: return "none";
    case FlightKind::kCollBegin: return "coll-begin";
    case FlightKind::kCollEnd: return "coll-end";
    case FlightKind::kArrive: return "arrive";
    case FlightKind::kStep: return "step";
    case FlightKind::kMembership: return "membership";
    case FlightKind::kCheckpoint: return "checkpoint";
    case FlightKind::kFault: return "fault";
    case FlightKind::kCrash: return "crash";
  }
  return "?";
}

const char* to_string(FlightOp op) {
  switch (op) {
    case FlightOp::kNone: return "none";
    case FlightOp::kBarrier: return "barrier";
    case FlightOp::kBroadcast: return "broadcast";
    case FlightOp::kReduce: return "reduce";
    case FlightOp::kAllgather: return "allgather";
    case FlightOp::kAllreduceStar: return "allreduce-star";
    case FlightOp::kAllreduceRing: return "allreduce-ring";
    case FlightOp::kAllreduceTree: return "allreduce-tree";
    case FlightOp::kAllreduceRhd: return "allreduce-rhd";
    case FlightOp::kDrop: return "drop";
    case FlightOp::kDelay: return "delay";
    case FlightOp::kDuplicate: return "duplicate";
    case FlightOp::kCorrupt: return "corrupt";
    case FlightOp::kCrashed: return "crashed";
    case FlightOp::kTimeout: return "timeout";
    case FlightOp::kStall: return "stall";
    case FlightOp::kSave: return "save";
    case FlightOp::kLoad: return "load";
    case FlightOp::kCommit: return "commit";
    case FlightOp::kRendezvous: return "rendezvous";
  }
  return "?";
}

FlightRecorder& flight() {
  // Leaked on purpose: the postmortem hook reads the recorder during
  // check-failure/abort paths that can outlive static destruction order.
  static FlightRecorder* rec = [] {
    auto* r = new FlightRecorder(env_capacity());
    r->set_enabled(env_enabled());
    return r;
  }();
  return *rec;
}

FlightRecorder::FlightRecorder(std::size_t capacity_per_lane)
    : capacity_(capacity_per_lane < 1 ? 1 : capacity_per_lane),
      epoch_ns_(steady_ns()) {
  for (auto& lane : lanes_) {
    lane.slots = std::make_unique<Slot[]>(capacity_);
  }
}

std::int64_t FlightRecorder::now_ns() const {
  return steady_ns() - epoch_ns_.load(std::memory_order_relaxed);
}

void FlightRecorder::record(FlightKind kind, FlightOp op, int channel,
                            std::int64_t tag, std::int64_t generation,
                            std::int64_t bytes, std::int64_t arg) {
  Lane& lane = lanes_[lane_of(thread_rank())];
  const std::uint64_t i =
      lane.cursor.fetch_add(1, std::memory_order_relaxed);
  Slot& s = lane.slots[i % capacity_];
  // Invalidate first so a concurrent snapshot never stitches old and new
  // fields together under one valid seq.
  s.seq.store(0, std::memory_order_release);
  s.t_ns.store(now_ns(), std::memory_order_relaxed);
  s.meta.store(static_cast<std::int64_t>(kind) |
                   (static_cast<std::int64_t>(op) << 8) |
                   (static_cast<std::int64_t>(channel & 0xff) << 16),
               std::memory_order_relaxed);
  s.tag.store(tag, std::memory_order_relaxed);
  s.gen.store(generation, std::memory_order_relaxed);
  s.bytes.store(bytes, std::memory_order_relaxed);
  s.arg.store(arg, std::memory_order_relaxed);
  s.seq.store(i + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  for (int l = 0; l < kMaxLanes; ++l) {
    const Lane& lane = lanes_[l];
    const std::uint64_t end = lane.cursor.load(std::memory_order_acquire);
    const std::uint64_t begin =
        end > capacity_ ? end - capacity_ : 0;
    for (std::uint64_t i = begin; i < end; ++i) {
      const Slot& s = lane.slots[i % capacity_];
      if (s.seq.load(std::memory_order_acquire) != i + 1) continue;
      FlightEvent e;
      e.t_ns = s.t_ns.load(std::memory_order_relaxed);
      const std::int64_t meta = s.meta.load(std::memory_order_relaxed);
      e.kind = static_cast<FlightKind>(meta & 0xff);
      e.op = static_cast<FlightOp>((meta >> 8) & 0xff);
      e.channel = static_cast<int>((meta >> 16) & 0xff);
      e.tag = s.tag.load(std::memory_order_relaxed);
      e.generation = s.gen.load(std::memory_order_relaxed);
      e.bytes = s.bytes.load(std::memory_order_relaxed);
      e.arg = s.arg.load(std::memory_order_relaxed);
      // A writer may have lapped us mid-read; the second seq check rejects
      // any slot whose fields could be torn.
      if (s.seq.load(std::memory_order_acquire) != i + 1) continue;
      e.rank = rank_of_lane(l);
      out.push_back(e);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     return a.t_ns < b.t_ns;
                   });
  return out;
}

std::int64_t FlightRecorder::total_recorded() const {
  std::int64_t n = 0;
  for (const auto& lane : lanes_) {
    n += static_cast<std::int64_t>(
        lane.cursor.load(std::memory_order_acquire));
  }
  return n;
}

void FlightRecorder::clear() {
  for (auto& lane : lanes_) {
    lane.cursor.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < capacity_; ++i) {
      lane.slots[i].seq.store(0, std::memory_order_relaxed);
    }
  }
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
}

}  // namespace minsgd::obs
