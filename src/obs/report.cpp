#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <ostream>

#include "nn/analysis.hpp"
#include "obs/trace.hpp"
#include "train/trainer.hpp"

namespace minsgd::obs {

double ScalingRatioRow::ratio() const {
  return comm_ms() > 0 ? compute_ms() / comm_ms()
                       : std::numeric_limits<double>::infinity();
}

double ScalingRatioRow::static_ratio() const {
  return params > 0 ? static_cast<double>(flops_per_image) /
                          static_cast<double>(params)
                    : 0.0;
}

ScalingRatioRow measure_scaling_ratio(
    const std::string& model_name,
    const std::function<std::unique_ptr<nn::Network>()>& model_factory,
    const std::function<std::unique_ptr<optim::Optimizer>()>& opt_factory,
    const optim::LrSchedule& schedule, const data::SyntheticImageNet& dataset,
    const ScalingRatioOptions& options) {
  Tracer& tr = tracer();
  const bool was_enabled = tr.enabled();
  tr.set_enabled(true);
  // Only spans recorded from here on belong to this measurement; earlier
  // buffered spans (e.g. a previous model's run) are left untouched.
  const std::int64_t t0 = tr.now_ns();

  train::TrainOptions topt;
  topt.global_batch = options.global_batch;
  topt.epochs = options.epochs;
  topt.init_seed = options.init_seed;
  topt.detect_divergence = false;  // measuring time, not accuracy
  const auto dist = train::train_sync_data_parallel(
      model_factory, opt_factory, schedule, dataset, topt, options.world,
      options.algo);

  tr.set_enabled(was_enabled);

  ScalingRatioRow row;
  row.model = model_name;
  row.world = options.world;
  row.iterations = dist.iterations;
  {
    auto probe = model_factory();
    const auto res = dataset.config().resolution;
    const auto prof = nn::profile_model(*probe, Shape{1, 3, res, res});
    row.params = prof.params;
    row.flops_per_image = static_cast<std::int64_t>(prof.flops_per_image);
  }

  std::map<std::string, double> totals_ms;
  for (const auto& s : tr.snapshot()) {
    if (s.start_ns < t0) continue;
    if (std::string(s.category) != cat::kPhase) continue;
    totals_ms[s.name] += static_cast<double>(s.dur_ns) / 1e6;
  }
  // Phase spans are per (rank, iteration); normalize to one rank-iteration.
  const double norm = static_cast<double>(options.world) *
                      static_cast<double>(std::max<std::int64_t>(
                          row.iterations, 1));
  row.data_ms = totals_ms["phase.data"] / norm;
  row.forward_ms = totals_ms["phase.forward"] / norm;
  row.backward_ms = totals_ms["phase.backward"] / norm;
  row.allreduce_ms = totals_ms["phase.allreduce"] / norm;
  row.step_ms = totals_ms["phase.step"] / norm;
  return row;
}

void print_scaling_ratio_table(const std::vector<ScalingRatioRow>& rows,
                               std::ostream& out) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-16s %5s %6s %8s %8s %8s %8s %8s %9s %9s\n", "model",
                "world", "iters", "data_ms", "fwd_ms", "bwd_ms", "comm_ms",
                "step_ms", "ratio", "static");
  out << line;
  for (const auto& r : rows) {
    std::snprintf(line, sizeof(line),
                  "%-16s %5d %6lld %8.3f %8.3f %8.3f %8.3f %8.3f %9.2f "
                  "%9.1f\n",
                  r.model.c_str(), r.world,
                  static_cast<long long>(r.iterations), r.data_ms,
                  r.forward_ms, r.backward_ms, r.allreduce_ms, r.step_ms,
                  r.ratio(), r.static_ratio());
    out << line;
  }
}

}  // namespace minsgd::obs
