#include "nn/init.hpp"

#include <cmath>
#include <stdexcept>

namespace minsgd::nn {

void he_normal(Tensor& w, std::int64_t fan_in, Rng& rng) {
  if (fan_in <= 0) throw std::invalid_argument("he_normal: fan_in <= 0");
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  rng.fill_normal(w.span(), 0.0f, stddev);
}

void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                    Rng& rng) {
  if (fan_in <= 0 || fan_out <= 0) {
    throw std::invalid_argument("xavier_uniform: non-positive fan");
  }
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  rng.fill_uniform(w.span(), -a, a);
}

}  // namespace minsgd::nn
