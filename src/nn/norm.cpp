#include "nn/norm.hpp"

#include <cmath>
#include <stdexcept>

namespace minsgd::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float eps, float momentum)
    : c_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_({channels}, 1.0f),
      beta_({channels}),
      dgamma_({channels}),
      dbeta_({channels}),
      running_mean_({channels}),
      running_var_({channels}, 1.0f),
      batch_inv_std_({channels}) {
  if (c_ <= 0) throw std::invalid_argument("BatchNorm2d: channels <= 0");
}

std::string BatchNorm2d::name() const {
  return "bn(" + std::to_string(c_) + ")";
}

void BatchNorm2d::do_forward(const Tensor& x, Tensor& y, bool training,
                             const ComputeContext& ctx, PlanContext& /*pc*/) {
  if (x.shape().rank() != 4 || x.shape()[1] != c_) {
    throw std::invalid_argument("BatchNorm2d " + name() + ": bad input " +
                                x.shape().str());
  }
  y.resize(x.shape());
  const std::int64_t batch = x.shape()[0];
  const std::int64_t spatial = x.shape()[2] * x.shape()[3];
  const std::int64_t m = batch * spatial;  // samples per channel
  if (training) xhat_.resize(x.shape());

  // Parallel over channels: each channel's statistics and normalization are
  // fully serial (double accumulators in fixed batch order), so results are
  // independent of the thread count.
  ctx.parallel_for(0, c_, [&](std::int64_t c_lo, std::int64_t c_hi) {
  for (std::int64_t c = c_lo; c < c_hi; ++c) {
    float mean, var;
    if (training) {
      double acc = 0.0;
      for (std::int64_t n = 0; n < batch; ++n) {
        const float* src = x.data() + (n * c_ + c) * spatial;
        for (std::int64_t s = 0; s < spatial; ++s) acc += src[s];
      }
      mean = static_cast<float>(acc / static_cast<double>(m));
      double vacc = 0.0;
      for (std::int64_t n = 0; n < batch; ++n) {
        const float* src = x.data() + (n * c_ + c) * spatial;
        for (std::int64_t s = 0; s < spatial; ++s) {
          const double d = src[s] - mean;
          vacc += d * d;
        }
      }
      var = static_cast<float>(vacc / static_cast<double>(m));
      running_mean_[c] = momentum_ * running_mean_[c] + (1 - momentum_) * mean;
      running_var_[c] = momentum_ * running_var_[c] + (1 - momentum_) * var;
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float inv_std = 1.0f / std::sqrt(var + eps_);
    if (training) batch_inv_std_[c] = inv_std;
    const float g = gamma_[c], b = beta_[c];
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* src = x.data() + (n * c_ + c) * spatial;
      float* dst = y.data() + (n * c_ + c) * spatial;
      float* xh = training ? xhat_.data() + (n * c_ + c) * spatial : nullptr;
      for (std::int64_t s = 0; s < spatial; ++s) {
        const float h = (src[s] - mean) * inv_std;
        if (xh) xh[s] = h;
        dst[s] = g * h + b;
      }
    }
  }
  }, /*grain=*/1);
}

void BatchNorm2d::do_backward(const Tensor& x, const Tensor& /*y*/,
                              const Tensor& dy, Tensor& dx,
                              const ComputeContext& ctx, PlanContext& /*pc*/) {
  if (xhat_.shape() != x.shape()) {
    throw std::logic_error(
        "BatchNorm2d::backward without a preceding training forward");
  }
  dx.resize(x.shape());
  const std::int64_t batch = x.shape()[0];
  const std::int64_t spatial = x.shape()[2] * x.shape()[3];
  const std::int64_t m = batch * spatial;
  const float inv_m = 1.0f / static_cast<float>(m);

  ctx.parallel_for(0, c_, [&](std::int64_t c_lo, std::int64_t c_hi) {
  for (std::int64_t c = c_lo; c < c_hi; ++c) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* g = dy.data() + (n * c_ + c) * spatial;
      const float* xh = xhat_.data() + (n * c_ + c) * spatial;
      for (std::int64_t s = 0; s < spatial; ++s) {
        sum_dy += g[s];
        sum_dy_xhat += static_cast<double>(g[s]) * xh[s];
      }
    }
    dbeta_[c] += static_cast<float>(sum_dy);
    dgamma_[c] += static_cast<float>(sum_dy_xhat);
    const float coeff = gamma_[c] * batch_inv_std_[c];
    const auto sdy = static_cast<float>(sum_dy);
    const auto sdyx = static_cast<float>(sum_dy_xhat);
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* g = dy.data() + (n * c_ + c) * spatial;
      const float* xh = xhat_.data() + (n * c_ + c) * spatial;
      float* out = dx.data() + (n * c_ + c) * spatial;
      for (std::int64_t s = 0; s < spatial; ++s) {
        out[s] = coeff * (g[s] - inv_m * (sdy + xh[s] * sdyx));
      }
    }
  }
  }, /*grain=*/1);
}

std::vector<ParamRef> BatchNorm2d::params() {
  // Norm parameters are exempt from weight decay (and hence from the LARS
  // denominator decay term), per the large-batch training recipes.
  return {{"gamma", &gamma_, &dgamma_, /*decay=*/false},
          {"beta", &beta_, &dbeta_, /*decay=*/false}};
}

std::vector<BufferRef> BatchNorm2d::buffers() {
  return {{"running_mean", &running_mean_},
          {"running_var", &running_var_}};
}

void BatchNorm2d::init(Rng& /*rng*/) {
  gamma_.fill(1.0f);
  beta_.zero();
  running_mean_.zero();
  running_var_.fill(1.0f);
}

LRN::LRN(std::int64_t local_size, float alpha, float beta, float k)
    : n_(local_size), alpha_(alpha), beta_(beta), k_(k) {
  if (n_ <= 0 || n_ % 2 == 0) {
    throw std::invalid_argument("LRN: local_size must be positive odd");
  }
}

std::string LRN::name() const { return "lrn(n=" + std::to_string(n_) + ")"; }

void LRN::do_forward(const Tensor& x, Tensor& y, bool /*training*/,
                     const ComputeContext& ctx, PlanContext& /*pc*/) {
  if (x.shape().rank() != 4) {
    throw std::invalid_argument("LRN: input must be NCHW");
  }
  y.resize(x.shape());
  scale_.resize(x.shape());
  const std::int64_t batch = x.shape()[0], ch = x.shape()[1];
  const std::int64_t spatial = x.shape()[2] * x.shape()[3];
  const std::int64_t half = n_ / 2;
  const float a = alpha_ / static_cast<float>(n_);
  ctx.parallel_for(0, batch, [&](std::int64_t n_lo, std::int64_t n_hi) {
  for (std::int64_t n = n_lo; n < n_hi; ++n) {
    for (std::int64_t s = 0; s < spatial; ++s) {
      for (std::int64_t c = 0; c < ch; ++c) {
        double acc = 0.0;
        const std::int64_t lo = std::max<std::int64_t>(0, c - half);
        const std::int64_t hi = std::min(ch - 1, c + half);
        for (std::int64_t cc = lo; cc <= hi; ++cc) {
          const float v = x.data()[(n * ch + cc) * spatial + s];
          acc += static_cast<double>(v) * v;
        }
        const float sc = k_ + a * static_cast<float>(acc);
        scale_.data()[(n * ch + c) * spatial + s] = sc;
        y.data()[(n * ch + c) * spatial + s] =
            x.data()[(n * ch + c) * spatial + s] * std::pow(sc, -beta_);
      }
    }
  }
  }, /*grain=*/1);
}

void LRN::do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                      Tensor& dx, const ComputeContext& ctx,
                      PlanContext& /*pc*/) {
  dx.resize(x.shape());
  const std::int64_t batch = x.shape()[0], ch = x.shape()[1];
  const std::int64_t spatial = x.shape()[2] * x.shape()[3];
  const std::int64_t half = n_ / 2;
  const float a = alpha_ / static_cast<float>(n_);
  // dx_i = dy_i * scale_i^{-beta}
  //        - 2*(alpha/n)*beta * x_i * sum_{j: i in window(j)} dy_j*y_j/scale_j
  ctx.parallel_for(0, batch, [&](std::int64_t n_lo, std::int64_t n_hi) {
  for (std::int64_t n = n_lo; n < n_hi; ++n) {
    for (std::int64_t s = 0; s < spatial; ++s) {
      for (std::int64_t c = 0; c < ch; ++c) {
        const std::int64_t idx = (n * ch + c) * spatial + s;
        double cross = 0.0;
        const std::int64_t lo = std::max<std::int64_t>(0, c - half);
        const std::int64_t hi = std::min(ch - 1, c + half);
        for (std::int64_t cc = lo; cc <= hi; ++cc) {
          const std::int64_t jdx = (n * ch + cc) * spatial + s;
          cross += static_cast<double>(dy.data()[jdx]) * y.data()[jdx] /
                   scale_.data()[jdx];
        }
        dx.data()[idx] =
            dy.data()[idx] * std::pow(scale_.data()[idx], -beta_) -
            2.0f * a * beta_ * x.data()[idx] * static_cast<float>(cross);
      }
    }
  }
  }, /*grain=*/1);
}

}  // namespace minsgd::nn
