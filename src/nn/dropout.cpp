#include "nn/dropout.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace minsgd::nn {

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {
  if (p < 0.0f || p >= 1.0f) {
    throw std::invalid_argument("Dropout: p must be in [0, 1)");
  }
}

std::string Dropout::name() const {
  return "dropout(p=" + std::to_string(p_) + ")";
}

void Dropout::do_forward(const Tensor& x, Tensor& y, bool training,
                         const ComputeContext& ctx, PlanContext& /*pc*/) {
  y.resize(x.shape());
  last_was_training_ = training;
  if (!training || p_ == 0.0f) {
    copy(ctx, x.span(), y.span());
    return;
  }
  mask_.resize(x.shape());
  const float keep = 1.0f - p_;
  const float inv_keep = 1.0f / keep;
  const std::int64_t n = x.numel();
  // The mask draws must consume the sequential RNG stream in element order
  // (bit-exact resume depends on it), so mask generation stays serial; only
  // the apply is parallel.
  for (std::int64_t i = 0; i < n; ++i) {
    const bool kept = rng_.uniform() >= p_;
    mask_[i] = kept ? inv_keep : 0.0f;
  }
  hadamard(ctx, x.span(), mask_.span(), y.span());
}

void Dropout::do_backward(const Tensor& x, const Tensor& /*y*/,
                          const Tensor& dy, Tensor& dx,
                          const ComputeContext& ctx, PlanContext& /*pc*/) {
  dx.resize(x.shape());
  if (!last_was_training_ || p_ == 0.0f) {
    copy(ctx, dy.span(), dx.span());
    return;
  }
  hadamard(ctx, dy.span(), mask_.span(), dx.span());
}

}  // namespace minsgd::nn
