#include "nn/conv.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels/conv_direct.hpp"

namespace minsgd::nn {
namespace {

bool conv_direct_default() {
  const char* env = std::getenv("MINSGD_CONV_DIRECT");
  if (env == nullptr) return true;
  const std::string v(env);
  return !(v == "0" || v == "off" || v == "false");
}

std::atomic<bool> g_conv_direct{conv_direct_default()};

}  // namespace

void Conv2d::set_direct_enabled(bool on) {
  g_conv_direct.store(on, std::memory_order_relaxed);
}

bool Conv2d::direct_enabled() {
  return g_conv_direct.load(std::memory_order_relaxed);
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool bias, std::int64_t groups)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      groups_(groups),
      has_bias_(bias),
      w_({out_channels, in_channels / groups, kernel, kernel}),
      b_(bias ? Tensor({out_channels}) : Tensor()),
      dw_({out_channels, in_channels / groups, kernel, kernel}),
      db_(bias ? Tensor({out_channels}) : Tensor()) {
  if (in_c_ <= 0 || out_c_ <= 0 || k_ <= 0 || stride_ <= 0 || pad_ < 0 ||
      groups_ <= 0 || in_c_ % groups_ != 0 || out_c_ % groups_ != 0) {
    throw std::invalid_argument("Conv2d: invalid configuration");
  }
}

std::string Conv2d::name() const {
  std::string s = "conv" + std::to_string(k_) + "x" + std::to_string(k_) +
                  "(" + std::to_string(in_c_) + "->" + std::to_string(out_c_) +
                  ")/s" + std::to_string(stride_);
  if (groups_ > 1) s += "/g" + std::to_string(groups_);
  return s;
}

Shape Conv2d::output_shape(const Shape& input) const {
  if (input.rank() != 4 || input[1] != in_c_) {
    throw std::invalid_argument("Conv2d " + name() + ": bad input " +
                                input.str());
  }
  const std::int64_t out_h = (input[2] + 2 * pad_ - k_) / stride_ + 1;
  const std::int64_t out_w = (input[3] + 2 * pad_ - k_) / stride_ + 1;
  if (out_h <= 0 || out_w <= 0) {
    throw std::invalid_argument("Conv2d " + name() + ": input too small " +
                                input.str());
  }
  return {input[0], out_c_, out_h, out_w};
}

void Conv2d::im2col(const Tensor& x, std::int64_t n, float* col,
                    std::int64_t out_h, std::int64_t out_w) const {
  const std::int64_t h = x.shape()[2], w = x.shape()[3];
  const std::int64_t spatial = out_h * out_w;
  // col is (in_c*k*k) x (out_h*out_w), row-major, channel-major rows, so the
  // rows belonging to one channel group are contiguous. Every element is
  // written (padding as explicit zeros), so a dirty reused buffer is fine.
  for (std::int64_t c = 0; c < in_c_; ++c) {
    for (std::int64_t ki = 0; ki < k_; ++ki) {
      for (std::int64_t kj = 0; kj < k_; ++kj) {
        float* dst = col + ((c * k_ + ki) * k_ + kj) * spatial;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t ih = oh * stride_ - pad_ + ki;
          if (ih < 0 || ih >= h) {
            std::memset(dst + oh * out_w, 0,
                        static_cast<std::size_t>(out_w) * sizeof(float));
            continue;
          }
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            const std::int64_t iw = ow * stride_ - pad_ + kj;
            dst[oh * out_w + ow] =
                (iw >= 0 && iw < w) ? x.at(n, c, ih, iw) : 0.0f;
          }
        }
      }
    }
  }
}

void Conv2d::col2im(const float* col, Tensor& dx, std::int64_t n,
                    std::int64_t out_h, std::int64_t out_w) const {
  const std::int64_t h = dx.shape()[2], w = dx.shape()[3];
  const std::int64_t spatial = out_h * out_w;
  for (std::int64_t c = 0; c < in_c_; ++c) {
    for (std::int64_t ki = 0; ki < k_; ++ki) {
      for (std::int64_t kj = 0; kj < k_; ++kj) {
        const float* src = col + ((c * k_ + ki) * k_ + kj) * spatial;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t ih = oh * stride_ - pad_ + ki;
          if (ih < 0 || ih >= h) continue;
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            const std::int64_t iw = ow * stride_ - pad_ + kj;
            if (iw >= 0 && iw < w) dx.at(n, c, ih, iw) += src[oh * out_w + ow];
          }
        }
      }
    }
  }
}

std::int64_t Conv2d::backward_chunks(std::int64_t batch) const {
  // Chunk count derived from (batch, weight size) only — never the thread
  // count — capping per-chunk dW partial memory at ~8 MB while keeping
  // results bit-identical.
  const std::int64_t dw_bytes =
      static_cast<std::int64_t>(w_.numel() + (has_bias_ ? out_c_ : 0)) * 4;
  const std::int64_t mem_cap = std::max<std::int64_t>(
      1, (std::int64_t{8} << 20) / std::max<std::int64_t>(1, dw_bytes));
  return std::min(ComputeContext::chunk_count(batch, /*grain=*/1), mem_cap);
}

Shape Conv2d::plan_forward(PlanBuilder& builder, const Shape& input) {
  const std::int32_t step = builder.tick();
  const Shape out = output_shape(input);
  plan_fwd_col_ = kNoTensor;
  const bool direct =
      direct_enabled() &&
      kernels::conv2d_direct_eligible(k_, stride_, pad_, groups_);
  if (!direct) {
    const std::int64_t spatial = out[2] * out[3];
    const std::int64_t col_elems = in_c_ * k_ * k_ * spatial;
    const std::int64_t chunks = ComputeContext::chunk_count(input[0], 1);
    plan_fwd_col_ = builder.scratch(chunks * col_elems, step);
  }
  return out;
}

void Conv2d::plan_backward(PlanBuilder& builder, const Shape& input) {
  const std::int32_t step = builder.tick();
  const Shape out = output_shape(input);
  const std::int64_t chunks = backward_chunks(input[0]);
  plan_bwd_dw_ = builder.scratch(chunks * w_.numel(), step);
  plan_bwd_db_ =
      has_bias_ ? builder.scratch(chunks * out_c_, step) : kNoTensor;
  plan_bwd_col_ = kNoTensor;
  plan_bwd_dcol_ = kNoTensor;
  const bool direct1x1 = direct_enabled() && groups_ == 1 && k_ == 1 &&
                         stride_ == 1 && pad_ == 0;
  if (!direct1x1) {
    const std::int64_t col_elems = in_c_ * k_ * k_ * out[2] * out[3];
    plan_bwd_col_ = builder.scratch(chunks * col_elems, step);
    plan_bwd_dcol_ = builder.scratch(chunks * col_elems, step);
  }
}

void Conv2d::do_forward(const Tensor& x, Tensor& y, bool /*training*/,
                        const ComputeContext& ctx, PlanContext& pc) {
  const Shape out = output_shape(x.shape());
  y.resize(out);
  const std::int64_t batch = x.shape()[0];
  const std::int64_t out_h = out[2], out_w = out[3];
  const std::int64_t spatial = out_h * out_w;
  const std::int64_t kdim = (in_c_ / groups_) * k_ * k_;  // per-group depth
  const std::int64_t g_out = out_c_ / groups_;

  const bool direct = direct_enabled() &&
                      kernels::conv2d_direct_eligible(k_, stride_, pad_, groups_);
  if (direct && k_ == 1) {
    // 1x1 stride-1 unpadded: the conv IS a GEMM on the input plane — no
    // gather at all. Bit-identical to the im2col path (whose col buffer
    // equals the input slice bytewise), so this needs no separate oracle.
    ctx.for_chunks(
        batch, /*grain=*/1,
        [&](std::int64_t /*c*/, std::int64_t lo, std::int64_t hi) {
          for (std::int64_t n = lo; n < hi; ++n) {
            sgemm(ctx, Trans::kNo, Trans::kNo, out_c_, spatial, in_c_, 1.0f,
                  w_.data(), in_c_, x.data() + n * in_c_ * spatial, spatial,
                  0.0f, y.data() + n * out_c_ * spatial, spatial);
            if (has_bias_) {
              for (std::int64_t oc = 0; oc < out_c_; ++oc) {
                float* dst = y.data() + (n * out_c_ + oc) * spatial;
                const float bv = b_[oc];
                for (std::int64_t s = 0; s < spatial; ++s) dst[s] += bv;
              }
            }
          }
        });
    return;
  }
  if (direct) {
    // Stride-1 3x3: fused direct conv — im2col folded into B-panel packing.
    const kernels::Conv2dGeom geom{in_c_, x.shape()[2], x.shape()[3],
                                   out_c_,  out_h,       out_w,
                                   k_,      stride_,     pad_};
    kernels::conv2d_forward_direct(ctx, x.data(), w_.data(),
                                   has_bias_ ? b_.data() : nullptr, y.data(),
                                   batch, geom);
    return;
  }

  // Batch-parallel with per-chunk im2col scratch; each image's output rows
  // are disjoint, so no reduction is needed. The inner sgemm runs inline
  // (nested region). The chunk-strided scratch block is requested up front
  // so worker threads never allocate.
  const std::int64_t col_elems = in_c_ * k_ * k_ * spatial;
  const std::int64_t chunks = ComputeContext::chunk_count(batch, /*grain=*/1);
  const std::span<float> cols = pc.floats(plan_fwd_col_, chunks * col_elems);
  ctx.for_chunks(
      batch, /*grain=*/1,
      [&](std::int64_t c, std::int64_t lo, std::int64_t hi) {
        float* col = cols.data() + c * col_elems;
        for (std::int64_t n = lo; n < hi; ++n) {
          im2col(x, n, col, out_h, out_w);
          for (std::int64_t g = 0; g < groups_; ++g) {
            // y[n, group g] = W_g (g_out x kdim) * col_g (kdim x spatial)
            sgemm(ctx, Trans::kNo, Trans::kNo, g_out, spatial, kdim, 1.0f,
                  w_.data() + g * g_out * kdim, kdim,
                  col + g * kdim * spatial, spatial, 0.0f,
                  y.data() + (n * out_c_ + g * g_out) * spatial, spatial);
          }
          if (has_bias_) {
            for (std::int64_t oc = 0; oc < out_c_; ++oc) {
              float* dst = y.data() + (n * out_c_ + oc) * spatial;
              const float bv = b_[oc];
              for (std::int64_t s = 0; s < spatial; ++s) dst[s] += bv;
            }
          }
        }
      });
}

void Conv2d::do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                         Tensor& dx, const ComputeContext& ctx,
                         PlanContext& pc) {
  const Shape out = y.shape();
  const std::int64_t batch = x.shape()[0];
  const std::int64_t out_h = out[2], out_w = out[3];
  const std::int64_t spatial = out_h * out_w;
  const std::int64_t kdim = (in_c_ / groups_) * k_ * k_;
  const std::int64_t g_out = out_c_ / groups_;

  dx.resize(x.shape());
  dx.zero();

  // dx rows are disjoint per image, but dW/db are reductions over the batch:
  // each chunk accumulates into its own slice of a chunk-strided partial
  // block, and the slices are folded into dw_/db_ in fixed chunk order
  // afterwards (see backward_chunks for the determinism/memory cap).
  const std::int64_t chunks = backward_chunks(batch);
  if (chunks <= 0) return;

  const std::int64_t wn = w_.numel();
  const std::span<float> dw_parts = pc.floats(plan_bwd_dw_, chunks * wn);
  const std::span<float> db_parts =
      has_bias_ ? pc.floats(plan_bwd_db_, chunks * out_c_) : std::span<float>{};

  // 1x1 stride-1 unpadded skips the col buffers entirely: the column
  // matrix is the input slice and dcol is dx itself. Bit-identical to
  // the im2col path (col2im adds each dcol element once onto zero).
  const bool direct1x1 = direct_enabled() && groups_ == 1 && k_ == 1 &&
                         stride_ == 1 && pad_ == 0;
  const std::int64_t col_elems = direct1x1 ? 0 : in_c_ * k_ * k_ * spatial;
  const std::span<float> cols =
      direct1x1 ? std::span<float>{} : pc.floats(plan_bwd_col_, chunks * col_elems);
  const std::span<float> dcols =
      direct1x1 ? std::span<float>{} : pc.floats(plan_bwd_dcol_, chunks * col_elems);

  ctx.for_chunks_n(
      batch, chunks, [&](std::int64_t c, std::int64_t lo, std::int64_t hi) {
        float* dwp = dw_parts.data() + c * wn;
        std::fill_n(dwp, static_cast<std::size_t>(wn), 0.0f);
        float* dbp = nullptr;
        if (has_bias_) {
          dbp = db_parts.data() + c * out_c_;
          std::fill_n(dbp, static_cast<std::size_t>(out_c_), 0.0f);
        }
        float* col = direct1x1 ? nullptr : cols.data() + c * col_elems;
        float* dcol = direct1x1 ? nullptr : dcols.data() + c * col_elems;
        for (std::int64_t n = lo; n < hi; ++n) {
          if (direct1x1) {
            const float* dy_n = dy.data() + n * out_c_ * spatial;
            // dW(partial) += dy_n (out_c x spatial) * x_n^T (spatial x in_c)
            sgemm(ctx, Trans::kNo, Trans::kYes, out_c_, in_c_, spatial, 1.0f,
                  dy_n, spatial, x.data() + n * in_c_ * spatial, spatial, 1.0f,
                  dwp, in_c_);
            // dx_n = W^T (in_c x out_c) * dy_n (out_c x spatial)
            sgemm(ctx, Trans::kYes, Trans::kNo, in_c_, spatial, out_c_, 1.0f,
                  w_.data(), in_c_, dy_n, spatial, 0.0f,
                  dx.data() + n * in_c_ * spatial, spatial);
          } else {
            im2col(x, n, col, out_h, out_w);
            for (std::int64_t g = 0; g < groups_; ++g) {
              const float* dy_g =
                  dy.data() + (n * out_c_ + g * g_out) * spatial;
              // dW_g(partial) += dy_g (g_out x spatial) * col_g^T (spatial x kdim)
              sgemm(ctx, Trans::kNo, Trans::kYes, g_out, kdim, spatial, 1.0f,
                    dy_g, spatial, col + g * kdim * spatial, spatial,
                    1.0f, dwp + g * g_out * kdim, kdim);
              // dcol_g = W_g^T (kdim x g_out) * dy_g (g_out x spatial)
              sgemm(ctx, Trans::kYes, Trans::kNo, kdim, spatial, g_out, 1.0f,
                    w_.data() + g * g_out * kdim, kdim, dy_g, spatial, 0.0f,
                    dcol + g * kdim * spatial, spatial);
            }
            col2im(dcol, dx, n, out_h, out_w);
          }
          if (has_bias_) {
            for (std::int64_t oc = 0; oc < out_c_; ++oc) {
              const float* src = dy.data() + (n * out_c_ + oc) * spatial;
              double acc = 0.0;
              for (std::int64_t s = 0; s < spatial; ++s) acc += src[s];
              dbp[oc] += static_cast<float>(acc);
            }
          }
        }
      });

  // Fixed-order combine on the calling thread. Chunks whose range is empty
  // never ran (for_chunks_n skips them), so their slices are dirty — skip
  // them by recomputing the deterministic bounds.
  for (std::int64_t c = 0; c < chunks; ++c) {
    const auto [lo, hi] = ComputeContext::chunk_bounds(batch, chunks, c);
    if (lo >= hi) continue;
    const float* dwp = dw_parts.data() + c * wn;
    for (std::int64_t i = 0; i < wn; ++i) dw_[i] += dwp[i];
    if (has_bias_) {
      const float* dbp = db_parts.data() + c * out_c_;
      for (std::int64_t i = 0; i < out_c_; ++i) db_[i] += dbp[i];
    }
  }
}

std::vector<ParamRef> Conv2d::params() {
  std::vector<ParamRef> p;
  p.push_back({"weight", &w_, &dw_, /*decay=*/true});
  if (has_bias_) p.push_back({"bias", &b_, &db_, /*decay=*/false});
  return p;
}

void Conv2d::init(Rng& rng) {
  he_normal(w_, (in_c_ / groups_) * k_ * k_, rng);
  if (has_bias_) b_.zero();
}

std::int64_t Conv2d::flops(const Shape& input) const {
  const Shape out = output_shape(input);
  // 2 flops (mul+add) per MAC; per image (batch dim excluded).
  return 2 * out_c_ * (in_c_ / groups_) * k_ * k_ * out[2] * out[3];
}

}  // namespace minsgd::nn
