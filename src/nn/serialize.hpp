// Checkpointing: binary save/load of network parameters.
//
// Format (little-endian, versioned):
//   magic "MSGD"  u32 version  u64 param_count
//   per parameter: u64 name_len, name bytes, u64 numel, float data[numel]
// Loading matches parameters by name and shape, so a checkpoint survives
// refactors that keep the architecture identical, and fails loudly on any
// mismatch rather than silently mis-assigning weights.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/network.hpp"

namespace minsgd::nn {

/// Writes every parameter of `net` to `path`. Throws std::runtime_error on
/// I/O failure.
void save_checkpoint(Network& net, const std::string& path);

/// Loads parameters into `net`. Every parameter in the file must exist in
/// the network with the same element count, and vice versa.
void load_checkpoint(Network& net, const std::string& path);

/// Stream versions (unit-testable without touching the filesystem).
void save_checkpoint(Network& net, std::ostream& out);
void load_checkpoint(Network& net, std::istream& in);

}  // namespace minsgd::nn
