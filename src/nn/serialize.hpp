// Checkpointing: binary save/load of network parameters.
//
// Format (little-endian, versioned):
//   magic "MSGD"  u32 version  u64 param_count
//   per parameter: u64 name_len, name bytes, u64 numel, float data[numel]
// Version 1 is the legacy weight-only layout (learnable parameters, no
// persistent buffers); version 2 adds the buffers (batch-norm running
// statistics) under "buffer."-prefixed names. Loading matches entries by
// name and element count, so a checkpoint survives refactors that keep the
// architecture identical, and fails loudly on any mismatch rather than
// silently mis-assigning weights. The trainer-level checkpoint that also
// carries optimizer/schedule/RNG state lives in src/train/checkpoint.hpp
// and embeds this model section.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "nn/network.hpp"

namespace minsgd::nn {

/// Current model-section version (weights + persistent buffers).
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// Writes every parameter (and, for version 2, every persistent buffer) of
/// `net` to `path`. Throws std::runtime_error on I/O failure and
/// std::invalid_argument on an unknown version.
void save_checkpoint(Network& net, const std::string& path);

/// Loads parameters into `net`. Accepts version 2 (weights + buffers; every
/// entry must exist in the network with the same element count, and vice
/// versa) and legacy version 1 files (weights only; buffers are left as
/// they are).
void load_checkpoint(Network& net, const std::string& path);

/// Stream versions (unit-testable without touching the filesystem).
/// `version` selects the on-disk layout: kCheckpointVersion (default) or 1
/// for a legacy weight-only file.
void save_checkpoint(Network& net, std::ostream& out,
                     std::uint32_t version = kCheckpointVersion);
void load_checkpoint(Network& net, std::istream& in);

}  // namespace minsgd::nn
