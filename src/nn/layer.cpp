#include "nn/layer.hpp"

#include "nn/plan.hpp"

namespace minsgd::nn {

void Layer::forward(const Tensor& x, Tensor& y, bool training,
                    const ComputeContext& ctx, PlanContext* pc) {
  MINSGD_CHECK(!x.empty(), name(), "::forward: empty input");
  if (pc != nullptr) {
    // Scope any legacy scratch this call requests to the call itself, so a
    // deep stack's un-planned scratch frees layer by layer instead of
    // accumulating across the pass.
    const std::size_t m = pc->mark();
    do_forward(x, y, training, ctx, *pc);
    pc->release(m);
  } else {
    PlanContext local;
    do_forward(x, y, training, ctx, local);
  }
}

void Layer::backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                     Tensor& dx, const ComputeContext& ctx, PlanContext* pc) {
  MINSGD_CHECK(!x.empty(), name(), "::backward: empty input");
  MINSGD_CHECK(dy.shape() == y.shape(), name(),
               "::backward: dy/y shape mismatch (", dy.numel(), " vs ",
               y.numel(), " elements)");
  if (pc != nullptr) {
    const std::size_t m = pc->mark();
    do_backward(x, y, dy, dx, ctx, *pc);
    pc->release(m);
  } else {
    PlanContext local;
    do_backward(x, y, dy, dx, ctx, local);
  }
}

Shape Layer::plan_forward(PlanBuilder& builder, const Shape& input) {
  builder.tick();
  return output_shape(input);
}

void Layer::plan_backward(PlanBuilder& builder, const Shape& input) {
  (void)input;
  builder.tick();
}

}  // namespace minsgd::nn
