#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace minsgd::nn {

LossResult SoftmaxCrossEntropy::forward_backward(
    const Tensor& logits, std::span<const std::int32_t> labels,
    Tensor* dlogits, const ComputeContext& ctx) const {
  if (logits.shape().rank() != 2) {
    throw std::invalid_argument("SoftmaxCrossEntropy: logits must be 2-D");
  }
  const std::int64_t batch = logits.shape()[0];
  const std::int64_t classes = logits.shape()[1];
  if (static_cast<std::int64_t>(labels.size()) != batch) {
    throw std::invalid_argument("SoftmaxCrossEntropy: label count mismatch");
  }
  if (dlogits) dlogits->resize(logits.shape());
  if (batch == 0) return {};

  const float inv_batch = 1.0f / static_cast<float>(batch);
  // Per-chunk loss/top-1 partials, combined in chunk order below; dlogits
  // rows are disjoint per sample.
  double loss_part[ComputeContext::kMaxChunks] = {};
  std::int64_t correct_part[ComputeContext::kMaxChunks] = {};
  const std::int64_t chunks = ComputeContext::chunk_count(batch, /*grain=*/1);
  ctx.for_chunks_n(batch, chunks, [&](std::int64_t ci, std::int64_t lo,
                                      std::int64_t hi) {
    double loss = 0.0;
    std::int64_t correct = 0;
    for (std::int64_t n = lo; n < hi; ++n) {
      const float* row = logits.data() + n * classes;
      const std::int32_t label = labels[static_cast<std::size_t>(n)];
      if (label < 0 || label >= classes) {
        throw std::out_of_range("SoftmaxCrossEntropy: label out of range");
      }
      // Stable log-sum-exp.
      float m = row[0];
      std::int64_t argmax = 0;
      for (std::int64_t c = 1; c < classes; ++c) {
        if (row[c] > m) {
          m = row[c];
          argmax = c;
        }
      }
      double denom = 0.0;
      for (std::int64_t c = 0; c < classes; ++c) denom += std::exp(row[c] - m);
      const double log_denom = std::log(denom);
      loss += log_denom + m - row[label];
      if (argmax == label) ++correct;
      if (dlogits) {
        float* g = dlogits->data() + n * classes;
        for (std::int64_t c = 0; c < classes; ++c) {
          const auto p = static_cast<float>(std::exp(row[c] - m) / denom);
          g[c] = (p - (c == label ? 1.0f : 0.0f)) * inv_batch;
        }
      }
    }
    loss_part[ci] = loss;
    correct_part[ci] = correct;
  });

  LossResult res;
  for (std::int64_t c = 0; c < chunks; ++c) {
    res.loss += loss_part[c];
    res.correct += correct_part[c];
  }
  res.loss /= static_cast<double>(batch);
  return res;
}

}  // namespace minsgd::nn
