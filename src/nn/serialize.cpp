#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "core/io.hpp"

namespace minsgd::nn {
namespace {

constexpr char kMagic[4] = {'M', 'S', 'G', 'D'};

void write_u32(std::ostream& out, std::uint32_t v) { core::write_pod(out, v); }

void write_u64(std::ostream& out, std::uint64_t v) { core::write_pod(out, v); }

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  core::read_pod(in, v);
  if (!in) throw std::runtime_error("checkpoint: truncated (u32)");
  return v;
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  core::read_pod(in, v);
  if (!in) throw std::runtime_error("checkpoint: truncated (u64)");
  return v;
}

}  // namespace

void save_checkpoint(Network& net, std::ostream& out, std::uint32_t version) {
  if (version != 1 && version != kCheckpointVersion) {
    throw std::invalid_argument("checkpoint: cannot write version " +
                                std::to_string(version));
  }
  // Learnable parameters plus (v2) persistent buffers such as batch-norm
  // running statistics: inference is wrong without the latter.
  struct Entry {
    std::string name;
    const Tensor* value;
  };
  std::vector<Entry> entries;
  for (const auto& p : net.params()) entries.push_back({p.name, p.value});
  if (version >= 2) {
    for (const auto& b : net.buffers()) {
      entries.push_back({"buffer." + b.name, b.value});
    }
  }
  out.write(kMagic, sizeof(kMagic));
  write_u32(out, version);
  write_u64(out, entries.size());
  for (const auto& e : entries) {
    write_u64(out, e.name.size());
    out.write(e.name.data(), static_cast<std::streamsize>(e.name.size()));
    write_u64(out, static_cast<std::uint64_t>(e.value->numel()));
    core::write_f32(out, e.value->span());
  }
  if (!out) throw std::runtime_error("checkpoint: write failed");
}

void load_checkpoint(Network& net, std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  const auto version = read_u32(in);
  if (version != 1 && version != kCheckpointVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version));
  }
  auto params = net.params();
  auto bufs = net.buffers();
  std::map<std::string, Tensor*> by_name;
  for (auto& p : params) by_name[p.name] = p.value;
  // Legacy v1 files predate buffer persistence: only weights are matched,
  // and the network's buffers are left untouched.
  if (version >= 2) {
    for (auto& b : bufs) by_name["buffer." + b.name] = b.value;
  }

  const auto count = read_u64(in);
  if (count != by_name.size()) {
    throw std::runtime_error("checkpoint: entry count mismatch (file " +
                             std::to_string(count) + ", model " +
                             std::to_string(by_name.size()) + ")");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_u64(in);
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!in) throw std::runtime_error("checkpoint: truncated (name)");
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw std::runtime_error("checkpoint: unknown entry '" + name + "'");
    }
    const auto numel = read_u64(in);
    if (numel != static_cast<std::uint64_t>(it->second->numel())) {
      throw std::runtime_error("checkpoint: size mismatch for '" + name +
                               "'");
    }
    core::read_f32(in, it->second->span());
    if (!in) throw std::runtime_error("checkpoint: truncated (data)");
  }
}

void save_checkpoint(Network& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("checkpoint: cannot open " + path);
  save_checkpoint(net, out);
}

void load_checkpoint(Network& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  load_checkpoint(net, in);
}

}  // namespace minsgd::nn
