// Normalization layers: BatchNorm2d and Local Response Normalization.
//
// The paper's AlexNet story depends on both: stock AlexNet uses LRN, and
// scaling its batch size to 32K required replacing LRN with BN ("AlexNet-BN",
// the refined model by B. Ginsburg cited in the paper).
#pragma once

#include <cstdint>

#include "nn/layer.hpp"

namespace minsgd::nn {

/// Per-channel batch normalization over NCHW with learnable scale (gamma)
/// and shift (beta) and running statistics for inference.
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float eps = 1e-5f,
                       float momentum = 0.9f);

  std::string name() const override;
  Shape output_shape(const Shape& input) const override { return input; }
  std::vector<ParamRef> params() override;
  std::vector<BufferRef> buffers() override;
  void init(Rng& rng) override;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

  /// Backward consumes the cached xhat_/batch_inv_std_ from the training
  /// forward; x and y supply shapes only.
  bool backward_reads_input() const override { return false; }
  bool backward_reads_output() const override { return false; }

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx, PlanContext& pc) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx,
                   PlanContext& pc) override;

 private:
  std::int64_t c_;
  float eps_, momentum_;
  Tensor gamma_, beta_, dgamma_, dbeta_;
  Tensor running_mean_, running_var_;
  // Cached by the last training forward, consumed by backward.
  Tensor xhat_;
  Tensor batch_inv_std_;
};

/// Across-channel local response normalization (Krizhevsky 2012 / Caffe):
///   y_c = x_c * (k + (alpha/n) * sum_{c' in window} x_{c'}^2)^{-beta}
class LRN final : public Layer {
 public:
  explicit LRN(std::int64_t local_size = 5, float alpha = 1e-4f,
               float beta = 0.75f, float k = 1.0f);

  std::string name() const override;
  Shape output_shape(const Shape& input) const override { return input; }

  // LRN::do_backward genuinely reads both x and y data, so it keeps the
  // conservative backward_reads_* defaults (true).

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx, PlanContext& pc) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx,
                   PlanContext& pc) override;

 private:
  std::int64_t n_;
  float alpha_, beta_, k_;
  Tensor scale_;  // cached (k + alpha/n * window sum of squares)
};

}  // namespace minsgd::nn
