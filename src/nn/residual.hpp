// Residual block: y = relu(branch(x) + shortcut(x)).
//
// The branch and the (optional projection) shortcut are nested Networks, so
// the block composes from the same layers the rest of the stack uses.
#pragma once

#include <memory>

#include "nn/network.hpp"

namespace minsgd::nn {

/// Generic residual addition block. `shortcut` may be empty (identity); a
/// non-empty shortcut is typically a strided 1x1 conv + BN projection.
class ResidualBlock final : public Layer {
 public:
  ResidualBlock(std::unique_ptr<Network> branch,
                std::unique_ptr<Network> shortcut = nullptr);

  std::string name() const override;
  Shape output_shape(const Shape& input) const override;
  std::vector<ParamRef> params() override;
  std::vector<BufferRef> buffers() override;
  std::vector<Rng*> rng_streams() override;
  void init(Rng& rng) override;
  std::int64_t flops(const Shape& input) const override;

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx) override;

 private:
  std::unique_ptr<Network> branch_;
  std::unique_ptr<Network> shortcut_;  // nullptr = identity
  Tensor branch_out_, shortcut_out_, sum_out_;
  Tensor d_sum_, d_branch_in_, d_shortcut_in_;
};

}  // namespace minsgd::nn
