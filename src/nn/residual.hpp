// Residual block: y = relu(branch(x) + shortcut(x)).
//
// The branch and the (optional projection) shortcut are nested Networks, so
// the block composes from the same layers the rest of the stack uses — and
// the memory planner recurses into them the same way: plan_forward walks
// branch then shortcut then the add/relu step, plan_backward mirrors the
// relu-mask → branch backward → shortcut backward → combine order.
#pragma once

#include <memory>

#include "nn/network.hpp"

namespace minsgd::nn {

/// Generic residual addition block. `shortcut` may be empty (identity); a
/// non-empty shortcut is typically a strided 1x1 conv + BN projection.
class ResidualBlock final : public Layer {
 public:
  ResidualBlock(std::unique_ptr<Network> branch,
                std::unique_ptr<Network> shortcut = nullptr);

  std::string name() const override;
  Shape output_shape(const Shape& input) const override;
  std::vector<ParamRef> params() override;
  std::vector<BufferRef> buffers() override;
  std::vector<Rng*> rng_streams() override;
  void init(Rng& rng) override;
  std::int64_t flops(const Shape& input) const override;

  Shape plan_forward(PlanBuilder& builder, const Shape& input) override;
  void plan_backward(PlanBuilder& builder, const Shape& input) override;

  /// x's data is read in backward iff either sub-network's first layer
  /// reads it (both receive x directly).
  bool backward_reads_input() const override;
  /// The final ReLU's backward gates on y > 0, so y's data is read.
  bool backward_reads_output() const override { return true; }

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx, PlanContext& pc) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx,
                   PlanContext& pc) override;

 private:
  std::unique_ptr<Network> branch_;
  std::unique_ptr<Network> shortcut_;  // nullptr = identity

  // Legacy (unplanned) storage; the planned path binds the same roles to
  // arena slices via the ids below.
  Tensor branch_out_, shortcut_out_;
  Tensor d_sum_, d_branch_in_, d_shortcut_in_;

  TensorId plan_branch_out_ = kNoTensor;
  TensorId plan_shortcut_out_ = kNoTensor;
  TensorId plan_d_sum_ = kNoTensor;
  TensorId plan_d_branch_in_ = kNoTensor;
  TensorId plan_d_shortcut_in_ = kNoTensor;
  std::uint64_t plan_epoch_ = 0;
};

}  // namespace minsgd::nn
