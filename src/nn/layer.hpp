// Layer: the interface every network building block implements.
//
// Layers are stateful: forward() may cache whatever backward() needs
// (pooling argmaxes, batch-norm statistics, dropout masks). The caller keeps
// the activations and passes (x, y, dy) back into backward(). Parameter
// gradients are *accumulated* into ParamRef::grad, so data-parallel code can
// sum local gradients before the optimizer step.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/check.hpp"
#include "tensor/context.hpp"
#include "tensor/rng.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace minsgd::nn {

/// A named view of one learnable parameter and its gradient accumulator.
///
/// `decay` distinguishes weights (subject to L2 weight decay and to the
/// LARS trust-ratio denominator term) from biases / norm scales, which the
/// large-batch recipes exempt.
struct ParamRef {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  bool decay = true;
};

/// A named view of one non-learnable state tensor (e.g. batch-norm running
/// statistics). Buffers are not touched by optimizers but belong in
/// checkpoints: inference is wrong without them.
struct BufferRef {
  std::string name;
  Tensor* value = nullptr;
};

/// Abstract network layer. See file comment for the forward/backward
/// contract. Implementations must be usable for repeated forward/backward
/// cycles with varying batch sizes.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Human-readable layer type + config, e.g. "conv3x3(64->128)/s2".
  virtual std::string name() const = 0;

  /// Output shape produced for a given input shape. Throws on mismatch.
  virtual Shape output_shape(const Shape& input) const = 0;

  /// y = f(x). `training` toggles train-time behaviour (dropout, BN stats).
  /// `ctx` supplies the intra-op thread budget; results are bit-identical
  /// for any thread count (see tensor/context.hpp for the chunking rules).
  /// Precondition (checked): x is non-empty.
  void forward(const Tensor& x, Tensor& y, bool training,
               const ComputeContext& ctx = ComputeContext::default_ctx()) {
    MINSGD_CHECK(!x.empty(), name(), "::forward: empty input");
    do_forward(x, y, training, ctx);
  }

  /// Given dL/dy, accumulates parameter gradients and writes dL/dx.
  /// Must be called with the same (x, y) the preceding forward produced.
  /// Preconditions (checked): dy is shaped like y, and x matches what the
  /// preceding forward consumed (dy.shape == y.shape is the generic part;
  /// layers check their own cached-state contracts).
  void backward(const Tensor& x, const Tensor& y, const Tensor& dy, Tensor& dx,
                const ComputeContext& ctx = ComputeContext::default_ctx()) {
    MINSGD_CHECK(!x.empty(), name(), "::backward: empty input");
    MINSGD_CHECK(dy.shape() == y.shape(), name(),
                 "::backward: dy/y shape mismatch (", dy.numel(), " vs ",
                 y.numel(), " elements)");
    do_backward(x, y, dy, dx, ctx);
  }

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Non-learnable persistent state (empty for most layers).
  virtual std::vector<BufferRef> buffers() { return {}; }

  /// Internal random streams (dropout mask generators). Weight-only
  /// checkpoints ignore these, but bit-exact resume must restore them: a
  /// dropout stream restarted from its seed diverges from the uninterrupted
  /// run at the first training forward.
  virtual std::vector<Rng*> rng_streams() { return {}; }

  /// Initializes parameters (no-op for stateless layers).
  virtual void init(Rng& /*rng*/) {}

  /// Forward-pass FLOPs for one image of shape `input` (multiply+add = 2).
  /// Used by the Table 6 scaling-ratio analysis; 0 for negligible layers.
  virtual std::int64_t flops(const Shape& input) const {
    (void)input;
    return 0;
  }

 protected:
  /// Implementation hooks behind the non-virtual forward/backward above.
  /// Implementations must honour the determinism contract: parallelism only
  /// via `ctx`, reductions in fixed chunk order.
  virtual void do_forward(const Tensor& x, Tensor& y, bool training,
                          const ComputeContext& ctx) = 0;
  virtual void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                           Tensor& dx, const ComputeContext& ctx) = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace minsgd::nn
