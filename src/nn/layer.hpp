// Layer: the interface every network building block implements.
//
// Layers are stateful: forward() may cache whatever backward() needs
// (pooling argmaxes, batch-norm statistics, dropout masks). The caller keeps
// the activations and passes (x, y, dy) back into backward(). Parameter
// gradients are *accumulated* into ParamRef::grad, so data-parallel code can
// sum local gradients before the optimizer step.
//
// Per-call scratch (im2col buffers, per-chunk reduction partials) is NOT
// allocated by layers: do_forward/do_backward request it from the
// PlanContext they receive (nn/plan.hpp). Under a memory plan those
// requests resolve to pre-laid-out arena slices; without one they allocate
// per call, scoped to the layer call by the NVI wrappers — so layer code is
// identical in both modes and the hot-path-alloc lint rule can hold the
// line mechanically.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/check.hpp"
#include "tensor/context.hpp"
#include "tensor/rng.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace minsgd::nn {

class PlanBuilder;
class PlanContext;

/// A named view of one learnable parameter and its gradient accumulator.
///
/// `decay` distinguishes weights (subject to L2 weight decay and to the
/// LARS trust-ratio denominator term) from biases / norm scales, which the
/// large-batch recipes exempt.
struct ParamRef {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  bool decay = true;
};

/// A named view of one non-learnable state tensor (e.g. batch-norm running
/// statistics). Buffers are not touched by optimizers but belong in
/// checkpoints: inference is wrong without them.
struct BufferRef {
  std::string name;
  Tensor* value = nullptr;
};

/// Abstract network layer. See file comment for the forward/backward
/// contract. Implementations must be usable for repeated forward/backward
/// cycles with varying batch sizes.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Human-readable layer type + config, e.g. "conv3x3(64->128)/s2".
  virtual std::string name() const = 0;

  /// Output shape produced for a given input shape. Throws on mismatch.
  /// Pinned against forward() by the shape-oracle test
  /// (tests/test_shape_oracle.cpp); the memory planner sizes every arena
  /// slice from it.
  virtual Shape output_shape(const Shape& input) const = 0;

  /// y = f(x). `training` toggles train-time behaviour (dropout, BN stats).
  /// `ctx` supplies the intra-op thread budget; results are bit-identical
  /// for any thread count (see tensor/context.hpp for the chunking rules).
  /// `pc`, when non-null, supplies planned scratch/activation storage; null
  /// gets a throwaway allocate-per-call context.
  /// Precondition (checked): x is non-empty.
  void forward(const Tensor& x, Tensor& y, bool training,
               const ComputeContext& ctx = ComputeContext::default_ctx(),
               PlanContext* pc = nullptr);

  /// Given dL/dy, accumulates parameter gradients and writes dL/dx.
  /// Must be called with the same (x, y) the preceding forward produced.
  /// Preconditions (checked): dy is shaped like y, and x matches what the
  /// preceding forward consumed (dy.shape == y.shape is the generic part;
  /// layers check their own cached-state contracts).
  void backward(const Tensor& x, const Tensor& y, const Tensor& dy, Tensor& dx,
                const ComputeContext& ctx = ComputeContext::default_ctx(),
                PlanContext* pc = nullptr);

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Non-learnable persistent state (empty for most layers).
  virtual std::vector<BufferRef> buffers() { return {}; }

  /// Internal random streams (dropout mask generators). Weight-only
  /// checkpoints ignore these, but bit-exact resume must restore them: a
  /// dropout stream restarted from its seed diverges from the uninterrupted
  /// run at the first training forward.
  virtual std::vector<Rng*> rng_streams() { return {}; }

  /// Initializes parameters (no-op for stateless layers).
  virtual void init(Rng& /*rng*/) {}

  /// Forward-pass FLOPs for one image of shape `input` (multiply+add = 2).
  /// Used by the Table 6 scaling-ratio analysis; 0 for negligible layers.
  virtual std::int64_t flops(const Shape& input) const {
    (void)input;
    return 0;
  }

  // Memory planning -------------------------------------------------------
  /// Walks one forward execution of this layer on the plan timeline:
  /// advances the step clock over the region do_forward will occupy,
  /// registers per-call scratch (and, for containers, internal activations)
  /// with the builder, stores the returned TensorIds on the layer, and
  /// returns the output shape. The base version claims a single step and no
  /// scratch — correct for every layer whose do_forward allocates nothing.
  virtual Shape plan_forward(PlanBuilder& builder, const Shape& input);

  /// The backward-direction counterpart, called in output→input layer order
  /// (mirroring do_backward and the grad-ready hook). Base: one step, no
  /// scratch.
  virtual void plan_backward(PlanBuilder& builder, const Shape& input);

  /// Whether do_backward reads x's / y's float *data* (reading only shapes
  /// does not count). With PlanOptions.recompute_cheap the planner ends an
  /// activation's liveness at its last forward read when its producer
  /// reports backward_reads_output() == false and its consumer
  /// backward_reads_input() == false. Defaults are conservative.
  virtual bool backward_reads_input() const { return true; }
  virtual bool backward_reads_output() const { return true; }

 protected:
  /// Implementation hooks behind the non-virtual forward/backward above.
  /// Implementations must honour the determinism contract: parallelism only
  /// via `ctx`, reductions in fixed chunk order — and the allocation
  /// contract: scratch only via `pc`, requested before parallel regions.
  virtual void do_forward(const Tensor& x, Tensor& y, bool training,
                          const ComputeContext& ctx, PlanContext& pc) = 0;
  virtual void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                           Tensor& dx, const ComputeContext& ctx,
                           PlanContext& pc) = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace minsgd::nn
