#include "nn/models.hpp"

#include <stdexcept>
#include <string>

#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"

namespace minsgd::nn {
namespace {

void add_alexnet_norm(Network& net, AlexNetNorm norm, std::int64_t channels) {
  if (norm == AlexNetNorm::kLRN) {
    net.emplace<LRN>(5, 1e-4f, 0.75f, 1.0f);
  } else {
    net.emplace<BatchNorm2d>(channels);
  }
  (void)channels;
}

/// Bottleneck block: 1x1 (stride) -> 3x3 -> 1x1 expand, BN after each conv,
/// ReLU inside the branch, projection shortcut when shape changes.
LayerPtr bottleneck(std::int64_t in_c, std::int64_t mid_c, std::int64_t stride) {
  const std::int64_t out_c = mid_c * 4;
  auto branch = std::make_unique<Network>("bottleneck");
  branch->emplace<Conv2d>(in_c, mid_c, 1, stride, 0, /*bias=*/false);
  branch->emplace<BatchNorm2d>(mid_c);
  branch->emplace<ReLU>();
  branch->emplace<Conv2d>(mid_c, mid_c, 3, 1, 1, /*bias=*/false);
  branch->emplace<BatchNorm2d>(mid_c);
  branch->emplace<ReLU>();
  branch->emplace<Conv2d>(mid_c, out_c, 1, 1, 0, /*bias=*/false);
  branch->emplace<BatchNorm2d>(out_c);

  std::unique_ptr<Network> shortcut;
  if (stride != 1 || in_c != out_c) {
    shortcut = std::make_unique<Network>("proj");
    shortcut->emplace<Conv2d>(in_c, out_c, 1, stride, 0, /*bias=*/false);
    shortcut->emplace<BatchNorm2d>(out_c);
  }
  return std::make_unique<ResidualBlock>(std::move(branch),
                                         std::move(shortcut));
}

/// Basic block: two 3x3 convs (first strided), BN after each.
LayerPtr basic_block(std::int64_t in_c, std::int64_t out_c,
                     std::int64_t stride) {
  auto branch = std::make_unique<Network>("basic");
  branch->emplace<Conv2d>(in_c, out_c, 3, stride, 1, /*bias=*/false);
  branch->emplace<BatchNorm2d>(out_c);
  branch->emplace<ReLU>();
  branch->emplace<Conv2d>(out_c, out_c, 3, 1, 1, /*bias=*/false);
  branch->emplace<BatchNorm2d>(out_c);

  std::unique_ptr<Network> shortcut;
  if (stride != 1 || in_c != out_c) {
    shortcut = std::make_unique<Network>("proj");
    shortcut->emplace<Conv2d>(in_c, out_c, 1, stride, 0, /*bias=*/false);
    shortcut->emplace<BatchNorm2d>(out_c);
  }
  return std::make_unique<ResidualBlock>(std::move(branch),
                                         std::move(shortcut));
}

}  // namespace

Shape alexnet_input() { return {1, 3, 227, 227}; }
Shape resnet_input() { return {1, 3, 224, 224}; }

std::unique_ptr<Network> alexnet(std::int64_t classes, AlexNetNorm norm) {
  auto net = std::make_unique<Network>(
      norm == AlexNetNorm::kLRN ? "alexnet" : "alexnet-bn");
  // conv1: 96 x 11x11 / s4 (227 -> 55)
  net->emplace<Conv2d>(3, 96, 11, 4, 0);
  add_alexnet_norm(*net, norm, 96);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(3, 2);  // 55 -> 27
  // conv2: 256 x 5x5 pad 2, 2 groups (27 -> 27)
  net->emplace<Conv2d>(96, 256, 5, 1, 2, true, 2);
  add_alexnet_norm(*net, norm, 256);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(3, 2);  // 27 -> 13
  // conv3/4/5: 384, 384, 256 x 3x3 pad 1; groups on 4 and 5
  net->emplace<Conv2d>(256, 384, 3, 1, 1);
  if (norm == AlexNetNorm::kBN) net->emplace<BatchNorm2d>(384);
  net->emplace<ReLU>();
  net->emplace<Conv2d>(384, 384, 3, 1, 1, true, 2);
  if (norm == AlexNetNorm::kBN) net->emplace<BatchNorm2d>(384);
  net->emplace<ReLU>();
  net->emplace<Conv2d>(384, 256, 3, 1, 1, true, 2);
  if (norm == AlexNetNorm::kBN) net->emplace<BatchNorm2d>(256);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(3, 2);  // 13 -> 6
  // FC head: 9216 -> 4096 -> 4096 -> classes
  net->emplace<Flatten>();
  net->emplace<Linear>(256 * 6 * 6, 4096);
  net->emplace<ReLU>();
  net->emplace<Dropout>(0.5f);
  net->emplace<Linear>(4096, 4096);
  net->emplace<ReLU>();
  net->emplace<Dropout>(0.5f);
  net->emplace<Linear>(4096, classes);
  return net;
}

std::unique_ptr<Network> resnet(std::int64_t depth, std::int64_t classes) {
  std::int64_t blocks[4];
  bool use_bottleneck;
  switch (depth) {
    case 18:
      blocks[0] = 2; blocks[1] = 2; blocks[2] = 2; blocks[3] = 2;
      use_bottleneck = false;
      break;
    case 34:
      blocks[0] = 3; blocks[1] = 4; blocks[2] = 6; blocks[3] = 3;
      use_bottleneck = false;
      break;
    case 50:
      blocks[0] = 3; blocks[1] = 4; blocks[2] = 6; blocks[3] = 3;
      use_bottleneck = true;
      break;
    default:
      throw std::invalid_argument("resnet: depth must be 18, 34 or 50");
  }
  auto net = std::make_unique<Network>("resnet" + std::to_string(depth));
  net->emplace<Conv2d>(3, 64, 7, 2, 3, /*bias=*/false);  // 224 -> 112
  net->emplace<BatchNorm2d>(64);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(3, 2, 1);  // 112 -> 56

  std::int64_t in_c = 64;
  const std::int64_t stage_width[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t width = stage_width[stage];
    for (std::int64_t b = 0; b < blocks[stage]; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      if (use_bottleneck) {
        net->add(bottleneck(in_c, width, stride));
        in_c = width * 4;
      } else {
        net->add(basic_block(in_c, width, stride));
        in_c = width;
      }
    }
  }
  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(in_c, classes);
  return net;
}

std::unique_ptr<Network> tiny_alexnet(std::int64_t classes,
                                      std::int64_t resolution,
                                      AlexNetNorm norm,
                                      std::int64_t base_width) {
  if (resolution < 16) {
    throw std::invalid_argument("tiny_alexnet: resolution must be >= 16");
  }
  if (base_width < 4) {
    throw std::invalid_argument("tiny_alexnet: base_width must be >= 4");
  }
  const std::int64_t w1 = base_width, w2 = 2 * base_width, fc = 8 * base_width;
  auto net = std::make_unique<Network>(
      norm == AlexNetNorm::kLRN ? "tiny-alexnet" : "tiny-alexnet-bn");
  net->emplace<Conv2d>(3, w1, 3, 1, 1);
  add_alexnet_norm(*net, norm, w1);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2, 2);  // r -> r/2
  net->emplace<Conv2d>(w1, w2, 3, 1, 1);
  add_alexnet_norm(*net, norm, w2);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2, 2);  // r/2 -> r/4
  net->emplace<Conv2d>(w2, w2, 3, 1, 1);
  if (norm == AlexNetNorm::kBN) net->emplace<BatchNorm2d>(w2);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2, 2);  // r/4 -> r/8
  const std::int64_t feat = w2 * (resolution / 8) * (resolution / 8);
  net->emplace<Flatten>();
  net->emplace<Linear>(feat, fc);
  net->emplace<ReLU>();
  net->emplace<Dropout>(0.5f);
  net->emplace<Linear>(fc, classes);
  return net;
}

std::unique_ptr<Network> tiny_resnet(std::int64_t blocks_per_stage,
                                     std::int64_t classes,
                                     std::int64_t resolution) {
  if (blocks_per_stage < 1) {
    throw std::invalid_argument("tiny_resnet: blocks_per_stage must be >= 1");
  }
  if (resolution < 8) {
    throw std::invalid_argument("tiny_resnet: resolution must be >= 8");
  }
  auto net = std::make_unique<Network>(
      "tiny-resnet" + std::to_string(6 * blocks_per_stage + 2));
  net->emplace<Conv2d>(3, 16, 3, 1, 1, /*bias=*/false);
  net->emplace<BatchNorm2d>(16);
  net->emplace<ReLU>();
  std::int64_t in_c = 16;
  const std::int64_t widths[3] = {16, 32, 64};
  for (int stage = 0; stage < 3; ++stage) {
    for (std::int64_t b = 0; b < blocks_per_stage; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      net->add(basic_block(in_c, widths[stage], stride));
      in_c = widths[stage];
    }
  }
  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(in_c, classes);
  return net;
}

}  // namespace minsgd::nn
