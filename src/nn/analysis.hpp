// Static model analysis: parameter counts, FLOPs, and the paper's
// computation/communication "scaling ratio" (Table 6).
#pragma once

#include <cstdint>
#include <string>

#include "nn/network.hpp"

namespace minsgd::nn {

/// Summary of a model's compute-vs-communication character.
struct ModelProfile {
  std::string name;
  std::int64_t params = 0;        // |W|: number of learnable scalars
  std::int64_t flops_per_image = 0;  // forward FLOPs, one image
  /// Paper's scaling ratio: flops per image / parameters. Communication per
  /// iteration moves |W| gradients; computation grows with FLOPs, so higher
  /// means easier to scale (Table 6: ResNet-50 ~308, AlexNet ~24.6).
  double scaling_ratio() const {
    return params == 0 ? 0.0
                       : static_cast<double>(flops_per_image) /
                             static_cast<double>(params);
  }
  /// Gradient bytes exchanged per iteration (float32).
  std::int64_t grad_bytes() const { return params * 4; }
};

/// Profiles `net` on an input of shape `input` (batch dimension ignored for
/// the per-image FLOP count; pass batch 1).
ModelProfile profile_model(Network& net, const Shape& input);

/// One line per layer: name, output shape, params, FLOPs.
std::string layer_table(Network& net, const Shape& input);

}  // namespace minsgd::nn
