#include "nn/analysis.hpp"

#include <sstream>

namespace minsgd::nn {

ModelProfile profile_model(Network& net, const Shape& input) {
  ModelProfile p;
  p.name = net.name();
  p.params = net.num_params();
  p.flops_per_image = net.flops(input);
  return p;
}

std::string layer_table(Network& net, const Shape& input) {
  std::ostringstream os;
  Shape s = input;
  for (std::size_t i = 0; i < net.size(); ++i) {
    Layer& l = net.layer(i);
    const Shape out = l.output_shape(s);
    std::int64_t params = 0;
    for (const auto& pr : l.params()) params += pr.value->numel();
    os << i << "\t" << l.name() << "\t" << out.str() << "\tparams=" << params
       << "\tflops=" << l.flops(s) << "\n";
    s = out;
  }
  return os.str();
}

}  // namespace minsgd::nn
