// Elementwise activation layers.
#pragma once

#include "nn/layer.hpp"

namespace minsgd::nn {

/// Rectified linear unit. Backward uses the cached output sign (y > 0),
/// so no extra mask storage is needed.
class ReLU final : public Layer {
 public:
  std::string name() const override { return "relu"; }
  Shape output_shape(const Shape& input) const override { return input; }

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx) override;
};

/// Flatten: NCHW -> (N, C*H*W). Shape-only; data is already contiguous.
class Flatten final : public Layer {
 public:
  std::string name() const override { return "flatten"; }
  Shape output_shape(const Shape& input) const override;

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx) override;
};

}  // namespace minsgd::nn
