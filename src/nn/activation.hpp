// Elementwise activation layers.
#pragma once

#include "nn/layer.hpp"

namespace minsgd::nn {

/// Rectified linear unit. Backward gates on the *input* sign (x > 0, which
/// is bit-identical to y > 0 since y = max(x, 0)), so the output tensor is
/// never read after forward — the memory planner can retire a ReLU output
/// at its last forward use.
class ReLU final : public Layer {
 public:
  std::string name() const override { return "relu"; }
  Shape output_shape(const Shape& input) const override { return input; }
  bool backward_reads_output() const override { return false; }

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx, PlanContext& pc) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx,
                   PlanContext& pc) override;
};

/// Flatten: NCHW -> (N, C*H*W). Shape-only; data is already contiguous.
class Flatten final : public Layer {
 public:
  std::string name() const override { return "flatten"; }
  Shape output_shape(const Shape& input) const override;
  bool backward_reads_input() const override { return false; }
  bool backward_reads_output() const override { return false; }

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx, PlanContext& pc) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx,
                   PlanContext& pc) override;
};

}  // namespace minsgd::nn
