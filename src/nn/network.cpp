#include "nn/network.hpp"

#include <stdexcept>

#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace minsgd::nn {

Network& Network::add(LayerPtr layer) {
  if (!layer) throw std::invalid_argument("Network::add: null layer");
  layers_.push_back(std::move(layer));
  param_cache_valid_ = false;
  return *this;
}

std::string Network::name() const { return label_; }

Shape Network::output_shape(const Shape& input) const {
  Shape s = input;
  for (const auto& l : layers_) s = l->output_shape(s);
  return s;
}

bool Network::backward_reads_input() const {
  return layers_.empty() || layers_.front()->backward_reads_input();
}

Shape Network::plan_forward(PlanBuilder& builder, const Shape& input) {
  plan_act_.assign(layers_.size(), kNoTensor);
  plan_dact_.assign(layers_.size(), kNoTensor);
  plan_in_shapes_.assign(layers_.size(), Shape{});
  plan_input_ = input;
  plan_epoch_ = builder.epoch();
  plan_training_ = builder.training();
  Shape cur = input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    plan_in_shapes_[i] = cur;
    const std::int32_t s0 = builder.now() + 1;
    cur = layers_[i]->plan_forward(builder, cur);
    // The layer's output is defined over its forward region; its input is
    // read throughout that region.
    plan_act_[i] = builder.add(cur, s0, builder.now());
    if (i > 0) builder.extend(plan_act_[i - 1], builder.now());
  }
  return cur;
}

void Network::plan_backward(PlanBuilder& builder, const Shape& /*input*/) {
  const std::size_t n = layers_.size();
  for (std::size_t i = n; i-- > 0;) {
    const std::int32_t s0 = builder.now() + 1;
    layers_[i]->plan_backward(builder, plan_in_shapes_[i]);
    const std::int32_t s1 = builder.now();
    // dx of layer i — defined over this region, read as dy through layer
    // i-1's region (extended there on the next loop turn).
    if (i > 0) plan_dact_[i - 1] = builder.add(plan_in_shapes_[i], s0, s1);
    if (i + 1 < n) builder.extend(plan_dact_[i], s1);
    // Activations read during this region. Without recompute_cheap every
    // activation conservatively survives into its consumers' backward; with
    // it, only layers that declare a data dependence extend the interval —
    // the rest die at their last forward read and the arena aliases them.
    const bool rec = builder.recompute();
    if (!rec || layers_[i]->backward_reads_output()) {
      builder.extend(plan_act_[i], s1);
    }
    if (i > 0 && (!rec || layers_[i]->backward_reads_input())) {
      builder.extend(plan_act_[i - 1], s1);
    }
  }
}

void Network::do_forward(const Tensor& x, Tensor& y, bool training,
                         const ComputeContext& ctx, PlanContext& pc) {
  if (layers_.empty()) throw std::logic_error("Network::forward: empty net");
  // Span names are built only when tracing is on; the disabled path costs
  // one atomic load per layer.
  const bool traced = obs::tracer().enabled();
  obs::ScopedSpan outer;
  if (traced) {
    outer.start("forward." + label_, obs::cat::kCompute);
    outer.set_threads(static_cast<int>(ctx.threads()));
  }
  const bool planned = plan_matches(pc) && x.shape() == plan_input_ &&
                       training == plan_training_;
  last_forward_planned_ = planned;
  if (planned) {
    const Tensor* cur = &x;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      Tensor& out = pc.plan()->tensor(plan_act_[i]);
      obs::ScopedSpan sp;
      if (traced) {
        sp.start("fwd." + layers_[i]->name(), obs::cat::kCompute);
        sp.set_threads(static_cast<int>(ctx.threads()));
      }
      layers_[i]->forward(*cur, out, training, ctx, &pc);
      cur = &out;
    }
    // The caller owns y; hand it the final activation. Backward reads the
    // arena slice, not y.
    y.resize(cur->shape());
    copy(ctx, cur->span(), y.span());
    return;
  }
  // Legacy allocate-per-call path. A planned-but-foreign context (epoch or
  // geometry mismatch) must not reach sublayers: their stored TensorIds
  // would index the wrong arena. They get fresh legacy contexts instead.
  PlanContext* sub = pc.planned() ? nullptr : &pc;
  acts_.resize(layers_.size());
  const Tensor* cur = &x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Tensor& out = (i + 1 == layers_.size()) ? y : acts_[i];
    obs::ScopedSpan sp;
    if (traced) {
      sp.start("fwd." + layers_[i]->name(), obs::cat::kCompute);
      sp.set_threads(static_cast<int>(ctx.threads()));
    }
    layers_[i]->forward(*cur, out, training, ctx, sub);
    cur = &out;
  }
  // Keep the final output cached too, so backward() has the (x, y) pair for
  // the last layer even though the caller owns y.
  acts_.back() = y;
}

void Network::do_backward(const Tensor& x, const Tensor& /*y*/,
                          const Tensor& dy, Tensor& dx,
                          const ComputeContext& ctx, PlanContext& pc) {
  const bool traced = obs::tracer().enabled();
  obs::ScopedSpan outer;
  if (traced) {
    outer.start("backward." + label_, obs::cat::kCompute);
    outer.set_threads(static_cast<int>(ctx.threads()));
  }
  const bool planned = last_forward_planned_ && plan_matches(pc) &&
                       x.shape() == plan_input_;
  if (planned) {
    const Tensor* cur_dy = &dy;
    for (std::size_t i = layers_.size(); i-- > 0;) {
      const Tensor& input = (i == 0) ? x : pc.plan()->tensor(plan_act_[i - 1]);
      Tensor& out_dx = (i == 0) ? dx : pc.plan()->tensor(plan_dact_[i - 1]);
      const Tensor& out = pc.plan()->tensor(plan_act_[i]);
      {
        obs::ScopedSpan sp;
        if (traced) {
          sp.start("bwd." + layers_[i]->name(), obs::cat::kCompute);
          sp.set_threads(static_cast<int>(ctx.threads()));
        }
        layers_[i]->backward(input, out, *cur_dy, out_dx, ctx, &pc);
      }
      if (grad_ready_hook_) grad_ready_hook_(i, *layers_[i]);
      cur_dy = &out_dx;
    }
    return;
  }
  if (last_forward_planned_) {
    // Forward ran against a plan this context does not carry; the legacy
    // acts_ below would be stale. Refuse rather than silently diverge.
    throw std::logic_error(
        "Network::backward: planned forward but mismatched backward context");
  }
  if (acts_.size() != layers_.size()) {
    throw std::logic_error("Network::backward without forward");
  }
  PlanContext* sub = pc.planned() ? nullptr : &pc;
  dacts_.resize(layers_.size());
  const Tensor* cur_dy = &dy;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const Tensor& input = (i == 0) ? x : acts_[i - 1];
    Tensor& out_dx = (i == 0) ? dx : dacts_[i - 1];
    {
      obs::ScopedSpan sp;
      if (traced) {
        sp.start("bwd." + layers_[i]->name(), obs::cat::kCompute);
        sp.set_threads(static_cast<int>(ctx.threads()));
      }
      layers_[i]->backward(input, acts_[i], *cur_dy, out_dx, ctx, sub);
    }
    if (grad_ready_hook_) grad_ready_hook_(i, *layers_[i]);
    cur_dy = &out_dx;
  }
}

const std::vector<ParamRef>& Network::cached_params() {
  if (!param_cache_valid_) {
    param_cache_.clear();
    flat_size_ = 0;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      for (ParamRef p : layers_[i]->params()) {
        p.name = label_ + "." + std::to_string(i) + "." +
                 layers_[i]->name() + "." + p.name;
        flat_size_ += p.value->numel();
        param_cache_.push_back(std::move(p));
      }
    }
    param_cache_valid_ = true;
  }
  return param_cache_;
}

std::vector<ParamRef> Network::params() { return cached_params(); }

std::vector<BufferRef> Network::buffers() {
  std::vector<BufferRef> all;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (BufferRef b : layers_[i]->buffers()) {
      b.name = label_ + "." + std::to_string(i) + "." +
               layers_[i]->name() + "." + b.name;
      all.push_back(b);
    }
  }
  return all;
}

std::vector<Rng*> Network::rng_streams() {
  std::vector<Rng*> all;
  for (auto& l : layers_) {
    auto s = l->rng_streams();
    all.insert(all.end(), s.begin(), s.end());
  }
  return all;
}

void Network::init(Rng& rng) {
  for (auto& l : layers_) l->init(rng);
}

std::int64_t Network::flops(const Shape& input) const {
  std::int64_t total = 0;
  Shape s = input;
  for (const auto& l : layers_) {
    total += l->flops(s);
    s = l->output_shape(s);
  }
  return total;
}

std::int64_t Network::num_params() {
  cached_params();
  return flat_size_;
}

std::int64_t Network::flat_size() {
  cached_params();
  return flat_size_;
}

void Network::zero_grad() {
  for (const auto& p : cached_params()) p.grad->zero();
}

std::vector<float> Network::flatten_params() {
  std::vector<float> flat;
  flatten_params_into(flat);
  return flat;
}

void Network::flatten_params_into(std::vector<float>& flat) {
  const auto& ps = cached_params();
  flat.resize(static_cast<std::size_t>(flat_size_));
  std::size_t off = 0;
  for (const auto& p : ps) {
    const auto s = p.value->span();
    std::copy(s.begin(), s.end(), flat.begin() + static_cast<std::ptrdiff_t>(off));
    off += s.size();
  }
}

void Network::unflatten_params(std::span<const float> flat) {
  std::size_t off = 0;
  for (const auto& p : cached_params()) {
    const auto n = static_cast<std::size_t>(p.value->numel());
    if (off + n > flat.size()) {
      throw std::invalid_argument("unflatten_params: flat too small");
    }
    copy(flat.subspan(off, n), p.value->span());
    off += n;
  }
  if (off != flat.size()) {
    throw std::invalid_argument("unflatten_params: flat too large");
  }
}

std::vector<float> Network::flatten_grads() {
  std::vector<float> flat;
  flatten_grads_into(flat);
  return flat;
}

void Network::flatten_grads_into(std::vector<float>& flat) {
  const auto& ps = cached_params();
  flat.resize(static_cast<std::size_t>(flat_size_));
  std::size_t off = 0;
  for (const auto& p : ps) {
    const auto s = p.grad->span();
    std::copy(s.begin(), s.end(), flat.begin() + static_cast<std::ptrdiff_t>(off));
    off += s.size();
  }
}

void Network::unflatten_grads(std::span<const float> flat) {
  std::size_t off = 0;
  for (const auto& p : cached_params()) {
    const auto n = static_cast<std::size_t>(p.grad->numel());
    if (off + n > flat.size()) {
      throw std::invalid_argument("unflatten_grads: flat too small");
    }
    copy(flat.subspan(off, n), p.grad->span());
    off += n;
  }
  if (off != flat.size()) {
    throw std::invalid_argument("unflatten_grads: flat too large");
  }
}

}  // namespace minsgd::nn
