#include "nn/network.hpp"

#include <stdexcept>

#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace minsgd::nn {

Network& Network::add(LayerPtr layer) {
  if (!layer) throw std::invalid_argument("Network::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

std::string Network::name() const { return label_; }

Shape Network::output_shape(const Shape& input) const {
  Shape s = input;
  for (const auto& l : layers_) s = l->output_shape(s);
  return s;
}

void Network::do_forward(const Tensor& x, Tensor& y, bool training,
                         const ComputeContext& ctx) {
  if (layers_.empty()) throw std::logic_error("Network::forward: empty net");
  // Span names are built only when tracing is on; the disabled path costs
  // one atomic load per layer.
  const bool traced = obs::tracer().enabled();
  obs::ScopedSpan outer;
  if (traced) {
    outer.start("forward." + label_, obs::cat::kCompute);
    outer.set_threads(static_cast<int>(ctx.threads()));
  }
  acts_.resize(layers_.size());
  const Tensor* cur = &x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Tensor& out = (i + 1 == layers_.size()) ? y : acts_[i];
    obs::ScopedSpan sp;
    if (traced) {
      sp.start("fwd." + layers_[i]->name(), obs::cat::kCompute);
      sp.set_threads(static_cast<int>(ctx.threads()));
    }
    layers_[i]->forward(*cur, out, training, ctx);
    cur = &out;
  }
  // Keep the final output cached too, so backward() has the (x, y) pair for
  // the last layer even though the caller owns y.
  acts_.back() = y;
}

void Network::do_backward(const Tensor& x, const Tensor& /*y*/,
                          const Tensor& dy, Tensor& dx,
                          const ComputeContext& ctx) {
  if (acts_.size() != layers_.size()) {
    throw std::logic_error("Network::backward without forward");
  }
  const bool traced = obs::tracer().enabled();
  obs::ScopedSpan outer;
  if (traced) {
    outer.start("backward." + label_, obs::cat::kCompute);
    outer.set_threads(static_cast<int>(ctx.threads()));
  }
  dacts_.resize(layers_.size());
  const Tensor* cur_dy = &dy;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const Tensor& input = (i == 0) ? x : acts_[i - 1];
    Tensor& out_dx = (i == 0) ? dx : dacts_[i - 1];
    {
      obs::ScopedSpan sp;
      if (traced) {
        sp.start("bwd." + layers_[i]->name(), obs::cat::kCompute);
        sp.set_threads(static_cast<int>(ctx.threads()));
      }
      layers_[i]->backward(input, acts_[i], *cur_dy, out_dx, ctx);
    }
    if (grad_ready_hook_) grad_ready_hook_(i, *layers_[i]);
    cur_dy = &out_dx;
  }
}

std::vector<ParamRef> Network::params() {
  std::vector<ParamRef> all;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (ParamRef p : layers_[i]->params()) {
      p.name = label_ + "." + std::to_string(i) + "." +
               layers_[i]->name() + "." + p.name;
      all.push_back(p);
    }
  }
  return all;
}

std::vector<BufferRef> Network::buffers() {
  std::vector<BufferRef> all;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (BufferRef b : layers_[i]->buffers()) {
      b.name = label_ + "." + std::to_string(i) + "." +
               layers_[i]->name() + "." + b.name;
      all.push_back(b);
    }
  }
  return all;
}

std::vector<Rng*> Network::rng_streams() {
  std::vector<Rng*> all;
  for (auto& l : layers_) {
    auto s = l->rng_streams();
    all.insert(all.end(), s.begin(), s.end());
  }
  return all;
}

void Network::init(Rng& rng) {
  for (auto& l : layers_) l->init(rng);
}

std::int64_t Network::flops(const Shape& input) const {
  std::int64_t total = 0;
  Shape s = input;
  for (const auto& l : layers_) {
    total += l->flops(s);
    s = l->output_shape(s);
  }
  return total;
}

std::int64_t Network::num_params() {
  std::int64_t n = 0;
  for (const auto& p : params()) n += p.value->numel();
  return n;
}

void Network::zero_grad() {
  for (const auto& p : params()) p.grad->zero();
}

std::vector<float> Network::flatten_params() {
  std::vector<float> flat;
  for (const auto& p : params()) {
    const auto s = p.value->span();
    flat.insert(flat.end(), s.begin(), s.end());
  }
  return flat;
}

void Network::unflatten_params(std::span<const float> flat) {
  std::size_t off = 0;
  for (const auto& p : params()) {
    const auto n = static_cast<std::size_t>(p.value->numel());
    if (off + n > flat.size()) {
      throw std::invalid_argument("unflatten_params: flat too small");
    }
    copy(flat.subspan(off, n), p.value->span());
    off += n;
  }
  if (off != flat.size()) {
    throw std::invalid_argument("unflatten_params: flat too large");
  }
}

std::vector<float> Network::flatten_grads() {
  std::vector<float> flat;
  for (const auto& p : params()) {
    const auto s = p.grad->span();
    flat.insert(flat.end(), s.begin(), s.end());
  }
  return flat;
}

void Network::unflatten_grads(std::span<const float> flat) {
  std::size_t off = 0;
  for (const auto& p : params()) {
    const auto n = static_cast<std::size_t>(p.grad->numel());
    if (off + n > flat.size()) {
      throw std::invalid_argument("unflatten_grads: flat too small");
    }
    copy(flat.subspan(off, n), p.grad->span());
    off += n;
  }
  if (off != flat.size()) {
    throw std::invalid_argument("unflatten_grads: flat too large");
  }
}

}  // namespace minsgd::nn
