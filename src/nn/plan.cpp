#include "nn/plan.hpp"

#include <cstdlib>
#include <string>

#include "nn/network.hpp"
#include "obs/metrics.hpp"

namespace minsgd::nn {
namespace {

bool env_flag_default_on(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return true;
  const std::string v(env);
  return !(v == "0" || v == "off" || v == "false");
}

std::atomic<bool> g_memplan{env_flag_default_on("MINSGD_MEMPLAN")};
std::atomic<bool> g_recompute{env_flag_default_on("MINSGD_MEMPLAN_RECOMPUTE")};

// Build stamps are process-unique so a layer holding ids from a dead or
// rebuilt plan can never mistake a new plan's context for its own.
std::atomic<std::uint64_t> g_plan_epoch{0};

}  // namespace

PlanOptions::PlanOptions()
    : recompute_cheap(g_recompute.load(std::memory_order_relaxed)) {}

bool ExecutionPlan::enabled() {
  return g_memplan.load(std::memory_order_relaxed);
}

void ExecutionPlan::set_enabled(bool on) {
  g_memplan.store(on, std::memory_order_relaxed);
}

bool ExecutionPlan::recompute_default() {
  return g_recompute.load(std::memory_order_relaxed);
}

void ExecutionPlan::set_recompute_default(bool on) {
  g_recompute.store(on, std::memory_order_relaxed);
}

bool ExecutionPlan::ensure(Network& net, const Shape& input,
                          const PlanOptions& opts) {
  if (built_ && net_ == &net && input_ == input &&
      training_ == opts.training && recompute_ == opts.recompute_cheap) {
    return false;
  }
  build(net, input, opts);
  return true;
}

void ExecutionPlan::build(Network& net, const Shape& input,
                          const PlanOptions& opts) {
  epoch_ = 1 + g_plan_epoch.fetch_add(1, std::memory_order_relaxed);
  net_ = &net;
  input_ = input;
  training_ = opts.training;
  recompute_ = opts.recompute_cheap;
  PlanBuilder b(epoch_, opts);
  net.plan_forward(b, input);
  net.plan_backward(b, input);
  steps_ = b.now();
  arena_.build(b.take_items());
  built_ = true;
  ++rebuilds_;

  auto& reg = obs::metrics();
  reg.counter("plan.rebuilds").add(1);
  reg.gauge("plan.arena_bytes").set(static_cast<double>(arena_bytes()));
  reg.gauge("plan.raw_bytes").set(static_cast<double>(raw_bytes()));
  reg.gauge("plan.tensors").set(static_cast<double>(num_tensors()));
  reg.gauge("plan.steps").set(static_cast<double>(steps_));
}

PlanContext ExecutionPlan::context(Network& net, const Shape& input,
                                   const PlanOptions& opts) {
  if (!enabled()) return PlanContext{};
  ensure(net, input, opts);
  return PlanContext(this);
}

}  // namespace minsgd::nn
